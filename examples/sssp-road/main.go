// Single-source shortest paths on a road network — the paper's push-mode
// workload (§6.1). Road networks have huge diameter, so the computation
// runs for hundreds of supersteps with a small active frontier: exactly the
// regime where Cyclops' win comes from contention-free communication rather
// than from skipping redundant computation.
//
//	go run ./examples/sssp-road
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

func main() {
	// A RoadCA-like lattice with log-normal edge weights (µ=0.4, σ=1.2 —
	// the weighting §6.2 applies to RoadCA).
	g, meta, err := gen.Dataset("roadca", 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: |V|=%d |E|=%d (substitute for %s)\n\n",
		g.NumVertices(), g.NumEdges(), meta.Name)

	const source graph.ID = 0
	engine, err := cyclops.New[float64, float64](g, algorithms.SSSPCyclops{Source: source},
		cyclops.Config[float64, float64]{
			Cluster:       cluster.MT(6, 8, 2),
			MaxSupersteps: 5000,
		})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("run:", trace)

	dist := engine.Values()
	reached := 0
	var sum, maxDist float64
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
			sum += d
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("\nreached %d/%d vertices from %d\n", reached, len(dist), source)
	fmt.Printf("mean distance %.1f, eccentricity %.1f\n", sum/float64(reached), maxDist)

	// The frontier wave: supersteps with the most active vertices.
	type wave struct {
		step   int
		active int64
	}
	waves := make([]wave, len(trace.Steps))
	for i, s := range trace.Steps {
		waves[i] = wave{s.Step, s.Active}
	}
	sort.Slice(waves, func(i, j int) bool { return waves[i].active > waves[j].active })
	fmt.Println("\nbusiest supersteps (the frontier sweeping the lattice):")
	for _, w := range waves[:5] {
		fmt.Printf("  superstep %-5d %d active vertices\n", w.step, w.active)
	}

	// Verify against the sequential reference.
	ref := algorithms.SSSPRef(g, source)
	for v := range ref {
		if ref[v] != dist[v] {
			log.Fatalf("mismatch at %d: %g vs reference %g", v, dist[v], ref[v])
		}
	}
	fmt.Println("\ndistances verified against sequential Bellman-Ford ✓")
}
