// Quickstart: build a small graph, write a Cyclops vertex program, run it.
//
// The program is the paper's Figure 5 PageRank: each vertex reads its
// in-neighbors' published shares straight from the distributed immutable
// view (no message parsing), updates its rank, and — only while its local
// error is above epsilon — publishes a new share and activates its
// neighbors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

func main() {
	// A toy web: page 0 is a hub everyone links to; pages link in a chain.
	b := graph.NewBuilder(8)
	edges := [][2]graph.ID{
		{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0},
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()

	// Two simulated machines, two workers each — vertex 0 will have
	// read-only replicas on every worker that holds one of its neighbors.
	engine, err := cyclops.New[float64, float64](g,
		algorithms.PageRankCyclops{Eps: 1e-12},
		cyclops.Config[float64, float64]{
			Cluster: cluster.Flat(2, 2),
		})
	if err != nil {
		log.Fatal(err)
	}

	trace, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("run:", trace)
	fmt.Printf("replication factor: %.2f replicas/vertex\n\n", engine.ReplicationFactor())

	type ranked struct {
		id   graph.ID
		rank float64
	}
	var pages []ranked
	for id, rank := range engine.Values() {
		pages = append(pages, ranked{graph.ID(id), rank})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rank > pages[j].rank })
	fmt.Println("PageRank:")
	for _, p := range pages {
		fmt.Printf("  page %d: %.4f\n", p.id, p.rank)
	}
}
