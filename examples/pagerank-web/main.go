// PageRank on a web-scale-shaped graph: the paper's motivating workload.
//
// This example runs the same PageRank job on the Hama-like BSP engine and on
// Cyclops/CyclopsMT, then contrasts what §2.2 calls BSP's deficiencies with
// the distributed immutable view: message volume, active vertices over time,
// and the modelled execution time. It is Figure 10 as a program.
//
//	go run ./examples/pagerank-web
package main

import (
	"fmt"
	"log"

	"cyclops/internal/aggregate"
	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
)

const eps = 1e-8

func main() {
	// A GoogleWeb-like power-law graph (scaled; see internal/gen).
	g, meta, err := gen.Dataset("gweb", 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: |V|=%d |E|=%d (paper original: |V|=%d |E|=%d)\n\n",
		meta.Name, g.NumVertices(), g.NumEdges(), meta.PaperV, meta.PaperE)

	// Hama: pull-mode PageRank forced through push-mode message passing.
	hama, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: eps},
		bsp.Config[float64, float64]{
			Cluster:       cluster.Flat(6, 8),
			MaxSupersteps: 100,
			Halt:          aggregate.GlobalErrorHalt(algorithms.ErrorAggregator, g.NumVertices(), eps),
			Equal:         func(a, b float64) bool { return abs(a-b) < eps },
		})
	if err != nil {
		log.Fatal(err)
	}
	hamaTrace, err := hama.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Cyclops: the same algorithm over the distributed immutable view.
	cyc, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: eps},
		cyclops.Config[float64, float64]{
			Cluster:       cluster.Flat(6, 8),
			MaxSupersteps: 100,
		})
	if err != nil {
		log.Fatal(err)
	}
	cycTrace, err := cyc.Run()
	if err != nil {
		log.Fatal(err)
	}

	// CyclopsMT: one worker per machine, 8 threads, 2 receivers (the
	// paper's best configuration from Figure 12).
	mt, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: eps},
		cyclops.Config[float64, float64]{
			Cluster:       cluster.MT(6, 8, 2),
			MaxSupersteps: 100,
		})
	if err != nil {
		log.Fatal(err)
	}
	mtTrace, err := mt.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("engine comparison:")
	fmt.Printf("  %-10s %10s %12s %12s %10s\n", "engine", "supersteps", "messages", "model-ms", "replicas")
	fmt.Printf("  %-10s %10d %12d %12.1f %10s\n", "hama",
		len(hamaTrace.Steps), hamaTrace.TotalMessages(), hamaTrace.ModelTime()/1e6, "-")
	fmt.Printf("  %-10s %10d %12d %12.1f %10.2f\n", "cyclops",
		len(cycTrace.Steps), cycTrace.TotalMessages(), cycTrace.ModelTime()/1e6, cyc.ReplicationFactor())
	fmt.Printf("  %-10s %10d %12d %12.1f %10.2f\n", "cyclopsmt",
		len(mtTrace.Steps), mtTrace.TotalMessages(), mtTrace.ModelTime()/1e6, mt.ReplicationFactor())

	fmt.Println("\nactive vertices per superstep (dynamic computation at work):")
	fmt.Printf("  %-9s %12s %12s\n", "superstep", "hama", "cyclops")
	for s := 0; s < len(hamaTrace.Steps) || s < len(cycTrace.Steps); s += 4 {
		h, c := "-", "-"
		if s < len(hamaTrace.Steps) {
			h = fmt.Sprint(hamaTrace.Steps[s].Active)
		}
		if s < len(cycTrace.Steps) {
			c = fmt.Sprint(cycTrace.Steps[s].Active)
		}
		fmt.Printf("  %-9d %12s %12s\n", s, h, c)
	}

	// The results agree.
	hv, cv := hama.Values(), cyc.Values()
	var l1 float64
	for i := range hv {
		l1 += abs(hv[i] - cv[i])
	}
	fmt.Printf("\nL1 distance between Hama and Cyclops ranks: %.2e\n", l1)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
