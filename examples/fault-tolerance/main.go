// Fault tolerance (§3.6 of the paper): checkpoint a PageRank job at
// barriers, "crash" the cluster mid-run, and recover from the last
// checkpoint into a fresh engine. Cyclops checkpoints exclude replicas and
// in-flight messages — replicas are re-synchronised from their masters at
// restore time — so the snapshot is smaller than a Pregel checkpoint, and
// recovery still reproduces the uninterrupted run bit for bit.
//
//	go run ./examples/fault-tolerance
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cyclops/internal/algorithms"
	"cyclops/internal/checkpoint"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
)

const totalSupersteps = 20

func main() {
	g, _, err := gen.Dataset("amazon", 0.3, 11)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "cyclops-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	newEngine := func(maxSteps, ckptEvery int) *cyclops.Engine[float64, float64] {
		e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{},
			cyclops.Config[float64, float64]{
				Cluster:         cluster.Flat(3, 2),
				MaxSupersteps:   maxSteps,
				CheckpointEvery: ckptEvery,
				Checkpoints: func(s cyclops.State[float64, float64]) error {
					if ckptEvery == 0 {
						return nil
					}
					return checkpoint.Save(dir, s.Step, s)
				},
			})
		if err != nil {
			log.Fatal(err)
		}
		return e
	}

	// Ground truth: an uninterrupted run.
	truth := newEngine(totalSupersteps, 0)
	if _, err := truth.Run(); err != nil {
		log.Fatal(err)
	}

	// The "production" run checkpoints every 5 supersteps and dies at 13.
	doomed := newEngine(13, 5)
	if _, err := doomed.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster crashed at superstep 13 💥")

	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	steps, err := checkpoint.Steps(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoints on stable storage: %d files, supersteps %v\n", len(files), steps)

	// Recovery: fresh engine, restore the latest checkpoint, continue.
	state, at, err := checkpoint.LoadLatest[cyclops.State[float64, float64]](dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovering from superstep %d (replicas will re-sync from masters)\n", at)
	recovered := newEngine(totalSupersteps, 0)
	if err := recovered.Restore(state); err != nil {
		log.Fatal(err)
	}
	if _, err := recovered.Run(); err != nil {
		log.Fatal(err)
	}

	// Verify bit-identical recovery.
	want, got := truth.Values(), recovered.Values()
	for v := range want {
		if want[v] != got[v] {
			log.Fatalf("vertex %d: %g after recovery, want %g", v, got[v], want[v])
		}
	}
	fmt.Printf("recovered run matches the uninterrupted run on all %d vertices ✓\n", len(want))
}
