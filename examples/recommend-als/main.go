// Movie recommendation with Alternating Least Squares on the Cyclops
// engine — the paper's ALS workload (§6.1, after Zhou et al.'s Netflix
// system). Users and items live on either side of a bipartite rating graph;
// activation alternates the sides between supersteps, and each update pulls
// the other side's latent vectors straight from the immutable view.
//
//	go run ./examples/recommend-als
package main

import (
	"fmt"
	"log"
	"sort"

	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/linalg"
)

const (
	users  = 2000
	items  = 200
	rated  = 20
	sweeps = 5
)

func main() {
	g := gen.Bipartite(users, items, rated, 99)
	fmt.Printf("rating graph: %d users × %d items, %d ratings\n\n",
		users, items, g.NumEdges()/2)

	cfg := algorithms.ALSConfig{Users: users, D: 8, Lambda: 0.05, Sweeps: sweeps}
	engine, err := cyclops.New[[]float64, []float64](g, algorithms.ALSCyclops{Cfg: cfg},
		cyclops.Config[[]float64, []float64]{
			Cluster:       cluster.MT(4, 4, 2),
			MaxSupersteps: cfg.TotalSupersteps(),
			SizeOfMsg:     func(m []float64) int64 { return int64(8 * len(m)) },
		})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	vecs := engine.Values()
	fmt.Println("run:", trace)
	fmt.Printf("reconstruction RMSE after %d sweeps: %.3f (ratings are 1–5)\n\n",
		sweeps, algorithms.RMSE(g, users, vecs))

	// Recommend unseen items for one user: highest predicted rating among
	// items they have not rated.
	const who graph.ID = 17
	seen := map[graph.ID]bool{}
	for _, item := range g.OutNeighbors(who) {
		seen[item] = true
	}
	type rec struct {
		item graph.ID
		pred float64
	}
	var recs []rec
	for item := users; item < users+items; item++ {
		id := graph.ID(item)
		if seen[id] {
			continue
		}
		recs = append(recs, rec{id, linalg.Dot(vecs[who], vecs[id])})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].pred > recs[j].pred })
	fmt.Printf("top recommendations for user %d (of %d unseen items):\n", who, len(recs))
	for _, r := range recs[:5] {
		fmt.Printf("  item %-6d predicted rating %.2f\n", r.item-users, r.pred)
	}
}
