// Topology mutation — the paper's §8 future work, implemented Kineograph-
// style: a road network grows a new highway while shortest-path state is
// preserved across epochs. Only the wavefront touched by the new edges
// recomputes; everything else carries over.
//
//	go run ./examples/evolving-graph
package main

import (
	"fmt"
	"log"
	"math"

	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

func main() {
	// Epoch 0: a city grid.
	g := gen.Road(30, 30, 0, 5)
	engine, err := cyclops.New[float64, float64](g, algorithms.SSSPCyclops{Source: 0},
		cyclops.Config[float64, float64]{
			Cluster:       cluster.Flat(3, 2),
			MaxSupersteps: 5000,
		})
	if err != nil {
		log.Fatal(err)
	}
	t0, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	farCorner := graph.ID(g.NumVertices() - 1)
	fmt.Printf("epoch 0: %d supersteps, dist(corner) = %.1f\n",
		len(t0.Steps), engine.Values()[farCorner])

	// Epoch 1: a highway opens between downtown and the far corner.
	highway := []graph.Edge{
		{Src: 0, Dst: farCorner, Weight: 3},
		{Src: farCorner, Dst: 0, Weight: 3},
	}
	grown, err := engine.Evolve(highway)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := grown.Run()
	if err != nil {
		log.Fatal(err)
	}
	var touched int64
	for _, s := range t1.Steps {
		touched += s.Active
	}
	fmt.Printf("epoch 1: %d supersteps, dist(corner) = %.1f, %d vertex-updates (of %d vertices)\n",
		len(t1.Steps), grown.Values()[farCorner], touched, g.NumVertices())

	// Verify against recomputing the merged graph from scratch.
	ref := algorithms.SSSPRef(grown.Graph(), 0)
	for v, d := range grown.Values() {
		if !math.IsInf(d, 1) && d != ref[v] {
			log.Fatalf("vertex %d: incremental %g vs fresh %g", v, d, ref[v])
		}
	}
	fmt.Println("incremental distances match a from-scratch recompute ✓")
}
