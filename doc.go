// Package cyclops is a from-scratch Go reproduction of "Computation and
// Communication Efficient Graph Processing with Distributed Immutable View"
// (Chen, Ding, Wang, Chen, Zang, Guan — HPDC 2014).
//
// The system the paper calls Cyclops lives in internal/cyclops; its baseline
// (a Hama-like Pregel clone) in internal/bsp; its comparator (a
// PowerGraph-like GAS engine) in internal/gas. The paper's four workloads
// are in internal/algorithms, the Metis-like partitioner in
// internal/partition, synthetic substitutions of the paper's datasets in
// internal/gen, and the runners that regenerate every evaluation table and
// figure in internal/harness (driven by cmd/cyclops-bench and by
// bench_test.go in this directory).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package cyclops
