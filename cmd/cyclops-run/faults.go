package main

// Fault-injection support for cyclops-run: -fault-seed / -fault-plan arm a
// deterministic fault schedule at the transport boundary and wire periodic
// checkpoints plus recovery into whichever engine the run uses, so a faulted
// run finishes with the same values as a clean one (§3.6). The checkpoint
// directory is temporary and removed after the run.

import (
	"fmt"
	"io"
	"os"

	"cyclops/internal/bsp"
	"cyclops/internal/checkpoint"
	"cyclops/internal/cyclops"
	"cyclops/internal/fault"
	"cyclops/internal/gas"
)

// faultOpts carries the armed plan and checkpoint settings into run().
type faultOpts struct {
	plan  fault.Plan
	every int    // checkpoint cadence in supersteps
	dir   string // checkpoint directory (temporary)
}

// newFaultOpts resolves the -fault-seed/-fault-plan/-checkpoint-every flags.
// A plan file wins over a seed; both unset means no injection (nil). workers
// bounds the generated plan's worker ids.
func newFaultOpts(planPath string, seed int64, every, workers int, stderr io.Writer) (*faultOpts, func(), error) {
	if planPath == "" && seed == 0 {
		return nil, func() {}, nil
	}
	var plan fault.Plan
	if planPath != "" {
		var err error
		if plan, err = fault.Load(planPath); err != nil {
			return nil, nil, fmt.Errorf("-fault-plan %s: %w", planPath, err)
		}
	} else {
		plan = fault.NewPlan(seed, workers, 2, 8, 3)
	}
	if every <= 0 {
		every = 2
	}
	dir, err := os.MkdirTemp("", "cyclops-ckpt-*")
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(stderr, "cyclops-run: injecting fault plan (seed %d, %d faults):\n",
		plan.Seed, len(plan.Faults))
	for _, f := range plan.Faults {
		fmt.Fprintf(stderr, "  %s\n", f)
	}
	return &faultOpts{plan: plan, every: every, dir: dir},
		func() { os.RemoveAll(dir) }, nil
}

// The arm helpers wire a fault plan, periodic checkpoints and recovery into
// an engine config; with fo == nil they are the identity.

func armCyclops[V, M any](cfg cyclops.Config[V, M], fo *faultOpts) cyclops.Config[V, M] {
	if fo == nil {
		return cfg
	}
	cfg.FaultPlan = &fo.plan
	cfg.CheckpointEvery = fo.every
	cfg.Checkpoints = func(s cyclops.State[V, M]) error {
		return checkpoint.Save(fo.dir, s.Step, s)
	}
	cfg.Recover = func() (cyclops.State[V, M], error) {
		s, _, err := checkpoint.LoadLatest[cyclops.State[V, M]](fo.dir)
		return s, err
	}
	return cfg
}

func armBSP[V, M any](cfg bsp.Config[V, M], fo *faultOpts) bsp.Config[V, M] {
	if fo == nil {
		return cfg
	}
	cfg.FaultPlan = &fo.plan
	cfg.CheckpointEvery = fo.every
	cfg.Checkpoints = func(s bsp.State[V, M]) error {
		return checkpoint.Save(fo.dir, s.Step, s)
	}
	cfg.Recover = func() (bsp.State[V, M], error) {
		s, _, err := checkpoint.LoadLatest[bsp.State[V, M]](fo.dir)
		return s, err
	}
	return cfg
}

func armGAS[V, G any](cfg gas.Config[V, G], fo *faultOpts) gas.Config[V, G] {
	if fo == nil {
		return cfg
	}
	cfg.FaultPlan = &fo.plan
	cfg.CheckpointEvery = fo.every
	cfg.Checkpoints = func(s gas.State[V]) error {
		return checkpoint.Save(fo.dir, s.Step, s)
	}
	cfg.Recover = func() (gas.State[V], error) {
		s, _, err := checkpoint.LoadLatest[gas.State[V]](fo.dir)
		return s, err
	}
	return cfg
}

// saveBaseline writes the pre-run state as a step-0 checkpoint so a fault
// earlier than the first periodic checkpoint is still recoverable.
func saveBaseline[S any](fo *faultOpts, snap func() S) error {
	if fo == nil {
		return nil
	}
	return checkpoint.Save(fo.dir, 0, snap())
}
