// Command cyclops-run executes one graph algorithm over one graph on a
// chosen engine and prints summary statistics (and optionally the result
// values). The graph comes either from a named synthetic dataset or from an
// edge-list file in the SNAP text format.
//
// Examples:
//
//	cyclops-run -algo PR -dataset gweb -engine cyclops -machines 6 -threads 8
//	cyclops-run -algo SSSP -graph road.txt -engine hama
//	cyclops-run -algo PR -dataset amazon -engine powergraph -audit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cyclops/internal/aggregate"
	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/partition"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-run:", err)
		os.Exit(1)
	}
}

// cliMain is the whole CLI behind a testable seam: flags in, output to the
// given writers, errors returned instead of exiting.
func cliMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cyclops-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algo      = fs.String("algo", "PR", "algorithm: PR, SSSP, CD, CC")
		dsName    = fs.String("dataset", "", "synthetic dataset name (see graphgen -list)")
		graphFile = fs.String("graph", "", "edge-list file (alternative to -dataset; .bin files use the binary CSR format)")
		loaders   = fs.Int("loaders", 4, "parallel parser goroutines for text edge lists")
		engine    = fs.String("engine", "cyclops", "engine: hama, cyclops, powergraph")
		scale     = fs.Float64("scale", 1.0, "dataset scale factor")
		seed      = fs.Int64("seed", 1, "dataset seed")
		machines  = fs.Int("machines", 6, "simulated machines")
		workers   = fs.Int("workers", 1, "workers per machine")
		threads   = fs.Int("threads", 1, "compute threads per worker (CyclopsMT)")
		receivers = fs.Int("receivers", 1, "receiver threads per worker (CyclopsMT)")
		partName  = fs.String("partitioner", "hash", "partitioner: hash, metis, range")
		eps       = fs.Float64("eps", 1e-9, "convergence bound (PR)")
		steps     = fs.Int("steps", 100, "max supersteps")
		source    = fs.Uint("source", 0, "source vertex (SSSP)")
		top       = fs.Int("top", 5, "print the top-N result vertices")
		traceCSV  = fs.String("trace", "", "write per-superstep statistics to this CSV file")
		commCSV   = fs.String("comm", "", "write the per-superstep worker×worker traffic matrix to this CSV file")
		record    = fs.String("record", "", "record the run as a flight-record directory (manifest.json, series.csv, timings.csv) under this path")
		skewFlag  = fs.Bool("skew", false, "print the per-superstep load-imbalance profile after the run")
		audit     = fs.Bool("audit", false, "verify the engine's structural invariants each superstep (replica consistency, message conservation, mirror coherence); a violation fails the run")
		debugAddr = fs.String("debug-addr", "", "serve live diagnostics (/metrics, /trace, /comm, /spans, /profiles, /debug/pprof) on this address")
		slowPhase = fs.Float64("slow-phase", 3, "warn when a phase runs slower than this factor times its trailing mean (<=1 disables the detector)")
		profDir   = fs.String("profile-dir", "", "continuously harvest pprof CPU/heap captures into this directory, tagged with the superstep in flight")
		verbose   = fs.Bool("verbose", false, "narrate supersteps as JSONL events on stderr")
		faultSeed = fs.Int64("fault-seed", 0, "inject a deterministic fault plan derived from this seed; the engine checkpoints and recovers (0 disables)")
		faultPlan = fs.String("fault-plan", "", "inject the fault plan from this JSON file (overrides -fault-seed; format: internal/fault)")
		ckptEvery = fs.Int("checkpoint-every", 2, "checkpoint cadence in supersteps while fault injection is on")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fail fast on unusable output paths: a typo'd -trace/-comm/-record must
	// abort now, not after the run has burned its minutes.
	if *traceCSV != "" {
		if err := obs.EnsureWritableFile(*traceCSV); err != nil {
			return fmt.Errorf("-trace %s: %w", *traceCSV, err)
		}
	}
	if *commCSV != "" {
		if err := obs.EnsureWritableFile(*commCSV); err != nil {
			return fmt.Errorf("-comm %s: %w", *commCSV, err)
		}
	}
	var rec *obs.Recorder
	if *record != "" {
		var err error
		if rec, err = obs.NewRecorder(*record); err != nil {
			return fmt.Errorf("-record %s: %w", *record, err)
		}
	}

	g, err := loadGraph(*dsName, *graphFile, *scale, *seed, *loaders)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %s\n", graph.ComputeStats(g))

	cc := cluster.Config{
		Machines:          *machines,
		WorkersPerMachine: *workers,
		Threads:           *threads,
		Receivers:         *receivers,
	}
	part, err := pickPartitioner(*partName, *seed)
	if err != nil {
		return err
	}
	fo, cleanup, err := newFaultOpts(*faultPlan, *faultSeed, *ckptEvery, cc.Workers(), stderr)
	if err != nil {
		return err
	}
	defer cleanup()

	// Live observability (opt-in): -verbose narrates supersteps on stderr;
	// -debug-addr additionally serves /metrics, /trace, /comm and
	// /debug/pprof while the run advances; -comm and -skew collect the
	// traffic matrix and the imbalance profile without a server.
	var hookList []obs.Hooks
	var tracer *obs.Tracer
	topts := obs.TracerOptions{SlowFactor: *slowPhase}
	if *verbose {
		tracer = obs.NewTracer(stderr, topts)
	} else if *debugAddr != "" {
		tracer = obs.NewTracer(nil, topts)
	}
	if tracer != nil {
		hookList = append(hookList, tracer)
	}
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntime(reg)
		hookList = append(hookList, obs.NewCollector(reg))
	}
	var comm *obs.CommTracker
	if *commCSV != "" || *debugAddr != "" {
		comm = obs.NewCommTracker()
		hookList = append(hookList, comm)
	}
	var spans *obs.SpanTracker
	var mem *obs.MemTracker
	var heat *obs.HeatTracker
	if *debugAddr != "" {
		spans = obs.NewSpanTracker()
		hookList = append(hookList, spans)
		mem = obs.NewMemTracker()
		hookList = append(hookList, mem)
		heat = obs.NewHeatTracker()
		hookList = append(hookList, heat)
	}
	var harvester *obs.Harvester
	if *profDir != "" {
		var err error
		if harvester, err = obs.NewHarvester(*profDir, obs.HarvesterOptions{}); err != nil {
			return fmt.Errorf("-profile-dir %s: %w", *profDir, err)
		}
		hookList = append(hookList, harvester)
		harvester.Start()
		defer harvester.Stop()
	}
	var skew *obs.SkewProfiler
	if *skewFlag {
		skew = obs.NewSkewProfiler(reg) // reg may be nil: report-only mode
		hookList = append(hookList, skew)
	}
	if rec != nil {
		rec.SetMeta(obs.RunMeta{
			Algorithm:         *algo,
			Dataset:           datasetLabel(*dsName, *graphFile),
			Partitioner:       *partName,
			Seed:              *seed,
			Scale:             *scale,
			Machines:          *machines,
			WorkersPerMachine: *workers,
		})
		if harvester != nil {
			rec.SetProfileSource(harvester.Dir(), harvester.Files)
		}
		hookList = append(hookList, rec)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg, tracer.Ring(), comm, *record, spans, *profDir, mem, heat)
		if err != nil {
			return err
		}
		// Shutdown (not Close) so an in-flight /metrics scrape racing the
		// process exit still completes.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
		}()
		fmt.Fprintf(stderr, "cyclops-run: diagnostics at %s\n", srv.URL())
	}
	hooks := obs.Multi(hookList...)

	values, summary, trace, err := run(*engine, *algo, g, cc, part, *eps, *steps,
		graph.ID(*source), hooks, *audit, fo)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, summary)
	printTop(stdout, values, *top)
	if skew != nil {
		for _, rep := range skew.Reports() {
			if err := rep.WriteTable(stdout); err != nil {
				return err
			}
		}
	}
	if *traceCSV != "" && trace != nil {
		if err := writeFile(*traceCSV, func(f io.Writer) error {
			return metrics.WriteCSV(f, trace)
		}); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote trace to", *traceCSV)
	}
	if *commCSV != "" {
		if err := writeFile(*commCSV, comm.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote traffic matrix to", *commCSV)
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
		for _, m := range rec.Manifests() {
			fmt.Fprintf(stdout, "recorded %s\n", m.Run)
		}
	}
	return nil
}

// datasetLabel names the input for the manifest: the synthetic dataset name
// or the base name of the edge-list file.
func datasetLabel(dsName, graphFile string) string {
	if dsName != "" {
		return dsName
	}
	return filepath.Base(graphFile)
}

// writeFile creates path, streams write into it, and reports close errors.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadGraph(dsName, graphFile string, scale float64, seed int64, loaders int) (*graph.Graph, error) {
	switch {
	case dsName != "" && graphFile != "":
		return nil, fmt.Errorf("use -dataset or -graph, not both")
	case dsName != "":
		g, _, err := gen.Dataset(dsName, scale, seed)
		return g, err
	case strings.HasSuffix(graphFile, ".bin"):
		return graph.ReadBinaryFile(graphFile)
	case graphFile != "":
		return graph.LoadFileParallel(graphFile, loaders)
	default:
		return nil, fmt.Errorf("one of -dataset or -graph is required")
	}
}

func pickPartitioner(name string, seed int64) (partition.Partitioner, error) {
	switch name {
	case "hash":
		return partition.Hash{}, nil
	case "metis":
		return partition.Multilevel{Seed: seed}, nil
	case "range":
		return partition.Range{}, nil
	default:
		return nil, fmt.Errorf("unknown partitioner %q", name)
	}
}

func run(engine, algo string, g *graph.Graph, cc cluster.Config,
	part partition.Partitioner, eps float64, steps int, source graph.ID,
	hooks obs.Hooks, audit bool, fo *faultOpts) ([]float64, string, *metrics.Trace, error) {

	switch engine + "/" + algo {
	case "cyclops/PR":
		e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: eps},
			armCyclops(cyclops.Config[float64, float64]{Cluster: cc, Partitioner: part, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: scalarResid}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return e.Values(), fmt.Sprintf("%v\nreplication factor: %.2f", tr, e.ReplicationFactor()), tr, nil
	case "cyclops/SSSP":
		e, err := cyclops.New[float64, float64](g, algorithms.SSSPCyclops{Source: source},
			armCyclops(cyclops.Config[float64, float64]{Cluster: cc, Partitioner: part, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: scalarResid}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return e.Values(), tr.String(), tr, nil
	case "cyclops/CD":
		e, err := cyclops.New[int64, int64](g, algorithms.CDCyclops{},
			armCyclops(cyclops.Config[int64, int64]{Cluster: cc, Partitioner: part, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: labelResid}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return toFloats(e.Values()), tr.String(), tr, nil
	case "hama/PR":
		e, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: eps},
			armBSP(bsp.Config[float64, float64]{
				Cluster: cc, Partitioner: part, MaxSupersteps: steps, Hooks: hooks, Audit: audit,
				Residual: scalarResid,
				Halt:     aggregate.GlobalErrorHalt(algorithms.ErrorAggregator, g.NumVertices(), eps),
			}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return e.Values(), tr.String(), tr, nil
	case "hama/SSSP":
		e, err := bsp.New[float64, float64](g, algorithms.SSSPBSP{Source: source},
			armBSP(bsp.Config[float64, float64]{Cluster: cc, Partitioner: part, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: scalarResid}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return e.Values(), tr.String(), tr, nil
	case "cyclops/CC":
		e, err := cyclops.New[int64, int64](g, algorithms.CCCyclops{},
			armCyclops(cyclops.Config[int64, int64]{Cluster: cc, Partitioner: part, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: labelResid}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		labels := e.Values()
		return toFloats(labels),
			fmt.Sprintf("%v\ncomponents: %d", tr, algorithms.ComponentCount(labels)), tr, nil
	case "hama/CC":
		e, err := bsp.New[int64, int64](g, algorithms.CCBSP{},
			armBSP(bsp.Config[int64, int64]{Cluster: cc, Partitioner: part, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: labelResid}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		labels := e.Values()
		return toFloats(labels),
			fmt.Sprintf("%v\ncomponents: %d", tr, algorithms.ComponentCount(labels)), tr, nil
	case "hama/CD":
		e, err := bsp.New[int64, int64](g, algorithms.CDBSP{},
			armBSP(bsp.Config[int64, int64]{Cluster: cc, Partitioner: part, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: labelResid, Halt: algorithms.CDHalt()}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return toFloats(e.Values()), tr.String(), tr, nil
	case "powergraph/PR":
		e, err := gas.New[algorithms.PRValue, float64](g, algorithms.NewPageRankGAS(g, steps, eps),
			armGAS(gas.Config[algorithms.PRValue, float64]{Cluster: cc, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit,
				Residual: func(old, new algorithms.PRValue) float64 { return scalarResid(old.Rank, new.Rank) }}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return algorithms.Ranks(e.Values()),
			fmt.Sprintf("%v\nreplication factor: %.2f", tr, e.ReplicationFactor()), tr, nil
	case "powergraph/SSSP":
		e, err := gas.New[float64, float64](g, algorithms.SSSPGAS{Source: source},
			armGAS(gas.Config[float64, float64]{Cluster: cc, MaxSupersteps: steps,
				Hooks: hooks, Audit: audit, Residual: scalarResid}, fo))
		if err != nil {
			return nil, "", nil, err
		}
		if err := saveBaseline(fo, e.Snapshot); err != nil {
			return nil, "", nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, "", nil, err
		}
		return e.Values(), tr.String(), tr, nil
	default:
		return nil, "", nil, fmt.Errorf("unsupported engine/algorithm pair %s/%s", engine, algo)
	}
}

// scalarResid is the |Δ| convergence distance for float64-valued algorithms;
// labelResid counts a relabel as distance 1 (labels are ids, not a metric
// space), so the recorded residual quantiles read as the changed fraction.
func scalarResid(old, new float64) float64 {
	d := old - new
	if d < 0 {
		return -d
	}
	return d
}

func labelResid(old, new int64) float64 {
	if old == new {
		return 0
	}
	return 1
}

func toFloats(in []int64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

func printTop(w io.Writer, values []float64, n int) {
	type kv struct {
		v   int
		val float64
	}
	order := make([]kv, len(values))
	for i, v := range values {
		order[i] = kv{i, v}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].val > order[j].val })
	if n > len(order) {
		n = len(order)
	}
	fmt.Fprintf(w, "top %d vertices:\n", n)
	for _, e := range order[:n] {
		fmt.Fprintf(w, "  vertex %-8d %g\n", e.v, e.val)
	}
}
