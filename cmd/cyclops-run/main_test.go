package main

// End-to-end smoke test: the CLI must run a tiny PageRank job to completion
// with tracing, traffic-matrix export, skew profiling and the invariant
// auditor all on, exit cleanly, and leave non-empty CSV artifacts behind.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/obs"
)

func TestCLISmokePageRank(t *testing.T) {
	dir := t.TempDir()
	traceCSV := filepath.Join(dir, "trace.csv")
	commCSV := filepath.Join(dir, "comm.csv")

	var stdout, stderr bytes.Buffer
	err := cliMain([]string{
		"-dataset", "wiki", "-scale", "0.02", "-algo", "PR", "-engine", "cyclops",
		"-machines", "2", "-workers", "2", "-steps", "30",
		"-audit", "-skew",
		"-trace", traceCSV, "-comm", commCSV,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("cliMain failed: %v\nstderr:\n%s", err, stderr.String())
	}

	out := stdout.String()
	for _, want := range []string{
		"graph:",
		"cyclops:",              // trace summary line
		"phases:",               // Trace.String now includes the phase ratios
		"replication factor:",   // engine-specific summary
		"top 5 vertices:",       // result rendering
		"skew profile: cyclops", // -skew report
		"wrote trace to",
		"wrote traffic matrix to",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	trace, err := os.ReadFile(traceCSV)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(trace), "\n"); lines < 2 {
		t.Errorf("trace CSV has %d lines, want a header plus supersteps", lines)
	}

	comm, err := os.ReadFile(commCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(comm), obs.CommCSVHeader) {
		t.Errorf("comm CSV header = %q, want %q", firstLine(string(comm)), obs.CommCSVHeader)
	}
	if lines := strings.Count(string(comm), "\n"); lines < 2 {
		t.Errorf("comm CSV has %d lines, want a header plus traffic rows", lines)
	}
}

func TestCLIErrorsReturnNotExit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := cliMain([]string{"-engine", "nope", "-dataset", "wiki", "-scale", "0.01"},
		&stdout, &stderr); err == nil {
		t.Fatal("unknown engine must surface as an error")
	}
	if err := cliMain(nil, &stdout, &stderr); err == nil {
		t.Fatal("missing -dataset/-graph must surface as an error")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
