package main

// End-to-end smoke test: the CLI must run a tiny PageRank job to completion
// with tracing, traffic-matrix export, skew profiling and the invariant
// auditor all on, exit cleanly, and leave non-empty CSV artifacts behind.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/obs"
)

func TestCLISmokePageRank(t *testing.T) {
	dir := t.TempDir()
	traceCSV := filepath.Join(dir, "trace.csv")
	commCSV := filepath.Join(dir, "comm.csv")
	recDir := filepath.Join(dir, "rec")

	var stdout, stderr bytes.Buffer
	err := cliMain([]string{
		"-dataset", "wiki", "-scale", "0.02", "-algo", "PR", "-engine", "cyclops",
		"-machines", "2", "-workers", "2", "-steps", "30",
		"-audit", "-skew",
		"-trace", traceCSV, "-comm", commCSV, "-record", recDir,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("cliMain failed: %v\nstderr:\n%s", err, stderr.String())
	}

	out := stdout.String()
	for _, want := range []string{
		"graph:",
		"cyclops:",              // trace summary line
		"phases:",               // Trace.String now includes the phase ratios
		"replication factor:",   // engine-specific summary
		"top 5 vertices:",       // result rendering
		"skew profile: cyclops", // -skew report
		"wrote trace to",
		"wrote traffic matrix to",
		"recorded run-001-cyclops", // -record flight record
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	// The flight record is complete: manifest with the CLI's metadata stamped
	// in, plus both per-superstep CSVs.
	run := filepath.Join(recDir, "run-001-cyclops")
	manifest, err := os.ReadFile(filepath.Join(run, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"engine": "cyclops"`, `"algorithm": "PR"`, `"dataset": "wiki"`,
		`"machines": 2`, `"workers_per_machine": 2`,
	} {
		if !strings.Contains(string(manifest), want) {
			t.Errorf("manifest missing %s:\n%s", want, manifest)
		}
	}
	for _, name := range []string{"series.csv", "timings.csv"} {
		body, err := os.ReadFile(filepath.Join(run, name))
		if err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(string(body), "\n"); lines < 2 {
			t.Errorf("%s has %d lines, want a header plus supersteps", name, lines)
		}
	}

	// The convergence telemetry is live: the CLI wires Residual into the
	// engine, so the recorded series carries non-empty residual quantiles.
	series, err := os.ReadFile(filepath.Join(run, "series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(string(series)), "\n")
	cols := strings.Split(rows[0], ",")
	residN := -1
	for i, c := range cols {
		if c == "residual_n" {
			residN = i
		}
	}
	if residN < 0 {
		t.Fatalf("series header lacks residual_n: %q", rows[0])
	}
	populated := false
	for _, row := range rows[1:] {
		if f := strings.Split(row, ","); len(f) > residN && f[residN] != "0" {
			populated = true
			break
		}
	}
	if !populated {
		t.Errorf("residual telemetry never populated:\n%s", series)
	}

	trace, err := os.ReadFile(traceCSV)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(trace), "\n"); lines < 2 {
		t.Errorf("trace CSV has %d lines, want a header plus supersteps", lines)
	}

	comm, err := os.ReadFile(commCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(comm), obs.CommCSVHeader) {
		t.Errorf("comm CSV header = %q, want %q", firstLine(string(comm)), obs.CommCSVHeader)
	}
	if lines := strings.Count(string(comm), "\n"); lines < 2 {
		t.Errorf("comm CSV has %d lines, want a header plus traffic rows", lines)
	}
}

func TestSlowPhaseFlagParsing(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// A malformed factor must fail in flag parsing, before any run starts.
	if err := cliMain([]string{"-slow-phase", "fast", "-dataset", "wiki", "-scale", "0.01"},
		&stdout, &stderr); err == nil {
		t.Fatal("non-numeric -slow-phase accepted")
	}
	if !strings.Contains(stderr.String(), "slow-phase") {
		t.Errorf("parse error does not name the flag:\n%s", stderr.String())
	}

	// A valid factor parses and reaches the tracer; <=1 disables the slow-phase
	// detector, so a tiny run completes without slow-phase warnings even under
	// a noisy test machine.
	stdout.Reset()
	stderr.Reset()
	err := cliMain([]string{"-dataset", "wiki", "-scale", "0.01", "-algo", "PR",
		"-engine", "cyclops", "-steps", "5", "-slow-phase", "1", "-verbose"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run with -slow-phase 1 failed: %v\nstderr:\n%s", err, stderr.String())
	}
	if strings.Contains(stderr.String(), "slow-phase") {
		t.Errorf("-slow-phase 1 should disable the detector:\n%s", stderr.String())
	}
}

func TestCLIErrorsReturnNotExit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := cliMain([]string{"-engine", "nope", "-dataset", "wiki", "-scale", "0.01"},
		&stdout, &stderr); err == nil {
		t.Fatal("unknown engine must surface as an error")
	}
	if err := cliMain(nil, &stdout, &stderr); err == nil {
		t.Fatal("missing -dataset/-graph must surface as an error")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
