package main

import (
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"go/ast"
)

// newExportImporter resolves imports from compiler export data files: the
// map from import path to .a/.x file comes from `go list -export` in
// standalone mode or from the vet.cfg PackageFile map in vettool mode. The
// "unsafe" pseudo-package is served directly.
func newExportImporter(fset *token.FileSet, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFiles[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return unsafeAware{importer.ForCompiler(fset, "gc", lookup)}
}

type unsafeAware struct{ inner types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.inner.Import(path)
}

// parseFiles parses the listed Go files (paths relative to dir unless
// absolute) with comments, as the analyzers and the allow machinery need
// them.
func parseFiles(fset *token.FileSet, dir string, goFiles []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
