package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs realMain with stdout/stderr redirected to temp files and
// returns the exit code plus both outputs.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	open := func(name string) *os.File {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	stdout, stderr := open("stdout"), open("stderr")
	code := realMain(args, stdout, stderr)
	read := func(f *os.File) string {
		f.Close()
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return code, read(stdout), read(stderr)
}

func TestVetProtocolVersion(t *testing.T) {
	code, out, _ := capture(t, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full exit = %d, want 0", code)
	}
	// go vet caches on this line; it must name the tool and be stable.
	if !strings.Contains(out, "cyclops-lint version") {
		t.Errorf("-V=full output %q lacks version string", out)
	}
}

func TestVetProtocolFlags(t *testing.T) {
	code, out, _ := capture(t, "-flags")
	if code != 0 {
		t.Fatalf("-flags exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("-flags output = %q, want []", out)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{
		"determinism", "transporterr", "atomicmix", "hookbalance", "sendlocked",
		"bufretain", "codecsym", "slotaddr", "allocfree",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output lacks analyzer %q:\n%s", name, out)
		}
	}
}

func TestVetCfgDetection(t *testing.T) {
	for arg, want := range map[string]bool{
		"vet.cfg":      true,
		"/tmp/vet.cfg": true,
		".cfg":         false, // bare suffix only, no name
		"./...":        false,
		"a.go":         false,
	} {
		if got := isVetCfg(arg); got != want {
			t.Errorf("isVetCfg(%q) = %v, want %v", arg, got, want)
		}
	}
}

func TestMissingVetCfgIsDriverError(t *testing.T) {
	code, _, errOut := capture(t, filepath.Join(t.TempDir(), "nope.cfg"))
	if code != 1 {
		t.Fatalf("missing cfg exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "cyclops-lint:") {
		t.Errorf("stderr %q lacks tool prefix", errOut)
	}
}
