package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"sort"
	"strings"

	"cyclops/internal/lint"
	"cyclops/internal/lint/analysis"
)

// finding is one reported diagnostic, shaped for both terminal and JSON
// (the CI step uploads the JSON as an artifact).
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// report is the -json artifact: what fired, what was intentionally allowed,
// and which allow directives no longer suppress anything.
type report struct {
	Findings    []finding        `json:"findings"`
	AllowsUsed  []analysis.Allow `json:"allows_used"`
	StaleAllows []analysis.Allow `json:"stale_allows"`
}

func runStandalone(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("cyclops-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.String("json", "", "write a findings report (JSON) to this `file`")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	metas, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "cyclops-lint: %v\n", err)
		return 1
	}
	exports := map[string]string{}
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	rep := report{Findings: []finding{}}
	for _, m := range metas {
		if m.DepOnly || m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		diags, allows, stale, err := checkPackage(fset, imp, m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			fmt.Fprintf(stderr, "cyclops-lint: %s: %v\n", m.ImportPath, err)
			return 1
		}
		rep.Findings = append(rep.Findings, diags...)
		rep.AllowsUsed = append(rep.AllowsUsed, allows...)
		rep.StaleAllows = append(rep.StaleAllows, stale...)
	}

	// A stale allow is itself a finding: exceptions must stay honest.
	for _, a := range rep.StaleAllows {
		rep.Findings = append(rep.Findings, finding{
			Analyzer: "allow",
			File:     a.File,
			Line:     a.Line,
			Message:  fmt.Sprintf("stale //lint:allow %s directive suppresses nothing; delete it", a.Analyzer),
		})
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	for _, f := range rep.Findings {
		fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	fmt.Fprintf(stderr, "cyclops-lint: %d finding(s), %d intentional allow(s) in effect, %d stale allow(s)\n",
		len(rep.Findings), len(rep.AllowsUsed), len(rep.StaleAllows))
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "cyclops-lint: write %s: %v\n", *jsonOut, err)
			return 1
		}
	}
	if len(rep.Findings) > 0 {
		return 2
	}
	return 0
}

// pkgMeta is the subset of `go list -json` output the driver needs.
type pkgMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
}

// goList enumerates the requested packages plus their transitive deps, with
// compiler export data built for every one of them (-export populates
// .Export from the build cache; no network involved).
func goList(patterns []string) ([]pkgMeta, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Export",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var metas []pkgMeta
	dec := json.NewDecoder(&out)
	for dec.More() {
		var m pkgMeta
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// checkPackage parses, type-checks and analyzes one package, returning the
// unsuppressed findings in non-test files, the allow directives that fired,
// and the stale ones.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) ([]finding, []analysis.Allow, []analysis.Allow, error) {
	files, err := parseFiles(fset, dir, goFiles)
	if err != nil {
		return nil, nil, nil, err
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typecheck: %v", err)
	}
	return analyzePackage(fset, files, pkg, info)
}

// analyzePackage runs the full suite over one type-checked package and
// applies the //lint:allow suppression filter.
func analyzePackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]finding, []analysis.Allow, []analysis.Allow, error) {
	sup := analysis.NewSuppressor(analysis.ParseAllows(fset, files))
	var out []finding
	for _, a := range lint.Analyzers() {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			p := fset.Position(d.Pos)
			if strings.HasSuffix(p.Filename, "_test.go") {
				continue // tests exercise the runtime checkers; contracts bind prod code
			}
			if sup.Suppressed(a.Name, p.Filename, p.Line) {
				continue
			}
			out = append(out, finding{
				Analyzer: a.Name,
				File:     p.Filename,
				Line:     p.Line,
				Col:      p.Column,
				Message:  d.Message,
			})
		}
	}
	var used, stale []analysis.Allow
	for _, a := range sup.Used() {
		used = append(used, a)
	}
	for _, a := range sup.Unused() {
		stale = append(stale, a)
	}
	sortAllows(used)
	sortAllows(stale)
	return out, used, stale, nil
}

func sortAllows(as []analysis.Allow) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].File != as[j].File {
			return as[i].File < as[j].File
		}
		return as[i].Line < as[j].Line
	})
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
