package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
)

// vetConfig mirrors the JSON the go command writes for a -vettool
// invocation (cmd/go's internal vetConfig): one package's files, its import
// resolution map, and where compiled export data for each dependency lives.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes the single package described by a vet.cfg file, in
// the unitchecker style: plain-text diagnostics, exit 2 when something
// fired, and an (empty — this suite exports no facts) .vetx output so the
// go command's caching contract holds.
func runVetTool(cfgPath string, stdout, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "cyclops-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "cyclops-lint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o644); err != nil {
			fmt.Fprintf(stderr, "cyclops-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Resolve each import path through ImportMap (vendoring/test-variant
	// canonicalization), then to its export data file.
	exportFiles := map[string]string{}
	for path, file := range cfg.PackageFile {
		exportFiles[path] = file
	}
	for from, to := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[to]; ok {
			exportFiles[from] = f
		}
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "cyclops-lint: %v\n", err)
		return 1
	}
	info := newTypesInfo()
	conf := types.Config{Importer: newExportImporter(fset, exportFiles)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "cyclops-lint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	findings, _, _, err := analyzePackage(fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(stderr, "cyclops-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
