// Command cyclops-lint runs the internal/lint analyzer suite — the static
// half of the repo's correctness story. The analyzers prove structural
// invariants over every call site that the runtime machinery (replica
// auditor, flight recorder, chaos tests) can only check on executed paths:
// §3.6 replay determinism, the PR 4 transport-error taxonomy, single-mode
// atomic access, obs.Hooks begin/end pairing, no sends under locks, and the
// four hot-path contracts behind the binary wire overhaul — arena buffers
// must not escape their round (bufretain), codec Append/EncodedSize/Decode
// must agree byte for byte (codecsym), engine supersteps must address CSR
// slots rather than probe ID-keyed maps (slotaddr), and //lint:hotpath
// functions must not allocate (allocfree).
//
// Two modes:
//
//	cyclops-lint [-json out.json] [packages...]   # standalone, default ./...
//	go vet -vettool=$(which cyclops-lint) ./...   # unitchecker-compatible
//
// Standalone mode loads packages with `go list -deps -export` and
// type-checks against compiler export data, so it needs no network and no
// GOPATH layout. Analysis covers non-test Go files (tests exercise the
// runtime checkers; production code carries the structural contracts).
//
// Exit status: 0 clean, 1 driver error, 2 findings (unsuppressed). An
// intentional exception is annotated in source as
//
//	//lint:allow <analyzer> <reason>
//
// on the finding's line or the line above; used allows are counted in the
// summary and stale ones (suppressing nothing) are themselves findings.
package main

import (
	"fmt"
	"os"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr *os.File) int {
	// go vet's vettool protocol: `tool -V=full` prints the version (cache
	// key), `tool -flags` enumerates tool flags, `tool <file>.cfg` analyzes
	// one package described by the config.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			// Bumped whenever the analyzer set or semantics change: go vet
			// keys its result cache on this line, and a stale cache would
			// silently skip the new checks.
			fmt.Fprintln(stdout, "cyclops-lint version 2 (stdlib go/analysis suite)")
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case isVetCfg(args[0]):
			return runVetTool(args[0], stdout, stderr)
		}
	}
	return runStandalone(args, stdout, stderr)
}

func isVetCfg(arg string) bool {
	const suffix = ".cfg"
	return len(arg) > len(suffix) && arg[len(arg)-len(suffix):] == suffix
}
