// Command graphgen generates the synthetic datasets that substitute for the
// paper's Table 1 graphs, writing them as SNAP-style edge lists.
//
// Examples:
//
//	graphgen -list
//	graphgen -dataset gweb -scale 0.5 -o gweb.txt
//	graphgen -type rmat -scale-exp 14 -o rmat.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list named datasets")
		dsName   = flag.String("dataset", "", "named dataset to generate")
		typ      = flag.String("type", "", "raw generator: powerlaw, rmat, er, road, community, bipartite")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default: stats only)")
		binary   = flag.Bool("binary", false, "write the compact binary CSR format instead of text")
		n        = flag.Int("n", 10000, "vertices (raw generators)")
		deg      = flag.Int("deg", 6, "out-degree / per-vertex edges (raw generators)")
		scaleExp = flag.Int("scale-exp", 12, "RMAT scale exponent (|V| = 2^scale-exp)")
	)
	flag.Parse()

	if *list {
		fmt.Println("named datasets (paper Table 1 substitutions):")
		for _, name := range gen.Names() {
			g, meta, err := gen.Dataset(name, 0.05, 1)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-9s %-5s paper |V|=%-8d |E|=%-9d (at -scale 0.05: |V|=%d |E|=%d)\n",
				name, meta.Algorithm, meta.PaperV, meta.PaperE, g.NumVertices(), g.NumEdges())
		}
		return
	}

	var g *graph.Graph
	switch {
	case *dsName != "":
		var err error
		g, _, err = gen.Dataset(*dsName, *scale, *seed)
		if err != nil {
			fatal(err)
		}
	case *typ != "":
		g = rawGenerate(*typ, *n, *deg, *scaleExp, *seed)
	default:
		fatal(fmt.Errorf("one of -dataset or -type is required (see -list)"))
	}

	fmt.Println(graph.ComputeStats(g))
	if *out != "" {
		write := graph.WriteFile
		if *binary {
			write = graph.WriteBinaryFile
		}
		if err := write(*out, g); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}

func rawGenerate(typ string, n, deg, scaleExp int, seed int64) *graph.Graph {
	switch typ {
	case "powerlaw":
		return gen.PowerLaw(n, deg, seed)
	case "rmat":
		return gen.RMAT(scaleExp, deg, 0.57, 0.19, 0.19, seed)
	case "er":
		return gen.ErdosRenyi(n, n*deg, seed)
	case "road":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Road(side, side, 0.02, seed)
	case "community":
		g, _ := gen.Community(n/50+1, 50, deg/2+1, 1, seed)
		return g
	case "bipartite":
		return gen.Bipartite(n, n/10+1, deg, seed)
	default:
		fatal(fmt.Errorf("unknown generator type %q", typ))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
