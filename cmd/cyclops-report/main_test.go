package main

// Golden-file tests for the diff gate: an identical baseline/current pair must
// return nil (CI exit 0) and a perturbed pair must return an error naming the
// regressed metric (CI exit 1). The fixtures are written by the tests
// themselves so they track the real report schema.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/obs"
	"cyclops/internal/report"
)

func fixtureBaseline() report.Baseline {
	return report.Baseline{
		Scale: 0.25,
		Seed:  1,
		Entries: []report.Entry{
			{Experiment: "pagerank", Engine: "hama", Algorithm: "PR", Dataset: "gweb",
				Supersteps: 42, Messages: 2519118, Bytes: 40305888, ModelMs: 110.18},
			{Experiment: "pagerank", Engine: "cyclops", Algorithm: "PR", Dataset: "gweb",
				Supersteps: 45, Messages: 1329773, Bytes: 21276368, Replicas: 39040, ModelMs: 56.31},
		},
	}
}

func writeBaseline(t *testing.T, dir, name string, b report.Baseline) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := report.Write(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffIdenticalExitsClean(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, "base.json", fixtureBaseline())
	cur := writeBaseline(t, dir, "cur.json", fixtureBaseline())
	var out, errw strings.Builder
	if err := cliMain([]string{"diff", base, cur}, &out, &errw); err != nil {
		t.Fatalf("identical diff returned %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "No regressions") {
		t.Errorf("missing clean summary:\n%s", out.String())
	}
	for _, metric := range []string{"supersteps=", "messages=", "bytes=", "replicas=", "model_ms~"} {
		if !strings.Contains(out.String(), metric) {
			t.Errorf("diff table missing %q:\n%s", metric, out.String())
		}
	}
}

func TestDiffPerturbedNamesRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, "base.json", fixtureBaseline())
	perturbed := fixtureBaseline()
	perturbed.Entries[0].Messages += 1000
	cur := writeBaseline(t, dir, "cur.json", perturbed)

	var out, errw strings.Builder
	err := cliMain([]string{"diff", base, cur}, &out, &errw)
	if err == nil {
		t.Fatalf("perturbed diff returned nil\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "messages") {
		t.Errorf("error %q does not name the regressed metric", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") ||
		!strings.Contains(out.String(), "pagerank/hama#0") {
		t.Errorf("markdown lacks the regression row:\n%s", out.String())
	}
}

func TestDiffModelTolFlag(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, "base.json", fixtureBaseline())
	drifted := fixtureBaseline()
	drifted.Entries[0].ModelMs *= 1.08 // outside 5%, inside 10%
	cur := writeBaseline(t, dir, "cur.json", drifted)

	var out strings.Builder
	if err := cliMain([]string{"diff", base, cur}, &out, &out); err == nil {
		t.Error("8% model drift passed the default 5% band")
	}
	out.Reset()
	if err := cliMain([]string{"diff", "-model-tol", "0.10", base, cur}, &out, &out); err != nil {
		t.Errorf("8%% drift failed a 10%% band: %v", err)
	}
}

func TestDiffAgainstRecordDir(t *testing.T) {
	// The gate's real invocation: committed JSON baseline vs a fresh -record
	// directory.
	dir := t.TempDir()
	m := obs.Manifest{Run: "run-001-hama", Experiment: "pagerank", Engine: "hama",
		Algorithm: "PR", Dataset: "gweb", Supersteps: 42, Messages: 2519118,
		Bytes: 40305888, ModelNanos: 110.18e6}
	recDir := filepath.Join(dir, "rec")
	if err := os.MkdirAll(filepath.Join(recDir, m.Run), 0o755); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(recDir, m.Run, "manifest.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	b := fixtureBaseline()
	b.Entries = b.Entries[:1]
	base := writeBaseline(t, dir, "base.json", b)

	var out strings.Builder
	if err := cliMain([]string{"diff", base, recDir}, &out, &out); err != nil {
		t.Fatalf("baseline-vs-record-dir diff failed: %v\n%s", err, out.String())
	}
}

func TestListAndShow(t *testing.T) {
	dir := t.TempDir()
	run := filepath.Join(dir, "run-001-cyclops")
	if err := os.MkdirAll(run, 0o755); err != nil {
		t.Fatal(err)
	}
	m := obs.Manifest{Run: "run-001-cyclops", Experiment: "pagerank", Engine: "cyclops",
		Supersteps: 45, Messages: 1329773, ModelNanos: 56.31e6}
	blob, _ := json.Marshal(m)
	if err := os.WriteFile(filepath.Join(run, "manifest.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(run, "series.csv"),
		[]byte("step,active\n1,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := cliMain([]string{"list", dir}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "run-001-cyclops") ||
		!strings.Contains(out.String(), "1329773") {
		t.Errorf("list output:\n%s", out.String())
	}

	out.Reset()
	if err := cliMain([]string{"show", dir, "run-001-cyclops"}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"engine": "cyclops"`) &&
		!strings.Contains(out.String(), `"engine":"cyclops"`) {
		t.Errorf("show output lacks manifest:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "series.csv") {
		t.Errorf("show output lacks series:\n%s", out.String())
	}
}

func TestShowCritPath(t *testing.T) {
	dir := t.TempDir()
	run := filepath.Join(dir, "run-001-cyclops")
	if err := os.MkdirAll(run, 0o755); err != nil {
		t.Fatal(err)
	}
	// Two supersteps whose path rows sum to exactly the timings.csv phase
	// totals (prs+cmp+snd+syn): 100+200+300+400=1000 and 10+20+30+40=100.
	critpath := "step,gating_worker,weight,compute_ns,serialize_ns,send_ns,barrier_wait_ns\n" +
		"0,1,9,600,100,200,100\n" +
		"1,0,7,50,10,20,20\n"
	timings := "step,prs_ns,cmp_ns,snd_ns,syn_ns,wall_ns\n" +
		"0,100,500,300,100,1234\n" +
		"1,10,40,30,20,567\n"
	if err := os.WriteFile(filepath.Join(run, "critpath.csv"), []byte(critpath), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(run, "timings.csv"), []byte(timings), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := cliMain([]string{"show", "-critpath", dir, "run-001-cyclops"}, &out, &out); err != nil {
		t.Fatalf("show -critpath failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"gating", "barrier-ms", "w1", "w0", "reconciliation: OK"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("critpath output missing %q:\n%s", want, out.String())
		}
	}

	// Break the reconciliation: the command must fail, loudly.
	bad := strings.Replace(critpath, "600", "601", 1)
	if err := os.WriteFile(filepath.Join(run, "critpath.csv"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := cliMain([]string{"show", "-critpath", dir, "run-001-cyclops"}, &out, &out); err == nil ||
		!strings.Contains(err.Error(), "reconcile") {
		t.Errorf("unreconciled critpath accepted: %v\n%s", err, out.String())
	}

	// No span data at all: a helpful error, not a zero-row table.
	if err := os.Remove(filepath.Join(run, "critpath.csv")); err != nil {
		t.Fatal(err)
	}
	if err := cliMain([]string{"show", "-critpath", dir, "run-001-cyclops"}, &out, &out); err == nil {
		t.Error("missing critpath.csv accepted")
	}
}

func TestShowHeat(t *testing.T) {
	dir := t.TempDir()
	run := filepath.Join(dir, "run-001-cyclops")
	if err := os.MkdirAll(run, 0o755); err != nil {
		t.Fatal(err)
	}
	// Two workers, two supersteps. Step 0's gating worker w1 is boundary-heavy
	// (bnd 90+60 vs w0's 10+40, means 75); step 1's gating worker w0 is
	// compute-heavy (600 vs mean 350).
	heat := obs.HeatCSVHeader + "\n" +
		"0,0,5,100,3,10,3,40,20\n" +
		"0,1,5,110,2,90,2,60,25\n" +
		"1,0,4,600,1,50,1,50,30\n" +
		"1,1,4,100,1,50,1,50,30\n"
	hotset := obs.HotsetCSVHeader + "\n" +
		"1,7,1,120,40\n" +
		"2,3,0,80,200\n"
	critpath := "step,gating_worker,weight,compute_ns,serialize_ns,send_ns,barrier_wait_ns\n" +
		"0,1,9,600,100,200,100\n" +
		"1,0,7,50,10,20,20\n"
	for name, body := range map[string]string{
		"heat.csv": heat, "hotset.csv": hotset, "critpath.csv": critpath,
	} {
		if err := os.WriteFile(filepath.Join(run, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var out strings.Builder
	if err := cliMain([]string{"show", "-heat", dir, "run-001-cyclops"}, &out, &out); err != nil {
		t.Fatalf("show -heat failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"partition heat map", "hot vertices", "straggler root causes",
		"boundary-message-heavy", "compute-heavy",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("heat output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "unknown") {
		t.Errorf("complete record produced an unknown root cause:\n%s", out.String())
	}

	// No heat data at all: a helpful error, not a zero-row table.
	if err := os.Remove(filepath.Join(run, "heat.csv")); err != nil {
		t.Fatal(err)
	}
	if err := cliMain([]string{"show", "-heat", dir, "run-001-cyclops"}, &out, &out); err == nil {
		t.Error("missing heat.csv accepted")
	}
}

func TestDiffHeatDigest(t *testing.T) {
	// Two record dirs identical except for one count in heat.csv: the heat
	// digest must flag the structural change exactly.
	writeRec := func(t *testing.T, root, heatRow string) {
		run := filepath.Join(root, "run-001-cyclops")
		if err := os.MkdirAll(run, 0o755); err != nil {
			t.Fatal(err)
		}
		m := obs.Manifest{Run: "run-001-cyclops", Experiment: "pagerank", Engine: "cyclops",
			Supersteps: 1, Messages: 100, Bytes: 800, ModelNanos: 1e6}
		blob, _ := json.Marshal(m)
		files := map[string]string{
			"manifest.json": string(blob),
			"heat.csv":      obs.HeatCSVHeader + "\n" + heatRow,
			"hotset.csv":    obs.HotsetCSVHeader + "\n1,7,1,120,40\n",
		}
		for name, body := range files {
			if err := os.WriteFile(filepath.Join(run, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	dir := t.TempDir()
	a, b, c := filepath.Join(dir, "a"), filepath.Join(dir, "b"), filepath.Join(dir, "c")
	writeRec(t, a, "0,0,5,100,3,10,3,40,20\n")
	writeRec(t, b, "0,0,5,100,3,10,3,40,20\n")
	writeRec(t, c, "0,0,5,100,3,10,3,40,21\n")

	var out strings.Builder
	if err := cliMain([]string{"diff", a, b}, &out, &out); err != nil {
		t.Fatalf("identical heat digests diffed dirty: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "heat=") {
		t.Errorf("diff table missing the heat metric:\n%s", out.String())
	}
	out.Reset()
	err := cliMain([]string{"diff", a, c}, &out, &out)
	if err == nil || !strings.Contains(err.Error(), "heat") {
		t.Errorf("changed heat count not flagged: %v\n%s", err, out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{nil, {"bogus"}, {"list"}, {"show", "x"}, {"diff", "one"}} {
		if err := cliMain(args, &out, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
