// Command cyclops-report inspects and diffs flight records produced by
// cyclops-run/cyclops-bench -record.
//
//	cyclops-report list <record-dir>
//	cyclops-report show [-critpath] [-mem] <record-dir> <run-name>
//	cyclops-report diff [-model-tol 0.05] [-alloc-tol 0.25] <baseline> <current>
//
// diff's sides are each either a record directory (its run-* manifests are
// normalized) or a baseline JSON file (BENCH_baseline.json). Deterministic
// counts — supersteps, messages, bytes, wire bytes, replicas, replica value
// bytes — must match exactly (any wire/payload ratio change fails); model
// time and allocations per superstep get relative tolerance bands. The exit
// status is non-zero when any metric regresses, which is what the CI
// perf-gate keys off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
	"cyclops/internal/report"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-report:", err)
		os.Exit(1)
	}
}

// cliMain is the whole CLI behind a testable seam: args in, output to the
// given writers, errors (including diff regressions) returned instead of
// exiting.
func cliMain(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "list":
		if len(args) != 2 {
			return usageError()
		}
		return list(args[1], stdout)
	case "show":
		fs := flag.NewFlagSet("cyclops-report show", flag.ContinueOnError)
		fs.SetOutput(stderr)
		critpath := fs.Bool("critpath", false, "print the per-superstep critical-path breakdown instead of the raw record")
		mem := fs.Bool("mem", false, "print the per-superstep memory telemetry (mem.csv) instead of the raw record")
		heat := fs.Bool("heat", false, "print the partition heat map, hot-vertex set and straggler root causes instead of the raw record")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return usageError()
		}
		if *critpath {
			return showCritPath(fs.Arg(0), fs.Arg(1), stdout)
		}
		if *mem {
			return showMem(fs.Arg(0), fs.Arg(1), stdout)
		}
		if *heat {
			return showHeat(fs.Arg(0), fs.Arg(1), stdout)
		}
		return show(fs.Arg(0), fs.Arg(1), stdout)
	case "diff":
		fs := flag.NewFlagSet("cyclops-report diff", flag.ContinueOnError)
		fs.SetOutput(stderr)
		modelTol := fs.Float64("model-tol", 0.05, "relative tolerance for model_ms")
		allocTol := fs.Float64("alloc-tol", 0.25, "relative tolerance for allocs_per_superstep (quarantined telemetry)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return usageError()
		}
		return diff(fs.Arg(0), fs.Arg(1), *modelTol, *allocTol, stdout)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: cyclops-report list <dir> | show [-critpath] [-mem] [-heat] <dir> <run> | diff [-model-tol F] [-alloc-tol F] <baseline> <current>")
}

func list(dir string, w io.Writer) error {
	ms, err := obs.ReadManifests(dir)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		fmt.Fprintf(w, "no runs recorded under %s\n", dir)
		return nil
	}
	fmt.Fprintf(w, "%-24s %-10s %-10s %6s %12s %10s %12s\n",
		"run", "experiment", "engine", "steps", "messages", "model-ms", "wall-ms")
	for _, m := range ms {
		exp := m.Experiment
		if exp == "" {
			exp = "-"
		}
		fmt.Fprintf(w, "%-24s %-10s %-10s %6d %12d %10.1f %12.1f\n",
			m.Run, exp, m.Engine, m.Supersteps, m.Messages,
			m.ModelNanos/1e6, float64(m.WallNanos)/1e6)
	}
	return nil
}

func show(dir, run string, w io.Writer) error {
	blob, err := os.ReadFile(filepath.Join(dir, run, "manifest.json"))
	if err != nil {
		return err
	}
	var m obs.Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("parse manifest: %w", err)
	}
	fmt.Fprintf(w, "%s", blob)
	for _, name := range []string{"series.csv", "timings.csv", "mem.csv"} {
		body, err := os.ReadFile(filepath.Join(dir, run, name))
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "\n%s:\n%s", name, body)
	}
	return nil
}

// showCritPath renders a run's critical-path attribution: one row per
// superstep naming the worker that gated the barrier and splitting its wall
// into compute / serialize / send / barrier-wait. The row sum equals the
// superstep's phase-wall total, so the footer reconciles the table against
// timings.csv (prs+cmp+snd+syn summed over the run) and errors on mismatch —
// the span stream and the phase timers must account for the same time.
func showCritPath(dir, run string, w io.Writer) error {
	blob, err := os.ReadFile(filepath.Join(dir, run, "critpath.csv"))
	if err != nil {
		return fmt.Errorf("no critical-path data (was the run recorded with span tracing?): %w", err)
	}
	paths, err := span.ParseCritPathCSV(blob)
	if err != nil {
		return err
	}
	phaseWalls, err := readPhaseWalls(filepath.Join(dir, run, "timings.csv"))
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%4s %6s %10s %12s %12s %12s %12s %12s\n",
		"step", "gating", "weight", "compute-ms", "serialize-ms", "send-ms", "barrier-ms", "wall-ms")
	var tot span.StepPath
	for _, p := range paths {
		fmt.Fprintf(w, "%4d %6s %10d %12.3f %12.3f %12.3f %12.3f %12.3f\n",
			p.Step, fmt.Sprintf("w%d", p.Gating), p.Weight,
			float64(p.ComputeNs)/1e6, float64(p.SerializeNs)/1e6,
			float64(p.SendNs)/1e6, float64(p.BarrierNs)/1e6, float64(p.Wall())/1e6)
		tot.Weight += p.Weight
		tot.ComputeNs += p.ComputeNs
		tot.SerializeNs += p.SerializeNs
		tot.SendNs += p.SendNs
		tot.BarrierNs += p.BarrierNs
	}
	fmt.Fprintf(w, "%4s %6s %10d %12.3f %12.3f %12.3f %12.3f %12.3f\n",
		"sum", "", tot.Weight,
		float64(tot.ComputeNs)/1e6, float64(tot.SerializeNs)/1e6,
		float64(tot.SendNs)/1e6, float64(tot.BarrierNs)/1e6, float64(tot.Wall())/1e6)

	var timingsTotal int64
	for _, v := range phaseWalls {
		timingsTotal += v
	}
	fmt.Fprintf(w, "timings.csv phase total: %.3f ms over %d superstep(s)\n",
		float64(timingsTotal)/1e6, len(phaseWalls))
	if len(paths) != len(phaseWalls) {
		return fmt.Errorf("critpath.csv has %d rows but timings.csv has %d", len(paths), len(phaseWalls))
	}
	if tot.Wall() != timingsTotal {
		return fmt.Errorf("critical-path wall %dns does not reconcile with timings.csv phase total %dns",
			tot.Wall(), timingsTotal)
	}
	fmt.Fprintln(w, "reconciliation: OK (critical-path columns sum to the timings.csv phase totals)")
	return nil
}

// readPhaseWalls parses timings.csv into per-row phase-wall totals
// (prs+cmp+snd+syn — the superstep wall the span stream accounts for; the
// wall_ns column is the recorder's own clock and is ignored here).
func readPhaseWalls(path string) ([]int64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "step,") {
		return nil, fmt.Errorf("%s: unrecognised header", path)
	}
	cols := strings.Split(lines[0], ",")
	want := map[string]bool{"prs_ns": true, "cmp_ns": true, "snd_ns": true, "syn_ns": true}
	var out []int64
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		f := strings.Split(ln, ",")
		if len(f) != len(cols) {
			return nil, fmt.Errorf("%s: %d columns, want %d", path, len(f), len(cols))
		}
		var sum int64
		for i, name := range cols {
			if !want[name] {
				continue
			}
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: %s %q", path, name, f[i])
			}
			sum += v
		}
		out = append(out, sum)
	}
	return out, nil
}

// showMem renders a run's memory telemetry: the quarantined mem.csv rows plus
// a per-phase allocation summary. Every number here is machine-dependent —
// the table is for reading trends, never for exact comparison.
func showMem(dir, run string, w io.Writer) error {
	blob, err := os.ReadFile(filepath.Join(dir, run, "mem.csv"))
	if err != nil {
		return fmt.Errorf("no memory telemetry (was the run recorded by a pre-observatory binary?): %w", err)
	}
	steps, err := obs.ParseMemCSV(blob)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s %12s %10s %10s %10s %10s %4s %10s %12s\n",
		"step", "alloc-bytes", "prs-kb", "cmp-kb", "snd-kb", "syn-kb", "gcs", "pause-us", "heap-live")
	var totBytes, totObjs uint64
	for _, s := range steps {
		fmt.Fprintf(w, "%4d %12d %10.1f %10.1f %10.1f %10.1f %4d %10.1f %12d\n",
			s.Step, s.StepBytes,
			float64(s.PhaseBytes[0])/1024, float64(s.PhaseBytes[1])/1024,
			float64(s.PhaseBytes[2])/1024, float64(s.PhaseBytes[3])/1024,
			s.GCCycles, float64(s.GCPauseNs)/1e3, s.HeapLive)
		totBytes += s.StepBytes
		totObjs += s.StepObjects
	}
	if n := len(steps); n > 0 {
		fmt.Fprintf(w, "total: %d bytes, %d objects over %d superstep(s); mean %.0f allocs/superstep\n",
			totBytes, totObjs, n, float64(totObjs)/float64(n))
	}
	fmt.Fprintln(w, "note: all columns are quarantined telemetry (machine- and GC-schedule-dependent)")
	return nil
}

// showHeat renders a run's heat observatory: the per-(superstep, worker) heat
// map from heat.csv, the final top-k hot-vertex set from hotset.csv, and a
// straggler root-cause table joining each superstep's critpath.csv gating
// worker against its heat row. The cause names which load dimension put that
// worker on the critical path: compute volume, boundary messages, or
// replica-sync traffic.
func showHeat(dir, run string, w io.Writer) error {
	heatBlob, err := os.ReadFile(filepath.Join(dir, run, "heat.csv"))
	if err != nil {
		return fmt.Errorf("no heat data (was the run recorded by a pre-heat-observatory binary?): %w", err)
	}
	rows, err := obs.ParseHeatCSV(heatBlob)
	if err != nil {
		return err
	}
	var hot []obs.HotVertex
	if blob, err := os.ReadFile(filepath.Join(dir, run, "hotset.csv")); err == nil {
		if hot, err = obs.ParseHotsetCSV(blob); err != nil {
			return err
		}
	}
	gating := make(map[int]int) // step → gating worker
	if blob, err := os.ReadFile(filepath.Join(dir, run, "critpath.csv")); err == nil {
		paths, err := span.ParseCritPathCSV(blob)
		if err != nil {
			return err
		}
		for _, p := range paths {
			gating[p.Step] = int(p.Gating)
		}
	}

	byStep := make(map[int][]obs.HeatPartition)
	var steps []int
	for _, r := range rows {
		if _, seen := byStep[r.Step]; !seen {
			steps = append(steps, r.Step)
		}
		byStep[r.Step] = append(byStep[r.Step], r)
	}

	fmt.Fprintf(w, "partition heat map: %s (* = gating worker)\n", run)
	fmt.Fprintf(w, "%4s %7s %8s %10s %9s %9s %8s %8s %9s\n",
		"step", "worker", "active", "units", "out-int", "out-bnd", "in-bnd", "sync", "")
	for _, s := range steps {
		for _, r := range byStep[s] {
			mark := ""
			if gw, ok := gating[s]; ok && gw == r.Worker {
				mark = "*"
			}
			fmt.Fprintf(w, "%4d %7s %8d %10d %9d %9d %8d %8d %9s\n",
				r.Step, fmt.Sprintf("w%d", r.Worker), r.Active, r.ComputeUnits,
				r.OutInterior, r.OutBoundary, r.InBoundary, r.ReplicaSync, mark)
		}
	}

	if len(hot) > 0 {
		fmt.Fprintf(w, "\nhot vertices (cumulative, msgs desc):\n")
		fmt.Fprintf(w, "%4s %10s %7s %10s %10s\n", "rank", "vertex", "worker", "msgs", "units")
		for i, h := range hot {
			fmt.Fprintf(w, "%4d %10d %7s %10d %10d\n", i+1, h.Vertex, fmt.Sprintf("w%d", h.Worker), h.Msgs, h.Units)
		}
	}

	if len(gating) == 0 {
		fmt.Fprintln(w, "\nno critpath.csv: straggler root causes unavailable")
		return nil
	}
	fmt.Fprintf(w, "\nstraggler root causes (gating worker's load vs the step mean):\n")
	fmt.Fprintf(w, "%4s %7s %-24s %12s %12s %12s\n",
		"step", "gating", "cause", "units/mean", "bnd/mean", "sync/mean")
	for _, s := range steps {
		gw, ok := gating[s]
		if !ok {
			continue
		}
		var row *obs.HeatPartition
		var meanUnits, meanBnd, meanSync float64
		for i := range byStep[s] {
			r := &byStep[s][i]
			meanUnits += float64(r.ComputeUnits)
			meanBnd += float64(r.OutBoundary + r.InBoundary)
			meanSync += float64(r.ReplicaSync)
			if r.Worker == gw {
				row = r
			}
		}
		n := float64(len(byStep[s]))
		meanUnits, meanBnd, meanSync = meanUnits/n, meanBnd/n, meanSync/n
		if row == nil {
			fmt.Fprintf(w, "%4d %7s %-24s %12s %12s %12s\n",
				s, fmt.Sprintf("w%d", gw), "unknown (no heat row)", "-", "-", "-")
			continue
		}
		cause := rootCause(*row, meanUnits, meanBnd, meanSync)
		fmt.Fprintf(w, "%4d %7s %-24s %12s %12s %12s\n",
			s, fmt.Sprintf("w%d", gw), cause,
			fratio(float64(row.ComputeUnits), meanUnits),
			fratio(float64(row.OutBoundary+row.InBoundary), meanBnd),
			fratio(float64(row.ReplicaSync), meanSync))
	}
	return nil
}

// rootCause classifies why a gating worker was slowest from its heat row: the
// load dimension furthest above the step mean wins; a worker near the mean on
// every dimension is "balanced", qualified by its dominant absolute volume; a
// worker with no load at all is "idle" (it gated on coordination, not load).
func rootCause(row obs.HeatPartition, meanUnits, meanBnd, meanSync float64) string {
	units := float64(row.ComputeUnits)
	bnd := float64(row.OutBoundary + row.InBoundary)
	sync := float64(row.ReplicaSync)
	if units == 0 && bnd == 0 && sync == 0 {
		return "idle"
	}
	best, bestRatio := "", 0.0
	for _, d := range []struct {
		name    string
		v, mean float64
	}{
		{"compute-heavy", units, meanUnits},
		{"boundary-message-heavy", bnd, meanBnd},
		{"replica-sync-heavy", sync, meanSync},
	} {
		if d.mean <= 0 {
			continue
		}
		if r := d.v / d.mean; r > bestRatio {
			bestRatio, best = r, d.name
		}
	}
	if best != "" && bestRatio > 1.05 {
		return best
	}
	// Near the mean everywhere: the straggle isn't skew. Name the dominant
	// volume so the row still says what the worker spent the step on.
	switch {
	case units >= bnd && units >= sync:
		return "balanced (compute-bound)"
	case bnd >= sync:
		return "balanced (message-bound)"
	default:
		return "balanced (sync-bound)"
	}
}

// fratio renders a load/mean ratio cell; "-" when the step mean is zero.
func fratio(v, mean float64) string {
	if mean <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v/mean)
}

func diff(oldPath, newPath string, modelTol, allocTol float64, w io.Writer) error {
	base, err := report.Load(oldPath)
	if err != nil {
		return err
	}
	cur, err := report.Load(newPath)
	if err != nil {
		return err
	}
	res := report.Diff(base, cur, report.Options{ModelTol: modelTol, AllocTol: allocTol})
	if err := res.WriteMarkdown(w); err != nil {
		return err
	}
	return res.Err()
}
