// Command cyclops-report inspects and diffs flight records produced by
// cyclops-run/cyclops-bench -record.
//
//	cyclops-report list <record-dir>
//	cyclops-report show <record-dir> <run-name>
//	cyclops-report diff [-model-tol 0.05] <baseline> <current>
//
// diff's sides are each either a record directory (its run-* manifests are
// normalized) or a baseline JSON file (BENCH_baseline.json). Deterministic
// counts — supersteps, messages, bytes, replicas — must match exactly; model
// time gets a relative tolerance band. The exit status is non-zero when any
// metric regresses, which is what the CI perf-gate keys off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cyclops/internal/obs"
	"cyclops/internal/report"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-report:", err)
		os.Exit(1)
	}
}

// cliMain is the whole CLI behind a testable seam: args in, output to the
// given writers, errors (including diff regressions) returned instead of
// exiting.
func cliMain(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "list":
		if len(args) != 2 {
			return usageError()
		}
		return list(args[1], stdout)
	case "show":
		if len(args) != 3 {
			return usageError()
		}
		return show(args[1], args[2], stdout)
	case "diff":
		fs := flag.NewFlagSet("cyclops-report diff", flag.ContinueOnError)
		fs.SetOutput(stderr)
		modelTol := fs.Float64("model-tol", 0.05, "relative tolerance for model_ms")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return usageError()
		}
		return diff(fs.Arg(0), fs.Arg(1), *modelTol, stdout)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: cyclops-report list <dir> | show <dir> <run> | diff [-model-tol F] <baseline> <current>")
}

func list(dir string, w io.Writer) error {
	ms, err := obs.ReadManifests(dir)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		fmt.Fprintf(w, "no runs recorded under %s\n", dir)
		return nil
	}
	fmt.Fprintf(w, "%-24s %-10s %-10s %6s %12s %10s %12s\n",
		"run", "experiment", "engine", "steps", "messages", "model-ms", "wall-ms")
	for _, m := range ms {
		exp := m.Experiment
		if exp == "" {
			exp = "-"
		}
		fmt.Fprintf(w, "%-24s %-10s %-10s %6d %12d %10.1f %12.1f\n",
			m.Run, exp, m.Engine, m.Supersteps, m.Messages,
			m.ModelNanos/1e6, float64(m.WallNanos)/1e6)
	}
	return nil
}

func show(dir, run string, w io.Writer) error {
	blob, err := os.ReadFile(filepath.Join(dir, run, "manifest.json"))
	if err != nil {
		return err
	}
	var m obs.Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("parse manifest: %w", err)
	}
	fmt.Fprintf(w, "%s", blob)
	for _, name := range []string{"series.csv", "timings.csv"} {
		body, err := os.ReadFile(filepath.Join(dir, run, name))
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "\n%s:\n%s", name, body)
	}
	return nil
}

func diff(oldPath, newPath string, modelTol float64, w io.Writer) error {
	base, err := report.Load(oldPath)
	if err != nil {
		return err
	}
	cur, err := report.Load(newPath)
	if err != nil {
		return err
	}
	res := report.Diff(base, cur, report.Options{ModelTol: modelTol})
	if err := res.WriteMarkdown(w); err != nil {
		return err
	}
	return res.Err()
}
