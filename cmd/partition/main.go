// Command partition evaluates graph partitioners on a graph: edge-cut,
// balance and the Cyclops replication factor of Figure 11.
//
// Examples:
//
//	partition -dataset wiki -k 48
//	partition -graph web.txt -k 12 -algo metis
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/partition"
)

func main() {
	var (
		dsName    = flag.String("dataset", "", "synthetic dataset name")
		graphFile = flag.String("graph", "", "edge-list file")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		seed      = flag.Int64("seed", 1, "random seed")
		k         = flag.Int("k", 48, "number of partitions")
		algo      = flag.String("algo", "", "only this partitioner (hash, metis, range); default all")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *dsName != "":
		var err error
		g, _, err = gen.Dataset(*dsName, *scale, *seed)
		if err != nil {
			fatal(err)
		}
	case *graphFile != "":
		var err error
		g, _, err = graph.LoadFile(*graphFile)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -dataset or -graph is required"))
	}
	fmt.Printf("graph: %s\n\n", graph.ComputeStats(g))

	partitioners := []partition.Partitioner{
		partition.Hash{},
		partition.Multilevel{Seed: *seed},
		partition.Range{},
	}
	fmt.Printf("%-8s %10s %10s %10s %12s\n", "algo", "cut", "cut%", "balance", "replication")
	for _, p := range partitioners {
		if *algo != "" && p.Name() != *algo {
			continue
		}
		a, err := p.Partition(g, *k)
		if err != nil {
			fatal(err)
		}
		cut := a.EdgeCut(g)
		fmt.Printf("%-8s %10d %9.1f%% %10.3f %12.2f\n",
			p.Name(), cut, 100*float64(cut)/float64(g.NumEdges()),
			a.Balance(), a.ReplicationFactor(g))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
