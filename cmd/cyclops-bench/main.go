// Command cyclops-bench regenerates the paper's evaluation artifacts
// (Figures 3, 9–13 and Tables 2–4 of the HPDC'14 Cyclops paper). Each
// experiment prints the same rows or series the paper reports, computed on
// scaled synthetic substitutions of the paper's datasets.
//
// Usage:
//
//	cyclops-bench -list
//	cyclops-bench -exp fig9.1 -scale 0.5
//	cyclops-bench -exp all
//	cyclops-bench -exp fig10.1 -verbose               # narrate supersteps (JSONL on stderr)
//	cyclops-bench -exp fig9.2 -debug-addr :6060       # live /metrics, /trace, /debug/pprof
//	cyclops-bench -exp fig10.2 -trace steps.csv       # per-superstep CSV of every run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/harness"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/report"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default laptop size)")
		seed      = flag.Int64("seed", 1, "random seed for synthetic datasets")
		mach      = flag.Int("machines", 6, "simulated machines (paper: 6)")
		workers   = flag.Int("workers", 8, "workers per machine (paper: 8)")
		eps       = flag.Float64("eps", 1e-9, "PageRank convergence bound")
		traceCSV  = flag.String("trace", "", "write per-superstep statistics of every engine run to this CSV file")
		commCSV   = flag.String("comm", "", "write the last engine run's per-superstep worker×worker traffic matrix to this CSV file")
		record    = flag.String("record", "", "record every engine run as a flight-record directory under this path, plus a normalized BENCH_baseline.json")
		skew      = flag.Bool("skew", false, "print each run's load-imbalance profile after the experiments")
		audit     = flag.Bool("audit", false, "verify engine invariants each superstep; a violation fails the experiment")
		debugAddr = flag.String("debug-addr", "", "serve live diagnostics (/metrics, /trace, /comm, /spans, /profiles, /debug/pprof) on this address")
		slowPhase = flag.Float64("slow-phase", 3, "warn when a phase runs slower than this factor times its trailing mean (<=1 disables the detector)")
		profDir   = flag.String("profile-dir", "", "continuously harvest pprof CPU/heap captures into this directory, tagged with the superstep in flight")
		verbose   = flag.Bool("verbose", false, "narrate each experiment's supersteps as JSONL events on stderr")
		faultSeed = flag.Int64("fault-seed", 0, "derive the faults experiment's fault plan from this seed instead of -seed (0 = use -seed)")
		faultPlan = flag.String("fault-plan", "", "load the faults experiment's fault plan from this JSON file (overrides -fault-seed; format: internal/fault)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-8s  %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	// Fail fast on unusable output paths: a typo'd -trace/-comm/-record must
	// abort before the experiments run, not after.
	if *traceCSV != "" {
		if err := obs.EnsureWritableFile(*traceCSV); err != nil {
			fatal(fmt.Errorf("-trace %s: %w", *traceCSV, err))
		}
	}
	if *commCSV != "" {
		if err := obs.EnsureWritableFile(*commCSV); err != nil {
			fatal(fmt.Errorf("-comm %s: %w", *commCSV, err))
		}
	}
	var rec *obs.Recorder
	if *record != "" {
		var err error
		if rec, err = obs.NewRecorder(*record); err != nil {
			fatal(fmt.Errorf("-record %s: %w", *record, err))
		}
		rec.SetMeta(obs.RunMeta{
			Seed:              *seed,
			Scale:             *scale,
			Machines:          *mach,
			WorkersPerMachine: *workers,
		})
	}

	o := harness.Options{
		Scale:             *scale,
		Seed:              *seed,
		Machines:          *mach,
		WorkersPerMachine: *workers,
		Eps:               *eps,
		Audit:             *audit,
	}
	if *faultPlan != "" {
		p, err := fault.Load(*faultPlan)
		if err != nil {
			fatal(fmt.Errorf("-fault-plan %s: %w", *faultPlan, err))
		}
		o.FaultPlan = &p
	} else if *faultSeed != 0 {
		p := fault.NewPlan(*faultSeed, (*mach)*(*workers), 2, 8, 3)
		o.FaultPlan = &p
	}

	// Live observability: a tracer narrates supersteps (to stderr when
	// -verbose, ring-buffer-only otherwise), a collector feeds /metrics, a
	// comm tracker accumulates the traffic matrix and a skew profiler folds
	// worker stats into imbalance coefficients. With no flags set, Hooks
	// stays nil and engines keep their fast path.
	var hookList []obs.Hooks
	var tracer *obs.Tracer
	topts := obs.TracerOptions{SlowFactor: *slowPhase}
	if *verbose {
		tracer = obs.NewTracer(os.Stderr, topts)
	} else if *debugAddr != "" {
		tracer = obs.NewTracer(nil, topts)
	}
	if tracer != nil {
		hookList = append(hookList, tracer)
	}
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntime(reg)
		hookList = append(hookList, obs.NewCollector(reg))
	}
	var comm *obs.CommTracker
	if *commCSV != "" || *debugAddr != "" {
		comm = obs.NewCommTracker()
		hookList = append(hookList, comm)
	}
	var skewProf *obs.SkewProfiler
	if *skew {
		skewProf = obs.NewSkewProfiler(reg) // reg may be nil: report-only mode
		hookList = append(hookList, skewProf)
	}
	var spans *obs.SpanTracker
	var mem *obs.MemTracker
	var heat *obs.HeatTracker
	if *debugAddr != "" {
		spans = obs.NewSpanTracker()
		hookList = append(hookList, spans)
		mem = obs.NewMemTracker()
		hookList = append(hookList, mem)
		heat = obs.NewHeatTracker()
		hookList = append(hookList, heat)
	}
	var harvester *obs.Harvester
	if *profDir != "" {
		var err error
		if harvester, err = obs.NewHarvester(*profDir, obs.HarvesterOptions{}); err != nil {
			fatal(fmt.Errorf("-profile-dir %s: %w", *profDir, err))
		}
		hookList = append(hookList, harvester)
		harvester.Start()
		defer harvester.Stop()
	}
	if rec != nil {
		if harvester != nil {
			rec.SetProfileSource(harvester.Dir(), harvester.Files)
		}
		hookList = append(hookList, rec)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg, tracer.Ring(), comm, *record, spans, *profDir, mem, heat)
		if err != nil {
			fatal(err)
		}
		// Shutdown (not Close) so an in-flight /metrics scrape racing the
		// process exit still completes.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
		}()
		fmt.Fprintf(os.Stderr, "cyclops-bench: diagnostics at %s\n", srv.URL())
	}
	o.Hooks = obs.Multi(hookList...)

	var traces []*metrics.Trace
	if *traceCSV != "" {
		o.TraceSink = func(t *metrics.Trace) { traces = append(traces, t) }
	}

	runOne := func(e harness.Experiment) error {
		if rec != nil {
			// Stamp the experiment id into the manifests of the runs it spawns
			// so cyclops-report can match them against a baseline.
			rec.SetExperiment(e.ID)
		}
		if tracer != nil {
			tracer.Logger().Info("experiment-start", "span", "experiment", "id", e.ID, "title", e.Title)
		}
		err := e.Run(o, os.Stdout)
		if tracer != nil {
			tracer.Logger().Info("experiment-end", "span", "experiment", "id", e.ID, "err", err != nil)
		}
		return err
	}
	run := func() error {
		if *exp == "all" {
			for _, e := range harness.Experiments() {
				fmt.Printf("\n================ %s — %s ================\n", e.ID, e.Title)
				if err := runOne(e); err != nil {
					return fmt.Errorf("%s: %w", e.ID, err)
				}
			}
			return nil
		}
		e, ok := harness.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "cyclops-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Printf("%s — %s\n\n", e.ID, e.Title)
		return runOne(e)
	}
	if err := run(); err != nil {
		fatal(err)
	}

	if rec != nil {
		if err := rec.Err(); err != nil {
			fatal(err)
		}
		ms := rec.Manifests()
		baseline := filepath.Join(*record, "BENCH_baseline.json")
		// FromManifestsDir (not FromManifests) so the baseline carries the
		// critical-path and quarantined allocation fields read back from the
		// run directories alongside the manifests' exact counters.
		if err := report.Write(baseline, report.FromManifestsDir(*record, ms)); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d runs under %s, baseline at %s\n", len(ms), *record, baseline)
	}

	if *traceCSV != "" {
		f, err := os.Create(*traceCSV)
		if err != nil {
			fatal(err)
		}
		if err := metrics.WriteCSVAll(f, traces...); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d run traces to %s\n", len(traces), *traceCSV)
	}
	if skewProf != nil {
		fmt.Println("\nskew profiles (imbalance = max/mean across workers, peak over supersteps):")
		for _, rep := range skewProf.Reports() {
			fmt.Println(" ", rep)
		}
	}
	if *commCSV != "" {
		f, err := os.Create(*commCSV)
		if err != nil {
			fatal(err)
		}
		if err := comm.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote traffic matrix to %s\n", *commCSV)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cyclops-bench:", err)
	os.Exit(1)
}
