// Command cyclops-bench regenerates the paper's evaluation artifacts
// (Figures 3, 9–13 and Tables 2–4 of the HPDC'14 Cyclops paper). Each
// experiment prints the same rows or series the paper reports, computed on
// scaled synthetic substitutions of the paper's datasets.
//
// Usage:
//
//	cyclops-bench -list
//	cyclops-bench -exp fig9.1 -scale 0.5
//	cyclops-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclops/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default laptop size)")
		seed    = flag.Int64("seed", 1, "random seed for synthetic datasets")
		mach    = flag.Int("machines", 6, "simulated machines (paper: 6)")
		workers = flag.Int("workers", 8, "workers per machine (paper: 8)")
		eps     = flag.Float64("eps", 1e-9, "PageRank convergence bound")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-8s  %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	o := harness.Options{
		Scale:             *scale,
		Seed:              *seed,
		Machines:          *mach,
		WorkersPerMachine: *workers,
		Eps:               *eps,
	}

	if *exp == "all" {
		if err := harness.RunAll(o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cyclops-bench:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := harness.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "cyclops-bench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("%s — %s\n\n", e.ID, e.Title)
	if err := e.Run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cyclops-bench:", err)
		os.Exit(1)
	}
}
