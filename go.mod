module cyclops

go 1.22
