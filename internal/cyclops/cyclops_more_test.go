package cyclops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/partition"
)

// ancestorMax is the reachability fixpoint maxProg converges to.
func ancestorMax(g *graph.Graph) []float64 {
	n := g.NumVertices()
	val := make([]float64, n)
	for v := range val {
		val[v] = float64(v)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			for _, u := range g.OutNeighbors(graph.ID(v)) {
				if val[v] > val[u] {
					val[u] = val[v]
					changed = true
				}
			}
		}
	}
	return val
}

// Property: on arbitrary random graphs, worker counts, thread counts and
// receiver counts, the Cyclops engine reaches the reachability fixpoint —
// the distributed immutable view plus distributed activation loses nothing.
func TestMaxPropagationProperty(t *testing.T) {
	f := func(seed int64, shape uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		b := graph.NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.ID(rng.Intn(n)), graph.ID(rng.Intn(n)))
		}
		g := b.MustBuild()
		cc := cluster.Config{
			Machines:          int(shape)%4 + 1,
			WorkersPerMachine: int(shape>>2)%3 + 1,
			Threads:           int(shape>>4)%4 + 1,
			Receivers:         int(shape>>6)%3 + 1,
		}
		e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
			Cluster:       cc,
			MaxSupersteps: 10 * n,
		})
		if err != nil {
			return false
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		want := ancestorMax(g)
		got := e.Values()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: trace message totals equal the transport's delivered counts —
// nothing is double-counted or lost between the engine and the wire.
func TestTraceMatchesTransportProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.PowerLaw(150, 4, seed)
		e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
			Cluster: cluster.Flat(3, 1),
		})
		if err != nil {
			return false
		}
		trace, err := e.Run()
		if err != nil {
			return false
		}
		return trace.TotalMessages() == e.TransportStats().Messages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeOfMsgAccounting(t *testing.T) {
	g := gen.PowerLaw(200, 4, 5)
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:   cluster.Flat(3, 1),
		SizeOfMsg: func(float64) int64 { return 11 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.TransportStats()
	if st.Messages == 0 {
		t.Fatal("expected traffic")
	}
	if st.Bytes != st.Messages*16 { // 5 header + 11 payload
		t.Fatalf("bytes = %d for %d messages", st.Bytes, st.Messages)
	}
}

func TestMoreReceiversThanBatches(t *testing.T) {
	// 2 workers but 8 receivers per worker: receivers idle harmlessly.
	g := ringGraph(16)
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.MT(2, 2, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for v, val := range e.Values() {
		if val != 15 {
			t.Fatalf("vertex %d = %g", v, val)
		}
	}
}

func TestIngressDeterministic(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2)
	a, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(4, 1), Partitioner: partition.Multilevel{Seed: 9},
	})
	b, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(4, 1), Partitioner: partition.Multilevel{Seed: 9},
	})
	if a.Ingress().Replicas != b.Ingress().Replicas {
		t.Fatalf("ingress not deterministic: %d vs %d replicas",
			a.Ingress().Replicas, b.Ingress().Replicas)
	}
}

func TestSelfLoopDoesNotDeadlockActivation(t *testing.T) {
	// A self-loop makes a vertex its own in- and out-neighbor; the engine
	// must neither create a self-replica nor loop forever.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(2, 1),
		Partitioner:   partition.Range{},
		MaxSupersteps: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) >= 50 {
		t.Fatal("self-loop run did not terminate")
	}
	if got := e.Values(); got[1] != 1 || got[2] != 2 {
		t.Fatalf("values = %v", got)
	}
}

func TestIsolatedVerticesTerminateImmediately(t *testing.T) {
	g := graph.NewBuilder(10).MustBuild() // 10 isolated vertices
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(3, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Everyone computes once (all start active), publishes to nobody,
	// nothing activates: exactly one superstep.
	if len(trace.Steps) != 1 {
		t.Fatalf("steps = %d, want 1", len(trace.Steps))
	}
	if trace.TotalMessages() != 0 {
		t.Fatal("isolated vertices must not message")
	}
}

func TestCloseIdempotent(t *testing.T) {
	g := ringGraph(4)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChangedCountTracksEqualHook(t *testing.T) {
	g := ringGraph(8)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 1),
		Equal:   func(a, b float64) bool { return a == b },
	})
	trace, _ := e.Run()
	// Step 0 on a directed ring: only vertex 0 sees a larger in-neighbor
	// (n-1), so exactly one published value differs from the seeded view;
	// the other publishes re-announce the init value and count as unchanged.
	if trace.Steps[0].Changed != 1 {
		t.Fatalf("step 0 changed = %d, want 1 (only vertex 0 improves)", trace.Steps[0].Changed)
	}
	if len(trace.Steps) < 2 || trace.Steps[1].Changed == 0 {
		t.Fatal("step 1 must record changed values (max flows around the ring)")
	}
}
