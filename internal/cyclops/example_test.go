package cyclops_test

import (
	"fmt"

	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

// degreeProg publishes each vertex's in-degree to its neighbors and
// computes the sum of neighbor degrees — a minimal two-superstep program
// exercising the immutable view.
type degreeProg struct{}

func (degreeProg) Init(id graph.ID, g *graph.Graph) (float64, float64, bool) {
	return 0, float64(g.InDegree(id)), true
}

func (degreeProg) Compute(ctx *cyclops.Context[float64, float64]) {
	var sum float64
	for i := 0; i < ctx.InDegree(); i++ {
		sum += ctx.NeighborMessage(i)
	}
	ctx.SetValue(sum)
	// No Publish: one superstep of reading the view suffices, and without
	// activation everyone goes back to sleep.
}

// Example runs a tiny Cyclops job over a diamond graph and prints each
// vertex's sum of in-neighbor in-degrees.
func Example() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // diamond: 0 → {1,2} → 3
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()

	engine, err := cyclops.New[float64, float64](g, degreeProg{},
		cyclops.Config[float64, float64]{Cluster: cluster.Flat(2, 1)})
	if err != nil {
		panic(err)
	}
	if _, err := engine.Run(); err != nil {
		panic(err)
	}
	for v, sum := range engine.Values() {
		fmt.Printf("vertex %d: %.0f\n", v, sum)
	}
	fmt.Printf("replicas created: %d\n", engine.Ingress().Replicas)
	// Output:
	// vertex 0: 0
	// vertex 1: 0
	// vertex 2: 0
	// vertex 3: 2
	// replicas created: 2
}
