package cyclops

import (
	"math"
	"testing"
	"testing/quick"

	"cyclops/internal/aggregate"
	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/partition"
)

// maxProg converges every vertex to the maximum vertex id among its
// ancestors (pull-mode max propagation over the immutable view).
type maxProg struct{}

func (maxProg) Init(id graph.ID, _ *graph.Graph) (float64, float64, bool) {
	return float64(id), float64(id), true
}

func (maxProg) Compute(ctx *Context[float64, float64]) {
	best := ctx.Value()
	for i := 0; i < ctx.InDegree(); i++ {
		if m := ctx.NeighborMessage(i); m > best {
			best = m
		}
	}
	if best > ctx.Value() {
		ctx.SetValue(best)
		ctx.Publish(best, true)
	} else if ctx.Superstep() == 0 {
		ctx.Publish(best, true) // announce once so successors see us
	}
}

func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.ID(v), graph.ID((v+1)%n))
	}
	return b.MustBuild()
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddWeightedEdge(graph.ID(v), graph.ID(v+1), 1)
	}
	return b.MustBuild()
}

func TestMaxPropagationRing(t *testing.T) {
	g := ringGraph(40)
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for v, val := range e.Values() {
		if val != 39 {
			t.Fatalf("vertex %d = %g, want 39", v, val)
		}
	}
}

func TestMaxPropagationMTEquivalence(t *testing.T) {
	g := gen.PowerLaw(500, 4, 11)
	configs := []cluster.Config{
		cluster.Flat(1, 1),
		cluster.Flat(3, 2),
		cluster.MT(3, 4, 2),
	}
	var want []float64
	for i, cc := range configs {
		e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{Cluster: cc})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		got := e.Values()
		if i == 0 {
			want = got
			continue
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("config %v: vertex %d = %g, want %g", cc, v, got[v], want[v])
			}
		}
	}
}

func TestEngineNameReflectsHierarchy(t *testing.T) {
	g := ringGraph(8)
	flat, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{Cluster: cluster.Flat(2, 2)})
	mt, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{Cluster: cluster.MT(2, 4, 2)})
	if flat.Trace().Engine != "cyclops" {
		t.Errorf("flat engine name = %q", flat.Trace().Engine)
	}
	if mt.Trace().Engine != "cyclopsmt" {
		t.Errorf("mt engine name = %q", mt.Trace().Engine)
	}
}

func TestReplicaWiringSmallGraph(t *testing.T) {
	// Vertices 0,1 on worker 0; 2,3 on worker 1 (range partition).
	// Edges: 0→2 (spanning), 2→1 (spanning), 0→1 (local), 3→2 (local).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(2, 1)
	b.AddEdge(0, 1)
	b.AddEdge(3, 2)
	g := b.MustBuild()
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:     cluster.Flat(2, 1),
		Partitioner: partition.Range{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 has a spanning out-edge to worker 1 → one replica on 1.
	if got := e.ReplicaWorkers(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("replicas of 0 = %v, want [1]", got)
	}
	// Vertex 2 has a spanning out-edge to worker 0 → one replica on 0.
	if got := e.ReplicaWorkers(2); len(got) != 1 || got[0] != 0 {
		t.Errorf("replicas of 2 = %v, want [0]", got)
	}
	// Vertices 1 and 3 have no spanning out-edges → no replicas.
	if got := e.ReplicaWorkers(1); len(got) != 0 {
		t.Errorf("replicas of 1 = %v, want none", got)
	}
	if got := e.ReplicaWorkers(3); len(got) != 0 {
		t.Errorf("replicas of 3 = %v, want none", got)
	}
	if e.Ingress().Replicas != 2 {
		t.Errorf("total replicas = %d, want 2", e.Ingress().Replicas)
	}
}

// Property: the engine's realised replica count must equal the partition
// package's independent ReplicationFactor computation.
func TestReplicationFactorMatchesPartitionMetric(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%6 + 2
		g := gen.PowerLaw(300, 4, seed)
		e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
			Cluster: cluster.Flat(k, 1),
		})
		if err != nil {
			return false
		}
		want := e.Assignment().ReplicationFactor(g)
		got := e.ReplicationFactor()
		return math.Abs(want-got) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// lagProg checks immutable-view semantics: each vertex publishes the current
// superstep number; neighbors must read exactly the previous superstep's
// publication (never the current one).
type lagProg struct {
	t *testing.T
}

func (p lagProg) Init(id graph.ID, _ *graph.Graph) (float64, float64, bool) {
	return -1, -1, true
}

func (p lagProg) Compute(ctx *Context[float64, float64]) {
	step := float64(ctx.Superstep())
	for i := 0; i < ctx.InDegree(); i++ {
		if got := ctx.NeighborMessage(i); got != step-1 {
			p.t.Errorf("step %g: neighbor view = %g, want %g", step, got, step-1)
		}
	}
	ctx.Publish(step, true)
}

func TestImmutableViewLagsExactlyOneSuperstep(t *testing.T) {
	// Complete-ish graph over 3 workers so local and remote neighbors mix.
	b := graph.NewBuilder(9)
	for u := 0; u < 9; u++ {
		for v := 0; v < 9; v++ {
			if u != v {
				b.AddEdge(graph.ID(u), graph.ID(v))
			}
		}
	}
	g := b.MustBuild()
	e, err := New[float64, float64](g, lagProg{t}, Config[float64, float64]{
		Cluster:       cluster.Flat(3, 1),
		MaxSupersteps: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestImmutableViewLagsMT(t *testing.T) {
	b := graph.NewBuilder(12)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			if u != v {
				b.AddEdge(graph.ID(u), graph.ID(v))
			}
		}
	}
	g := b.MustBuild()
	e, err := New[float64, float64](g, lagProg{t}, Config[float64, float64]{
		Cluster:       cluster.MT(3, 4, 2),
		MaxSupersteps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// distProg is pull-mode SSSP over the view.
type distProg struct{}

func (distProg) Init(id graph.ID, _ *graph.Graph) (float64, float64, bool) {
	if id == 0 {
		return 0, 0, true
	}
	return math.Inf(1), math.Inf(1), false
}

func (distProg) Compute(ctx *Context[float64, float64]) {
	best := ctx.Value()
	for i := 0; i < ctx.InDegree(); i++ {
		if d := ctx.NeighborMessage(i) + ctx.InWeight(i); d < best {
			best = d
		}
	}
	if best < ctx.Value() {
		ctx.SetValue(best)
		ctx.Publish(best, true)
	} else if ctx.Superstep() == 0 && ctx.Vertex() == 0 {
		ctx.Publish(0, true)
	}
}

func TestDistancePropagationAndActivation(t *testing.T) {
	const n = 25
	g := pathGraph(n)
	e, err := New[float64, float64](g, distProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range e.Values() {
		if d != float64(v) {
			t.Fatalf("dist[%d] = %g, want %d", v, d, v)
		}
	}
	// Push-mode dynamic computation: only the wavefront computes, so total
	// active vertex-steps should be ≈ n + n (source announce + one per hop),
	// far below n per superstep.
	var activeTotal int64
	for _, s := range trace.Steps {
		activeTotal += s.Active
	}
	if activeTotal > int64(3*n) {
		t.Errorf("active vertex-steps = %d; dynamic activation is broken", activeTotal)
	}
}

func TestMessageCountOnePerReplicaPerChange(t *testing.T) {
	// Star: hub 0 → spokes on 3 other workers. One publish by the hub must
	// produce exactly (#replica workers) messages.
	b := graph.NewBuilder(13)
	for v := 1; v < 13; v++ {
		b.AddEdge(0, graph.ID(v))
	}
	g := b.MustBuild()
	e, err := New[float64, float64](g, distProg{}, Config[float64, float64]{
		Cluster:     cluster.Flat(4, 1),
		Partitioner: partition.Hash{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	replicas := int64(len(e.ReplicaWorkers(0)))
	msgs := e.TransportStats().Messages
	// The hub publishes once (step 0); spokes change once but have no
	// replicas (no out-edges) — so total messages == hub's replica count.
	if msgs != replicas {
		t.Fatalf("messages = %d, want %d (one per replica)", msgs, replicas)
	}
}

// republishProg publishes the same constant every superstep; with Equal set,
// all republications after the first must be suppressed.
type republishProg struct{}

func (republishProg) Init(id graph.ID, _ *graph.Graph) (float64, float64, bool) {
	return 7, 0, true
}

func (republishProg) Compute(ctx *Context[float64, float64]) {
	ctx.Publish(7, false)
	if ctx.Superstep() < 3 {
		ctx.Publish(7, false)
	}
	// Keep ourselves alive via in-neighbors: nothing to do, rely on
	// MaxSupersteps; vertices deactivate (no activation requested).
}

func TestUnchangedRepublishSuppressed(t *testing.T) {
	g := ringGraph(10)
	e, err := New[float64, float64](g, republishProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(2, 1),
		MaxSupersteps: 4,
		Equal:         func(a, b float64) bool { return a == b },
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Step 0: view goes 0→7, so messages flow. No activation was requested,
	// so everything deactivates and the run stops after step 0.
	if len(trace.Steps) != 1 {
		t.Fatalf("steps = %d, want 1 (no activation)", len(trace.Steps))
	}
	if trace.Steps[0].Messages == 0 {
		t.Fatal("first publish must sync replicas")
	}
}

// aggSumProg exercises aggregators across workers and threads.
type aggSumProg struct{}

func (aggSumProg) Init(id graph.ID, _ *graph.Graph) (float64, float64, bool) {
	return float64(id), float64(id), true
}

func (aggSumProg) Compute(ctx *Context[float64, float64]) {
	ctx.Aggregate("ids", float64(ctx.Vertex()))
	ctx.Publish(ctx.Value(), ctx.Superstep() == 0) // two steps total
}

func TestAggregatorAcrossThreads(t *testing.T) {
	g := ringGraph(20)
	var got float64 = -1
	e, err := New[float64, float64](g, aggSumProg{}, Config[float64, float64]{
		Cluster:       cluster.MT(2, 3, 2),
		MaxSupersteps: 3,
		OnStep: func(step int, e *Engine[float64, float64]) {
			if step == 0 {
				got, _ = e.Aggregates().Value("ids")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 190 { // Σ 0..19
		t.Fatalf("aggregate = %g, want 190", got)
	}
}

func TestHaltFuncStops(t *testing.T) {
	g := ringGraph(30)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 1),
		Halt:    aggregate.MaxSteps(3, nil),
	})
	trace, _ := e.Run()
	if len(trace.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(trace.Steps))
	}
}

func TestCheckpointRestore(t *testing.T) {
	g := ringGraph(32)
	var snap State[float64, float64]
	captured := false
	e1, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:         cluster.Flat(2, 2),
		CheckpointEvery: 5,
		Checkpoints: func(s State[float64, float64]) error {
			if !captured {
				snap, captured = s, true
			}
			return nil
		},
	})
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	if !captured || snap.Step != 5 {
		t.Fatalf("checkpoint: captured=%v step=%d", captured, snap.Step)
	}
	e2, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 2),
	})
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	v1, v2 := e1.Values(), e2.Values()
	for v := range v1 {
		if v1[v] != v2[v] {
			t.Fatalf("vertex %d: %g vs %g", v, v1[v], v2[v])
		}
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	e, _ := New[float64, float64](ringGraph(5), maxProg{}, Config[float64, float64]{})
	bad := State[float64, float64]{Step: 1, Values: make([]float64, 3), View: make([]float64, 3), Active: make([]bool, 3)}
	if err := e.Restore(bad); err == nil {
		t.Fatal("wrong-shape restore must fail")
	}
}

func TestRequiredArguments(t *testing.T) {
	if _, err := New[float64, float64](nil, maxProg{}, Config[float64, float64]{}); err == nil {
		t.Error("nil graph must error")
	}
	if _, err := New[float64, float64](ringGraph(3), nil, Config[float64, float64]{}); err == nil {
		t.Error("nil program must error")
	}
}

func TestMTReducesReplicasVsFlat(t *testing.T) {
	// Fig 9/Table 2 story: 6 machines × 8 workers needs far more replicas
	// than 6 machines × 1 worker × 8 threads, because replicas are
	// per-worker.
	g := gen.PowerLaw(2000, 6, 21)
	flat, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{Cluster: cluster.Flat(6, 8)})
	mt, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{Cluster: cluster.MT(6, 8, 2)})
	if mt.Ingress().Replicas >= flat.Ingress().Replicas {
		t.Fatalf("MT replicas %d !< flat replicas %d",
			mt.Ingress().Replicas, flat.Ingress().Replicas)
	}
}

func TestViewOfAndWorkerLookups(t *testing.T) {
	g := ringGraph(10)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{Cluster: cluster.Flat(2, 1)})
	if got := e.ViewOf(3); got != 3 {
		t.Fatalf("ViewOf(3) = %g before run", got)
	}
	if w := e.MasterWorker(3); w != e.Assignment().Of[3] {
		t.Fatal("MasterWorker disagrees with assignment")
	}
}
