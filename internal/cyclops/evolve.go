package cyclops

import (
	"errors"
	"fmt"

	"cyclops/internal/graph"
)

// Topology mutation is the paper's first item of future work (§8: "Cyclops
// currently has no support for topology mutation of graph yet... We plan to
// add such support"). This file adds it in the epoch style of Kineograph
// (which §7 cites for exactly this): a mutation batch closes the current
// epoch, the distributed immutable view is rebuilt for the grown graph, and
// all master state carries over. Between epochs the view is immutable as
// ever, so programs keep their synchronous, deterministic semantics.

// Evolve returns a new engine over the graph grown by the added edges
// (including any new vertices the edges introduce). All existing vertices
// keep their current value, published view entry and activation flag; new
// vertices are initialised by the program. The endpoints of added edges are
// activated so new information starts flowing on the next Run.
//
// The old engine must not be running; it remains valid but frozen (its
// Run would continue the old topology). Removal is not supported — the
// epochs grow append-only, as in Kineograph.
func (e *Engine[V, M]) Evolve(added []graph.Edge) (*Engine[V, M], error) {
	if len(added) == 0 {
		return nil, errors.New("cyclops: Evolve needs at least one added edge")
	}

	// Build the grown graph: existing edges plus the batch.
	b := graph.NewBuilder(e.g.NumVertices())
	for _, edge := range e.g.Edges() {
		b.AddWeightedEdge(edge.Src, edge.Dst, edge.Weight)
	}
	for _, edge := range added {
		b.AddWeightedEdge(edge.Src, edge.Dst, edge.Weight)
	}
	grown, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cyclops: evolve: %w", err)
	}

	// Reuse the old configuration (partitioner included) for the new epoch.
	// Checkpoint sinks and hooks carry over untouched.
	next, err := New[V, M](grown, e.prog, e.cfg)
	if err != nil {
		return nil, fmt.Errorf("cyclops: evolve: %w", err)
	}
	// Each epoch gets a fresh superstep budget and trace (epochs are
	// separate computations, as in Kineograph).

	// Transfer master state: values, published views, activation.
	oldN := e.g.NumVertices()
	values := make([]V, oldN)
	views := make([]M, oldN)
	active := make([]bool, oldN)
	for _, ws := range e.ws {
		for i, id := range ws.masters {
			values[id] = ws.values[i]
			views[id] = ws.view[i]
			active[id] = ws.active[i] != 0
		}
	}
	for _, ws := range next.ws {
		for i, id := range ws.masters {
			if int(id) >= oldN {
				continue // new vertex: keep its Init state
			}
			ws.values[i] = values[id]
			ws.view[i] = views[id]
			if active[id] {
				ws.active[i] = 1
			}
			// Refresh this master's replicas with the carried-over view —
			// the same unidirectional sync a checkpoint restore performs.
			for _, ref := range ws.replicas.Row(i) {
				next.ws[ref.worker].view[ref.slot] = views[id]
			}
		}
	}

	// Activate the endpoints of the new edges: the targets see new
	// in-neighbors, and the sources must publish so brand-new replicas of
	// theirs hold fresh values (Init-seeded replica views of *old* vertices
	// would otherwise be stale if the carried-over view differs — the loop
	// above already fixed those; activation makes the information flow).
	for _, edge := range added {
		next.activateMaster(edge.Src)
		next.activateMaster(edge.Dst)
	}
	return next, nil
}

// activateMaster sets the activation flag of id's master slot.
func (e *Engine[V, M]) activateMaster(id graph.ID) {
	ws := e.ws[e.assign.Of[id]]
	for i, m := range ws.masters {
		if m == id {
			ws.active[i] = 1
			return
		}
	}
}
