package cyclops

// Fault-injection tests for the replica-invariant auditor (Config.Audit).
// Each test deliberately breaks one of §3.4's invariants mid-run — a replica
// desynchronised behind its master, a replica delivered two sync messages,
// a message aimed at a master slot — and asserts the auditor reports a
// structured violation and fails the run with *obs.AuditError.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"cyclops/internal/cluster"
	"cyclops/internal/graph"
	"cyclops/internal/obs"
	"cyclops/internal/partition"
)

// pulseProg drives the audit graph: vertex 0 publishes once (superstep 0)
// and then goes permanently inactive (it has no in-edges, so nothing
// reactivates it), while the other vertices republish changing values every
// superstep and keep each other active. That leaves vertex 0's replica
// legitimately un-refreshed superstep after superstep — the state a
// desynchronisation must survive in to reach the auditor.
type pulseProg struct{}

func (pulseProg) Init(graph.ID, *graph.Graph) (float64, float64, bool) {
	return 0, 0.1, true
}

func (pulseProg) Compute(ctx *Context[float64, float64]) {
	if ctx.Vertex() == 0 {
		if ctx.Superstep() == 0 {
			ctx.Publish(0.5, true)
		}
		return
	}
	ctx.Publish(float64(ctx.Superstep())*10+float64(ctx.Vertex()), true)
}

// auditGraph: 0→2 spans the cut (replicating vertex 0 onto worker 1), and
// the 1→2→3→1 ring keeps the run alive; vertex 0 has no in-edges.
func auditGraph() *graph.Graph {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 1)
	return b.MustBuild()
}

// fixedPart pins vertices to workers so the tests know where every master
// and replica lives: vertices 0,1 on worker 0; vertices 2,3 on worker 1.
type fixedPart struct{ of []int }

func (fixedPart) Name() string { return "fixed" }

func (p fixedPart) Partition(_ *graph.Graph, k int) (*partition.Assignment, error) {
	return &partition.Assignment{K: k, Of: append([]int(nil), p.of...)}, nil
}

// violationLog records OnViolation calls.
type violationLog struct {
	obs.Nop
	mu  sync.Mutex
	got []obs.Violation
}

func (l *violationLog) OnViolation(v obs.Violation) {
	l.mu.Lock()
	l.got = append(l.got, v)
	l.mu.Unlock()
}

func (l *violationLog) kinds() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := make(map[string]int)
	for _, v := range l.got {
		m[v.Kind]++
	}
	return m
}

func newAuditEngine(t *testing.T, hooks obs.Hooks, onStep func(int, *Engine[float64, float64])) *Engine[float64, float64] {
	t.Helper()
	e, err := New[float64, float64](auditGraph(), pulseProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(2, 1),
		Partitioner:   fixedPart{of: []int{0, 0, 1, 1}},
		MaxSupersteps: 6,
		Audit:         true,
		Hooks:         hooks,
		OnStep:        onStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// replicaSlot locates vertex id's replica slot on worker w.
func replicaSlot(t *testing.T, e *Engine[float64, float64], w int, id graph.ID) int32 {
	t.Helper()
	ws := e.ws[w]
	for r, rid := range ws.replicaIDs {
		if rid == id {
			return int32(ws.numMasters() + r)
		}
	}
	t.Fatalf("vertex %d has no replica on worker %d", id, w)
	return -1
}

func TestAuditCleanRun(t *testing.T) {
	log := &violationLog{}
	e := newAuditEngine(t, log, nil)
	if _, err := e.Run(); err != nil {
		t.Fatalf("clean audited run failed: %v", err)
	}
	if len(log.kinds()) != 0 {
		t.Fatalf("violations on a clean run: %v", log.kinds())
	}
}

func TestAuditCatchesReplicaDesync(t *testing.T) {
	var trace bytes.Buffer
	tracer := obs.NewTracer(&trace, obs.TracerOptions{})
	log := &violationLog{}

	var e *Engine[float64, float64]
	e = newAuditEngine(t, obs.Multi(tracer, log), func(step int, _ *Engine[float64, float64]) {
		if step == 2 {
			// Corrupt vertex 0's replica on worker 1. Its master is inactive
			// and will never republish, so nothing repairs the divergence —
			// only the auditor can see it.
			e.ws[1].view[replicaSlot(t, e, 1, 0)] = 999
		}
	})
	_, err := e.Run()

	var audit *obs.AuditError
	if !errors.As(err, &audit) {
		t.Fatalf("run error = %v, want *obs.AuditError", err)
	}
	v := audit.Violations[0]
	if v.Kind != obs.ViolationReplicaDesync || v.Vertex != 0 || v.Worker != 1 || v.Step != 3 {
		t.Fatalf("violation = %+v, want replica-desync of vertex 0 at worker 1, step 3", v)
	}
	if log.kinds()[obs.ViolationReplicaDesync] == 0 {
		t.Fatalf("OnViolation never fired: %v", log.kinds())
	}
	// The tracer must have rendered the violation as a structured event.
	if !strings.Contains(trace.String(), `"msg":"invariant-violation"`) ||
		!strings.Contains(trace.String(), `"kind":"replica-desync"`) {
		t.Fatalf("trace lacks structured violation event:\n%s", trace.String())
	}
}

func TestAuditCatchesDoubleDelivery(t *testing.T) {
	log := &violationLog{}
	var e *Engine[float64, float64]
	e = newAuditEngine(t, log, func(step int, _ *Engine[float64, float64]) {
		if step == 1 {
			// Deliver vertex 0's replica value twice. The value matches the
			// master's, so the view stays consistent — only the at-most-one-
			// message invariant is broken.
			s := replicaSlot(t, e, 1, 0)
			e.tr.Send(1, 1, []syncMsg[float64]{{Slot: s, Val: 0.5}, {Slot: s, Val: 0.5}})
		}
	})
	_, err := e.Run()

	var audit *obs.AuditError
	if !errors.As(err, &audit) {
		t.Fatalf("run error = %v, want *obs.AuditError", err)
	}
	if log.kinds()[obs.ViolationDoubleDelivery] == 0 {
		t.Fatalf("no double-delivery violation: %v", log.kinds())
	}
	for _, v := range log.got {
		if v.Kind == obs.ViolationDoubleDelivery {
			if v.Vertex != 0 || v.Worker != 1 || v.Step != 2 {
				t.Fatalf("violation = %+v, want vertex 0 at worker 1, step 2", v)
			}
		}
	}
}

func TestAuditCatchesReplicaToMasterTraffic(t *testing.T) {
	log := &violationLog{}
	var e *Engine[float64, float64]
	e = newAuditEngine(t, log, func(step int, _ *Engine[float64, float64]) {
		if step == 1 {
			// Slot 0 on worker 1 is vertex 2's master slot: upward traffic,
			// which the Cyclops communication structure forbids outright.
			e.tr.Send(0, 1, []syncMsg[float64]{{Slot: 0, Val: 777}})
		}
	})
	_, err := e.Run()

	var audit *obs.AuditError
	if !errors.As(err, &audit) {
		t.Fatalf("run error = %v, want *obs.AuditError", err)
	}
	found := false
	for _, v := range log.got {
		if v.Kind == obs.ViolationReplicaToMaster {
			found = true
			if v.Vertex != 2 || v.Worker != 1 || v.Step != 2 {
				t.Fatalf("violation = %+v, want master vertex 2 at worker 1, step 2", v)
			}
		}
	}
	if !found {
		t.Fatalf("no replica-to-master violation: %v", log.kinds())
	}
}
