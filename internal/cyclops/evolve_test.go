package cyclops

import (
	"math"
	"testing"
	"testing/quick"

	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

// evolveSSSPRef is Bellman-Ford over an edge list (local copy to avoid an
// import cycle with the algorithms package).
func evolveSSSPRef(edges []graph.Edge, n int, src graph.ID) []float64 {
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range edges {
			if d := dist[e.Src] + e.Weight; d < dist[e.Dst] {
				dist[e.Dst] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func runSSSP(t *testing.T, g *graph.Graph) *Engine[float64, float64] {
	t.Helper()
	e, err := New[float64, float64](g, distProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(3, 1),
		MaxSupersteps: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEvolveShortcutsUpdateDistances(t *testing.T) {
	// A long path 0→1→…→19, then a shortcut 0→15 appears.
	const n = 20
	g := pathGraph(n)
	e := runSSSP(t, g)
	if got := e.Values()[15]; got != 15 {
		t.Fatalf("pre-evolve dist[15] = %g", got)
	}

	added := []graph.Edge{{Src: 0, Dst: 15, Weight: 2}}
	next, err := e.Evolve(added)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := next.Run(); err != nil {
		t.Fatal(err)
	}
	want := evolveSSSPRef(append(g.Edges(), added...), n, 0)
	got := next.Values()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %g, want %g", v, got[v], want[v])
		}
	}
	if got[15] != 2 || got[19] != 6 {
		t.Fatalf("shortcut not applied: dist[15]=%g dist[19]=%g", got[15], got[19])
	}
}

func TestEvolveAddsNewVertices(t *testing.T) {
	g := pathGraph(5)
	e := runSSSP(t, g)
	// Grow a new branch through brand-new vertices 5 and 6.
	added := []graph.Edge{
		{Src: 2, Dst: 5, Weight: 1},
		{Src: 5, Dst: 6, Weight: 1},
	}
	next, err := e.Evolve(added)
	if err != nil {
		t.Fatal(err)
	}
	if next.Graph().NumVertices() != 7 {
		t.Fatalf("|V| = %d after growth", next.Graph().NumVertices())
	}
	if _, err := next.Run(); err != nil {
		t.Fatal(err)
	}
	got := next.Values()
	if got[5] != 3 || got[6] != 4 {
		t.Fatalf("new-branch distances = %g, %g", got[5], got[6])
	}
	// Old distances undisturbed.
	for v := 0; v < 5; v++ {
		if got[v] != float64(v) {
			t.Fatalf("old dist[%d] = %g", v, got[v])
		}
	}
}

func TestEvolveChainOfEpochs(t *testing.T) {
	// Grow a path one edge at a time; after each epoch, distances must be
	// exact for the graph so far.
	g := pathGraph(2)
	e := runSSSP(t, g)
	for next := 2; next < 8; next++ {
		grown, err := e.Evolve([]graph.Edge{{Src: graph.ID(next - 1), Dst: graph.ID(next), Weight: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := grown.Run(); err != nil {
			t.Fatal(err)
		}
		got := grown.Values()
		for v := 0; v <= next; v++ {
			if got[v] != float64(v) {
				t.Fatalf("epoch %d: dist[%d] = %g", next, v, got[v])
			}
		}
		e = grown
	}
}

func TestEvolveRejectsEmptyBatch(t *testing.T) {
	e := runSSSP(t, pathGraph(3))
	if _, err := e.Evolve(nil); err == nil {
		t.Fatal("empty mutation batch must be rejected")
	}
}

// Property: evolving in one batch equals building the merged graph fresh and
// running from scratch, for SSSP on random growth batches.
func TestEvolveEquivalentToFreshRun(t *testing.T) {
	f := func(seed int64) bool {
		base := gen.Road(4, 5, 0, seed)
		e := New100(t, base)
		if _, err := e.Run(); err != nil {
			return false
		}
		// Random extra shortcuts (bidirectional, like the road generator).
		rng := seed
		var added []graph.Edge
		for i := 0; i < 3; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			u := graph.ID(uint64(rng) % uint64(base.NumVertices()))
			rng = rng*6364136223846793005 + 1442695040888963407
			v := graph.ID(uint64(rng) % uint64(base.NumVertices()))
			if u == v {
				continue
			}
			added = append(added, graph.Edge{Src: u, Dst: v, Weight: 0.5})
			added = append(added, graph.Edge{Src: v, Dst: u, Weight: 0.5})
		}
		if len(added) == 0 {
			return true
		}
		next, err := e.Evolve(added)
		if err != nil {
			return false
		}
		if _, err := next.Run(); err != nil {
			return false
		}
		want := evolveSSSPRef(append(base.Edges(), added...), base.NumVertices(), 0)
		got := next.Values()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// New100 builds an SSSP engine with a generous superstep budget.
func New100(t *testing.T, g *graph.Graph) *Engine[float64, float64] {
	t.Helper()
	e, err := New[float64, float64](g, distProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(2, 2),
		MaxSupersteps: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}
