package cyclops

import (
	"errors"

	"cyclops/internal/graph"
	"cyclops/internal/transport"
)

// State is the checkpointable engine state. Per §3.6, Cyclops checkpoints
// are smaller than Hama's: replicas and messages are excluded — only master
// values, published views and activation flags are saved, and replicas are
// re-synchronised from their masters on recovery.
type State[V, M any] struct {
	Step   int
	Values []V    // master state, indexed by global vertex id
	View   []M    // published values, indexed by global vertex id
	Active []bool // activation flags, indexed by global vertex id
}

// Snapshot captures the engine's state before Run as a step-0 baseline
// checkpoint, so a fault earlier than the first periodic checkpoint is still
// recoverable. (Mid-run checkpoints are taken by the engine itself through
// Config.Checkpoints.)
func (e *Engine[V, M]) Snapshot() State[V, M] {
	s := e.snapshot()
	s.Step = e.step
	return s
}

// snapshot captures the current state (called at barriers only).
func (e *Engine[V, M]) snapshot() State[V, M] {
	n := e.g.NumVertices()
	s := State[V, M]{
		Step:   e.step + 1,
		Values: make([]V, n),
		View:   make([]M, n),
		Active: make([]bool, n),
	}
	for _, ws := range e.ws {
		for i, id := range ws.masters {
			s.Values[id] = ws.values[i]
			s.View[id] = ws.view[i]
			s.Active[id] = ws.active[i] != 0
		}
	}
	return s
}

// Restore rewinds the engine to a checkpointed state and re-synchronises
// every replica from its master's published value (the recovery round that
// replaces Hama's message replay).
func (e *Engine[V, M]) Restore(s State[V, M]) error {
	if e.cfg.Network != transport.InProcess {
		return errors.New("cyclops: restore requires the in-process network")
	}
	n := e.g.NumVertices()
	if len(s.Values) != n || len(s.View) != n || len(s.Active) != n {
		return errors.New("cyclops: checkpoint shape does not match engine")
	}
	for _, ws := range e.ws {
		for i, id := range ws.masters {
			ws.values[i] = s.Values[id]
			ws.view[i] = s.View[id]
			if s.Active[id] {
				ws.active[i] = 1
			} else {
				ws.active[i] = 0
			}
			ws.next[i] = 0 //lint:allow atomicmix Restore runs single-threaded between supersteps; no worker goroutine is live
			// Replica refresh: one unidirectional update per replica,
			// exactly like a superstep's sync but without activation.
			for _, ref := range ws.replicas.Row(i) {
				e.ws[ref.worker].view[ref.slot] = s.View[id]
			}
		}
	}
	// Discard any undelivered sync messages from the aborted superstep.
	for w := 0; w < e.cfg.Cluster.Workers(); w++ {
		e.tr.Drain(w)
	}
	e.step = s.Step
	return nil
}

// MasterWorker reports which worker owns vertex id (test helper).
func (e *Engine[V, M]) MasterWorker(id graph.ID) int { return e.assign.Of[id] }

// ReplicaWorkers reports the workers holding a replica of vertex id, in no
// particular order (test helper for the replica-wiring invariants).
func (e *Engine[V, M]) ReplicaWorkers(id graph.ID) []int {
	w := e.assign.Of[id]
	ws := e.ws[w]
	for i, m := range ws.masters {
		if m == id {
			out := make([]int, 0, ws.replicas.RowLen(i))
			for _, ref := range ws.replicas.Row(i) {
				out = append(out, int(ref.worker))
			}
			return out
		}
	}
	return nil
}
