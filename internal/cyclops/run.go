package cyclops

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"cyclops/internal/aggregate"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// pending holds a worker's publish results for the update phase. Compute
// must not mutate the view in place (other local vertices are still reading
// it), so publishes are staged here and applied after the compute barrier.
type pending[M any] struct {
	val   []M
	flags []uint8 // bit 0: publish; bit 1: activate
}

const (
	flagPublish  = 1
	flagActivate = 2
)

// Run executes supersteps until no vertex is active, the Halt function
// fires, or MaxSupersteps is reached.
func (e *Engine[V, M]) Run() (*metrics.Trace, error) {
	workers := e.cfg.Cluster.Workers()
	threads := e.cfg.Cluster.Normalize().Threads
	receivers := e.cfg.Cluster.Normalize().Receivers

	hooks := e.cfg.Hooks
	// runStart anchors span offsets; runWall accumulates the accounted run
	// duration (sum of superstep walls), so the closing run span reconciles
	// with timings.csv totals by construction.
	runStart := time.Now()
	var runWall time.Duration
	if hooks != nil {
		e.runSeq++
		hooks.OnRunStart(obs.RunInfo{
			Engine:   e.trace.Engine,
			Workers:  workers,
			Vertices: e.g.NumVertices(),
			Edges:    e.g.NumEdges(),
			Replicas: e.ingress.Replicas,
			// The distributed immutable view caches one M per replica slot,
			// so the replicated values cost Replicas × sizeof(M) — the
			// deterministic replica side of the Table 4/5 memory trade.
			ReplicaValueBytes: e.ingress.Replicas * int64(unsafe.Sizeof(*new(M))),
			WorkerReplicas:    e.workerReplicas(),
			EdgeCut:           int64(e.assign.EdgeCut(e.g)),
			PartitionBalance:  e.assign.Balance(),
		})
		hooks.OnSpanStart(obs.RunSpan(e.runSeq, 0))
	}
	stopReason := obs.ReasonMaxSupersteps

	// prevComm anchors the per-superstep traffic deltas; starting from the
	// current snapshot keeps deltas correct across resumed runs.
	var prevComm transport.MatrixSnapshot
	if hooks != nil {
		prevComm = e.tr.Matrix().Snapshot()
	}

	// Cumulative per-vertex heat counters (hooks on only): replica-sync
	// messages caused and edges scanned, by master vertex. Each slot is
	// written only by the goroutines of the worker owning the master, so the
	// worker fan-outs below stay race-free.
	var heatMsgs, heatUnits []int64
	if hooks != nil {
		heatMsgs = make([]int64, e.g.NumVertices())
		heatUnits = make([]int64, e.g.NumVertices())
	}

	pend := make([]pending[M], workers)
	for w := range pend {
		pend[w] = pending[M]{
			val:   make([]M, e.ws[w].numMasters()),
			flags: make([]uint8, e.ws[w].numMasters()),
		}
	}

	// Steady-state scratch, allocated once and reused every superstep: the
	// per-worker counters, aggregator partials, compute contexts and span
	// buffers below are either fully overwritten each step or reset with
	// [:0]/clear. Nothing downstream retains them — the aggregate registry
	// folds partials into its own map, SetResiduals reduces to scalars, and
	// the obs hooks copy what they keep — so the superstep loop allocates
	// nothing for bookkeeping.
	computeUnits := make([]int64, workers)
	activeCounts := make([]int64, workers)
	sendCounts := make([]int64, workers)
	recvCounts := make([]int64, workers)
	recvBatches := make([]int64, workers)
	partials := make([][]aggregate.Values, workers)
	unitScratch := make([][]int64, workers)
	activeScratch := make([][]int64, workers)
	ctxs := make([][]*Context[V, M], workers)
	residuals := make([][]float64, workers)
	var resAll []float64
	var flat []aggregate.Values
	for w := 0; w < workers; w++ {
		partials[w] = make([]aggregate.Values, threads)
		unitScratch[w] = make([]int64, threads)
		activeScratch[w] = make([]int64, threads)
		ctxs[w] = make([]*Context[V, M], threads)
		for t := 0; t < threads; t++ {
			ctxs[w][t] = &Context[V, M]{e: e, ws: e.ws[w], local: make(aggregate.Values)}
		}
	}
	var parseDur, computeDur, sendDur []time.Duration
	var serNs0, serNs []int64
	var delivs [][]span.Delivery
	if hooks != nil {
		parseDur = make([]time.Duration, workers)
		computeDur = make([]time.Duration, workers)
		sendDur = make([]time.Duration, workers)
		serNs0 = make([]int64, workers)
		serNs = make([]int64, workers)
		delivs = make([][]span.Delivery, workers)
	}
	var wg sync.WaitGroup

	maxRecoveries := e.cfg.MaxRecoveries
	if maxRecoveries <= 0 {
		maxRecoveries = 3
	}
	recoveries := 0

	for e.step < e.cfg.MaxSupersteps {
		if e.inj != nil {
			e.inj.BeginStep(e.step)
		}
		stats := metrics.StepStats{Step: e.step}
		// Span bookkeeping (nil when hooks are off): per-worker phase
		// durations, drained batch provenance, wire-serialisation deltas.
		sd := obs.StepSpanData{Run: e.runSeq, Step: e.step}
		if hooks != nil {
			hooks.OnSuperstepStart(e.step)
			sd.StepStart = time.Since(runStart)
			hooks.OnSpanStart(obs.StepSpan(e.runSeq, e.step, sd.StepStart))
			// Tag this superstep's sync messages with its causal context;
			// the RECV drain links Deliver spans back to the sender's Send
			// span (same superstep — Cyclops drains within the step).
			for w := 0; w < workers; w++ {
				e.tr.Tag(w, span.Context{Run: e.runSeq, Step: int32(e.step), Worker: int32(w)})
			}
		}

		// CMP: active masters compute over the immutable view, striped
		// across T threads per worker.
		if hooks != nil {
			sd.ComputeStart = time.Since(runStart)
		}
		start := time.Now()
		var active, changedTotal atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ct := time.Now()
				ws := e.ws[w]
				unitCh := unitScratch[w]
				activeCh := activeScratch[w]
				var twg sync.WaitGroup
				for t := 0; t < threads; t++ {
					twg.Add(1)
					go func(t int) {
						defer twg.Done()
						ctx := ctxs[w][t]
						clear(ctx.local)
						var units, computed int64
						for s := t; s < ws.numMasters(); s += threads {
							if ws.active[s] == 0 {
								continue
							}
							ctx.setSlot(s)
							ctx.published = false
							ctx.pubActivate = false
							e.prog.Compute(ctx)
							computed++
							units += int64(ws.inUnits[s])
							if heatUnits != nil {
								// Threads stride disjoint slots, so each
								// vertex entry has exactly one writer.
								heatUnits[ws.masters[s]] += int64(ws.inUnits[s])
							}
							if ctx.published {
								pend[w].val[s] = ctx.pubVal
								f := uint8(flagPublish)
								if ctx.pubActivate {
									f |= flagActivate
								}
								pend[w].flags[s] = f
							}
						}
						partials[w][t] = ctx.local
						unitCh[t] = units
						activeCh[t] = computed
					}(t)
				}
				twg.Wait()
				var units, computed int64
				for t := 0; t < threads; t++ {
					units += unitCh[t]
					computed += activeCh[t]
				}
				computeUnits[w] = units
				activeCounts[w] = computed
				active.Add(computed)
				if computeDur != nil {
					computeDur[w] = time.Since(ct)
				}
			}(w)
		}
		wg.Wait()
		stats.Durations[metrics.Compute] = time.Since(start)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Compute, stats.Durations[metrics.Compute])
		}

		// SND: apply publishes to the local view, perform lock-free local
		// activation, and send one sync message per replica of each
		// changed/activating master (§3.5). Private per-destination
		// out-queues avoid any shared-lock contention.
		if hooks != nil {
			sd.SendStart = time.Since(runStart)
			for w := 0; w < workers; w++ {
				serNs0[w] = e.tr.SerializeNanos(w)
			}
		}
		start = time.Now()
		var redundant atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := time.Now()
				ws := e.ws[w]
				// Reuse the per-destination batch buffers: last superstep's
				// batches were drained and applied before its barrier, so
				// their backing arrays are free again.
				out := ws.out
				for to := range out {
					out[to] = out[to][:0]
				}
				residuals[w] = residuals[w][:0]
				var sent, changed int64
				for s := 0; s < ws.numMasters(); s++ {
					f := pend[w].flags[s]
					if f == 0 {
						continue
					}
					pend[w].flags[s] = 0
					val := pend[w].val[s]
					activate := f&flagActivate != 0
					if e.cfg.Residual != nil {
						residuals[w] = append(residuals[w], e.cfg.Residual(ws.view[s], val))
					}
					valueChanged := e.cfg.Equal == nil || !e.cfg.Equal(ws.view[s], val)
					reps := ws.replicas.Row(s)
					if !valueChanged && !activate {
						// Republishing an identical value with no activation
						// is the redundant traffic BSP cannot avoid; Cyclops
						// suppresses it entirely.
						redundant.Add(int64(len(reps)))
						continue
					}
					if valueChanged {
						ws.view[s] = val
						changed++
					}
					if activate {
						for _, ls := range ws.localOut.Row(s) {
							atomic.StoreUint32(&ws.next[ls], 1)
						}
					}
					// Send the view value, not the raw publish: when Equal
					// suppressed a sub-epsilon change the master's view kept
					// the old value, and replicas must match it exactly
					// (§3.4's consistency invariant, checked by Audit).
					for _, ref := range reps {
						out[ref.worker] = append(out[ref.worker],
							syncMsg[M]{Slot: ref.slot, Val: ws.view[s], Activate: activate})
						sent++
					}
					if heatMsgs != nil {
						heatMsgs[ws.masters[s]] += int64(len(reps))
					}
				}
				for to := range out {
					e.tr.Send(w, to, out[to])
				}
				e.tr.FinishRound(w)
				sendCounts[w] = sent
				changedTotal.Add(changed)
				if sendDur != nil {
					sendDur[w] = time.Since(st)
				}
			}(w)
		}
		wg.Wait()
		if hooks != nil {
			for w := 0; w < workers; w++ {
				serNs[w] = e.tr.SerializeNanos(w) - serNs0[w]
			}
		}
		stats.Durations[metrics.Send] = time.Since(start)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Send, stats.Durations[metrics.Send])
		}

		// RECV: replica updates, parallel across R receivers per worker.
		// Each replica has exactly one writer per superstep, so updates are
		// lock-free and there is no parse phase (§4.1).
		if hooks != nil {
			sd.ParseStart = time.Since(runStart)
		}
		start = time.Now()
		var auditPerW [][]obs.Violation
		if e.cfg.Audit {
			auditPerW = make([][]obs.Violation, workers)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pt := time.Now()
				ws := e.ws[w]
				batches := e.tr.Drain(w)
				var recv int64
				for _, b := range batches {
					recv += int64(len(b))
				}
				recvBatches[w] = int64(len(batches))
				if e.cfg.Audit {
					auditPerW[w] = e.auditDeliveries(w, batches)
				}
				var rwg sync.WaitGroup
				for r := 0; r < receivers; r++ {
					rwg.Add(1)
					go func(r int) {
						defer rwg.Done()
						// The Drain batches captured here never outlive the
						// round: rwg.Wait below joins every receiver before
						// the superstep barrier, and the next Drain happens
						// a full barrier later.
						for bi := r; bi < len(batches); bi += receivers { //lint:allow bufretain receiver goroutines are joined by rwg.Wait before the next Drain
							for _, m := range batches[bi] {
								ws.view[m.Slot] = m.Val
								if m.Activate {
									for _, ls := range ws.localOut.Row(int(m.Slot)) {
										atomic.StoreUint32(&ws.next[ls], 1)
									}
								}
							}
						}
					}(r)
				}
				rwg.Wait()
				recvCounts[w] = recv
				if parseDur != nil {
					parseDur[w] = time.Since(pt)
					delivs[w] = e.tr.LastDeliveries(w)
				}
			}(w)
		}
		wg.Wait()
		stats.Durations[metrics.Parse] = time.Since(start) // replica apply ≈ Cyclops' PRS
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Parse, stats.Durations[metrics.Parse])
		}

		// Audit: with all replicas refreshed and the barrier passed, every
		// replica must now equal its master's published view value.
		var violations []obs.Violation
		if e.cfg.Audit {
			for _, vs := range auditPerW {
				violations = append(violations, vs...)
			}
			violations = append(violations, e.auditViewConsistency()...)
		}

		// SYN: hierarchical or flat barrier — fold aggregates, swap
		// activation buffers, decide termination.
		start = time.Now()
		flat = flat[:0]
		for w := range partials {
			flat = append(flat, partials[w]...)
		}
		e.agg.Fold(flat)

		var nextActive int64
		for w := 0; w < workers; w++ {
			ws := e.ws[w]
			// The WaitGroup join above is the happens-before edge: every
			// atomic store to ws.next happened in a worker goroutine that
			// has since exited, so the barrier phase may read and reset the
			// flags plainly.
			copy(ws.active, ws.next) //lint:allow atomicmix post-barrier, workers joined via WaitGroup
			for s := range ws.next { //lint:allow atomicmix post-barrier, workers joined via WaitGroup
				if ws.next[s] != 0 { //lint:allow atomicmix post-barrier, workers joined via WaitGroup
					nextActive++
					ws.next[s] = 0 //lint:allow atomicmix post-barrier, workers joined via WaitGroup
				}
			}
		}

		var computeMax, sendMax, recvMax, sentTotal int64
		for w := 0; w < workers; w++ {
			if computeUnits[w] > computeMax {
				computeMax = computeUnits[w]
			}
			if sendCounts[w] > sendMax {
				sendMax = sendCounts[w]
			}
			if recvCounts[w] > recvMax {
				recvMax = recvCounts[w]
			}
			sentTotal += sendCounts[w]
		}
		stats.Active = active.Load()
		stats.Changed = changedTotal.Load()
		stats.Messages = sentTotal
		stats.RedundantMessages = redundant.Load()
		if e.cfg.Residual != nil {
			resAll = resAll[:0]
			for _, rs := range residuals {
				resAll = append(resAll, rs...)
			}
			stats.SetResiduals(resAll)
		}
		stats.ComputeUnitsMax = computeMax
		stats.SendMax = sendMax
		stats.RecvMax = recvMax
		barrier := e.model.FlatBarrier(workers)
		if e.trace.Engine == "cyclopsmt" {
			barrier = e.model.HierarchicalBarrier(e.cfg.Cluster.Machines, threads)
		}
		stats.ModelNanos = e.model.StepCost(
			computeMax, sendMax, recvMax,
			threads, receivers, workers, false, barrier)
		stats.Durations[metrics.Sync] = time.Since(start)
		e.trace.Append(stats)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Sync, stats.Durations[metrics.Sync])
			for w := 0; w < workers; w++ {
				hooks.OnWorkerStats(obs.WorkerStats{
					Step:         e.step,
					Worker:       w,
					ComputeUnits: computeUnits[w],
					Sent:         sendCounts[w],
					Received:     recvCounts[w],
					Active:       activeCounts[w],
					QueueDepth:   recvBatches[w],
				})
			}
			cur := e.tr.Matrix().Snapshot()
			commDelta := cur.Sub(prevComm)
			hooks.OnCommMatrix(e.step, commDelta)
			prevComm = cur
			for _, v := range violations {
				hooks.OnViolation(v)
			}
			// Heat: every Cyclops message is a replica sync (local edges read
			// shared memory; replicas exist only for spanning edges), so the
			// sync column is the full send count.
			hooks.OnHeat(obs.HeatStepData{
				Step:       e.step,
				Partitions: obs.BuildHeatPartitions(e.step, commDelta, activeCounts, computeUnits, sendCounts),
				Hot: obs.TopHotVertices(heatMsgs, heatUnits,
					func(v int) int { return e.assign.Of[v] }, obs.DefaultHotK),
			})
			hooks.OnSuperstepEnd(e.step, stats)
			// Wall is the sum of the four phase durations — exactly what
			// timings.csv records for the step — so critpath.csv columns
			// reconcile with it by construction.
			sd.Wall = stats.Durations[metrics.Parse] + stats.Durations[metrics.Compute] +
				stats.Durations[metrics.Send] + stats.Durations[metrics.Sync]
			runWall += sd.Wall
			sd.Parse = parseDur
			sd.Compute = computeDur
			sd.Send = sendDur
			sd.SerializeNs = serNs
			sd.Units = computeUnits
			sd.Sent = sendCounts
			sd.Recv = recvCounts
			sd.Deliveries = delivs
			obs.EmitStepSpans(hooks, sd)
		}
		// Fault check at the barrier, before anything from this superstep is
		// persisted: a transient transport fault rolls the run back to the
		// latest checkpoint (§3.6) and replays; anything else fails the run.
		if err := e.tr.Err(); err != nil {
			if transport.IsTransient(err) && e.cfg.Recover != nil && recoveries < maxRecoveries {
				st, lerr := e.cfg.Recover()
				if lerr != nil {
					if hooks != nil {
						hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
						hooks.OnConverged(e.step, obs.ReasonFault)
					}
					return e.trace, fmt.Errorf("cyclops: recovery: load checkpoint: %w", lerr)
				}
				faultStep := e.step
				if e.inj != nil {
					e.inj.Heal()
				}
				if rerr := e.Restore(st); rerr != nil {
					if hooks != nil {
						hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
						hooks.OnConverged(e.step, obs.ReasonFault)
					}
					return e.trace, fmt.Errorf("cyclops: recovery: %w", rerr)
				}
				recoveries++
				if hooks != nil {
					hooks.OnRecovery(obs.RecoveryEvent{
						Engine:    e.trace.Engine,
						Step:      faultStep,
						ResumedAt: e.step,
						Attempt:   recoveries,
						Cause:     err.Error(),
					})
				}
				continue
			}
			if hooks != nil {
				hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
				hooks.OnConverged(e.step, obs.ReasonFault)
			}
			return e.trace, fmt.Errorf("cyclops: transport: %w", err)
		}

		if len(violations) > 0 {
			if hooks != nil {
				hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
				hooks.OnConverged(e.step, obs.ReasonAuditFailed)
			}
			return e.trace, fmt.Errorf("cyclops: %w", &obs.AuditError{Violations: violations})
		}

		if e.cfg.CheckpointEvery > 0 && e.cfg.Checkpoints != nil &&
			(e.step+1)%e.cfg.CheckpointEvery == 0 {
			if err := e.cfg.Checkpoints(e.snapshot()); err != nil {
				if hooks != nil {
					hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
					hooks.OnConverged(e.step, obs.ReasonFault)
				}
				return e.trace, fmt.Errorf("cyclops: checkpoint at step %d: %w", e.step, err)
			}
		}
		if e.cfg.OnStep != nil {
			e.cfg.OnStep(e.step, e)
		}

		if nextActive == 0 {
			e.step++
			stopReason = obs.ReasonNoActive
			break
		}
		if e.cfg.Halt != nil && e.cfg.Halt(e.step, e.agg.Value, nextActive) {
			e.step++
			stopReason = obs.ReasonHalt
			break
		}
		e.step++
	}
	if hooks != nil {
		hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
		hooks.OnConverged(e.step, stopReason)
	}
	if err := e.tr.Err(); err != nil {
		return e.trace, fmt.Errorf("cyclops: transport: %w", err)
	}
	return e.trace, nil
}
