package cyclops_test

// Benchmarks the cost of the observability hook points on the Cyclops
// superstep loop. The acceptance bar for the obs layer is that a nil Hooks
// (the default) adds <2% to the superstep loop versus the pre-hooks engine;
// since every hook site is a nil-check, comparing Hooks:nil against
// Hooks:obs.Nop{} bounds that cost from above — the Nop run *takes* every
// call and still measures the same loop.
//
//	go test ./internal/cyclops/ -run='^$' -bench=BenchmarkHooks -count=5
//
// Also asserts (as a plain test) that a full PageRank run fires the hook
// sequence engines promise: one OnRunStart, per-step start/phases/worker
// stats/end, one OnConverged.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
	"cyclops/internal/partition"
	"cyclops/internal/transport"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, _, err := gen.Dataset("wiki", 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func runPR(tb testing.TB, g *graph.Graph, hooks obs.Hooks) {
	runPRAudit(tb, g, hooks, false)
}

func runPRAudit(tb testing.TB, g *graph.Graph, hooks obs.Hooks, audit bool) {
	e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: 1e-4},
		cyclops.Config[float64, float64]{
			Cluster:       cluster.Flat(2, 2),
			Partitioner:   partition.Hash{},
			MaxSupersteps: 30,
			Hooks:         hooks,
			Audit:         audit,
		})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkHooksNil is the default path: Hooks == nil, hook sites reduce to
// one nil-check each.
func BenchmarkHooksNil(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPR(b, g, nil)
	}
}

// BenchmarkHooksNop takes every hook call through a do-nothing observer — an
// upper bound on the dispatch overhead the hook points add.
func BenchmarkHooksNop(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPR(b, g, obs.Nop{})
	}
}

// BenchmarkHooksTracer prices the full ring-only tracer, for context (this
// is what -debug-addr without -verbose costs).
func BenchmarkHooksTracer(b *testing.B) {
	g := benchGraph(b)
	tracer := obs.NewTracer(nil, obs.TracerOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPR(b, g, tracer)
	}
}

// BenchmarkAuditOff prices the default Audit=false path. The auditor adds
// one branch per superstep and one per receive phase when disabled, so this
// must stay within noise of BenchmarkHooksNil (the PR 1 baseline, which also
// already includes the transport's per-peer matrix counting — two atomic
// adds per batch).
func BenchmarkAuditOff(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPRAudit(b, g, nil, false)
	}
}

// BenchmarkAuditOn prices the full replica-invariant audit — a delivery
// pre-pass over every drained batch plus an exact-equality scan of every
// replica against its master, each superstep. This is the documented cost of
// -audit; it is opt-in and deliberately not optimised further.
func BenchmarkAuditOn(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPRAudit(b, g, nil, true)
	}
}

// countingHooks records how often each hook fires, and tracks span pairing:
// every span announced open must be closed by the time the run returns.
type countingHooks struct {
	runStarts, stepStarts, phases, workerStats, stepEnds, converged atomic.Int64
	commSteps, commMessages, violations, heatSteps                  atomic.Int64
	spanStarts, spanEnds                                            atomic.Int64
	lastReason                                                      string
	lastStats                                                       metrics.StepStats

	spanMu    sync.Mutex
	openSpans map[int64]bool
}

func (c *countingHooks) OnRunStart(obs.RunInfo) { c.runStarts.Add(1) }
func (c *countingHooks) OnSuperstepStart(int)   { c.stepStarts.Add(1) }
func (c *countingHooks) OnPhase(int, metrics.Phase, time.Duration) {
	c.phases.Add(1)
}
func (c *countingHooks) OnWorkerStats(obs.WorkerStats) { c.workerStats.Add(1) }
func (c *countingHooks) OnCommMatrix(_ int, delta transport.MatrixSnapshot) {
	c.commSteps.Add(1)
	c.commMessages.Add(delta.TotalMessages())
}
func (c *countingHooks) OnViolation(obs.Violation)    { c.violations.Add(1) }
func (c *countingHooks) OnHeat(obs.HeatStepData)      { c.heatSteps.Add(1) }
func (c *countingHooks) OnRecovery(obs.RecoveryEvent) {}
func (c *countingHooks) OnSpanStart(s span.Span) {
	c.spanStarts.Add(1)
	c.spanMu.Lock()
	if c.openSpans == nil {
		c.openSpans = make(map[int64]bool)
	}
	c.openSpans[s.ID] = true
	c.spanMu.Unlock()
}
func (c *countingHooks) OnSpanEnd(s span.Span) {
	c.spanEnds.Add(1)
	c.spanMu.Lock()
	delete(c.openSpans, s.ID)
	c.spanMu.Unlock()
}
func (c *countingHooks) OnSuperstepEnd(_ int, s metrics.StepStats) {
	c.stepEnds.Add(1)
	c.lastStats = s
}
func (c *countingHooks) OnConverged(_ int, reason string) {
	c.converged.Add(1)
	c.lastReason = reason
}

func TestHookSequenceOnRealRun(t *testing.T) {
	g, _, err := gen.Dataset("wiki", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &countingHooks{}
	runPR(t, g, c)

	steps := c.stepEnds.Load()
	if c.runStarts.Load() != 1 || c.converged.Load() != 1 {
		t.Fatalf("run span: %d starts, %d converged; want 1/1",
			c.runStarts.Load(), c.converged.Load())
	}
	if steps == 0 || c.stepStarts.Load() != steps {
		t.Fatalf("superstep span: %d starts vs %d ends", c.stepStarts.Load(), steps)
	}
	// Cyclops times CMP, SND, PRS(recv) and SYN each superstep.
	if c.phases.Load() != 4*steps {
		t.Fatalf("phases: %d, want 4 per %d supersteps", c.phases.Load(), steps)
	}
	// Flat(2,2) = 4 workers, one stats record each per superstep.
	if c.workerStats.Load() != 4*steps {
		t.Fatalf("worker stats: %d, want 4 per %d supersteps", c.workerStats.Load(), steps)
	}
	// One traffic-matrix delta per superstep; a clean run has no violations.
	if c.commSteps.Load() != steps {
		t.Fatalf("comm matrices: %d, want 1 per %d supersteps", c.commSteps.Load(), steps)
	}
	// One heat record per superstep, paired with OnSuperstepStart on every path.
	if c.heatSteps.Load() != steps {
		t.Fatalf("heat records: %d, want 1 per %d supersteps", c.heatSteps.Load(), steps)
	}
	if c.violations.Load() != 0 {
		t.Fatalf("violations on a clean run: %d", c.violations.Load())
	}
	if c.lastReason != obs.ReasonHalt && c.lastReason != obs.ReasonNoActive &&
		c.lastReason != obs.ReasonMaxSupersteps {
		t.Fatalf("unknown termination reason %q", c.lastReason)
	}
	if c.lastStats.Active < 0 {
		t.Fatalf("bogus final step stats: %+v", c.lastStats)
	}
	// Span stream: one run span plus one per superstep announced open, and
	// every open span closed by run end (the hookbalance contract).
	if c.spanStarts.Load() != steps+1 {
		t.Fatalf("span starts: %d, want %d (run + one per superstep)", c.spanStarts.Load(), steps+1)
	}
	// Per step and worker: Parse, Compute, Serialize, Send, BarrierWait (5),
	// plus the superstep span; Deliver spans and the run span come on top.
	if min := steps*(4*5+1) + 1; c.spanEnds.Load() < min {
		t.Fatalf("span ends: %d, want at least %d", c.spanEnds.Load(), min)
	}
	c.spanMu.Lock()
	open := len(c.openSpans)
	c.spanMu.Unlock()
	if open != 0 {
		t.Fatalf("%d spans still open after the run returned", open)
	}
}

// BenchmarkSpanOverhead prices the causal span stream on the gate experiment
// shape. The "nil" case is the default path (hook sites reduce to nil checks
// and must stay allocation-free on the span account — there is no span code
// on that path at all); "tracker" takes the full emission through a
// SpanTracker, which the CI perf gate bounds at <2% over nil.
func BenchmarkSpanOverhead(b *testing.B) {
	g := benchGraph(b)
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runPR(b, g, nil)
		}
	})
	b.Run("tracker", func(b *testing.B) {
		b.ReportAllocs()
		tracker := obs.NewSpanTracker()
		for i := 0; i < b.N; i++ {
			runPR(b, g, tracker)
		}
	})
}

// BenchmarkHeatOverhead prices the heat observatory on the gate experiment
// shape. "nil" is the default path (the per-vertex heat counters are not even
// allocated); "tracker" routes every superstep's heat record — per-partition
// rows plus the exact top-k hot-vertex scan — through a HeatTracker. The CI
// perf gate bounds tracker at <2% over nil.
func BenchmarkHeatOverhead(b *testing.B) {
	g := benchGraph(b)
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runPR(b, g, nil)
		}
	})
	b.Run("tracker", func(b *testing.B) {
		b.ReportAllocs()
		tracker := obs.NewHeatTracker()
		for i := 0; i < b.N; i++ {
			runPR(b, g, tracker)
		}
	})
}

// TestSpanEmissionZeroAlloc pins the other half of the overhead contract:
// assembling and emitting a superstep's spans allocates nothing — every span
// is a value passed through the Hooks interface, so the only cost with hooks
// enabled is the per-superstep bookkeeping slices the engines allocate.
func TestSpanEmissionZeroAlloc(t *testing.T) {
	const workers = 4
	d := obs.StepSpanData{
		Run: 1, Step: 3, Wall: 4 * time.Millisecond,
		Parse:       make([]time.Duration, workers),
		Compute:     make([]time.Duration, workers),
		Send:        make([]time.Duration, workers),
		SerializeNs: make([]int64, workers),
		Units:       make([]int64, workers),
		Sent:        make([]int64, workers),
		Recv:        make([]int64, workers),
		Deliveries:  make([][]span.Delivery, workers),
	}
	for w := 0; w < workers; w++ {
		d.Deliveries[w] = []span.Delivery{{From: (w + 1) % workers,
			Ctx: span.Context{Run: 1, Step: 3, Worker: int32((w + 1) % workers)}, Msgs: 7}}
	}
	h := obs.Hooks(obs.Nop{})
	if allocs := testing.AllocsPerRun(100, func() {
		obs.EmitStepSpans(h, d)
	}); allocs != 0 {
		t.Fatalf("EmitStepSpans allocates %.1f objects per superstep; want 0", allocs)
	}
}
