package cyclops

import (
	"fmt"
	"sort"

	"cyclops/internal/obs"
)

// The replica-invariant auditor (Config.Audit). Cyclops' communication
// claims follow from three structural invariants of the distributed
// immutable view (§3.4): sync traffic flows master→replica only, each
// replica receives at most one message per superstep, and after the SYN
// barrier every replica holds exactly its master's published value. The
// engine maintains these by construction; the auditor re-derives them from
// observed state each superstep so a regression (or a deliberate fault
// injection in tests) surfaces as a structured violation instead of a wrong
// result many supersteps later.

// auditMaxViolations caps how many violations one check collects per
// superstep, so a systemic fault doesn't flood the tracer: the run fails on
// the first violation regardless.
const auditMaxViolations = 64

// auditDeliveries verifies invariants 2 and 3 on one worker's drained
// batches: no message targets a master slot, and no replica slot is hit
// twice. Called from the worker's own receive goroutine, before the batches
// are applied; it only reads them.
func (e *Engine[V, M]) auditDeliveries(w int, batches [][]syncMsg[M]) []obs.Violation {
	ws := e.ws[w]
	numMasters := ws.numMasters()
	var out []obs.Violation
	seen := make(map[int32]int)
	for _, b := range batches {
		for _, m := range b {
			if int(m.Slot) < numMasters {
				if len(out) < auditMaxViolations {
					out = append(out, obs.Violation{
						Engine: e.trace.Engine,
						Step:   e.step,
						Worker: w,
						Vertex: int64(ws.masters[m.Slot]),
						Kind:   obs.ViolationReplicaToMaster,
						Detail: fmt.Sprintf("sync message targeted master slot %d", m.Slot),
					})
				}
				continue
			}
			seen[m.Slot]++
		}
	}
	// Emit double-delivery violations in slot order: the violation list feeds
	// OnViolation events and the audit error, which replay comparison expects
	// to be stable run to run.
	dup := make([]int32, 0, len(seen))
	for slot := range seen {
		dup = append(dup, slot)
	}
	sort.Slice(dup, func(i, j int) bool { return dup[i] < dup[j] })
	for _, slot := range dup {
		if n := seen[slot]; n > 1 && len(out) < auditMaxViolations {
			out = append(out, obs.Violation{
				Engine: e.trace.Engine,
				Step:   e.step,
				Worker: w,
				Vertex: int64(ws.replicaIDs[int(slot)-numMasters]),
				Kind:   obs.ViolationDoubleDelivery,
				Detail: fmt.Sprintf("replica slot %d received %d sync messages", slot, n),
			})
		}
	}
	return out
}

// auditViewConsistency verifies invariant 1 after the receive phase: every
// replica's view value equals its master's. Exact equality is the right
// test — sync messages carry the master's value verbatim.
func (e *Engine[V, M]) auditViewConsistency() []obs.Violation {
	var out []obs.Violation
	for w, ws := range e.ws {
		for s := range ws.masters {
			for _, ref := range ws.replicas.Row(s) {
				if obs.ExactEqual(ws.view[s], e.ws[ref.worker].view[ref.slot]) {
					continue
				}
				out = append(out, obs.Violation{
					Engine: e.trace.Engine,
					Step:   e.step,
					Worker: int(ref.worker),
					Vertex: int64(ws.masters[s]),
					Kind:   obs.ViolationReplicaDesync,
					Detail: fmt.Sprintf(
						"replica at worker %d slot %d diverges from master at worker %d slot %d",
						ref.worker, ref.slot, w, s),
				})
				if len(out) >= auditMaxViolations {
					return out
				}
			}
		}
	}
	return out
}
