package cyclops

import (
	"cyclops/internal/aggregate"
	"cyclops/internal/graph"
)

// Context is the per-vertex view handed to Compute. It grants read-only
// access to the in-neighbors' published values (the distributed immutable
// view) and write access to the master's own state. A Context is only valid
// during the Compute call it is passed to.
type Context[V, M any] struct {
	e    *Engine[V, M]
	ws   *workerState[V, M]
	slot int32

	// inRow/inWRow cache the vertex's CSR adjacency rows (set with slot by
	// the compute loop), so the per-edge accessors are a single indexed load.
	inRow  []int32
	inWRow []float64

	published   bool
	pubVal      M
	pubActivate bool

	local aggregate.Values
}

// setSlot points the context at a master slot and refreshes the cached
// adjacency rows.
func (c *Context[V, M]) setSlot(s int) {
	c.slot = int32(s)
	c.inRow = c.ws.in.Row(s)
	c.inWRow = c.ws.inWeights.Row(s)
}

// Vertex returns the current vertex id.
func (c *Context[V, M]) Vertex() graph.ID { return c.ws.masters[c.slot] }

// Superstep returns the current superstep index.
func (c *Context[V, M]) Superstep() int { return c.e.step }

// NumVertices returns the graph's vertex count.
func (c *Context[V, M]) NumVertices() int { return c.e.g.NumVertices() }

// Value returns the master's private state.
func (c *Context[V, M]) Value() V { return c.ws.values[c.slot] }

// SetValue updates the master's private state. This does not touch the view
// — neighbors only see what Publish publishes.
func (c *Context[V, M]) SetValue(v V) { c.ws.values[c.slot] = v }

// Message returns the vertex's own currently published value (what its
// neighbors read this superstep).
func (c *Context[V, M]) Message() M { return c.ws.view[c.slot] }

// InDegree returns the number of in-neighbors.
func (c *Context[V, M]) InDegree() int { return len(c.inRow) }

// NeighborMessage returns the i-th in-neighbor's published value, read
// through shared memory from the immutable view of the previous superstep —
// the paper's edges.next().vertex.getMessage() (Figure 5). It is valid even
// if the neighbor converged and is inactive, which is what makes dynamic
// computation work (§3.3).
func (c *Context[V, M]) NeighborMessage(i int) M {
	return c.ws.view[c.inRow[i]]
}

// InWeight returns the weight of the i-th in-edge.
func (c *Context[V, M]) InWeight(i int) float64 { return c.inWRow[i] }

// OutDegree returns the vertex's global out-degree.
func (c *Context[V, M]) OutDegree() int { return int(c.ws.outDeg[c.slot]) }

// Publish sets the vertex's published value, visible to all neighbors next
// superstep. If activate is true, all out-neighbors are activated — locally
// by a lock-free flag set, remotely by the replica that receives the sync
// message (distributed activation, §3.4). The paper's
// activateNeighbors(value) is Publish(value, true).
//
// At most one sync message per replica results, whatever Compute does: a
// later Publish in the same Compute overwrites an earlier one, and
// activation requests are OR-ed.
func (c *Context[V, M]) Publish(m M, activate bool) {
	c.published = true
	c.pubVal = m
	c.pubActivate = c.pubActivate || activate
}

// Aggregate contributes v to the named aggregator (visible next superstep).
func (c *Context[V, M]) Aggregate(name string, v float64) {
	c.e.agg.Combine(c.local, name, v)
}

// AggregateValue reads the previous superstep's folded aggregate.
func (c *Context[V, M]) AggregateValue(name string) (float64, bool) {
	return c.e.agg.Value(name)
}
