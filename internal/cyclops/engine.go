// Package cyclops implements the paper's core contribution: a synchronous
// vertex-oriented graph engine computing over a distributed immutable view
// (§3). Each worker owns a partition of master vertices and holds read-only
// replicas of every remote vertex that has an out-edge into the partition.
// Only masters compute; they read their in-neighbors' last published values
// through shared memory (the immutable view), and when a master's published
// value changes it sends exactly one unidirectional sync message to each of
// its replicas. Replicas double as distributed activators: a sync message
// tagged with an activation request wakes the replica's local out-neighbors,
// so no replica→master traffic ever exists and message receipt is
// contention-free (§3.4).
//
// The same engine runs both flat Cyclops (M×W workers, one thread each) and
// hierarchical CyclopsMT (§5): configuring T compute threads and R receiver
// threads per worker stripes the compute phase and parallelises replica
// updates inside a worker, and the barrier cost model switches to the
// hierarchical (machine-level) barrier.
package cyclops

import (
	"errors"
	"fmt"
	"time"

	"cyclops/internal/aggregate"
	"cyclops/internal/cluster"
	"cyclops/internal/fault"
	"cyclops/internal/graph"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/partition"
	"cyclops/internal/transport"
)

// Program is a Cyclops vertex program with local semantics: Compute reads
// neighboring vertices' published values directly from the immutable view
// instead of receiving messages (compare Figure 5 with Figure 2).
//
// V is the master-side vertex state (e.g. a PageRank rank); M is the
// published value neighbors read (e.g. rank/outDegree — the paper's
// "message" stored at replicas). For many algorithms V == M.
type Program[V, M any] interface {
	// Init returns vertex id's initial state, its initially published value
	// (what neighbors see before the vertex first publishes), and whether
	// the vertex starts active. Init must be deterministic: it is evaluated
	// both at masters and to seed replica views.
	Init(id graph.ID, g *graph.Graph) (V, M, bool)
	// Compute runs on an active master vertex.
	Compute(ctx *Context[V, M])
}

// Config tunes an engine run.
type Config[V, M any] struct {
	// Cluster is the simulated topology. Workers() = graph partitions;
	// Threads and Receivers enable the hierarchical CyclopsMT mode.
	Cluster cluster.Config
	// Partitioner assigns masters to workers (default hash, as in Hama).
	Partitioner partition.Partitioner
	// MaxSupersteps bounds the run (default 100).
	MaxSupersteps int
	// Halt adds a termination test at each barrier besides the natural
	// "no vertex active" stop.
	Halt aggregate.HaltFunc
	// Equal detects republished-but-unchanged values for redundant-message
	// accounting. Optional. When set, publishing an unchanged value skips
	// the sync message entirely (replicas already hold it).
	Equal func(a, b M) bool
	// Residual maps a master's previous and newly published values to a
	// scalar distance (|Δ| for scalar algorithms). When set, each superstep's
	// StepStats carries the quantiles of this distribution over all
	// publishing masters — the convergence telemetry behind Figure 3.
	// Optional; nil skips the accounting entirely.
	Residual func(old, new M) float64
	// SizeOfMsg estimates a published value's wire size (nil = 16 bytes).
	SizeOfMsg func(M) int64
	// MsgCodec, when set, switches the transport to the hand-rolled binary
	// frame format: sync messages are encoded as 4B slot + 1B activation +
	// codec-encoded value instead of gob, and wire accounting charges the
	// exact frame bytes on every network. Nil keeps the legacy gob frames.
	MsgCodec graph.Codec[M]
	// Network selects in-process queues (default) or real gob-over-TCP
	// loopback sockets. Checkpointing requires InProcess.
	Network transport.Network
	// CostModel overrides the default model constants.
	CostModel *metrics.CostModel
	// OnStep runs after each barrier (values consistent).
	OnStep func(step int, e *Engine[V, M])
	// Hooks receives live instrumentation events (run/superstep/phase spans
	// and per-worker stats). nil disables observation; the hot path then
	// pays only a nil-check per phase.
	Hooks obs.Hooks
	// Audit enables the replica-invariant auditor: after each SYN phase the
	// engine verifies that every replica equals its master's published value,
	// that each replica received at most one sync message, and that no
	// message targeted a master slot (§3.4's unidirectional-communication
	// invariants). Violations are reported through Hooks.OnViolation and
	// fail the run with an *obs.AuditError. Off by default: auditing scans
	// every replica each superstep.
	Audit bool
	// CheckpointEvery saves state every k supersteps to Checkpoints (k>0).
	// Per §3.6, checkpoints exclude replicas and messages.
	CheckpointEvery int
	// Checkpoints receives snapshots.
	Checkpoints func(State[V, M]) error
	// Recover loads the state to roll back to after a transient transport
	// fault at a barrier (typically checkpoint.LoadLatest over the same
	// directory Checkpoints writes into). When set, the engine restores the
	// state, rebuilds every replica from its master (§3.6), and replays;
	// when nil, any transport fault fails the run. Requires InProcess.
	Recover func() (State[V, M], error)
	// MaxRecoveries bounds recovery attempts per run (default 3); a fault
	// beyond the budget fails the run with the underlying transport error.
	MaxRecoveries int
	// FaultPlan injects a deterministic fault schedule at the transport
	// boundary (testing/chaos only). Same plan ⇒ same faults.
	FaultPlan *fault.Plan
}

// replicaRef locates one replica of a master.
type replicaRef struct {
	worker int32
	slot   int32
}

// syncMsg refreshes one replica and optionally activates its local
// out-neighbors. Each replica receives at most one syncMsg per superstep.
type syncMsg[M any] struct {
	Slot     int32
	Val      M
	Activate bool
}

// workerState is one worker's share of the graph: master vertices in slots
// [0, numMasters) and replicas in slots [numMasters, numSlots).
//
// The adjacency structures are immutable CSR rows built once at ingress:
// flat offset-indexed arrays replace the per-slot Go slices, so the compute
// inner loop walks contiguous memory with no pointer chasing and the whole
// layout costs two allocations per relation instead of one per vertex.
type workerState[V, M any] struct {
	masters    []graph.ID            // slot → global id
	values     []V                   // master state, len = numMasters
	view       []M                   // the immutable view, len = numSlots
	in         graph.CSR[int32]      // per master: local slots of in-neighbors
	inWeights  graph.CSR[float64]    // parallel to in
	localOut   graph.CSR[int32]      // per slot: local master slots to activate
	replicas   graph.CSR[replicaRef] // per master: replica locations
	outDeg     []int32               // per master: global out-degree
	inUnits    []int32               // per master: in-degree (compute units)
	replicaIDs []graph.ID            // per replica slot (offset by numMasters): global id

	active []uint32 // per master: computes this superstep (0/1)
	next   []uint32 // per master: activated for next superstep (atomic sets)

	// out holds the SND phase's per-destination batches. The backing arrays
	// are reused across supersteps ([:0] reset): the transport hands every
	// batch to this worker's own RECV drain within the same superstep, so by
	// the time SND runs again the previous batches are dead.
	out [][]syncMsg[M]
}

func (ws *workerState[V, M]) numMasters() int { return len(ws.masters) }

// IngressStats reports the Figure 13(1) breakdown of graph ingress.
type IngressStats struct {
	// Replication is the time spent creating replicas and wiring the view.
	Replication time.Duration
	// Init is the time spent evaluating Program.Init for masters and
	// replica seeds.
	Init time.Duration
	// Replicas is the total replica count; Replicas/|V| is the replication
	// factor of Figure 11.
	Replicas int64
}

// Engine executes a Program over the distributed immutable view.
type Engine[V, M any] struct {
	g       *graph.Graph
	prog    Program[V, M]
	cfg     Config[V, M]
	assign  *partition.Assignment
	ws      []*workerState[V, M]
	tr      transport.Interface[syncMsg[M]]
	inj     *fault.Injector[syncMsg[M]]
	agg     *aggregate.Registry
	trace   *metrics.Trace
	model   metrics.CostModel
	ingress IngressStats
	step    int

	// runSeq numbers Run calls on this engine (1-based); it becomes the
	// span stream's Run id, so restored engines keep distinct run spans.
	runSeq int64
}

// New partitions the graph, creates the replicas that form the distributed
// immutable view (the paper's extra ingress superstep, §4.3), and seeds
// every master and replica with the program's initial published value.
func New[V, M any](g *graph.Graph, prog Program[V, M], cfg Config[V, M]) (*Engine[V, M], error) {
	if g == nil || prog == nil {
		return nil, errors.New("cyclops: graph and program are required")
	}
	cfg.Cluster = cfg.Cluster.Normalize()
	if cfg.Partitioner == nil {
		cfg.Partitioner = partition.Hash{}
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	workers := cfg.Cluster.Workers()
	if cfg.Network != transport.InProcess && cfg.CheckpointEvery > 0 {
		return nil, errors.New("cyclops: checkpointing requires the in-process network")
	}
	if cfg.Network != transport.InProcess && cfg.Recover != nil {
		return nil, errors.New("cyclops: recovery requires the in-process network")
	}
	assign, err := cfg.Partitioner.Partition(g, workers)
	if err != nil {
		return nil, fmt.Errorf("cyclops: partition: %w", err)
	}
	tr, err := transport.New[syncMsg[M]](cfg.Network, workers,
		transport.PerSenderQueue, wrapSize[M](cfg.SizeOfMsg), wrapCodec[M](cfg.MsgCodec))
	if err != nil {
		return nil, fmt.Errorf("cyclops: transport: %w", err)
	}
	var inj *fault.Injector[syncMsg[M]]
	if cfg.FaultPlan != nil {
		inj = fault.Wrap(tr, *cfg.FaultPlan)
		tr = inj
	}

	name := "cyclops"
	if cfg.Cluster.Threads > 1 || cfg.Cluster.Receivers > 1 {
		name = "cyclopsmt"
	}
	e := &Engine[V, M]{
		g:      g,
		prog:   prog,
		cfg:    cfg,
		assign: assign,
		ws:     make([]*workerState[V, M], workers),
		tr:     tr,
		inj:    inj,
		agg:    aggregate.NewRegistry(),
		trace:  &metrics.Trace{Engine: name, Workers: workers},
		model:  metrics.DefaultCostModel(),
	}
	if cfg.CostModel != nil {
		e.model = *cfg.CostModel
	}
	if err := e.buildView(); err != nil {
		return nil, fmt.Errorf("cyclops: %w", err)
	}
	return e, nil
}

func wrapSize[M any](sizeOf func(M) int64) func(syncMsg[M]) int64 {
	if sizeOf == nil {
		return nil
	}
	return func(m syncMsg[M]) int64 { return 5 + sizeOf(m.Val) }
}

// syncCodec frames a syncMsg as 4B slot + 1B activation flag + value — the
// same 5-byte envelope wrapSize charges, so payload and wire accounting
// describe the same bytes.
type syncCodec[M any] struct{ inner graph.Codec[M] }

//lint:hotpath
func (c syncCodec[M]) EncodedSize(m syncMsg[M]) int {
	return 5 + c.inner.EncodedSize(m.Val)
}

//lint:hotpath
func (c syncCodec[M]) Append(dst []byte, m syncMsg[M]) []byte {
	dst = graph.AppendUint32(dst, uint32(m.Slot))
	var act byte
	if m.Activate {
		act = 1
	}
	dst = append(dst, act)
	return c.inner.Append(dst, m.Val)
}

//lint:hotpath
func (c syncCodec[M]) Decode(src []byte) (syncMsg[M], int, error) {
	var m syncMsg[M]
	if len(src) < 5 {
		return m, 0, graph.ErrShortBuffer
	}
	slot, err := graph.Uint32At(src)
	if err != nil {
		return m, 0, err
	}
	m.Slot = int32(slot)
	m.Activate = src[4] != 0
	val, n, err := c.inner.Decode(src[5:])
	if err != nil {
		return m, 0, err
	}
	m.Val = val
	return m, 5 + n, nil
}

func wrapCodec[M any](inner graph.Codec[M]) graph.Codec[syncMsg[M]] {
	if inner == nil {
		return nil
	}
	return syncCodec[M]{inner: inner}
}

// buildView performs the replica-creation ingress phase (§4.3): every vertex
// "sends a message" along its out-edges; the receiving worker creates a
// replica for each remote source, wires an in-edge from it, and records a
// local out-edge so the replica can activate the target later.
//
// Adjacency is assembled in per-slot rows first (insertion order) and then
// flattened into immutable CSR arrays, preserving the exact neighbor order
// of the old slice-of-slices layout — the flight recorder's byte-identical
// series depend on that order.
func (e *Engine[V, M]) buildView() error {
	workers := e.cfg.Cluster.Workers()
	n := e.g.NumVertices()

	repStart := time.Now()
	layout, err := partition.NewLayout(e.assign, n)
	if err != nil {
		return err
	}
	masterSlot := layout.Slot // global id → master slot on its owner
	inRows := make([][][]int32, workers)
	inWRows := make([][][]float64, workers)
	outRows := make([][][]int32, workers) // grows past masters as replicas appear
	repRows := make([][][]replicaRef, workers)
	for w := 0; w < workers; w++ {
		ws := &workerState[V, M]{masters: layout.Masters(w)}
		e.ws[w] = ws
		m := ws.numMasters()
		ws.values = make([]V, m)
		ws.outDeg = make([]int32, m)
		ws.inUnits = make([]int32, m)
		ws.active = make([]uint32, m)
		ws.next = make([]uint32, m) //lint:allow atomicmix construction happens before any worker goroutine starts
		ws.out = make([][]syncMsg[M], workers)
		for i, id := range ws.masters {
			ws.outDeg[i] = int32(e.g.OutDegree(id))
			ws.inUnits[i] = int32(e.g.InDegree(id))
		}
		inRows[w] = make([][]int32, m)
		inWRows[w] = make([][]float64, m)
		outRows[w] = make([][]int32, m)
		repRows[w] = make([][]replicaRef, m)
	}

	// replicaSlot[w][id] is id's replica slot on w, or -1 — a dense array
	// instead of a map: ingress touches it once per spanning edge.
	replicaSlot := make([][]int32, workers)
	for w := range replicaSlot {
		rs := make([]int32, n)
		for i := range rs {
			rs[i] = -1
		}
		replicaSlot[w] = rs
	}
	ensureReplica := func(w int, id graph.ID) int32 {
		if s := replicaSlot[w][id]; s >= 0 {
			return s
		}
		ws := e.ws[w]
		s := int32(ws.numMasters() + len(ws.replicaIDs))
		replicaSlot[w][id] = s
		ws.replicaIDs = append(ws.replicaIDs, id)
		outRows[w] = append(outRows[w], nil)
		owner := e.assign.Of[id]
		repRows[owner][masterSlot[id]] = append(
			repRows[owner][masterSlot[id]],
			replicaRef{worker: int32(w), slot: s})
		e.ingress.Replicas++
		return s
	}

	for u := 0; u < n; u++ {
		wu := e.assign.Of[u]
		su := masterSlot[u]
		ns := e.g.OutNeighbors(graph.ID(u))
		wts := e.g.OutWeights(graph.ID(u))
		for i, v := range ns {
			wv := e.assign.Of[v]
			sv := masterSlot[v]
			if wu == wv {
				// Local edge: direct shared-memory in-edge + local
				// activation edge.
				inRows[wv][sv] = append(inRows[wv][sv], su)
				inWRows[wv][sv] = append(inWRows[wv][sv], wts[i])
				outRows[wu][su] = append(outRows[wu][su], sv)
			} else {
				// Spanning edge: the target worker gets a replica of u,
				// the in-edge points at the replica, and the replica
				// carries the activation edge to v.
				r := ensureReplica(wv, graph.ID(u))
				inRows[wv][sv] = append(inRows[wv][sv], r)
				inWRows[wv][sv] = append(inWRows[wv][sv], wts[i])
				outRows[wv][r] = append(outRows[wv][r], sv)
			}
		}
	}
	for w := 0; w < workers; w++ {
		ws := e.ws[w]
		ws.in = graph.CSRFromRows(inRows[w])
		ws.inWeights = graph.CSRFromRows(inWRows[w])
		ws.localOut = graph.CSRFromRows(outRows[w])
		ws.replicas = graph.CSRFromRows(repRows[w])
	}
	e.ingress.Replication = time.Since(repStart)

	// Seed values and views. Init must be deterministic so replica seeds
	// agree with master seeds.
	initStart := time.Now()
	for w := 0; w < workers; w++ {
		ws := e.ws[w]
		ws.view = make([]M, ws.numMasters()+len(ws.replicaIDs))
		for i, id := range ws.masters {
			v, m, act := e.prog.Init(id, e.g)
			ws.values[i] = v
			ws.view[i] = m
			if act {
				ws.active[i] = 1
			}
		}
		for r, id := range ws.replicaIDs {
			_, m, _ := e.prog.Init(id, e.g)
			ws.view[ws.numMasters()+r] = m
		}
	}
	e.ingress.Init = time.Since(initStart)
	return nil
}

// Graph returns the input graph.
func (e *Engine[V, M]) Graph() *graph.Graph { return e.g }

// Assignment exposes the partition.
func (e *Engine[V, M]) Assignment() *partition.Assignment { return e.assign }

// Aggregates exposes the folded aggregator values of the last barrier.
func (e *Engine[V, M]) Aggregates() *aggregate.Registry { return e.agg }

// Trace returns per-superstep statistics.
func (e *Engine[V, M]) Trace() *metrics.Trace { return e.trace }

// Ingress returns the replica-creation statistics (Figure 13(1), Table 4).
func (e *Engine[V, M]) Ingress() IngressStats { return e.ingress }

// ReplicationFactor returns replicas per vertex (Figure 11).
func (e *Engine[V, M]) ReplicationFactor() float64 {
	if e.g.NumVertices() == 0 {
		return 0
	}
	return float64(e.ingress.Replicas) / float64(e.g.NumVertices())
}

// Superstep reports the current superstep index.
func (e *Engine[V, M]) Superstep() int { return e.step }

// Values assembles the global vertex state indexed by vertex id.
func (e *Engine[V, M]) Values() []V {
	out := make([]V, e.g.NumVertices())
	for _, ws := range e.ws {
		for i, id := range ws.masters {
			out[id] = ws.values[i]
		}
	}
	return out
}

// ViewOf returns the published value of vertex id as stored at its master
// (what neighbors read next superstep). Test/diagnostic helper.
func (e *Engine[V, M]) ViewOf(id graph.ID) M {
	w := e.assign.Of[id]
	ws := e.ws[w]
	for i, m := range ws.masters {
		if m == id {
			return ws.view[i]
		}
	}
	panic("cyclops: vertex not found at its owner")
}

// TransportStats exposes raw traffic counters.
func (e *Engine[V, M]) TransportStats() transport.Snapshot { return e.tr.Stats().Snapshot() }

// workerReplicas reports how many replicas each worker hosts (the skew
// profiler's replica-placement vector).
func (e *Engine[V, M]) workerReplicas() []int64 {
	out := make([]int64, len(e.ws))
	for w, ws := range e.ws {
		out[w] = int64(len(ws.replicaIDs))
	}
	return out
}

// Close releases transport resources (sockets in TCPLoopback mode).
func (e *Engine[V, M]) Close() error { return e.tr.Close() }
