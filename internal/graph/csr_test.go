package graph

import "testing"

// TestCSREmptyRows covers the empty-partition shape: a CSR whose rows were
// never appended to must validate and iterate as zero-length rows.
func TestCSREmptyRows(t *testing.T) {
	b := NewCSRBuilder[int32](4)
	b.Append(2, 7)
	c := b.Build()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 4 || c.NumItems() != 1 {
		t.Fatalf("rows=%d items=%d, want 4/1", c.NumRows(), c.NumItems())
	}
	for _, empty := range []int{0, 1, 3} {
		if got := c.Row(empty); len(got) != 0 {
			t.Fatalf("row %d = %v, want empty", empty, got)
		}
		if c.RowLen(empty) != 0 {
			t.Fatalf("RowLen(%d) = %d, want 0", empty, c.RowLen(empty))
		}
	}
	if got := c.Row(2); len(got) != 1 || got[0] != 7 {
		t.Fatalf("row 2 = %v, want [7]", got)
	}

	// A fully empty CSR (all rows empty — the empty-partition case) is
	// valid too.
	empty := NewCSRBuilder[int32](3).Build()
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 3 || empty.NumItems() != 0 {
		t.Fatalf("empty CSR: rows=%d items=%d", empty.NumRows(), empty.NumItems())
	}

	// Zero rows entirely.
	none := NewCSRBuilder[int32](0).Build()
	if err := none.Validate(); err != nil {
		t.Fatal(err)
	}
	if none.NumRows() != 0 {
		t.Fatalf("zero-row CSR: rows=%d", none.NumRows())
	}
}

// TestCSRIsolatedVertices builds a CSR over a graph with isolated vertices
// (no in- or out-edges): their rows must exist and be empty, and must not
// shift neighboring rows' offsets.
func TestCSRIsolatedVertices(t *testing.T) {
	gb := NewBuilder(5)
	gb.AddEdge(0, 2)
	gb.AddEdge(4, 2)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	b := NewCSRBuilder[ID](int(g.NumVertices()))
	for v := ID(0); v < ID(g.NumVertices()); v++ {
		for _, u := range g.OutNeighbors(v) {
			b.Append(int(v), u)
		}
	}
	c := b.Build()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 and 3 are isolated; 2 has in-edges only.
	for _, v := range []int{1, 2, 3} {
		if c.RowLen(v) != 0 {
			t.Fatalf("isolated/in-only vertex %d: row %v, want empty", v, c.Row(v))
		}
	}
	if got := c.Row(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("row 0 = %v, want [2]", got)
	}
	if got := c.Row(4); len(got) != 1 || got[0] != 2 {
		t.Fatalf("row 4 = %v, want [2]", got)
	}
}

// TestCSRDuplicateEdges: a multigraph edge appended twice appears twice, in
// insertion order — the CSR must not dedupe or sort.
func TestCSRDuplicateEdges(t *testing.T) {
	b := NewCSRBuilder[ID](2)
	b.Append(0, 3)
	b.Append(0, 1)
	b.Append(0, 3)
	c := b.Build()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	got := c.Row(0)
	want := []ID{3, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("row 0 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row 0 = %v, want %v (insertion order, duplicates kept)", got, want)
		}
	}
}

// TestCSROrderMatchesAdjacency is the determinism property test: for a
// seeded random graph, CSR row iteration must reproduce the seed
// adjacency-list order element for element. Engines rely on this to keep
// message emission order — and therefore every exact-diffed flight-recorder
// counter — identical across the map-to-CSR migration.
func TestCSROrderMatchesAdjacency(t *testing.T) {
	const n, deg = 500, 8
	gb := NewBuilder(n)
	// Deterministic pseudo-random multigraph, duplicates and self-loops
	// included, so the property covers the awkward shapes too.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for v := 0; v < n; v++ {
		for i := 0; i < deg; i++ {
			gb.AddWeightedEdge(ID(v), ID(next()%n), float64(next()%1000)/1000)
		}
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}

	outs := NewCSRBuilder[ID](n)
	ws := NewCSRBuilder[float64](n)
	for v := ID(0); v < ID(n); v++ {
		ns, wts := g.OutNeighbors(v), g.OutWeights(v)
		for i := range ns {
			outs.Append(int(v), ns[i])
			ws.Append(int(v), wts[i])
		}
	}
	co, cw := outs.Build(), ws.Build()
	if err := co.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := ID(0); v < ID(n); v++ {
		ns, wts := g.OutNeighbors(v), g.OutWeights(v)
		rn, rw := co.Row(int(v)), cw.Row(int(v))
		if len(rn) != len(ns) || len(rw) != len(wts) {
			t.Fatalf("vertex %d: CSR row len %d/%d, adjacency %d", v, len(rn), len(rw), len(ns))
		}
		for i := range ns {
			if rn[i] != ns[i] || rw[i] != wts[i] {
				t.Fatalf("vertex %d neighbor %d: CSR (%d,%g) != adjacency (%d,%g)",
					v, i, rn[i], rw[i], ns[i], wts[i])
			}
		}
	}
}

// BenchmarkCSRTraversal measures the hot-loop cost of iterating every row of
// a partition-sized CSR — the access pattern of the engines' gather loops.
// The CI perf gate asserts 0 allocs/op: traversal must never allocate.
func BenchmarkCSRTraversal(b *testing.B) {
	const n, deg = 4096, 16
	cb := NewCSRBuilder[int32](n)
	for v := 0; v < n; v++ {
		for i := 0; i < deg; i++ {
			cb.Append(v, int32((v*deg+i*2654435761)%n))
		}
	}
	c := cb.Build()
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for v := 0; v < n; v++ {
			for _, s := range c.Row(v) {
				sum += int64(s)
			}
		}
	}
	if sum == 42 {
		b.Log(sum) // keep the traversal live
	}
}

// TestCSRTraversalAllocs enforces the benchmark's invariant in the plain
// test run: row iteration performs zero allocations.
func TestCSRTraversalAllocs(t *testing.T) {
	cb := NewCSRBuilder[int32](64)
	for v := 0; v < 64; v++ {
		for i := 0; i < 4; i++ {
			cb.Append(v, int32(v+i))
		}
	}
	c := cb.Build()
	var sum int64
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < 64; v++ {
			for _, s := range c.Row(v) {
				sum += int64(s)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("CSR traversal allocates %.1f per run, want 0", allocs)
	}
	_ = sum
}
