package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, 0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestSingleVertexNoEdges(t *testing.T) {
	g := mustGraph(t, 1, nil)
	if g.OutDegree(0) != 0 || g.InDegree(0) != 0 {
		t.Fatal("isolated vertex must have degree 0")
	}
}

func TestBasicAdjacency(t *testing.T) {
	g := mustGraph(t, 4, []Edge{
		{0, 1, 1}, {0, 2, 2}, {1, 2, 3}, {3, 0, 4},
	})
	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []ID{1, 2}) {
		t.Errorf("OutNeighbors(0) = %v", got)
	}
	if got := g.OutWeights(0); !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Errorf("OutWeights(0) = %v", got)
	}
	if got := g.InNeighbors(2); !reflect.DeepEqual(got, []ID{0, 1}) {
		t.Errorf("InNeighbors(2) = %v", got)
	}
	if got := g.InWeights(2); !reflect.DeepEqual(got, []float64{2, 3}) {
		t.Errorf("InWeights(2) = %v", got)
	}
	if g.InDegree(0) != 1 || g.OutDegree(3) != 1 {
		t.Error("degree mismatch")
	}
}

func TestHasEdge(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 4, 1}, {0, 2, 1}, {3, 3, 1}})
	cases := []struct {
		s, d ID
		want bool
	}{
		{0, 2, true}, {0, 4, true}, {0, 3, false}, {2, 0, false}, {3, 3, true},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.s, c.d); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.s, c.d, got, c.want)
		}
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(7, 3)
	g := b.MustBuild()
	if g.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", g.NumVertices())
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3).Dedup()
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(0, 1, 9)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w := g.OutWeights(0)[0]; w != 5 {
		t.Errorf("dedup kept weight %g, want first occurrence 5", w)
	}
}

func TestBuilderNoSelfLoops(t *testing.T) {
	b := NewBuilder(2).NoSelfLoops()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if g.NumEdges() != 1 || g.HasEdge(0, 0) {
		t.Fatalf("self-loop survived: %d edges", g.NumEdges())
	}
}

func TestDuplicatesKeptByDefault(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	if g := b.MustBuild(); g.NumEdges() != 2 {
		t.Fatalf("duplicates should be kept, got %d edges", g.NumEdges())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{2, 0, 1.5}, {0, 1, 1}, {1, 2, 2}, {0, 2, 3}}
	g := mustGraph(t, 3, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges() returned %d, want %d", len(out), len(in))
	}
	for _, e := range out {
		found := false
		for _, orig := range in {
			if orig == e {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected edge %+v", e)
		}
	}
}

// Property: building from any random edge set yields a graph that validates,
// preserves the edge multiset, and has matching in/out views.
func TestBuildProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 512
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{
				Src:    ID(rng.Intn(n)),
				Dst:    ID(rng.Intn(n)),
				Weight: float64(rng.Intn(9) + 1),
			}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		if g.Validate() != nil || g.NumEdges() != m {
			return false
		}
		// Each edge must appear in both views with its weight.
		type key struct {
			s, d ID
			w    float64
		}
		outCount := map[key]int{}
		for v := 0; v < n; v++ {
			ns, ws := g.OutNeighbors(ID(v)), g.OutWeights(ID(v))
			for i := range ns {
				outCount[key{ID(v), ns[i], ws[i]}]++
			}
		}
		inCount := map[key]int{}
		for v := 0; v < n; v++ {
			ns, ws := g.InNeighbors(ID(v)), g.InWeights(ID(v))
			for i := range ns {
				inCount[key{ns[i], ID(v), ws[i]}]++
			}
		}
		want := map[key]int{}
		for _, e := range edges {
			want[key{e.Src, e.Dst, e.Weight}]++
		}
		return reflect.DeepEqual(outCount, want) && reflect.DeepEqual(inCount, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of out-degrees == sum of in-degrees == edge count.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		b := NewBuilder(n)
		m := rng.Intn(300)
		for i := 0; i < m; i++ {
			b.AddEdge(ID(rng.Intn(n)), ID(rng.Intn(n)))
		}
		g := b.MustBuild()
		outSum, inSum := 0, 0
		for v := 0; v < n; v++ {
			outSum += g.OutDegree(ID(v))
			inSum += g.InDegree(ID(v))
		}
		return outSum == m && inSum == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustGraph(t, 5, []Edge{
		{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}, {1, 4, 5},
	})
	sub, orig, err := g.InducedSubgraph([]ID{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("|V| = %d", sub.NumVertices())
	}
	// Kept edges: 1→2 and 1→4 (0 and 3 are dropped).
	if sub.NumEdges() != 2 {
		t.Fatalf("|E| = %d", sub.NumEdges())
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 4 {
		t.Fatalf("mapping = %v", orig)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) {
		t.Fatal("remapped edges missing")
	}
	if sub.OutWeights(0)[0] != 2 {
		t.Fatal("weights lost in subgraph")
	}
}

func TestInducedSubgraphEdgeCases(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 1}})
	// Duplicates collapse.
	sub, orig, err := g.InducedSubgraph([]ID{0, 0, 1})
	if err != nil || sub.NumVertices() != 2 || len(orig) != 2 {
		t.Fatalf("dup collapse: %v %v %v", sub, orig, err)
	}
	// Out-of-range rejected.
	if _, _, err := g.InducedSubgraph([]ID{9}); err == nil {
		t.Fatal("out-of-range vertex must error")
	}
	// Empty selection.
	sub, _, err = g.InducedSubgraph(nil)
	if err != nil || sub.NumVertices() != 0 {
		t.Fatalf("empty selection: %v %v", sub, err)
	}
}

// Property: a subgraph over ALL vertices is edge-for-edge the original.
func TestInducedSubgraphIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(80); i++ {
			b.AddEdge(ID(rng.Intn(n)), ID(rng.Intn(n)))
		}
		g := b.MustBuild()
		all := make([]ID, n)
		for i := range all {
			all[i] = ID(i)
		}
		sub, _, err := g.InducedSubgraph(all)
		if err != nil || sub.NumEdges() != g.NumEdges() {
			return false
		}
		ea, eb := g.Edges(), sub.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
