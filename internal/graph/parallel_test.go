package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFileParallelBasic(t *testing.T) {
	path := writeTemp(t, "# header\n0 1\n1 2 2.5\n2 0\n\n3 1\n")
	g, err := LoadFileParallel(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || g.OutWeights(1)[0] != 2.5 {
		t.Fatal("weighted edge lost")
	}
}

func TestLoadFileParallelMatchesSequential(t *testing.T) {
	// A graph large enough that every worker gets a real range. Build the
	// expected graph directly from the same edges (LoadFile remaps ids in
	// first-appearance order, which would relabel vertices).
	var sb strings.Builder
	rng := rand.New(rand.NewSource(5))
	eb := NewBuilder(300)
	for i := 0; i < 5000; i++ {
		src, dst := rng.Intn(300), rng.Intn(300)
		sb.WriteString(itoa(src))
		sb.WriteByte(' ')
		sb.WriteString(itoa(dst))
		sb.WriteByte('\n')
		eb.AddEdge(ID(src), ID(dst))
	}
	path := writeTemp(t, sb.String())
	seq := eb.MustBuild()
	for _, workers := range []int{1, 2, 4, 7} {
		par, err := LoadFileParallel(path, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.NumVertices() != seq.NumVertices() || par.NumEdges() != seq.NumEdges() {
			t.Fatalf("workers=%d: %d/%d vs %d/%d", workers,
				par.NumVertices(), par.NumEdges(), seq.NumVertices(), seq.NumEdges())
		}
		// The builder sorts, so adjacency must be identical.
		for v := 0; v < seq.NumVertices(); v++ {
			sn, pn := seq.OutNeighbors(ID(v)), par.OutNeighbors(ID(v))
			if len(sn) != len(pn) {
				t.Fatalf("workers=%d vertex %d: degree %d vs %d", workers, v, len(pn), len(sn))
			}
			for i := range sn {
				if sn[i] != pn[i] {
					t.Fatalf("workers=%d vertex %d: adjacency differs", workers, v)
				}
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestLoadFileParallelEmptyAndMissing(t *testing.T) {
	path := writeTemp(t, "")
	g, err := LoadFileParallel(path, 4)
	if err != nil || g.NumVertices() != 0 {
		t.Fatalf("empty file: %v %v", g, err)
	}
	if _, err := LoadFileParallel(filepath.Join(t.TempDir(), "nope"), 2); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadFileParallelBadInput(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 1 x\n", "1 2 3 4\n"} {
		path := writeTemp(t, bad)
		if _, err := LoadFileParallel(path, 2); err == nil {
			t.Errorf("input %q must fail", bad)
		}
	}
}

func TestLoadFileParallelMoreWorkersThanLines(t *testing.T) {
	path := writeTemp(t, "0 1\n")
	g, err := LoadFileParallel(path, 16)
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("tiny file: %v %v", g, err)
	}
	// workers < 1 clamps.
	g, err = LoadFileParallel(path, 0)
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("clamped workers: %v %v", g, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 1, 1}, {1, 2, 3.5}, {4, 0, 1}, {2, 2, 0.25}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 5 || g2.NumEdges() != 4 {
		t.Fatalf("|V|=%d |E|=%d", g2.NumVertices(), g2.NumEdges())
	}
	for v := 0; v < 5; v++ {
		a, b := g.InNeighbors(ID(v)), g2.InNeighbors(ID(v))
		if len(a) != len(b) {
			t.Fatalf("in-degree of %d differs", v)
		}
	}
	if g2.OutWeights(1)[0] != 3.5 {
		t.Fatal("weight lost")
	}
}

func TestBinaryUnweightedOmitsWeights(t *testing.T) {
	weighted := mustGraph(t, 3, []Edge{{0, 1, 2}, {1, 2, 1}})
	unweighted := mustGraph(t, 3, []Edge{{0, 1, 1}, {1, 2, 1}})
	var wb, ub bytes.Buffer
	if err := WriteBinary(&wb, weighted); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&ub, unweighted); err != nil {
		t.Fatal(err)
	}
	if ub.Len() >= wb.Len() {
		t.Fatalf("unweighted encoding (%d bytes) should be smaller than weighted (%d)", ub.Len(), wb.Len())
	}
	g, err := ReadBinary(&ub)
	if err != nil {
		t.Fatal(err)
	}
	if g.OutWeights(0)[0] != 1 {
		t.Fatal("unweighted reload must restore weight 1")
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOTMAGIC"),
		append(append([]byte{}, binaryMagic[:]...), 1, 2, 3), // truncated header
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("corrupt input %q accepted", c)
		}
	}
	// Implausible sizes.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	huge := make([]byte, 16)
	for i := range huge {
		huge[i] = 0xff
	}
	buf.Write(huge)
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("implausible sizes accepted")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	g := mustGraph(t, 4, []Edge{{0, 1, 1}, {2, 3, 7}})
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 || g2.OutWeights(2)[0] != 7 {
		t.Fatal("file round trip lost data")
	}
	if _, err := ReadBinaryFile(filepath.Join(dir, "absent.bin")); err == nil {
		t.Fatal("missing file must error")
	}
}

// Property: text → binary → text preserves the exact edge multiset.
func TestBinaryPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		b := NewBuilder(n)
		m := rng.Intn(150)
		for i := 0; i < m; i++ {
			b.AddWeightedEdge(ID(rng.Intn(n)), ID(rng.Intn(n)), float64(rng.Intn(5)+1))
		}
		g := b.MustBuild()
		var buf bytes.Buffer
		if WriteBinary(&buf, g) != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil || g2.Validate() != nil {
			return false
		}
		a, bb := g.Edges(), g2.Edges()
		if len(a) != len(bb) {
			return false
		}
		for i := range a {
			if a[i] != bb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
