// Package graph provides the immutable in-memory graph representation shared
// by every engine in this repository. Graphs are directed, weighted, and
// stored in compressed sparse row (CSR) form with both out- and in-adjacency
// so that push-mode engines (BSP) can iterate out-edges and pull-mode engines
// (Cyclops) can iterate in-edges without transposing at run time.
//
// Vertex identifiers are dense uint32 values in [0, NumVertices). The Cyclops
// paper (HPDC'14) evaluates on graphs between 0.1M and 5.7M vertices; dense
// 32-bit ids comfortably cover that range while halving adjacency memory
// compared to 64-bit ids.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ID is a dense vertex identifier in [0, NumVertices).
type ID = uint32

// Edge is a directed, weighted edge. The zero Weight is meaningful for
// unweighted algorithms (PageRank, label propagation ignore weights).
type Edge struct {
	Src    ID
	Dst    ID
	Weight float64
}

// Graph is an immutable directed graph in CSR form. Construct one with a
// Builder or one of the loaders in this package; after construction the
// structure must not be mutated (engines share it across goroutines without
// synchronization, which is only sound because it is read-only — this is the
// in-memory analogue of the paper's "immutable view" of topology).
type Graph struct {
	n int

	outIndex []int64 // len n+1; outIndex[v]..outIndex[v+1] bounds v's out-edges
	outTo    []ID
	outW     []float64

	inIndex []int64 // len n+1; in-edges of v (sources pointing at v)
	inFrom  []ID
	inW     []float64
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outTo) }

// OutDegree reports the number of out-edges of v.
func (g *Graph) OutDegree(v ID) int { return int(g.outIndex[v+1] - g.outIndex[v]) }

// InDegree reports the number of in-edges of v.
func (g *Graph) InDegree(v ID) int { return int(g.inIndex[v+1] - g.inIndex[v]) }

// OutNeighbors returns the destinations of v's out-edges. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v ID) []ID { return g.outTo[g.outIndex[v]:g.outIndex[v+1]] }

// OutWeights returns the weights of v's out-edges, parallel to OutNeighbors.
func (g *Graph) OutWeights(v ID) []float64 { return g.outW[g.outIndex[v]:g.outIndex[v+1]] }

// InNeighbors returns the sources of v's in-edges. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) InNeighbors(v ID) []ID { return g.inFrom[g.inIndex[v]:g.inIndex[v+1]] }

// InWeights returns the weights of v's in-edges, parallel to InNeighbors.
func (g *Graph) InWeights(v ID) []float64 { return g.inW[g.inIndex[v]:g.inIndex[v+1]] }

// Edges returns a fresh slice of all edges in (src, position) order. It is
// intended for tests and tooling, not hot paths.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.n; v++ {
		for i := g.outIndex[v]; i < g.outIndex[v+1]; i++ {
			edges = append(edges, Edge{Src: ID(v), Dst: g.outTo[i], Weight: g.outW[i]})
		}
	}
	return edges
}

// HasEdge reports whether a directed edge src→dst exists. Out-neighbor lists
// are sorted by destination, so this is a binary search.
func (g *Graph) HasEdge(src, dst ID) bool {
	ns := g.OutNeighbors(src)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= dst })
	return i < len(ns) && ns[i] == dst
}

// Validate checks CSR structural invariants. It is used by tests and by the
// loaders; a Graph produced by a Builder always validates.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return errors.New("graph: negative vertex count")
	}
	if len(g.outIndex) != g.n+1 || len(g.inIndex) != g.n+1 {
		return errors.New("graph: index arrays have wrong length")
	}
	if g.outIndex[0] != 0 || g.inIndex[0] != 0 {
		return errors.New("graph: index arrays must start at 0")
	}
	if g.outIndex[g.n] != int64(len(g.outTo)) {
		return fmt.Errorf("graph: outIndex end %d != %d edges", g.outIndex[g.n], len(g.outTo))
	}
	if g.inIndex[g.n] != int64(len(g.inFrom)) {
		return fmt.Errorf("graph: inIndex end %d != %d edges", g.inIndex[g.n], len(g.inFrom))
	}
	if len(g.outTo) != len(g.outW) || len(g.inFrom) != len(g.inW) {
		return errors.New("graph: weight arrays not parallel to adjacency")
	}
	if len(g.outTo) != len(g.inFrom) {
		return errors.New("graph: out/in edge counts differ")
	}
	for v := 0; v < g.n; v++ {
		if g.outIndex[v] > g.outIndex[v+1] || g.inIndex[v] > g.inIndex[v+1] {
			return fmt.Errorf("graph: non-monotone index at vertex %d", v)
		}
		ns := g.OutNeighbors(ID(v))
		for i, u := range ns {
			if int(u) >= g.n {
				return fmt.Errorf("graph: out-neighbor %d of %d out of range", u, v)
			}
			if i > 0 && ns[i-1] > u {
				return fmt.Errorf("graph: out-neighbors of %d not sorted", v)
			}
		}
		for _, u := range g.InNeighbors(ID(v)) {
			if int(u) >= g.n {
				return fmt.Errorf("graph: in-neighbor %d of %d out of range", u, v)
			}
		}
	}
	return nil
}

// InducedSubgraph returns the subgraph over the given vertices (all edges
// whose endpoints are both selected), plus the mapping from new ids to the
// original ones. Duplicate ids in keep are collapsed; order is preserved.
// It is the utility behind per-partition debugging and community extraction.
func (g *Graph) InducedSubgraph(keep []ID) (*Graph, []ID, error) {
	newID := make(map[ID]ID, len(keep))
	original := make([]ID, 0, len(keep))
	for _, v := range keep {
		if int(v) >= g.n {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d out of range", v)
		}
		if _, ok := newID[v]; ok {
			continue
		}
		newID[v] = ID(len(original))
		original = append(original, v)
	}
	b := NewBuilder(len(original))
	for _, v := range original {
		ns := g.OutNeighbors(v)
		ws := g.OutWeights(v)
		for i, u := range ns {
			if nu, ok := newID[u]; ok {
				b.AddWeightedEdge(newID[v], nu, ws[i])
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, original, nil
}
