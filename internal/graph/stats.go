package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarises a graph's degree structure. The replication factor and
// convergence behaviour studied in the paper are driven by degree skew, so
// the generators' tests assert on these fields.
type Stats struct {
	Vertices     int
	Edges        int
	MaxOutDegree int
	MaxInDegree  int
	MeanDegree   float64 // out-edges per vertex
	// GiniOut is the Gini coefficient of the out-degree distribution:
	// 0 = perfectly uniform, →1 = extremely skewed (power-law graphs sit
	// well above 0.4; lattices near 0).
	GiniOut float64
	// Isolated counts vertices with neither in- nor out-edges.
	Isolated int
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	if s.Vertices == 0 {
		return s
	}
	degrees := make([]int, s.Vertices)
	for v := 0; v < s.Vertices; v++ {
		od, id := g.OutDegree(ID(v)), g.InDegree(ID(v))
		degrees[v] = od
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if id > s.MaxInDegree {
			s.MaxInDegree = id
		}
		if od == 0 && id == 0 {
			s.Isolated++
		}
	}
	s.MeanDegree = float64(s.Edges) / float64(s.Vertices)
	s.GiniOut = gini(degrees)
	return s
}

// gini computes the Gini coefficient of non-negative integer samples.
func gini(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * float64(x)
		total += float64(x)
	}
	n := float64(len(sorted))
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}

// DegreeHistogram returns counts bucketed by powers of two of out-degree:
// bucket i counts vertices with out-degree in [2^i, 2^(i+1)), bucket 0 also
// includes degree-0 vertices for compactness of display.
func DegreeHistogram(g *Graph) []int {
	maxBucket := 0
	counts := make([]int, 33)
	for v := 0; v < g.NumVertices(); v++ {
		d := g.OutDegree(ID(v))
		b := 0
		if d > 0 {
			b = int(math.Log2(float64(d))) + 1
		}
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	return counts[:maxBucket+1]
}

// String renders a one-line summary, used by the graphgen CLI.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d meanDeg=%.2f maxOut=%d maxIn=%d gini=%.3f isolated=%d",
		s.Vertices, s.Edges, s.MeanDegree, s.MaxOutDegree, s.MaxInDegree, s.GiniOut, s.Isolated)
}
