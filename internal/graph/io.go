package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text format is the SNAP-style edge list the paper's datasets ship in:
// one "src dst" or "src dst weight" triple per line, '#' comments, blank
// lines ignored. Vertex ids need not be dense; Load densifies them unless the
// input is already dense.

// Load reads an edge-list graph from r. If the vertex ids in the input are
// not dense (0..n-1), they are remapped in first-appearance order; the
// returned mapping is nil when no remapping was necessary.
func Load(r io.Reader) (*Graph, map[int64]ID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	b := NewBuilder(0)
	remap := make(map[int64]ID)
	var maxRaw int64 = -1
	dense := true
	intern := func(raw int64) ID {
		if raw > maxRaw {
			maxRaw = raw
		}
		id, ok := remap[raw]
		if !ok {
			id = ID(len(remap))
			remap[raw] = id
		}
		if int64(id) != raw {
			dense = false
		}
		return id
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, nil, fmt.Errorf("graph load: line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph load: line %d: bad src: %w", line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph load: line %d: bad dst: %w", line, err)
		}
		if src < 0 || dst < 0 {
			return nil, nil, fmt.Errorf("graph load: line %d: negative vertex id", line)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("graph load: line %d: bad weight: %w", line, err)
			}
		}
		b.AddWeightedEdge(intern(src), intern(dst), w)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph load: %w", err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	if dense {
		return g, nil, nil
	}
	return g, remap, nil
}

// LoadFile reads an edge-list graph from a file path.
func LoadFile(path string) (*Graph, map[int64]ID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f)
}

// Write emits the graph in the text edge-list format read by Load. Weights
// equal to 1 are omitted so unweighted graphs round-trip to 2-field lines.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		ns := g.OutNeighbors(ID(v))
		ws := g.OutWeights(ID(v))
		for i, u := range ns {
			if ws[i] == 1 {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			} else {
				fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes the graph to a file path in the text edge-list format.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
