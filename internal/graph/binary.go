package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary format: a compact little-endian CSR dump that reloads in O(E)
// without parsing or re-sorting. Layout:
//
//	magic   [8]byte  "CYGRAPH1"
//	n       uint64   vertex count
//	m       uint64   edge count
//	outIdx  [n+1]uint64
//	outTo   [m]uint32
//	flags   uint8    bit 0: weights present
//	outW    [m]float64   (only when flags&1 != 0; all-ones graphs omit it)
//
// The in-CSR is rebuilt on load (cheaper than storing it).

var binaryMagic = [8]byte{'C', 'Y', 'G', 'R', 'A', 'P', 'H', '1'}

// WriteBinary emits the graph in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var u64 [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	if err := put(uint64(g.n)); err != nil {
		return err
	}
	if err := put(uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, off := range g.outIndex {
		if err := put(uint64(off)); err != nil {
			return err
		}
	}
	var u32 [4]byte
	for _, to := range g.outTo {
		binary.LittleEndian.PutUint32(u32[:], to)
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
	}
	weighted := false
	for _, w := range g.outW {
		if w != 1 {
			weighted = true
			break
		}
	}
	flags := byte(0)
	if weighted {
		flags = 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if weighted {
		for _, wt := range g.outW {
			if err := put(math.Float64bits(wt)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph binary: magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph binary: bad magic %q", magic)
	}
	var u64 [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	n64, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph binary: n: %w", err)
	}
	m64, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph binary: m: %w", err)
	}
	const maxReasonable = 1 << 40
	if n64 > maxReasonable || m64 > maxReasonable {
		return nil, fmt.Errorf("graph binary: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	g := &Graph{
		n:        n,
		outIndex: make([]int64, n+1),
		outTo:    make([]ID, m),
		outW:     make([]float64, m),
		inIndex:  make([]int64, n+1),
		inFrom:   make([]ID, m),
		inW:      make([]float64, m),
	}
	for i := range g.outIndex {
		v, err := get()
		if err != nil {
			return nil, fmt.Errorf("graph binary: outIndex: %w", err)
		}
		g.outIndex[i] = int64(v)
	}
	var u32 [4]byte
	for i := range g.outTo {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, fmt.Errorf("graph binary: outTo: %w", err)
		}
		g.outTo[i] = binary.LittleEndian.Uint32(u32[:])
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("graph binary: flags: %w", err)
	}
	if flags&1 != 0 {
		for i := range g.outW {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("graph binary: weights: %w", err)
			}
			g.outW[i] = math.Float64frombits(v)
		}
	} else {
		for i := range g.outW {
			g.outW[i] = 1
		}
	}

	// Rebuild the in-CSR by counting sort, as the Builder does.
	for _, to := range g.outTo {
		if int(to) >= n {
			return nil, fmt.Errorf("graph binary: edge target %d out of range", to)
		}
		g.inIndex[to+1]++
	}
	for v := 0; v < n; v++ {
		g.inIndex[v+1] += g.inIndex[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.inIndex[:n])
	for src := 0; src < n; src++ {
		for i := g.outIndex[src]; i < g.outIndex[src+1]; i++ {
			to := g.outTo[i]
			g.inFrom[cursor[to]] = ID(src)
			g.inW[cursor[to]] = g.outW[i]
			cursor[to]++
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph binary: %w", err)
	}
	return g, nil
}

// WriteBinaryFile writes the binary CSR format to a file path.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile loads the binary CSR format from a file path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
