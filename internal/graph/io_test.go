package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadBasic(t *testing.T) {
	input := `# a comment
0 1
0 2 2.5

1 2
`
	g, remap, err := Load(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if remap != nil {
		t.Errorf("dense input should not return a remap, got %v", remap)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if w := g.OutWeights(0)[1]; w != 2.5 {
		t.Errorf("weight = %g, want 2.5", w)
	}
}

func TestLoadRemapsSparseIDs(t *testing.T) {
	g, remap, err := Load(strings.NewReader("100 200\n200 300\n"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("|V| = %d, want 3", g.NumVertices())
	}
	if remap == nil {
		t.Fatal("sparse ids must return a remap")
	}
	if !g.HasEdge(remap[100], remap[200]) || !g.HasEdge(remap[200], remap[300]) {
		t.Error("remapped edges missing")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"0\n",          // too few fields
		"0 1 2 3\n",    // too many fields
		"a 1\n",        // bad src
		"0 b\n",        // bad dst
		"0 1 weight\n", // bad weight
		"-1 2\n",       // negative id
	}
	for _, in := range cases {
		if _, _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%q) succeeded, want error", in)
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1, 1}, {1, 2, 3.5}, {3, 0, 1}, {2, 2, 0.25}})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, _, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.Src, e.Dst) {
			t.Errorf("edge %d→%d lost in round trip", e.Src, e.Dst)
		}
	}
}

func TestWriteFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := mustGraph(t, 3, []Edge{{0, 1, 1}, {1, 2, 1}})
	if err := WriteFile(path, g); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	g2, _, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("LoadFile edges = %d", g2.NumEdges())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Fatal("loading a missing file must fail")
	}
}
