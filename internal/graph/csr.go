package graph

import "fmt"

// CSR is an immutable, flat, offset-indexed row store — the partition-local
// counterpart of Graph's global adjacency arrays. Engines build one CSR per
// neighbor-shaped structure at partition time (in-neighbor slots, local
// out-edges, replica placements) and then iterate Row slices in the
// superstep inner loops with zero per-vertex allocations and no map lookups.
//
// Rows preserve insertion order exactly: Row(i) returns the items appended
// to row i in the order they were appended, duplicates included. That
// property is what lets the flight-recorder gate prove the CSR migration
// changed nothing — neighbor iteration order equals the seed adjacency-list
// order, so message order, and therefore every exact-diffed counter, is
// byte-identical.
type CSR[T any] struct {
	offsets []int64 // len = rows+1, monotone, offsets[0] == 0
	items   []T     // len = offsets[rows]
}

// NumRows returns the number of rows.
func (c *CSR[T]) NumRows() int { return len(c.offsets) - 1 }

// NumItems returns the total number of items across all rows.
func (c *CSR[T]) NumItems() int { return len(c.items) }

// Row returns row i as a slice of the flat item array. The slice aliases
// the CSR's storage and must not be mutated or retained past the CSR's
// lifetime.
func (c *CSR[T]) Row(i int) []T {
	return c.items[c.offsets[i]:c.offsets[i+1]]
}

// RowLen returns len(Row(i)) without materializing the slice header.
func (c *CSR[T]) RowLen(i int) int {
	return int(c.offsets[i+1] - c.offsets[i])
}

// Validate checks the structural invariants: offsets present, monotone,
// anchored at zero, and spanning exactly the item array.
func (c *CSR[T]) Validate() error {
	if len(c.offsets) == 0 {
		return fmt.Errorf("graph: CSR: empty offsets (zero-row CSR still has offsets=[0])")
	}
	if c.offsets[0] != 0 {
		return fmt.Errorf("graph: CSR: offsets[0] = %d, want 0", c.offsets[0])
	}
	for i := 1; i < len(c.offsets); i++ {
		if c.offsets[i] < c.offsets[i-1] {
			return fmt.Errorf("graph: CSR: offsets not monotone at row %d: %d < %d",
				i-1, c.offsets[i], c.offsets[i-1])
		}
	}
	if got := c.offsets[len(c.offsets)-1]; got != int64(len(c.items)) {
		return fmt.Errorf("graph: CSR: offsets end at %d, want %d items", got, len(c.items))
	}
	return nil
}

// CSRBuilder accumulates rows and flattens them into a CSR. Build-time
// storage is row-sliced (this runs once, at partition time); the result is
// the flat immutable layout the hot loops iterate.
type CSRBuilder[T any] struct {
	rows [][]T
}

// NewCSRBuilder returns a builder for a CSR with the given number of rows.
// Rows never appended to come out empty — an empty partition or an isolated
// vertex is a zero-length row, not an error.
func NewCSRBuilder[T any](rows int) *CSRBuilder[T] {
	return &CSRBuilder[T]{rows: make([][]T, rows)}
}

// Append adds item to row. Items within a row keep insertion order;
// duplicates are kept (a multigraph edge appears as many times as it was
// added).
func (b *CSRBuilder[T]) Append(row int, item T) {
	b.rows[row] = append(b.rows[row], item)
}

// Build flattens the accumulated rows. The builder must not be used after
// Build.
func (b *CSRBuilder[T]) Build() CSR[T] {
	return CSRFromRows(b.rows)
}

// CSRFromRows flattens row slices into a CSR, preserving row and
// within-row order.
func CSRFromRows[T any](rows [][]T) CSR[T] {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	c := CSR[T]{
		offsets: make([]int64, len(rows)+1),
		items:   make([]T, 0, total),
	}
	for i, r := range rows {
		c.items = append(c.items, r...)
		c.offsets[i+1] = int64(len(c.items))
	}
	return c
}
