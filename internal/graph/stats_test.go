package graph

import (
	"math"
	"testing"
)

func TestComputeStatsBasic(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 0, 1}})
	s := ComputeStats(g)
	if s.Vertices != 5 || s.Edges != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxOutDegree != 3 || s.MaxInDegree != 1 {
		t.Errorf("max degrees: out=%d in=%d", s.MaxOutDegree, s.MaxInDegree)
	}
	if s.Isolated != 1 { // vertex 4
		t.Errorf("isolated = %d, want 1", s.Isolated)
	}
	if math.Abs(s.MeanDegree-0.8) > 1e-12 {
		t.Errorf("mean degree = %g", s.MeanDegree)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(mustGraph(t, 0, nil))
	if s.Vertices != 0 || s.Edges != 0 || s.GiniOut != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestGiniUniformVsSkewed(t *testing.T) {
	// Uniform out-degree 1 on a ring: gini near 0.
	ring := NewBuilder(10)
	for v := 0; v < 10; v++ {
		ring.AddEdge(ID(v), ID((v+1)%10))
	}
	uniform := ComputeStats(ring.MustBuild())
	// Star: one hub with all edges: gini near 1.
	star := NewBuilder(10)
	for v := 1; v < 10; v++ {
		star.AddEdge(0, ID(v))
	}
	skewed := ComputeStats(star.MustBuild())
	if uniform.GiniOut > 0.05 {
		t.Errorf("ring gini = %g, want ~0", uniform.GiniOut)
	}
	if skewed.GiniOut < 0.8 {
		t.Errorf("star gini = %g, want ~0.9", skewed.GiniOut)
	}
	if skewed.GiniOut <= uniform.GiniOut {
		t.Error("skewed gini must exceed uniform gini")
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(4)
	// Degrees: v0=1, v1=2, v2=4, v3=0.
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	for i := 0; i < 4; i++ {
		b.AddEdge(2, ID(i%3))
	}
	h := DegreeHistogram(b.MustBuild())
	// Bucket 0: degree 0 (v3). Bucket 1: [1,2) → v0. Bucket 2: [2,4) → v1.
	// Bucket 3: [4,8) → v2.
	want := []int{1, 1, 1, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := ComputeStats(mustGraph(t, 2, []Edge{{0, 1, 1}}))
	if s.String() == "" {
		t.Fatal("String must render")
	}
}
