package graph_test

import (
	"bytes"
	"fmt"

	"cyclops/internal/graph"
)

// Example builds a small weighted graph, walks both adjacency directions,
// and round-trips it through the text format.
func Example() {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 1.0)
	b.AddWeightedEdge(0, 2, 4.0)
	g := b.MustBuild()

	fmt.Printf("|V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("out(0)=%v in(2)=%v weight(0→1)=%g\n",
		g.OutNeighbors(0), g.InNeighbors(2), g.OutWeights(0)[0])

	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		panic(err)
	}
	g2, _, err := graph.Load(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("round trip: |E|=%d, has 0→2: %v\n", g2.NumEdges(), g2.HasEdge(0, 2))
	// Output:
	// |V|=3 |E|=3
	// out(0)=[1 2] in(2)=[0 1] weight(0→1)=2.5
	// round trip: |E|=3, has 0→2: true
}
