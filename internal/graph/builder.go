package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It tolerates
// unsorted input and, optionally, duplicate edges and self-loops (both kept
// by default — PageRank on web graphs legitimately has parallel links after
// URL normalisation; callers that want simple graphs use Dedup).
//
// The zero Builder is ready to use.
type Builder struct {
	n      int
	edges  []Edge
	dedup  bool
	noloop bool
}

// NewBuilder returns a Builder that will produce a graph with at least n
// vertices (AddEdge grows the vertex count as needed).
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// Dedup configures the builder to drop duplicate (src,dst) edges, keeping the
// first occurrence. Returns the builder for chaining.
func (b *Builder) Dedup() *Builder { b.dedup = true; return b }

// NoSelfLoops configures the builder to drop self-loop edges.
func (b *Builder) NoSelfLoops() *Builder { b.noloop = true; return b }

// AddEdge appends a directed edge with weight 1.
func (b *Builder) AddEdge(src, dst ID) { b.AddWeightedEdge(src, dst, 1) }

// AddWeightedEdge appends a directed weighted edge, growing the vertex count
// to cover both endpoints.
func (b *Builder) AddWeightedEdge(src, dst ID, w float64) {
	if int(src) >= b.n {
		b.n = int(src) + 1
	}
	if int(dst) >= b.n {
		b.n = int(dst) + 1
	}
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
}

// NumPendingEdges reports how many edges have been added so far.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph. The builder may be reused after
// Build (it retains its edges); Build itself does not mutate builder state
// beyond sorting its edge slice.
func (b *Builder) Build() (*Graph, error) {
	edges := b.edges
	if b.noloop {
		kept := edges[:0:0]
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	if b.dedup {
		kept := edges[:0:0]
		for i, e := range edges {
			if i == 0 || e.Src != edges[i-1].Src || e.Dst != edges[i-1].Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}

	g := &Graph{
		n:        b.n,
		outIndex: make([]int64, b.n+1),
		outTo:    make([]ID, len(edges)),
		outW:     make([]float64, len(edges)),
		inIndex:  make([]int64, b.n+1),
		inFrom:   make([]ID, len(edges)),
		inW:      make([]float64, len(edges)),
	}

	// Out-CSR: edges are sorted by (src, dst), so a single pass fills it.
	for i, e := range edges {
		g.outIndex[e.Src+1]++
		g.outTo[i] = e.Dst
		g.outW[i] = e.Weight
	}
	for v := 0; v < b.n; v++ {
		g.outIndex[v+1] += g.outIndex[v]
	}

	// In-CSR: counting sort by destination keeps ingress O(V+E).
	for _, e := range edges {
		g.inIndex[e.Dst+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inIndex[v+1] += g.inIndex[v]
	}
	cursor := make([]int64, b.n)
	copy(cursor, g.inIndex[:b.n])
	for _, e := range edges {
		i := cursor[e.Dst]
		g.inFrom[i] = e.Src
		g.inW[i] = e.Weight
		cursor[e.Dst]++
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph build: %w", err)
	}
	return g, nil
}

// MustBuild is Build for graphs known to be well-formed (generators, tests).
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges is a convenience constructor used heavily in tests.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
	}
	return b.Build()
}
