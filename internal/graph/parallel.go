package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// LoadFileParallel reads an edge-list file with several parser goroutines,
// mirroring the paper's ingress phase (§6.7): "the graph processing runtime
// splits the file into multiple blocks and generates in-memory data
// structures by all workers in parallel". The file is split into byte
// ranges aligned to line boundaries; each worker parses its range into a
// private edge buffer; the buffers are concatenated and built into one CSR.
//
// Unlike Load, vertex ids must already be dense non-negative integers (the
// parallel workers cannot share an interning table without serialising on
// it, and every supported generator writes dense ids).
func LoadFileParallel(path string, workers int) (*Graph, error) {
	if workers < 1 {
		workers = 1
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return NewBuilder(0).Build()
	}

	// Split into line-aligned ranges: each boundary moves forward to the
	// byte after the next '\n', so every line belongs to exactly one range.
	bounds := make([]int64, workers+1)
	bounds[workers] = size
	buf := make([]byte, 1)
	for w := 1; w < workers; w++ {
		pos := size * int64(w) / int64(workers)
		for pos < size {
			if _, err := f.ReadAt(buf, pos); err != nil {
				return nil, fmt.Errorf("graph load: align: %w", err)
			}
			pos++
			if buf[0] == '\n' {
				break
			}
		}
		bounds[w] = pos
	}

	chunks := make([]chunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			chunks[w] = parseRange(f, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	n := int64(0)
	total := 0
	for w := range chunks {
		if chunks[w].err != nil {
			return nil, chunks[w].err
		}
		if chunks[w].maxID+1 > n {
			n = chunks[w].maxID + 1
		}
		total += len(chunks[w].edges)
	}
	b := NewBuilder(int(n))
	b.edges = make([]Edge, 0, total)
	for w := range chunks {
		for _, e := range chunks[w].edges {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		}
	}
	return b.Build()
}

// chunk is one worker's parsed share of the file.
type chunk struct {
	edges []Edge
	maxID int64
	err   error
}

// parseRange parses the byte range [lo, hi) of f as edge-list lines.
// io.SectionReader keeps the shared *os.File position-free (ReadAt), so
// parser goroutines never race on a seek offset.
func parseRange(f *os.File, lo, hi int64) (c chunk) {
	r := bufio.NewReaderSize(io.NewSectionReader(f, lo, hi-lo), 1<<16)
	line := 0
	for {
		raw, err := r.ReadBytes('\n')
		if len(raw) > 0 {
			line++
			text := bytes.TrimSpace(raw)
			if len(text) > 0 && text[0] != '#' {
				src, dst, w, perr := parseEdgeLine(text)
				if perr != nil {
					c.err = fmt.Errorf("graph load: offset %d line %d: %w", lo, line, perr)
					return
				}
				if src > c.maxID {
					c.maxID = src
				}
				if dst > c.maxID {
					c.maxID = dst
				}
				c.edges = append(c.edges, Edge{Src: ID(src), Dst: ID(dst), Weight: w})
			}
		}
		if err != nil {
			return
		}
	}
}

// parseEdgeLine parses "src dst [weight]" without allocating substrings.
func parseEdgeLine(text []byte) (src, dst int64, w float64, err error) {
	w = 1
	fields := bytes.Fields(text)
	if len(fields) < 2 || len(fields) > 3 {
		return 0, 0, 0, fmt.Errorf("want 2 or 3 fields, got %d", len(fields))
	}
	src, err = parseInt(fields[0])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad src: %w", err)
	}
	dst, err = parseInt(fields[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad dst: %w", err)
	}
	if len(fields) == 3 {
		w, err = parseFloat(fields[2])
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad weight: %w", err)
		}
	}
	return src, dst, w, nil
}

func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty field")
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit %q", c)
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, fmt.Errorf("overflow")
		}
	}
	return v, nil
}

func parseFloat(b []byte) (float64, error) {
	return strconv.ParseFloat(string(b), 64)
}
