package graph

import (
	"encoding/binary"
	"errors"
	"math"
)

// Codec is the hand-rolled binary wire codec that replaces gob on the hot
// path. A codec encodes one message into a caller-owned buffer (arena-style:
// the transport reuses one buffer per peer across supersteps, so Append must
// not retain dst) and decodes it back. Encoding is little-endian and
// self-delimiting: EncodedSize(m) is exactly the number of bytes Append
// writes, and Decode consumes exactly that many. That exactness is load
// bearing — the in-process transport charges wire bytes from EncodedSize
// without materializing frames, and those charges are exact-diffed by the
// flight-recorder gate, so any drift between Append and EncodedSize shows up
// as a wire-accounting regression.
type Codec[M any] interface {
	// EncodedSize returns the exact number of bytes Append writes for m.
	// It is always at least 1: every message costs wire bytes, and the
	// frame decoder leans on that floor to reject message counts larger
	// than the bytes that follow before sizing any allocation from them.
	EncodedSize(m M) int
	// Append encodes m onto dst and returns the extended slice. It must not
	// retain dst or any sub-slice of it.
	Append(dst []byte, m M) []byte
	// Decode reads one value from the front of src, returning the value and
	// the number of bytes consumed. A short or malformed src is an error
	// (a torn frame), never a partial value.
	Decode(src []byte) (M, int, error)
}

// ErrShortBuffer reports a truncated encoding: the frame's length prefix
// promised more bytes than the codec found. Built with errors.New, not
// fmt.Errorf: the message has no verbs, the identity must stay stable for
// errors.Is, and sentinel construction should owe nothing to fmt at init.
var ErrShortBuffer = errors.New("graph: codec: short buffer")

// AppendUint32 appends v little-endian.
//
//lint:hotpath
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendUint64 appends v little-endian.
//
//lint:hotpath
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint32At reads a little-endian uint32 from the front of src.
//
//lint:hotpath
func Uint32At(src []byte) (uint32, error) {
	if len(src) < 4 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint32(src), nil
}

// Uint64At reads a little-endian uint64 from the front of src.
//
//lint:hotpath
func Uint64At(src []byte) (uint64, error) {
	if len(src) < 8 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(src), nil
}

// Float64Codec encodes a float64 as its 8-byte IEEE 754 bit pattern.
type Float64Codec struct{}

//lint:hotpath
func (Float64Codec) EncodedSize(float64) int { return 8 }

//lint:hotpath
func (Float64Codec) Append(dst []byte, m float64) []byte {
	return AppendUint64(dst, math.Float64bits(m))
}

//lint:hotpath
func (Float64Codec) Decode(src []byte) (float64, int, error) {
	u, err := Uint64At(src)
	if err != nil {
		return 0, 0, err
	}
	return math.Float64frombits(u), 8, nil
}

// Int64Codec encodes an int64 as 8 fixed little-endian bytes.
type Int64Codec struct{}

//lint:hotpath
func (Int64Codec) EncodedSize(int64) int { return 8 }

//lint:hotpath
func (Int64Codec) Append(dst []byte, m int64) []byte {
	return AppendUint64(dst, uint64(m))
}

//lint:hotpath
func (Int64Codec) Decode(src []byte) (int64, int, error) {
	u, err := Uint64At(src)
	if err != nil {
		return 0, 0, err
	}
	return int64(u), 8, nil
}

// Float64SliceCodec encodes a []float64 as a 4-byte length prefix followed
// by the elements' bit patterns.
type Float64SliceCodec struct{}

//lint:hotpath
func (Float64SliceCodec) EncodedSize(m []float64) int { return 4 + 8*len(m) }

//lint:hotpath
func (Float64SliceCodec) Append(dst []byte, m []float64) []byte {
	dst = AppendUint32(dst, uint32(len(m)))
	for _, v := range m {
		dst = AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

//lint:hotpath
func (Float64SliceCodec) Decode(src []byte) ([]float64, int, error) {
	n, err := Uint32At(src)
	if err != nil {
		return nil, 0, err
	}
	need := 4 + 8*int(n)
	if len(src) < need {
		return nil, 0, ErrShortBuffer
	}
	var out []float64
	if n > 0 {
		out = make([]float64, n) //lint:allow allocfree the decoded vector escapes into the ALS message by design; only fixed-width codecs decode in place
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[4+8*i:]))
		}
	}
	return out, need, nil
}
