package graph

import (
	"math"
	"testing"
)

// roundTrip encodes then decodes via the codec and checks EncodedSize
// exactness — the property the in-process transport's wire accounting
// depends on.
func roundTrip[M any](t *testing.T, c Codec[M], m M, eq func(a, b M) bool) {
	t.Helper()
	buf := c.Append(nil, m)
	if len(buf) != c.EncodedSize(m) {
		t.Fatalf("Append wrote %d bytes, EncodedSize says %d", len(buf), c.EncodedSize(m))
	}
	got, n, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(buf))
	}
	if !eq(got, m) {
		t.Fatalf("round trip: got %v, want %v", got, m)
	}
	// A truncated buffer must error, never return a partial value.
	if len(buf) > 0 {
		if _, _, err := c.Decode(buf[:len(buf)-1]); err == nil {
			t.Fatal("Decode accepted a truncated buffer")
		}
	}
}

func TestFloat64Codec(t *testing.T) {
	eq := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for _, v := range []float64{0, 1, -1, 0.15, math.Inf(1), math.NaN(), math.MaxFloat64} {
		roundTrip[float64](t, Float64Codec{}, v, eq)
	}
}

func TestInt64Codec(t *testing.T) {
	eq := func(a, b int64) bool { return a == b }
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		roundTrip[int64](t, Int64Codec{}, v, eq)
	}
}

func TestFloat64SliceCodec(t *testing.T) {
	eq := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, v := range [][]float64{nil, {}, {1}, {0.25, -3, 1e300}} {
		if len(v) == 0 {
			// Truncation check in roundTrip needs non-empty buffers;
			// length-only encodings get checked directly.
			buf := Float64SliceCodec{}.Append(nil, v)
			got, n, err := Float64SliceCodec{}.Decode(buf)
			if err != nil || n != 4 || len(got) != 0 {
				t.Fatalf("empty slice: got %v n=%d err=%v", got, n, err)
			}
			continue
		}
		roundTrip[[]float64](t, Float64SliceCodec{}, v, eq)
	}
}

// TestCodecAppendReusesBuffer: Append into a buffer with spare capacity must
// not allocate — the arena property the per-peer frame buffers rely on.
func TestCodecAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 1024)
	c := Float64Codec{}
	allocs := testing.AllocsPerRun(100, func() {
		b := buf[:0]
		for i := 0; i < 64; i++ {
			b = c.Append(b, float64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("Append into preallocated buffer allocates %.1f per run, want 0", allocs)
	}
}
