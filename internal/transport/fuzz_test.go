package transport

// Fuzz coverage for the binary frame decoder. The decoder sits on the trust
// boundary — every byte it parses arrived from a socket — so beyond not
// panicking it must uphold two properties on arbitrary input:
//
//  1. Canonical round-trip: any body it accepts re-encodes (via appendFrame)
//     to exactly the bytes it decoded. There is one wire form per frame, the
//     invariant the exact-diffed wire accounting depends on.
//  2. Scratch agreement: decoding into a recycled scratch batch yields the
//     same messages as a fresh decode.
//
// Seed corpora live in testdata/fuzz/FuzzDecodeFrameBody: a tagged data
// frame, a round-end marker, a torn frame, an undefined-flag frame, and an
// outsized-count frame, so CI's short fuzz budget starts from the
// interesting corners instead of discovering them.

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"cyclops/internal/obs/span"
)

func FuzzDecodeFrameBody(f *testing.F) {
	codec := msgCodec{}
	for _, batch := range [][]msg{
		nil,
		{{1, 1.5}},
		{{1, 1}, {2, 2}, {4294967295, -0.5}},
	} {
		wire := appendFrame(nil, 3, false, span.Context{Run: 9, Step: 2, Worker: 3}, batch, codec)
		f.Add(wire[4:])
	}
	end := appendFrame(nil, 1, true, span.Context{Run: 1, Step: 4, Worker: 1}, nil, codec)
	f.Add(end[4:])
	torn := appendFrame(nil, 0, false, span.Context{}, []msg{{5, 5}}, codec)
	f.Add(torn[4 : len(torn)-3])

	f.Fuzz(func(t *testing.T, body []byte) {
		from, endFlag, tag, batch, err := decodeFrameBody(body, codec, nil)
		if err != nil {
			return // rejected: the only requirement on bad input is no panic
		}
		wire := appendFrame(nil, from, endFlag, tag, batch, codec)
		if got := binary.LittleEndian.Uint32(wire); int(got) != len(body) {
			t.Fatalf("re-encoded length prefix %d, decoded body was %d bytes", got, len(body))
		}
		if !bytes.Equal(wire[4:], body) {
			t.Fatalf("accepted body is not canonical:\ndecoded  %x\nreencoded %x", body, wire[4:])
		}
		scratch := make([]msg, 0, len(batch))
		_, _, _, again, err := decodeFrameBody(body, codec, scratch)
		if err != nil {
			t.Fatalf("scratch decode failed where fresh decode succeeded: %v", err)
		}
		if len(again) != len(batch) {
			t.Fatalf("scratch decode yielded %d messages, fresh decode %d", len(again), len(batch))
		}
		for i := range again {
			// Bitwise comparison: a NaN payload round-trips bit-exactly but
			// fails ==.
			if again[i].V != batch[i].V || math.Float64bits(again[i].X) != math.Float64bits(batch[i].X) {
				t.Fatalf("message %d: scratch decode %+v, fresh decode %+v", i, again[i], batch[i])
			}
		}
	})
}
