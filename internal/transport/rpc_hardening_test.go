package transport

// Hardening tests for the RPC transport: idempotent/concurrent Close, typed
// fail-fast errors after Close, the FinishRound once-per-round contract
// surfacing as ErrRoundViolation instead of a hang, and transparent reconnect
// with retry/reconnect accounting. These run in-package so the reconnect test
// can sever a live connection directly.

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// drainOrTimeout guards against the exact regression these tests exist for:
// a Drain that blocks forever. It fails the test instead of hanging the run.
func drainOrTimeout(t *testing.T, tr *RPC[int], to int) [][]int {
	t.Helper()
	done := make(chan [][]int, 1)
	go func() { done <- tr.Drain(to) }()
	select {
	case out := <-done:
		return out
	case <-time.After(10 * time.Second):
		t.Fatalf("Drain(%d) hung", to)
		return nil
	}
}

func TestRPCCloseIdempotentConcurrent(t *testing.T) {
	tr, err := NewRPC[int](3)
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	// Sends, round markers and several Closes all race: Close must win
	// exactly once, never panic, and the losers must fail fast.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := tr.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				tr.Send(i%3, (i+1)%3, []int{j})
			}
		}()
	}
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tr.FinishRound(i)
		}()
	}
	close(start)
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	// The closed transport must not block a late Drain.
	drainOrTimeout(t, tr, 0)
}

func TestRPCSendAfterCloseFailsFastTyped(t *testing.T) {
	tr, err := NewRPC[int](2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 1, []int{1})
	got := tr.Err()
	if got == nil {
		t.Fatal("Send after Close must record an error")
	}
	var te *Error
	if !errors.As(got, &te) {
		t.Fatalf("error is not a typed *transport.Error: %v", got)
	}
	if te.Op != "send" || !errors.Is(got, ErrClosed) {
		t.Fatalf("want send/ErrClosed, got op=%q err=%v", te.Op, got)
	}
	if IsTransient(got) {
		t.Fatal("ErrClosed must be fatal: recovery cannot revive a closed transport")
	}
	tr.FinishRound(0) // must also fail fast, not write to dead sockets
	if err := tr.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("FinishRound after Close: %v", err)
	}
	drainOrTimeout(t, tr, 1)
}

func TestRPCFinishRoundOveruseIsTypedViolation(t *testing.T) {
	tr, err := NewRPC[int](2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Violate the once-per-round contract far past the allowed pipeline lag.
	// The self-deposited marker trips the bound synchronously, so the error
	// is guaranteed visible once the loop exceeds maxRoundLag calls.
	for i := 0; i <= maxRoundLag; i++ {
		tr.FinishRound(0)
	}
	got := tr.Err()
	if got == nil || !errors.Is(got, ErrRoundViolation) {
		t.Fatalf("want ErrRoundViolation, got %v", got)
	}
	if IsTransient(got) {
		t.Fatal("a protocol violation must be fatal, not recoverable")
	}
	// The violation breaks the round protocol permanently; a Drain that
	// would otherwise wait for endpoint 1's marker must return, not hang.
	drainOrTimeout(t, tr, 0)
}

func TestRPCReconnectRedeliversAndCounts(t *testing.T) {
	tr, err := NewRPC[int](2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Round 1: healthy traffic over the initial connections.
	tr.Send(0, 1, []int{1, 2})
	tr.FinishRound(0)
	tr.FinishRound(1)
	if got := countMsgs(drainOrTimeout(t, tr, 1)); got != 2 {
		t.Fatalf("round 1 delivered %d msgs, want 2", got)
	}
	drainOrTimeout(t, tr, 0)

	// Sever 0→1 under the sender's lock, as a mid-run connection failure
	// would. The next Send's encode fails and must transparently re-dial.
	tr.encMu[0].Lock()
	tr.conns[0][1].Close()
	tr.encMu[0].Unlock()

	tr.Send(0, 1, []int{3, 4, 5})
	tr.FinishRound(0)
	tr.FinishRound(1)
	if got := countMsgs(drainOrTimeout(t, tr, 1)); got != 3 {
		t.Fatalf("post-reconnect round delivered %d msgs, want 3", got)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("a successfully retried send must not record an error: %v", err)
	}
	if tr.Stats().Retries() == 0 {
		t.Fatal("severed connection produced no retry count")
	}
	if tr.Stats().Reconnects() == 0 {
		t.Fatal("severed connection produced no reconnect count")
	}
}

func countMsgs(batches [][]int) int {
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	return n
}
