package transport

import (
	"cyclops/internal/graph"
	"cyclops/internal/obs/span"
)

// Network selects how a simulated cluster's workers exchange messages.
type Network int

const (
	// InProcess uses the Local transport: goroutine-to-goroutine queues
	// with exact byte/message accounting. The default, and the only mode
	// that supports checkpoint Restore (no in-flight socket state).
	InProcess Network = iota
	// TCPLoopback uses the RPC transport: real gob-encoded frames over
	// loopback TCP sockets, exercising serialisation and the round
	// protocol end to end.
	TCPLoopback
)

// String implements fmt.Stringer.
func (n Network) String() string {
	switch n {
	case InProcess:
		return "in-process"
	case TCPLoopback:
		return "tcp-loopback"
	default:
		return "Network(?)"
	}
}

// Interface is the transport contract the engines program against.
//
// The round protocol: a worker Sends any number of batches during a
// superstep phase and then calls FinishRound exactly once; Drain returns
// every batch addressed to a worker once all workers' round markers have
// arrived. For the in-process transport FinishRound is a no-op and Drain is
// immediate (the engines' phase barriers provide the ordering); for the TCP
// transport the markers are what makes Drain safe against in-flight frames.
type Interface[M any] interface {
	// NumEndpoints reports the number of connected workers.
	NumEndpoints() int
	// Send delivers a batch from one worker to another. The transport owns
	// the batch slice afterwards.
	Send(from, to int, batch []M)
	// FinishRound marks the end of `from`'s sends for the current round.
	FinishRound(from int)
	// Drain returns and clears all batches addressed to `to` for the
	// current round.
	Drain(to int) [][]M
	// Stats exposes the traffic counters.
	Stats() *Stats
	// Matrix exposes the per-peer traffic counters: messages and bytes per
	// (sender, receiver) pair. Its grand totals equal Stats exactly.
	Matrix() *Matrix
	// Err reports the first asynchronous transport failure, if any.
	Err() error
	// Close releases sockets and wakes blocked Drains.
	Close() error

	// Tag stamps the causal span context carried on batches `from` sends
	// from now on (until retagged). Like Drain, it must only be called when
	// no Send by `from` is in flight — the engines tag from the coordinator
	// between barriers. Engines that run without Hooks never tag, keeping
	// the untraced send path free of span bookkeeping.
	Tag(from int, sc span.Context)
	// LastDeliveries reports the provenance of the batches the most recent
	// Drain(to) returned, aggregated by (sender, span context) and sorted by
	// sender. Nil when the transport has never been tagged. The slice is
	// only valid until the next Drain(to).
	LastDeliveries(to int) []span.Delivery
	// SerializeNanos reports the cumulative wire-serialisation time charged
	// to sender `from`, in nanoseconds. Zero for transports that never
	// encode (Local); the RPC transport times its gob encoding. Differences
	// of this counter across a phase feed the Serialize span — measured
	// wall clock, quarantined like every span duration.
	SerializeNanos(from int) int64
}

// Local implements Interface (FinishRound and Close are no-ops, Err never
// fires — in-process delivery cannot fail).

// FinishRound implements Interface.
func (t *Local[M]) FinishRound(int) {}

// Err implements Interface.
func (t *Local[M]) Err() error { return nil }

// Close implements Interface.
func (t *Local[M]) Close() error { return nil }

var _ Interface[int] = (*Local[int])(nil)

// New constructs a transport for the requested network. mode selects the
// receive-queue discipline for InProcess (the TCP transport always uses a
// locked inbox; its contention is real, not simulated). codec, when
// non-nil, selects the hand-rolled binary frame format: the TCP transport
// frames with it instead of gob, and the in-process transport charges its
// exact encoded sizes to the wire books. Nil keeps the legacy behaviour
// (gob frames; wire == payload in-process).
func New[M any](network Network, n int, mode QueueMode, sizeOf func(M) int64, codec graph.Codec[M]) (Interface[M], error) {
	switch network {
	case InProcess:
		return NewLocalCodec[M](n, mode, sizeOf, codec), nil
	case TCPLoopback:
		if codec != nil {
			return NewRPCCodec[M](n, codec)
		}
		return NewRPC[M](n)
	default:
		return nil, errUnknownNetwork(int(network))
	}
}

type errUnknownNetwork int

func (e errUnknownNetwork) Error() string { return "transport: unknown network mode" }
