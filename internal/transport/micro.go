package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cyclops/internal/obs/span"
)

// This file implements the Table 3 message-passing microbenchmark (§6.11):
// several workers concurrently send (index, value) messages that update the
// elements of an array owned by a master worker. Three implementations are
// compared:
//
//   - Hama style: batches are gob-encoded (standing in for Hadoop RPC's
//     heavyweight Writable serialisation), buffered in a single locked
//     global queue, and applied in a separate parse phase.
//   - PowerGraph style: the same queue-and-parse structure, but with a
//     compact hand-rolled binary encoding (standing in for Boost
//     serialisation, roughly an order of magnitude cheaper than gob).
//   - Cyclops style: no serialisation at all — each sender updates its
//     disjoint range of the array directly and in parallel, which is legal
//     because in Cyclops a replica receives at most one message (§3.4).
//
// The paper's result this reproduces: Hama ≈ 10× slower than PowerGraph,
// and Cyclops slightly faster than PowerGraph despite Hama's "RPC library".

// IndexValue is the microbenchmark message: one array update.
type IndexValue struct {
	Idx uint32
	Val float64
}

// MicroResult reports the phase split of one microbenchmark run, mirroring
// Table 3's SND / PRS / TOT columns.
type MicroResult struct {
	Impl     string
	Messages int
	Send     time.Duration // producing, serialising and enqueueing
	Parse    time.Duration // dequeueing, decoding and applying
	Total    time.Duration
	// Checksum guards against dead-code elimination and wrong results: it is
	// the sum of the final array, identical across implementations.
	Checksum float64
	// PayloadBytes is the logical message volume at 12 bytes/message
	// (uint32 index + float64 value), identical across implementations.
	// WireBytes is what each implementation actually materialises to move
	// that payload: gob frames for hama, header+records for powergraph, zero
	// for cyclops (direct writes). WireBytes/PayloadBytes is Table 3's
	// serialisation-envelope factor.
	PayloadBytes int64
	WireBytes    int64
	// SenderMessages is the per-peer accounting for the microbenchmark: one
	// count per sender. All traffic targets the single master, so the full
	// worker×worker matrix collapses to this egress vector; its sum equals
	// Messages, mirroring the Matrix/Stats consistency of the engine
	// transports.
	SenderMessages []int64
	// LinkedBatches counts the batches whose span tag survived the wire and
	// resolved back to the sending worker in the parse phase — the
	// microbenchmark's version of the causal sender→receiver span link. For
	// the Cyclops implementation every sender's direct write is its own send
	// span, so the count equals the sender count by construction.
	LinkedBatches int64
	// EncodeOps and DecodeOps count per-message serialisation work, so the
	// gob leg and the binary leg report Table 3 like-for-like: hama counts
	// each gob-encoded (and -decoded) message, powergraph each binary record,
	// cyclops zero on both sides (direct writes serialise nothing). A
	// serialising implementation decodes exactly what it encodes, so the two
	// counters must match — the wire tests assert that symmetry.
	EncodeOps int64
	DecodeOps int64
}

// microCtx is the span tag a microbenchmark sender stamps on its frames.
func microCtx(sender int) span.Context {
	return span.Context{Run: 1, Step: 0, Worker: int32(sender)}
}

// microFrame is the Hama-style wire format: the gob envelope carries the
// sender's span context alongside the batch, as the RPC transport's frames
// do.
type microFrame struct {
	Tag   span.Context
	Batch []IndexValue
}

// microSenderCounts returns how many messages each of the disjoint sender
// ranges covers. The sum is total by construction.
func microSenderCounts(total, senders int) []int64 {
	out := make([]int64, senders)
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		out[s] = int64(hi - lo)
	}
	return out
}

const microBatch = 4096

// fill plans the updates: message i sets arr[i] = i+1. Senders own disjoint
// index ranges, as Cyclops' replica ownership guarantees.
func microRange(total, senders, s int) (lo, hi int) {
	lo = s * total / senders
	hi = (s + 1) * total / senders
	return
}

// microPayloadBytes is the logical volume of one run: 12 bytes per (index,
// value) message, independent of how an implementation encodes it.
func microPayloadBytes(total int) int64 { return int64(total) * 12 }

func microChecksum(arr []float64) float64 {
	var sum float64
	for _, v := range arr {
		sum += v
	}
	return sum
}

// wantChecksum is the expected array sum: Σ (i+1) for i in [0, n).
func wantChecksum(n int) float64 { return float64(n) * float64(n+1) / 2 }

// MicroHama runs the Hama-style implementation: gob encoding + one locked
// global queue + a separate parse phase.
func MicroHama(total, senders int) MicroResult {
	arr := make([]float64, total)
	var mu sync.Mutex
	var queue [][]byte
	var wire, encOps atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		ctx := microCtx(s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]IndexValue, 0, microBatch)
			flush := func() {
				if len(batch) == 0 {
					return
				}
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(microFrame{Tag: ctx, Batch: batch}); err != nil {
					panic(err) // cannot happen for a concrete struct type
				}
				wire.Add(int64(buf.Len()))
				encOps.Add(int64(len(batch)))
				mu.Lock()
				queue = append(queue, buf.Bytes())
				mu.Unlock()
				batch = batch[:0]
			}
			for i := lo; i < hi; i++ {
				batch = append(batch, IndexValue{Idx: uint32(i), Val: float64(i + 1)})
				if len(batch) == microBatch {
					flush()
				}
			}
			flush()
		}()
	}
	wg.Wait()
	send := time.Since(start) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	parseStart := time.Now()
	var linked, decOps int64
	for _, raw := range queue {
		var f microFrame
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&f); err != nil {
			panic(err)
		}
		if f.Tag.Tagged() {
			linked++
		}
		decOps += int64(len(f.Batch))
		for _, m := range f.Batch {
			arr[m.Idx] = m.Val
		}
	}
	parse := time.Since(parseStart) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	return MicroResult{
		Impl: "hama", Messages: total,
		Send: send, Parse: parse, Total: send + parse,
		Checksum:       microChecksum(arr),
		PayloadBytes:   microPayloadBytes(total),
		WireBytes:      wire.Load(),
		SenderMessages: microSenderCounts(total, senders),
		LinkedBatches:  linked,
		EncodeOps:      encOps.Load(),
		DecodeOps:      decOps,
	}
}

// MicroPowerGraph runs the PowerGraph-style implementation: compact manual
// binary encoding (12 bytes/message) + locked queue + parse phase.
func MicroPowerGraph(total, senders int) MicroResult {
	arr := make([]float64, total)
	var mu sync.Mutex
	var queue [][]byte
	var wire, encOps atomic.Int64

	// The span tag rides a fixed 16-byte binary header (run int64, step
	// int32, worker int32), matching the implementation's hand-rolled
	// encoding style.
	const microHeader = 16
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		ctx := microCtx(s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			header := func() []byte {
				buf := make([]byte, microHeader, microHeader+microBatch*12)
				binary.LittleEndian.PutUint64(buf[0:8], uint64(ctx.Run))
				binary.LittleEndian.PutUint32(buf[8:12], uint32(ctx.Step))
				binary.LittleEndian.PutUint32(buf[12:16], uint32(ctx.Worker))
				return buf
			}
			buf := header()
			flush := func() {
				if len(buf) == microHeader {
					return
				}
				wire.Add(int64(len(buf)))
				encOps.Add(int64((len(buf) - microHeader) / 12))
				mu.Lock()
				queue = append(queue, buf)
				mu.Unlock()
				buf = header()
			}
			for i := lo; i < hi; i++ {
				var rec [12]byte
				binary.LittleEndian.PutUint32(rec[0:4], uint32(i))
				binary.LittleEndian.PutUint64(rec[4:12], math.Float64bits(float64(i+1)))
				buf = append(buf, rec[:]...)
				if len(buf) == microHeader+microBatch*12 {
					flush()
				}
			}
			flush()
		}()
	}
	wg.Wait()
	send := time.Since(start) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	parseStart := time.Now()
	var linked, decOps int64
	for _, raw := range queue {
		if binary.LittleEndian.Uint64(raw[0:8]) != 0 {
			linked++
		}
		for off := microHeader; off+12 <= len(raw); off += 12 {
			idx := binary.LittleEndian.Uint32(raw[off : off+4])
			val := math.Float64frombits(binary.LittleEndian.Uint64(raw[off+4 : off+12]))
			arr[idx] = val
			decOps++
		}
	}
	parse := time.Since(parseStart) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	return MicroResult{
		Impl: "powergraph", Messages: total,
		Send: send, Parse: parse, Total: send + parse,
		Checksum:       microChecksum(arr),
		PayloadBytes:   microPayloadBytes(total),
		WireBytes:      wire.Load(),
		SenderMessages: microSenderCounts(total, senders),
		LinkedBatches:  linked,
		EncodeOps:      encOps.Load(),
		DecodeOps:      decOps,
	}
}

// MicroCyclops runs the Cyclops-style implementation: senders update their
// disjoint slices of the array directly and in parallel, with no
// serialisation, no queue and no parse phase.
func MicroCyclops(total, senders int) MicroResult {
	arr := make([]float64, total)

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				arr[i] = float64(i + 1)
			}
		}()
	}
	wg.Wait()
	send := time.Since(start) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	return MicroResult{
		Impl: "cyclops", Messages: total,
		Send: send, Parse: 0, Total: send,
		Checksum:     microChecksum(arr),
		PayloadBytes: microPayloadBytes(total),
		// WireBytes stays zero: direct writes materialise no frames at all,
		// which is precisely the paper's point about the §3.4 one-message
		// guarantee.
		SenderMessages: microSenderCounts(total, senders),
		// No frames to tag: each sender's direct write carries its span
		// context implicitly, so every sender is its own linked "batch".
		LinkedBatches: int64(senders),
	}
}

// VerifyMicro checks a result's checksum against the expected array sum.
func VerifyMicro(r MicroResult) error {
	want := wantChecksum(r.Messages)
	if math.Abs(r.Checksum-want) > 1e-6*want {
		return fmt.Errorf("transport: %s checksum %g, want %g", r.Impl, r.Checksum, want)
	}
	return nil
}
