package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"
	"time"
)

// This file implements the Table 3 message-passing microbenchmark (§6.11):
// several workers concurrently send (index, value) messages that update the
// elements of an array owned by a master worker. Three implementations are
// compared:
//
//   - Hama style: batches are gob-encoded (standing in for Hadoop RPC's
//     heavyweight Writable serialisation), buffered in a single locked
//     global queue, and applied in a separate parse phase.
//   - PowerGraph style: the same queue-and-parse structure, but with a
//     compact hand-rolled binary encoding (standing in for Boost
//     serialisation, roughly an order of magnitude cheaper than gob).
//   - Cyclops style: no serialisation at all — each sender updates its
//     disjoint range of the array directly and in parallel, which is legal
//     because in Cyclops a replica receives at most one message (§3.4).
//
// The paper's result this reproduces: Hama ≈ 10× slower than PowerGraph,
// and Cyclops slightly faster than PowerGraph despite Hama's "RPC library".

// IndexValue is the microbenchmark message: one array update.
type IndexValue struct {
	Idx uint32
	Val float64
}

// MicroResult reports the phase split of one microbenchmark run, mirroring
// Table 3's SND / PRS / TOT columns.
type MicroResult struct {
	Impl     string
	Messages int
	Send     time.Duration // producing, serialising and enqueueing
	Parse    time.Duration // dequeueing, decoding and applying
	Total    time.Duration
	// Checksum guards against dead-code elimination and wrong results: it is
	// the sum of the final array, identical across implementations.
	Checksum float64
	// SenderMessages is the per-peer accounting for the microbenchmark: one
	// count per sender. All traffic targets the single master, so the full
	// worker×worker matrix collapses to this egress vector; its sum equals
	// Messages, mirroring the Matrix/Stats consistency of the engine
	// transports.
	SenderMessages []int64
}

// microSenderCounts returns how many messages each of the disjoint sender
// ranges covers. The sum is total by construction.
func microSenderCounts(total, senders int) []int64 {
	out := make([]int64, senders)
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		out[s] = int64(hi - lo)
	}
	return out
}

const microBatch = 4096

// fill plans the updates: message i sets arr[i] = i+1. Senders own disjoint
// index ranges, as Cyclops' replica ownership guarantees.
func microRange(total, senders, s int) (lo, hi int) {
	lo = s * total / senders
	hi = (s + 1) * total / senders
	return
}

func microChecksum(arr []float64) float64 {
	var sum float64
	for _, v := range arr {
		sum += v
	}
	return sum
}

// wantChecksum is the expected array sum: Σ (i+1) for i in [0, n).
func wantChecksum(n int) float64 { return float64(n) * float64(n+1) / 2 }

// MicroHama runs the Hama-style implementation: gob encoding + one locked
// global queue + a separate parse phase.
func MicroHama(total, senders int) MicroResult {
	arr := make([]float64, total)
	var mu sync.Mutex
	var queue [][]byte

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]IndexValue, 0, microBatch)
			flush := func() {
				if len(batch) == 0 {
					return
				}
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
					panic(err) // cannot happen for a concrete slice type
				}
				mu.Lock()
				queue = append(queue, buf.Bytes())
				mu.Unlock()
				batch = batch[:0]
			}
			for i := lo; i < hi; i++ {
				batch = append(batch, IndexValue{Idx: uint32(i), Val: float64(i + 1)})
				if len(batch) == microBatch {
					flush()
				}
			}
			flush()
		}()
	}
	wg.Wait()
	send := time.Since(start) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	parseStart := time.Now()
	for _, raw := range queue {
		var batch []IndexValue
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&batch); err != nil {
			panic(err)
		}
		for _, m := range batch {
			arr[m.Idx] = m.Val
		}
	}
	parse := time.Since(parseStart) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	return MicroResult{
		Impl: "hama", Messages: total,
		Send: send, Parse: parse, Total: send + parse,
		Checksum:       microChecksum(arr),
		SenderMessages: microSenderCounts(total, senders),
	}
}

// MicroPowerGraph runs the PowerGraph-style implementation: compact manual
// binary encoding (12 bytes/message) + locked queue + parse phase.
func MicroPowerGraph(total, senders int) MicroResult {
	arr := make([]float64, total)
	var mu sync.Mutex
	var queue [][]byte

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, microBatch*12)
			flush := func() {
				if len(buf) == 0 {
					return
				}
				mu.Lock()
				queue = append(queue, buf)
				mu.Unlock()
				buf = make([]byte, 0, microBatch*12)
			}
			for i := lo; i < hi; i++ {
				var rec [12]byte
				binary.LittleEndian.PutUint32(rec[0:4], uint32(i))
				binary.LittleEndian.PutUint64(rec[4:12], math.Float64bits(float64(i+1)))
				buf = append(buf, rec[:]...)
				if len(buf) == microBatch*12 {
					flush()
				}
			}
			flush()
		}()
	}
	wg.Wait()
	send := time.Since(start) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	parseStart := time.Now()
	for _, raw := range queue {
		for off := 0; off+12 <= len(raw); off += 12 {
			idx := binary.LittleEndian.Uint32(raw[off : off+4])
			val := math.Float64frombits(binary.LittleEndian.Uint64(raw[off+4 : off+12]))
			arr[idx] = val
		}
	}
	parse := time.Since(parseStart) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	return MicroResult{
		Impl: "powergraph", Messages: total,
		Send: send, Parse: parse, Total: send + parse,
		Checksum:       microChecksum(arr),
		SenderMessages: microSenderCounts(total, senders),
	}
}

// MicroCyclops runs the Cyclops-style implementation: senders update their
// disjoint slices of the array directly and in parallel, with no
// serialisation, no queue and no parse phase.
func MicroCyclops(total, senders int) MicroResult {
	arr := make([]float64, total)

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				arr[i] = float64(i + 1)
			}
		}()
	}
	wg.Wait()
	send := time.Since(start) //lint:allow determinism wall-clock is the measurement in the Table 3 microbenchmark

	return MicroResult{
		Impl: "cyclops", Messages: total,
		Send: send, Parse: 0, Total: send,
		Checksum:       microChecksum(arr),
		SenderMessages: microSenderCounts(total, senders),
	}
}

// VerifyMicro checks a result's checksum against the expected array sum.
func VerifyMicro(r MicroResult) error {
	want := wantChecksum(r.Messages)
	if math.Abs(r.Checksum-want) > 1e-6*want {
		return fmt.Errorf("transport: %s checksum %g, want %g", r.Impl, r.Checksum, want)
	}
	return nil
}
