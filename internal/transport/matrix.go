package transport

import (
	"fmt"
	"sync/atomic"
)

// Matrix accumulates per-peer traffic: messages[from][to] and
// bytes[from][to], flattened row-major over n×n cells of atomics. It is the
// per-worker refinement of Stats — the row sums are a worker's egress, the
// column sums its ingress, and the grand total equals the Stats counters by
// construction (both are bumped on the same Send path). Cells are updated
// once per batch with two atomic adds, so the hot-path cost is fixed and
// contention-free (distinct sender/receiver pairs touch distinct cells).
type Matrix struct {
	n        int
	messages []atomic.Int64
	bytes    []atomic.Int64
	wire     []atomic.Int64 // encoded frame bytes per (from, to) pair
}

// NewMatrix creates an n×n traffic matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{
		n:        n,
		messages: make([]atomic.Int64, n*n),
		bytes:    make([]atomic.Int64, n*n),
		wire:     make([]atomic.Int64, n*n),
	}
}

// Workers reports the matrix dimension.
func (m *Matrix) Workers() int { return m.n }

// Add records msgs messages totalling b bytes sent from `from` to `to`.
func (m *Matrix) Add(from, to int, msgs, b int64) {
	i := from*m.n + to
	m.messages[i].Add(msgs)
	m.bytes[i].Add(b)
}

// AddWire records b encoded wire bytes sent from `from` to `to`. Transports
// that do not serialise call it with the payload estimate so wire == payload
// holds for them; the RPC transport calls it with the measured socket bytes
// of each gob frame (the envelope cost becomes WireBytes − Bytes).
func (m *Matrix) AddWire(from, to int, b int64) {
	m.wire[from*m.n+to].Add(b)
}

// Snapshot returns a plain-struct copy of the cumulative matrix, safe to
// read concurrently with traffic (per-cell atomicity; the matrix as a whole
// is a superstep-boundary artefact, which is when the engines snapshot it).
func (m *Matrix) Snapshot() MatrixSnapshot {
	s := newMatrixSnapshot(m.n)
	for f := 0; f < m.n; f++ {
		for t := 0; t < m.n; t++ {
			s.Messages[f][t] = m.messages[f*m.n+t].Load()
			s.Bytes[f][t] = m.bytes[f*m.n+t].Load()
			s.Wire[f][t] = m.wire[f*m.n+t].Load()
		}
	}
	return s
}

// MatrixSnapshot is a point-in-time copy of a Matrix: Messages[from][to],
// Bytes[from][to] (payload estimate) and Wire[from][to] (encoded frame
// bytes). The zero value acts as an all-zero matrix in Sub. Wire may be nil
// on snapshots built by hand (older tests, JSON without the field); all
// arithmetic treats a nil Wire as all-zero.
type MatrixSnapshot struct {
	Workers  int       `json:"workers"`
	Messages [][]int64 `json:"messages"`
	Bytes    [][]int64 `json:"bytes"`
	Wire     [][]int64 `json:"wire,omitempty"`
}

func newMatrixSnapshot(n int) MatrixSnapshot {
	s := MatrixSnapshot{
		Workers:  n,
		Messages: make([][]int64, n),
		Bytes:    make([][]int64, n),
		Wire:     make([][]int64, n),
	}
	for i := 0; i < n; i++ {
		s.Messages[i] = make([]int64, n)
		s.Bytes[i] = make([]int64, n)
		s.Wire[i] = make([]int64, n)
	}
	return s
}

// WireAt reads a wire cell, treating a nil Wire matrix as all-zero (hand-built
// snapshots and pre-wire JSON have no Wire field).
func (s MatrixSnapshot) WireAt(f, t int) int64 {
	if s.Wire == nil {
		return 0
	}
	return s.Wire[f][t]
}

// Sub returns s - prev cell-wise: the traffic of the interval between the
// two snapshots. A zero-value prev (Workers == 0) subtracts nothing.
func (s MatrixSnapshot) Sub(prev MatrixSnapshot) MatrixSnapshot {
	if prev.Workers == 0 {
		return s.Clone()
	}
	if prev.Workers != s.Workers {
		panic(fmt.Sprintf("transport: MatrixSnapshot.Sub dimension mismatch %d vs %d",
			s.Workers, prev.Workers))
	}
	d := newMatrixSnapshot(s.Workers)
	for f := range s.Messages {
		for t := range s.Messages[f] {
			d.Messages[f][t] = s.Messages[f][t] - prev.Messages[f][t]
			d.Bytes[f][t] = s.Bytes[f][t] - prev.Bytes[f][t]
			d.Wire[f][t] = s.WireAt(f, t) - prev.WireAt(f, t)
		}
	}
	return d
}

// AddInto accumulates other into s cell-wise. A zero-value s grows to
// other's dimension. It returns the sum (which aliases s's storage when s is
// non-zero).
func (s MatrixSnapshot) AddInto(other MatrixSnapshot) MatrixSnapshot {
	if s.Workers == 0 {
		return other.Clone()
	}
	if other.Workers == 0 {
		return s
	}
	if other.Workers != s.Workers {
		panic(fmt.Sprintf("transport: MatrixSnapshot.AddInto dimension mismatch %d vs %d",
			s.Workers, other.Workers))
	}
	if s.Wire == nil && other.Wire != nil {
		s.Wire = make([][]int64, s.Workers)
		for i := range s.Wire {
			s.Wire[i] = make([]int64, s.Workers)
		}
	}
	for f := range s.Messages {
		for t := range s.Messages[f] {
			s.Messages[f][t] += other.Messages[f][t]
			s.Bytes[f][t] += other.Bytes[f][t]
			if s.Wire != nil {
				s.Wire[f][t] += other.WireAt(f, t)
			}
		}
	}
	return s
}

// Clone returns a deep copy.
func (s MatrixSnapshot) Clone() MatrixSnapshot {
	c := newMatrixSnapshot(s.Workers)
	for i := range s.Messages {
		copy(c.Messages[i], s.Messages[i])
		copy(c.Bytes[i], s.Bytes[i])
		if s.Wire != nil {
			copy(c.Wire[i], s.Wire[i])
		}
	}
	return c
}

func rowSums(m [][]int64) []int64 {
	out := make([]int64, len(m))
	for i, row := range m {
		for _, v := range row {
			out[i] += v
		}
	}
	return out
}

func colSums(m [][]int64) []int64 {
	out := make([]int64, len(m))
	for _, row := range m {
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Egress returns per-worker sent messages (row sums).
func (s MatrixSnapshot) Egress() []int64 { return rowSums(s.Messages) }

// Ingress returns per-worker received messages (column sums).
func (s MatrixSnapshot) Ingress() []int64 { return colSums(s.Messages) }

// EgressBytes returns per-worker sent bytes (row sums).
func (s MatrixSnapshot) EgressBytes() []int64 { return rowSums(s.Bytes) }

// IngressBytes returns per-worker received bytes (column sums).
func (s MatrixSnapshot) IngressBytes() []int64 { return colSums(s.Bytes) }

// TotalMessages returns the grand total of the message matrix. On a
// cumulative snapshot this equals Stats.Messages exactly.
func (s MatrixSnapshot) TotalMessages() int64 {
	var n int64
	for _, row := range s.Messages {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// TotalBytes returns the grand total of the byte matrix. On a cumulative
// snapshot this equals Stats.Bytes exactly.
func (s MatrixSnapshot) TotalBytes() int64 {
	var n int64
	for _, row := range s.Bytes {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// TotalWireBytes returns the grand total of the wire-byte matrix. On a
// cumulative snapshot this equals Stats.WireBytes exactly.
func (s MatrixSnapshot) TotalWireBytes() int64 {
	var n int64
	for _, row := range s.Wire {
		for _, v := range row {
			n += v
		}
	}
	return n
}
