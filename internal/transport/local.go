package transport

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cyclops/internal/graph"
	"cyclops/internal/obs/span"
)

// QueueMode selects the receive-side queue discipline.
type QueueMode int

const (
	// GlobalQueue appends every incoming batch to one locked queue per
	// receiver, as Hama does (§4.1): senders from different workers contend
	// on the receiver's mutex.
	GlobalQueue QueueMode = iota
	// PerSenderQueue gives each (sender, receiver) pair its own slot, as
	// Cyclops does: a slot has exactly one writer, so enqueueing never
	// contends.
	PerSenderQueue
)

// String implements fmt.Stringer for reports.
func (m QueueMode) String() string {
	switch m {
	case GlobalQueue:
		return "global-queue"
	case PerSenderQueue:
		return "per-sender"
	default:
		return fmt.Sprintf("QueueMode(%d)", int(m))
	}
}

// Local is an in-process transport between n workers. Send is synchronous:
// when it returns, the batch is visible to the receiver's next Drain. The
// caller transfers ownership of the batch slice.
type Local[M any] struct {
	n      int
	mode   QueueMode
	sizeOf func(M) int64
	// codec, when non-nil, switches wire accounting from "wire == payload"
	// to the exact byte count the binary frame format would put on a
	// socket (frame header + per-message encoded sizes). No frame is
	// materialized — EncodedSize is a pure function of the message, so the
	// charge is deterministic and exact-diffable by the perf gate, and the
	// in-process and TCP transports agree on what a batch costs.
	codec  graph.Codec[M]
	stats  Stats
	matrix *Matrix

	// GlobalQueue state: one locked queue per receiver.
	global []lockedQueue[M]
	// PerSenderQueue state: slot [to][from], single writer each.
	slots [][]slot[M]

	// Span tagging. tagged flips once on the first Tag call; until then the
	// send path skips all span bookkeeping (the nil-Hooks fast path). tags
	// and lastDeliv rely on the Tag/Drain contract for ordering: tags[from]
	// is written by the coordinator between barriers, lastDeliv[to] only by
	// Drain(to)'s caller.
	tagged    atomic.Bool
	tags      []span.Context
	lastDeliv [][]span.Delivery
}

type lockedQueue[M any] struct {
	mu      sync.Mutex
	batches []taggedBatch[M]
	seq     []int64 // per-sender send counter, indexed by from
}

// taggedBatch remembers who enqueued a batch and in what per-sender order, so
// Drain can return a canonical ordering instead of goroutine arrival order.
// Arrival order depends on scheduling; sorting by (from, seq) makes the fold
// order of non-commutative-in-floating-point reductions reproducible, which
// the flight recorder's byte-identical series guarantee relies on.
type taggedBatch[M any] struct {
	from  int
	seq   int64
	ctx   span.Context
	batch []M
}

type slot[M any] struct {
	mu      sync.Mutex // uncontended: single writer; keeps the race detector honest
	batches [][]M
	ctxs    []span.Context // span tag per batch, parallel to batches
}

// NewLocal creates a transport between n workers with the given queue mode.
// sizeOf estimates a message's wire size for byte accounting; nil means a
// flat 16 bytes per message (two words: vertex id + value).
func NewLocal[M any](n int, mode QueueMode, sizeOf func(M) int64) *Local[M] {
	t := &Local[M]{n: n, mode: mode, sizeOf: sizeOf, matrix: NewMatrix(n),
		tags: make([]span.Context, n), lastDeliv: make([][]span.Delivery, n)}
	switch mode {
	case GlobalQueue:
		t.global = make([]lockedQueue[M], n)
		for i := range t.global {
			t.global[i].seq = make([]int64, n)
		}
	case PerSenderQueue:
		t.slots = make([][]slot[M], n)
		for i := range t.slots {
			t.slots[i] = make([]slot[M], n)
		}
	default:
		panic(fmt.Sprintf("transport: unknown queue mode %d", mode))
	}
	return t
}

// NewLocalCodec is NewLocal with a message codec: payload accounting is
// unchanged (sizeOf, or 16 bytes/message), but wire accounting charges the
// binary frame format's exact encoded bytes instead of the payload
// estimate, so the in-process gate sees the same wire/payload ratio a
// socket run would.
func NewLocalCodec[M any](n int, mode QueueMode, sizeOf func(M) int64, codec graph.Codec[M]) *Local[M] {
	t := NewLocal[M](n, mode, sizeOf)
	t.codec = codec
	return t
}

// NumEndpoints reports the number of workers the transport connects.
func (t *Local[M]) NumEndpoints() int { return t.n }

// Mode reports the queue discipline.
func (t *Local[M]) Mode() QueueMode { return t.mode }

// Stats exposes the traffic counters.
func (t *Local[M]) Stats() *Stats { return &t.stats }

// Matrix exposes the per-peer traffic counters.
func (t *Local[M]) Matrix() *Matrix { return t.matrix }

func (t *Local[M]) batchBytes(batch []M) int64 {
	if t.sizeOf == nil {
		return int64(len(batch)) * 16
	}
	var b int64
	for i := range batch {
		b += t.sizeOf(batch[i])
	}
	return b
}

// Send delivers a batch from worker `from` to worker `to`. Empty batches are
// dropped. The batch slice is owned by the transport afterwards.
func (t *Local[M]) Send(from, to int, batch []M) {
	if len(batch) == 0 {
		return
	}
	if to < 0 || to >= t.n || from < 0 || from >= t.n {
		panic(fmt.Sprintf("transport: send %d→%d outside [0,%d)", from, to, t.n))
	}
	bytes := t.batchBytes(batch)
	t.matrix.Add(from, to, int64(len(batch)), bytes)
	// Without a codec there is no serialisation in-process: the wire cost of
	// a memory hand-off is the payload itself, so the wire/payload ratio is
	// identically 1 and the RPC transport's ratio isolates the gob envelope.
	// With a codec, the wire charge is the exact binary-frame byte count —
	// still computed, never measured, so it stays exact-diffable.
	wire := bytes
	if t.codec != nil {
		wire = frameWireBytes(batch, t.codec)
	}
	t.matrix.AddWire(from, to, wire)
	t.stats.countWire(wire)
	var ctx span.Context
	if t.tagged.Load() {
		ctx = t.tags[from]
	}
	switch t.mode {
	case GlobalQueue:
		q := &t.global[to]
		q.mu.Lock()
		q.seq[from]++
		q.batches = append(q.batches, taggedBatch[M]{from: from, seq: q.seq[from], ctx: ctx, batch: batch})
		q.mu.Unlock()
		t.stats.count(int64(len(batch)), bytes, true)
	case PerSenderQueue:
		s := &t.slots[to][from]
		s.mu.Lock()
		s.batches = append(s.batches, batch)
		s.ctxs = append(s.ctxs, ctx)
		s.mu.Unlock()
		t.stats.count(int64(len(batch)), bytes, false)
	}
}

// Drain returns and clears all batches queued for worker `to`. It must only
// be called when no Send to `to` is in flight (i.e. after a barrier), which
// is how the BSP superstep structure uses it. Batches come back in canonical
// (sender, send-order) order regardless of goroutine scheduling, so engines
// that fold message values in drain order produce bit-identical results on
// every same-seed run.
//
//lint:hotpath
func (t *Local[M]) Drain(to int) [][]M {
	record := t.tagged.Load()
	if record {
		t.lastDeliv[to] = t.lastDeliv[to][:0]
	}
	switch t.mode {
	case GlobalQueue:
		q := &t.global[to]
		q.mu.Lock()
		tagged := q.batches
		// Truncate, don't nil: `tagged` aliases the backing array but is dead
		// before the next round's Sends reuse it (the Drain contract — no Send
		// is in flight — makes this the per-sender slot reuse's twin).
		q.batches = q.batches[:0]
		q.mu.Unlock()
		//lint:allow allocfree once-per-round canonical ordering: sort.Slice boxes the slice and its comparator, not per-message work
		sort.Slice(tagged, func(i, j int) bool {
			if tagged[i].from != tagged[j].from {
				return tagged[i].from < tagged[j].from
			}
			return tagged[i].seq < tagged[j].seq
		})
		out := make([][]M, len(tagged)) //lint:allow allocfree the batch-header slice is handed to the engine each round; reusing it would alias consecutive rounds
		for i := range tagged {
			out[i] = tagged[i].batch
			if record {
				t.lastDeliv[to] = span.AddDelivery(t.lastDeliv[to],
					span.Delivery{From: tagged[i].from, Ctx: tagged[i].ctx, Msgs: int64(len(tagged[i].batch))})
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	default:
		var out [][]M
		for from := range t.slots[to] {
			s := &t.slots[to][from]
			s.mu.Lock()
			if len(s.batches) > 0 {
				out = append(out, s.batches...)
				if record {
					for i, b := range s.batches {
						t.lastDeliv[to] = span.AddDelivery(t.lastDeliv[to],
							span.Delivery{From: from, Ctx: s.ctxs[i], Msgs: int64(len(b))})
					}
				}
				// Truncate, don't nil: out copied the batch headers, so the
				// containers' backing arrays are free to take next superstep's
				// sends — the slot reaches steady state with zero allocations
				// per Send, like the engines' arena buffers it carries.
				s.batches = s.batches[:0]
				s.ctxs = s.ctxs[:0]
			}
			s.mu.Unlock()
		}
		return out
	}
}

// Tag implements Interface: stamps the span context carried on `from`'s
// subsequent sends. See the Interface contract for the concurrency rules.
func (t *Local[M]) Tag(from int, sc span.Context) {
	t.tags[from] = sc
	t.tagged.Store(true)
}

// LastDeliveries implements Interface.
func (t *Local[M]) LastDeliveries(to int) []span.Delivery {
	if !t.tagged.Load() {
		return nil
	}
	return t.lastDeliv[to]
}

// SerializeNanos implements Interface: the in-process transport never
// encodes, so serialisation time is identically zero.
func (t *Local[M]) SerializeNanos(int) int64 { return 0 }

// Pending reports whether worker `to` has undrained batches (test helper).
func (t *Local[M]) Pending(to int) bool {
	switch t.mode {
	case GlobalQueue:
		q := &t.global[to]
		q.mu.Lock()
		defer q.mu.Unlock()
		return len(q.batches) > 0
	default:
		for from := range t.slots[to] {
			s := &t.slots[to][from]
			s.mu.Lock()
			n := len(s.batches)
			s.mu.Unlock()
			if n > 0 {
				return true
			}
		}
		return false
	}
}
