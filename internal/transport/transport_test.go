package transport

import (
	"sync"
	"testing"
	"testing/quick"
)

type msg struct {
	V uint32
	X float64
}

func TestLocalDeliversBothModes(t *testing.T) {
	for _, mode := range []QueueMode{GlobalQueue, PerSenderQueue} {
		tr := NewLocal[msg](3, mode, nil)
		tr.Send(0, 2, []msg{{1, 1.5}, {2, 2.5}})
		tr.Send(1, 2, []msg{{3, 3.5}})
		tr.Send(0, 1, []msg{{9, 9}})
		got := map[uint32]float64{}
		for _, b := range tr.Drain(2) {
			for _, m := range b {
				got[m.V] = m.X
			}
		}
		if len(got) != 3 || got[1] != 1.5 || got[3] != 3.5 {
			t.Fatalf("%v: drained %v", mode, got)
		}
		if len(tr.Drain(2)) != 0 {
			t.Fatalf("%v: drain must clear", mode)
		}
		if !tr.Pending(1) {
			t.Fatalf("%v: worker 1 should have pending", mode)
		}
	}
}

func TestLocalEmptyBatchDropped(t *testing.T) {
	tr := NewLocal[msg](2, GlobalQueue, nil)
	tr.Send(0, 1, nil)
	if tr.Stats().Batches() != 0 || tr.Pending(1) {
		t.Fatal("empty batch must be dropped entirely")
	}
}

func TestLocalStatsAndLockAccounting(t *testing.T) {
	g := NewLocal[msg](2, GlobalQueue, nil)
	g.Send(0, 1, []msg{{1, 1}, {2, 2}})
	if s := g.Stats().Snapshot(); s.Messages != 2 || s.Batches != 1 || s.Bytes != 32 || s.LockedEnqueues != 1 {
		t.Fatalf("global stats = %+v", s)
	}
	p := NewLocal[msg](2, PerSenderQueue, func(m msg) int64 { return 12 })
	p.Send(0, 1, []msg{{1, 1}, {2, 2}, {3, 3}})
	if s := p.Stats().Snapshot(); s.Messages != 3 || s.Bytes != 36 || s.LockedEnqueues != 0 {
		t.Fatalf("per-sender stats = %+v", s)
	}
	p.Stats().Reset()
	if p.Stats().Messages() != 0 {
		t.Fatal("reset must zero counters")
	}
}

func TestLocalConcurrentSenders(t *testing.T) {
	for _, mode := range []QueueMode{GlobalQueue, PerSenderQueue} {
		tr := NewLocal[msg](8, mode, nil)
		const per = 500
		var wg sync.WaitGroup
		for from := 0; from < 8; from++ {
			wg.Add(1)
			go func(from int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					tr.Send(from, 3, []msg{{uint32(from), float64(i)}})
				}
			}(from)
		}
		wg.Wait()
		total := 0
		for _, b := range tr.Drain(3) {
			total += len(b)
		}
		if total != 8*per {
			t.Fatalf("%v: delivered %d, want %d", mode, total, 8*per)
		}
	}
}

// Property: message conservation — everything sent is drained exactly once,
// regardless of interleaving and mode.
func TestLocalConservationProperty(t *testing.T) {
	f := func(seed int64, modeRaw bool, plan []uint8) bool {
		mode := GlobalQueue
		if modeRaw {
			mode = PerSenderQueue
		}
		const n = 4
		tr := NewLocal[msg](n, mode, nil)
		sent := 0
		for i, p := range plan {
			from, to := int(p)%n, int(p/4)%n
			batch := []msg{{uint32(i), float64(i)}}
			tr.Send(from, to, batch)
			sent++
		}
		got := 0
		for to := 0; to < n; to++ {
			for _, b := range tr.Drain(to) {
				got += len(b)
			}
		}
		return got == sent && tr.Stats().Messages() == int64(sent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	tr, err := NewRPC[msg](3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var wg sync.WaitGroup
	for from := 0; from < 3; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for to := 0; to < 3; to++ {
				tr.Send(from, to, []msg{{uint32(from*10 + to), 1}})
			}
			tr.FinishRound(from)
		}(from)
	}
	wg.Wait()

	for to := 0; to < 3; to++ {
		batches := tr.Drain(to)
		got := map[uint32]bool{}
		for _, b := range batches {
			for _, m := range b {
				got[m.V] = true
			}
		}
		for from := 0; from < 3; from++ {
			if !got[uint32(from*10+to)] {
				t.Fatalf("endpoint %d missing message from %d (got %v)", to, from, got)
			}
		}
	}
}

func TestRPCMultipleRounds(t *testing.T) {
	tr, err := NewRPC[msg](2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for from := 0; from < 2; from++ {
			wg.Add(1)
			go func(from int) {
				defer wg.Done()
				tr.Send(from, 1-from, []msg{{uint32(round), float64(from)}})
				tr.FinishRound(from)
			}(from)
		}
		wg.Wait()
		for to := 0; to < 2; to++ {
			bs := tr.Drain(to)
			if len(bs) != 1 || bs[0][0].V != uint32(round) {
				t.Fatalf("round %d endpoint %d: %v", round, to, bs)
			}
		}
	}
}

func TestMicroAllImplementationsCorrect(t *testing.T) {
	const total, senders = 20000, 5
	results := []MicroResult{
		MicroHama(total, senders),
		MicroPowerGraph(total, senders),
		MicroCyclops(total, senders),
	}
	for _, r := range results {
		if err := VerifyMicro(r); err != nil {
			t.Error(err)
		}
		if r.Total <= 0 {
			t.Errorf("%s: non-positive total", r.Impl)
		}
	}
	if results[2].Parse != 0 {
		t.Error("cyclops path must have no parse phase")
	}
}

func TestMicroOrdering(t *testing.T) {
	// The paper's Table 3 shape: Hama ≫ PowerGraph ≥ Cyclops. Use a large
	// enough run for the gob overhead to dominate noise.
	const total, senders = 200000, 5
	h := MicroHama(total, senders)
	p := MicroPowerGraph(total, senders)
	c := MicroCyclops(total, senders)
	if h.Total < p.Total*2 {
		t.Errorf("hama (%v) should be ≫ powergraph (%v)", h.Total, p.Total)
	}
	if c.Total > p.Total {
		t.Errorf("cyclops (%v) should not exceed powergraph (%v)", c.Total, p.Total)
	}
}

func TestMicroLinkedBatches(t *testing.T) {
	// Every wire batch carries its sender's span tag, so the tag-survival
	// count must equal the batch count exactly: per-sender ceil(range/batch)
	// for the message-passing implementations, one virtual batch per sender
	// for cyclops (replica flushes carry no frames to tag).
	for _, tc := range []struct{ total, senders int }{{20000, 5}, {20000, 2}, {100, 3}} {
		var wantBatches int64
		for s := 0; s < tc.senders; s++ {
			lo, hi := microRange(tc.total, tc.senders, s)
			wantBatches += int64((hi - lo + microBatch - 1) / microBatch)
		}
		if got := MicroHama(tc.total, tc.senders).LinkedBatches; got != wantBatches {
			t.Errorf("hama %d/%d: %d linked batches, want %d", tc.total, tc.senders, got, wantBatches)
		}
		if got := MicroPowerGraph(tc.total, tc.senders).LinkedBatches; got != wantBatches {
			t.Errorf("powergraph %d/%d: %d linked batches, want %d", tc.total, tc.senders, got, wantBatches)
		}
		if got := MicroCyclops(tc.total, tc.senders).LinkedBatches; got != int64(tc.senders) {
			t.Errorf("cyclops %d/%d: %d linked batches, want %d", tc.total, tc.senders, got, tc.senders)
		}
	}
}

func TestRPCErrNilOnHealthyRun(t *testing.T) {
	tr, err := NewRPC[msg](2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Send(0, 1, []msg{{1, 1}})
	tr.FinishRound(0)
	tr.FinishRound(1)
	tr.Drain(0)
	tr.Drain(1)
	if tr.Err() != nil {
		t.Fatalf("unexpected transport error: %v", tr.Err())
	}
}

func TestNewFactory(t *testing.T) {
	l, err := New[msg](InProcess, 2, GlobalQueue, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(*Local[msg]); !ok {
		t.Fatal("InProcess must build a Local transport")
	}
	r, err := New[msg](TCPLoopback, 2, GlobalQueue, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.(*RPC[msg]); !ok {
		t.Fatal("TCPLoopback must build an RPC transport")
	}
	if _, err := New[msg](Network(99), 2, GlobalQueue, nil, nil); err == nil {
		t.Fatal("unknown network must error")
	}
	if InProcess.String() == "" || TCPLoopback.String() == "" || Network(99).String() == "" {
		t.Fatal("Network.String must render")
	}
}
