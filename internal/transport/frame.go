package transport

import (
	"encoding/binary"

	"cyclops/internal/graph"
	"cyclops/internal/obs/span"
)

// Binary frame format — the hand-rolled replacement for gob on the RPC hot
// path. A frame is one Send batch (or a round-end marker) with a fixed
// header, little-endian throughout:
//
//	[4B length]  bytes that follow the prefix (flags..messages)
//	[1B flags]   bit 0 = round-end marker
//	[4B from]    sender worker id
//	[16B tag]    span context: run int64, step int32, worker int32
//	[4B count]   number of messages
//	[count × M]  messages, each encoded by the graph.Codec
//
// The header is fixed-size even when untagged (a zero context) so a frame's
// wire size is a pure function of its batch — that is what lets the
// in-process transport charge identical byte counts without materializing
// frames, keeping PR 7's exact-diffed wire accounting deterministic across
// transports.
const (
	frameFlagEnd byte = 1 << 0
	// FrameHeaderBytes is the fixed per-frame overhead: length prefix,
	// flags, sender, span tag, and message count.
	FrameHeaderBytes = 4 + 1 + 4 + 16 + 4
)

// frameWireBytes is the exact number of bytes appendFrame puts on the wire
// for this batch.
//
//lint:hotpath
func frameWireBytes[M any](batch []M, codec graph.Codec[M]) int64 {
	n := int64(FrameHeaderBytes)
	for i := range batch {
		n += int64(codec.EncodedSize(batch[i]))
	}
	return n
}

// appendFrame encodes one frame onto dst and returns the extended slice.
// dst is an arena-style per-peer buffer: steady-state calls reuse its
// capacity and allocate nothing.
//
//lint:hotpath
func appendFrame[M any](dst []byte, from int, end bool, tag span.Context, batch []M, codec graph.Codec[M]) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, backpatched below
	var flags byte
	if end {
		flags |= frameFlagEnd
	}
	dst = append(dst, flags)
	dst = graph.AppendUint32(dst, uint32(from))
	dst = graph.AppendUint64(dst, uint64(tag.Run))
	dst = graph.AppendUint32(dst, uint32(tag.Step))
	dst = graph.AppendUint32(dst, uint32(tag.Worker))
	dst = graph.AppendUint32(dst, uint32(len(batch)))
	for i := range batch {
		dst = codec.Append(dst, batch[i])
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// decodeFrameBody parses a frame body (everything after the length prefix).
// The batch is decoded into scratch when its capacity suffices, else into a
// fresh slice; either way decoding is allocation-free per message. Callers
// that hand the batch off (the receive loop transfers ownership to the inbox)
// pass nil scratch; callers that recycle batches get true zero-alloc
// steady-state decoding.
//
//lint:hotpath
func decodeFrameBody[M any](body []byte, codec graph.Codec[M], scratch []M) (from int, end bool, tag span.Context, batch []M, err error) {
	if len(body) < FrameHeaderBytes-4 {
		return 0, false, tag, nil, graph.ErrShortBuffer
	}
	flags := body[0]
	if flags&^frameFlagEnd != 0 {
		// Undefined flag bits: a peer speaking a newer (or corrupted) frame
		// dialect. Reject before trusting the rest of the header.
		return 0, false, tag, nil, ErrFrameCorrupt
	}
	end = flags&frameFlagEnd != 0
	from = int(binary.LittleEndian.Uint32(body[1:]))
	tag.Run = int64(binary.LittleEndian.Uint64(body[5:]))
	tag.Step = int32(binary.LittleEndian.Uint32(body[13:]))
	tag.Worker = int32(binary.LittleEndian.Uint32(body[17:]))
	count := int(binary.LittleEndian.Uint32(body[21:]))
	rest := body[25:]
	if count > len(rest) {
		// Every codec encodes a message into at least one byte (the
		// graph.Codec contract), so a count exceeding the remaining bytes is
		// provably a lie — reject it before sizing the batch allocation to
		// an attacker-controlled header field.
		return 0, false, tag, nil, graph.ErrShortBuffer
	}
	if count > 0 {
		if cap(scratch) >= count {
			batch = scratch[:count]
		} else {
			batch = make([]M, count) //lint:allow allocfree cold path: grows only until scratch capacity catches up, and nil-scratch callers transfer ownership
		}
		for i := 0; i < count; i++ {
			var n int
			batch[i], n, err = codec.Decode(rest)
			if err != nil {
				return 0, false, tag, nil, err
			}
			rest = rest[n:]
		}
	}
	if len(rest) != 0 {
		return 0, false, tag, nil, graph.ErrShortBuffer
	}
	return from, end, tag, batch, nil
}
