package transport

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cyclops/internal/graph"
	"cyclops/internal/obs/span"
)

// RPCOptions tunes the failure handling of the RPC transport. The zero value
// selects conservative defaults suitable for loopback tests; a field left
// zero gets its default.
type RPCOptions struct {
	// WriteTimeout bounds each frame write. Default 10s.
	WriteTimeout time.Duration
	// ReadTimeout bounds the idle time between received frames. Zero (the
	// default) disables it: a long compute phase between supersteps is
	// indistinguishable from a stalled peer at the socket level, so read
	// deadlines are opt-in for deployments that know their step budget.
	ReadTimeout time.Duration
	// DialTimeout bounds the initial and reconnect dials. Default 5s.
	DialTimeout time.Duration
	// MaxRetries bounds how many times a failed send is retried over a fresh
	// connection before the error is surfaced through Err. Default 3.
	MaxRetries int
	// BackoffBase is the first reconnect backoff; it doubles per attempt up
	// to BackoffMax, with jitter. Defaults 10ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter, keeping retry schedules reproducible
	// under the fault-injection harness.
	Seed int64
}

func (o RPCOptions) withDefaults() RPCOptions {
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
	return o
}

// maxRoundLag bounds how many unconsumed round markers one sender may have
// pending at one receiver. Senders legitimately run ahead of receivers
// (nothing in the round protocol forces lockstep), but every engine drains
// its own inbox each superstep, so real lag stays tiny; a sender whose
// markers pile up past this bound has necessarily finished a round more than
// once. Crossing it records a fatal ErrRoundViolation — the typed-error
// replacement for the barrier skew and eventual hang a duplicate marker used
// to cause.
const maxRoundLag = 64

// RPC is a real networked transport: n endpoints fully connected by TCP
// loopback sockets carrying gob-encoded frames, mirroring Hama's use of
// Hadoop RPC. It exists to keep the engines honest about serialisation —
// the Table 3 microbenchmark and the transport tests drive real bytes
// through real sockets — while the large experiments use Local for speed.
//
// The round protocol matches BSP supersteps: each endpoint Sends any number
// of batches, then calls FinishRound exactly once per round; Drain blocks
// until one round marker from every endpoint has arrived, then returns all
// batches. Markers are tagged with their sender, so a duplicate marker from
// a fast endpoint can never stand in for a missing one from another — the
// skew that made a FinishRound contract breach corrupt every later barrier.
// Breaches are surfaced as a fatal ErrRoundViolation through Err, and a
// fatal error unblocks every Drain rather than leaving the engines hung.
//
// Failure handling: writes carry deadlines, a failed send is retried over a
// freshly dialled connection with exponential backoff + jitter (bounded by
// MaxRetries), and errors surfaced through Err are typed *Error values whose
// Transient flag tells the engines whether checkpoint recovery may apply.
type RPC[M any] struct {
	n      int
	opts   RPCOptions
	stats  Stats
	matrix *Matrix

	// codec, when non-nil, selects the hand-rolled binary frame format
	// instead of gob: frames encode into encBufs and decode without
	// per-message allocations. Nil keeps the legacy gob streams.
	codec graph.Codec[M]
	// encBufs[from][to] is the arena-style per-peer encode buffer, reused
	// across supersteps so steady-state encoding allocates nothing. Guarded
	// by encMu[from], like the gob encoder it replaces.
	encBufs [][][]byte

	listeners []net.Listener
	// conns[from][to] is the client-side connection used by `from` to send
	// to `to`; nil on the diagonal (self-sends short-circuit).
	conns    [][]net.Conn
	encoders [][]*gob.Encoder
	// counters[from][to] sits between the encoder and the socket, counting
	// the encoded frame bytes each gob Encode actually writes. Guarded by
	// encMu[from], like the encoder it feeds.
	counters [][]*countingWriter
	encMu    []sync.Mutex // one per sender: engines may send from several goroutines
	rngs     []*rand.Rand // per-sender jitter source, guarded by encMu

	inboxes []rpcInbox[M]

	// tags[from] and serNs[from] are guarded by encMu[from], like the
	// encoder they describe. tagged flips once on the first Tag call.
	tagged atomic.Bool
	tags   []span.Context
	serNs  []int64

	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup

	errMu sync.Mutex
	err   error
}

type rpcInbox[M any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	batches []rpcBatch[M]
	// lastDeliv is the span provenance of the batches the last Drain
	// returned; rebuilt per Drain, read by the same worker afterwards.
	lastDeliv []span.Delivery
	// endsFrom[i] counts unconsumed round markers from sender i. Drain
	// consumes exactly one from every sender per round.
	endsFrom []int
	closed   bool
}

// rpcBatch is one received batch plus its provenance: the sender and the
// causal span tag its frame carried.
type rpcBatch[M any] struct {
	from  int
	ctx   span.Context
	batch []M
}

type frame[M any] struct {
	From  int
	End   bool
	Tag   span.Context
	Batch []M
}

// countingWriter counts the bytes flowing through it to the underlying
// connection — the ground truth for wire-overhead accounting. The per-frame
// byte sequence of a (from, to) gob stream is deterministic for a fixed
// message sequence (gob emits type descriptors once per stream, then
// identical frame encodings), so cumulative wire bytes are as reproducible
// as the payload counts the perf gate already diffs exactly.
type countingWriter struct {
	w io.Writer
	n int64 // guarded by the owning sender's encMu
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewRPC creates a fully connected loopback transport between n endpoints
// with default failure-handling options, carrying gob frames.
func NewRPC[M any](n int) (*RPC[M], error) {
	return newRPC[M](n, RPCOptions{}, nil)
}

// NewRPCOpts creates a fully connected loopback transport with explicit
// deadline/retry options, carrying gob frames.
func NewRPCOpts[M any](n int, opts RPCOptions) (*RPC[M], error) {
	return newRPC[M](n, opts, nil)
}

// NewRPCCodec creates a fully connected loopback transport whose frames use
// the hand-rolled binary format (see frame.go) with the given message codec
// instead of gob.
func NewRPCCodec[M any](n int, codec graph.Codec[M]) (*RPC[M], error) {
	return newRPC[M](n, RPCOptions{}, codec)
}

// NewRPCCodecOpts is NewRPCCodec with explicit deadline/retry options.
func NewRPCCodecOpts[M any](n int, opts RPCOptions, codec graph.Codec[M]) (*RPC[M], error) {
	return newRPC[M](n, opts, codec)
}

func newRPC[M any](n int, opts RPCOptions, codec graph.Codec[M]) (*RPC[M], error) {
	opts = opts.withDefaults()
	t := &RPC[M]{
		n:         n,
		opts:      opts,
		codec:     codec,
		matrix:    NewMatrix(n),
		listeners: make([]net.Listener, n),
		conns:     make([][]net.Conn, n),
		encoders:  make([][]*gob.Encoder, n),
		counters:  make([][]*countingWriter, n),
		encMu:     make([]sync.Mutex, n),
		rngs:      make([]*rand.Rand, n),
		inboxes:   make([]rpcInbox[M], n),
		tags:      make([]span.Context, n),
		serNs:     make([]int64, n),
	}
	for i := range t.inboxes {
		t.inboxes[i].cond = sync.NewCond(&t.inboxes[i].mu)
		t.inboxes[i].endsFrom = make([]int, n)
		t.rngs[i] = rand.New(rand.NewSource(opts.Seed*1099511628211 + int64(i)))
	}
	if codec != nil {
		t.encBufs = make([][][]byte, n)
		for i := range t.encBufs {
			t.encBufs[i] = make([][]byte, n)
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close() // best-effort teardown; the listen error is what matters
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.listeners[i] = ln
	}
	// Accept loops: every endpoint accepts inbound connections until its
	// listener closes. Accepting forever (not just the initial n-1) is what
	// lets a sender replace a failed connection mid-run: the reconnect dial
	// lands here and a fresh receive loop takes over the stream.
	for to := 0; to < n; to++ {
		to := to
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				conn, err := t.listeners[to].Accept()
				if err != nil {
					return
				}
				t.wg.Add(1)
				go func() {
					defer t.wg.Done()
					t.receiveLoop(to, conn)
				}()
			}
		}()
	}
	for from := 0; from < n; from++ {
		t.conns[from] = make([]net.Conn, n)
		t.encoders[from] = make([]*gob.Encoder, n)
		t.counters[from] = make([]*countingWriter, n)
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			conn, err := net.DialTimeout("tcp", t.listeners[to].Addr().String(), opts.DialTimeout)
			if err != nil {
				_ = t.Close() // best-effort teardown; the dial error is what matters
				return nil, fmt.Errorf("transport: dial %d→%d: %w", from, to, err)
			}
			t.conns[from][to] = conn
			t.counters[from][to] = &countingWriter{w: conn}
			if codec == nil {
				t.encoders[from][to] = gob.NewEncoder(t.counters[from][to])
			}
		}
	}
	return t, nil
}

func (t *RPC[M]) receiveLoop(to int, conn net.Conn) {
	defer conn.Close()
	if t.codec != nil {
		t.receiveLoopBinary(to, conn)
		return
	}
	dec := gob.NewDecoder(conn)
	for {
		if t.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.opts.ReadTimeout)) //nolint:errcheck
		}
		var f frame[M]
		err := dec.Decode(&f)
		if err == nil {
			t.stats.countDecode()
		}
		if err != nil {
			// EOF is the normal end of a replaced or closed connection; a
			// deadline expiry means the peer stalled past ReadTimeout.
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !t.closed.Load() {
				t.recordErr(&Error{Op: "recv", Peer: to, Retryable: true, Err: err})
			}
			return
		}
		if f.End {
			t.depositEnd(to, f.From)
			continue
		}
		in := &t.inboxes[to]
		in.mu.Lock()
		in.batches = append(in.batches, rpcBatch[M]{from: f.From, ctx: f.Tag, batch: f.Batch})
		in.cond.Broadcast()
		in.mu.Unlock()
	}
}

// maxFrameBytes bounds a binary frame's declared length. A desynchronized
// or corrupted stream would otherwise turn a garbage length prefix into an
// arbitrarily large allocation; past this bound the stream is dead anyway.
const maxFrameBytes = 1 << 30

// receiveLoopBinary is receiveLoop for the binary frame format: a 4-byte
// length prefix, then the frame body decoded by the codec. The body buffer
// is reused across frames (grown once to the high-water mark); the only
// steady-state allocation is the []M handed to the inbox — one per frame,
// zero per message.
func (t *RPC[M]) receiveLoopBinary(to int, conn net.Conn) {
	var hdr [4]byte
	var body []byte
	for {
		if t.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.opts.ReadTimeout)) //nolint:errcheck
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			// EOF is the normal end of a replaced or closed connection; a
			// deadline expiry means the peer stalled past ReadTimeout.
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !t.closed.Load() {
				t.recordErr(&Error{Op: "recv", Peer: to, Retryable: true, Err: err})
			}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrameBytes {
			t.recordErr(&Error{Op: "recv", Peer: to, Err: fmt.Errorf("frame length %d exceeds limit", n)})
			return
		}
		if int(n) > cap(body) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(conn, body); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !t.closed.Load() {
				t.recordErr(&Error{Op: "recv", Peer: to, Retryable: true, Err: err})
			}
			return
		}
		t.stats.countDecode()
		from, end, tag, batch, err := decodeFrameBody(body, t.codec, nil)
		if err != nil {
			// A malformed body means the stream is desynced; drop the
			// connection like a gob decode failure would. The sender's next
			// write fails and retries over a fresh dial.
			return
		}
		if end {
			t.depositEnd(to, from)
			continue
		}
		in := &t.inboxes[to]
		in.mu.Lock()
		in.batches = append(in.batches, rpcBatch[M]{from: from, ctx: tag, batch: batch})
		in.cond.Broadcast()
		in.mu.Unlock()
	}
}

// depositEnd credits a round marker from `from` at `to`'s inbox, enforcing
// the FinishRound contract via the marker-lag bound.
func (t *RPC[M]) depositEnd(to, from int) {
	if from < 0 || from >= t.n {
		t.recordErr(&Error{Op: "recv", Peer: to, Err: fmt.Errorf("round marker from unknown endpoint %d", from)})
		return
	}
	in := &t.inboxes[to]
	in.mu.Lock()
	in.endsFrom[from]++
	lagged := in.endsFrom[from] > maxRoundLag
	in.cond.Broadcast()
	in.mu.Unlock()
	if lagged {
		t.recordErr(&Error{Op: "finish-round", Peer: from, Err: ErrRoundViolation})
	}
}

// NumEndpoints reports the number of endpoints.
func (t *RPC[M]) NumEndpoints() int { return t.n }

// Stats exposes the traffic counters. Bytes are counted as 16/message to
// stay comparable with Local; WireBytes carries the measured socket bytes of
// every gob frame, so WireBytes − Bytes is the real envelope cost.
func (t *RPC[M]) Stats() *Stats { return &t.stats }

// Matrix exposes the per-peer traffic counters (payload at the same
// 16 bytes/message estimate as Stats, wire at measured socket bytes).
func (t *RPC[M]) Matrix() *Matrix { return t.matrix }

// recordErr keeps the first asynchronous failure for Err. A fatal error also
// breaks every blocked Drain: once the round protocol is dead, waiting for
// markers that will never arrive is a hang, and the engines check Err at the
// barrier anyway.
func (t *RPC[M]) recordErr(err error) {
	if err == nil {
		return
	}
	t.errMu.Lock()
	first := t.err == nil
	if first {
		t.err = err
	}
	t.errMu.Unlock()
	if first && !IsTransient(err) {
		t.breakRounds()
	}
}

// breakRounds wakes and permanently unblocks all Drains.
func (t *RPC[M]) breakRounds() {
	for i := range t.inboxes {
		in := &t.inboxes[i]
		in.mu.Lock()
		in.closed = true
		in.cond.Broadcast()
		in.mu.Unlock()
	}
}

// Err implements Interface: the first asynchronous failure, if any. The
// value is always a typed *Error; IsTransient reports whether checkpoint
// recovery may apply to it.
func (t *RPC[M]) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.err
}

// ClearErr drops a recorded transient error after the engines have recovered
// from it. Fatal errors stick: recovery must not mask a closed transport or
// a protocol violation.
func (t *RPC[M]) ClearErr() {
	t.errMu.Lock()
	if t.err != nil && IsTransient(t.err) {
		t.err = nil
	}
	t.errMu.Unlock()
}

// backoff returns the jittered delay before retry attempt `attempt` (0-based)
// by sender `from`. Caller holds encMu[from].
func (t *RPC[M]) backoff(from, attempt int) time.Duration {
	d := t.opts.BackoffBase << attempt
	if d > t.opts.BackoffMax || d <= 0 {
		d = t.opts.BackoffMax
	}
	// Half fixed, half jitter: spreads reconnect storms without ever
	// returning a zero sleep.
	return d/2 + time.Duration(t.rngs[from].Int63n(int64(d/2)+1))
}

// sendFrame encodes one frame from→to, re-dialling with backoff on failure.
// Caller holds encMu[from]. Returns the final error after retries.
func (t *RPC[M]) sendFrame(from, to int, f frame[M]) error {
	var lastErr error
	for attempt := 0; attempt <= t.opts.MaxRetries; attempt++ {
		if t.closed.Load() {
			return &Error{Op: "send", Peer: to, Err: ErrClosed}
		}
		if attempt > 0 {
			time.Sleep(t.backoff(from, attempt-1))
			conn, err := net.DialTimeout("tcp", t.listeners[to].Addr().String(), t.opts.DialTimeout)
			if err != nil {
				lastErr = err
				continue
			}
			if old := t.conns[from][to]; old != nil {
				old.Close()
			}
			t.conns[from][to] = conn
			// A fresh gob stream re-sends its type descriptors; the new
			// counting writer charges them to the wire like any other bytes
			// (under a seed-deterministic fault plan the resend is part of
			// the replayable byte sequence). Binary frames carry no stream
			// state, so their reconnect resends are byte-identical.
			t.counters[from][to] = &countingWriter{w: conn}
			if t.codec == nil {
				t.encoders[from][to] = gob.NewEncoder(t.counters[from][to])
			}
			t.stats.reconnects.Add(1)
		}
		conn := t.conns[from][to]
		if t.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)) //nolint:errcheck
		}
		wire0 := t.counters[from][to].n
		var err error
		if t.codec != nil {
			// Binary path: encode into the reusable per-peer arena buffer,
			// then write the whole frame through the counting writer. One
			// Write per frame, zero allocations per message in steady state.
			encStart := time.Now()
			buf := appendFrame(t.encBufs[from][to][:0], f.From, f.End, f.Tag, f.Batch, t.codec)
			t.encBufs[from][to] = buf
			t.serNs[from] += time.Since(encStart).Nanoseconds() //lint:allow determinism serialisation time feeds the Serialize span, quarantined like timings.csv
			_, err = t.counters[from][to].Write(buf)
		} else {
			encStart := time.Now()
			err = t.encoders[from][to].Encode(f)
			t.serNs[from] += time.Since(encStart).Nanoseconds() //lint:allow determinism serialisation time feeds the Serialize span, quarantined like timings.csv
		}
		if err != nil {
			lastErr = err
			t.stats.retries.Add(1)
			continue
		}
		// Wire accounting only on success: a failed attempt's partial bytes
		// are retried in full over a fresh stream, so the counted sequence
		// stays the deterministic one the perf gate can diff exactly.
		wire := t.counters[from][to].n - wire0
		t.stats.countWire(wire)
		t.stats.countEncode()
		t.matrix.AddWire(from, to, wire)
		return nil
	}
	return &Error{Op: "send", Peer: to, Retryable: true, Err: lastErr}
}

// Send delivers a batch from `from` to `to`. Self-sends bypass the network.
// Failures are reported through Err (the Interface contract keeps the send
// path non-blocking for engines); transient ones are first retried over a
// fresh connection.
func (t *RPC[M]) Send(from, to int, batch []M) {
	if len(batch) == 0 {
		return
	}
	if t.closed.Load() {
		t.recordErr(&Error{Op: "send", Peer: to, Err: ErrClosed})
		return
	}
	payload := int64(len(batch)) * 16
	t.stats.count(int64(len(batch)), payload, true)
	t.matrix.Add(from, to, int64(len(batch)), payload)
	if from == to {
		// A self-send never crosses a socket: wire == payload, same as the
		// in-process transports, so the aggregate wire/payload ratio isolates
		// the gob envelope paid on the remote paths.
		t.stats.countWire(payload)
		t.matrix.AddWire(from, to, payload)
		var ctx span.Context
		if t.tagged.Load() {
			t.encMu[from].Lock()
			ctx = t.tags[from]
			t.encMu[from].Unlock()
		}
		in := &t.inboxes[to]
		in.mu.Lock()
		in.batches = append(in.batches, rpcBatch[M]{from: from, ctx: ctx, batch: batch})
		in.cond.Broadcast()
		in.mu.Unlock()
		return
	}
	t.encMu[from].Lock()
	defer t.encMu[from].Unlock()
	t.recordErr(t.sendFrame(from, to, frame[M]{From: from, Tag: t.tags[from], Batch: batch}))
}

// FinishRound marks the end of `from`'s sends for the current round. It must
// be called exactly once per round per endpoint. If a marker cannot be
// written even after reconnect retries, it is credited to the receiver's
// inbox directly (all endpoints share this process): the barrier still
// completes and the engines observe the failure through Err at the barrier
// instead of hanging in Drain.
func (t *RPC[M]) FinishRound(from int) {
	if t.closed.Load() {
		t.recordErr(&Error{Op: "finish-round", Peer: -1, Err: ErrClosed})
		return
	}
	t.encMu[from].Lock()
	defer t.encMu[from].Unlock()
	for to := 0; to < t.n; to++ {
		if to == from {
			t.depositEnd(to, from)
			continue
		}
		if err := t.sendFrame(from, to, frame[M]{From: from, End: true}); err != nil {
			t.recordErr(err)
			t.depositEnd(to, from)
		}
	}
}

// Drain blocks until one round marker from every endpoint has arrived, then
// returns all batches received by `to` and consumes the markers. A closed
// transport or a fatal protocol error unblocks it immediately.
//
//lint:hotpath
func (t *RPC[M]) Drain(to int) [][]M {
	in := &t.inboxes[to]
	in.mu.Lock()
	defer in.mu.Unlock()
	for !in.closed {
		ready := true
		for _, e := range in.endsFrom {
			if e == 0 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		in.cond.Wait()
	}
	received := in.batches
	in.batches = nil
	if !in.closed {
		for i := range in.endsFrom {
			in.endsFrom[i]--
		}
	}
	record := t.tagged.Load()
	if record {
		in.lastDeliv = in.lastDeliv[:0]
	}
	out := make([][]M, len(received)) //lint:allow allocfree the batch-header slice is handed to the engine each round; reusing it would alias consecutive rounds
	for i, rb := range received {
		out[i] = rb.batch
		if record {
			in.lastDeliv = span.AddDelivery(in.lastDeliv,
				span.Delivery{From: rb.from, Ctx: rb.ctx, Msgs: int64(len(rb.batch))})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Tag implements Interface: stamps the span context carried on `from`'s
// subsequent frames.
func (t *RPC[M]) Tag(from int, sc span.Context) {
	t.encMu[from].Lock()
	t.tags[from] = sc
	t.encMu[from].Unlock()
	t.tagged.Store(true)
}

// LastDeliveries implements Interface.
func (t *RPC[M]) LastDeliveries(to int) []span.Delivery {
	if !t.tagged.Load() {
		return nil
	}
	in := &t.inboxes[to]
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.lastDeliv
}

// SerializeNanos implements Interface: cumulative gob-encoding time charged
// to sender `from`.
func (t *RPC[M]) SerializeNanos(from int) int64 {
	t.encMu[from].Lock()
	defer t.encMu[from].Unlock()
	return t.serNs[from]
}

// Close shuts down all sockets. It is idempotent and safe to call
// concurrently with in-flight sends and other Close calls: later Sends and
// FinishRounds fail fast with a typed ErrClosed error instead of writing to
// dead sockets, and blocked Drains return.
func (t *RPC[M]) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		for _, ln := range t.listeners {
			if ln != nil {
				ln.Close()
			}
		}
		// Taking each sender's lock orders this Close after any in-flight
		// send on that connection, so the encoder never writes to a conn
		// being torn down concurrently.
		for from, row := range t.conns {
			t.encMu[from].Lock()
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
			t.encMu[from].Unlock()
		}
		t.breakRounds()
	})
	return nil
}

var _ Interface[int] = (*RPC[int])(nil)
