package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// RPC is a real networked transport: n endpoints fully connected by TCP
// loopback sockets carrying gob-encoded frames, mirroring Hama's use of
// Hadoop RPC. It exists to keep the engines honest about serialisation —
// the Table 3 microbenchmark and the transport tests drive real bytes
// through real sockets — while the large experiments use Local for speed.
//
// The round protocol matches BSP supersteps: each endpoint Sends any number
// of batches, then calls FinishRound exactly once; Drain blocks until every
// endpoint's round marker has arrived, then returns all batches.
type RPC[M any] struct {
	n      int
	stats  Stats
	matrix *Matrix

	listeners []net.Listener
	// conns[from][to] is the client-side connection used by `from` to send
	// to `to`; nil on the diagonal (self-sends short-circuit).
	conns    [][]net.Conn
	encoders [][]*gob.Encoder
	encMu    []sync.Mutex // one per sender: engines may send from several goroutines

	inboxes []rpcInbox[M]

	closeOnce sync.Once
	wg        sync.WaitGroup

	errMu sync.Mutex
	err   error
}

type rpcInbox[M any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	batches [][]M
	ends    int
	closed  bool
}

type frame[M any] struct {
	End   bool
	Batch []M
}

// NewRPC creates a fully connected loopback transport between n endpoints.
func NewRPC[M any](n int) (*RPC[M], error) {
	t := &RPC[M]{
		n:         n,
		matrix:    NewMatrix(n),
		listeners: make([]net.Listener, n),
		conns:     make([][]net.Conn, n),
		encoders:  make([][]*gob.Encoder, n),
		encMu:     make([]sync.Mutex, n),
		inboxes:   make([]rpcInbox[M], n),
	}
	for i := range t.inboxes {
		t.inboxes[i].cond = sync.NewCond(&t.inboxes[i].mu)
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.listeners[i] = ln
	}
	// Accept loops: every endpoint accepts n-1 inbound connections. The
	// first gob value on each connection identifies the sender (unused
	// beyond handshake ordering, but it keeps accept deterministic).
	for to := 0; to < n; to++ {
		to := to
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for i := 0; i < n-1; i++ {
				conn, err := t.listeners[to].Accept()
				if err != nil {
					return
				}
				t.wg.Add(1)
				go func() {
					defer t.wg.Done()
					t.receiveLoop(to, conn)
				}()
			}
		}()
	}
	for from := 0; from < n; from++ {
		t.conns[from] = make([]net.Conn, n)
		t.encoders[from] = make([]*gob.Encoder, n)
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			conn, err := net.Dial("tcp", t.listeners[to].Addr().String())
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("transport: dial %d→%d: %w", from, to, err)
			}
			t.conns[from][to] = conn
			t.encoders[from][to] = gob.NewEncoder(conn)
		}
	}
	return t, nil
}

func (t *RPC[M]) receiveLoop(to int, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var f frame[M]
		if err := dec.Decode(&f); err != nil {
			return
		}
		in := &t.inboxes[to]
		in.mu.Lock()
		if f.End {
			in.ends++
		} else {
			in.batches = append(in.batches, f.Batch)
		}
		in.cond.Broadcast()
		in.mu.Unlock()
	}
}

// NumEndpoints reports the number of endpoints.
func (t *RPC[M]) NumEndpoints() int { return t.n }

// Stats exposes the traffic counters. Bytes are counted as 16/message to
// stay comparable with Local; the real wire bytes are strictly larger.
func (t *RPC[M]) Stats() *Stats { return &t.stats }

// Matrix exposes the per-peer traffic counters (same 16 bytes/message
// estimate as Stats).
func (t *RPC[M]) Matrix() *Matrix { return t.matrix }

// recordErr keeps the first asynchronous failure for Err.
func (t *RPC[M]) recordErr(err error) {
	if err == nil {
		return
	}
	t.errMu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.errMu.Unlock()
}

// Err implements Interface: the first send/encode failure, if any.
func (t *RPC[M]) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.err
}

// Send delivers a batch from `from` to `to`. Self-sends bypass the network.
// Failures are reported through Err (the Interface contract keeps the send
// path non-blocking for engines; a dead socket fails the whole run anyway).
func (t *RPC[M]) Send(from, to int, batch []M) {
	if len(batch) == 0 {
		return
	}
	t.stats.count(int64(len(batch)), int64(len(batch))*16, true)
	t.matrix.Add(from, to, int64(len(batch)), int64(len(batch))*16)
	if from == to {
		in := &t.inboxes[to]
		in.mu.Lock()
		in.batches = append(in.batches, batch)
		in.cond.Broadcast()
		in.mu.Unlock()
		return
	}
	t.encMu[from].Lock()
	defer t.encMu[from].Unlock()
	t.recordErr(t.encoders[from][to].Encode(frame[M]{Batch: batch}))
}

// FinishRound marks the end of `from`'s sends for the current round.
func (t *RPC[M]) FinishRound(from int) {
	t.encMu[from].Lock()
	defer t.encMu[from].Unlock()
	for to := 0; to < t.n; to++ {
		if to == from {
			in := &t.inboxes[to]
			in.mu.Lock()
			in.ends++
			in.cond.Broadcast()
			in.mu.Unlock()
			continue
		}
		t.recordErr(t.encoders[from][to].Encode(frame[M]{End: true}))
	}
}

// Drain blocks until every endpoint has finished the round, then returns all
// batches received by `to` and resets the round.
func (t *RPC[M]) Drain(to int) [][]M {
	in := &t.inboxes[to]
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.ends < t.n && !in.closed {
		in.cond.Wait()
	}
	out := in.batches
	in.batches = nil
	in.ends -= t.n
	if in.ends < 0 {
		in.ends = 0
	}
	return out
}

// Close shuts down all sockets. Safe to call multiple times.
func (t *RPC[M]) Close() error {
	t.closeOnce.Do(func() {
		for _, ln := range t.listeners {
			if ln != nil {
				ln.Close()
			}
		}
		for _, row := range t.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
		for i := range t.inboxes {
			in := &t.inboxes[i]
			in.mu.Lock()
			in.closed = true
			in.cond.Broadcast()
			in.mu.Unlock()
		}
	})
	return nil
}

var _ Interface[int] = (*RPC[int])(nil)
