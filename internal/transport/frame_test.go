package transport

// Binary frame format tests: round-trip fidelity, exact wire-size accounting
// (frameWireBytes must equal what appendFrame materialises, byte for byte —
// the in-process transport charges the former while the RPC transport
// measures the latter, and the perf gate diffs them exactly), and the
// zero-allocation steady state the arena-style buffers exist for.

import (
	"testing"

	"cyclops/internal/graph"
	"cyclops/internal/obs/span"
)

// msgCodec is the test codec for the msg type: 4-byte index + 8-byte value,
// the same 12-byte layout the Table 3 microbenchmark uses.
type msgCodec struct{}

func (msgCodec) EncodedSize(msg) int { return 12 }

func (msgCodec) Append(dst []byte, m msg) []byte {
	dst = graph.AppendUint32(dst, m.V)
	return graph.Float64Codec{}.Append(dst, m.X)
}

func (msgCodec) Decode(src []byte) (msg, int, error) {
	var m msg
	v, err := graph.Uint32At(src)
	if err != nil {
		return m, 0, err
	}
	x, n, err := graph.Float64Codec{}.Decode(src[4:])
	if err != nil {
		return m, 0, err
	}
	m.V = v
	m.X = x
	return m, 4 + n, nil
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		from  int
		end   bool
		tag   span.Context
		batch []msg
	}{
		{"tagged batch", 3, false, span.Context{Run: 7, Step: 11, Worker: 3},
			[]msg{{1, 1.5}, {2, -2.5}, {4294967295, 0}}},
		{"untagged batch", 0, false, span.Context{}, []msg{{9, 9.25}}},
		{"round-end marker", 2, true, span.Context{Run: 1, Step: 0, Worker: 2}, nil},
		{"empty batch", 1, false, span.Context{}, nil},
	}
	codec := msgCodec{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := appendFrame(nil, tc.from, tc.end, tc.tag, tc.batch, codec)
			if got, want := int64(len(wire)), frameWireBytes(tc.batch, codec); got != want {
				t.Fatalf("materialised %d bytes, frameWireBytes computed %d", got, want)
			}
			from, end, tag, batch, err := decodeFrameBody(wire[4:], codec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if from != tc.from || end != tc.end || tag != tc.tag {
				t.Fatalf("header round-trip: got (%d,%v,%+v), want (%d,%v,%+v)",
					from, end, tag, tc.from, tc.end, tc.tag)
			}
			if len(batch) != len(tc.batch) {
				t.Fatalf("batch length %d, want %d", len(batch), len(tc.batch))
			}
			for i := range batch {
				if batch[i] != tc.batch[i] {
					t.Fatalf("message %d: got %+v, want %+v", i, batch[i], tc.batch[i])
				}
			}
		})
	}
}

func TestFrameDecodeRejectsCorruption(t *testing.T) {
	codec := msgCodec{}
	wire := appendFrame(nil, 1, false, span.Context{}, []msg{{1, 1}, {2, 2}}, codec)
	// Truncated body: the last message is cut short.
	if _, _, _, _, err := decodeFrameBody(wire[4:len(wire)-3], codec, nil); err == nil {
		t.Error("truncated frame decoded without error")
	}
	// Trailing garbage: bytes past the declared message count.
	if _, _, _, _, err := decodeFrameBody(append(wire[4:], 0xFF), codec, nil); err == nil {
		t.Error("frame with trailing bytes decoded without error")
	}
	// Shorter than the fixed header.
	if _, _, _, _, err := decodeFrameBody(wire[4:10], codec, nil); err == nil {
		t.Error("sub-header frame decoded without error")
	}
	// Undefined flag bits: a different frame dialect, not a torn read.
	bent := append([]byte(nil), wire[4:]...)
	bent[0] |= 0x80
	if _, _, _, _, err := decodeFrameBody(bent, codec, nil); err != ErrFrameCorrupt {
		t.Errorf("frame with undefined flag bits: err = %v, want ErrFrameCorrupt", err)
	}
	// A message count larger than the remaining bytes: the decoder must
	// reject it up front (every message costs ≥ 1 byte) rather than size an
	// allocation from the attacker-controlled header field.
	huge := append([]byte(nil), wire[4:]...)
	huge[21], huge[22], huge[23], huge[24] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, _, _, err := decodeFrameBody(huge, codec, nil); err != graph.ErrShortBuffer {
		t.Errorf("frame with outsized count: err = %v, want ErrShortBuffer", err)
	}
}

// TestFrameScratchAliasing pins the aliasing semantics the bufretain analyzer
// polices: a batch decoded into scratch is only valid until the next decode
// into the same scratch, which clobbers it in place. A caller that retains
// the first batch across rounds observes the second round's values — exactly
// the bug class the analyzer flags at compile time.
func TestFrameScratchAliasing(t *testing.T) {
	codec := msgCodec{}
	first := []msg{{1, 1.0}, {2, 2.0}}
	second := []msg{{7, 7.0}, {8, 8.0}}
	scratch := make([]msg, 0, 2)

	wire1 := appendFrame(nil, 0, false, span.Context{}, first, codec)
	_, _, _, batch1, err := decodeFrameBody(wire1[4:], codec, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if batch1[0] != first[0] || batch1[1] != first[1] {
		t.Fatalf("first decode: got %+v, want %+v", batch1, first)
	}

	wire2 := appendFrame(nil, 0, false, span.Context{}, second, codec)
	_, _, _, batch2, err := decodeFrameBody(wire2[4:], codec, scratch)
	if err != nil {
		t.Fatal(err)
	}
	// Both batches alias scratch's backing array: the second decode
	// overwrote the first batch in place.
	if &batch1[0] != &batch2[0] {
		t.Fatal("scratch decodes did not share a backing array; aliasing contract changed")
	}
	if batch1[0] != second[0] || batch1[1] != second[1] {
		t.Fatalf("retained first batch holds %+v; scratch reuse should have clobbered it to %+v",
			batch1, second)
	}
}

// TestFrameRoundTripZeroAlloc pins the tentpole's core claim: once the
// per-peer arena buffer and a receive-side scratch batch have grown to their
// high-water mark, encoding and decoding a frame allocate nothing at all.
func TestFrameRoundTripZeroAlloc(t *testing.T) {
	codec := msgCodec{}
	batch := make([]msg, 512)
	for i := range batch {
		batch[i] = msg{uint32(i), float64(i)}
	}
	tag := span.Context{Run: 1, Step: 2, Worker: 3}
	buf := appendFrame(nil, 0, false, tag, batch, codec) // grow the arena
	scratch := make([]msg, 0, len(batch))
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendFrame(buf[:0], 0, false, tag, batch, codec)
		_, _, _, out, err := decodeFrameBody(buf[4:], codec, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(batch) {
			t.Fatalf("decoded %d messages, want %d", len(out), len(batch))
		}
	})
	if allocs != 0 {
		t.Errorf("frame round-trip allocated %v objects/op in steady state, want 0", allocs)
	}
}

// TestLocalCodecWireAccounting verifies the in-process transport's computed
// wire charge is exactly what a socket run of the same batches would
// materialise: frame header + per-message encoded sizes, while payload stays
// on the sizeOf estimate.
func TestLocalCodecWireAccounting(t *testing.T) {
	codec := msgCodec{}
	tr := NewLocalCodec[msg](3, PerSenderQueue, nil, codec)
	batches := []struct {
		from, to int
		batch    []msg
	}{
		{0, 2, []msg{{1, 1.5}, {2, 2.5}}},
		{1, 2, []msg{{3, 3.5}}},
		{0, 0, []msg{{4, 4.5}}},
	}
	var wantWire, wantPayload int64
	for _, b := range batches {
		tr.Send(b.from, b.to, b.batch)
		wire := appendFrame(nil, b.from, false, span.Context{}, b.batch, codec)
		wantWire += int64(len(wire))
		wantPayload += int64(len(b.batch)) * 16
	}
	s := tr.Stats().Snapshot()
	if s.WireBytes != wantWire {
		t.Errorf("wire bytes %d, want the materialised frame total %d", s.WireBytes, wantWire)
	}
	if s.Bytes != wantPayload {
		t.Errorf("payload bytes %d, want flat 16/message %d", s.Bytes, wantPayload)
	}
	if s.Encodes != 0 || s.Decodes != 0 {
		t.Errorf("in-process codec transport performed %d encodes / %d decodes", s.Encodes, s.Decodes)
	}
	if m := tr.Matrix().Snapshot(); m.TotalWireBytes() != s.WireBytes {
		t.Errorf("matrix wire total %d != stats wire total %d", m.TotalWireBytes(), s.WireBytes)
	}
}

// TestRPCBinaryRoundTrip drives real batches through real sockets with the
// binary codec and checks both delivery and the measured wire bytes — which,
// unlike gob's, must equal the computed frame sizes exactly (no stream state,
// no type descriptors).
func TestRPCBinaryRoundTrip(t *testing.T) {
	codec := msgCodec{}
	tr, err := NewRPCCodec[msg](2, codec)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.Tag(0, span.Context{Run: 5, Step: 1, Worker: 0})
	remote := []msg{{1, 1}, {2, 2}, {3, 3}}
	tr.Send(0, 1, remote)
	tr.Send(0, 0, []msg{{5, 5}}) // self-send: loopback, no frame
	tr.Send(1, 0, []msg{{6, 6}})
	tr.FinishRound(0)
	tr.FinishRound(1)

	got := tr.Drain(1)
	var flat []msg
	for _, b := range got {
		flat = append(flat, b...)
	}
	if len(flat) != len(remote) {
		t.Fatalf("worker 1 drained %d messages, want %d", len(flat), len(remote))
	}
	for i := range flat {
		if flat[i] != remote[i] {
			t.Fatalf("message %d: got %+v, want %+v", i, flat[i], remote[i])
		}
	}
	if d := tr.LastDeliveries(1); len(d) != 1 || d[0].Ctx.Run != 5 {
		t.Errorf("span tag lost on the binary wire: deliveries %+v", d)
	}
	tr.Drain(0)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	// Binary frames are stateless, so the measured socket bytes equal the
	// computed frame sizes exactly: one data frame 0→1, one 1→0, plus one
	// round-end marker per remote direction. The self-send charges payload.
	wantWire := frameWireBytes(remote, codec) +
		frameWireBytes([]msg{{6, 6}}, codec) +
		2*int64(FrameHeaderBytes) + // two round-end markers
		16 // self-send payload
	s := tr.Stats().Snapshot()
	if s.WireBytes != wantWire {
		t.Errorf("wire bytes %d, want exactly %d (header %d × frames + encoded messages)",
			s.WireBytes, wantWire, FrameHeaderBytes)
	}
	if s.Encodes != 4 || s.Decodes != 4 {
		t.Errorf("frame ops: %d encodes / %d decodes, want 4/4 (2 data + 2 markers)", s.Encodes, s.Decodes)
	}
}

// BenchmarkFrameRoundTrip is the perf-gate benchmark for the binary wire
// format: encode one 512-message frame into a reused arena buffer and decode
// it back into a reused scratch batch. CI asserts 0 allocs/op — the
// steady-state contract every remote send relies on.
func BenchmarkFrameRoundTrip(b *testing.B) {
	codec := msgCodec{}
	batch := make([]msg, 512)
	for i := range batch {
		batch[i] = msg{uint32(i), float64(i)}
	}
	tag := span.Context{Run: 1, Step: 2, Worker: 3}
	buf := appendFrame(nil, 0, false, tag, batch, codec)
	scratch := make([]msg, 0, len(batch))
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], 0, false, tag, batch, codec)
		_, _, _, out, err := decodeFrameBody(buf[4:], codec, scratch)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(batch) {
			b.Fatal("short decode")
		}
	}
}
