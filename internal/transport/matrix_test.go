package transport

// Per-peer accounting tests: the worker×worker matrix must agree with the
// global Stats counters on every transport — row sums are egress, column
// sums ingress, and the grand totals equal Stats.Messages/Bytes exactly.
// This is the property the /comm endpoint and the harness comm report build
// on, so it is pinned here at the source.

import (
	"math/rand"
	"sync"
	"testing"
)

// driveRandomTraffic sends a deterministic pseudo-random workload through tr
// from concurrent senders and returns the expected per-cell message counts.
func driveRandomTraffic(t *testing.T, tr Interface[int], n, rounds int) [][]int64 {
	t.Helper()
	want := make([][]int64, n)
	for i := range want {
		want[i] = make([]int64, n)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(from) + 1))
			for r := 0; r < rounds; r++ {
				for to := 0; to < n; to++ {
					k := rng.Intn(5) // 0 drops the batch: must not count
					batch := make([]int, k)
					tr.Send(from, to, batch)
					mu.Lock()
					want[from][to] += int64(k)
					mu.Unlock()
				}
				tr.FinishRound(from)
			}
		}(from)
	}
	wg.Wait()
	// Drain every endpoint so the RPC transport's rounds complete before the
	// counters are compared (Send is asynchronous over TCP until drained).
	for r := 0; r < rounds; r++ {
		for to := 0; to < n; to++ {
			tr.Drain(to)
		}
	}
	return want
}

func checkMatrixAgainstStats(t *testing.T, tr Interface[int], want [][]int64) {
	t.Helper()
	snap := tr.Matrix().Snapshot()
	st := tr.Stats().Snapshot()

	for f := range want {
		for to := range want[f] {
			if snap.Messages[f][to] != want[f][to] {
				t.Errorf("cell %d→%d = %d messages, want %d", f, to, snap.Messages[f][to], want[f][to])
			}
		}
	}
	if got := snap.TotalMessages(); got != st.Messages {
		t.Errorf("matrix total %d messages, Stats %d", got, st.Messages)
	}
	if got := snap.TotalBytes(); got != st.Bytes {
		t.Errorf("matrix total %d bytes, Stats %d", got, st.Bytes)
	}
	var egress, ingress int64
	for _, v := range snap.Egress() {
		egress += v
	}
	for _, v := range snap.Ingress() {
		ingress += v
	}
	if egress != st.Messages || ingress != st.Messages {
		t.Errorf("row sums %d / col sums %d, Stats %d", egress, ingress, st.Messages)
	}
}

func TestMatrixMatchesStatsLocalGlobal(t *testing.T) {
	tr := NewLocal[int](4, GlobalQueue, nil)
	want := driveRandomTraffic(t, tr, 4, 8)
	checkMatrixAgainstStats(t, tr, want)
}

func TestMatrixMatchesStatsLocalPerSender(t *testing.T) {
	tr := NewLocal[int](4, PerSenderQueue, nil)
	want := driveRandomTraffic(t, tr, 4, 8)
	checkMatrixAgainstStats(t, tr, want)
}

func TestMatrixMatchesStatsRPC(t *testing.T) {
	tr, err := NewRPC[int](3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := driveRandomTraffic(t, tr, 3, 4)
	checkMatrixAgainstStats(t, tr, want)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixSnapshotSubAddClone(t *testing.T) {
	m := NewMatrix(2)
	m.Add(0, 1, 3, 48)
	base := m.Snapshot()
	m.Add(0, 1, 2, 32)
	m.Add(1, 0, 1, 16)
	cur := m.Snapshot()

	d := cur.Sub(base)
	if d.Messages[0][1] != 2 || d.Bytes[0][1] != 32 || d.Messages[1][0] != 1 {
		t.Fatalf("delta wrong: %+v", d)
	}
	// Sub against a zero-value snapshot is the identity (first superstep).
	if id := cur.Sub(MatrixSnapshot{}); id.TotalMessages() != cur.TotalMessages() {
		t.Fatalf("zero-prev Sub: %d, want %d", id.TotalMessages(), cur.TotalMessages())
	}
	// Folding the base and the delta back together recovers the cumulative.
	sum := MatrixSnapshot{}.AddInto(base).AddInto(d)
	if sum.TotalMessages() != cur.TotalMessages() || sum.TotalBytes() != cur.TotalBytes() {
		t.Fatalf("AddInto: %d/%d, want %d/%d",
			sum.TotalMessages(), sum.TotalBytes(), cur.TotalMessages(), cur.TotalBytes())
	}
	// Clone must not alias.
	c := cur.Clone()
	c.Messages[0][1] = 99
	if cur.Messages[0][1] == 99 {
		t.Fatal("Clone aliases the source")
	}

	if eg := cur.Egress(); eg[0] != 5 || eg[1] != 1 {
		t.Fatalf("egress %v", eg)
	}
	if in := cur.Ingress(); in[0] != 1 || in[1] != 5 {
		t.Fatalf("ingress %v", in)
	}
}

func TestMicroSenderMessagesSumToTotal(t *testing.T) {
	const total, senders = 1000, 7
	for _, r := range []MicroResult{
		MicroHama(total, senders),
		MicroPowerGraph(total, senders),
		MicroCyclops(total, senders),
	} {
		if err := VerifyMicro(r); err != nil {
			t.Fatal(err)
		}
		if len(r.SenderMessages) != senders {
			t.Fatalf("%s: %d sender counts, want %d", r.Impl, len(r.SenderMessages), senders)
		}
		var sum int64
		for _, v := range r.SenderMessages {
			sum += v
		}
		if sum != int64(r.Messages) {
			t.Fatalf("%s: sender counts sum %d, want %d", r.Impl, sum, r.Messages)
		}
	}
}

// BenchmarkLocalSendPerPeer prices the Send hot path including the two
// per-batch matrix atomics, for comparison against the PR 1 transport (which
// had Stats counting only). The per-peer cost is two uncontended atomic adds
// per batch — amortised over batch size it is noise; this benchmark guards
// against that regressing (e.g. per-message counting sneaking in).
func BenchmarkLocalSendPerPeer(b *testing.B) {
	tr := NewLocal[int](4, PerSenderQueue, nil)
	batch := make([]int, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(0, 1, batch)
		if i%1024 == 1023 {
			b.StopTimer()
			tr.Drain(1)
			b.StartTimer()
		}
	}
}
