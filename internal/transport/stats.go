// Package transport carries messages between the simulated cluster's
// workers. It provides two in-process queue disciplines that reproduce the
// communication structures compared in the paper — Hama's locked global
// in-queue (every sender contends on one mutex per receiver, §2.2.2) and
// Cyclops' per-sender sub-queues (each slot has a single writer, so enqueue
// is contention-free, §4.1) — plus a real gob-over-TCP RPC transport and the
// Table 3 message-passing microbenchmark. All transports count messages,
// batches and estimated bytes so the harness can report the communication
// volumes of Figures 10(3) and Table 4 exactly.
package transport

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates traffic counters. All fields are updated atomically and
// may be read concurrently with traffic.
type Stats struct {
	messages   atomic.Int64
	batches    atomic.Int64
	bytes      atomic.Int64
	enqueues   atomic.Int64 // enqueue operations that took the shared lock
	retries    atomic.Int64 // send attempts repeated after a transient failure
	reconnects atomic.Int64 // connections re-established after a failure
}

// Count records a delivered batch of n messages totalling b bytes.
func (s *Stats) count(n, b int64, locked bool) {
	s.messages.Add(n)
	s.batches.Add(1)
	s.bytes.Add(b)
	if locked {
		s.enqueues.Add(1)
	}
}

// Messages reports the total messages sent.
func (s *Stats) Messages() int64 { return s.messages.Load() }

// Batches reports the total batches sent.
func (s *Stats) Batches() int64 { return s.batches.Load() }

// Bytes reports the total estimated payload bytes sent.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// LockedEnqueues reports how many enqueues serialised on a shared lock —
// zero for the per-sender discipline, equal to Batches for the global queue.
func (s *Stats) LockedEnqueues() int64 { return s.enqueues.Load() }

// Retries reports how many send attempts were repeated after a transient
// failure. Always zero for the in-process transports.
func (s *Stats) Retries() int64 { return s.retries.Load() }

// Reconnects reports how many connections were re-established after a
// failure. Always zero for the in-process transports.
func (s *Stats) Reconnects() int64 { return s.reconnects.Load() }

// Reset zeroes all counters (used between supersteps when per-step counts
// are wanted).
func (s *Stats) Reset() {
	s.messages.Store(0)
	s.batches.Store(0)
	s.bytes.Store(0)
	s.enqueues.Store(0)
	s.retries.Store(0)
	s.reconnects.Store(0)
}

// Snapshot is a plain-struct copy of the counters for reporting.
type Snapshot struct {
	Messages, Batches, Bytes, LockedEnqueues int64
	Retries, Reconnects                      int64
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Messages:       s.Messages(),
		Batches:        s.Batches(),
		Bytes:          s.Bytes(),
		LockedEnqueues: s.LockedEnqueues(),
		Retries:        s.Retries(),
		Reconnects:     s.Reconnects(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("msgs=%d batches=%d bytes=%d locked=%d",
		s.Messages, s.Batches, s.Bytes, s.LockedEnqueues)
}
