// Package transport carries messages between the simulated cluster's
// workers. It provides two in-process queue disciplines that reproduce the
// communication structures compared in the paper — Hama's locked global
// in-queue (every sender contends on one mutex per receiver, §2.2.2) and
// Cyclops' per-sender sub-queues (each slot has a single writer, so enqueue
// is contention-free, §4.1) — plus a real gob-over-TCP RPC transport and the
// Table 3 message-passing microbenchmark. All transports count messages,
// batches and estimated bytes so the harness can report the communication
// volumes of Figures 10(3) and Table 4 exactly.
package transport

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates traffic counters. All fields are updated atomically and
// may be read concurrently with traffic.
type Stats struct {
	messages   atomic.Int64
	batches    atomic.Int64
	bytes      atomic.Int64
	wireBytes  atomic.Int64 // encoded frame bytes (== payload when no encoding)
	encodes    atomic.Int64 // frame encode operations (gob / manual binary)
	decodes    atomic.Int64 // frame decode operations
	enqueues   atomic.Int64 // enqueue operations that took the shared lock
	retries    atomic.Int64 // send attempts repeated after a transient failure
	reconnects atomic.Int64 // connections re-established after a failure
}

// Count records a delivered batch of n messages totalling b bytes.
func (s *Stats) count(n, b int64, locked bool) {
	s.messages.Add(n)
	s.batches.Add(1)
	s.bytes.Add(b)
	if locked {
		s.enqueues.Add(1)
	}
}

// countWire records b encoded bytes on the wire. In-process transports call
// it with the payload estimate (memory hand-off has no envelope); the RPC
// transport with the gob frame's true socket byte count, so WireBytes-Bytes
// is exactly the serialisation envelope the paper's Table 3 charges Hama for.
func (s *Stats) countWire(b int64) { s.wireBytes.Add(b) }

// countEncode / countDecode record one frame encode / decode operation.
// Always zero for in-process transports, which never serialise.
func (s *Stats) countEncode() { s.encodes.Add(1) }
func (s *Stats) countDecode() { s.decodes.Add(1) }

// Messages reports the total messages sent.
func (s *Stats) Messages() int64 { return s.messages.Load() }

// Batches reports the total batches sent.
func (s *Stats) Batches() int64 { return s.batches.Load() }

// Bytes reports the total estimated payload bytes sent.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// WireBytes reports the total encoded bytes sent. Equal to Bytes on
// transports that do not serialise; strictly larger on the gob RPC transport
// (frame envelope + type descriptors).
func (s *Stats) WireBytes() int64 { return s.wireBytes.Load() }

// Encodes reports the number of frame encode operations performed.
func (s *Stats) Encodes() int64 { return s.encodes.Load() }

// Decodes reports the number of frame decode operations performed.
func (s *Stats) Decodes() int64 { return s.decodes.Load() }

// LockedEnqueues reports how many enqueues serialised on a shared lock —
// zero for the per-sender discipline, equal to Batches for the global queue.
func (s *Stats) LockedEnqueues() int64 { return s.enqueues.Load() }

// Retries reports how many send attempts were repeated after a transient
// failure. Always zero for the in-process transports.
func (s *Stats) Retries() int64 { return s.retries.Load() }

// Reconnects reports how many connections were re-established after a
// failure. Always zero for the in-process transports.
func (s *Stats) Reconnects() int64 { return s.reconnects.Load() }

// Reset zeroes all counters (used between supersteps when per-step counts
// are wanted).
func (s *Stats) Reset() {
	s.messages.Store(0)
	s.batches.Store(0)
	s.bytes.Store(0)
	s.wireBytes.Store(0)
	s.encodes.Store(0)
	s.decodes.Store(0)
	s.enqueues.Store(0)
	s.retries.Store(0)
	s.reconnects.Store(0)
}

// Snapshot is a plain-struct copy of the counters for reporting.
type Snapshot struct {
	Messages, Batches, Bytes, LockedEnqueues int64
	// WireBytes is the encoded on-the-wire byte count; Encodes and Decodes
	// count frame serialisation operations (zero for in-process transports).
	WireBytes, Encodes, Decodes int64
	Retries, Reconnects         int64
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Messages:       s.Messages(),
		Batches:        s.Batches(),
		Bytes:          s.Bytes(),
		WireBytes:      s.WireBytes(),
		Encodes:        s.Encodes(),
		Decodes:        s.Decodes(),
		LockedEnqueues: s.LockedEnqueues(),
		Retries:        s.Retries(),
		Reconnects:     s.Reconnects(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("msgs=%d batches=%d bytes=%d wire=%d locked=%d",
		s.Messages, s.Batches, s.Bytes, s.WireBytes, s.LockedEnqueues)
}

// WireOverhead reports the wire/payload byte ratio — the serialisation
// envelope factor. Zero when nothing was sent.
func (s Snapshot) WireOverhead() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.WireBytes) / float64(s.Bytes)
}
