package transport

import (
	"errors"
	"fmt"
)

// Typed transport failures. The engines' recovery path (§3.6) needs to tell
// a fault it can roll back from (a dropped frame, a timed-out write, an
// injected chaos fault) apart from one it cannot (a closed transport, a
// protocol violation). Every asynchronous failure surfaced through Err is an
// *Error; Transient says which side of that line it falls on.

// Sentinel causes wrapped by *Error.
var (
	// ErrClosed reports an operation on a transport after Close. Fatal: the
	// sockets are gone and no recovery round can bring them back.
	ErrClosed = errors.New("transport closed")
	// ErrRoundViolation reports a breach of the FinishRound-exactly-once
	// contract: an endpoint finished the same round twice before the
	// receivers drained it. Fatal: the round protocol is out of sync and
	// Drain results can no longer be trusted.
	ErrRoundViolation = errors.New("round finished more than once")
	// ErrFrameCorrupt reports a frame whose header is structurally invalid —
	// flag bits this version does not define. Unlike a short buffer (a torn
	// read that a retry can complete), an undefined flag means the peer
	// speaks a different frame dialect, so the decoder rejects the frame
	// before trusting any field after it.
	ErrFrameCorrupt = errors.New("frame header corrupt")
)

// Error is a typed transport failure: the failed operation, the peer it
// involved, whether the engines may recover from it, and the underlying
// cause.
type Error struct {
	// Op is the operation that failed: "send", "recv", "dial",
	// "finish-round".
	Op string
	// Peer is the remote endpoint involved, -1 when not attributable.
	Peer int
	// Retryable marks the error transient: a checkpointed engine may roll
	// back and resume instead of failing the run.
	Retryable bool
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	kind := "fatal"
	if e.Retryable {
		kind = "transient"
	}
	if e.Peer >= 0 {
		return fmt.Sprintf("transport: %s %s (peer %d): %v", kind, e.Op, e.Peer, e.Err)
	}
	return fmt.Sprintf("transport: %s %s: %v", kind, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Transient implements the classification interface IsTransient looks for.
func (e *Error) Transient() bool { return e.Retryable }

// IsTransient reports whether err is a transport fault the engines may
// recover from by restoring a checkpoint and replaying (a dropped or stalled
// connection, a corrupted frame, an injected chaos fault). Any error exposing
// a `Transient() bool` method participates; everything else is fatal.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
		err = errors.Unwrap(err)
	}
	return false
}
