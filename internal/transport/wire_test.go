package transport

// Wire-overhead accounting tests: the invariants the memory observatory's
// wire/payload ratio gate stands on. The local transport never serialises, so
// wire == payload by definition; the RPC transport measures the bytes gob
// actually writes to the socket, so wire > payload by exactly the envelope
// cost; and the two books (Stats and Matrix) agree on the grand total because
// they are bumped on the same send path.

import (
	"encoding/gob"
	"io"
	"testing"
)

func TestLocalWireEqualsPayload(t *testing.T) {
	tr := NewLocal[msg](3, PerSenderQueue, nil)
	tr.Send(0, 2, []msg{{1, 1.5}, {2, 2.5}})
	tr.Send(1, 2, []msg{{3, 3.5}})
	tr.Send(0, 0, []msg{{4, 4.5}})

	s := tr.Stats().Snapshot()
	if s.Bytes == 0 || s.WireBytes != s.Bytes {
		t.Errorf("in-process wire %d != payload %d (nothing serialises)", s.WireBytes, s.Bytes)
	}
	if s.Encodes != 0 || s.Decodes != 0 {
		t.Errorf("in-process transport performed %d encodes / %d decodes", s.Encodes, s.Decodes)
	}
	if o := s.WireOverhead(); o != 1 {
		t.Errorf("in-process wire overhead = %v, want exactly 1", o)
	}
	m := tr.Matrix().Snapshot()
	for f := 0; f < 3; f++ {
		for to := 0; to < 3; to++ {
			if m.WireAt(f, to) != m.Bytes[f][to] {
				t.Errorf("cell (%d,%d): wire %d != payload %d", f, to, m.WireAt(f, to), m.Bytes[f][to])
			}
		}
	}
	if m.TotalWireBytes() != s.WireBytes {
		t.Errorf("matrix wire total %d != stats wire total %d", m.TotalWireBytes(), s.WireBytes)
	}
}

func TestRPCWireAccounting(t *testing.T) {
	tr, err := NewRPC[msg](2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.Send(0, 1, []msg{{1, 1}, {2, 2}, {3, 3}})
	tr.Send(0, 1, []msg{{4, 4}})
	tr.Send(0, 0, []msg{{5, 5}}) // self-send: loopback, no serialisation
	tr.Send(1, 0, []msg{{6, 6}})
	tr.FinishRound(0)
	tr.FinishRound(1)
	tr.Drain(0)
	tr.Drain(1)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	s := tr.Stats().Snapshot()
	if s.Encodes == 0 || s.Decodes == 0 {
		t.Errorf("socket frames not counted: %d encodes, %d decodes", s.Encodes, s.Decodes)
	}
	// Remote frames carry the gob envelope (type descriptors + field framing),
	// so measured wire bytes strictly exceed the payload estimate; the excess
	// is exactly what the observatory calls wire overhead.
	if s.WireBytes <= s.Bytes {
		t.Errorf("rpc wire %d <= payload %d: envelope cost lost", s.WireBytes, s.Bytes)
	}
	if o := s.WireOverhead(); o <= 1 {
		t.Errorf("rpc wire overhead = %v, want > 1", o)
	}

	m := tr.Matrix().Snapshot()
	if m.WireAt(0, 0) != m.Bytes[0][0] {
		t.Errorf("self-send cell: wire %d != payload %d", m.WireAt(0, 0), m.Bytes[0][0])
	}
	if m.WireAt(0, 1) <= m.Bytes[0][1] {
		t.Errorf("remote cell (0,1): wire %d <= payload %d", m.WireAt(0, 1), m.Bytes[0][1])
	}
	if m.TotalWireBytes() != s.WireBytes {
		t.Errorf("matrix wire total %d != stats wire total %d", m.TotalWireBytes(), s.WireBytes)
	}
	if m.TotalBytes() != s.Bytes {
		t.Errorf("matrix payload total %d != stats payload total %d", m.TotalBytes(), s.Bytes)
	}
}

func TestMicroWireBytes(t *testing.T) {
	const total, senders = 20000, 5
	h := MicroHama(total, senders)
	p := MicroPowerGraph(total, senders)
	c := MicroCyclops(total, senders)
	if h.PayloadBytes != microPayloadBytes(total) || p.PayloadBytes != h.PayloadBytes ||
		c.PayloadBytes != h.PayloadBytes {
		t.Errorf("payload bytes disagree: hama %d powergraph %d cyclops %d",
			h.PayloadBytes, p.PayloadBytes, c.PayloadBytes)
	}
	// Hama materialises gob frames; the exact size depends on gob's varint
	// compression (integer-valued floats encode short, so wire can land under
	// the 12-byte/message logical volume), but frames always exist.
	if h.WireBytes <= 0 {
		t.Errorf("hama micro: no wire bytes recorded")
	}
	// PowerGraph's hand-rolled encoding is exact: 12 bytes per record plus a
	// 16-byte span header per batch.
	var batches int64
	for s := 0; s < senders; s++ {
		lo, hi := microRange(total, senders, s)
		batches += int64((hi - lo + microBatch - 1) / microBatch)
	}
	if want := p.PayloadBytes + 16*batches; p.WireBytes != want {
		t.Errorf("powergraph micro: wire %d, want payload+headers %d", p.WireBytes, want)
	}
	// Cyclops writes replicas directly: payload moves, no frame exists.
	if c.WireBytes != 0 {
		t.Errorf("cyclops micro: wire %d, want 0 (replica sync serialises nothing)", c.WireBytes)
	}
}

// TestMicroEncodeDecodeSymmetry pins the Table 3 like-for-like accounting:
// the gob leg and the binary leg each decode exactly what they encode (one
// op per message on both sides), and the Cyclops leg serialises nothing.
func TestMicroEncodeDecodeSymmetry(t *testing.T) {
	const total, senders = 20000, 5
	h := MicroHama(total, senders)
	p := MicroPowerGraph(total, senders)
	c := MicroCyclops(total, senders)
	for _, r := range []MicroResult{h, p} {
		if r.EncodeOps != int64(total) {
			t.Errorf("%s micro: %d encode ops, want one per message (%d)", r.Impl, r.EncodeOps, total)
		}
		if r.DecodeOps != r.EncodeOps {
			t.Errorf("%s micro: decode ops %d != encode ops %d (serialisation must be symmetric)",
				r.Impl, r.DecodeOps, r.EncodeOps)
		}
	}
	if c.EncodeOps != 0 || c.DecodeOps != 0 {
		t.Errorf("cyclops micro: %d encode / %d decode ops, want 0/0 (direct writes)",
			c.EncodeOps, c.DecodeOps)
	}
}

// BenchmarkFrameEncodeAllocs measures the steady-state allocation cost of
// encoding one wire frame through the counting writer — the per-batch cost
// every remote send pays. Type descriptors are emitted once before the timer
// starts, so the loop sees only the per-frame envelope. CI tracks allocs/op:
// a regression here multiplies across every batch of every superstep.
func BenchmarkFrameEncodeAllocs(b *testing.B) {
	batch := make([]msg, 512)
	for i := range batch {
		batch[i] = msg{uint32(i), float64(i)}
	}
	cw := &countingWriter{w: io.Discard}
	enc := gob.NewEncoder(cw)
	f := frame[msg]{From: 0, Batch: batch}
	if err := enc.Encode(&f); err != nil { // prime the type descriptors
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(&f); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cw.n == 0 {
		b.Fatal("counting writer saw no bytes")
	}
	b.SetBytes(cw.n / int64(b.N+1))
}
