// Package dfs is the "underlying storage layer" the paper assumes (§3.6,
// §6.2 run HDFS on the same cluster for graph input and checkpoints): a
// small distributed file store that splits files into fixed-size blocks,
// spreads them across storage nodes, and keeps R replicas of every block so
// single-node failures lose nothing. It is in-memory and in-process — the
// point is the placement, replication and recovery logic the engines'
// fault-tolerance story depends on, not durability of this host's disk.
package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// DefaultBlockSize mirrors small-cluster HDFS configurations, scaled down.
const DefaultBlockSize = 64 << 10

// ErrNotFound reports a missing file.
var ErrNotFound = errors.New("dfs: file not found")

// ErrUnavailable reports that some block of a file has no live replica.
var ErrUnavailable = errors.New("dfs: block unavailable (all replicas lost)")

// Store is a replicated block store over n simulated storage nodes.
type Store struct {
	mu        sync.RWMutex
	nodes     []*node
	files     map[string]*fileMeta
	blockSize int
	replicas  int
	nextBlock uint64
}

type node struct {
	alive  bool
	blocks map[uint64][]byte
}

type fileMeta struct {
	size   int
	blocks []uint64
	// placement[i] lists the nodes holding blocks[i].
	placement [][]int
}

// New creates a store with n nodes and the given replication factor
// (clamped to [1, n]). blockSize ≤ 0 selects DefaultBlockSize.
func New(n, replicas, blockSize int) (*Store, error) {
	if n < 1 {
		return nil, errors.New("dfs: need at least one node")
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > n {
		replicas = n
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	s := &Store{
		nodes:     make([]*node, n),
		files:     make(map[string]*fileMeta),
		blockSize: blockSize,
		replicas:  replicas,
	}
	for i := range s.nodes {
		s.nodes[i] = &node{alive: true, blocks: make(map[uint64][]byte)}
	}
	return s, nil
}

// aliveNodes returns live node ids ordered by current block count (least
// loaded first) — the balancing heuristic real block placers use.
func (s *Store) aliveNodes() []int {
	ids := make([]int, 0, len(s.nodes))
	for i, nd := range s.nodes {
		if nd.alive {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		return len(s.nodes[ids[a]].blocks) < len(s.nodes[ids[b]].blocks)
	})
	return ids
}

// Put stores a file, replacing any previous version.
func (s *Store) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	alive := s.aliveNodes()
	if len(alive) == 0 {
		return errors.New("dfs: no live nodes")
	}
	if old, ok := s.files[name]; ok {
		s.dropLocked(old)
	}
	meta := &fileMeta{size: len(data)}
	for off := 0; off < len(data) || (len(data) == 0 && off == 0); off += s.blockSize {
		end := off + s.blockSize
		if end > len(data) {
			end = len(data)
		}
		id := s.nextBlock
		s.nextBlock++
		block := append([]byte(nil), data[off:end]...)
		want := s.replicas
		if want > len(alive) {
			want = len(alive)
		}
		placed := make([]int, 0, want)
		// Refresh load ordering every block so replicas spread out.
		alive = s.aliveNodes()
		for _, nd := range alive[:want] {
			s.nodes[nd].blocks[id] = block
			placed = append(placed, nd)
		}
		meta.blocks = append(meta.blocks, id)
		meta.placement = append(meta.placement, placed)
		if len(data) == 0 {
			break
		}
	}
	s.files[name] = meta
	return nil
}

// dropLocked removes a file's blocks from all nodes.
func (s *Store) dropLocked(meta *fileMeta) {
	for i, id := range meta.blocks {
		for _, nd := range meta.placement[i] {
			delete(s.nodes[nd].blocks, id)
		}
	}
}

// Get reads a whole file back, surviving any failure pattern that leaves at
// least one replica per block.
func (s *Store) Get(name string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	meta, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	var buf bytes.Buffer
	buf.Grow(meta.size)
	for i, id := range meta.blocks {
		var block []byte
		found := false
		for _, nd := range meta.placement[i] {
			if s.nodes[nd].alive {
				if b, ok := s.nodes[nd].blocks[id]; ok {
					block, found = b, true
					break
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %s block %d", ErrUnavailable, name, i)
		}
		buf.Write(block)
	}
	return buf.Bytes(), nil
}

// Delete removes a file.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, ok := s.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	s.dropLocked(meta)
	delete(s.files, name)
	return nil
}

// List returns the stored file names, sorted.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KillNode marks a node dead. Its blocks become unreadable until
// Rereplicate or Reviving.
func (s *Store) KillNode(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("dfs: no node %d", id)
	}
	s.nodes[id].alive = false
	return nil
}

// ReviveNode brings a dead node back (its blocks intact, as after a
// machine reboot).
func (s *Store) ReviveNode(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("dfs: no node %d", id)
	}
	s.nodes[id].alive = true
	return nil
}

// Rereplicate restores the replication factor after failures: every block
// with fewer than R live replicas is copied to additional live nodes. It
// returns the number of block copies created, and an error if any block has
// no live replica left to copy from.
func (s *Store) Rereplicate() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	copies := 0
	for name, meta := range s.files {
		for i, id := range meta.blocks {
			liveHolders := meta.placement[i][:0:0]
			var data []byte
			for _, nd := range meta.placement[i] {
				if s.nodes[nd].alive {
					if b, ok := s.nodes[nd].blocks[id]; ok {
						liveHolders = append(liveHolders, nd)
						data = b
					}
				}
			}
			if len(liveHolders) == 0 {
				return copies, fmt.Errorf("%w: %s block %d", ErrUnavailable, name, i)
			}
			want := s.replicas
			holderSet := map[int]bool{}
			for _, nd := range liveHolders {
				holderSet[nd] = true
			}
			for _, nd := range s.aliveNodes() {
				if len(liveHolders) >= want {
					break
				}
				if holderSet[nd] {
					continue
				}
				s.nodes[nd].blocks[id] = data
				liveHolders = append(liveHolders, nd)
				holderSet[nd] = true
				copies++
			}
			meta.placement[i] = liveHolders
		}
	}
	return copies, nil
}

// Stats describes the store's health.
type Stats struct {
	Nodes        int
	AliveNodes   int
	Files        int
	Blocks       int
	UnderReplica int // blocks below the replication factor
}

// Stats reports current health.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Nodes: len(s.nodes), Files: len(s.files)}
	for _, nd := range s.nodes {
		if nd.alive {
			st.AliveNodes++
		}
	}
	for _, meta := range s.files {
		for i := range meta.blocks {
			st.Blocks++
			live := 0
			for _, nd := range meta.placement[i] {
				if s.nodes[nd].alive {
					if _, ok := s.nodes[nd].blocks[meta.blocks[i]]; ok {
						live++
					}
				}
			}
			if live < s.replicas {
				st.UnderReplica++
			}
		}
	}
	return st
}

// Open returns a reader over a stored file (io.Reader convenience for the
// checkpoint and graph loaders).
func (s *Store) Open(name string) (io.Reader, error) {
	data, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

// Create buffers writes and stores the file on Close.
type writer struct {
	s    *Store
	name string
	buf  bytes.Buffer
}

// Create returns a WriteCloser that commits the file atomically on Close.
func (s *Store) Create(name string) io.WriteCloser {
	return &writer{s: s, name: name}
}

func (w *writer) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *writer) Close() error { return w.s.Put(w.name, w.buf.Bytes()) }
