package dfs

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"

	"cyclops/internal/algorithms"
	"cyclops/internal/checkpoint"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := New(4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog, twice over")
	if err := s.Put("a.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyFile(t *testing.T) {
	s, _ := New(2, 2, 16)
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestMissingFile(t *testing.T) {
	s, _ := New(2, 1, 0)
	if _, err := s.Get("ghost"); err == nil {
		t.Fatal("missing file must error")
	}
	if err := s.Delete("ghost"); err == nil {
		t.Fatal("deleting a missing file must error")
	}
}

func TestOverwriteReleasesOldBlocks(t *testing.T) {
	s, _ := New(3, 2, 8)
	if err := s.Put("f", bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	blocksBefore := s.Stats().Blocks
	if err := s.Put("f", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().Blocks; after >= blocksBefore {
		t.Fatalf("blocks %d → %d; overwrite must release old blocks", blocksBefore, after)
	}
	got, _ := s.Get("f")
	if string(got) != "tiny" {
		t.Fatalf("got %q", got)
	}
}

func TestSurvivesSingleNodeFailure(t *testing.T) {
	s, _ := New(4, 2, 8)
	data := bytes.Repeat([]byte("abcdefgh"), 50)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	for victim := 0; victim < 4; victim++ {
		if err := s.KillNode(victim); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("f")
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("victim %d: corrupted read", victim)
		}
		s.ReviveNode(victim)
	}
}

func TestRereplicationRestoresFactor(t *testing.T) {
	s, _ := New(5, 3, 8)
	if err := s.Put("f", bytes.Repeat([]byte("z"), 200)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.UnderReplica != 0 {
		t.Fatalf("fresh file under-replicated: %+v", st)
	}
	s.KillNode(0)
	if st := s.Stats(); st.UnderReplica == 0 {
		t.Skip("node 0 held no replicas (placement spread them elsewhere)")
	}
	copies, err := s.Rereplicate()
	if err != nil {
		t.Fatal(err)
	}
	if copies == 0 {
		t.Fatal("expected re-replication copies")
	}
	if st := s.Stats(); st.UnderReplica != 0 {
		t.Fatalf("still under-replicated: %+v", st)
	}
	// Now even losing a second node keeps the file readable.
	s.KillNode(1)
	if _, err := s.Get("f"); err != nil {
		t.Fatalf("read after two failures: %v", err)
	}
}

func TestAllReplicasLost(t *testing.T) {
	s, _ := New(2, 1, 8) // replication factor 1: any failure loses data
	if err := s.Put("f", bytes.Repeat([]byte("q"), 64)); err != nil {
		t.Fatal(err)
	}
	s.KillNode(0)
	s.KillNode(1)
	if _, err := s.Get("f"); err == nil {
		t.Fatal("reading with all nodes dead must fail")
	}
	if _, err := s.Rereplicate(); err == nil {
		t.Fatal("re-replication without any live replica must fail")
	}
}

func TestListAndWriter(t *testing.T) {
	s, _ := New(3, 2, 0)
	w := s.Create("dir/file1")
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s.Put("dir/file0", []byte("x"))
	names := s.List()
	if len(names) != 2 || names[0] != "dir/file0" || names[1] != "dir/file1" {
		t.Fatalf("List = %v", names)
	}
	r, err := s.Open("dir/file1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello world" {
		t.Fatalf("Open read %q", buf.String())
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(0, 1, 0); err == nil {
		t.Fatal("zero nodes must error")
	}
	s, err := New(2, 9, 0) // replicas clamp to node count
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.KillNode(99); err == nil {
		t.Fatal("bad node id must error")
	}
	if err := s.ReviveNode(-1); err == nil {
		t.Fatal("bad node id must error")
	}
}

// Property: any file round-trips under any single-node failure when R ≥ 2.
func TestDurabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(rng.Intn(4)+2, 2, rng.Intn(32)+4)
		if err != nil {
			return false
		}
		data := make([]byte, rng.Intn(500))
		rng.Read(data)
		if s.Put("f", data) != nil {
			return false
		}
		victim := rng.Intn(s.Stats().Nodes)
		s.KillNode(victim)
		got, err := s.Get("f")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: engine checkpoints flow through the distributed store, a
// storage node dies, and the job still recovers — the full §3.6 story with
// the HDFS stand-in in the loop.
func TestCheckpointThroughDFS(t *testing.T) {
	g := gen.PowerLaw(200, 4, 6)
	store, _ := New(4, 2, 1024)
	const iters = 10

	save := func(s cyclops.State[float64, float64]) error {
		w := store.Create(checkpointName(s.Step))
		if err := gob.NewEncoder(w).Encode(&s); err != nil {
			return err
		}
		return w.(interface{ Close() error }).Close()
	}

	full, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{},
		cyclops.Config[float64, float64]{Cluster: cluster.Flat(2, 2), MaxSupersteps: iters})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}

	crash, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{},
		cyclops.Config[float64, float64]{
			Cluster: cluster.Flat(2, 2), MaxSupersteps: 7,
			CheckpointEvery: 3, Checkpoints: save,
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crash.Run(); err != nil {
		t.Fatal(err)
	}

	// A storage node dies along with the compute node.
	store.KillNode(1)

	names := store.List()
	if len(names) == 0 {
		t.Fatal("no checkpoints stored")
	}
	r, err := store.Open(names[len(names)-1])
	if err != nil {
		t.Fatalf("checkpoint unreadable after node failure: %v", err)
	}
	var state cyclops.State[float64, float64]
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		t.Fatal(err)
	}
	rec, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{},
		cyclops.Config[float64, float64]{Cluster: cluster.Flat(2, 2), MaxSupersteps: iters})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(state); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Run(); err != nil {
		t.Fatal(err)
	}
	want, got := full.Values(), rec.Values()
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("vertex %d: %g vs %g", v, got[v], want[v])
		}
	}
}

func checkpointName(step int) string {
	const digits = "0123456789"
	return "ckpt/step-" + string([]byte{
		digits[(step/100)%10], digits[(step/10)%10], digits[step%10],
	})
}

// Ensure checkpoint package interop: its Steps/Save work on real dirs, the
// dfs Store covers the distributed path; both hold the same gob payloads.
func TestGobPayloadCompatibility(t *testing.T) {
	dir := t.TempDir()
	state := cyclops.State[float64, float64]{Step: 3, Values: []float64{1}, View: []float64{2}, Active: []bool{true}}
	if err := checkpoint.Save(dir, 3, state); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load[cyclops.State[float64, float64]](dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != 3 || loaded.Values[0] != 1 {
		t.Fatalf("loaded %+v", loaded)
	}
}
