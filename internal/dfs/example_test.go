package dfs_test

import (
	"fmt"

	"cyclops/internal/dfs"
)

// Example stores a file across four nodes with two replicas per block,
// loses a node, repairs the replication factor, and reads the file back.
func Example() {
	store, err := dfs.New(4, 2, 8)
	if err != nil {
		panic(err)
	}
	if err := store.Put("graphs/web.txt", []byte("0 1\n1 2\n2 0\n")); err != nil {
		panic(err)
	}

	store.KillNode(0)
	data, err := store.Get("graphs/web.txt")
	fmt.Printf("after failure: read %d bytes, err=%v\n", len(data), err)

	copies, err := store.Rereplicate()
	if err != nil {
		panic(err)
	}
	st := store.Stats()
	fmt.Printf("re-replicated %d block copies; under-replicated blocks: %d\n",
		copies, st.UnderReplica)
	// Output:
	// after failure: read 12 bytes, err=<nil>
	// re-replicated 1 block copies; under-replicated blocks: 0
}
