// Package cluster describes the simulated machine topology. The paper's
// testbed is 6 machines × 12 cores; configurations are written MxWxT/R as in
// Figure 12 — M machines, W workers per machine, T compute threads and R
// receiver threads per worker. Hama and flat Cyclops use W single-threaded
// workers per machine (MxWx1); CyclopsMT uses one worker per machine with
// several threads (Mx1xT/R).
package cluster

import "fmt"

// Config is a cluster topology.
type Config struct {
	// Machines is the number of simulated machines (M).
	Machines int
	// WorkersPerMachine is W; each worker owns one graph partition.
	WorkersPerMachine int
	// Threads is T, the compute threads inside each worker.
	Threads int
	// Receivers is R, the message-receiver threads inside each worker.
	Receivers int
}

// Flat returns the topology of n single-threaded workers spread over
// `machines` machines — the Hama / flat-Cyclops shape.
func Flat(machines, workersPerMachine int) Config {
	return Config{Machines: machines, WorkersPerMachine: workersPerMachine, Threads: 1, Receivers: 1}
}

// MT returns the CyclopsMT topology: one worker per machine with t compute
// threads and r receivers.
func MT(machines, t, r int) Config {
	return Config{Machines: machines, WorkersPerMachine: 1, Threads: t, Receivers: r}
}

// Normalize fills zero fields with 1 so a zero-ish Config is usable.
func (c Config) Normalize() Config {
	if c.Machines < 1 {
		c.Machines = 1
	}
	if c.WorkersPerMachine < 1 {
		c.WorkersPerMachine = 1
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.Receivers < 1 {
		c.Receivers = 1
	}
	return c
}

// Workers reports the number of workers (= graph partitions) in the cluster.
func (c Config) Workers() int {
	n := c.Normalize()
	return n.Machines * n.WorkersPerMachine
}

// TotalThreads reports the total compute parallelism, the x-axis of
// Figure 9(2) (the paper labels CyclopsMT by total threads).
func (c Config) TotalThreads() int {
	n := c.Normalize()
	return n.Machines * n.WorkersPerMachine * n.Threads
}

// MachineOf maps a worker index to its machine.
func (c Config) MachineOf(worker int) int {
	n := c.Normalize()
	return worker / n.WorkersPerMachine
}

// String renders the Figure 12 label, e.g. "6x8x1" or "6x1x8/2".
func (c Config) String() string {
	n := c.Normalize()
	if n.Receivers > 1 {
		return fmt.Sprintf("%dx%dx%d/%d", n.Machines, n.WorkersPerMachine, n.Threads, n.Receivers)
	}
	return fmt.Sprintf("%dx%dx%d", n.Machines, n.WorkersPerMachine, n.Threads)
}
