package cluster

import "testing"

func TestFlat(t *testing.T) {
	c := Flat(6, 8)
	if c.Workers() != 48 || c.TotalThreads() != 48 {
		t.Fatalf("Flat(6,8) = %+v", c)
	}
	if c.String() != "6x8x1" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestMT(t *testing.T) {
	c := MT(6, 8, 2)
	if c.Workers() != 6 {
		t.Fatalf("MT workers = %d", c.Workers())
	}
	if c.TotalThreads() != 48 {
		t.Fatalf("MT total threads = %d", c.TotalThreads())
	}
	if c.String() != "6x1x8/2" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestNormalizeZero(t *testing.T) {
	var c Config
	if c.Workers() != 1 || c.TotalThreads() != 1 {
		t.Fatalf("zero config = %+v", c.Normalize())
	}
	if c.String() != "1x1x1" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestMachineOf(t *testing.T) {
	c := Flat(3, 4)
	cases := map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 11: 2}
	for w, m := range cases {
		if got := c.MachineOf(w); got != m {
			t.Errorf("MachineOf(%d) = %d, want %d", w, got, m)
		}
	}
}

func TestSingleReceiverOmittedFromLabel(t *testing.T) {
	if got := MT(6, 4, 1).String(); got != "6x1x4" {
		t.Fatalf("String = %q", got)
	}
}
