package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// Server is the live diagnostics endpoint: Prometheus-text /metrics, JSONL
// /trace, the worker×worker traffic matrix on /comm, recorded runs on /runs,
// and net/http/pprof under /debug/pprof/. It is opt-in (the -debug-addr flag
// on cmd/cyclops-run and cmd/cyclops-bench) and serves while supersteps
// advance, so a stuck or slow run can be inspected instead of silently
// spinning.
type Server struct {
	reg  *Registry
	ring *Ring
	ln   net.Listener
	srv  *http.Server
}

// formatVariant is one rendering a handler offers under ?format=.
type formatVariant struct {
	contentType string
	render      func(w http.ResponseWriter) error
}

// serveFormat is the shared ?format= content negotiation for the diagnostic
// endpoints (/comm, /mem, /spans, /heat). The empty format aliases "json";
// an unknown format is a 400 naming the accepted ones.
func serveFormat(w http.ResponseWriter, r *http.Request, variants map[string]formatVariant) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	v, ok := variants[format]
	if !ok {
		names := make([]string, 0, len(variants))
		for name := range variants {
			names = append(names, name)
		}
		sort.Strings(names)
		http.Error(w, fmt.Sprintf("unknown format %q (want %s)", format, strings.Join(names, ", ")),
			http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", v.contentType)
	v.render(w) //nolint:errcheck // best-effort HTTP response
}

// NewMux builds the diagnostics routes. reg, ring, comm, spans, mem and heat
// may each be nil and runsDir/profileDir empty; the corresponding endpoint
// then reports 404.
func NewMux(reg *Registry, ring *Ring, comm *CommTracker, runsDir string,
	spans *SpanTracker, profileDir string, mem *MemTracker, heat *HeatTracker) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "cyclops diagnostics\n\n/metrics\n/trace\n/comm\n/mem\n/heat\n/spans\n/runs\n/profiles\n/debug/pprof/\n")
	})
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WriteTo(w)
		})
	}
	if ring != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			ring.WriteTo(w)
		})
	}
	if comm != nil {
		mux.Handle("/comm", comm)
	}
	if mem != nil {
		// /mem is the live memory observatory: per-superstep, per-phase
		// allocation telemetry of the latest run, JSON by default,
		// ?format=csv for the mem.csv rendering.
		mux.Handle("/mem", mem)
	}
	if heat != nil {
		// /heat is the live heat observatory: per-partition interior/boundary
		// traffic and replica-sync rows plus the cumulative top-k hot-vertex
		// set, JSON by default, ?format=csv for heat.csv rows, ?format=hotcsv
		// for the hot set.
		mux.Handle("/heat", heat)
	}
	if spans != nil {
		// /spans is the live causal-span waterfall: JSON by default,
		// ?format=text for the plain-text rendering, ?step=N to focus one
		// superstep.
		mux.Handle("/spans", spans)
	}
	if profileDir != "" {
		// /profiles serves the continuous-profiling harvest: index.json and
		// the rotated pprof captures.
		mux.Handle("/profiles/", http.StripPrefix("/profiles/", http.FileServer(http.Dir(profileDir))))
		mux.Handle("/profiles", http.RedirectHandler("/profiles/index.json", http.StatusTemporaryRedirect))
	}
	if runsDir != "" {
		// /runs lists the recorded runs' manifests as JSON; /runs/<run>/<file>
		// serves the flight-record artifacts (manifest.json, series.csv,
		// timings.csv) straight from the record directory.
		mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
			ms, err := ReadManifests(runsDir)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if ms == nil {
				ms = []Manifest{}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(ms) //nolint:errcheck // best-effort HTTP response
		})
		files := http.StripPrefix("/runs/", http.FileServer(http.Dir(runsDir)))
		mux.HandleFunc("/runs/", func(w http.ResponseWriter, r *http.Request) {
			// Only run directories are exposed, not arbitrary siblings.
			rest := strings.TrimPrefix(r.URL.Path, "/runs/")
			if !strings.HasPrefix(rest, "run-") {
				http.NotFound(w, r)
				return
			}
			files.ServeHTTP(w, r)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the diagnostics server on addr (e.g. "localhost:6060", or
// ":0" for an ephemeral port) and returns immediately; requests are handled
// on a background goroutine until Close or Shutdown. runsDir may be empty
// (no /runs endpoint).
func Serve(addr string, reg *Registry, ring *Ring, comm *CommTracker, runsDir string,
	spans *SpanTracker, profileDir string, mem *MemTracker, heat *HeatTracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		reg:  reg,
		ring: ring,
		ln:   ln,
		srv: &http.Server{
			Handler:           NewMux(reg, ring, comm, runsDir, spans, profileDir, mem, heat),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL reports the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener immediately, dropping in-flight requests. Prefer
// Shutdown on orderly exit paths so a /metrics scrape racing the process exit
// still completes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight requests
// to finish, up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
