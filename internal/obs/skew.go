package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"cyclops/internal/metrics"
)

// SkewProfiler folds the per-worker WorkerStats stream into per-superstep
// imbalance coefficients: max/mean across workers of compute units, sent and
// received messages, and active vertices, plus the static replica-placement
// imbalance from RunInfo.WorkerReplicas. A coefficient of 1.0 means
// perfectly balanced; k means the most loaded worker carries k× the average
// — the quantity behind the paper's load-balance discussion (Fig 10(3)
// per-worker) and Ammar & Özsu's per-worker breakdown methodology.
//
// When built with a Registry, the latest coefficients are also exported on
// /metrics as cyclops_skew_imbalance{metric=...}.
type SkewProfiler struct {
	Nop // no-op for the hook points the profiler does not consume

	reg *Registry

	mu      sync.Mutex
	cur     *SkewReport
	pending map[int][]WorkerStats // step → per-worker stats not yet folded
	reports []SkewReport
}

// SkewStep holds one superstep's imbalance coefficients (max/mean across
// workers; 1.0 when the superstep had no such load at all).
type SkewStep struct {
	Step     int
	Compute  float64
	Sent     float64
	Received float64
	Active   float64
}

// SkewReport is one run's skew profile.
type SkewReport struct {
	Engine  string
	Workers int
	// Replicas is the replica/mirror placement imbalance (max/mean across
	// workers); 1.0 for engines without a replicated view.
	Replicas float64
	Steps    []SkewStep
}

// NewSkewProfiler returns a profiler. reg may be nil; when set, the latest
// coefficients are exported as gauges.
func NewSkewProfiler(reg *Registry) *SkewProfiler {
	return &SkewProfiler{reg: reg}
}

// imbalance is max/mean over xs; 1 when the values sum to zero (a uniformly
// idle metric is balanced, not infinitely skewed). The mean<=0 guard keeps
// the coefficient finite even for pathological inputs (e.g. a counter that
// went negative): every path returns a finite value ≥ 0, never NaN or ±Inf.
func imbalance(xs []int64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, max int64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(xs))
	if mean <= 0 {
		return 1
	}
	return float64(max) / mean
}

// OnRunStart implements Hooks: opens a new report.
func (p *SkewProfiler) OnRunStart(info RunInfo) {
	p.mu.Lock()
	p.cur = &SkewReport{
		Engine:   info.Engine,
		Workers:  info.Workers,
		Replicas: imbalance(info.WorkerReplicas),
	}
	p.pending = make(map[int][]WorkerStats)
	p.mu.Unlock()
	p.gauge("replicas", p.cur.Replicas)
}

// OnWorkerStats implements Hooks: buffers one worker's share of a superstep.
func (p *SkewProfiler) OnWorkerStats(ws WorkerStats) {
	p.mu.Lock()
	if p.pending != nil {
		p.pending[ws.Step] = append(p.pending[ws.Step], ws)
	}
	p.mu.Unlock()
}

// OnSuperstepEnd implements Hooks: folds the superstep's buffered worker
// stats into one SkewStep.
func (p *SkewProfiler) OnSuperstepEnd(step int, _ metrics.StepStats) {
	p.mu.Lock()
	if p.cur == nil {
		p.mu.Unlock()
		return
	}
	stats := p.pending[step]
	delete(p.pending, step)
	compute := make([]int64, len(stats))
	sent := make([]int64, len(stats))
	recv := make([]int64, len(stats))
	active := make([]int64, len(stats))
	for i, ws := range stats {
		compute[i] = ws.ComputeUnits
		sent[i] = ws.Sent
		recv[i] = ws.Received
		active[i] = ws.Active
	}
	st := SkewStep{
		Step:     step,
		Compute:  imbalance(compute),
		Sent:     imbalance(sent),
		Received: imbalance(recv),
		Active:   imbalance(active),
	}
	p.cur.Steps = append(p.cur.Steps, st)
	p.mu.Unlock()

	p.gauge("compute", st.Compute)
	p.gauge("sent", st.Sent)
	p.gauge("received", st.Received)
	p.gauge("active", st.Active)
}

// OnConverged implements Hooks: closes the report.
func (p *SkewProfiler) OnConverged(int, string) {
	p.mu.Lock()
	if p.cur != nil {
		p.reports = append(p.reports, *p.cur)
		p.cur = nil
		p.pending = nil
	}
	p.mu.Unlock()
}

func (p *SkewProfiler) gauge(metric string, v float64) {
	if p.reg != nil {
		p.reg.LabeledGauge(MetricSkew,
			"Per-superstep load imbalance, max/mean across workers (1 = balanced).",
			"metric", metric).Set(v)
	}
}

// Reports returns the completed runs' skew profiles.
func (p *SkewProfiler) Reports() []SkewReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]SkewReport(nil), p.reports...)
	if p.cur != nil { // a run in flight still has a partial report
		out = append(out, *p.cur)
	}
	return out
}

// maxSteps reduces a report's steps element-wise to their maxima.
func (r SkewReport) maxSteps() SkewStep {
	var m SkewStep
	for _, s := range r.Steps {
		if s.Compute > m.Compute {
			m.Compute = s.Compute
		}
		if s.Sent > m.Sent {
			m.Sent = s.Sent
		}
		if s.Received > m.Received {
			m.Received = s.Received
		}
		if s.Active > m.Active {
			m.Active = s.Active
		}
	}
	return m
}

// String summarises the report in one line: the worst per-superstep
// coefficient of each metric plus the static replica imbalance.
func (r SkewReport) String() string {
	m := r.maxSteps()
	return fmt.Sprintf(
		"%s: %d workers, %d supersteps, skew max/mean peak: compute %.2f, sent %.2f, received %.2f, active %.2f, replicas %.2f",
		r.Engine, r.Workers, len(r.Steps), m.Compute, m.Sent, m.Received, m.Active, r.Replicas)
}

// WriteTable renders the per-superstep coefficients as an aligned table.
func (r SkewReport) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "skew profile: %s, %d workers (replica imbalance %.2f)\n",
		r.Engine, r.Workers, r.Replicas)
	fmt.Fprintf(&b, "%6s %9s %9s %9s %9s\n", "step", "compute", "sent", "received", "active")
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "%6d %9.2f %9.2f %9.2f %9.2f\n",
			s.Step, s.Compute, s.Sent, s.Received, s.Active)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
