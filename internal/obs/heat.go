// Heat observatory: per-partition and per-vertex hot-spot attribution.
//
// Every telemetry layer before this one (comm matrices, spans, critpath,
// mem.csv) stops at worker granularity, so the flight recorder could say
// *which* worker gated a superstep but not *why*. The heat stream carries the
// missing dimension: per-partition per-superstep rows splitting the traffic
// into interior vs boundary and isolating replica-sync volume (the paper's
// §3.4 accounting), plus a deterministic exact top-k hot-vertex set — the
// per-vertex skew signal Fig 11 correlates with edge-cut and replica count.
// Everything here is a count, never a clock: heat.csv and hotset.csv are
// byte-identical across same-seed runs (wall time stays quarantined in
// timings.csv).
package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cyclops/internal/transport"
)

// HeatPartition is one worker's heat row for one superstep. All fields are
// deterministic counts.
type HeatPartition struct {
	Step   int `json:"step"`
	Worker int `json:"worker"`
	// Active is the number of the worker's vertices that computed this
	// superstep.
	Active int64 `json:"active"`
	// ComputeUnits is the number of edges the worker scanned in compute.
	ComputeUnits int64 `json:"compute_units"`
	// OutInterior/OutBoundary split the worker's sent messages by whether
	// they stayed on-worker (the traffic-matrix diagonal) or crossed a
	// partition boundary; InInterior/InBoundary are the receive side.
	// Interior is identical on both sides by construction.
	OutInterior int64 `json:"out_interior"`
	OutBoundary int64 `json:"out_boundary"`
	InInterior  int64 `json:"in_interior"`
	InBoundary  int64 `json:"in_boundary"`
	// ReplicaSync is the worker's replicated-view maintenance traffic this
	// superstep: replica value syncs (cyclops), mirror apply-pushes (gas);
	// zero for engines without a replicated view (hama).
	ReplicaSync int64 `json:"replica_sync"`
}

// HotVertex is one entry of the cumulative top-k hot-vertex set.
type HotVertex struct {
	// Vertex is the global vertex id, Worker the partition owning its master.
	Vertex int64 `json:"vertex"`
	Worker int   `json:"worker"`
	// Msgs is the cumulative message volume the vertex has caused so far
	// (sends in hama, replica syncs in cyclops, mirror exchanges in gas);
	// Units is its cumulative compute volume (edges scanned).
	Msgs  int64 `json:"msgs"`
	Units int64 `json:"units"`
}

// HeatStepData is one superstep's heat payload, assembled at the barrier by
// every engine and fanned out through Hooks.OnHeat.
type HeatStepData struct {
	Step int `json:"step"`
	// Partitions holds one row per worker, in worker order.
	Partitions []HeatPartition `json:"partitions"`
	// Hot is the cumulative top-k hot-vertex set as of this superstep,
	// ordered by Msgs descending, then vertex id ascending — a total order,
	// so the set is byte-identical across same-seed runs even under ties.
	Hot []HotVertex `json:"hot"`
}

// DefaultHotK is the hot-set size engines track: large enough to expose the
// power-law head Fig 11 cares about, small enough to scan per barrier.
const DefaultHotK = 16

// BuildHeatPartitions derives a superstep's heat rows from the superstep's
// traffic-matrix delta and the engine's per-worker counters. The diagonal of
// the delta is interior traffic; everything off-diagonal is boundary. active,
// units and sync are indexed by worker; sync may be nil (no replicated view).
func BuildHeatPartitions(step int, delta transport.MatrixSnapshot, active, units, sync []int64) []HeatPartition {
	n := len(active)
	rows := make([]HeatPartition, n)
	for w := 0; w < n; w++ {
		r := HeatPartition{Step: step, Worker: w, Active: active[w], ComputeUnits: units[w]}
		if w < len(delta.Messages) {
			diag := delta.Messages[w][w]
			r.OutInterior, r.InInterior = diag, diag
			for t, v := range delta.Messages[w] {
				if t != w {
					r.OutBoundary += v
				}
			}
			for f := range delta.Messages {
				if f != w {
					r.InBoundary += delta.Messages[f][w]
				}
			}
		}
		if sync != nil {
			r.ReplicaSync = sync[w]
		}
		rows[w] = r
	}
	return rows
}

// TopHotVertices scans cumulative per-vertex counters and returns the exact
// top-k by (Msgs desc, Vertex asc) — a total order, so ties cannot reorder
// across runs. Vertices with no traffic and no compute are excluded; fewer
// than k qualifying vertices yield a shorter set. ownerOf maps a vertex to
// the worker holding its master.
func TopHotVertices(msgs, units []int64, ownerOf func(v int) int, k int) []HotVertex {
	if k <= 0 {
		return nil
	}
	hot := make([]HotVertex, 0, k+1)
	less := func(a, b HotVertex) bool {
		if a.Msgs != b.Msgs {
			return a.Msgs > b.Msgs
		}
		return a.Vertex < b.Vertex
	}
	for v := range msgs {
		m, u := msgs[v], units[v]
		if m == 0 && u == 0 {
			continue
		}
		cand := HotVertex{Vertex: int64(v), Worker: ownerOf(v), Msgs: m, Units: u}
		if len(hot) == k && !less(cand, hot[k-1]) {
			continue
		}
		i := sort.Search(len(hot), func(i int) bool { return less(cand, hot[i]) })
		hot = append(hot, HotVertex{})
		copy(hot[i+1:], hot[i:])
		hot[i] = cand
		if len(hot) > k {
			hot = hot[:k]
		}
	}
	return hot
}

// HeatCSVHeader is the schema of heat.csv: one row per (superstep, worker),
// deterministic counts only.
const HeatCSVHeader = "step,worker,active,compute_units,out_interior,out_boundary,in_interior,in_boundary,replica_sync"

// EncodeHeatCSV renders heat rows as heat.csv. Same rows in, same bytes out.
func EncodeHeatCSV(rows []HeatPartition) []byte {
	var b strings.Builder
	b.WriteString(HeatCSVHeader)
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strconv.Itoa(r.Step))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(r.Worker))
		for _, v := range [...]int64{r.Active, r.ComputeUnits,
			r.OutInterior, r.OutBoundary, r.InInterior, r.InBoundary, r.ReplicaSync} {
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(v, 10))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseHeatCSV reads heat.csv back. Strict: the header and every row must
// match the schema exactly, so Encode/Parse round-trips byte-for-byte.
func ParseHeatCSV(blob []byte) ([]HeatPartition, error) {
	lines := strings.Split(strings.TrimSuffix(string(blob), "\n"), "\n")
	if len(lines) == 0 || lines[0] != HeatCSVHeader {
		return nil, fmt.Errorf("obs: not a heat.csv (header %q)", lines[0])
	}
	var rows []HeatPartition
	for ln, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 9 {
			return nil, fmt.Errorf("obs: heat.csv row %d has %d fields, want 9", ln+2, len(f))
		}
		var vals [9]int64
		for i, s := range f {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: heat.csv row %d field %d: %w", ln+2, i+1, err)
			}
			vals[i] = v
		}
		rows = append(rows, HeatPartition{
			Step: int(vals[0]), Worker: int(vals[1]), Active: vals[2],
			ComputeUnits: vals[3], OutInterior: vals[4], OutBoundary: vals[5],
			InInterior: vals[6], InBoundary: vals[7], ReplicaSync: vals[8],
		})
	}
	return rows, nil
}

// HotsetCSVHeader is the schema of hotset.csv: the run's final top-k
// hot-vertex set, rank 1 first.
const HotsetCSVHeader = "rank,vertex,worker,msgs,units"

// EncodeHotsetCSV renders a hot-vertex set as hotset.csv.
func EncodeHotsetCSV(hot []HotVertex) []byte {
	var b strings.Builder
	b.WriteString(HotsetCSVHeader)
	b.WriteByte('\n')
	for i, h := range hot {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d\n", i+1, h.Vertex, h.Worker, h.Msgs, h.Units)
	}
	return []byte(b.String())
}

// ParseHotsetCSV reads hotset.csv back, verifying the rank column is the
// contiguous 1..n sequence the encoder wrote.
func ParseHotsetCSV(blob []byte) ([]HotVertex, error) {
	lines := strings.Split(strings.TrimSuffix(string(blob), "\n"), "\n")
	if len(lines) == 0 || lines[0] != HotsetCSVHeader {
		return nil, fmt.Errorf("obs: not a hotset.csv (header %q)", lines[0])
	}
	var hot []HotVertex
	for ln, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 5 {
			return nil, fmt.Errorf("obs: hotset.csv row %d has %d fields, want 5", ln+2, len(f))
		}
		var vals [5]int64
		for i, s := range f {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: hotset.csv row %d field %d: %w", ln+2, i+1, err)
			}
			vals[i] = v
		}
		if vals[0] != int64(ln+1) {
			return nil, fmt.Errorf("obs: hotset.csv row %d has rank %d, want %d", ln+2, vals[0], ln+1)
		}
		hot = append(hot, HotVertex{Vertex: vals[1], Worker: int(vals[2]), Msgs: vals[3], Units: vals[4]})
	}
	return hot, nil
}

// HeatTracker accumulates the heat stream for the live /heat endpoint.
type HeatTracker struct {
	Nop // no-op for the hook points the tracker does not consume

	mu     sync.Mutex
	engine string
	rows   []HeatPartition
	hot    []HotVertex
	done   bool
}

// NewHeatTracker returns an empty tracker.
func NewHeatTracker() *HeatTracker { return &HeatTracker{} }

// OnRunStart implements Hooks: a new run resets the accumulated heat.
func (t *HeatTracker) OnRunStart(info RunInfo) {
	t.mu.Lock()
	t.engine = info.Engine
	t.rows = nil
	t.hot = nil
	t.done = false
	t.mu.Unlock()
}

// OnHeat implements Hooks: appends the superstep's rows and replaces the
// cumulative hot set.
func (t *HeatTracker) OnHeat(d HeatStepData) {
	t.mu.Lock()
	t.rows = append(t.rows, d.Partitions...)
	t.hot = append(t.hot[:0], d.Hot...)
	t.mu.Unlock()
}

// OnConverged implements Hooks.
func (t *HeatTracker) OnConverged(int, string) {
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
}

// Rows returns a copy of the accumulated heat rows.
func (t *HeatTracker) Rows() []HeatPartition {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]HeatPartition(nil), t.rows...)
}

// Hot returns a copy of the latest cumulative hot-vertex set.
func (t *HeatTracker) Hot() []HotVertex {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]HotVertex(nil), t.hot...)
}

// heatJSON is the /heat JSON envelope.
type heatJSON struct {
	Engine     string          `json:"engine"`
	Done       bool            `json:"done"`
	Partitions []HeatPartition `json:"partitions"`
	Hot        []HotVertex     `json:"hot"`
}

// ServeHTTP serves the accumulated heat: JSON by default, heat.csv rows with
// ?format=csv (append the hotset with ?format=hotcsv).
func (t *HeatTracker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t.mu.Lock()
	payload := heatJSON{
		Engine:     t.engine,
		Done:       t.done,
		Partitions: append([]HeatPartition(nil), t.rows...),
		Hot:        append([]HotVertex(nil), t.hot...),
	}
	t.mu.Unlock()
	serveFormat(w, r, map[string]formatVariant{
		"json": {contentType: "application/json", render: func(w http.ResponseWriter) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(payload)
		}},
		"csv": {contentType: "text/csv", render: func(w http.ResponseWriter) error {
			_, err := w.Write(EncodeHeatCSV(payload.Partitions))
			return err
		}},
		"hotcsv": {contentType: "text/csv", render: func(w http.ResponseWriter) error {
			_, err := w.Write(EncodeHotsetCSV(payload.Hot))
			return err
		}},
	})
}
