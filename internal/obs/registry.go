package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a minimal Prometheus-text-format metrics registry (the
// exposition format only — no client_golang dependency; the repo is
// standard-library-only). It supports counters, gauges, function-backed
// counters/gauges evaluated at scrape time, and cumulative histograms with
// a single label dimension.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric name: help text, type, and its samples.
type family struct {
	fmu             sync.Mutex // guards samples, fns, hists
	name, help, typ string
	// static samples keyed by rendered label set ("" for unlabelled).
	samples map[string]*sample
	// fn-backed samples are evaluated at scrape time.
	fns map[string]func() float64
	// histograms keyed by label value.
	hists map[string]*histogram
	// histogram metadata.
	label   string
	buckets []float64
}

type sample struct {
	mu sync.Mutex
	v  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			samples: make(map[string]*sample),
			fns:     make(map[string]func() float64),
			hists:   make(map[string]*histogram),
		}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) sample(labels string) *sample {
	s, ok := f.samples[labels]
	if !ok {
		s = &sample{}
		f.samples[labels] = s
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *sample }

// Add increments the counter by v (v must be >= 0).
func (c *Counter) Add(v float64) {
	c.s.mu.Lock()
	c.s.v += v
	c.s.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.v
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter")
	f.fmu.Lock()
	defer f.fmu.Unlock()
	return &Counter{s: f.sample("")}
}

// LabeledCounter registers a counter with one fixed label, e.g.
// LabeledCounter("runs_total", "...", "reason", "halt").
func (r *Registry) LabeledCounter(name, help, label, value string) *Counter {
	f := r.family(name, help, "counter")
	f.fmu.Lock()
	defer f.fmu.Unlock()
	return &Counter{s: f.sample(renderLabels(label, value))}
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *sample }

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.v = v
	g.s.mu.Unlock()
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.v
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge")
	f.fmu.Lock()
	defer f.fmu.Unlock()
	return &Gauge{s: f.sample("")}
}

// LabeledGauge registers a gauge with one fixed label, e.g.
// LabeledGauge("skew", "...", "metric", "compute").
func (r *Registry) LabeledGauge(name, help, label, value string) *Gauge {
	f := r.family(name, help, "gauge")
	f.fmu.Lock()
	defer f.fmu.Unlock()
	return &Gauge{s: f.sample(renderLabels(label, value))}
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "gauge")
	f.fmu.Lock()
	f.fns[""] = fn
	f.fmu.Unlock()
}

// CounterFunc registers a counter evaluated at scrape time (for sources that
// already keep their own monotonic counters, like transport.Stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "counter")
	f.fmu.Lock()
	f.fns[""] = fn
	f.fmu.Unlock()
}

// histogram is a cumulative Prometheus histogram.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket, non-cumulative until render
	sum    float64
	total  uint64
}

// Histogram observes values under one label dimension (e.g. phase="CMP").
type Histogram struct {
	f *family
}

// Observe records v under the given label value.
func (h *Histogram) Observe(label string, v float64) {
	h.f.fmu.Lock()
	hg, ok := h.f.hists[label]
	if !ok {
		hg = &histogram{counts: make([]uint64, len(h.f.buckets))}
		h.f.hists[label] = hg
	}
	h.f.fmu.Unlock()

	hg.mu.Lock()
	for i, ub := range h.f.buckets {
		if v <= ub {
			hg.counts[i]++
			break
		}
	}
	hg.sum += v
	hg.total++
	hg.mu.Unlock()
}

// Histogram registers a histogram with one label dimension and the given
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help, label string, buckets []float64) *Histogram {
	f := r.family(name, help, "histogram")
	f.fmu.Lock()
	if f.buckets == nil {
		f.label = label
		f.buckets = append(append([]float64(nil), buckets...), math.Inf(1))
	}
	f.fmu.Unlock()
	return &Histogram{f: f}
}

// DefaultDurationBuckets spans 100µs .. ~100s in powers of ~4, a good fit
// for superstep phase times from laptop to cluster scale.
func DefaultDurationBuckets() []float64 {
	return []float64{1e-4, 4e-4, 1.6e-3, 6.4e-3, 2.56e-2, 0.1, 0.4, 1.6, 6.4, 25.6, 102.4}
}

// WriteTo renders the registry in the Prometheus text exposition format,
// families and samples sorted for stable output.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (f *family) render(b *strings.Builder) {
	f.fmu.Lock()
	defer f.fmu.Unlock()

	keys := make([]string, 0, len(f.samples)+len(f.fns))
	for k := range f.samples {
		keys = append(keys, k)
	}
	for k := range f.fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var v float64
		if fn, ok := f.fns[k]; ok {
			v = fn()
		} else {
			s := f.samples[k]
			s.mu.Lock()
			v = s.v
			s.mu.Unlock()
		}
		fmt.Fprintf(b, "%s%s %s\n", f.name, k, formatValue(v))
	}

	labels := make([]string, 0, len(f.hists))
	for l := range f.hists {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		h := f.hists[l]
		h.mu.Lock()
		var cum uint64
		for i, ub := range f.buckets {
			cum += h.counts[i]
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n",
				f.name, f.label, l, formatLE(ub), cum)
		}
		fmt.Fprintf(b, "%s_sum{%s=%q} %s\n", f.name, f.label, l, formatValue(h.sum))
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", f.name, f.label, l, h.total)
		h.mu.Unlock()
	}
}

func renderLabels(label, value string) string {
	return "{" + label + "=" + strconv.Quote(value) + "}"
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLE(ub float64) string {
	if math.IsInf(ub, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
