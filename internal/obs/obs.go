// Package obs is the live observability layer: engine-agnostic
// instrumentation hooks, a structured (slog/JSONL) superstep tracer with a
// slow-phase detector, a small Prometheus-text-format metrics registry, and
// an HTTP diagnostics server exposing /metrics, /trace and /debug/pprof.
//
// The paper's evaluation (Figures 9–13) is entirely observational — phase
// breakdowns, message counts, active-vertex curves — but internal/metrics
// only materialises those numbers after a run finishes. This package makes
// the same quantities visible *while* a run executes: every engine accepts
// an obs.Hooks in its Config, and when the field is nil the hot path pays a
// single nil-check per phase (benchmarked in internal/cyclops).
package obs

import (
	"time"

	"cyclops/internal/metrics"
	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// RunInfo describes a run as it starts.
type RunInfo struct {
	// Engine is the engine's trace name ("hama", "cyclops", "cyclopsmt",
	// "powergraph").
	Engine string
	// Workers is the number of simulated workers (= graph partitions).
	Workers int
	// Vertices and Edges describe the input graph.
	Vertices int
	Edges    int
	// Replicas is the replica (Cyclops) or mirror (GAS) count; zero for
	// engines without a replicated view (Hama).
	Replicas int64
	// ReplicaValueBytes is the memory the replicated view spends on cached
	// values: Replicas × sizeof(replica value). It is the deterministic side
	// of the paper's Table 4/5 memory trade (replica bytes vs message-buffer
	// bytes); zero for engines without replicas.
	ReplicaValueBytes int64
	// WorkerReplicas is the per-worker replica/mirror placement (len ==
	// Workers); nil for engines without a replicated view. It feeds the skew
	// profiler's replica-imbalance coefficient.
	WorkerReplicas []int64
	// EdgeCut is the number of edges whose endpoints land on different
	// workers under the run's partitioning — the load-time quality the paper's
	// Fig 11 correlates with replica count and message volume. Zero for the
	// GAS engine (vertex-cut: every edge is worker-local by construction).
	EdgeCut int64
	// PartitionBalance is the load-balance coefficient of the partitioning
	// (max partition load / mean load, ≥ 1; 1 is perfectly even). Edge-cut
	// engines report vertex balance, the vertex-cut engine edge balance.
	PartitionBalance float64
}

// WorkerStats is one worker's share of one superstep — the per-worker
// visibility needed to spot stragglers and skewed partitions live.
type WorkerStats struct {
	Step   int
	Worker int
	// ComputeUnits is the number of edges scanned in the compute phase.
	ComputeUnits int64
	// Sent and Received count this worker's messages this superstep.
	Sent     int64
	Received int64
	// Active is the number of this worker's vertices that computed this
	// superstep.
	Active int64
	// QueueDepth is the number of inbound batches drained this superstep
	// (a proxy for receive-side pressure).
	QueueDepth int64
}

// Termination reasons passed to OnConverged.
const (
	ReasonNoActive      = "no-active"      // no vertex is active
	ReasonHalt          = "halt"           // the Halt function fired
	ReasonMaxSupersteps = "max-supersteps" // the superstep budget ran out
	ReasonAuditFailed   = "audit-failed"   // the replica-invariant auditor found a breach
	ReasonFault         = "fault"          // an unrecoverable transport/worker fault
)

// RecoveryEvent describes one checkpoint recovery (§3.6): a transient
// transport/worker fault observed at superstep Step's barrier, rolled back to
// the checkpointed superstep ResumedAt.
type RecoveryEvent struct {
	// Engine is the engine's trace name.
	Engine string
	// Step is the superstep whose barrier observed the fault.
	Step int
	// ResumedAt is the superstep execution rewound to (the checkpoint's
	// next-step field).
	ResumedAt int
	// Attempt numbers the recoveries of this run, starting at 1.
	Attempt int
	// Cause is the transient error that triggered the recovery.
	Cause string
}

// Replayed is the number of supersteps the recovery re-executes: the faulty
// superstep plus everything since the checkpoint.
func (e RecoveryEvent) Replayed() int { return e.Step - e.ResumedAt + 1 }

// Hooks observes an engine run. Implementations must be safe for calls from
// the engine's coordinator goroutine; OnWorkerStats may be called once per
// worker per superstep (always from the coordinator, between barriers).
//
// All engines treat a nil Hooks as "disabled": the only cost on the hot path
// is a nil-check.
type Hooks interface {
	// OnRunStart fires once, before the first superstep.
	OnRunStart(info RunInfo)
	// OnSuperstepStart fires at the top of each superstep.
	OnSuperstepStart(step int)
	// OnSpanStart fires when a causal span opens: the run span after
	// OnRunStart and each superstep span after OnSuperstepStart. Only spans
	// whose end is not yet known are announced — completed per-worker phase
	// spans arrive through OnSpanEnd alone, emitted post-barrier from the
	// coordinator in deterministic worker order.
	OnSpanStart(s span.Span)
	// OnSpanEnd fires when a span completes, with its final duration and
	// weights. Every OnSpanStart is matched by an OnSpanEnd on all return
	// paths (cyclops-lint's hookbalance analyzer enforces the pairing).
	OnSpanEnd(s span.Span)
	// OnPhase fires after each timed phase of a superstep.
	OnPhase(step int, phase metrics.Phase, d time.Duration)
	// OnWorkerStats fires once per worker after the superstep's barriers.
	OnWorkerStats(ws WorkerStats)
	// OnCommMatrix fires once per superstep (before OnSuperstepEnd) with the
	// worker×worker traffic delta of that superstep. Summing the deltas of a
	// run reproduces the transport's cumulative Matrix — and therefore its
	// Stats totals — exactly.
	OnCommMatrix(step int, delta transport.MatrixSnapshot)
	// OnViolation fires once per invariant violation found by the
	// replica-invariant auditor (engines with Config.Audit enabled). The run
	// fails with an AuditError after the violating superstep's hooks.
	OnViolation(v Violation)
	// OnHeat fires once per superstep (between the barrier and
	// OnSuperstepEnd) with the superstep's per-partition heat rows and the
	// cumulative top-k hot-vertex set. Every field is a deterministic count;
	// like OnSuperstepStart, each started superstep reports heat on all
	// return paths (cyclops-lint's hookbalance analyzer enforces the
	// pairing).
	OnHeat(d HeatStepData)
	// OnSuperstepEnd fires with the superstep's aggregate statistics.
	OnSuperstepEnd(step int, stats metrics.StepStats)
	// OnRecovery fires after the engine has restored a checkpoint in
	// response to a transient fault, before the replay resumes.
	OnRecovery(e RecoveryEvent)
	// OnConverged fires once when the run terminates.
	OnConverged(step int, reason string)
}

// Nop is a Hooks that does nothing. Engines treat nil and Nop identically;
// Nop exists so overhead can be benchmarked with the hook calls *taken*.
type Nop struct{}

// OnRunStart implements Hooks.
func (Nop) OnRunStart(RunInfo) {}

// OnSuperstepStart implements Hooks.
func (Nop) OnSuperstepStart(int) {}

// OnSpanStart implements Hooks.
func (Nop) OnSpanStart(span.Span) {}

// OnSpanEnd implements Hooks.
func (Nop) OnSpanEnd(span.Span) {}

// OnPhase implements Hooks.
func (Nop) OnPhase(int, metrics.Phase, time.Duration) {}

// OnWorkerStats implements Hooks.
func (Nop) OnWorkerStats(WorkerStats) {}

// OnCommMatrix implements Hooks.
func (Nop) OnCommMatrix(int, transport.MatrixSnapshot) {}

// OnViolation implements Hooks.
func (Nop) OnViolation(Violation) {}

// OnHeat implements Hooks.
func (Nop) OnHeat(HeatStepData) {}

// OnSuperstepEnd implements Hooks.
func (Nop) OnSuperstepEnd(int, metrics.StepStats) {}

// OnRecovery implements Hooks.
func (Nop) OnRecovery(RecoveryEvent) {}

// OnConverged implements Hooks.
func (Nop) OnConverged(int, string) {}

// multi fans hook calls out to several observers.
type multi []Hooks

// Multi combines hooks, skipping nils. It returns nil when no non-nil hook
// remains (so engines keep their fast path) and the hook itself when only
// one remains.
func Multi(hs ...Hooks) Hooks {
	var m multi
	for _, h := range hs {
		if h != nil {
			m = append(m, h)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

func (m multi) OnRunStart(info RunInfo) {
	for _, h := range m {
		h.OnRunStart(info)
	}
}

func (m multi) OnSuperstepStart(step int) {
	for _, h := range m {
		h.OnSuperstepStart(step)
	}
}

func (m multi) OnSpanStart(s span.Span) {
	for _, h := range m {
		h.OnSpanStart(s)
	}
}

func (m multi) OnSpanEnd(s span.Span) {
	for _, h := range m {
		h.OnSpanEnd(s)
	}
}

func (m multi) OnPhase(step int, phase metrics.Phase, d time.Duration) {
	for _, h := range m {
		h.OnPhase(step, phase, d)
	}
}

func (m multi) OnWorkerStats(ws WorkerStats) {
	for _, h := range m {
		h.OnWorkerStats(ws)
	}
}

func (m multi) OnCommMatrix(step int, delta transport.MatrixSnapshot) {
	for _, h := range m {
		h.OnCommMatrix(step, delta)
	}
}

func (m multi) OnViolation(v Violation) {
	for _, h := range m {
		h.OnViolation(v)
	}
}

func (m multi) OnHeat(d HeatStepData) {
	for _, h := range m {
		h.OnHeat(d)
	}
}

func (m multi) OnSuperstepEnd(step int, stats metrics.StepStats) {
	for _, h := range m {
		h.OnSuperstepEnd(step, stats)
	}
}

func (m multi) OnRecovery(e RecoveryEvent) {
	for _, h := range m {
		h.OnRecovery(e)
	}
}

func (m multi) OnConverged(step int, reason string) {
	for _, h := range m {
		h.OnConverged(step, reason)
	}
}
