package obs

import (
	"io"
	"sync"
)

// Ring is a bounded, concurrency-safe buffer of recent event lines. The
// tracer appends every rendered JSONL event; the diagnostics server's /trace
// endpoint replays the buffer, so the last few thousand events survive even
// when no log file was configured.
type Ring struct {
	mu   sync.Mutex
	buf  [][]byte
	next int
	full bool
}

// NewRing returns a ring holding up to n lines (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([][]byte, n)}
}

// Append stores one line (without trailing newline), evicting the oldest
// line when full. The line is copied.
func (r *Ring) Append(line []byte) {
	cp := append([]byte(nil), line...)
	r.mu.Lock()
	r.buf[r.next] = cp
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports the number of buffered lines.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Lines returns the buffered lines, oldest first.
func (r *Ring) Lines() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out [][]byte
	if r.full {
		out = make([][]byte, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.next]...)
	}
	return out
}

// WriteTo dumps the buffer as newline-terminated lines, oldest first.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, line := range r.Lines() {
		n, err := w.Write(append(line, '\n'))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
