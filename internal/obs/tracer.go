package obs

import (
	"bytes"
	"io"
	"log/slog"
	"sync"
	"time"

	"cyclops/internal/metrics"
	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// TracerOptions tunes a Tracer.
type TracerOptions struct {
	// Level is the minimum level emitted (default slog.LevelInfo). Worker
	// stats are logged at Debug; phases and supersteps at Info; slow phases
	// at Warn.
	Level slog.Leveler
	// SlowFactor k flags any phase slower than k× the trailing mean of that
	// phase's recent durations (default 3; <=1 disables the detector).
	SlowFactor float64
	// SlowMinSamples is how many observations a phase needs before the
	// detector can fire (default 4).
	SlowMinSamples int
	// SlowWindow is the trailing-mean window size (default 32).
	SlowWindow int
	// RingSize bounds the recent-event buffer (default 2048).
	RingSize int
}

func (o TracerOptions) normalize() TracerOptions {
	if o.Level == nil {
		o.Level = slog.LevelInfo
	}
	if o.SlowFactor == 0 {
		o.SlowFactor = 3
	}
	if o.SlowMinSamples <= 0 {
		o.SlowMinSamples = 4
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = 32
	}
	if o.RingSize <= 0 {
		o.RingSize = 2048
	}
	return o
}

// phaseWindow keeps a trailing window of durations for one (engine, phase).
type phaseWindow struct {
	samples []time.Duration
	next    int
	full    bool
	sum     time.Duration
}

func (p *phaseWindow) observe(d time.Duration) {
	if p.full {
		p.sum -= p.samples[p.next]
	}
	if len(p.samples) < cap(p.samples) {
		p.samples = p.samples[:len(p.samples)+1]
	}
	p.samples[p.next] = d
	p.sum += d
	p.next = (p.next + 1) % cap(p.samples)
	if p.next == 0 {
		p.full = true
	}
}

func (p *phaseWindow) count() int { return len(p.samples) }

func (p *phaseWindow) mean() time.Duration {
	if len(p.samples) == 0 {
		return 0
	}
	return p.sum / time.Duration(len(p.samples))
}

// Tracer is a structured event tracer implementing Hooks. Events are
// rendered as JSONL through log/slog with span-like fields (run → step →
// phase), mirrored into a ring buffer for the /trace endpoint, and a
// configurable slow-phase detector warns about any phase exceeding k× the
// trailing mean of its own recent history.
//
// A Tracer may outlive many runs (each OnRunStart opens a new run span) but
// narrates one run at a time.
type Tracer struct {
	log  *slog.Logger
	ring *Ring
	opts TracerOptions

	mu     sync.Mutex
	runSeq int64
	engine string
	start  time.Time
	slow   map[metrics.Phase]*phaseWindow
}

// NewTracer builds a tracer writing JSONL events to w (nil: ring buffer
// only).
func NewTracer(w io.Writer, opts TracerOptions) *Tracer {
	opts = opts.normalize()
	t := &Tracer{
		ring: NewRing(opts.RingSize),
		opts: opts,
		slow: make(map[metrics.Phase]*phaseWindow),
	}
	sink := io.Writer(&ringWriter{ring: t.ring})
	if w != nil {
		sink = io.MultiWriter(w, &ringWriter{ring: t.ring})
	}
	t.log = slog.New(slog.NewJSONHandler(&lockedWriter{w: sink}, &slog.HandlerOptions{
		Level: opts.Level,
	}))
	return t
}

// Ring exposes the recent-event buffer (for the /trace endpoint).
func (t *Tracer) Ring() *Ring { return t.ring }

// Logger exposes the underlying structured logger so callers (e.g. the
// harness narrating experiment boundaries) can emit their own events into
// the same stream and ring.
func (t *Tracer) Logger() *slog.Logger { return t.log }

// OnRunStart implements Hooks: opens a new run span.
func (t *Tracer) OnRunStart(info RunInfo) {
	t.mu.Lock()
	t.runSeq++
	run := t.runSeq
	t.engine = info.Engine
	t.start = time.Now()
	t.slow = make(map[metrics.Phase]*phaseWindow)
	t.mu.Unlock()
	t.log.Info("run-start",
		"span", "run", "run", run, "engine", info.Engine,
		"workers", info.Workers, "vertices", info.Vertices,
		"edges", info.Edges, "replicas", info.Replicas)
}

// OnSuperstepStart implements Hooks.
func (t *Tracer) OnSuperstepStart(step int) {
	t.log.Debug("superstep-start", "span", "superstep",
		"run", t.run(), "engine", t.engineName(), "step", step)
}

// OnSpanStart implements Hooks. The causal span stream has its own consumers
// (SpanTracker, Recorder); the tracer narrates runs and supersteps already,
// so it stays quiet here rather than doubling every event.
func (t *Tracer) OnSpanStart(span.Span) {}

// OnSpanEnd implements Hooks.
func (t *Tracer) OnSpanEnd(span.Span) {}

// OnPhase implements Hooks: logs the phase duration and runs the slow-phase
// detector against the phase's trailing mean.
func (t *Tracer) OnPhase(step int, phase metrics.Phase, d time.Duration) {
	t.log.Debug("phase", "span", "phase",
		"run", t.run(), "engine", t.engineName(), "step", step,
		"phase", phase.String(), "ns", d.Nanoseconds())

	if t.opts.SlowFactor <= 1 {
		return
	}
	t.mu.Lock()
	win := t.slow[phase]
	if win == nil {
		win = &phaseWindow{samples: make([]time.Duration, 0, t.opts.SlowWindow)}
		t.slow[phase] = win
	}
	n, mean := win.count(), win.mean()
	win.observe(d)
	run := t.runSeq
	engine := t.engine
	t.mu.Unlock()

	if n >= t.opts.SlowMinSamples && mean > 0 &&
		float64(d) > t.opts.SlowFactor*float64(mean) {
		t.log.Warn("slow-phase", "span", "phase",
			"run", run, "engine", engine, "step", step,
			"phase", phase.String(), "ns", d.Nanoseconds(),
			"trailing_mean_ns", mean.Nanoseconds(),
			"factor", float64(d)/float64(mean))
	}
}

// OnWorkerStats implements Hooks.
func (t *Tracer) OnWorkerStats(ws WorkerStats) {
	t.log.Debug("worker", "span", "superstep",
		"run", t.run(), "engine", t.engineName(), "step", ws.Step,
		"worker", ws.Worker, "compute_units", ws.ComputeUnits,
		"sent", ws.Sent, "received", ws.Received,
		"queue_depth", ws.QueueDepth)
}

// OnCommMatrix implements Hooks: logs the superstep's traffic totals and
// per-worker egress at Debug (the full matrix is the /comm endpoint's job;
// the trace keeps the compact row sums).
func (t *Tracer) OnCommMatrix(step int, delta transport.MatrixSnapshot) {
	t.log.Debug("comm", "span", "superstep",
		"run", t.run(), "engine", t.engineName(), "step", step,
		"messages", delta.TotalMessages(), "bytes", delta.TotalBytes(),
		"egress", delta.Egress(), "ingress", delta.Ingress())
}

// OnViolation implements Hooks: an audited invariant was breached — this is
// a correctness event, logged at Error with every structured field.
func (t *Tracer) OnViolation(v Violation) {
	t.log.Error("invariant-violation", "span", "superstep",
		"run", t.run(), "engine", v.Engine, "step", v.Step,
		"worker", v.Worker, "vertex", v.Vertex,
		"kind", v.Kind, "detail", v.Detail)
}

// OnHeat implements Hooks. The tracer narrates aggregates, not per-partition
// rows — the heat stream is the HeatTracker's and recorder's to render.
func (t *Tracer) OnHeat(HeatStepData) {}

// OnSuperstepEnd implements Hooks.
func (t *Tracer) OnSuperstepEnd(step int, s metrics.StepStats) {
	t.log.Info("superstep", "span", "superstep",
		"run", t.run(), "engine", t.engineName(), "step", step,
		"active", s.Active, "changed", s.Changed,
		"messages", s.Messages, "redundant", s.RedundantMessages,
		"prs_ns", s.Durations[metrics.Parse].Nanoseconds(),
		"cmp_ns", s.Durations[metrics.Compute].Nanoseconds(),
		"snd_ns", s.Durations[metrics.Send].Nanoseconds(),
		"syn_ns", s.Durations[metrics.Sync].Nanoseconds())
}

// OnRecovery implements Hooks: a fault was absorbed by checkpoint rollback —
// the run survives, but degraded, so it logs at Warn.
func (t *Tracer) OnRecovery(e RecoveryEvent) {
	t.log.Warn("recovery", "span", "run",
		"run", t.run(), "engine", e.Engine, "step", e.Step,
		"resumed_at", e.ResumedAt, "replayed", e.Replayed(),
		"attempt", e.Attempt, "cause", e.Cause)
}

// OnConverged implements Hooks: closes the run span.
func (t *Tracer) OnConverged(step int, reason string) {
	t.mu.Lock()
	elapsed := time.Duration(0)
	if !t.start.IsZero() {
		elapsed = time.Since(t.start)
	}
	run := t.runSeq
	engine := t.engine
	t.mu.Unlock()
	t.log.Info("run-end", "span", "run",
		"run", run, "engine", engine, "step", step,
		"reason", reason, "elapsed_ns", elapsed.Nanoseconds())
}

func (t *Tracer) run() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.runSeq
}

func (t *Tracer) engineName() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.engine
}

// ringWriter splits handler output into lines and appends them to the ring.
type ringWriter struct {
	ring    *Ring
	partial []byte
}

func (w *ringWriter) Write(p []byte) (int, error) {
	w.partial = append(w.partial, p...)
	for {
		i := bytes.IndexByte(w.partial, '\n')
		if i < 0 {
			break
		}
		w.ring.Append(w.partial[:i])
		w.partial = w.partial[i+1:]
	}
	return len(p), nil
}

// lockedWriter serialises writes: slog handlers lock per-handler, but the
// multiwriter fan-out below them must also be atomic per event line.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
