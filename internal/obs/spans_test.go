package obs_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
)

// feedTracker pushes a small two-step run through the tracker the way an
// engine does: run span opens, each superstep's measurements emit through
// EmitStepSpans, and a step-2 span is left open so the endpoint has something
// in flight to report.
func feedTracker(t *testing.T) *obs.SpanTracker {
	t.Helper()
	tr := obs.NewSpanTracker()
	tr.OnRunStart(obs.RunInfo{Engine: "span-test", Workers: 2})
	tr.OnSpanStart(obs.RunSpan(1, 0))

	// Step 0: worker 0 dominates the deterministic weights.
	obs.EmitStepSpans(tr, obs.StepSpanData{
		Run: 1, Step: 0, Wall: 4 * time.Millisecond,
		Compute:    []time.Duration{time.Millisecond, time.Millisecond},
		Send:       []time.Duration{time.Millisecond, time.Millisecond},
		Units:      []int64{10, 1},
		Sent:       []int64{5, 0},
		Recv:       []int64{0, 0},
		Deliveries: [][]span.Delivery{nil, nil},
	})
	// Step 1: worker 1 dominates, and receives a tagged batch from step 0's
	// worker 0 send — the Deliver span must link back to that send.
	obs.EmitStepSpans(tr, obs.StepSpanData{
		Run: 1, Step: 1, Wall: 4 * time.Millisecond,
		Compute: []time.Duration{time.Millisecond, time.Millisecond},
		Send:    []time.Duration{time.Millisecond, time.Millisecond},
		Units:   []int64{1, 20},
		Sent:    []int64{0, 2},
		Recv:    []int64{0, 5},
		Deliveries: [][]span.Delivery{nil, {
			{From: 0, Ctx: span.Context{Run: 1, Step: 0, Worker: 0}, Msgs: 5},
		}},
	})
	tr.OnSpanStart(obs.StepSpan(1, 2, 8*time.Millisecond))
	return tr
}

func TestSpansEndpointJSON(t *testing.T) {
	tr := feedTracker(t)
	rr := httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/spans", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /spans: %d", rr.Code)
	}
	var got struct {
		Run      int64           `json:"run"`
		Engine   string          `json:"engine"`
		Open     []span.Span     `json:"open"`
		CritPath []span.StepPath `json:"critpath"`
		Spans    []span.Span     `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("/spans is not JSON: %v", err)
	}
	if got.Run != 1 || got.Engine != "span-test" {
		t.Errorf("run %d engine %q, want 1 span-test", got.Run, got.Engine)
	}
	// The run span and the in-flight step-2 span are open.
	if len(got.Open) != 2 {
		t.Errorf("open = %+v, want run span and step-2 span", got.Open)
	}
	if got, want := span.GatingSequence(got.CritPath), "0:0 1:1"; got != want {
		t.Errorf("live critical path = %q, want %q", got, want)
	}
	// The tagged delivery links causally to step 0's send by worker 0.
	var deliver *span.Span
	for i := range got.Spans {
		if got.Spans[i].Kind == span.Deliver {
			deliver = &got.Spans[i]
		}
	}
	if deliver == nil {
		t.Fatal("no Deliver span in the stream")
	}
	if deliver.Parent != span.SendID(0, 0) {
		t.Errorf("Deliver parent = %d, want SendID(0,0) = %d", deliver.Parent, span.SendID(0, 0))
	}
}

func TestSpansEndpointStepFilterAndText(t *testing.T) {
	tr := feedTracker(t)

	rr := httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/spans?step=1", nil))
	var got struct {
		Spans []span.Span `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) == 0 {
		t.Fatal("step filter returned nothing")
	}
	for _, s := range got.Spans {
		if s.Step != 1 {
			t.Errorf("?step=1 leaked a step-%d span", s.Step)
		}
	}

	rr = httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/spans?format=text", nil))
	text := rr.Body.String()
	for _, want := range []string{"span-test", "superstep 0", "superstep 1", "compute", "open"} {
		if !strings.Contains(text, want) {
			t.Errorf("text waterfall missing %q:\n%s", want, text)
		}
	}

	rr = httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/spans?step=banana", nil))
	if rr.Code != 400 {
		t.Errorf("bogus step filter answered %d, want 400", rr.Code)
	}
}
