package obs

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cyclops/internal/metrics"
	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// Metric names exported by the Collector. The DESIGN.md observability
// section maps these to the paper's Figure 10 quantities.
const (
	MetricSupersteps  = "cyclops_supersteps_total"
	MetricSuperstep   = "cyclops_superstep"
	MetricActive      = "cyclops_active_vertices"
	MetricChanged     = "cyclops_changed_vertices"
	MetricMessages    = "cyclops_messages_total"
	MetricRedundant   = "cyclops_redundant_messages_total"
	MetricPhase       = "cyclops_phase_seconds"
	MetricWorkers     = "cyclops_workers"
	MetricReplication = "cyclops_replication_factor"
	MetricRuns        = "cyclops_runs_total"
	MetricRunsDone    = "cyclops_runs_completed_total"

	MetricTransportMessages   = "cyclops_transport_messages_total"
	MetricTransportBatches    = "cyclops_transport_batches_total"
	MetricTransportBytes      = "cyclops_transport_bytes_total"
	MetricTransportWireBytes  = "cyclops_transport_wire_bytes_total"
	MetricTransportEncodes    = "cyclops_transport_encodes_total"
	MetricTransportDecodes    = "cyclops_transport_decodes_total"
	MetricTransportLocked     = "cyclops_transport_locked_enqueues_total"
	MetricTransportRetries    = "cyclops_transport_retries_total"
	MetricTransportReconnects = "cyclops_transport_reconnects_total"

	// Fault-tolerance series (§3.6 recovery).
	MetricRecoveries         = "cyclops_recoveries_total"
	MetricReplayedSupersteps = "cyclops_replayed_supersteps_total"

	// Communication observatory series.
	MetricCommMessages    = "cyclops_comm_messages_total"
	MetricCommBytes       = "cyclops_comm_bytes_total"
	MetricCommWireBytes   = "cyclops_comm_wire_bytes_total"
	MetricWorkerEgress    = "cyclops_worker_egress_messages"
	MetricWorkerIngress   = "cyclops_worker_ingress_messages"
	MetricSkew            = "cyclops_skew_imbalance"
	MetricAuditViolations = "cyclops_audit_violations_total"

	// Causal span stream.
	MetricSpans = "cyclops_spans_total"

	// Heat observatory series.
	MetricHeatBoundary    = "cyclops_heat_boundary_messages"
	MetricHeatReplicaSync = "cyclops_heat_replica_sync_messages"
)

// Collector is a Hooks implementation that folds engine events into a
// Registry for the /metrics endpoint.
type Collector struct {
	reg *Registry

	runs        *Counter
	supersteps  *Counter
	stepGauge   *Gauge
	active      *Gauge
	changed     *Gauge
	messages    *Counter
	redundant   *Counter
	phase       *Histogram
	workers     *Gauge
	replication *Gauge
	recoveries  *Counter
	replayed    *Counter

	egressMu sync.Mutex
	egress   []int64 // cumulative per-worker sent messages, latest run
	ingress  []int64 // cumulative per-worker received messages, latest run
}

// NewCollector registers the standard engine metrics on reg and returns the
// hooks feeding them.
func NewCollector(reg *Registry) *Collector {
	return &Collector{
		reg:  reg,
		runs: reg.Counter(MetricRuns, "Engine runs started."),
		supersteps: reg.Counter(MetricSupersteps,
			"Supersteps completed across all runs."),
		stepGauge: reg.Gauge(MetricSuperstep,
			"Current superstep index of the latest run."),
		active: reg.Gauge(MetricActive,
			"Vertices that computed in the last superstep (Figure 10(2))."),
		changed: reg.Gauge(MetricChanged,
			"Computed vertices whose value changed in the last superstep."),
		messages: reg.Counter(MetricMessages,
			"Data messages sent, summed over supersteps (Figure 10(3))."),
		redundant: reg.Counter(MetricRedundant,
			"Messages from vertices whose value did not change (Figure 3(2))."),
		phase: reg.Histogram(MetricPhase,
			"Per-superstep phase durations (PRS/CMP/SND/SYN of Figure 10(1)).",
			"phase", DefaultDurationBuckets()),
		workers: reg.Gauge(MetricWorkers,
			"Workers (= graph partitions) of the latest run."),
		replication: reg.Gauge(MetricReplication,
			"Replicas per vertex of the latest run (Figure 11)."),
		recoveries: reg.Counter(MetricRecoveries,
			"Checkpoint recoveries performed after transient faults (§3.6)."),
		replayed: reg.Counter(MetricReplayedSupersteps,
			"Supersteps re-executed by checkpoint recoveries."),
	}
}

// Registry returns the registry the collector writes into.
func (c *Collector) Registry() *Registry { return c.reg }

// WatchTransport registers scrape-time counters over a transport snapshot
// source (typically Engine.TransportStats). Call once per engine; repeated
// calls rebind the source to the newest engine.
func (c *Collector) WatchTransport(fn func() transport.Snapshot) {
	c.reg.CounterFunc(MetricTransportMessages,
		"Messages through the transport layer.",
		func() float64 { return float64(fn().Messages) })
	c.reg.CounterFunc(MetricTransportBatches,
		"Batches through the transport layer.",
		func() float64 { return float64(fn().Batches) })
	c.reg.CounterFunc(MetricTransportBytes,
		"Estimated payload bytes through the transport layer (Table 4).",
		func() float64 { return float64(fn().Bytes) })
	c.reg.CounterFunc(MetricTransportWireBytes,
		"Encoded wire bytes through the transport layer (== payload bytes "+
			"when nothing serialises; the excess is the gob envelope).",
		func() float64 { return float64(fn().WireBytes) })
	c.reg.CounterFunc(MetricTransportEncodes,
		"Frame encode operations performed by the transport layer.",
		func() float64 { return float64(fn().Encodes) })
	c.reg.CounterFunc(MetricTransportDecodes,
		"Frame decode operations performed by the transport layer.",
		func() float64 { return float64(fn().Decodes) })
	c.reg.CounterFunc(MetricTransportLocked,
		"Enqueues that serialised on a shared lock (zero for per-sender queues).",
		func() float64 { return float64(fn().LockedEnqueues) })
	c.reg.CounterFunc(MetricTransportRetries,
		"Send attempts repeated after a transient transport failure.",
		func() float64 { return float64(fn().Retries) })
	c.reg.CounterFunc(MetricTransportReconnects,
		"Connections re-established after a transport failure.",
		func() float64 { return float64(fn().Reconnects) })
}

// OnRunStart implements Hooks.
func (c *Collector) OnRunStart(info RunInfo) {
	c.runs.Inc()
	c.workers.Set(float64(info.Workers))
	if info.Vertices > 0 {
		c.replication.Set(float64(info.Replicas) / float64(info.Vertices))
	}
}

// OnSuperstepStart implements Hooks.
func (c *Collector) OnSuperstepStart(step int) {
	c.stepGauge.Set(float64(step))
}

// OnSpanStart implements Hooks (only completed spans are counted).
func (c *Collector) OnSpanStart(span.Span) {}

// OnSpanEnd implements Hooks: counts completed spans by kind.
func (c *Collector) OnSpanEnd(s span.Span) {
	c.reg.LabeledCounter(MetricSpans,
		"Completed causal spans, by kind.", "kind", s.Kind.String()).Inc()
}

// OnPhase implements Hooks.
func (c *Collector) OnPhase(step int, phase metrics.Phase, d time.Duration) {
	c.phase.Observe(phase.String(), d.Seconds())
}

// OnWorkerStats implements Hooks (per-worker data feeds the tracer; the
// registry keeps aggregate series only).
func (c *Collector) OnWorkerStats(WorkerStats) {}

// OnCommMatrix implements Hooks: exports each worker's cumulative egress and
// ingress message counts of the current run as labelled gauges.
func (c *Collector) OnCommMatrix(step int, delta transport.MatrixSnapshot) {
	c.egressMu.Lock()
	if step == 0 || len(c.egress) != delta.Workers {
		c.egress = make([]int64, delta.Workers)
		c.ingress = make([]int64, delta.Workers)
	}
	for w, v := range delta.Egress() {
		c.egress[w] += v
	}
	for w, v := range delta.Ingress() {
		c.ingress[w] += v
	}
	for w := range c.egress {
		label := fmt.Sprintf("%d", w)
		c.reg.LabeledGauge(MetricWorkerEgress,
			"Messages sent by each worker, cumulative over the latest run.",
			"worker", label).Set(float64(c.egress[w]))
		c.reg.LabeledGauge(MetricWorkerIngress,
			"Messages received by each worker, cumulative over the latest run.",
			"worker", label).Set(float64(c.ingress[w]))
	}
	c.egressMu.Unlock()
}

// OnViolation implements Hooks: counts auditor findings by kind.
func (c *Collector) OnViolation(v Violation) {
	c.reg.LabeledCounter(MetricAuditViolations,
		"Replica-invariant violations found by the auditor, by kind.",
		"kind", v.Kind).Inc()
}

// OnHeat implements Hooks: exports the superstep's boundary-message share
// and replica-sync volume — the two heat aggregates worth a live gauge; the
// full per-partition rows stay on /heat.
func (c *Collector) OnHeat(d HeatStepData) {
	var boundary, sync int64
	for _, p := range d.Partitions {
		boundary += p.OutBoundary
		sync += p.ReplicaSync
	}
	c.reg.Gauge(MetricHeatBoundary,
		"Messages that crossed a partition boundary in the latest superstep.").Set(float64(boundary))
	c.reg.Gauge(MetricHeatReplicaSync,
		"Replica/mirror synchronisation messages in the latest superstep.").Set(float64(sync))
}

// OnSuperstepEnd implements Hooks.
func (c *Collector) OnSuperstepEnd(step int, s metrics.StepStats) {
	c.supersteps.Inc()
	c.active.Set(float64(s.Active))
	c.changed.Set(float64(s.Changed))
	c.messages.Add(float64(s.Messages))
	c.redundant.Add(float64(s.RedundantMessages))
}

// OnRecovery implements Hooks.
func (c *Collector) OnRecovery(e RecoveryEvent) {
	c.recoveries.Inc()
	c.replayed.Add(float64(e.Replayed()))
}

// OnConverged implements Hooks.
func (c *Collector) OnConverged(step int, reason string) {
	c.reg.LabeledCounter(MetricRunsDone,
		"Engine runs completed, by termination reason.", "reason", reason).Inc()
}

// RegisterRuntime adds process-level gauges (goroutines, heap) to reg —
// cheap enough to evaluate at every scrape.
func RegisterRuntime(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("go_heap_sys_bytes", "Heap bytes obtained from the OS.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapSys)
		})
}
