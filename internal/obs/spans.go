package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cyclops/internal/obs/span"
)

// This file is the obs side of causal span tracing: the helpers the engines
// use to emit a canonical span stream through Hooks, and the SpanTracker that
// keeps the live stream for the /spans endpoint.

// RunSpan builds an engine run's root span; dur is zero while the run is
// open. Engines emit it through OnSpanStart next to OnRunStart and through
// OnSpanEnd next to every OnConverged.
func RunSpan(run int64, dur time.Duration) span.Span {
	return span.Span{ID: span.RunID(), Run: run, Step: -1, Worker: -1, From: -1,
		Kind: span.Run, Dur: dur}
}

// StepSpan builds a superstep's span as announced open at the superstep top;
// start is the superstep's monotonic offset from the run start.
func StepSpan(run int64, step int, start time.Duration) span.Span {
	return span.Span{ID: span.StepID(step), Parent: span.RunID(), Run: run,
		Step: step, Worker: -1, From: -1, Kind: span.Superstep, Start: start}
}

// StepSpanData is one superstep's span measurements, assembled by an engine's
// coordinator after the superstep's barriers. Per-worker slices are indexed
// by worker id.
type StepSpanData struct {
	Run  int64
	Step int
	// StepStart is the superstep's monotonic offset from the run start;
	// Wall is its accounted duration — the sum of the engine's phase
	// durations, i.e. exactly the numbers timings.csv records for the
	// step, which is what lets critpath.csv columns reconcile with it.
	StepStart time.Duration
	Wall      time.Duration
	// Phase start offsets from the run start (zero when absent).
	ParseStart   time.Duration
	ComputeStart time.Duration
	SendStart    time.Duration
	// Measured per-worker phase durations. Parse may be nil for engines
	// without a distinct receive/parse phase.
	Parse   []time.Duration
	Compute []time.Duration
	Send    []time.Duration
	// SerializeNs is each worker's wire-serialisation share of its send
	// phase (nil or zero on transports that never encode).
	SerializeNs []int64
	// Units, Sent and Recv are the deterministic weights: edges scanned,
	// messages sent, messages received.
	Units []int64
	Sent  []int64
	Recv  []int64
	// Deliveries is each worker's drained batch provenance for the step
	// (transport.LastDeliveries, merged across rounds where applicable).
	Deliveries [][]span.Delivery
}

// EmitStepSpans turns one superstep's measurements into the canonical span
// stream: for each worker in ascending order its Deliver spans, then Parse
// (when present), Compute, Serialize, Send and BarrierWait, and finally the
// Superstep span itself. The order, IDs and parent links depend only on
// deterministic quantities, so the structure of the stream is byte-identical
// across same-seed runs; only Start/Dur carry wall clock.
func EmitStepSpans(h Hooks, d StepSpanData) {
	stepID := span.StepID(d.Step)
	var totalUnits, totalSent int64
	for w := range d.Compute {
		deliverStart := d.ParseStart
		if d.Parse == nil {
			deliverStart = d.ComputeStart
		}
		for _, dl := range d.Deliveries[w] {
			parent := stepID
			if dl.Ctx.Tagged() {
				parent = span.SendID(int(dl.Ctx.Step), dl.From)
			}
			h.OnSpanEnd(span.Span{ID: span.ID(span.Deliver, d.Step, w, dl.From),
				Parent: parent, Run: d.Run, Step: d.Step, Worker: w, From: dl.From,
				Kind: span.Deliver, Msgs: dl.Msgs, Start: deliverStart})
		}
		var busy time.Duration
		if d.Parse != nil {
			busy += d.Parse[w]
			h.OnSpanEnd(span.Span{ID: span.ID(span.Parse, d.Step, w, -1),
				Parent: stepID, Run: d.Run, Step: d.Step, Worker: w, From: -1,
				Kind: span.Parse, Msgs: d.Recv[w], Start: d.ParseStart, Dur: d.Parse[w]})
		}
		busy += d.Compute[w]
		totalUnits += d.Units[w]
		h.OnSpanEnd(span.Span{ID: span.ID(span.Compute, d.Step, w, -1),
			Parent: stepID, Run: d.Run, Step: d.Step, Worker: w, From: -1,
			Kind: span.Compute, Units: d.Units[w], Start: d.ComputeStart, Dur: d.Compute[w]})
		var ser time.Duration
		if d.SerializeNs != nil {
			ser = time.Duration(d.SerializeNs[w])
		}
		sendDur := d.Send[w] - ser
		if sendDur < 0 {
			ser, sendDur = d.Send[w], 0
		}
		busy += d.Send[w]
		totalSent += d.Sent[w]
		h.OnSpanEnd(span.Span{ID: span.ID(span.Serialize, d.Step, w, -1),
			Parent: span.SendID(d.Step, w), Run: d.Run, Step: d.Step, Worker: w, From: -1,
			Kind: span.Serialize, Start: d.SendStart, Dur: ser})
		h.OnSpanEnd(span.Span{ID: span.SendID(d.Step, w),
			Parent: stepID, Run: d.Run, Step: d.Step, Worker: w, From: -1,
			Kind: span.Send, Msgs: d.Sent[w], Start: d.SendStart, Dur: sendDur})
		wait := d.Wall - busy
		if wait < 0 {
			wait = 0
		}
		h.OnSpanEnd(span.Span{ID: span.ID(span.BarrierWait, d.Step, w, -1),
			Parent: stepID, Run: d.Run, Step: d.Step, Worker: w, From: -1,
			Kind: span.BarrierWait, Start: d.StepStart, Dur: wait})
	}
	h.OnSpanEnd(span.Span{ID: stepID, Parent: span.RunID(), Run: d.Run,
		Step: d.Step, Worker: -1, From: -1, Kind: span.Superstep,
		Units: totalUnits, Msgs: totalSent, Start: d.StepStart, Dur: d.Wall})
}

// spanLimit bounds the SpanTracker's in-memory stream; the oldest half is
// discarded when it fills (the flight recorder keeps the durable copy).
const spanLimit = 1 << 17

// SpanTracker keeps the live span stream of the current run for the /spans
// endpoint: currently open spans (run and superstep) and the completed spans,
// with the critical-path attribution computed on demand.
type SpanTracker struct {
	Nop

	mu      sync.Mutex
	run     int64
	engine  string
	open    []span.Span
	spans   []span.Span
	dropped int
}

// NewSpanTracker builds an empty tracker.
func NewSpanTracker() *SpanTracker { return &SpanTracker{} }

// OnRunStart implements Hooks: resets the stream for the new run.
func (t *SpanTracker) OnRunStart(info RunInfo) {
	t.mu.Lock()
	t.run++
	t.engine = info.Engine
	t.open = t.open[:0]
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// OnSpanStart implements Hooks.
func (t *SpanTracker) OnSpanStart(s span.Span) {
	t.mu.Lock()
	t.open = append(t.open, s)
	t.mu.Unlock()
}

// OnSpanEnd implements Hooks.
func (t *SpanTracker) OnSpanEnd(s span.Span) {
	t.mu.Lock()
	for i := range t.open {
		if t.open[i].ID == s.ID {
			t.open = append(t.open[:i], t.open[i+1:]...)
			break
		}
	}
	if len(t.spans) >= spanLimit {
		half := len(t.spans) / 2
		t.dropped += half
		t.spans = append(t.spans[:0], t.spans[half:]...)
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Snapshot returns the current run id and copies of the open and completed
// spans.
func (t *SpanTracker) Snapshot() (run int64, engine string, open, done []span.Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.run, t.engine, append([]span.Span(nil), t.open...), append([]span.Span(nil), t.spans...)
}

// ServeHTTP renders the span stream: JSON by default (open spans, completed
// spans, per-superstep critical path), a plain-text waterfall with
// ?format=text. ?step=N restricts the completed spans to one superstep.
func (t *SpanTracker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	run, engine, open, done := t.Snapshot()
	if stepQ := r.URL.Query().Get("step"); stepQ != "" {
		step, err := strconv.Atoi(stepQ)
		if err != nil {
			http.Error(w, "bad step", http.StatusBadRequest)
			return
		}
		filtered := done[:0:0]
		for _, s := range done {
			if s.Step == step {
				filtered = append(filtered, s)
			}
		}
		done = filtered
	}
	serveFormat(w, r, map[string]formatVariant{
		"text": {contentType: "text/plain; charset=utf-8", render: func(w http.ResponseWriter) error {
			fmt.Fprintf(w, "run %d engine %s: %d completed spans, %d open\n\n",
				run, engine, len(done), len(open))
			span.WriteWaterfall(w, done)
			return nil
		}},
		"json": {contentType: "application/json", render: func(w http.ResponseWriter) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Run      int64           `json:"run"`
				Engine   string          `json:"engine"`
				Open     []span.Span     `json:"open"`
				CritPath []span.StepPath `json:"critpath"`
				Spans    []span.Span     `json:"spans"`
			}{Run: run, Engine: engine, Open: open, CritPath: span.CriticalPath(done), Spans: done})
		}},
	})
}
