package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	rpprof "runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// HarvesterOptions tunes the continuous profiling harvester. The zero value
// gets defaults suitable for runs lasting seconds to minutes.
type HarvesterOptions struct {
	// Interval between capture rounds (default 10s).
	Interval time.Duration
	// CPUWindow is how long each round's CPU profile samples (default 1s;
	// clamped below Interval).
	CPUWindow time.Duration
	// Keep bounds the retained captures per kind; older files are deleted
	// as new ones rotate in (default 16).
	Keep int
}

func (o HarvesterOptions) normalize() HarvesterOptions {
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
	if o.CPUWindow <= 0 {
		o.CPUWindow = time.Second
	}
	if o.CPUWindow >= o.Interval {
		o.CPUWindow = o.Interval / 2
	}
	if o.Keep <= 0 {
		o.Keep = 16
	}
	return o
}

// ProfileCapture is one harvested profile in the index: which file, what
// kind, and which superstep the run was in when the capture started — the
// correlation that lets a flame graph be read against the flight record.
type ProfileCapture struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"` // "cpu" or "heap"
	File   string `json:"file"`
	Engine string `json:"engine,omitempty"`
	Step   int64  `json:"step"`
	Error  string `json:"error,omitempty"`
}

// Harvester is the continuous profiling collector: on a fixed interval it
// captures a CPU profile window and a heap snapshot into its directory,
// rotates old captures out, and maintains an index.json correlating each
// capture with the superstep in flight. It implements Hooks to learn the
// current superstep — and to stamp the coordinator goroutine with
// runtime/pprof labels ("engine", "superstep") that the per-phase worker
// goroutines inherit, so CPU samples are attributable to supersteps even
// mid-window.
type Harvester struct {
	Nop

	dir  string
	opts HarvesterOptions

	step   atomic.Int64
	stop   chan struct{}
	done   chan struct{}
	start  sync.Once
	finish sync.Once

	mu     sync.Mutex
	engine string
	seq    int
	index  []ProfileCapture
	err    error
}

// NewHarvester builds a harvester writing into dir (created if needed).
func NewHarvester(dir string, opts HarvesterOptions) (*Harvester, error) {
	if err := EnsureWritableDir(dir); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	return &Harvester{
		dir:  dir,
		opts: opts.normalize(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Dir reports the capture directory.
func (h *Harvester) Dir() string { return h.dir }

// Start launches the capture loop; idempotent.
func (h *Harvester) Start() {
	h.start.Do(func() { go h.loop() })
}

// Stop ends the capture loop and waits for the in-flight round; idempotent.
func (h *Harvester) Stop() {
	h.finish.Do(func() { close(h.stop) })
	<-h.done
}

// Err reports the first capture failure, if any (failed rounds are also
// recorded per-capture in the index).
func (h *Harvester) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Files lists the currently retained capture file names, sorted.
func (h *Harvester) Files() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.index))
	for _, c := range h.index {
		if c.Error == "" {
			out = append(out, c.File)
		}
	}
	sort.Strings(out)
	return out
}

// Index returns a copy of the capture index.
func (h *Harvester) Index() []ProfileCapture {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ProfileCapture(nil), h.index...)
}

// OnRunStart implements Hooks: records the engine and resets the step label.
func (h *Harvester) OnRunStart(info RunInfo) {
	h.mu.Lock()
	h.engine = info.Engine
	h.mu.Unlock()
	h.step.Store(0)
	h.setLabels(info.Engine, 0)
}

// OnSuperstepStart implements Hooks: moves the superstep label forward. It
// runs on the coordinator goroutine, and the engines spawn their per-phase
// worker goroutines from it, so the workers inherit the labels.
func (h *Harvester) OnSuperstepStart(step int) {
	h.step.Store(int64(step))
	h.mu.Lock()
	engine := h.engine
	h.mu.Unlock()
	h.setLabels(engine, step)
}

// OnConverged implements Hooks: clears the coordinator's labels.
func (h *Harvester) OnConverged(int, string) {
	rpprof.SetGoroutineLabels(context.Background())
}

func (h *Harvester) setLabels(engine string, step int) {
	rpprof.SetGoroutineLabels(rpprof.WithLabels(context.Background(),
		rpprof.Labels("engine", engine, "superstep", strconv.Itoa(step))))
}

func (h *Harvester) loop() {
	defer close(h.done)
	tick := time.NewTicker(h.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-h.stop:
			h.finalRound()
			return
		case <-tick.C:
		}
		h.captureRound()
	}
}

// finalRound runs at Stop: a run shorter than the capture interval would
// otherwise end with an empty harvest, so the harvester always leaves at
// least one heap snapshot and an index.json behind. The CPU window is
// skipped — stop has already been requested, so there is nothing left to
// sample.
func (h *Harvester) finalRound() {
	h.mu.Lock()
	h.seq++
	seq := h.seq
	engine := h.engine
	h.mu.Unlock()
	step := h.step.Load()

	heap := ProfileCapture{Seq: seq, Kind: "heap",
		File: fmt.Sprintf("heap-%04d.pprof", seq), Engine: engine, Step: step}
	if err := h.captureHeap(filepath.Join(h.dir, heap.File)); err != nil {
		heap.Error = err.Error()
	}
	h.mu.Lock()
	h.index = append(h.index, heap)
	h.rotateLocked()
	if err := h.writeIndexLocked(); err != nil && h.err == nil {
		h.err = err
	}
	h.mu.Unlock()
}

// captureRound harvests one CPU window and one heap snapshot.
func (h *Harvester) captureRound() {
	h.mu.Lock()
	h.seq++
	seq := h.seq
	engine := h.engine
	h.mu.Unlock()
	step := h.step.Load()

	cpu := ProfileCapture{Seq: seq, Kind: "cpu",
		File: fmt.Sprintf("cpu-%04d.pprof", seq), Engine: engine, Step: step}
	if err := h.captureCPU(filepath.Join(h.dir, cpu.File)); err != nil {
		cpu.Error = err.Error()
	}
	heap := ProfileCapture{Seq: seq, Kind: "heap",
		File: fmt.Sprintf("heap-%04d.pprof", seq), Engine: engine, Step: step}
	if err := h.captureHeap(filepath.Join(h.dir, heap.File)); err != nil {
		heap.Error = err.Error()
	}

	h.mu.Lock()
	h.index = append(h.index, cpu, heap)
	h.rotateLocked()
	if err := h.writeIndexLocked(); err != nil && h.err == nil {
		h.err = err
	}
	if h.err == nil {
		if cpu.Error != "" {
			h.err = fmt.Errorf("obs: cpu capture %d: %s", seq, cpu.Error)
		} else if heap.Error != "" {
			h.err = fmt.Errorf("obs: heap capture %d: %s", seq, heap.Error)
		}
	}
	h.mu.Unlock()
}

func (h *Harvester) captureCPU(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// StartCPUProfile fails when another CPU profile is running (e.g. an
	// operator hitting /debug/pprof/profile); the round records the error
	// and the next round tries again.
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	select {
	case <-h.stop:
	case <-time.After(h.opts.CPUWindow):
	}
	rpprof.StopCPUProfile()
	return f.Close()
}

func (h *Harvester) captureHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rpprof.WriteHeapProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// rotateLocked drops index entries beyond Keep per kind and deletes their
// files. Caller holds mu.
func (h *Harvester) rotateLocked() {
	perKind := map[string]int{}
	for _, c := range h.index {
		perKind[c.Kind]++
	}
	kept := h.index[:0]
	for _, c := range h.index {
		if perKind[c.Kind] > h.opts.Keep {
			perKind[c.Kind]--
			os.Remove(filepath.Join(h.dir, c.File)) //nolint:errcheck // best-effort rotation
			continue
		}
		kept = append(kept, c)
	}
	h.index = kept
}

// writeIndexLocked persists index.json atomically (temp + rename), so a
// reader never observes a torn index. Caller holds mu.
func (h *Harvester) writeIndexLocked() error {
	blob, err := json.MarshalIndent(h.index, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: profile index: %w", err)
	}
	return atomicWriteFile(filepath.Join(h.dir, "index.json"), append(blob, '\n'))
}
