package obs_test

// Acceptance test for the live diagnostics server: while a Cyclops PageRank
// run on the wiki-class synthetic dataset advances, /metrics must serve
// parseable Prometheus text with the engine series present, /trace must serve
// valid JSONL, and /debug/pprof/ must answer. A gate hook pauses the engine
// between two supersteps so the scrapes deterministically observe a run in
// flight.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"cyclops/internal/algorithms"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
)

// gate blocks the engine's coordinator at the end of superstep `at` until the
// test releases it.
type gate struct {
	obs.Nop
	at      int
	reached chan struct{}
	release chan struct{}
}

func (g *gate) OnSuperstepEnd(step int, _ metrics.StepStats) {
	if step == g.at {
		close(g.reached)
		<-g.release
	}
}

// promLine matches one Prometheus text exposition sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? ` +
		`(-?[0-9.e+-]+|\+Inf|NaN)$`)

func TestServerLiveDuringRun(t *testing.T) {
	g, _, err := gen.Dataset("wiki", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(nil, obs.TracerOptions{})
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	collector := obs.NewCollector(reg)
	comm := obs.NewCommTracker()
	gt := &gate{at: 2, reached: make(chan struct{}), release: make(chan struct{})}
	recDir := t.TempDir()
	rec, err := obs.NewRecorder(recDir)
	if err != nil {
		t.Fatal(err)
	}

	heat := obs.NewHeatTracker()
	srv, err := obs.Serve("127.0.0.1:0", reg, tracer.Ring(), comm, recDir, obs.NewSpanTracker(), "", obs.NewMemTracker(), heat)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: 1e-9},
		cyclops.Config[float64, float64]{
			Cluster:       cluster.Flat(2, 2),
			MaxSupersteps: 20,
			Hooks:         obs.Multi(tracer, collector, comm, rec, heat, gt),
		})
	if err != nil {
		t.Fatal(err)
	}
	collector.WatchTransport(e.TransportStats)

	done := make(chan error, 1)
	go func() {
		_, err := e.Run()
		done <- err
	}()

	select {
	case <-gt.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("run never reached superstep 2")
	}
	// The run is now provably in flight: superstep 2 ended, the coordinator
	// is parked in our gate, more supersteps are pending.

	t.Run("metrics", func(t *testing.T) {
		body := get(t, srv.URL()+"/metrics", "text/plain")
		var samples int
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if !promLine.MatchString(line) {
				t.Errorf("unparseable Prometheus sample line: %q", line)
			}
			samples++
		}
		if samples == 0 {
			t.Fatal("no samples in /metrics")
		}
		for _, want := range []string{
			obs.MetricSupersteps + " 3", // steps 0,1,2 completed, run gated
			obs.MetricActive,
			obs.MetricMessages,
			obs.MetricPhase + `_bucket{phase="CMP"`,
			obs.MetricReplication,
			obs.MetricTransportMessages,
			obs.MetricWorkerEgress + `{worker="0"}`,
			obs.MetricWorkerIngress + `{worker="3"}`,
			obs.MetricWorkers + " 4",
			"go_goroutines",
			"go_heap_alloc_bytes",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	})

	t.Run("trace", func(t *testing.T) {
		body := get(t, srv.URL()+"/trace", "application/x-ndjson")
		sc := bufio.NewScanner(strings.NewReader(body))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		var lines, runStarts, stepEnds int
		for sc.Scan() {
			var ev map[string]any
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
			}
			lines++
			switch ev["msg"] {
			case "run-start":
				runStarts++
				if ev["engine"] != "cyclops" {
					t.Errorf("run-start engine = %v, want cyclops", ev["engine"])
				}
			case "superstep":
				stepEnds++
			}
		}
		if lines == 0 || runStarts != 1 || stepEnds != 3 {
			t.Errorf("trace shape: %d lines, %d run-starts, %d superstep ends; want >0/1/3",
				lines, runStarts, stepEnds)
		}
	})

	t.Run("comm", func(t *testing.T) {
		body := get(t, srv.URL()+"/comm", "application/json")
		var doc struct {
			Engine   string    `json:"engine"`
			Workers  int       `json:"workers"`
			Messages [][]int64 `json:"messages"`
			Total    int64     `json:"messages_total"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("invalid /comm JSON: %v", err)
		}
		if doc.Engine != "cyclops" || doc.Workers != 4 || len(doc.Messages) != 4 {
			t.Errorf("/comm shape: engine=%q workers=%d rows=%d", doc.Engine, doc.Workers, len(doc.Messages))
		}
		if doc.Total <= 0 {
			t.Errorf("/comm messages_total = %d mid-run, want > 0", doc.Total)
		}
		prom := get(t, srv.URL()+"/comm?format=prom", "text/plain")
		for _, line := range strings.Split(strings.TrimRight(prom, "\n"), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if !promLine.MatchString(line) {
				t.Errorf("unparseable /comm prom line: %q", line)
			}
		}
		if !strings.Contains(prom, obs.MetricCommMessages+"{from=") {
			t.Errorf("/comm prom output missing %s series", obs.MetricCommMessages)
		}
	})

	t.Run("heat", func(t *testing.T) {
		body := get(t, srv.URL()+"/heat", "application/json")
		var doc struct {
			Engine     string              `json:"engine"`
			Done       bool                `json:"done"`
			Partitions []obs.HeatPartition `json:"partitions"`
			Hot        []obs.HotVertex     `json:"hot"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("invalid /heat JSON: %v", err)
		}
		// Steps 0,1,2 completed at 4 workers each; the run is gated mid-flight.
		if doc.Engine != "cyclops" || doc.Done || len(doc.Partitions) != 3*4 {
			t.Errorf("/heat shape: engine=%q done=%v rows=%d, want cyclops/false/12",
				doc.Engine, doc.Done, len(doc.Partitions))
		}
		if len(doc.Hot) == 0 {
			t.Error("/heat hot set empty mid-run")
		}
		var traffic int64
		for _, p := range doc.Partitions {
			traffic += p.OutInterior + p.OutBoundary
		}
		if traffic <= 0 {
			t.Error("/heat rows carry no traffic mid-run")
		}

		csv := get(t, srv.URL()+"/heat?format=csv", "text/csv")
		if rows, err := obs.ParseHeatCSV([]byte(csv)); err != nil || len(rows) != len(doc.Partitions) {
			t.Errorf("/heat?format=csv: %d rows, err %v", len(rows), err)
		}
		hotcsv := get(t, srv.URL()+"/heat?format=hotcsv", "text/csv")
		if hot, err := obs.ParseHotsetCSV([]byte(hotcsv)); err != nil || len(hot) != len(doc.Hot) {
			t.Errorf("/heat?format=hotcsv: %d entries, err %v", len(hot), err)
		}

		// Unknown formats fail fast with the accepted set, on every endpoint
		// sharing the negotiation helper.
		for _, path := range []string{"/heat", "/comm", "/mem", "/spans"} {
			resp, err := http.Get(srv.URL() + path + "?format=bogus")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s?format=bogus: status %d, want 400", path, resp.StatusCode)
			}
			if !strings.Contains(string(body), "json") {
				t.Errorf("%s?format=bogus error does not list accepted formats: %q", path, body)
			}
		}
	})

	t.Run("pprof", func(t *testing.T) {
		get(t, srv.URL()+"/debug/pprof/", "")
		get(t, srv.URL()+"/debug/pprof/goroutine?debug=1", "")
	})

	close(gt.release)
	if err := <-done; err != nil {
		t.Fatalf("run failed: %v", err)
	}

	// After the run, the converged counter and final step totals must land.
	body := get(t, srv.URL()+"/metrics", "")
	if !strings.Contains(body, obs.MetricRunsDone) {
		t.Errorf("post-run /metrics missing %s", obs.MetricRunsDone)
	}

	// The flight recorder wrote the run; /runs must list it and serve its
	// artifacts.
	t.Run("runs", func(t *testing.T) {
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
		var ms []obs.Manifest
		if err := json.Unmarshal([]byte(get(t, srv.URL()+"/runs", "application/json")), &ms); err != nil {
			t.Fatalf("invalid /runs JSON: %v", err)
		}
		if len(ms) != 1 || ms[0].Engine != "cyclops" || ms[0].Supersteps < 3 {
			t.Fatalf("/runs = %+v, want one cyclops run with ≥3 supersteps", ms)
		}
		series := get(t, srv.URL()+"/runs/"+ms[0].Run+"/series.csv", "")
		if !strings.HasPrefix(series, "step,active,") {
			t.Errorf("series.csv header = %q", strings.SplitN(series, "\n", 2)[0])
		}
		if resp, err := http.Get(srv.URL() + "/runs/../secrets"); err == nil {
			if resp.StatusCode == http.StatusOK {
				t.Error("/runs/ must not serve paths outside run directories")
			}
			resp.Body.Close()
		}
	})
}

func get(t *testing.T, url, wantCT string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if wantCT != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), wantCT) {
		t.Fatalf("GET %s: Content-Type %q, want prefix %q", url, resp.Header.Get("Content-Type"), wantCT)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}

// TestRunsListsOnlyCompleteRuns races /runs scrapes against an in-progress
// Recorder flush. The recorder writes data files first and manifest.json last
// (atomically), so any run a scrape lists must already have every artifact on
// disk — a listing never observes a half-written run.
func TestRunsListsOnlyCompleteRuns(t *testing.T) {
	recDir := t.TempDir()
	rec, err := obs.NewRecorder(recDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := obs.Serve("127.0.0.1:0", obs.NewRegistry(), obs.NewRing(4),
		obs.NewCommTracker(), recDir, nil, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	errs := make(chan string, 64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL() + "/runs")
				if err != nil {
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("/runs status %d: %s", resp.StatusCode, body):
					default:
					}
					continue
				}
				var ms []obs.Manifest
				if err := json.Unmarshal(body, &ms); err != nil {
					select {
					case errs <- fmt.Sprintf("/runs returned unparseable JSON during flush: %v", err):
					default:
					}
					continue
				}
				for _, m := range ms {
					if m.Supersteps == 0 || m.StopReason == "" {
						select {
						case errs <- fmt.Sprintf("/runs served incomplete manifest %+v", m):
						default:
						}
					}
					for _, name := range []string{"series.csv", "timings.csv", "spans.csv", "critpath.csv"} {
						if _, err := os.Stat(filepath.Join(recDir, m.Run, name)); err != nil {
							select {
							case errs <- fmt.Sprintf("%s listed before its %s existed: %v", m.Run, name, err):
							default:
							}
						}
					}
				}
			}
		}()
	}

	// Drive many small synthetic runs through the recorder as fast as it can
	// flush them, maximising the window a racing scrape could hit.
	const runs = 40
	for r := 0; r < runs; r++ {
		rec.OnRunStart(obs.RunInfo{Engine: "synthetic", Workers: 2, Vertices: 10, Edges: 20})
		for s := 0; s < 3; s++ {
			rec.OnSuperstepStart(s)
			rec.OnSpanEnd(span.Span{ID: int64(s + 1), Kind: span.Compute, Step: s, Units: 5})
			rec.OnSpanEnd(span.Span{ID: int64(s + 100), Kind: span.Superstep, Step: s, Dur: time.Millisecond})
			rec.OnSuperstepEnd(s, metrics.StepStats{Step: s, Active: 1})
		}
		rec.OnConverged(2, "halt")
	}
	close(stop)
	wg.Wait()
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiescent state: every run visible, every artifact in place.
	var ms []obs.Manifest
	if err := json.Unmarshal([]byte(get(t, srv.URL()+"/runs", "application/json")), &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != runs {
		t.Fatalf("/runs lists %d runs after flushes, want %d", len(ms), runs)
	}
}

// TestServeEphemeralPort keeps ":0" usable for tests and CLIs.
func TestServeEphemeralPort(t *testing.T) {
	srv, err := obs.Serve("127.0.0.1:0", obs.NewRegistry(), obs.NewRing(4), obs.NewCommTracker(), "", nil, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", srv.URL())
	}
	body := get(t, srv.URL()+"/", "")
	for _, want := range []string{"/metrics", "/trace", "/comm", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	if resp, err := http.Get(srv.URL() + "/nope"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
