package obs_test

// Memory observatory tests: mem.csv round-trips exactly through its
// encoder/parser, the MemTracker attributes allocation to hook intervals and
// serves it over /mem, and the runtime gauge registration exposes live heap
// numbers at scrape time. The per-superstep sampling cost is benchmarked so
// CI can watch the observatory's own overhead (budget: <2% of model time).

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cyclops/internal/metrics"
	"cyclops/internal/obs"
)

func TestMemCSVRoundTrip(t *testing.T) {
	steps := []obs.MemStep{
		{
			Step:         0,
			PhaseBytes:   [4]uint64{100, 2048, 333, 4},
			PhaseObjects: [4]uint64{1, 20, 3, 0},
			StepBytes:    2485, StepObjects: 24,
			GCCycles: 2, GCPauseNs: 151000, HeapGoal: 4 << 20, HeapLive: 1 << 20,
		},
		{Step: 1}, // all-zero row survives too
		{
			Step:      2,
			StepBytes: 1 << 40, StepObjects: 1 << 33, // >32-bit values
			GCPauseNs: 1,
		},
	}
	blob := obs.EncodeMemCSV(steps)
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if lines[0] != obs.MemCSVHeader {
		t.Errorf("header = %q, want MemCSVHeader", lines[0])
	}
	if len(lines) != 1+len(steps) {
		t.Fatalf("encoded %d lines, want header + %d rows", len(lines), len(steps))
	}
	got, err := obs.ParseMemCSV(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(steps) {
		t.Fatalf("parsed %d steps, want %d", len(got), len(steps))
	}
	for i := range steps {
		if got[i] != steps[i] {
			t.Errorf("step %d round-trip mismatch:\nin:  %+v\nout: %+v", i, steps[i], got[i])
		}
	}

	if _, err := obs.ParseMemCSV([]byte("step,foreign\n0,1\n")); err == nil {
		t.Error("foreign header accepted")
	}
	if _, err := obs.ParseMemCSV([]byte(obs.MemCSVHeader + "\n0,1,2\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := obs.ParseMemCSV([]byte(obs.MemCSVHeader + "\n" + strings.Repeat("x,", 14) + "x\n")); err == nil {
		t.Error("non-numeric row accepted")
	}
}

// TestMemTrackerAttribution drives the tracker through two supersteps with a
// deliberate allocation inside the compute interval and checks the telemetry:
// the allocation lands in the CMP column (plus whatever background noise the
// runtime adds — the assertion is a lower bound, never exact).
func TestMemTrackerAttribution(t *testing.T) {
	mt := obs.NewMemTracker()
	mt.OnRunStart(obs.RunInfo{Engine: "cyclops", Workers: 2})

	var sink [][]byte
	for step := 0; step < 2; step++ {
		mt.OnSuperstepStart(step)
		mt.OnPhase(step, metrics.Parse, 0)
		sink = append(sink, make([]byte, 1<<20))
		mt.OnPhase(step, metrics.Compute, 0)
		mt.OnPhase(step, metrics.Send, 0)
		mt.OnPhase(step, metrics.Sync, 0)
		mt.OnSuperstepEnd(step, metrics.StepStats{})
	}
	mt.OnConverged(1, obs.ReasonNoActive)
	_ = sink

	steps := mt.Steps()
	if len(steps) != 2 {
		t.Fatalf("tracked %d steps, want 2", len(steps))
	}
	for i, s := range steps {
		if s.Step != i {
			t.Errorf("step %d recorded as %d", i, s.Step)
		}
		if cmp := s.PhaseBytes[metrics.Compute]; cmp < 1<<20 {
			t.Errorf("step %d: CMP interval saw %d alloc bytes, want >= 1MiB", i, cmp)
		}
		if s.StepBytes < s.PhaseBytes[metrics.Compute] {
			t.Errorf("step %d: step total %d < CMP phase %d", i, s.StepBytes, s.PhaseBytes[metrics.Compute])
		}
		if s.HeapLive == 0 || s.HeapGoal == 0 {
			t.Errorf("step %d: instantaneous heap gauges empty: %+v", i, s)
		}
	}

	// /mem serves the same rows: JSON envelope by default, mem.csv with
	// ?format=csv.
	rr := httptest.NewRecorder()
	mt.ServeHTTP(rr, httptest.NewRequest("GET", "/mem", nil))
	var resp struct {
		Engine string        `json:"engine"`
		Done   bool          `json:"done"`
		Steps  []obs.MemStep `json:"steps"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("/mem JSON: %v", err)
	}
	if resp.Engine != "cyclops" || !resp.Done || len(resp.Steps) != 2 {
		t.Errorf("/mem = engine %q done %v steps %d", resp.Engine, resp.Done, len(resp.Steps))
	}
	rr = httptest.NewRecorder()
	mt.ServeHTTP(rr, httptest.NewRequest("GET", "/mem?format=csv", nil))
	if !strings.HasPrefix(rr.Body.String(), obs.MemCSVHeader+"\n") {
		t.Errorf("/mem?format=csv header = %q", strings.SplitN(rr.Body.String(), "\n", 2)[0])
	}
	parsed, err := obs.ParseMemCSV(rr.Body.Bytes())
	if err != nil || len(parsed) != 2 {
		t.Errorf("/mem?format=csv did not round-trip: %d steps, err %v", len(parsed), err)
	}

	// A new run resets the window.
	mt.OnRunStart(obs.RunInfo{Engine: "hama"})
	if got := mt.Steps(); len(got) != 0 {
		t.Errorf("steps survived OnRunStart: %d", len(got))
	}
}

// TestRegisterRuntime pins the process-level gauges: registering twice is the
// caller's bug, but one registration must expose live goroutine and heap
// numbers at every scrape.
func TestRegisterRuntime(t *testing.T) {
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_alloc_bytes gauge",
		"# TYPE go_heap_sys_bytes gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q:\n%s", want, out)
		}
	}
	// The gauges evaluate at scrape time and a live process always has at
	// least one goroutine and a non-empty heap: no sample line may be zero.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("runtime gauge scraped as zero: %q", line)
		}
	}
}

// BenchmarkPhaseSamplerOverhead measures one full superstep of memory
// observation (start + four phase boundaries + end = six runtime/metrics
// batch reads). CI runs this to watch the observatory's cost: the budget is
// <2% of per-superstep model time at scale 0.25, i.e. the six reads must stay
// in the low microseconds. runtime/metrics reads take no stop-the-world
// pause, so the cost is pure CPU.
func BenchmarkPhaseSamplerOverhead(b *testing.B) {
	mt := obs.NewMemTracker()
	mt.OnRunStart(obs.RunInfo{Engine: "bench"})
	phases := []metrics.Phase{metrics.Parse, metrics.Compute, metrics.Send, metrics.Sync}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.OnSuperstepStart(i)
		for _, p := range phases {
			mt.OnPhase(i, p, time.Microsecond)
		}
		mt.OnSuperstepEnd(i, metrics.StepStats{})
	}
}
