package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"cyclops/internal/metrics"
)

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Append([]byte(fmt.Sprintf("line-%d", i)))
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	lines := r.Lines()
	want := []string{"line-2", "line-3", "line-4"}
	for i, w := range want {
		if string(lines[i]) != w {
			t.Errorf("lines[%d] = %q, want %q", i, lines[i], w)
		}
	}
}

func TestRingWriteTo(t *testing.T) {
	r := NewRing(8)
	r.Append([]byte("a"))
	r.Append([]byte("b"))
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a\nb\n" {
		t.Fatalf("WriteTo = %q", buf.String())
	}
}

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{Level: slog.LevelDebug})

	tr.OnRunStart(RunInfo{Engine: "cyclops", Workers: 4, Vertices: 100, Edges: 400, Replicas: 37})
	tr.OnSuperstepStart(0)
	tr.OnPhase(0, metrics.Compute, 3*time.Millisecond)
	tr.OnWorkerStats(WorkerStats{Step: 0, Worker: 1, ComputeUnits: 10, Sent: 5, Received: 2})
	tr.OnSuperstepEnd(0, metrics.StepStats{Step: 0, Active: 100, Messages: 37})
	tr.OnConverged(1, ReasonNoActive)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d event lines, want 6:\n%s", len(lines), buf.String())
	}
	// Every line must be valid JSON with msg + span fields.
	msgs := make([]string, 0, len(lines))
	for _, l := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", l, err)
		}
		if _, ok := ev["span"]; !ok {
			t.Errorf("event %q has no span field", l)
		}
		msgs = append(msgs, ev["msg"].(string))
	}
	want := []string{"run-start", "superstep-start", "phase", "worker", "superstep", "run-end"}
	for i, w := range want {
		if msgs[i] != w {
			t.Errorf("event %d = %q, want %q", i, msgs[i], w)
		}
	}
	// The ring must hold the same events.
	if tr.Ring().Len() != 6 {
		t.Errorf("ring holds %d events, want 6", tr.Ring().Len())
	}
}

func TestTracerSlowPhaseDetector(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{
		Level: slog.LevelWarn, SlowFactor: 2, SlowMinSamples: 3,
	})
	tr.OnRunStart(RunInfo{Engine: "cyclops", Workers: 1})
	buf.Reset()

	// Steady phases: no warning.
	for i := 0; i < 5; i++ {
		tr.OnPhase(i, metrics.Compute, 10*time.Millisecond)
	}
	if buf.Len() != 0 {
		t.Fatalf("steady phases produced output: %s", buf.String())
	}
	// A 10x outlier beyond the warm-up must warn.
	tr.OnPhase(5, metrics.Compute, 100*time.Millisecond)
	if !strings.Contains(buf.String(), "slow-phase") {
		t.Fatalf("outlier did not trigger slow-phase: %s", buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &ev); err != nil {
		t.Fatalf("slow-phase event not JSON: %v", err)
	}
	if ev["phase"] != "CMP" {
		t.Errorf("slow-phase phase = %v, want CMP", ev["phase"])
	}
	if f, _ := ev["factor"].(float64); f < 2 {
		t.Errorf("slow-phase factor = %v, want >= 2", ev["factor"])
	}
}

func TestTracerSeparateRunsResetDetector(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{Level: slog.LevelWarn, SlowFactor: 2, SlowMinSamples: 3})
	tr.OnRunStart(RunInfo{Engine: "a"})
	for i := 0; i < 5; i++ {
		tr.OnPhase(i, metrics.Compute, time.Millisecond)
	}
	// New run: the old trailing mean must not leak into this run.
	tr.OnRunStart(RunInfo{Engine: "b"})
	buf.Reset()
	tr.OnPhase(0, metrics.Compute, 100*time.Millisecond)
	if strings.Contains(buf.String(), "slow-phase") {
		t.Fatalf("detector state leaked across runs: %s", buf.String())
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	n := Nop{}
	if Multi(nil, n) != Hooks(n) {
		t.Error("Multi with one non-nil hook should return it unwrapped")
	}
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{})
	m := Multi(tr, Nop{})
	m.OnRunStart(RunInfo{Engine: "x", Workers: 1})
	if !strings.Contains(buf.String(), "run-start") {
		t.Error("Multi did not fan out to the tracer")
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "A counter.")
	c.Add(3)
	g := reg.Gauge("test_gauge", "A gauge.")
	g.Set(1.5)
	reg.GaugeFunc("test_fn", "A gauge func.", func() float64 { return 42 })
	h := reg.Histogram("test_seconds", "A histogram.", "phase", []float64{0.1, 1})
	h.Observe("CMP", 0.05)
	h.Observe("CMP", 0.5)
	h.Observe("CMP", 5)
	reg.LabeledCounter("test_labeled_total", "Labeled.", "reason", "halt").Inc()

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_total counter",
		"test_total 3",
		"test_gauge 1.5",
		"test_fn 42",
		`test_labeled_total{reason="halt"} 1`,
		`test_seconds_bucket{phase="CMP",le="0.1"} 1`,
		`test_seconds_bucket{phase="CMP",le="1"} 2`,
		`test_seconds_bucket{phase="CMP",le="+Inf"} 3`,
		`test_seconds_count{phase="CMP"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorFoldsSteps(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	c.OnRunStart(RunInfo{Engine: "cyclops", Workers: 4, Vertices: 100, Replicas: 250})
	c.OnSuperstepStart(0)
	c.OnPhase(0, metrics.Compute, time.Millisecond)
	c.OnSuperstepEnd(0, metrics.StepStats{Active: 100, Changed: 90, Messages: 40, RedundantMessages: 3})
	c.OnSuperstepEnd(1, metrics.StepStats{Active: 50, Changed: 20, Messages: 10})
	c.OnConverged(2, ReasonNoActive)

	var buf bytes.Buffer
	reg.WriteTo(&buf)
	out := buf.String()
	for _, want := range []string{
		MetricSupersteps + " 2",
		MetricActive + " 50",
		MetricMessages + " 50",
		MetricRedundant + " 3",
		MetricReplication + " 2.5",
		MetricRunsDone + `{reason="no-active"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("collector output missing %q:\n%s", want, out)
		}
	}
}
