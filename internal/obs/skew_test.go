package obs

import (
	"math"
	"testing"

	"cyclops/internal/metrics"
)

// TestImbalanceFinite pins the edge cases the skew coefficients must survive:
// every input shape yields a finite value, and the degenerate shapes —
// no workers, one worker, uniformly idle — are all "balanced" (exactly 1).
func TestImbalanceFinite(t *testing.T) {
	cases := []struct {
		name string
		xs   []int64
		want float64
	}{
		{"nil", nil, 1},
		{"empty", []int64{}, 1},
		{"single-worker", []int64{42}, 1},
		{"single-worker-idle", []int64{0}, 1},
		{"all-zero", []int64{0, 0, 0, 0}, 1},
		{"balanced", []int64{5, 5, 5, 5}, 1},
		{"skewed", []int64{10, 0, 0, 0}, 4},
		{"negative-sum", []int64{-3, 1}, 1},
	}
	for _, c := range cases {
		got := imbalance(c.xs)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("imbalance(%s) = %v; must be finite", c.name, got)
		}
		if got != c.want {
			t.Errorf("imbalance(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSkewProfilerSingleWorker regresses the single-worker run: one worker's
// stats per superstep must fold into finite 1.0 coefficients, not NaN from a
// one-element mean.
func TestSkewProfilerSingleWorker(t *testing.T) {
	p := NewSkewProfiler(nil)
	p.OnRunStart(RunInfo{Engine: "cyclops", Workers: 1, Vertices: 4,
		WorkerReplicas: []int64{3}})
	p.OnWorkerStats(WorkerStats{Step: 0, Worker: 0, ComputeUnits: 9, Sent: 5, Received: 5, Active: 4})
	p.OnSuperstepEnd(0, metrics.StepStats{Step: 0})
	p.OnConverged(0, ReasonHalt)

	rs := p.Reports()
	if len(rs) != 1 || len(rs[0].Steps) != 1 {
		t.Fatalf("reports = %+v, want one report with one step", rs)
	}
	st := rs[0].Steps[0]
	for name, v := range map[string]float64{
		"compute": st.Compute, "sent": st.Sent, "received": st.Received,
		"active": st.Active, "replicas": rs[0].Replicas,
	} {
		if v != 1 {
			t.Errorf("single-worker %s coefficient = %v, want 1", name, v)
		}
	}
}

// TestSkewProfilerZeroMessageStep regresses the zero-traffic superstep (e.g.
// the final all-halted step): sent/received sums of zero must report balanced,
// not divide by zero.
func TestSkewProfilerZeroMessageStep(t *testing.T) {
	p := NewSkewProfiler(nil)
	p.OnRunStart(RunInfo{Engine: "hama", Workers: 2, Vertices: 4})
	for w := 0; w < 2; w++ {
		p.OnWorkerStats(WorkerStats{Step: 0, Worker: w, ComputeUnits: 3, Sent: 0, Received: 0, Active: 0})
	}
	p.OnSuperstepEnd(0, metrics.StepStats{Step: 0})
	p.OnConverged(0, ReasonNoActive)

	rs := p.Reports()
	if len(rs) != 1 || len(rs[0].Steps) != 1 {
		t.Fatalf("reports = %+v, want one report with one step", rs)
	}
	st := rs[0].Steps[0]
	if st.Sent != 1 || st.Received != 1 || st.Active != 1 {
		t.Errorf("zero-message step coefficients = %+v, want sent/received/active all 1", st)
	}
	if math.IsNaN(st.Compute) || math.IsInf(st.Compute, 0) {
		t.Errorf("compute coefficient = %v, must be finite", st.Compute)
	}
	if rs[0].Replicas != 1 {
		t.Errorf("no replicated view: replica imbalance = %v, want 1", rs[0].Replicas)
	}
}
