package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cyclops/internal/metrics"
	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// Manifest is a recorded run's identity and totals — the header of a flight
// record. Everything in it except WallNanos is deterministic for a fixed
// (experiment, engine, seed, scale, cluster) tuple, which is what lets
// cyclops-report diff manifests exactly.
type Manifest struct {
	// Run is the run directory's base name (run-NNN-<engine>).
	Run string `json:"run"`
	// Experiment is the harness experiment id ("pagerank", "fig10", ...) or
	// the CLI's ad-hoc label; empty when unknown.
	Experiment string `json:"experiment,omitempty"`
	Engine     string `json:"engine"`
	Algorithm  string `json:"algorithm,omitempty"`
	Dataset    string `json:"dataset,omitempty"`
	// Partitioner is the vertex (or edge) partitioner name.
	Partitioner string  `json:"partitioner,omitempty"`
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale,omitempty"`
	Machines    int     `json:"machines,omitempty"`
	// WorkersPerMachine is threads per machine in the simulated cluster.
	WorkersPerMachine int `json:"workers_per_machine,omitempty"`
	Workers           int `json:"workers"`
	Vertices          int `json:"vertices"`
	Edges             int `json:"edges"`
	// Replicas is the replica (Cyclops) or mirror (GAS) count; 0 for Hama.
	Replicas   int64  `json:"replicas"`
	Supersteps int    `json:"supersteps"`
	StopReason string `json:"stop_reason"`
	// Recoveries counts checkpoint recoveries during the run; Replayed is
	// the supersteps they re-executed. Both zero on fault-free runs (the
	// fields are omitted, keeping fault-free manifests byte-stable across
	// this addition).
	Recoveries int `json:"recoveries,omitempty"`
	Replayed   int `json:"replayed_supersteps,omitempty"`
	// Messages and Bytes are the run's logical message totals (sum of the
	// per-superstep comm-matrix deltas).
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	// WireBytes is the encoded on-the-wire total (sum of the per-superstep
	// wire deltas): equal to Bytes on in-process transports, strictly larger
	// on the gob RPC transport — the difference is the serialisation
	// envelope. Deterministic, so diffed exactly. Omitted when zero to keep
	// earlier manifests byte-stable.
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// ReplicaValueBytes is the replicated view's value memory (Replicas ×
	// sizeof(value)): the deterministic half of the paper's Table 4/5 memory
	// trade. Zero (omitted) for Hama, which buffers messages instead.
	ReplicaValueBytes int64 `json:"replica_value_bytes,omitempty"`
	// EdgeCut, PartitionBalance, ReplicationFactor and the ReplicaWorker*
	// trio stamp the load-time partition quality (§3.4, Fig 11): edges cut,
	// load balance (max/mean ≥ 1), replicas per vertex, and the min/median/max
	// of the per-worker replica placement. All deterministic for a fixed
	// (partitioner, seed) pair, so diffed exactly; zero values are omitted,
	// keeping earlier manifests byte-stable.
	EdgeCut           int64   `json:"edge_cut,omitempty"`
	PartitionBalance  float64 `json:"partition_balance,omitempty"`
	ReplicationFactor float64 `json:"replication_factor,omitempty"`
	ReplicaWorkerMin  int64   `json:"replica_worker_min,omitempty"`
	ReplicaWorkerMed  int64   `json:"replica_worker_median,omitempty"`
	ReplicaWorkerMax  int64   `json:"replica_worker_max,omitempty"`
	// ModelNanos is the cost model's deterministic run time estimate.
	ModelNanos float64 `json:"model_ns"`
	// WallNanos is measured wall time — the one machine-dependent field.
	WallNanos int64  `json:"wall_ns"`
	GoVersion string `json:"go_version"`
	GitRev    string `json:"git_rev,omitempty"`
	// ProfileDir and Profiles index the continuous-profiling harvest that
	// accompanied the run: the capture directory and the comma-separated
	// capture files retained when the run ended. Both empty (and omitted,
	// keeping earlier manifests byte-stable) when profiling was off.
	ProfileDir string `json:"profile_dir,omitempty"`
	Profiles   string `json:"profiles,omitempty"`
}

// RunMeta is the run context only the caller knows (the engines report graph
// shape and traffic; the CLI knows what experiment it was running and how the
// input was generated). Set it on the Recorder before the runs it describes.
type RunMeta struct {
	Experiment        string
	Algorithm         string
	Dataset           string
	Partitioner       string
	Seed              int64
	Scale             float64
	Machines          int
	WorkersPerMachine int
}

// seriesHeader is the column set of a record's series.csv: one row per
// superstep, deterministic for a fixed run configuration — byte-identical
// across same-seed runs (scheduling-independent counts, model costs and
// residual quantiles; no wall-clock). Phase wall times go to timings.csv.
var seriesHeader = []string{
	"step", "active", "changed", "messages", "redundant_messages",
	"redundant_ratio", "payload_bytes", "wire_bytes", "compute_units_max",
	"send_max", "recv_max",
	"residual_n", "residual_p50", "residual_p90", "residual_max",
	"skew_compute", "skew_sent", "skew_recv", "skew_active",
	"replicas", "replica_value_bytes", "model_ns",
}

// timingsHeader is the column set of timings.csv: the measured per-phase wall
// durations, kept apart from series.csv so machine noise never touches the
// deterministic artifact.
var timingsHeader = []string{"step", "prs_ns", "cmp_ns", "snd_ns", "syn_ns", "wall_ns"}

// Recorder is a Hooks consumer that turns every engine run into a durable run
// directory under its root: manifest.json (identity + totals), series.csv
// (deterministic per-superstep series) and timings.csv (wall-clock phase
// durations). One Recorder handles many consecutive runs — each
// OnRunStart/OnConverged pair becomes run-NNN-<engine>.
type Recorder struct {
	Nop

	root string

	mu        sync.Mutex
	seq       int
	meta      RunMeta
	cur       *recording
	manifests []Manifest
	err       error

	profileDir string
	profiles   func() []string
}

// recording is one run in flight.
type recording struct {
	manifest Manifest
	start    time.Time
	steps    []metrics.StepStats
	wall     []time.Duration // wall duration per superstep (start→end)
	stepAt   time.Time
	pending  map[int][]WorkerStats
	skew     []SkewStep
	msgs     []int64 // per-step comm-matrix message deltas
	bytes    []int64
	wire     []int64     // per-step comm-matrix wire-byte deltas
	spans    []span.Span // completed causal spans, in emission order
	mem      *memAttrib  // per-phase allocation attribution → mem.csv
	memSteps []MemStep
	heat     []HeatPartition // per-partition heat rows → heat.csv
	hot      []HotVertex     // final cumulative top-k hot set → hotset.csv
}

// NewRecorder creates the record root (if needed), verifies it is writable,
// and numbers new runs after any run-* directories already present, so
// recording into an existing root appends instead of overwriting.
func NewRecorder(root string) (*Recorder, error) {
	if err := EnsureWritableDir(root); err != nil {
		return nil, fmt.Errorf("obs: record dir: %w", err)
	}
	r := &Recorder{root: root}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("obs: record dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "run-") {
			continue
		}
		parts := strings.SplitN(e.Name(), "-", 3)
		if len(parts) < 2 {
			continue
		}
		if n, err := strconv.Atoi(parts[1]); err == nil && n > r.seq {
			r.seq = n
		}
	}
	return r, nil
}

// Dir returns the record root.
func (r *Recorder) Dir() string { return r.root }

// SetMeta sets the run context stamped into subsequent manifests.
func (r *Recorder) SetMeta(m RunMeta) {
	r.mu.Lock()
	r.meta = m
	r.mu.Unlock()
}

// SetExperiment updates only the experiment id (the bench driver switches it
// between experiments while the generator parameters stay fixed).
func (r *Recorder) SetExperiment(id string) {
	r.mu.Lock()
	r.meta.Experiment = id
	r.mu.Unlock()
}

// SetAlgorithm updates only the algorithm label.
func (r *Recorder) SetAlgorithm(algo string) {
	r.mu.Lock()
	r.meta.Algorithm = algo
	r.mu.Unlock()
}

// SetProfileSource connects a profiling harvester (its capture directory and
// a retained-files listing, typically Harvester.Dir and Harvester.Files) so
// finished manifests index the captures that accompanied the run.
func (r *Recorder) SetProfileSource(dir string, files func() []string) {
	r.mu.Lock()
	r.profileDir = dir
	r.profiles = files
	r.mu.Unlock()
}

// Err returns the first write error, if any. Check it after the runs finish:
// the Hooks interface has no error channel, so failures are deferred here.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Manifests returns the manifests of all completed runs, in run order.
func (r *Recorder) Manifests() []Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Manifest(nil), r.manifests...)
}

// OnRunStart implements Hooks: opens a new run directory.
func (r *Recorder) OnRunStart(info RunInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	m := Manifest{
		Run:               fmt.Sprintf("run-%03d-%s", r.seq, info.Engine),
		Experiment:        r.meta.Experiment,
		Engine:            info.Engine,
		Algorithm:         r.meta.Algorithm,
		Dataset:           r.meta.Dataset,
		Partitioner:       r.meta.Partitioner,
		Seed:              r.meta.Seed,
		Scale:             r.meta.Scale,
		Machines:          r.meta.Machines,
		WorkersPerMachine: r.meta.WorkersPerMachine,
		Workers:           info.Workers,
		Vertices:          info.Vertices,
		Edges:             info.Edges,
		Replicas:          info.Replicas,
		ReplicaValueBytes: info.ReplicaValueBytes,
		EdgeCut:           info.EdgeCut,
		PartitionBalance:  info.PartitionBalance,
		GoVersion:         runtime.Version(),
		GitRev:            gitRev(),
	}
	if info.Vertices > 0 {
		m.ReplicationFactor = float64(info.Replicas) / float64(info.Vertices)
	}
	if n := len(info.WorkerReplicas); n > 0 {
		sorted := append([]int64(nil), info.WorkerReplicas...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m.ReplicaWorkerMin = sorted[0]
		m.ReplicaWorkerMed = sorted[n/2]
		m.ReplicaWorkerMax = sorted[n-1]
	}
	r.cur = &recording{
		manifest: m,
		start:    time.Now(),
		pending:  make(map[int][]WorkerStats),
		mem:      newMemAttrib(),
	}
}

// OnSuperstepStart implements Hooks.
func (r *Recorder) OnSuperstepStart(step int) {
	r.mu.Lock()
	if r.cur != nil {
		r.cur.stepAt = time.Now()
		r.cur.mem.startStep(step)
	}
	r.mu.Unlock()
}

// OnPhase implements Hooks: attributes the allocation since the previous
// phase boundary to the phase that just ended (→ mem.csv, quarantined).
func (r *Recorder) OnPhase(step int, phase metrics.Phase, d time.Duration) {
	r.mu.Lock()
	if r.cur != nil {
		r.cur.mem.phase(phase)
	}
	r.mu.Unlock()
}

// OnWorkerStats implements Hooks: buffers per-worker shares for the skew
// coefficients, like the SkewProfiler.
func (r *Recorder) OnWorkerStats(ws WorkerStats) {
	r.mu.Lock()
	if r.cur != nil {
		r.cur.pending[ws.Step] = append(r.cur.pending[ws.Step], ws)
	}
	r.mu.Unlock()
}

// OnCommMatrix implements Hooks: accumulates the superstep's traffic totals.
func (r *Recorder) OnCommMatrix(step int, delta transport.MatrixSnapshot) {
	r.mu.Lock()
	if r.cur != nil {
		r.cur.msgs = append(r.cur.msgs, delta.TotalMessages())
		r.cur.bytes = append(r.cur.bytes, delta.TotalBytes())
		r.cur.wire = append(r.cur.wire, delta.TotalWireBytes())
	}
	r.mu.Unlock()
}

// OnSuperstepEnd implements Hooks: folds the superstep into the series.
func (r *Recorder) OnSuperstepEnd(step int, stats metrics.StepStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cur
	if c == nil {
		return
	}
	c.steps = append(c.steps, stats)
	c.memSteps = append(c.memSteps, c.mem.endStep())
	if c.stepAt.IsZero() {
		c.wall = append(c.wall, 0)
	} else {
		c.wall = append(c.wall, time.Since(c.stepAt))
	}
	shares := c.pending[step]
	delete(c.pending, step)
	compute := make([]int64, len(shares))
	sent := make([]int64, len(shares))
	recv := make([]int64, len(shares))
	active := make([]int64, len(shares))
	for i, ws := range shares {
		compute[i] = ws.ComputeUnits
		sent[i] = ws.Sent
		recv[i] = ws.Received
		active[i] = ws.Active
	}
	c.skew = append(c.skew, SkewStep{
		Step:     step,
		Compute:  imbalance(compute),
		Sent:     imbalance(sent),
		Received: imbalance(recv),
		Active:   imbalance(active),
	})
}

// OnHeat implements Hooks: appends the superstep's per-partition rows and
// keeps the latest cumulative hot set (the engines emit the run-so-far top-k
// each barrier, so the last one is the run's final hot set).
func (r *Recorder) OnHeat(d HeatStepData) {
	r.mu.Lock()
	if r.cur != nil {
		r.cur.heat = append(r.cur.heat, d.Partitions...)
		r.cur.hot = d.Hot
	}
	r.mu.Unlock()
}

// OnSpanEnd implements Hooks: appends the completed span to the run's
// stream. Emission order is deterministic (the engines emit post-barrier in
// worker order), so spans.csv inherits the byte-identical guarantee.
func (r *Recorder) OnSpanEnd(s span.Span) {
	r.mu.Lock()
	if r.cur != nil {
		r.cur.spans = append(r.cur.spans, s)
	}
	r.mu.Unlock()
}

// OnRecovery implements Hooks: counts the rollback in the manifest. The
// replayed supersteps appear again in series.csv — the flight record shows
// the replay, which is what makes a recovered run diffable against its
// fault-free twin.
func (r *Recorder) OnRecovery(e RecoveryEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return
	}
	r.cur.manifest.Recoveries++
	r.cur.manifest.Replayed += e.Replayed()
}

// OnConverged implements Hooks: stamps totals and writes the run directory.
func (r *Recorder) OnConverged(step int, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cur
	r.cur = nil
	if c == nil {
		return
	}
	m := &c.manifest
	m.Supersteps = len(c.steps)
	m.StopReason = reason
	for _, n := range c.msgs {
		m.Messages += n
	}
	for _, n := range c.bytes {
		m.Bytes += n
	}
	for _, n := range c.wire {
		m.WireBytes += n
	}
	for _, s := range c.steps {
		m.ModelNanos += s.ModelNanos
	}
	m.WallNanos = int64(time.Since(c.start))
	if r.profiles != nil {
		m.ProfileDir = r.profileDir
		m.Profiles = strings.Join(r.profiles(), ",")
	}
	if err := r.write(c); err != nil && r.err == nil {
		r.err = err
		return
	}
	r.manifests = append(r.manifests, *m)
}

// write materialises one recording as a run directory. The data files are
// written first and manifest.json last — atomically, via temp + fsync +
// rename — because the /runs endpoint (and ReadManifests generally) treats
// the manifest's presence as "this run is complete": a listing racing an
// in-progress flush either sees the whole run or none of it, never a
// half-written manifest or a manifest whose series is still missing.
func (r *Recorder) write(c *recording) error {
	dir := filepath.Join(r.root, c.manifest.Run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "series.csv"), c.seriesCSV(), 0o644); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "timings.csv"), c.timingsCSV(), 0o644); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	// mem.csv is quarantined like timings.csv: allocation and GC columns are
	// machine-dependent, so the perf gate reads but never exact-compares them.
	if err := os.WriteFile(filepath.Join(dir, "mem.csv"), EncodeMemCSV(c.memSteps), 0o644); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "spans.csv"), span.EncodeCSV(c.spans), 0o644); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	critpath := span.EncodeCritPathCSV(span.CriticalPath(c.spans))
	if err := os.WriteFile(filepath.Join(dir, "critpath.csv"), critpath, 0o644); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	// heat.csv and hotset.csv are deterministic like series.csv: counts only,
	// no wall-clock — byte-identical across same-seed runs.
	if err := os.WriteFile(filepath.Join(dir, "heat.csv"), EncodeHeatCSV(c.heat), 0o644); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hotset.csv"), EncodeHotsetCSV(c.hot), 0o644); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	blob, err := json.MarshalIndent(c.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	if err := atomicWriteFile(filepath.Join(dir, "manifest.json"), append(blob, '\n')); err != nil {
		return fmt.Errorf("obs: record %s: %w", c.manifest.Run, err)
	}
	return nil
}

// atomicWriteFile writes path so readers only ever observe the old content
// or the complete new content: the bytes land in a temp file in the same
// directory, are fsynced, and the temp file is renamed over path.
func atomicWriteFile(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (c *recording) seriesCSV() []byte {
	var b strings.Builder
	b.WriteString(strings.Join(seriesHeader, ","))
	b.WriteByte('\n')
	for i, s := range c.steps {
		var msgBytes, wireBytes int64
		if i < len(c.bytes) {
			msgBytes = c.bytes[i]
		}
		if i < len(c.wire) {
			wireBytes = c.wire[i]
		}
		skew := SkewStep{Compute: 1, Sent: 1, Received: 1, Active: 1}
		if i < len(c.skew) {
			skew = c.skew[i]
		}
		cols := []string{
			strconv.Itoa(s.Step),
			strconv.FormatInt(s.Active, 10),
			strconv.FormatInt(s.Changed, 10),
			strconv.FormatInt(s.Messages, 10),
			strconv.FormatInt(s.RedundantMessages, 10),
			ftoa(s.RedundantRatio()),
			strconv.FormatInt(msgBytes, 10),
			strconv.FormatInt(wireBytes, 10),
			strconv.FormatInt(s.ComputeUnitsMax, 10),
			strconv.FormatInt(s.SendMax, 10),
			strconv.FormatInt(s.RecvMax, 10),
			strconv.FormatInt(s.ResidualN, 10),
			ftoa(s.ResidualP50),
			ftoa(s.ResidualP90),
			ftoa(s.ResidualMax),
			ftoa(skew.Compute),
			ftoa(skew.Sent),
			ftoa(skew.Received),
			ftoa(skew.Active),
			strconv.FormatInt(c.manifest.Replicas, 10),
			strconv.FormatInt(c.manifest.ReplicaValueBytes, 10),
			ftoa(s.ModelNanos),
		}
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func (c *recording) timingsCSV() []byte {
	var b strings.Builder
	b.WriteString(strings.Join(timingsHeader, ","))
	b.WriteByte('\n')
	for i, s := range c.steps {
		var wall time.Duration
		if i < len(c.wall) {
			wall = c.wall[i]
		}
		cols := []string{
			strconv.Itoa(s.Step),
			strconv.FormatInt(s.Durations[metrics.Parse].Nanoseconds(), 10),
			strconv.FormatInt(s.Durations[metrics.Compute].Nanoseconds(), 10),
			strconv.FormatInt(s.Durations[metrics.Send].Nanoseconds(), 10),
			strconv.FormatInt(s.Durations[metrics.Sync].Nanoseconds(), 10),
			strconv.FormatInt(wall.Nanoseconds(), 10),
		}
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ReadManifests loads the manifests of every run-* directory under root,
// sorted by run name (i.e. recording order).
func ReadManifests(root string) ([]Manifest, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("obs: read record dir: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "run-") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(root, e.Name(), "manifest.json"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // a foreign or half-written directory; skip it
			}
			return nil, fmt.Errorf("obs: read manifest: %w", err)
		}
		var m Manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return nil, fmt.Errorf("obs: parse %s/manifest.json: %w", e.Name(), err)
		}
		if m.Run == "" {
			m.Run = e.Name()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out, nil
}

// gitRev reports the vcs revision baked into the binary by the Go toolchain,
// with a "-dirty" suffix for modified working trees. Empty for test binaries
// and builds outside a repository.
func gitRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" && modified == "true" {
		rev += "-dirty"
	}
	return rev
}
