package span_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cyclops/internal/obs/span"
)

// TestIDStructuralAndUnique pins the ID packing: identity is a pure function
// of (kind, step, worker, from) — no counters, no clocks — and distinct
// structural positions never collide.
func TestIDStructuralAndUnique(t *testing.T) {
	if span.ID(span.Compute, 3, 2, -1) != span.ID(span.Compute, 3, 2, -1) {
		t.Fatal("same structural position produced different IDs")
	}
	seen := map[int64]string{}
	for _, k := range []span.Kind{span.Run, span.Superstep, span.Parse, span.Compute,
		span.Serialize, span.Send, span.BarrierWait, span.Deliver} {
		for _, step := range []int{-1, 0, 1, 100} {
			for _, worker := range []int{-1, 0, 3} {
				for _, from := range []int{-1, 0, 2} {
					id := span.ID(k, step, worker, from)
					key := k.String() + "/" + string(rune(step+2)) + "/" + string(rune(worker+2)) + "/" + string(rune(from+2))
					if prev, dup := seen[id]; dup {
						t.Fatalf("ID collision: %s and %s both pack to %d", prev, key, id)
					}
					seen[id] = key
				}
			}
		}
	}
	if span.RunID() != span.ID(span.Run, -1, -1, -1) {
		t.Error("RunID() diverged from ID(Run,-1,-1,-1)")
	}
	if span.StepID(7) != span.ID(span.Superstep, 7, -1, -1) {
		t.Error("StepID diverged")
	}
	if span.SendID(7, 2) != span.ID(span.Send, 7, 2, -1) {
		t.Error("SendID diverged")
	}
}

// stepSpans builds one superstep's canonical span stream: per-worker spans
// then the Superstep span, the emission order EmitStepSpans promises.
func stepSpans(step int, wall time.Duration, workers int, units, msgs []int64, durs []time.Duration) []span.Span {
	var out []span.Span
	for w := 0; w < workers; w++ {
		out = append(out,
			span.Span{ID: span.ID(span.Compute, step, w, -1), Kind: span.Compute,
				Step: step, Worker: w, Units: units[w], Dur: durs[w]},
			span.Span{ID: span.ID(span.Serialize, step, w, -1), Kind: span.Serialize,
				Step: step, Worker: w, Dur: durs[w] / 10},
			span.Span{ID: span.ID(span.Send, step, w, -1), Kind: span.Send,
				Step: step, Worker: w, Msgs: msgs[w], Dur: durs[w] / 4},
		)
	}
	out = append(out, span.Span{ID: span.StepID(step), Kind: span.Superstep,
		Step: step, Dur: wall})
	return out
}

func TestCriticalPathPicksDeterministicGatingWorker(t *testing.T) {
	// Worker 1 carries the largest deterministic load (units+msgs), even
	// though worker 0's measured duration is longer — gating must follow the
	// weights, not the clock.
	spans := stepSpans(0, 10*time.Millisecond, 3,
		[]int64{10, 50, 5}, []int64{1, 8, 2},
		[]time.Duration{9 * time.Millisecond, time.Millisecond, time.Millisecond})
	paths := span.CriticalPath(spans)
	if len(paths) != 1 {
		t.Fatalf("got %d path rows, want 1", len(paths))
	}
	p := paths[0]
	if p.Gating != 1 || p.Weight != 58 {
		t.Fatalf("gating = w%d weight %d, want w1 weight 58", p.Gating, p.Weight)
	}
	// The four columns account for the superstep wall exactly.
	if p.Wall() != (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("path wall %d != superstep wall %d", p.Wall(), (10 * time.Millisecond).Nanoseconds())
	}
	wantCompute := time.Millisecond.Nanoseconds()
	if p.ComputeNs != wantCompute {
		t.Errorf("ComputeNs = %d, want gating worker's %d", p.ComputeNs, wantCompute)
	}
	if p.BarrierNs != p.Wall()-p.ComputeNs-p.SerializeNs-p.SendNs {
		t.Errorf("BarrierNs %d is not the wall remainder", p.BarrierNs)
	}

	// Ties break to the lowest worker id, deterministically.
	tied := stepSpans(1, time.Millisecond, 2,
		[]int64{7, 7}, []int64{0, 0},
		[]time.Duration{time.Microsecond, time.Microsecond})
	if got := span.CriticalPath(tied); len(got) != 1 || got[0].Gating != 0 {
		t.Fatalf("tie broke to %+v, want worker 0", got)
	}
}

func TestCriticalPathMultiStepAndGatingSequence(t *testing.T) {
	var spans []span.Span
	spans = append(spans, stepSpans(0, time.Millisecond, 2,
		[]int64{9, 1}, []int64{0, 0}, []time.Duration{time.Microsecond, time.Microsecond})...)
	spans = append(spans, stepSpans(1, time.Millisecond, 2,
		[]int64{1, 9}, []int64{0, 0}, []time.Duration{time.Microsecond, time.Microsecond})...)
	paths := span.CriticalPath(spans)
	if len(paths) != 2 {
		t.Fatalf("got %d rows, want 2", len(paths))
	}
	if got, want := span.GatingSequence(paths), "0:0 1:1"; got != want {
		t.Fatalf("GatingSequence = %q, want %q", got, want)
	}
}

func TestSpansCSVDeterministicAndDurationFree(t *testing.T) {
	spans := stepSpans(0, 3*time.Millisecond, 2,
		[]int64{4, 2}, []int64{1, 1}, []time.Duration{time.Millisecond, time.Millisecond})
	a := span.EncodeCSV(spans)
	// Re-encode with every duration perturbed: the CSV must not move a byte.
	for i := range spans {
		spans[i].Dur *= 7
		spans[i].Start += time.Second
	}
	b := span.EncodeCSV(spans)
	if !bytes.Equal(a, b) {
		t.Fatalf("spans.csv depends on measured durations:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(string(a), "id,parent,kind,step,worker,from,units,msgs\n") {
		t.Fatalf("spans.csv header = %q", strings.SplitN(string(a), "\n", 2)[0])
	}
}

func TestCritPathCSVRoundTrip(t *testing.T) {
	in := []span.StepPath{
		{Step: 0, Gating: 1, Weight: 58, ComputeNs: 1000, SerializeNs: 100, SendNs: 250, BarrierNs: 8650},
		{Step: 1, Gating: 0, Weight: 7, ComputeNs: 1, BarrierNs: 999},
	}
	out, err := span.ParseCritPathCSV(span.EncodeCritPathCSV(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d rows, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("row %d changed: %+v -> %+v", i, in[i], out[i])
		}
	}
	if _, err := span.ParseCritPathCSV([]byte("not,a,critpath\n")); err == nil {
		t.Error("bogus header accepted")
	}
	if _, err := span.ParseCritPathCSV([]byte(
		"step,gating_worker,weight,compute_ns,serialize_ns,send_ns,barrier_wait_ns\n1,2\n")); err == nil {
		t.Error("short row accepted")
	}
}

func TestMergeDeliveries(t *testing.T) {
	ctx := func(step int32, w int32) span.Context { return span.Context{Run: 1, Step: step, Worker: w} }
	// Same (From, Ctx) aggregates; distinct contexts stay separate; result is
	// sorted by sender then step regardless of arrival order.
	got := span.MergeDeliveries(nil, []span.Delivery{
		{From: 2, Ctx: ctx(0, 2), Msgs: 3},
		{From: 0, Ctx: ctx(0, 0), Msgs: 1},
	})
	got = span.MergeDeliveries(got, []span.Delivery{
		{From: 2, Ctx: ctx(0, 2), Msgs: 4},
		{From: 2, Ctx: ctx(1, 2), Msgs: 5},
	})
	want := []span.Delivery{
		{From: 0, Ctx: ctx(0, 0), Msgs: 1},
		{From: 2, Ctx: ctx(0, 2), Msgs: 7},
		{From: 2, Ctx: ctx(1, 2), Msgs: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("merged = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteWaterfallRendersStream(t *testing.T) {
	spans := []span.Span{
		{ID: span.RunID(), Kind: span.Run, Run: 1, Step: -1, Dur: 10 * time.Millisecond},
	}
	spans = append(spans, span.Span{ID: span.ID(span.Deliver, 1, 0, 1), Kind: span.Deliver,
		Parent: span.SendID(0, 1), Step: 1, Worker: 0, From: 1, Msgs: 12})
	spans = append(spans, stepSpans(1, 2*time.Millisecond, 1,
		[]int64{5}, []int64{3}, []time.Duration{time.Millisecond})...)
	var sb strings.Builder
	span.WriteWaterfall(&sb, spans)
	out := sb.String()
	for _, want := range []string{"run 1", "superstep 1", "compute", "send", "<- w1", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
}

func TestContextTagged(t *testing.T) {
	if (span.Context{}).Tagged() {
		t.Error("zero context claims to be tagged")
	}
	if !(span.Context{Run: 1}).Tagged() {
		t.Error("run-1 context claims to be untagged")
	}
}
