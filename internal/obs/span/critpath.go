package span

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// StepPath is one superstep's critical-path attribution: the worker that
// gated the barrier and where its time went. Gating is decided by the
// deterministic per-worker weight (compute units + messages sent +
// messages received, ties to the lowest worker id), NOT by measured wall
// clock — so the gating worker, like the span structure, is byte-identical
// across same-seed runs. The _ns fields are the gating worker's measured
// durations and are quarantined like timings.csv.
type StepPath struct {
	Step   int
	Gating int
	// Weight is the gating worker's deterministic load score.
	Weight int64
	// ComputeNs is the gating worker's parse+compute time (the paper's
	// "computation" side); SerializeNs and SendNs split its communication
	// side; BarrierNs is the superstep wall minus the gating worker's busy
	// time. The four columns sum to the superstep wall exactly — which is
	// how `cyclops-report show --critpath` reconciles against timings.csv.
	ComputeNs   int64
	SerializeNs int64
	SendNs      int64
	BarrierNs   int64
}

// Wall is the superstep wall this path row accounts for.
func (p StepPath) Wall() int64 { return p.ComputeNs + p.SerializeNs + p.SendNs + p.BarrierNs }

// CriticalPath folds a span stream into per-superstep path rows, in stream
// order (a recovered run's replayed supersteps appear again, mirroring
// series.csv). Spans must arrive in the canonical emission order: a
// superstep's worker spans first, then its Superstep span.
func CriticalPath(spans []Span) []StepPath {
	type acc struct {
		weight                   []int64
		compute, serialize, send []int64
		seen                     int
	}
	var out []StepPath
	cur := acc{}
	grow := func(w int) {
		for len(cur.weight) <= w {
			cur.weight = append(cur.weight, 0)
			cur.compute = append(cur.compute, 0)
			cur.serialize = append(cur.serialize, 0)
			cur.send = append(cur.send, 0)
		}
	}
	for _, s := range spans {
		switch s.Kind {
		case Parse:
			grow(s.Worker)
			cur.weight[s.Worker] += s.Msgs
			cur.compute[s.Worker] += s.Dur.Nanoseconds()
		case Compute:
			grow(s.Worker)
			cur.weight[s.Worker] += s.Units
			cur.compute[s.Worker] += s.Dur.Nanoseconds()
		case Serialize:
			grow(s.Worker)
			cur.serialize[s.Worker] += s.Dur.Nanoseconds()
		case Send:
			grow(s.Worker)
			cur.weight[s.Worker] += s.Msgs
			cur.send[s.Worker] += s.Dur.Nanoseconds()
		case Superstep:
			gating, best := 0, int64(-1)
			for w, wt := range cur.weight {
				if wt > best {
					gating, best = w, wt
				}
			}
			p := StepPath{Step: s.Step, Gating: gating, Weight: best}
			if best < 0 {
				p.Weight = 0
			}
			if gating < len(cur.weight) {
				p.ComputeNs = cur.compute[gating]
				p.SerializeNs = cur.serialize[gating]
				p.SendNs = cur.send[gating]
			}
			p.BarrierNs = s.Dur.Nanoseconds() - p.ComputeNs - p.SerializeNs - p.SendNs
			out = append(out, p)
			cur = acc{}
		}
	}
	return out
}

// spansHeader is the column set of spans.csv: structure and deterministic
// weights only — no durations, so the file is byte-identical across
// same-seed runs.
var spansHeader = []string{"id", "parent", "kind", "step", "worker", "from", "units", "msgs"}

// EncodeCSV renders the deterministic spans.csv.
func EncodeCSV(spans []Span) []byte {
	var b strings.Builder
	b.WriteString(strings.Join(spansHeader, ","))
	b.WriteByte('\n')
	for _, s := range spans {
		cols := []string{
			strconv.FormatInt(s.ID, 10),
			strconv.FormatInt(s.Parent, 10),
			s.Kind.String(),
			strconv.Itoa(s.Step),
			strconv.Itoa(s.Worker),
			strconv.Itoa(s.From),
			strconv.FormatInt(s.Units, 10),
			strconv.FormatInt(s.Msgs, 10),
		}
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// critPathHeader is the column set of critpath.csv. The first three columns
// are deterministic (structure); the *_ns columns are measured wall clock,
// quarantined here exactly as timings.csv quarantines phase walls.
var critPathHeader = []string{
	"step", "gating_worker", "weight",
	"compute_ns", "serialize_ns", "send_ns", "barrier_wait_ns",
}

// EncodeCritPathCSV renders critpath.csv from path rows.
func EncodeCritPathCSV(paths []StepPath) []byte {
	var b strings.Builder
	b.WriteString(strings.Join(critPathHeader, ","))
	b.WriteByte('\n')
	for _, p := range paths {
		cols := []string{
			strconv.Itoa(p.Step),
			strconv.Itoa(p.Gating),
			strconv.FormatInt(p.Weight, 10),
			strconv.FormatInt(p.ComputeNs, 10),
			strconv.FormatInt(p.SerializeNs, 10),
			strconv.FormatInt(p.SendNs, 10),
			strconv.FormatInt(p.BarrierNs, 10),
		}
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseCritPathCSV parses what EncodeCritPathCSV wrote (header required).
func ParseCritPathCSV(blob []byte) ([]StepPath, error) {
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) == 0 || lines[0] != strings.Join(critPathHeader, ",") {
		return nil, fmt.Errorf("span: critpath.csv: unrecognised header")
	}
	var out []StepPath
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		f := strings.Split(ln, ",")
		if len(f) != len(critPathHeader) {
			return nil, fmt.Errorf("span: critpath.csv: %d columns, want %d", len(f), len(critPathHeader))
		}
		var p StepPath
		var err error
		ints := []*int64{nil, nil, &p.Weight, &p.ComputeNs, &p.SerializeNs, &p.SendNs, &p.BarrierNs}
		if p.Step, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("span: critpath.csv: step %q", f[0])
		}
		if p.Gating, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("span: critpath.csv: gating_worker %q", f[1])
		}
		for i := 2; i < len(f); i++ {
			if ints[i] == nil {
				continue
			}
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("span: critpath.csv: %s %q", critPathHeader[i], f[i])
			}
			*ints[i] = v
		}
		out = append(out, p)
	}
	return out, nil
}

// GatingSequence compresses path rows to the structural signature diffs
// compare: "step:gatingWorker" joined by spaces, durations excluded.
func GatingSequence(paths []StepPath) string {
	parts := make([]string, len(paths))
	for i, p := range paths {
		parts[i] = fmt.Sprintf("%d:%d", p.Step, p.Gating)
	}
	return strings.Join(parts, " ")
}

// WriteWaterfall renders a plain-text per-superstep waterfall of a span
// stream: one block per superstep, one bar per worker span, scaled to the
// superstep wall. Deliver spans print as arrows under their receiver.
func WriteWaterfall(w io.Writer, spans []Span) {
	const width = 40
	var step []Span
	flush := func(top Span) {
		fmt.Fprintf(w, "superstep %d  wall=%s\n", top.Step, top.Dur)
		wall := top.Dur
		if wall <= 0 {
			wall = 1
		}
		for _, s := range step {
			switch s.Kind {
			case Deliver:
				fmt.Fprintf(w, "  w%-3d %-12s %6d msgs  <- w%d@step%d\n",
					s.Worker, s.Kind, s.Msgs, s.From, int((s.Parent>>32)&0xFFFFFF)-1)
			default:
				off := int(int64(width) * int64(s.Start-top.Start) / int64(wall))
				n := int(int64(width) * int64(s.Dur) / int64(wall))
				if off < 0 {
					off = 0
				}
				if off > width {
					off = width
				}
				if n < 1 {
					n = 1
				}
				if off+n > width {
					n = width - off
					if n < 1 {
						n = 1
						off = width - 1
					}
				}
				bar := strings.Repeat(" ", off) + strings.Repeat("#", n)
				fmt.Fprintf(w, "  w%-3d %-12s |%-*s| %s\n", s.Worker, s.Kind, width, bar, s.Dur.Round(time.Microsecond))
			}
		}
		step = step[:0]
	}
	for _, s := range spans {
		switch s.Kind {
		case Run:
			fmt.Fprintf(w, "run %d  wall=%s\n", s.Run, s.Dur)
		case Superstep:
			flush(s)
		default:
			step = append(step, s)
		}
	}
}
