// Package span models causal spans for the observability layer: every phase
// of every superstep of a run becomes a span with a deterministic structural
// identity (kind, superstep, worker) and a parent link, so the span stream of
// two same-seed runs is structurally byte-identical even though the measured
// durations differ. Message batches carry the sending span's Context across
// the transport, which lets the receive side link its delivery spans to the
// sender causally — the cross-worker edge a wall-clock trace cannot provide.
//
// The package deliberately imports nothing from the rest of the tree (only
// the standard library), so the transports can depend on it without creating
// a cycle with obs.
package span

import (
	"fmt"
	"time"
)

// Kind classifies a span.
type Kind uint8

const (
	// Run is the root span of one engine run.
	Run Kind = iota
	// Superstep covers one superstep, parented by the run span.
	Superstep
	// Parse covers one worker's receive/parse phase of one superstep.
	Parse
	// Compute covers one worker's compute phase of one superstep.
	Compute
	// Serialize covers the wire-serialisation share of one worker's send
	// phase (zero on the in-process transport, which never encodes).
	Serialize
	// Send covers one worker's send phase minus its serialisation share.
	Send
	// BarrierWait is the slack between a worker's busy time and the
	// superstep wall: the time the worker spent blocked on barriers.
	BarrierWait
	// Deliver covers one drained sender→receiver batch group on the receive
	// side, parented by the *sender's* Send span via the frame tag.
	Deliver

	numKinds
)

// String implements fmt.Stringer with the short names used in spans.csv.
func (k Kind) String() string {
	switch k {
	case Run:
		return "run"
	case Superstep:
		return "superstep"
	case Parse:
		return "parse"
	case Compute:
		return "compute"
	case Serialize:
		return "serialize"
	case Send:
		return "send"
	case BarrierWait:
		return "barrier-wait"
	case Deliver:
		return "deliver"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ID packs a span's structural identity into one int64:
//
//	kind<<56 | (step+1)<<32 | (worker+1)<<16 | (from+1)
//
// Identity is purely structural — no sequence counters, no clocks — which is
// what makes span IDs and parent links byte-identical across same-seed runs.
// step, worker and from use -1 for "not applicable" (the run span has no
// step; run and superstep spans have no worker; only Deliver spans have a
// sending peer), so the packed fields stay non-negative.
func ID(kind Kind, step, worker, from int) int64 {
	return int64(kind)<<56 | int64(step+1)<<32 | int64(worker+1)<<16 | int64(from+1)
}

// RunID is the run root span's ID.
func RunID() int64 { return ID(Run, -1, -1, -1) }

// StepID is superstep `step`'s span ID.
func StepID(step int) int64 { return ID(Superstep, step, -1, -1) }

// SendID is the ID of worker `worker`'s send span in superstep `step` — the
// parent the receive side assigns to a Deliver span from that worker's tag.
func SendID(step, worker int) int64 { return ID(Send, step, worker, -1) }

// Span is one completed (or, for live views, still-open) span.
type Span struct {
	ID     int64
	Parent int64
	// Run numbers the engine's runs starting at 1 (deterministic: a fresh
	// engine's first run is always 1).
	Run int64
	// Step is the superstep, -1 for the run span.
	Step int
	// Worker is the owning worker, -1 for run and superstep spans.
	Worker int
	// From is the sending worker of a Deliver span, -1 otherwise.
	From int
	Kind Kind
	// Units and Msgs are the span's deterministic weights: edges scanned for
	// Compute, messages for Parse/Send/Deliver.
	Units int64
	Msgs  int64
	// Start is the span's monotonic offset from the run start; Dur its
	// measured duration. Both are wall-clock derived and therefore
	// quarantined: they never reach the deterministic spans.csv columns.
	Start time.Duration
	Dur   time.Duration
}

// Context is the causal tag a sender stamps on outgoing frames: enough for
// the receiver to reconstruct the sending span's identity. The zero Context
// means "untagged" (engine runs number from 1, so Run==0 never collides).
type Context struct {
	Run    int64
	Step   int32
	Worker int32
}

// Tagged reports whether the context carries a real tag.
func (c Context) Tagged() bool { return c.Run != 0 }

// Delivery is the receive-side provenance of one drained sender→receiver
// batch group: who sent it, under which span context, and how many messages.
type Delivery struct {
	From int
	Ctx  Context
	Msgs int64
}

// MergeDeliveries folds `more` into `dst`, aggregating message counts by
// (From, Ctx) and keeping the result sorted by sender (then step) so the
// merged order is scheduling-independent. It owns and returns dst.
func MergeDeliveries(dst, more []Delivery) []Delivery {
	for _, d := range more {
		dst = AddDelivery(dst, d)
	}
	return dst
}

// AddDelivery merges a single delivery into dst, which must already be
// sorted by (From, Ctx.Step) — the order MergeDeliveries and AddDelivery
// both maintain. This is the transports' per-batch hot path: unlike a
// MergeDeliveries call with a one-element slice, it builds no temporary
// slice and runs no sort, so folding a batch's provenance into a
// capacity-reused deliveries list allocates nothing in steady state.
func AddDelivery(dst []Delivery, d Delivery) []Delivery {
	for i := range dst {
		if dst[i].From == d.From && dst[i].Ctx == d.Ctx {
			dst[i].Msgs += d.Msgs
			return dst
		}
	}
	// Sorted insert. Distinct entries with equal (From, Step) keys cannot
	// arise from one drain window (a sender stamps one context per step), so
	// insertion position is unambiguous and the result matches what the old
	// append-then-sort produced.
	pos := len(dst)
	for i := range dst {
		if dst[i].From > d.From ||
			(dst[i].From == d.From && dst[i].Ctx.Step > d.Ctx.Step) {
			pos = i
			break
		}
	}
	dst = append(dst, Delivery{})
	copy(dst[pos+1:], dst[pos:])
	dst[pos] = d
	return dst
}
