package obs

import (
	"bytes"
	"reflect"
	"testing"

	"cyclops/internal/transport"
)

func sampleHeatRows() []HeatPartition {
	return []HeatPartition{
		{Step: 0, Worker: 0, Active: 5, ComputeUnits: 12, OutInterior: 3,
			OutBoundary: 7, InInterior: 3, InBoundary: 4, ReplicaSync: 7},
		{Step: 0, Worker: 1, Active: 4, ComputeUnits: 9, OutInterior: 2,
			OutBoundary: 4, InInterior: 2, InBoundary: 7, ReplicaSync: 4},
		{Step: 1, Worker: 0, Active: 0, ComputeUnits: 0},
		{Step: 1, Worker: 1, Active: 1, ComputeUnits: 3, OutBoundary: 1},
	}
}

// TestHeatCSVRoundTrip pins the exact Encode/Parse contract: rows survive the
// round trip unchanged, and re-encoding yields the identical bytes — the
// property heat.csv's byte-identity guarantee is built on.
func TestHeatCSVRoundTrip(t *testing.T) {
	rows := sampleHeatRows()
	blob := EncodeHeatCSV(rows)
	back, err := ParseHeatCSV(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Errorf("round trip changed rows:\nin:  %+v\nout: %+v", rows, back)
	}
	if again := EncodeHeatCSV(back); !bytes.Equal(blob, again) {
		t.Errorf("re-encode differs:\nfirst:\n%s\nsecond:\n%s", blob, again)
	}

	// Empty input still round-trips (a run with zero supersteps).
	empty, err := ParseHeatCSV(EncodeHeatCSV(nil))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty round trip = %v rows, err %v", empty, err)
	}

	// Strictness: wrong header, short rows and non-numeric fields all fail.
	for name, blob := range map[string][]byte{
		"bad-header": []byte("step,worker\n0,0\n"),
		"short-row":  []byte(HeatCSVHeader + "\n0,0,1\n"),
		"non-int":    []byte(HeatCSVHeader + "\n0,0,x,0,0,0,0,0,0\n"),
	} {
		if _, err := ParseHeatCSV(blob); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestHotsetCSVRoundTrip is the same contract for hotset.csv, including the
// contiguous-rank check.
func TestHotsetCSVRoundTrip(t *testing.T) {
	hot := []HotVertex{
		{Vertex: 7, Worker: 1, Msgs: 30, Units: 12},
		{Vertex: 2, Worker: 0, Msgs: 30, Units: 40},
		{Vertex: 9, Worker: 3, Msgs: 1, Units: 0},
	}
	blob := EncodeHotsetCSV(hot)
	back, err := ParseHotsetCSV(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hot, back) {
		t.Errorf("round trip changed hotset:\nin:  %+v\nout: %+v", hot, back)
	}
	if again := EncodeHotsetCSV(back); !bytes.Equal(blob, again) {
		t.Errorf("re-encode differs:\nfirst:\n%s\nsecond:\n%s", blob, again)
	}
	if _, err := ParseHotsetCSV([]byte(HotsetCSVHeader + "\n2,7,1,30,12\n")); err == nil {
		t.Error("non-contiguous rank accepted")
	}
}

// TestTopHotVerticesDeterministicUnderTies pins the hot-set order: Msgs
// descending, vertex id ascending on ties — a total order, so the same
// counters always produce the same set regardless of scan pattern.
func TestTopHotVerticesDeterministicUnderTies(t *testing.T) {
	// Vertices 1, 3, 5 tie at 10 msgs; 2 and 4 tie at 20; 0 and 6 are cold.
	msgs := []int64{0, 10, 20, 10, 20, 10, 0}
	units := []int64{0, 1, 2, 3, 4, 5, 0}
	owner := func(v int) int { return v % 2 }

	want := []HotVertex{
		{Vertex: 2, Worker: 0, Msgs: 20, Units: 2},
		{Vertex: 4, Worker: 0, Msgs: 20, Units: 4},
		{Vertex: 1, Worker: 1, Msgs: 10, Units: 1},
		{Vertex: 3, Worker: 1, Msgs: 10, Units: 3},
	}
	got := TopHotVertices(msgs, units, owner, 4)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("top-4 under ties:\ngot  %+v\nwant %+v", got, want)
	}

	// Truncation cuts inside the tie group deterministically: vertex 3 (tied
	// with 1 and 5 at 10) is excluded by its larger id, never by scan order.
	got3 := TopHotVertices(msgs, units, owner, 3)
	if !reflect.DeepEqual(got3, want[:3]) {
		t.Errorf("top-3 under ties:\ngot  %+v\nwant %+v", got3, want[:3])
	}

	// A vertex with compute but no messages still qualifies (sorted last);
	// k larger than the qualifying set yields a shorter slice.
	all := TopHotVertices([]int64{0, 0}, []int64{0, 9}, owner, 16)
	if len(all) != 1 || all[0].Vertex != 1 || all[0].Units != 9 {
		t.Errorf("compute-only vertex: %+v", all)
	}
	if got := TopHotVertices(nil, nil, owner, 16); len(got) != 0 {
		t.Errorf("empty counters produced a hot set: %+v", got)
	}
}

// TestBuildHeatPartitions pins the interior/boundary split against a known
// traffic matrix: the diagonal is interior, row sums minus the diagonal are
// out-boundary, column sums minus the diagonal in-boundary.
func TestBuildHeatPartitions(t *testing.T) {
	delta := transport.MatrixSnapshot{
		Workers: 2,
		Messages: [][]int64{
			{3, 7},
			{4, 2},
		},
	}
	rows := BuildHeatPartitions(5, delta, []int64{10, 20}, []int64{100, 200}, []int64{7, 4})
	want := []HeatPartition{
		{Step: 5, Worker: 0, Active: 10, ComputeUnits: 100, OutInterior: 3,
			OutBoundary: 7, InInterior: 3, InBoundary: 4, ReplicaSync: 7},
		{Step: 5, Worker: 1, Active: 20, ComputeUnits: 200, OutInterior: 2,
			OutBoundary: 4, InInterior: 2, InBoundary: 7, ReplicaSync: 4},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("rows:\ngot  %+v\nwant %+v", rows, want)
	}

	// nil sync (no replicated view) leaves the column zero.
	rows = BuildHeatPartitions(0, delta, []int64{1, 1}, []int64{1, 1}, nil)
	for _, r := range rows {
		if r.ReplicaSync != 0 {
			t.Errorf("worker %d: replica_sync = %d without a replicated view", r.Worker, r.ReplicaSync)
		}
	}
}
