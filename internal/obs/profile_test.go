package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cyclops/internal/obs"
)

// TestHarvesterCapturesAndRotates runs the harvester on a tiny interval long
// enough for several rounds and checks the contract: capture files on disk, a
// parseable index.json, and rotation bounding the retained captures per kind.
func TestHarvesterCapturesAndRotates(t *testing.T) {
	dir := t.TempDir()
	h, err := obs.NewHarvester(dir, obs.HarvesterOptions{
		Interval: 20 * time.Millisecond, CPUWindow: 5 * time.Millisecond, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.OnRunStart(obs.RunInfo{Engine: "harvest-test", Workers: 1})
	h.Start()
	for step := 0; step < 5; step++ {
		h.OnSuperstepStart(step)
		time.Sleep(25 * time.Millisecond)
	}
	h.OnConverged(4, "halt")
	h.Stop()
	if err := h.Err(); err != nil {
		t.Fatalf("harvester error: %v", err)
	}

	index := h.Index()
	if len(index) == 0 {
		t.Fatal("no captures after 5 rounds")
	}
	perKind := map[string]int{}
	for _, c := range index {
		perKind[c.Kind]++
		if c.Error != "" {
			t.Errorf("capture %d (%s) failed: %s", c.Seq, c.Kind, c.Error)
			continue
		}
		if c.Engine != "harvest-test" {
			t.Errorf("capture %d engine = %q", c.Seq, c.Engine)
		}
		fi, err := os.Stat(filepath.Join(dir, c.File))
		if err != nil {
			t.Errorf("indexed capture missing on disk: %v", err)
		} else if fi.Size() == 0 {
			t.Errorf("capture %s is empty", c.File)
		}
	}
	for kind, n := range perKind {
		if n > 2 {
			t.Errorf("rotation kept %d %s captures, Keep is 2", n, kind)
		}
	}

	// The on-disk index must parse and agree with the in-memory one, and the
	// rotated-out files must actually be gone.
	blob, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk []obs.ProfileCapture
	if err := json.Unmarshal(blob, &onDisk); err != nil {
		t.Fatalf("index.json does not parse: %v", err)
	}
	if len(onDisk) != len(index) {
		t.Errorf("index.json has %d entries, memory has %d", len(onDisk), len(index))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	indexed := map[string]bool{"index.json": true}
	for _, c := range index {
		indexed[c.File] = true
	}
	for _, e := range entries {
		if !indexed[e.Name()] {
			t.Errorf("rotated-out file %s still on disk", e.Name())
		}
	}
}

// TestHarvesterShortRunStillLeavesEvidence: a run shorter than the capture
// interval must not end with an empty profile dir — Stop's final round leaves
// a heap snapshot and the index behind.
func TestHarvesterShortRunStillLeavesEvidence(t *testing.T) {
	dir := t.TempDir()
	h, err := obs.NewHarvester(dir, obs.HarvesterOptions{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	h.OnRunStart(obs.RunInfo{Engine: "blink", Workers: 1})
	h.Start()
	h.OnSuperstepStart(3)
	h.Stop()
	if err := h.Err(); err != nil {
		t.Fatalf("harvester error: %v", err)
	}
	index := h.Index()
	if len(index) != 1 || index[0].Kind != "heap" {
		t.Fatalf("final round index = %+v, want one heap capture", index)
	}
	if index[0].Step != 3 {
		t.Errorf("final capture stamped step %d, want 3", index[0].Step)
	}
	if _, err := os.Stat(filepath.Join(dir, index[0].File)); err != nil {
		t.Errorf("final heap capture missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Errorf("index.json missing after short run: %v", err)
	}
}
