package obs_test

// Flight recorder tests: run directories carry a faithful manifest and a
// deterministic series, same-seed runs of every engine produce byte-identical
// series.csv files (the guarantee cyclops-report's exact diff relies on), and
// the writable-path preflight helpers reject unusable paths at flag-parse
// time instead of after a run.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cyclops/internal/algorithms"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
)

// recordOne runs one engine over g with a fresh Recorder in dir and returns
// the run's manifest.
func recordOne(t *testing.T, dir, engine string, g *graph.Graph) obs.Manifest {
	t.Helper()
	rec, err := obs.NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetMeta(obs.RunMeta{Experiment: "test", Algorithm: "PR", Dataset: "wiki",
		Partitioner: "hash", Seed: 1, Scale: 0.02, Machines: 2, WorkersPerMachine: 2})
	cc := cluster.Flat(2, 2)
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	resid := func(a, b float64) float64 { return abs(a - b) }
	switch engine {
	case "cyclops":
		e, err := cyclops.New[float64, float64](g, algorithms.PageRankCyclops{Eps: 1e-6},
			cyclops.Config[float64, float64]{Cluster: cc, MaxSupersteps: 30, Hooks: rec,
				Equal:    func(a, b float64) bool { return abs(a-b) < 1e-6 },
				Residual: resid})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	case "hama":
		e, err := bsp.New[float64, float64](g, algorithms.PageRankBSP{Eps: 1e-6},
			bsp.Config[float64, float64]{Cluster: cc, MaxSupersteps: 30, Hooks: rec,
				Equal:    func(a, b float64) bool { return abs(a-b) < 1e-6 },
				Residual: resid})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	case "powergraph":
		e, err := gas.New[algorithms.PRValue, float64](g, algorithms.NewPageRankGAS(g, 30, 1e-6),
			gas.Config[algorithms.PRValue, float64]{Cluster: cc, MaxSupersteps: 30, Hooks: rec,
				Residual: func(old, new algorithms.PRValue) float64 { return abs(old.Rank - new.Rank) }})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	ms := rec.Manifests()
	if len(ms) != 1 {
		t.Fatalf("recorded %d manifests, want 1", len(ms))
	}
	return ms[0]
}

func TestRecorderArtifacts(t *testing.T) {
	g, _, err := gen.Dataset("wiki", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m := recordOne(t, dir, "cyclops", g)

	if m.Run != "run-001-cyclops" {
		t.Errorf("run name = %q, want run-001-cyclops", m.Run)
	}
	if m.Engine != "cyclops" || m.Experiment != "test" || m.Algorithm != "PR" ||
		m.Dataset != "wiki" || m.Partitioner != "hash" || m.Seed != 1 {
		t.Errorf("manifest meta = %+v", m)
	}
	if m.Workers != 4 || m.Vertices != g.NumVertices() || m.Edges != g.NumEdges() {
		t.Errorf("manifest shape = %+v", m)
	}
	if m.Supersteps <= 0 || m.Messages <= 0 || m.Bytes <= 0 || m.ModelNanos <= 0 ||
		m.Replicas <= 0 || m.StopReason == "" {
		t.Errorf("manifest totals = %+v", m)
	}
	if m.GoVersion == "" {
		t.Error("manifest missing go version")
	}

	// The on-disk manifest round-trips and matches.
	blob, err := os.ReadFile(filepath.Join(dir, m.Run, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk obs.Manifest
	if err := json.Unmarshal(blob, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk != m {
		t.Errorf("on-disk manifest %+v != returned %+v", onDisk, m)
	}

	series, err := os.ReadFile(filepath.Join(dir, m.Run, "series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(series)), "\n")
	if len(lines) != 1+m.Supersteps {
		t.Fatalf("series.csv has %d lines, want header + %d steps", len(lines), m.Supersteps)
	}
	if !strings.HasPrefix(lines[0], "step,active,changed,messages,") {
		t.Errorf("series header = %q", lines[0])
	}
	for _, col := range []string{"residual_p50", "skew_compute", "redundant_ratio",
		"payload_bytes", "wire_bytes", "replica_value_bytes", "model_ns"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("series header missing %q", col)
		}
	}
	// Convergence telemetry must actually be populated: PageRank residuals
	// shrink, so step 1's residual_max is positive.
	if !strings.Contains(lines[1], ",") || strings.Contains(lines[1], ",,") {
		t.Errorf("series row malformed: %q", lines[1])
	}

	timings, err := os.ReadFile(filepath.Join(dir, m.Run, "timings.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(timings), "step,prs_ns,cmp_ns,snd_ns,syn_ns,wall_ns") {
		t.Errorf("timings header = %q", strings.SplitN(string(timings), "\n", 2)[0])
	}

	// Every run directory carries the quarantined memory telemetry: one
	// mem.csv row per superstep, parseable back through the obs API.
	memBlob, err := os.ReadFile(filepath.Join(dir, m.Run, "mem.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(memBlob), obs.MemCSVHeader+"\n") {
		t.Errorf("mem.csv header = %q", strings.SplitN(string(memBlob), "\n", 2)[0])
	}
	memSteps, err := obs.ParseMemCSV(memBlob)
	if err != nil {
		t.Fatal(err)
	}
	if len(memSteps) != m.Supersteps {
		t.Errorf("mem.csv has %d rows, want one per %d supersteps", len(memSteps), m.Supersteps)
	}

	// The deterministic wire accounting made it into the manifest: local
	// transport wire bytes equal payload bytes (nothing serialises
	// in-process), and replica storage cost is attributed for cyclops.
	if m.WireBytes != m.Bytes {
		t.Errorf("local-transport wire bytes %d != payload bytes %d", m.WireBytes, m.Bytes)
	}
	if m.ReplicaValueBytes <= 0 {
		t.Errorf("cyclops manifest missing replica_value_bytes: %+v", m)
	}

	// Load-time partition quality is stamped into the manifest: the hash
	// partitioner cuts edges on wiki, balance is a max/mean coefficient, and
	// cyclops replicates boundary vertices.
	if m.EdgeCut <= 0 || m.PartitionBalance < 1 || m.ReplicationFactor <= 0 {
		t.Errorf("manifest partition quality = cut %d, balance %v, rf %v",
			m.EdgeCut, m.PartitionBalance, m.ReplicationFactor)
	}
	if m.ReplicaWorkerMin > m.ReplicaWorkerMed || m.ReplicaWorkerMed > m.ReplicaWorkerMax ||
		m.ReplicaWorkerMax <= 0 {
		t.Errorf("replica distribution min/med/max = %d/%d/%d",
			m.ReplicaWorkerMin, m.ReplicaWorkerMed, m.ReplicaWorkerMax)
	}

	// The heat observatory artifacts are present and parse back exactly.
	if rows := loadHeat(t, filepath.Join(dir, m.Run)); len(rows) != m.Supersteps*m.Workers {
		t.Errorf("heat.csv has %d rows, want %d workers × %d supersteps",
			len(rows), m.Workers, m.Supersteps)
	}
	if hot := loadHotset(t, filepath.Join(dir, m.Run)); len(hot) == 0 {
		t.Error("hotset.csv empty after a PageRank run")
	}

	// ReadManifests finds the run; a second recorder appends after it.
	ms, err := obs.ReadManifests(dir)
	if err != nil || len(ms) != 1 {
		t.Fatalf("ReadManifests = %d manifests, err %v", len(ms), err)
	}
	m2 := recordOne(t, dir, "hama", g)
	if m2.Run != "run-002-hama" {
		t.Errorf("second recorder continued at %q, want run-002-hama", m2.Run)
	}
}

// TestRecorderDeterminism is the guarantee the perf gate stands on: two
// same-seed runs of the same engine produce byte-identical series.csv files.
// Wall-clock noise is confined to timings.csv and the manifest's wall_ns.
func TestRecorderDeterminism(t *testing.T) {
	for _, engine := range []string{"hama", "cyclops", "powergraph"} {
		t.Run(engine, func(t *testing.T) {
			g, _, err := gen.Dataset("wiki", 0.02, 1)
			if err != nil {
				t.Fatal(err)
			}
			dirA, dirB := t.TempDir(), t.TempDir()
			ma := recordOne(t, dirA, engine, g)
			mb := recordOne(t, dirB, engine, g)

			a, err := os.ReadFile(filepath.Join(dirA, ma.Run, "series.csv"))
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dirB, mb.Run, "series.csv"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("series.csv differs between same-seed runs:\nA:\n%s\nB:\n%s",
					firstDiffLine(a, b), firstDiffLine(b, a))
			}
			ma.WallNanos, mb.WallNanos = 0, 0
			if ma != mb {
				t.Errorf("manifests differ beyond wall time:\nA: %+v\nB: %+v", ma, mb)
			}

			// The span stream carries no durations, so spans.csv is
			// byte-identical across same-seed runs — the structural guarantee
			// the causal tracer stands on.
			sa, err := os.ReadFile(filepath.Join(dirA, ma.Run, "spans.csv"))
			if err != nil {
				t.Fatal(err)
			}
			sb, err := os.ReadFile(filepath.Join(dirB, mb.Run, "spans.csv"))
			if err != nil {
				t.Fatal(err)
			}
			if len(strings.Split(strings.TrimSpace(string(sa)), "\n")) < 1+ma.Supersteps {
				t.Errorf("spans.csv too small:\n%s", sa)
			}
			if !bytes.Equal(sa, sb) {
				t.Errorf("spans.csv differs between same-seed runs:\nA:\n%s\nB:\n%s",
					firstDiffLine(sa, sb), firstDiffLine(sb, sa))
			}

			// mem.csv is quarantined (alloc counts differ across runs), but
			// both runs must have one parseable row per superstep.
			for _, runDir := range []string{filepath.Join(dirA, ma.Run), filepath.Join(dirB, mb.Run)} {
				blob, err := os.ReadFile(filepath.Join(runDir, "mem.csv"))
				if err != nil {
					t.Fatal(err)
				}
				steps, err := obs.ParseMemCSV(blob)
				if err != nil {
					t.Fatal(err)
				}
				if len(steps) != ma.Supersteps {
					t.Errorf("%s: mem.csv has %d rows, want %d", runDir, len(steps), ma.Supersteps)
				}
			}

			// heat.csv and hotset.csv carry counts only, so both are
			// byte-identical across same-seed runs — the guarantee the
			// report CLI's exact heat diff stands on.
			for _, name := range []string{"heat.csv", "hotset.csv"} {
				ha, err := os.ReadFile(filepath.Join(dirA, ma.Run, name))
				if err != nil {
					t.Fatal(err)
				}
				hb, err := os.ReadFile(filepath.Join(dirB, mb.Run, name))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ha, hb) {
					t.Errorf("%s differs between same-seed runs:\nA:\n%s\nB:\n%s",
						name, firstDiffLine(ha, hb), firstDiffLine(hb, ha))
				}
			}
			rows := loadHeat(t, filepath.Join(dirA, ma.Run))
			if want := ma.Supersteps * ma.Workers; len(rows) != want {
				t.Errorf("heat.csv has %d rows, want %d workers × %d supersteps",
					len(rows), ma.Workers, ma.Supersteps)
			}
			hot := loadHotset(t, filepath.Join(dirA, ma.Run))
			if len(hot) == 0 {
				t.Errorf("%s: hotset.csv empty after a run with traffic", engine)
			}
			for _, h := range hot {
				if h.Worker < 0 || h.Worker >= ma.Workers {
					t.Errorf("hot vertex %d attributed to worker %d of %d", h.Vertex, h.Worker, ma.Workers)
				}
			}

			// critpath.csv quarantines durations in its _ns columns; the
			// structural columns (step, gating worker, weight) must agree.
			pa := loadCritPath(t, filepath.Join(dirA, ma.Run))
			pb := loadCritPath(t, filepath.Join(dirB, mb.Run))
			if ga, gb := span.GatingSequence(pa), span.GatingSequence(pb); ga != gb {
				t.Errorf("gating sequence differs between same-seed runs:\nA: %s\nB: %s", ga, gb)
			}
			if len(pa) != ma.Supersteps {
				t.Errorf("critpath.csv has %d rows, want one per %d supersteps", len(pa), ma.Supersteps)
			}
			for i := range pa {
				if pa[i].Weight != pb[i].Weight {
					t.Errorf("step %d gating weight %d vs %d across same-seed runs",
						pa[i].Step, pa[i].Weight, pb[i].Weight)
				}
			}
		})
	}
}

// TestCritPathReconcilesWithTimings pins the accounting identity the report
// CLI checks: each critpath.csv row's four columns sum to the same superstep
// wall timings.csv records as prs+cmp+snd+syn — the span stream and the phase
// timers measure the same time, on every engine.
func TestCritPathReconcilesWithTimings(t *testing.T) {
	for _, engine := range []string{"hama", "cyclops", "powergraph"} {
		t.Run(engine, func(t *testing.T) {
			g, _, err := gen.Dataset("wiki", 0.02, 1)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			m := recordOne(t, dir, engine, g)
			paths := loadCritPath(t, filepath.Join(dir, m.Run))
			walls := loadPhaseWalls(t, filepath.Join(dir, m.Run, "timings.csv"))
			if len(paths) != len(walls) {
				t.Fatalf("critpath has %d rows, timings %d", len(paths), len(walls))
			}
			for i, p := range paths {
				if p.Wall() != walls[i] {
					t.Errorf("step %d: critpath wall %dns != timings phase sum %dns",
						p.Step, p.Wall(), walls[i])
				}
				if p.Wall() <= 0 {
					t.Errorf("step %d: non-positive critpath wall %d", p.Step, p.Wall())
				}
			}
		})
	}
}

func loadHeat(t *testing.T, runDir string) []obs.HeatPartition {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(runDir, "heat.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := obs.ParseHeatCSV(blob)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func loadHotset(t *testing.T, runDir string) []obs.HotVertex {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(runDir, "hotset.csv"))
	if err != nil {
		t.Fatal(err)
	}
	hot, err := obs.ParseHotsetCSV(blob)
	if err != nil {
		t.Fatal(err)
	}
	return hot
}

func loadCritPath(t *testing.T, runDir string) []span.StepPath {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(runDir, "critpath.csv"))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := span.ParseCritPathCSV(blob)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// loadPhaseWalls reads timings.csv into per-step prs+cmp+snd+syn sums.
func loadPhaseWalls(t *testing.T, path string) []int64 {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	var out []int64
	for _, ln := range lines[1:] {
		f := strings.Split(ln, ",")
		if len(f) != 6 {
			t.Fatalf("timings row %q", ln)
		}
		var sum int64
		for _, col := range f[1:5] {
			v, err := strconv.ParseInt(col, 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		out = append(out, sum)
	}
	return out
}

func firstDiffLine(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			return al[i]
		}
	}
	return ""
}

func TestEnsureWritablePaths(t *testing.T) {
	dir := t.TempDir()
	if err := obs.EnsureWritableDir(filepath.Join(dir, "new", "nested")); err != nil {
		t.Errorf("creatable nested dir rejected: %v", err)
	}
	if err := obs.EnsureWritableDir(""); err == nil {
		t.Error("empty dir path accepted")
	}
	if err := obs.EnsureWritableFile(filepath.Join(dir, "out.csv")); err != nil {
		t.Errorf("creatable file rejected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "out.csv")); !os.IsNotExist(err) {
		t.Error("probe file left behind")
	}
	if err := obs.EnsureWritableFile(dir); err == nil {
		t.Error("directory accepted as a file path")
	}
	existing := filepath.Join(dir, "existing.csv")
	if err := os.WriteFile(existing, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := obs.EnsureWritableFile(existing); err != nil {
		t.Errorf("existing writable file rejected: %v", err)
	}
	if body, _ := os.ReadFile(existing); string(body) != "keep" {
		t.Error("preflight truncated an existing file")
	}
	// A file standing where a directory is needed fails both helpers.
	if err := obs.EnsureWritableDir(existing); err == nil {
		t.Error("file path accepted as a directory")
	}
	if err := obs.EnsureWritableFile(filepath.Join(existing, "x.csv")); err == nil {
		t.Error("path under a file accepted")
	}
}
