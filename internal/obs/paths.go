package obs

import (
	"fmt"
	"os"
	"path/filepath"
)

// EnsureWritableDir creates dir (and parents) if needed and proves it is
// writable by creating and removing a probe file. CLIs call it at flag-parse
// time so a bad -record/-trace/-comm path fails before a long run, not after.
func EnsureWritableDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("empty path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("not creatable: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("not writable: %w", err)
	}
	name := probe.Name()
	probe.Close()
	os.Remove(name)
	return nil
}

// EnsureWritableFile verifies path can be created as (or already is) a
// writable file. An existing file is opened for writing without truncation; a
// fresh probe is removed again.
func EnsureWritableFile(path string) error {
	if path == "" {
		return fmt.Errorf("empty path")
	}
	if fi, err := os.Stat(path); err == nil {
		if fi.IsDir() {
			return fmt.Errorf("%s is a directory", path)
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("not writable: %w", err)
		}
		return f.Close()
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("parent not creatable: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("not creatable: %w", err)
	}
	f.Close()
	os.Remove(path)
	return nil
}
