package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"cyclops/internal/transport"
)

// CommTracker folds the per-superstep traffic deltas from OnCommMatrix into
// the worker×worker communication picture of the latest run: who sent how
// many messages and bytes to whom, per superstep and cumulatively. It backs
// the /comm endpoint (JSON and Prometheus text) and the comm CSV export, and
// is the live counterpart of the paper's Table 4 (total communication
// volume) and Figure 10(3) (per-superstep message counts), refined
// per-worker. By construction the cumulative matrix matches the transport's
// Stats totals exactly.
type CommTracker struct {
	Nop // no-op for the hook points the tracker does not consume

	mu      sync.Mutex
	engine  string
	workers int
	steps   []CommStep
	cum     transport.MatrixSnapshot
}

// CommStep is one superstep's traffic delta.
type CommStep struct {
	Step  int
	Delta transport.MatrixSnapshot
}

// NewCommTracker returns an empty tracker. Register it in the engine's
// Hooks (typically via Multi) to populate it.
func NewCommTracker() *CommTracker {
	return &CommTracker{}
}

// OnRunStart implements Hooks: resets the tracker so it describes the
// newest run.
func (c *CommTracker) OnRunStart(info RunInfo) {
	c.mu.Lock()
	c.engine = info.Engine
	c.workers = info.Workers
	c.steps = nil
	c.cum = transport.MatrixSnapshot{}
	c.mu.Unlock()
}

// OnCommMatrix implements Hooks: records the superstep's delta.
func (c *CommTracker) OnCommMatrix(step int, delta transport.MatrixSnapshot) {
	c.mu.Lock()
	c.steps = append(c.steps, CommStep{Step: step, Delta: delta})
	c.cum = c.cum.AddInto(delta)
	c.mu.Unlock()
}

// Engine reports the engine of the run being tracked.
func (c *CommTracker) Engine() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine
}

// Cumulative returns a copy of the run-so-far matrix.
func (c *CommTracker) Cumulative() transport.MatrixSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cum.Clone()
}

// Steps returns a copy of the per-superstep deltas.
func (c *CommTracker) Steps() []CommStep {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CommStep(nil), c.steps...)
}

// commJSON is the /comm JSON document.
type commJSON struct {
	Engine          string    `json:"engine"`
	Workers         int       `json:"workers"`
	Supersteps      int       `json:"supersteps"`
	MessagesTotal   int64     `json:"messages_total"`
	BytesTotal      int64     `json:"bytes_total"`
	WireBytesTotal  int64     `json:"wire_bytes_total"`
	EgressMessages  []int64   `json:"egress_messages"`
	IngressMessages []int64   `json:"ingress_messages"`
	EgressBytes     []int64   `json:"egress_bytes"`
	IngressBytes    []int64   `json:"ingress_bytes"`
	Messages        [][]int64 `json:"messages"`
	Bytes           [][]int64 `json:"bytes"`
	Wire            [][]int64 `json:"wire,omitempty"`
}

// WriteJSON renders the cumulative matrix of the latest run as JSON.
func (c *CommTracker) WriteJSON(w io.Writer) error {
	c.mu.Lock()
	doc := commJSON{
		Engine:          c.engine,
		Workers:         c.workers,
		Supersteps:      len(c.steps),
		MessagesTotal:   c.cum.TotalMessages(),
		BytesTotal:      c.cum.TotalBytes(),
		WireBytesTotal:  c.cum.TotalWireBytes(),
		EgressMessages:  c.cum.Egress(),
		IngressMessages: c.cum.Ingress(),
		EgressBytes:     c.cum.EgressBytes(),
		IngressBytes:    c.cum.IngressBytes(),
		Messages:        c.cum.Messages,
		Bytes:           c.cum.Bytes,
		Wire:            c.cum.Wire,
	}
	c.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WritePromText renders the cumulative matrix in the Prometheus text
// exposition format (zero cells omitted to bound output size).
func (c *CommTracker) WritePromText(w io.Writer) error {
	c.mu.Lock()
	cum := c.cum.Clone()
	c.mu.Unlock()

	if _, err := fmt.Fprintf(w,
		"# HELP %s Messages sent between worker pairs, latest run.\n# TYPE %s counter\n",
		MetricCommMessages, MetricCommMessages); err != nil {
		return err
	}
	for f, row := range cum.Messages {
		for t, v := range row {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{from=\"%d\",to=\"%d\"} %d\n",
				MetricCommMessages, f, t, v); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP %s Estimated bytes sent between worker pairs, latest run.\n# TYPE %s counter\n",
		MetricCommBytes, MetricCommBytes); err != nil {
		return err
	}
	for f, row := range cum.Bytes {
		for t, v := range row {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{from=\"%d\",to=\"%d\"} %d\n",
				MetricCommBytes, f, t, v); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP %s Encoded wire bytes sent between worker pairs, latest run.\n# TYPE %s counter\n",
		MetricCommWireBytes, MetricCommWireBytes); err != nil {
		return err
	}
	for f, row := range cum.Wire {
		for t, v := range row {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{from=\"%d\",to=\"%d\"} %d\n",
				MetricCommWireBytes, f, t, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// CommCSVHeader is the stable column set of the comm CSV export: one row
// per (superstep, sender, receiver) cell with non-zero traffic.
const CommCSVHeader = "engine,workers,step,from,to,messages,bytes,wire_bytes"

// WriteCSV renders the per-superstep deltas as CSV (zero cells omitted).
// It lives here rather than in internal/metrics because the matrix type
// belongs to the transport layer, which metrics does not depend on.
func (c *CommTracker) WriteCSV(w io.Writer) error {
	c.mu.Lock()
	engine, workers := c.engine, c.workers
	steps := append([]CommStep(nil), c.steps...)
	c.mu.Unlock()

	if _, err := fmt.Fprintln(w, CommCSVHeader); err != nil {
		return err
	}
	for _, st := range steps {
		for f, row := range st.Delta.Messages {
			for t, v := range row {
				if v == 0 && st.Delta.Bytes[f][t] == 0 {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d\n",
					engine, workers, st.Step, f, t, v, st.Delta.Bytes[f][t],
					st.Delta.WireAt(f, t)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ServeHTTP implements the /comm endpoint: JSON by default, Prometheus text
// with ?format=prom.
func (c *CommTracker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	serveFormat(w, r, map[string]formatVariant{
		"json": {contentType: "application/json", render: func(w http.ResponseWriter) error {
			return c.WriteJSON(w)
		}},
		"prom": {contentType: "text/plain; version=0.0.4; charset=utf-8", render: func(w http.ResponseWriter) error {
			return c.WritePromText(w)
		}},
		"csv": {contentType: "text/csv", render: func(w http.ResponseWriter) error {
			return c.WriteCSV(w)
		}},
	})
}
