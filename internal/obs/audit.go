package obs

import (
	"fmt"
	"reflect"
	"strings"
)

// The replica-invariant auditor. Cyclops' correctness argument (§3.4) rests
// on three properties of the distributed immutable view that hold by
// construction but are never otherwise checked at runtime:
//
//  1. after the SYN barrier every replica holds exactly its master's
//     published value (the view is consistent),
//  2. each replica received at most one sync message in the superstep
//     (which is what makes contention-free per-sender receipt legal), and
//  3. no message ever travels replica→master (communication is
//     unidirectional).
//
// When an engine's Config.Audit flag is set, the engine verifies its own
// variant of these invariants after each SYN phase (Hama audits message
// conservation, GAS audits mirror coherence) and reports breaches as
// Violation values through Hooks.OnViolation; the run then fails with an
// *AuditError.

// Violation kinds reported through Hooks.OnViolation.
const (
	// ViolationReplicaDesync: a replica's view value differs from its
	// master's after SYN (Cyclops invariant 1).
	ViolationReplicaDesync = "replica-desync"
	// ViolationDoubleDelivery: a replica received more than one sync message
	// in one superstep (Cyclops invariant 2).
	ViolationDoubleDelivery = "double-delivery"
	// ViolationReplicaToMaster: a sync message targeted a master slot
	// (Cyclops invariant 3 — traffic must be master→replica only).
	ViolationReplicaToMaster = "replica-to-master"
	// ViolationMessageConservation: a Hama superstep drained a different
	// number of envelopes than the previous superstep sent.
	ViolationMessageConservation = "message-conservation"
	// ViolationMirrorDivergence: a GAS mirror's cached value differs from
	// its master's after the superstep's apply/push rounds.
	ViolationMirrorDivergence = "mirror-divergence"
)

// Violation is one invariant breach found by the auditor.
type Violation struct {
	// Engine is the violating engine's trace name.
	Engine string `json:"engine"`
	// Step is the superstep after whose SYN phase the breach was detected.
	Step int `json:"step"`
	// Worker is the worker holding the offending replica/queue; -1 when the
	// breach is not attributable to one worker.
	Worker int `json:"worker"`
	// Vertex is the global vertex id involved; -1 when not applicable.
	Vertex int64 `json:"vertex"`
	// Kind is one of the Violation* constants.
	Kind string `json:"kind"`
	// Detail is a human-readable description of the breach.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s step %d worker %d vertex %d: %s (%s)",
		v.Engine, v.Step, v.Worker, v.Vertex, v.Kind, v.Detail)
}

// AuditError fails a run whose superstep breached an audited invariant.
type AuditError struct {
	Violations []Violation
}

func (e *AuditError) Error() string {
	if len(e.Violations) == 0 {
		return "audit: invariant violated"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s): %s",
		len(e.Violations), e.Violations[0])
	if len(e.Violations) > 1 {
		fmt.Fprintf(&b, " (+%d more)", len(e.Violations)-1)
	}
	return b.String()
}

// ExactEqual reports whether two values are identical, the equality the
// auditor needs: replicas must hold the master's value bit-for-bit (the sync
// message carries the value verbatim), so no tolerance is involved. For
// comparable message types this is one interface comparison; otherwise it
// falls back to reflect.DeepEqual.
func ExactEqual[T any](a, b T) bool {
	if t := reflect.TypeOf(a); t != nil && t.Comparable() {
		return any(a) == any(b)
	}
	return reflect.DeepEqual(a, b)
}
