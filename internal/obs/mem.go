package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"time"

	intmetrics "cyclops/internal/metrics"
)

// This file is the memory observatory: a per-superstep, per-phase allocation
// sampler built on runtime/metrics (no stop-the-world, unlike
// runtime.ReadMemStats), feeding the quarantined mem.csv of every flight
// record and the live /mem endpoint. Allocation and GC quantities are
// inherently machine- and scheduling-dependent, so everything here follows
// the timings.csv discipline: recorded alongside the deterministic artifacts,
// never compared exactly. The deterministic counterparts — payload bytes,
// wire bytes, replica value bytes — live in series.csv and the manifest.

// memPhases is the number of attributable superstep phases (PRS/CMP/SND/SYN).
const memPhases = int(intmetrics.Sync) + 1

// memMetricNames are the runtime/metrics samples one MemSnap reads, batched
// into a single metrics.Read call.
var memMetricNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/goal:bytes",
	"/memory/classes/heap/objects:bytes",
	"/sched/pauses/total/gc:seconds",
}

// MemSnap is one point-in-time sample of the allocation counters. The first
// three fields are cumulative since process start (deltas between snapshots
// attribute allocation to an interval); the last three are instantaneous.
type MemSnap struct {
	AllocBytes   uint64 // cumulative heap bytes allocated
	AllocObjects uint64 // cumulative heap objects allocated
	GCCycles     uint64 // cumulative completed GC cycles
	PauseNs      int64  // cumulative GC stop-the-world pause (approx, from histogram)
	HeapGoal     uint64 // current GC pacer heap goal
	HeapLive     uint64 // current live heap object bytes
}

// MemSampler reads the allocation counters via runtime/metrics. It reuses one
// sample buffer, so a Sample costs one metrics.Read and no allocation; it is
// not safe for concurrent use (each consumer owns its own sampler, called
// from the coordinator goroutine like every other hook).
type MemSampler struct {
	samples []metrics.Sample
}

// NewMemSampler prepares a sampler for the memory-observatory metric set.
func NewMemSampler() *MemSampler {
	s := &MemSampler{samples: make([]metrics.Sample, len(memMetricNames))}
	for i, name := range memMetricNames {
		s.samples[i].Name = name
	}
	return s
}

// Sample reads all counters in one batch.
func (s *MemSampler) Sample() MemSnap {
	metrics.Read(s.samples)
	return MemSnap{
		AllocBytes:   memUint64(s.samples[0]),
		AllocObjects: memUint64(s.samples[1]),
		GCCycles:     memUint64(s.samples[2]),
		HeapGoal:     memUint64(s.samples[3]),
		HeapLive:     memUint64(s.samples[4]),
		PauseNs:      histogramNanos(s.samples[5]),
	}
}

func memUint64(s metrics.Sample) uint64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

// histogramNanos approximates the cumulative seconds of a runtime/metrics
// histogram as nanoseconds, weighting each bucket by its midpoint (infinite
// edges fall back to the finite edge). The approximation error is bounded by
// the bucket width — fine for a quarantined telemetry column.
func histogramNanos(s metrics.Sample) int64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s.Value.Float64Histogram()
	var total float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		total += float64(count) * mid
	}
	return int64(total * 1e9)
}

// MemStep is one superstep's memory telemetry: allocation attributed to each
// phase (deltas between consecutive OnPhase boundaries), the step's totals,
// and the GC state at the step's end. Attribution is approximate — background
// goroutines allocate into whatever phase is open — which is one more reason
// these columns are quarantined.
type MemStep struct {
	Step         int               `json:"step"`
	PhaseBytes   [memPhases]uint64 `json:"phase_alloc_bytes"`
	PhaseObjects [memPhases]uint64 `json:"phase_allocs"`
	StepBytes    uint64            `json:"step_alloc_bytes"`
	StepObjects  uint64            `json:"step_allocs"`
	GCCycles     uint64            `json:"gc_cycles"`
	GCPauseNs    int64             `json:"gc_pause_ns"`
	HeapGoal     uint64            `json:"heap_goal_bytes"`
	HeapLive     uint64            `json:"heap_live_bytes"`
}

// memAttrib turns hook boundaries into MemSteps. It is the shared attribution
// core of the Recorder (mem.csv) and the MemTracker (/mem endpoint); callers
// provide their own locking.
type memAttrib struct {
	sampler   *MemSampler
	stepBase  MemSnap // sample at superstep start
	phaseBase MemSnap // sample at the last phase boundary
	cur       MemStep
	open      bool
}

func newMemAttrib() *memAttrib { return &memAttrib{sampler: NewMemSampler()} }

// startStep opens a superstep: both baselines move to now.
func (a *memAttrib) startStep(step int) {
	snap := a.sampler.Sample()
	a.stepBase, a.phaseBase = snap, snap
	a.cur = MemStep{Step: step}
	a.open = true
}

// phase closes the interval since the previous boundary and attributes its
// allocation to p.
func (a *memAttrib) phase(p intmetrics.Phase) {
	if !a.open || int(p) < 0 || int(p) >= memPhases {
		return
	}
	snap := a.sampler.Sample()
	a.cur.PhaseBytes[p] += snap.AllocBytes - a.phaseBase.AllocBytes
	a.cur.PhaseObjects[p] += snap.AllocObjects - a.phaseBase.AllocObjects
	a.phaseBase = snap
}

// endStep closes the superstep and returns its telemetry row.
func (a *memAttrib) endStep() MemStep {
	if !a.open {
		return MemStep{}
	}
	snap := a.sampler.Sample()
	a.cur.StepBytes = snap.AllocBytes - a.stepBase.AllocBytes
	a.cur.StepObjects = snap.AllocObjects - a.stepBase.AllocObjects
	a.cur.GCCycles = snap.GCCycles - a.stepBase.GCCycles
	a.cur.GCPauseNs = snap.PauseNs - a.stepBase.PauseNs
	a.cur.HeapGoal = snap.HeapGoal
	a.cur.HeapLive = snap.HeapLive
	a.open = false
	return a.cur
}

// MemCSVHeader is the column set of mem.csv: one row per superstep, all
// quarantined (machine- and GC-schedule-dependent), mirroring timings.csv.
const MemCSVHeader = "step,prs_alloc_bytes,prs_allocs,cmp_alloc_bytes,cmp_allocs," +
	"snd_alloc_bytes,snd_allocs,syn_alloc_bytes,syn_allocs," +
	"step_alloc_bytes,step_allocs,gc_cycles,gc_pause_ns,heap_goal_bytes,heap_live_bytes"

// EncodeMemCSV renders the per-superstep memory telemetry as mem.csv bytes.
func EncodeMemCSV(steps []MemStep) []byte {
	var b strings.Builder
	b.WriteString(MemCSVHeader)
	b.WriteByte('\n')
	for _, s := range steps {
		cols := make([]string, 0, 15)
		cols = append(cols, strconv.Itoa(s.Step))
		for p := 0; p < memPhases; p++ {
			cols = append(cols,
				strconv.FormatUint(s.PhaseBytes[p], 10),
				strconv.FormatUint(s.PhaseObjects[p], 10))
		}
		cols = append(cols,
			strconv.FormatUint(s.StepBytes, 10),
			strconv.FormatUint(s.StepObjects, 10),
			strconv.FormatUint(s.GCCycles, 10),
			strconv.FormatInt(s.GCPauseNs, 10),
			strconv.FormatUint(s.HeapGoal, 10),
			strconv.FormatUint(s.HeapLive, 10))
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseMemCSV parses mem.csv bytes back into MemSteps. It accepts exactly the
// format EncodeMemCSV writes (the round-trip is tested), returning an error
// on a foreign header or malformed row.
func ParseMemCSV(blob []byte) ([]MemStep, error) {
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	if len(lines) == 0 || lines[0] != MemCSVHeader {
		return nil, fmt.Errorf("obs: mem.csv: unexpected header %q", lines[0])
	}
	var out []MemStep
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		cols := strings.Split(line, ",")
		if len(cols) != 15 {
			return nil, fmt.Errorf("obs: mem.csv: row has %d columns, want 15", len(cols))
		}
		var s MemStep
		var err error
		if s.Step, err = strconv.Atoi(cols[0]); err != nil {
			return nil, fmt.Errorf("obs: mem.csv: step: %w", err)
		}
		u := func(i int) uint64 {
			if err != nil {
				return 0
			}
			var v uint64
			v, err = strconv.ParseUint(cols[i], 10, 64)
			return v
		}
		for p := 0; p < memPhases; p++ {
			s.PhaseBytes[p] = u(1 + 2*p)
			s.PhaseObjects[p] = u(2 + 2*p)
		}
		s.StepBytes = u(9)
		s.StepObjects = u(10)
		s.GCCycles = u(11)
		s.HeapGoal = u(13)
		s.HeapLive = u(14)
		if err == nil {
			s.GCPauseNs, err = strconv.ParseInt(cols[12], 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("obs: mem.csv: row %d: %w", s.Step, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// MemTracker is a Hooks that keeps the current run's memory telemetry in
// memory for the live /mem endpoint (the Recorder persists the same rows as
// mem.csv). It retains the last run's steps after OnConverged so /mem stays
// useful between runs.
type MemTracker struct {
	Nop

	mu     sync.Mutex
	attrib *memAttrib
	engine string
	steps  []MemStep
	done   bool
}

// NewMemTracker creates an empty tracker.
func NewMemTracker() *MemTracker { return &MemTracker{attrib: newMemAttrib()} }

// OnRunStart implements Hooks: resets the telemetry for a new run.
func (t *MemTracker) OnRunStart(info RunInfo) {
	t.mu.Lock()
	t.engine = info.Engine
	t.steps = t.steps[:0]
	t.done = false
	t.mu.Unlock()
}

// OnSuperstepStart implements Hooks.
func (t *MemTracker) OnSuperstepStart(step int) {
	t.mu.Lock()
	t.attrib.startStep(step)
	t.mu.Unlock()
}

// OnPhase implements Hooks.
func (t *MemTracker) OnPhase(step int, phase intmetrics.Phase, d time.Duration) {
	t.mu.Lock()
	t.attrib.phase(phase)
	t.mu.Unlock()
}

// OnSuperstepEnd implements Hooks.
func (t *MemTracker) OnSuperstepEnd(step int, stats intmetrics.StepStats) {
	t.mu.Lock()
	t.steps = append(t.steps, t.attrib.endStep())
	t.mu.Unlock()
}

// OnConverged implements Hooks.
func (t *MemTracker) OnConverged(step int, reason string) {
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
}

// Steps returns a copy of the recorded steps so far.
func (t *MemTracker) Steps() []MemStep {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]MemStep(nil), t.steps...)
}

// memJSON is the /mem response envelope.
type memJSON struct {
	Engine string    `json:"engine"`
	Done   bool      `json:"done"`
	Steps  []MemStep `json:"steps"`
}

// ServeHTTP implements the /mem endpoint: JSON by default, mem.csv with
// ?format=csv.
func (t *MemTracker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t.mu.Lock()
	resp := memJSON{Engine: t.engine, Done: t.done, Steps: append([]MemStep(nil), t.steps...)}
	t.mu.Unlock()
	serveFormat(w, r, map[string]formatVariant{
		"json": {contentType: "application/json", render: func(w http.ResponseWriter) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(resp)
		}},
		"csv": {contentType: "text/csv; charset=utf-8", render: func(w http.ResponseWriter) error {
			_, err := w.Write(EncodeMemCSV(resp.Steps))
			return err
		}},
	})
}
