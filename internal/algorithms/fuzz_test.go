package algorithms

// Fuzz coverage for the workload codecs. Each round-trip target checks the
// three-way contract the transports charge wire bytes by: Append writes
// exactly EncodedSize bytes, Decode consumes exactly that many and
// reproduces the message bit for bit (NaN payloads included), and a
// truncated buffer is an error, never a partial value. Seed corpora live
// under testdata/fuzz/<target>.

import (
	"encoding/binary"
	"math"
	"testing"
)

func FuzzALSMsgCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, 3.5)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xF8, 0x3F}, -1.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, math.NaN()) // 7 bytes: a truncated element is dropped
	f.Fuzz(func(t *testing.T, vecBytes []byte, rating float64) {
		c := ALSMsgCodec{}
		var vec []float64
		if n := len(vecBytes) / 8; n > 0 {
			vec = make([]float64, n)
			for i := range vec {
				vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(vecBytes[8*i:]))
			}
		}
		m := ALSMsg{Vec: vec, Rating: rating}
		size := c.EncodedSize(m)
		buf := c.Append(make([]byte, 0, size), m)
		if len(buf) != size {
			t.Fatalf("Append wrote %d bytes, EncodedSize promised %d", len(buf), size)
		}
		got, n, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("Decode rejected Append's own output: %v", err)
		}
		if n != size {
			t.Fatalf("Decode consumed %d bytes, Append wrote %d", n, size)
		}
		if math.Float64bits(got.Rating) != math.Float64bits(rating) {
			t.Fatalf("rating: got bits %x, want %x", math.Float64bits(got.Rating), math.Float64bits(rating))
		}
		if len(got.Vec) != len(vec) {
			t.Fatalf("vector length %d, want %d", len(got.Vec), len(vec))
		}
		for i := range vec {
			if math.Float64bits(got.Vec[i]) != math.Float64bits(vec[i]) {
				t.Fatalf("vec[%d]: got bits %x, want %x", i, math.Float64bits(got.Vec[i]), math.Float64bits(vec[i]))
			}
		}
		if _, _, err := c.Decode(buf[:len(buf)-1]); err == nil {
			t.Fatal("truncated buffer decoded without error")
		}
	})
}

func FuzzPRValueCodecRoundTrip(f *testing.F) {
	f.Add(0.15, 0.85)
	f.Add(math.Inf(1), math.Inf(-1))
	f.Add(math.NaN(), math.Copysign(0, -1))
	f.Fuzz(func(t *testing.T, rank, share float64) {
		c := PRValueCodec{}
		v := PRValue{Rank: rank, Share: share}
		size := c.EncodedSize(v)
		buf := c.Append(make([]byte, 0, size), v)
		if len(buf) != size {
			t.Fatalf("Append wrote %d bytes, EncodedSize promised %d", len(buf), size)
		}
		got, n, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("Decode rejected Append's own output: %v", err)
		}
		if n != size {
			t.Fatalf("Decode consumed %d bytes, Append wrote %d", n, size)
		}
		if math.Float64bits(got.Rank) != math.Float64bits(rank) ||
			math.Float64bits(got.Share) != math.Float64bits(share) {
			t.Fatalf("round-trip drift: got (%x,%x), want (%x,%x)",
				math.Float64bits(got.Rank), math.Float64bits(got.Share),
				math.Float64bits(rank), math.Float64bits(share))
		}
		if _, _, err := c.Decode(buf[:len(buf)-1]); err == nil {
			t.Fatal("truncated buffer decoded without error")
		}
	})
}
