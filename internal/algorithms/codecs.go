package algorithms

import "cyclops/internal/graph"

// Binary codecs for the composite message types the workloads ship over the
// wire. Like the scalar codecs in internal/graph, EncodedSize must be exact
// — the transports charge it to the wire books without materializing frames —
// and Append must not retain dst.

// ALSMsgCodec frames an ALSMsg as the latent vector (4B length + 8B per
// element) followed by the 8-byte edge rating.
type ALSMsgCodec struct{}

var alsVec = graph.Float64SliceCodec{}

// EncodedSize implements graph.Codec.
//
//lint:hotpath
func (ALSMsgCodec) EncodedSize(m ALSMsg) int {
	return alsVec.EncodedSize(m.Vec) + 8
}

// Append implements graph.Codec.
//
//lint:hotpath
func (ALSMsgCodec) Append(dst []byte, m ALSMsg) []byte {
	dst = alsVec.Append(dst, m.Vec)
	return graph.Float64Codec{}.Append(dst, m.Rating)
}

// Decode implements graph.Codec.
//
//lint:hotpath
func (ALSMsgCodec) Decode(src []byte) (ALSMsg, int, error) {
	var m ALSMsg
	vec, n, err := alsVec.Decode(src)
	if err != nil {
		return m, 0, err
	}
	rating, rn, err := graph.Float64Codec{}.Decode(src[n:])
	if err != nil {
		return m, 0, err
	}
	m.Vec = vec
	m.Rating = rating
	return m, n + rn, nil
}

// PRValueCodec frames a PRValue as two fixed 8-byte floats (rank, share).
type PRValueCodec struct{}

// EncodedSize implements graph.Codec.
//
//lint:hotpath
func (PRValueCodec) EncodedSize(PRValue) int { return 16 }

// Append implements graph.Codec.
//
//lint:hotpath
func (PRValueCodec) Append(dst []byte, v PRValue) []byte {
	dst = graph.Float64Codec{}.Append(dst, v.Rank)
	return graph.Float64Codec{}.Append(dst, v.Share)
}

// Decode implements graph.Codec.
//
//lint:hotpath
func (PRValueCodec) Decode(src []byte) (PRValue, int, error) {
	var v PRValue
	rank, n, err := graph.Float64Codec{}.Decode(src)
	if err != nil {
		return v, 0, err
	}
	share, sn, err := graph.Float64Codec{}.Decode(src[n:])
	if err != nil {
		return v, 0, err
	}
	v.Rank = rank
	v.Share = share
	return v, n + sn, nil
}
