package algorithms

import (
	"math"
	"testing"

	"cyclops/internal/aggregate"
	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

const prIters = 12

func approxEqual(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > tol {
			t.Fatalf("%s: vertex %d = %g, want %g (tol %g)", name, v, got[v], want[v], tol)
		}
	}
}

func TestPageRankAllEnginesMatchReference(t *testing.T) {
	g := gen.PowerLaw(400, 5, 77)
	want := PageRankRef(g, prIters)

	// BSP: superstep 0 seeds, supersteps 1..T compute iterations 1..T.
	be, err := bsp.New[float64, float64](g, PageRankBSP{}, bsp.Config[float64, float64]{
		Cluster:       cluster.Flat(2, 2),
		MaxSupersteps: prIters + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "bsp", be.Values(), want, 1e-12)

	// Cyclops: superstep k computes iteration k+1.
	ce, err := cyclops.New[float64, float64](g, PageRankCyclops{}, cyclops.Config[float64, float64]{
		Cluster:       cluster.Flat(2, 2),
		MaxSupersteps: prIters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "cyclops", ce.Values(), want, 1e-12)

	// CyclopsMT must agree bit-for-bit with flat Cyclops.
	me, err := cyclops.New[float64, float64](g, PageRankCyclops{}, cyclops.Config[float64, float64]{
		Cluster:       cluster.MT(2, 4, 2),
		MaxSupersteps: prIters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "cyclopsmt", me.Values(), want, 1e-12)

	// GAS computes iteration k+1 at superstep k too.
	ge, err := gas.New[PRValue, float64](g, NewPageRankGAS(g, prIters, 0), gas.Config[PRValue, float64]{
		Cluster:       cluster.Flat(4, 1),
		MaxSupersteps: prIters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ge.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "gas", Ranks(ge.Values()), want, 1e-12)
}

func TestPageRankCyclopsSendsFarFewerMessagesThanBSP(t *testing.T) {
	// The headline claim (§1, Figure 10(3)): with convergence detection on,
	// Cyclops eliminates redundant traffic from converged vertices.
	g := gen.PowerLaw(2000, 6, 3)
	const eps = 1e-8

	be, _ := bsp.New[float64, float64](g, PageRankBSP{Eps: eps}, bsp.Config[float64, float64]{
		Cluster:       cluster.Flat(4, 1),
		MaxSupersteps: 60,
		Halt:          aggregate.GlobalErrorHalt(ErrorAggregator, g.NumVertices(), eps),
		Equal:         func(a, b float64) bool { return a == b },
	})
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	ce, _ := cyclops.New[float64, float64](g, PageRankCyclops{Eps: eps}, cyclops.Config[float64, float64]{
		Cluster:       cluster.Flat(4, 1),
		MaxSupersteps: 60,
	})
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	bm, cm := be.TransportStats().Messages, ce.TransportStats().Messages
	if cm*2 > bm {
		t.Fatalf("cyclops messages %d not ≪ bsp messages %d", cm, bm)
	}
	// And the results still agree closely (they terminate under different
	// detectors — global vs local error — so agreement is approximate).
	approxEqual(t, "converged", ce.Values(), be.Values(), 1e-4)
}

func TestSSSPAllEnginesExact(t *testing.T) {
	g := gen.Road(15, 15, 0.05, 9)
	want := SSSPRef(g, 0)

	be, _ := bsp.New[float64, float64](g, SSSPBSP{Source: 0}, bsp.Config[float64, float64]{
		Cluster:       cluster.Flat(3, 2),
		MaxSupersteps: 500,
	})
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "bsp", be.Values(), want, 0)

	ce, _ := cyclops.New[float64, float64](g, SSSPCyclops{Source: 0}, cyclops.Config[float64, float64]{
		Cluster:       cluster.Flat(3, 2),
		MaxSupersteps: 500,
	})
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "cyclops", ce.Values(), want, 0)

	me, _ := cyclops.New[float64, float64](g, SSSPCyclops{Source: 0}, cyclops.Config[float64, float64]{
		Cluster:       cluster.MT(3, 4, 2),
		MaxSupersteps: 500,
	})
	if _, err := me.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "cyclopsmt", me.Values(), want, 0)

	ge, _ := gas.New[float64, float64](g, SSSPGAS{Source: 0}, gas.Config[float64, float64]{
		Cluster:       cluster.Flat(3, 1),
		MaxSupersteps: 500,
	})
	if _, err := ge.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "gas", ge.Values(), want, 0)
}

func TestSSSPUnreachableStaysInfinite(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 2)
	// Vertices 2,3 unreachable.
	b.AddWeightedEdge(2, 3, 1)
	g := b.MustBuild()
	ce, _ := cyclops.New[float64, float64](g, SSSPCyclops{Source: 0}, cyclops.Config[float64, float64]{})
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	vals := ce.Values()
	if vals[1] != 2 || !math.IsInf(vals[2], 1) || !math.IsInf(vals[3], 1) {
		t.Fatalf("distances = %v", vals)
	}
}

const cdIters = 15

func TestCDAllEnginesExact(t *testing.T) {
	g, planted := gen.Community(12, 40, 3, 1, 5)
	want := CDRef(g, cdIters)

	be, _ := bsp.New[int64, int64](g, CDBSP{}, bsp.Config[int64, int64]{
		Cluster:       cluster.Flat(2, 2),
		MaxSupersteps: cdIters + 1,
	})
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	ce, _ := cyclops.New[int64, int64](g, CDCyclops{}, cyclops.Config[int64, int64]{
		Cluster:       cluster.Flat(2, 2),
		MaxSupersteps: cdIters,
	})
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	me, _ := cyclops.New[int64, int64](g, CDCyclops{}, cyclops.Config[int64, int64]{
		Cluster:       cluster.MT(2, 3, 2),
		MaxSupersteps: cdIters,
	})
	if _, err := me.Run(); err != nil {
		t.Fatal(err)
	}
	bl, cl, ml := be.Values(), ce.Values(), me.Values()
	for v := range want {
		if bl[v] != want[v] || cl[v] != want[v] || ml[v] != want[v] {
			t.Fatalf("vertex %d: ref=%d bsp=%d cyclops=%d mt=%d",
				v, want[v], bl[v], cl[v], ml[v])
		}
	}
	// Detected communities should align with the planted ones.
	if acc := CommunityAccuracy(g, cl, planted); acc < 0.8 {
		t.Errorf("community accuracy = %g", acc)
	}
}

func TestCDHaltStopsBSP(t *testing.T) {
	// Synchronous label propagation can oscillate forever on sparse
	// symmetric graphs, so use disjoint cliques, where it provably
	// converges in three rounds.
	b := graph.NewBuilder(20)
	for c := 0; c < 2; c++ {
		for u := 0; u < 10; u++ {
			for v := 0; v < 10; v++ {
				if u != v {
					b.AddEdge(graph.ID(c*10+u), graph.ID(c*10+v))
				}
			}
		}
	}
	g := b.MustBuild()
	be, _ := bsp.New[int64, int64](g, CDBSP{}, bsp.Config[int64, int64]{
		Cluster:       cluster.Flat(2, 1),
		MaxSupersteps: 100,
		Halt:          CDHalt(),
	})
	trace, err := be.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) >= 100 {
		t.Fatal("CDHalt never fired")
	}
}

func TestMostFrequentTieBreaking(t *testing.T) {
	labels := []int64{5, 3, 5, 3}
	got := mostFrequent(9, func(i int) int64 { return labels[i] }, len(labels))
	if got != 3 {
		t.Fatalf("tie broke to %d, want 3", got)
	}
	if mostFrequent(9, nil, 0) != 9 {
		t.Fatal("no neighbors must keep own label")
	}
}

func TestALSEnginesMatchReference(t *testing.T) {
	g := gen.Bipartite(60, 12, 5, 21)
	cfg := ALSConfig{Users: 60, D: 4, Lambda: 0.05, Sweeps: 3}
	want := ALSRef(g, cfg)

	ce, err := cyclops.New[[]float64, []float64](g, ALSCyclops{Cfg: cfg}, cyclops.Config[[]float64, []float64]{
		Cluster:       cluster.Flat(2, 2),
		MaxSupersteps: cfg.TotalSupersteps(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	cv := ce.Values()
	for v := range want {
		for i := range want[v] {
			if math.Abs(cv[v][i]-want[v][i]) > 1e-9 {
				t.Fatalf("cyclops vertex %d dim %d: %g vs %g", v, i, cv[v][i], want[v][i])
			}
		}
	}

	be, err := bsp.New[[]float64, ALSMsg](g, ALSBSP{Cfg: cfg}, bsp.Config[[]float64, ALSMsg]{
		Cluster:       cluster.Flat(2, 2),
		MaxSupersteps: cfg.TotalSupersteps() + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	bv := be.Values()
	for v := range want {
		for i := range want[v] {
			if math.Abs(bv[v][i]-want[v][i]) > 1e-6 {
				t.Fatalf("bsp vertex %d dim %d: %g vs %g", v, i, bv[v][i], want[v][i])
			}
		}
	}
}

func TestALSRMSEDecreasesWithSweeps(t *testing.T) {
	g := gen.Bipartite(150, 25, 8, 4)
	base := ALSConfig{Users: 150, D: 6, Lambda: 0.05}
	var prev = math.Inf(1)
	for _, sweeps := range []int{1, 3, 6} {
		cfg := base
		cfg.Sweeps = sweeps
		rmse := RMSE(g, cfg.Users, ALSRef(g, cfg))
		if rmse > prev+1e-9 {
			t.Fatalf("RMSE rose from %g to %g at %d sweeps", prev, rmse, sweeps)
		}
		prev = rmse
	}
	if prev > 1.2 {
		t.Errorf("final RMSE = %g; ALS is not fitting", prev)
	}
}

func TestInitVecDeterministicAndBounded(t *testing.T) {
	a := InitVec(42, 8)
	b := InitVec(42, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InitVec must be deterministic")
		}
		if a[i] <= 0 || a[i] >= 1 {
			t.Fatalf("InitVec[%d] = %g outside (0,1)", i, a[i])
		}
	}
	c := InitVec(43, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different ids must give different vectors")
	}
}

func TestPageRankRefEmptyGraph(t *testing.T) {
	if got := PageRankRef(graph.NewBuilder(0).MustBuild(), 3); got != nil {
		t.Fatalf("empty graph ranks = %v", got)
	}
}

func TestL1Distance(t *testing.T) {
	if d := L1Distance([]float64{1, 2}, []float64{0, 4}); d != 3 {
		t.Fatalf("L1 = %g", d)
	}
}

// PageRank over a small-world graph: the third structural regime (high
// clustering, low diameter) alongside power-law and lattice.
func TestPageRankOnSmallWorld(t *testing.T) {
	g := gen.SmallWorld(300, 3, 0.1, 12)
	want := PageRankRef(g, prIters)
	ce, err := cyclops.New[float64, float64](g, PageRankCyclops{}, cyclops.Config[float64, float64]{
		Cluster:       cluster.MT(3, 2, 2),
		MaxSupersteps: prIters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "smallworld", ce.Values(), want, 1e-12)
	// Small-world graphs are near-regular: coreness is uniform-ish and the
	// h-index iteration still matches peeling.
	coreWant := CorenessRef(g)
	ke, err := cyclops.New[int64, int64](g, CorenessCyclops{}, cyclops.Config[int64, int64]{
		Cluster: cluster.Flat(2, 2), MaxSupersteps: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ke.Run(); err != nil {
		t.Fatal(err)
	}
	got := ke.Values()
	for v := range coreWant {
		if got[v] != coreWant[v] {
			t.Fatalf("coreness mismatch at %d", v)
		}
	}
}
