package algorithms

import (
	"testing"
	"testing/quick"

	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

func TestHIndex(t *testing.T) {
	cases := []struct {
		vals []int64
		want int64
	}{
		{nil, 0},
		{[]int64{0}, 0},
		{[]int64{5}, 1},
		{[]int64{3, 3, 3}, 3},
		{[]int64{5, 4, 3, 2, 1}, 3},
		{[]int64{1, 1, 1, 1}, 1},
		{[]int64{10, 10}, 2},
	}
	for _, c := range cases {
		got := hIndex(len(c.vals), func(i int) int64 { return c.vals[i] })
		if got != c.want {
			t.Errorf("hIndex(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

func TestCorenessRefKnown(t *testing.T) {
	// A triangle with a pendant vertex: triangle has coreness 2, pendant 1.
	b := graph.NewBuilder(4)
	for _, e := range [][2]graph.ID{{0, 1}, {1, 2}, {2, 0}, {3, 0}} {
		b.AddEdge(e[0], e[1])
		b.AddEdge(e[1], e[0])
	}
	g := b.MustBuild()
	want := []int64{2, 2, 2, 1}
	got := CorenessRef(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("coreness = %v, want %v", got, want)
		}
	}
}

func TestCorenessEnginesMatchPeeling(t *testing.T) {
	g := symmetrize(gen.PowerLaw(500, 4, 41))
	want := CorenessRef(g)

	ce, err := cyclops.New[int64, int64](g, CorenessCyclops{}, cyclops.Config[int64, int64]{
		Cluster: cluster.Flat(3, 2), MaxSupersteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := ce.Run()
	if err != nil {
		t.Fatal(err)
	}
	be, err := bsp.New[int64, int64](g, CorenessBSP{}, bsp.Config[int64, int64]{
		Cluster: cluster.Flat(3, 2), MaxSupersteps: 500, Halt: CDHalt(),
	})
	if err != nil {
		t.Fatal(err)
	}
	btr, err := be.Run()
	if err != nil {
		t.Fatal(err)
	}
	cl, bl := ce.Values(), be.Values()
	for v := range want {
		if cl[v] != want[v] || bl[v] != want[v] {
			t.Fatalf("vertex %d: ref=%d cyclops=%d bsp=%d", v, want[v], cl[v], bl[v])
		}
	}
	// Dynamic activation: Cyclops touches far fewer vertex-steps than BSP
	// recomputing everyone every superstep.
	var cSteps, bSteps int64
	for _, s := range ctr.Steps {
		cSteps += s.Active
	}
	for _, s := range btr.Steps {
		bSteps += s.Active
	}
	if cSteps >= bSteps {
		t.Errorf("cyclops vertex-steps %d !< bsp %d", cSteps, bSteps)
	}
}

// Property: the h-index fixpoint equals peeling coreness on random
// symmetric graphs, and coreness never exceeds degree.
func TestCorenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := symmetrize(gen.ErdosRenyi(60, 150, seed))
		want := CorenessRef(g)
		e, err := cyclops.New[int64, int64](g, CorenessCyclops{}, cyclops.Config[int64, int64]{
			Cluster: cluster.Flat(2, 2), MaxSupersteps: 300,
		})
		if err != nil {
			return false
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		got := e.Values()
		for v := range want {
			if got[v] != want[v] || got[v] > int64(g.OutDegree(graph.ID(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
