package algorithms

import (
	"cyclops/internal/aggregate"
	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

// CDHalt terminates a BSP label-propagation run once a superstep changes no
// labels (the changed-count aggregate is zero or absent).
func CDHalt() aggregate.HaltFunc {
	return func(step int, agg func(string) (float64, bool), _ int64) bool {
		if step == 0 {
			return false
		}
		changed, ok := agg(ChangedAggregator)
		return !ok || changed == 0
	}
}

// Community Detection by synchronous label propagation (§6.1): every vertex
// adopts the most frequent label among its in-neighbors, with deterministic
// tie-breaking toward the smaller label so all engines (and the reference)
// agree bit-for-bit. Vertices with the same final label form a community.

// mostFrequent returns the winning label among labels (smallest on ties), or
// own when labels is empty.
func mostFrequent(own int64, labels func(i int) int64, n int) int64 {
	if n == 0 {
		return own
	}
	counts := make(map[int64]int, n)
	best, bestCount := own, 0
	for i := 0; i < n; i++ {
		l := labels(i)
		c := counts[l] + 1
		counts[l] = c
		if c > bestCount || (c == bestCount && l < best) {
			best, bestCount = l, c
		}
	}
	return best
}

// CDRef iterates synchronous label propagation sequentially for iters
// rounds (or until no label changes).
func CDRef(g *graph.Graph, iters int) []int64 {
	n := g.NumVertices()
	labels := make([]int64, n)
	for v := range labels {
		labels[v] = int64(v)
	}
	next := make([]int64, n)
	for it := 0; it < iters; it++ {
		changed := false
		for v := 0; v < n; v++ {
			ins := g.InNeighbors(graph.ID(v))
			next[v] = mostFrequent(labels[v],
				func(i int) int64 { return labels[ins[i]] }, len(ins))
			if next[v] != labels[v] {
				changed = true
			}
		}
		labels, next = next, labels
		if !changed {
			break
		}
	}
	return labels
}

// CDBSP is label propagation in push-mode BSP: pull-mode in nature, so
// every vertex stays alive rebroadcasting its label each superstep until the
// changed-count aggregate reaches zero.
type CDBSP struct{}

// ChangedAggregator counts vertices whose label changed this superstep.
const ChangedAggregator = "cd-changed"

// Init implements bsp.Program.
func (CDBSP) Init(id graph.ID, _ *graph.Graph) int64 { return int64(id) }

// Compute implements bsp.Program.
func (CDBSP) Compute(ctx *bsp.Context[int64, int64], msgs []int64) {
	if ctx.Superstep() == 0 {
		ctx.SendToNeighbors(ctx.Value())
		return
	}
	label := mostFrequent(ctx.Value(), func(i int) int64 { return msgs[i] }, len(msgs))
	if label != ctx.Value() {
		ctx.SetValue(label)
		ctx.Aggregate(ChangedAggregator, 1)
	}
	// Pull-mode under BSP: rebroadcast regardless of change (the redundant
	// traffic §2.2.2 complains about). The engine's Halt is expected to be
	// aggregate-driven.
	ctx.SendToNeighbors(label)
}

// CDCyclops is label propagation over the immutable view: converged labels
// stay readable without rebroadcast, and only changed vertices activate.
type CDCyclops struct{}

// Init implements cyclops.Program.
func (CDCyclops) Init(id graph.ID, _ *graph.Graph) (int64, int64, bool) {
	return int64(id), int64(id), true
}

// Compute implements cyclops.Program.
func (CDCyclops) Compute(ctx *cyclops.Context[int64, int64]) {
	label := mostFrequent(ctx.Value(),
		func(i int) int64 { return ctx.NeighborMessage(i) }, ctx.InDegree())
	if label != ctx.Value() {
		ctx.SetValue(label)
		ctx.Publish(label, true)
		ctx.Aggregate(ChangedAggregator, 1)
	}
}

// CommunityAccuracy scores detected labels against planted ground truth:
// the fraction of vertex pairs sharing a planted community that also share a
// detected label, sampled over adjacent pairs (exact pairwise counting is
// quadratic). It is used to sanity-check CD results on the dblp dataset.
func CommunityAccuracy(g *graph.Graph, detected []int64, planted []int) float64 {
	agree, total := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(graph.ID(v)) {
			if planted[v] == planted[u] {
				total++
				if detected[v] == detected[u] {
					agree++
				}
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}
