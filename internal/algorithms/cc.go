package algorithms

import (
	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

// Connected Components by HashMin label propagation: every vertex converges
// to the smallest vertex id in its weakly connected component. It is not one
// of the paper's four workloads, but it is the canonical fifth vertex
// program every Pregel-family system ships, and it exercises a behaviour the
// others don't: monotone convergence under both push and pull with exact
// integer equality.
//
// Weak connectivity needs edges followed both ways; callers pass a
// symmetrised graph (gen.Community, gen.Road and gen.Bipartite already are).

// CCRef computes component labels sequentially (union-find).
func CCRef(g *graph.Graph) []int64 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb { // root at the smaller id so labels match HashMin
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.OutNeighbors(graph.ID(v)) {
			union(int32(v), int32(u))
		}
	}
	labels := make([]int64, n)
	for v := 0; v < n; v++ {
		labels[v] = int64(find(int32(v)))
	}
	return labels
}

// CCBSP is HashMin in push-mode BSP: announce once, then propagate any
// improvement and sleep.
type CCBSP struct{}

// Init implements bsp.Program.
func (CCBSP) Init(id graph.ID, _ *graph.Graph) int64 { return int64(id) }

// Compute implements bsp.Program.
func (CCBSP) Compute(ctx *bsp.Context[int64, int64], msgs []int64) {
	best := ctx.Value()
	improved := ctx.Superstep() == 0
	for _, m := range msgs {
		if m < best {
			best = m
			improved = true
		}
	}
	if improved {
		ctx.SetValue(best)
		ctx.SendToNeighbors(best)
	}
	ctx.VoteToHalt()
}

// CCCyclops is HashMin over the immutable view: pull the neighborhood
// minimum, publish and activate only on improvement.
type CCCyclops struct{}

// Init implements cyclops.Program.
func (CCCyclops) Init(id graph.ID, _ *graph.Graph) (int64, int64, bool) {
	return int64(id), int64(id), true
}

// Compute implements cyclops.Program.
func (CCCyclops) Compute(ctx *cyclops.Context[int64, int64]) {
	best := ctx.Value()
	for i := 0; i < ctx.InDegree(); i++ {
		if m := ctx.NeighborMessage(i); m < best {
			best = m
		}
	}
	if best < ctx.Value() {
		ctx.SetValue(best)
		ctx.Publish(best, true)
	} else if ctx.Superstep() == 0 {
		ctx.Publish(best, true) // announce the initial label once
	}
}

// CCGAS is HashMin in gather-apply-scatter form (gather = min over
// in-neighbors' labels).
type CCGAS struct{}

// Init implements gas.Program.
func (CCGAS) Init(id graph.ID, _ *graph.Graph) (int64, bool) { return int64(id), true }

// Gather implements gas.Program.
func (CCGAS) Gather(_ graph.ID, srcVal int64, _ float64) int64 { return srcVal }

// Sum implements gas.Program.
func (CCGAS) Sum(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Apply implements gas.Program.
func (CCGAS) Apply(id graph.ID, old int64, acc int64, hasAcc bool, step int) (int64, bool) {
	best := old
	if hasAcc && acc < best {
		best = acc
	}
	// Scatter on improvement, and once at the start so labels begin flowing.
	return best, best < old || step == 0
}

// ComponentCount tallies distinct labels.
func ComponentCount(labels []int64) int {
	seen := make(map[int64]struct{}, 16)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
