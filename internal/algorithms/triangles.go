package algorithms

import (
	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

// Triangle counting on symmetric simple graphs, by the standard orientation
// trick: direct every edge from the smaller to the larger id, and for each
// oriented wedge v→u (v<u) count the common higher neighbors of v and u.
// Each triangle v<u<w is counted exactly once, at u.
//
// On Cyclops this is a *single superstep*: every vertex publishes its
// higher-neighbor list into the immutable view at Init, and Compute just
// intersects its in-neighbors' published lists with its own — adjacency
// never travels per-edge. On BSP the same lists must be materialised as
// messages along every oriented edge, which is exactly the kind of bulk
// traffic the distributed immutable view exists to avoid.

// higherNeighbors returns v's neighbors with larger ids, sorted,
// deduplicated (the builder sorts adjacency already).
func higherNeighbors(g *graph.Graph, v graph.ID) []graph.ID {
	ns := g.OutNeighbors(v)
	out := make([]graph.ID, 0, len(ns))
	for _, u := range ns {
		if u > v && (len(out) == 0 || out[len(out)-1] != u) {
			out = append(out, u)
		}
	}
	return out
}

// intersectCount counts common elements of two sorted id slices.
func intersectCount(a, b []graph.ID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// TrianglesRef counts triangles sequentially.
func TrianglesRef(g *graph.Graph) int64 {
	n := g.NumVertices()
	higher := make([][]graph.ID, n)
	for v := 0; v < n; v++ {
		higher[v] = higherNeighbors(g, graph.ID(v))
	}
	var total int64
	for v := 0; v < n; v++ {
		for _, u := range higher[v] {
			total += intersectCount(higher[v], higher[u])
		}
	}
	return total
}

// TrianglesAggregator accumulates the per-vertex triangle counts.
const TrianglesAggregator = "triangles"

// TrianglesCyclops counts triangles in one superstep over the view.
type TrianglesCyclops struct{}

// Init implements cyclops.Program: the published value is the sorted
// higher-neighbor list.
func (TrianglesCyclops) Init(id graph.ID, g *graph.Graph) (int64, []graph.ID, bool) {
	return 0, higherNeighbors(g, id), true
}

// Compute implements cyclops.Program.
func (TrianglesCyclops) Compute(ctx *cyclops.Context[int64, []graph.ID]) {
	u := ctx.Vertex()
	var count int64
	// The engine deduplicates in-edges per source only as far as the input
	// graph does; symmetric simple graphs give one in-edge per neighbor.
	own := ctx.Message() // this vertex's own published higher list
	for i := 0; i < ctx.InDegree(); i++ {
		list := ctx.NeighborMessage(i)
		// Only wedges arriving from lower-id neighbors count; orientation is
		// read off the list itself (v < u iff u appears in v's higher list).
		if containsID(list, u) {
			count += intersectCount(list, own)
		}
	}
	ctx.SetValue(count)
	ctx.Aggregate(TrianglesAggregator, float64(count))
	// No Publish: one superstep, then everyone sleeps.
}

func containsID(sorted []graph.ID, x graph.ID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}

// TrianglesBSP counts triangles with two supersteps of list shipping.
type TrianglesBSP struct{}

// Init implements bsp.Program.
func (TrianglesBSP) Init(id graph.ID, _ *graph.Graph) int64 { return 0 }

// Compute implements bsp.Program.
func (TrianglesBSP) Compute(ctx *bsp.Context[int64, []graph.ID], msgs [][]graph.ID) {
	g := ctx
	switch ctx.Superstep() {
	case 0:
		mine := higherFromCtx(g)
		for _, u := range mine {
			ctx.SendTo(u, mine)
		}
		ctx.VoteToHalt()
	case 1:
		own := higherFromCtx(g)
		var count int64
		for _, list := range msgs {
			count += intersectCount(list, own)
		}
		ctx.SetValue(count)
		ctx.Aggregate(TrianglesAggregator, float64(count))
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

func higherFromCtx(ctx *bsp.Context[int64, []graph.ID]) []graph.ID {
	v := ctx.Vertex()
	ns := ctx.OutNeighbors()
	out := make([]graph.ID, 0, len(ns))
	for _, u := range ns {
		if u > v && (len(out) == 0 || out[len(out)-1] != u) {
			out = append(out, u)
		}
	}
	return out
}

// SumCounts totals per-vertex triangle counts.
func SumCounts(values []int64) int64 {
	var total int64
	for _, v := range values {
		total += v
	}
	return total
}
