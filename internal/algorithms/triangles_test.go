package algorithms

import (
	"testing"
	"testing/quick"

	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				b.AddEdge(graph.ID(u), graph.ID(v))
			}
		}
	}
	return b.MustBuild()
}

func TestTrianglesRefKnown(t *testing.T) {
	// K4 has C(4,3) = 4 triangles; K5 has 10.
	if got := TrianglesRef(completeGraph(4)); got != 4 {
		t.Fatalf("K4 triangles = %d", got)
	}
	if got := TrianglesRef(completeGraph(5)); got != 10 {
		t.Fatalf("K5 triangles = %d", got)
	}
	// A 4-cycle has none.
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.ID(i), graph.ID((i+1)%4))
		b.AddEdge(graph.ID((i+1)%4), graph.ID(i))
	}
	if got := TrianglesRef(b.MustBuild()); got != 0 {
		t.Fatalf("C4 triangles = %d", got)
	}
}

func TestTrianglesEnginesMatch(t *testing.T) {
	g := symmetrize(gen.ErdosRenyi(200, 900, 33))
	want := TrianglesRef(g)
	if want == 0 {
		t.Fatal("test graph should contain triangles")
	}

	ce, err := cyclops.New[int64, []graph.ID](g, TrianglesCyclops{}, cyclops.Config[int64, []graph.ID]{
		Cluster:   cluster.Flat(3, 2),
		SizeOfMsg: func(m []graph.ID) int64 { return int64(4 * len(m)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := ce.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := SumCounts(ce.Values()); got != want {
		t.Fatalf("cyclops triangles = %d, want %d", got, want)
	}
	// Single superstep: the whole count comes from the initial view.
	if len(ctr.Steps) != 1 {
		t.Fatalf("cyclops took %d supersteps, want 1", len(ctr.Steps))
	}

	be, err := bsp.New[int64, []graph.ID](g, TrianglesBSP{}, bsp.Config[int64, []graph.ID]{
		Cluster:   cluster.Flat(3, 2),
		SizeOfMsg: func(m []graph.ID) int64 { return int64(4 * len(m)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	if got := SumCounts(be.Values()); got != want {
		t.Fatalf("bsp triangles = %d, want %d", got, want)
	}
}

// Property: engines agree with the reference on random symmetric graphs.
func TestTrianglesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := symmetrize(gen.ErdosRenyi(50, 250, seed))
		want := TrianglesRef(g)
		e, err := cyclops.New[int64, []graph.ID](g, TrianglesCyclops{}, cyclops.Config[int64, []graph.ID]{
			Cluster: cluster.Flat(2, 2),
		})
		if err != nil {
			return false
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		return SumCounts(e.Values()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectCount(t *testing.T) {
	a := []graph.ID{1, 3, 5, 7}
	b := []graph.ID{2, 3, 5, 9}
	if got := intersectCount(a, b); got != 2 {
		t.Fatalf("intersect = %d", got)
	}
	if intersectCount(nil, a) != 0 || intersectCount(a, nil) != 0 {
		t.Fatal("empty intersection must be 0")
	}
}

func TestContainsID(t *testing.T) {
	s := []graph.ID{2, 4, 6}
	for _, c := range []struct {
		x    graph.ID
		want bool
	}{{2, true}, {4, true}, {6, true}, {1, false}, {5, false}, {7, false}} {
		if containsID(s, c.x) != c.want {
			t.Fatalf("containsID(%v, %d) != %v", s, c.x, c.want)
		}
	}
	if containsID(nil, 1) {
		t.Fatal("empty slice contains nothing")
	}
}
