package algorithms

import (
	"testing"
	"testing/quick"

	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

// symmetrize adds the reverse of every edge so weak connectivity works.
func symmetrize(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices()).Dedup()
	for _, e := range g.Edges() {
		b.AddEdge(e.Src, e.Dst)
		b.AddEdge(e.Dst, e.Src)
	}
	return b.MustBuild()
}

func TestCCRefKnownComponents(t *testing.T) {
	// Two triangles and an isolated vertex: components {0,1,2}, {3,4,5}, {6}.
	b := graph.NewBuilder(7)
	for _, e := range [][2]graph.ID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e[0], e[1])
		b.AddEdge(e[1], e[0])
	}
	g := b.MustBuild()
	labels := CCRef(g)
	want := []int64{0, 0, 0, 3, 3, 3, 6}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	if ComponentCount(labels) != 3 {
		t.Fatalf("components = %d", ComponentCount(labels))
	}
}

func TestCCAllEnginesMatchReference(t *testing.T) {
	g := symmetrize(gen.ErdosRenyi(400, 500, 31)) // sparse → many components
	want := CCRef(g)

	be, err := bsp.New[int64, int64](g, CCBSP{}, bsp.Config[int64, int64]{
		Cluster: cluster.Flat(2, 2), MaxSupersteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	ce, err := cyclops.New[int64, int64](g, CCCyclops{}, cyclops.Config[int64, int64]{
		Cluster: cluster.Flat(2, 2), MaxSupersteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Run(); err != nil {
		t.Fatal(err)
	}
	me, err := cyclops.New[int64, int64](g, CCCyclops{}, cyclops.Config[int64, int64]{
		Cluster: cluster.MT(2, 4, 2), MaxSupersteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.Run(); err != nil {
		t.Fatal(err)
	}
	ge, err := gas.New[int64, int64](g, CCGAS{}, gas.Config[int64, int64]{
		Cluster: cluster.Flat(3, 1), MaxSupersteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ge.Run(); err != nil {
		t.Fatal(err)
	}

	bl, cl, ml, gl := be.Values(), ce.Values(), me.Values(), ge.Values()
	for v := range want {
		if bl[v] != want[v] || cl[v] != want[v] || ml[v] != want[v] || gl[v] != want[v] {
			t.Fatalf("vertex %d: ref=%d bsp=%d cyclops=%d mt=%d gas=%d",
				v, want[v], bl[v], cl[v], ml[v], gl[v])
		}
	}
}

// Property: on random symmetric graphs, Cyclops HashMin agrees with
// union-find, and every component's label is its minimum member.
func TestCCProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := symmetrize(gen.ErdosRenyi(120, 150, seed))
		want := CCRef(g)
		e, err := cyclops.New[int64, int64](g, CCCyclops{}, cyclops.Config[int64, int64]{
			Cluster: cluster.Flat(3, 1), MaxSupersteps: 300,
		})
		if err != nil {
			return false
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		got := e.Values()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
			if got[v] > int64(v) {
				return false // label must be ≤ own id (min over component)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCCCommunityGraphIsFewComponents(t *testing.T) {
	g, _ := gen.Community(8, 30, 3, 1, 3) // cross-links join communities
	labels := CCRef(g)
	if c := ComponentCount(labels); c > 8 {
		t.Fatalf("components = %d, expected a mostly-connected graph", c)
	}
}
