// Package algorithms implements the four workloads of the paper's evaluation
// (§6.1) — PageRank, Single Source Shortest Path, Community Detection by
// label propagation, and Alternating Least Squares — once per engine (Hama
// BSP, Cyclops, PowerGraph GAS) plus a sequential reference implementation
// each. The BSP and Cyclops variants are deliberately near-verbatim
// transcriptions of the paper's Figure 2 and Figure 5 pseudo-code, so the
// few-SLOC porting claim of §6.1 can be seen in the diff between them.
package algorithms

import (
	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
	"cyclops/internal/graphlab"
)

// Damping is the PageRank damping factor used throughout the paper.
const Damping = 0.85

// outDeg1 treats dangling vertices as degree 1 so shares stay finite (the
// paper's programs divide by numEdges without special-casing; synthetic
// power-law graphs always give vertex 0 no out-edges at generation start).
func outDeg1(g *graph.Graph, id graph.ID) float64 {
	if d := g.OutDegree(id); d > 0 {
		return float64(d)
	}
	return 1
}

// PageRankRef iterates the PageRank recurrence sequentially for iters
// rounds. It is the ground truth the engine tests compare against and the
// "final result collected offline" of the convergence experiment (§6.9).
func PageRankRef(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	share := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
		share[v] = rank[v] / outDeg1(g, graph.ID(v))
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.ID(v)) {
				sum += share[u]
			}
			rank[v] = 0.15/float64(n) + Damping*sum
		}
		for v := 0; v < n; v++ {
			share[v] = rank[v] / outDeg1(g, graph.ID(v))
		}
	}
	return rank
}

// PageRankBSP is the paper's Figure 2 program: pull-mode PageRank forced
// into push-mode BSP. Every vertex must stay alive to resend its share, and
// termination depends on the coarse global error aggregate.
//
// Superstep 0 only seeds shares; superstep k computes iteration k. Epsilon
// ≤ 0 disables the error check (fixed-iteration mode for exact comparisons).
type PageRankBSP struct {
	// Eps is the global-error bound of Figure 2's getGlobalError() check.
	Eps float64
}

// ErrorAggregator is the aggregator name PageRank programs publish |Δrank|
// into; pair it with aggregate.GlobalErrorHalt.
const ErrorAggregator = "pr-error"

// Init implements bsp.Program.
func (PageRankBSP) Init(id graph.ID, g *graph.Graph) float64 {
	return 1 / float64(g.NumVertices())
}

// Compute implements bsp.Program.
func (p PageRankBSP) Compute(ctx *bsp.Context[float64, float64], msgs []float64) {
	if ctx.Superstep() == 0 {
		// Seed round: broadcast the initial share.
		ctx.SendToNeighbors(ctx.Value() / outDegCtx(ctx))
		return
	}
	var sum float64
	for _, m := range msgs {
		sum += m
	}
	value := 0.15/float64(ctx.NumVertices()) + Damping*sum
	last := ctx.Value()
	ctx.SetValue(value)
	ctx.Aggregate(ErrorAggregator, abs(value-last))
	// Figure 2: while the global error is above epsilon, keep sending; the
	// global error of the previous superstep is all a BSP vertex can see.
	globalErr, ok := ctx.AggregateValue(ErrorAggregator)
	converged := p.Eps > 0 && ok && globalErr/float64(ctx.NumVertices()) < p.Eps
	if !converged {
		ctx.SendToNeighbors(value / outDegCtx(ctx))
	} else {
		ctx.VoteToHalt()
	}
}

func outDegCtx[V, M any](ctx *bsp.Context[V, M]) float64 {
	if d := ctx.OutDegree(); d > 0 {
		return float64(d)
	}
	return 1
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PageRankCyclops is the paper's Figure 5 program: the same algorithm over
// the distributed immutable view. Neighbor shares are read directly from the
// view, convergence is the *local* error, and a converged vertex simply
// stops publishing — its last share stays readable by neighbors forever.
type PageRankCyclops struct {
	// Eps is the local error bound; a vertex whose |Δrank| falls below it
	// stops activating its neighbors. Eps ≤ 0 means fixed-iteration mode.
	Eps float64
}

// Init implements cyclops.Program: value is the rank, the published message
// is the share rank/outDegree (what Figure 5 passes to activateNeighbors).
func (PageRankCyclops) Init(id graph.ID, g *graph.Graph) (float64, float64, bool) {
	rank := 1 / float64(g.NumVertices())
	return rank, rank / outDeg1(g, id), true
}

// Compute implements cyclops.Program.
func (p PageRankCyclops) Compute(ctx *cyclops.Context[float64, float64]) {
	var sum float64
	for i := 0; i < ctx.InDegree(); i++ {
		sum += ctx.NeighborMessage(i)
	}
	value := 0.15/float64(ctx.NumVertices()) + Damping*sum
	last := ctx.Value()
	ctx.SetValue(value)
	err := abs(value - last)
	ctx.Aggregate(ErrorAggregator, err)
	if p.Eps <= 0 || err > p.Eps {
		ctx.Publish(value/outDegCyc(ctx), true)
	}
	// voteToHalt is implicit: without an activation a vertex sleeps.
}

func outDegCyc[V, M any](ctx *cyclops.Context[V, M]) float64 {
	if d := ctx.OutDegree(); d > 0 {
		return float64(d)
	}
	return 1
}

// PRValue is the GAS PageRank vertex value: PowerGraph mirrors cache both
// the rank and the share so gathers stay local.
type PRValue struct {
	Rank  float64
	Share float64
}

// PageRankGAS is PageRank in gather-apply-scatter form.
type PageRankGAS struct {
	g *graph.Graph
	// Iters fixes the iteration count (PowerGraph's sync engine runs
	// PageRank a fixed number of rounds in the paper's comparison).
	Iters int
	// Eps, when positive, stops activating once |Δrank| < Eps.
	Eps float64
}

// NewPageRankGAS builds the GAS program (it closes over the graph for
// out-degrees).
func NewPageRankGAS(g *graph.Graph, iters int, eps float64) *PageRankGAS {
	return &PageRankGAS{g: g, Iters: iters, Eps: eps}
}

// Init implements gas.Program.
func (p *PageRankGAS) Init(id graph.ID, g *graph.Graph) (PRValue, bool) {
	rank := 1 / float64(g.NumVertices())
	return PRValue{Rank: rank, Share: rank / outDeg1(g, id)}, true
}

// Gather implements gas.Program.
func (p *PageRankGAS) Gather(src graph.ID, srcVal PRValue, _ float64) float64 {
	return srcVal.Share
}

// Sum implements gas.Program.
func (p *PageRankGAS) Sum(a, b float64) float64 { return a + b }

// Apply implements gas.Program.
func (p *PageRankGAS) Apply(id graph.ID, old PRValue, acc float64, hasAcc bool, step int) (PRValue, bool) {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	rank := 0.15/float64(p.g.NumVertices()) + Damping*sum
	activate := step+1 < p.Iters
	if p.Eps > 0 && abs(rank-old.Rank) < p.Eps {
		activate = false
	}
	return PRValue{Rank: rank, Share: rank / outDeg1(p.g, id)}, activate
}

// Ranks extracts the rank column from GAS PageRank values.
func Ranks(vals []PRValue) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v.Rank
	}
	return out
}

// L1Distance is Σ|a-b|, the metric of the convergence-speed experiment
// (Figure 13(3)).
func L1Distance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += abs(a[i] - b[i])
	}
	return sum
}

// PageRankGraphLab is the asynchronous formulation for the GraphLab-like
// engine (§2.3): the vertex value is the share rank/outDegree so neighbors
// can read it directly from shared memory, and an update reschedules the
// out-neighbors only while its own rank is still moving.
type PageRankGraphLab struct {
	// Eps is the per-vertex tolerance below which a vertex stops
	// rescheduling its neighbors.
	Eps float64
	// N is the vertex count (captured at construction; the scope exposes it
	// too, but keeping it here makes Update allocation-free).
	N int
}

// Init implements graphlab.Program.
func (p PageRankGraphLab) Init(id graph.ID, g *graph.Graph) (float64, bool) {
	rank := 1 / float64(g.NumVertices())
	return rank / outDeg1(g, id), true
}

// Update implements graphlab.Program.
func (p PageRankGraphLab) Update(ctx *graphlab.Scope[float64]) (float64, bool) {
	var sum float64
	for i := 0; i < ctx.InDegree(); i++ {
		sum += ctx.NeighborValue(i)
	}
	rank := 0.15/float64(p.N) + Damping*sum
	d := float64(ctx.OutDegree())
	if d == 0 {
		d = 1
	}
	oldRank := ctx.Value() * d
	return rank / d, abs(rank-oldRank) > p.Eps
}
