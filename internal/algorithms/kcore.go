package algorithms

import (
	"sort"

	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

// Coreness (k-core decomposition) by iterated h-index (Lü et al. 2016):
// start every vertex at its degree and repeatedly replace each value with
// the H-operator over its neighbors' values — the largest h such that at
// least h neighbors have value ≥ h. The process converges monotonically
// (downward) to the vertex's coreness. It is a perfect fit for Cyclops'
// dynamic activation: most vertices reach their coreness in a few rounds
// and drop out of the computation. Callers pass symmetric graphs (coreness
// is an undirected notion).

// hIndex computes the H-operator over the values visible through get.
func hIndex(n int, get func(i int) int64) int64 {
	if n == 0 {
		return 0
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = get(i)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] > vals[b] })
	var h int64
	for i := 0; i < n; i++ {
		if vals[i] >= int64(i+1) {
			h = int64(i + 1)
		} else {
			break
		}
	}
	return h
}

// CorenessRef computes exact coreness sequentially by repeated peeling.
func CorenessRef(g *graph.Graph) []int64 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.ID(v))
	}
	core := make([]int64, n)
	removed := make([]bool, n)
	for remaining := n; remaining > 0; {
		// Find the minimum remaining degree and peel everything at it.
		k := -1
		for v := 0; v < n; v++ {
			if !removed[v] && (k == -1 || deg[v] < k) {
				k = deg[v]
			}
		}
		queue := make([]int, 0)
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] <= k {
				queue = append(queue, v)
			}
		}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if removed[v] {
				continue
			}
			removed[v] = true
			remaining--
			core[v] = int64(k)
			for _, u := range g.OutNeighbors(graph.ID(v)) {
				if !removed[u] {
					deg[u]--
					if deg[u] <= k {
						queue = append(queue, int(u))
					}
				}
			}
		}
	}
	return core
}

// CorenessCyclops is the h-index iteration over the immutable view.
type CorenessCyclops struct{}

// Init implements cyclops.Program.
func (CorenessCyclops) Init(id graph.ID, g *graph.Graph) (int64, int64, bool) {
	d := int64(g.OutDegree(id))
	return d, d, true
}

// Compute implements cyclops.Program.
func (CorenessCyclops) Compute(ctx *cyclops.Context[int64, int64]) {
	h := hIndex(ctx.InDegree(), func(i int) int64 { return ctx.NeighborMessage(i) })
	if h < ctx.Value() {
		ctx.SetValue(h)
		ctx.Publish(h, true)
	}
}

// CorenessBSP is the same iteration in message-passing form (pull-mode, so
// everyone rebroadcasts every superstep, as usual for BSP).
type CorenessBSP struct{}

// Init implements bsp.Program.
func (CorenessBSP) Init(id graph.ID, g *graph.Graph) int64 {
	return int64(g.OutDegree(id))
}

// Compute implements bsp.Program.
func (CorenessBSP) Compute(ctx *bsp.Context[int64, int64], msgs []int64) {
	if ctx.Superstep() > 0 {
		h := hIndex(len(msgs), func(i int) int64 { return msgs[i] })
		if h < ctx.Value() {
			ctx.SetValue(h)
			ctx.Aggregate(ChangedAggregator, 1)
		}
	}
	ctx.SendToNeighbors(ctx.Value())
}
