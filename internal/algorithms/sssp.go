package algorithms

import (
	"math"

	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
)

// SSSP is the paper's one push-mode workload (§6.1): vertices sleep until a
// shorter distance arrives, so even the BSP version has no redundant
// computation — the Cyclops win here comes only from contention-free
// communication and hierarchical locality (§6.3).

// SSSPRef computes single-source shortest paths sequentially (Bellman-Ford;
// the road graphs have no negative weights but BF also covers any synthetic
// weighting).
func SSSPRef(g *graph.Graph, src graph.ID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for v := 0; v < n; v++ {
			if math.IsInf(dist[v], 1) {
				continue
			}
			ns := g.OutNeighbors(graph.ID(v))
			ws := g.OutWeights(graph.ID(v))
			for i, u := range ns {
				if d := dist[v] + ws[i]; d < dist[u] {
					dist[u] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// SSSPBSP is the classic Pregel shortest-path program: push new distances,
// sleep, wake on message.
type SSSPBSP struct {
	Source graph.ID
}

// Init implements bsp.Program.
func (s SSSPBSP) Init(id graph.ID, _ *graph.Graph) float64 {
	if id == s.Source {
		return 0
	}
	return math.Inf(1)
}

// Compute implements bsp.Program.
func (s SSSPBSP) Compute(ctx *bsp.Context[float64, float64], msgs []float64) {
	best := ctx.Value()
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < ctx.Value() || (ctx.Superstep() == 0 && ctx.Vertex() == s.Source) {
		ctx.SetValue(best)
		ns := ctx.OutNeighbors()
		ws := ctx.OutWeights()
		for i := range ns {
			ctx.SendTo(ns[i], best+ws[i])
		}
	}
	ctx.VoteToHalt()
}

// SSSPCyclops is the ≈7-SLOC port of §6.1: distances are pulled from the
// immutable view (neighbor distance + in-edge weight) and activation pushes
// the frontier.
type SSSPCyclops struct {
	Source graph.ID
}

// Init implements cyclops.Program.
func (s SSSPCyclops) Init(id graph.ID, _ *graph.Graph) (float64, float64, bool) {
	if id == s.Source {
		return 0, 0, true
	}
	return math.Inf(1), math.Inf(1), false
}

// Compute implements cyclops.Program.
func (s SSSPCyclops) Compute(ctx *cyclops.Context[float64, float64]) {
	best := ctx.Value()
	for i := 0; i < ctx.InDegree(); i++ {
		if d := ctx.NeighborMessage(i) + ctx.InWeight(i); d < best {
			best = d
		}
	}
	if best < ctx.Value() {
		ctx.SetValue(best)
		ctx.Publish(best, true)
	} else if ctx.Superstep() == 0 && ctx.Vertex() == s.Source {
		ctx.Publish(0, true)
	}
}

// SSSPGAS is shortest paths in gather-apply-scatter form: gather is the
// min-plus product over in-edges.
type SSSPGAS struct {
	Source graph.ID
}

// Init implements gas.Program.
func (s SSSPGAS) Init(id graph.ID, _ *graph.Graph) (float64, bool) {
	if id == s.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// Gather implements gas.Program.
func (s SSSPGAS) Gather(_ graph.ID, srcVal float64, weight float64) float64 {
	return srcVal + weight
}

// Sum implements gas.Program.
func (s SSSPGAS) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements gas.Program.
func (s SSSPGAS) Apply(id graph.ID, old float64, acc float64, hasAcc bool, step int) (float64, bool) {
	best := old
	if hasAcc && acc < best {
		best = acc
	}
	// The source must scatter its initial distance even though nothing
	// improved it.
	return best, best < old || (step == 0 && id == s.Source)
}
