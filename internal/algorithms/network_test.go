package algorithms

import (
	"math"
	"testing"

	"cyclops/internal/bsp"
	"cyclops/internal/cluster"
	"cyclops/internal/cyclops"
	"cyclops/internal/gas"
	"cyclops/internal/gen"
	"cyclops/internal/transport"
)

// These tests run the engines over real gob-encoded TCP loopback sockets and
// require bit-identical results to the in-process transport: the distributed
// immutable view must not care what carries its sync messages.

func TestCyclopsPageRankOverTCP(t *testing.T) {
	g := gen.PowerLaw(300, 4, 15)
	run := func(network transport.Network) []float64 {
		e, err := cyclops.New[float64, float64](g, PageRankCyclops{}, cyclops.Config[float64, float64]{
			Cluster:       cluster.Flat(3, 1),
			MaxSupersteps: 8,
			Network:       network,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Values()
	}
	local := run(transport.InProcess)
	tcp := run(transport.TCPLoopback)
	for v := range local {
		if local[v] != tcp[v] {
			t.Fatalf("vertex %d: in-process %g vs tcp %g", v, local[v], tcp[v])
		}
	}
}

func TestBSPPageRankOverTCP(t *testing.T) {
	g := gen.PowerLaw(300, 4, 16)
	run := func(network transport.Network) []float64 {
		e, err := bsp.New[float64, float64](g, PageRankBSP{}, bsp.Config[float64, float64]{
			Cluster:       cluster.Flat(3, 1),
			MaxSupersteps: 8,
			Network:       network,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), e.Values()...)
	}
	local := run(transport.InProcess)
	tcp := run(transport.TCPLoopback)
	for v := range local {
		// BSP sums messages in arrival order, which differs between the
		// transports; allow last-ulp noise only.
		if math.Abs(local[v]-tcp[v]) > 1e-15 {
			t.Fatalf("vertex %d: in-process %g vs tcp %g", v, local[v], tcp[v])
		}
	}
}

func TestGASSSSPOverTCP(t *testing.T) {
	g := gen.Road(8, 8, 0.05, 4)
	want := SSSPRef(g, 0)
	e, err := gas.New[float64, float64](g, SSSPGAS{Source: 0}, gas.Config[float64, float64]{
		Cluster:       cluster.Flat(3, 1),
		MaxSupersteps: 300,
		Network:       transport.TCPLoopback,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := e.Values()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %g, want %g", v, got[v], want[v])
		}
	}
}

func TestCyclopsMTALSOverTCP(t *testing.T) {
	g := gen.Bipartite(40, 8, 4, 6)
	cfg := ALSConfig{Users: 40, D: 3, Lambda: 0.05, Sweeps: 2}
	want := ALSRef(g, cfg)
	e, err := cyclops.New[[]float64, []float64](g, ALSCyclops{Cfg: cfg},
		cyclops.Config[[]float64, []float64]{
			Cluster:       cluster.MT(2, 3, 2),
			MaxSupersteps: cfg.TotalSupersteps(),
			Network:       transport.TCPLoopback,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := e.Values()
	for v := range want {
		for i := range want[v] {
			if math.Abs(got[v][i]-want[v][i]) > 1e-9 {
				t.Fatalf("vertex %d dim %d: %g vs %g", v, i, got[v][i], want[v][i])
			}
		}
	}
}

func TestCheckpointRequiresInProcess(t *testing.T) {
	g := gen.PowerLaw(50, 3, 2)
	_, err := cyclops.New[float64, float64](g, PageRankCyclops{}, cyclops.Config[float64, float64]{
		Network:         transport.TCPLoopback,
		CheckpointEvery: 2,
		Checkpoints:     func(cyclops.State[float64, float64]) error { return nil },
	})
	if err == nil {
		t.Error("cyclops: checkpointing over TCP must be rejected")
	}
	_, err = bsp.New[float64, float64](g, PageRankBSP{}, bsp.Config[float64, float64]{
		Network:         transport.TCPLoopback,
		CheckpointEvery: 2,
		Checkpoints:     func(bsp.State[float64, float64]) error { return nil },
	})
	if err == nil {
		t.Error("bsp: checkpointing over TCP must be rejected")
	}
}

func TestRestoreRequiresInProcess(t *testing.T) {
	g := gen.PowerLaw(50, 3, 2)
	e, err := cyclops.New[float64, float64](g, PageRankCyclops{}, cyclops.Config[float64, float64]{
		Network: transport.TCPLoopback,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	n := g.NumVertices()
	err = e.Restore(cyclops.State[float64, float64]{
		Step: 1, Values: make([]float64, n), View: make([]float64, n), Active: make([]bool, n),
	})
	if err == nil {
		t.Error("restore over TCP must be rejected")
	}
}
