package algorithms

import (
	"math"

	"cyclops/internal/bsp"
	"cyclops/internal/cyclops"
	"cyclops/internal/graph"
	"cyclops/internal/linalg"
)

// Alternating Least Squares (§6.1, after Zhou et al.): the bipartite rating
// graph connects users [0, Users) with items [Users, |V|); each rating is an
// edge weight. A sweep solves the regularised normal equations for one side
// against the other's fixed latent vectors. On the graph engines the two
// sides alternate by activation: users update on even supersteps, items on
// odd ones.

// ALSConfig holds the shared hyper-parameters.
type ALSConfig struct {
	// Users is the number of user vertices (ids below Users are users).
	Users int
	// D is the latent dimension.
	D int
	// Lambda is the ridge regularisation weight.
	Lambda float64
	// Sweeps is the number of (user update, item update) pairs.
	Sweeps int
}

// TotalSupersteps is the Cyclops superstep count for Sweeps sweeps; BSP
// needs one extra seed superstep.
func (c ALSConfig) TotalSupersteps() int { return 2 * c.Sweeps }

// InitVec returns vertex id's deterministic pseudo-random initial latent
// vector — splitmix64-based so every engine (and replica seed) agrees.
func InitVec(id graph.ID, d int) []float64 {
	v := make([]float64, d)
	x := uint64(id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := range v {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		v[i] = 0.1 + 0.8*float64(z>>11)/float64(1<<53)
	}
	return v
}

// solveSide computes one vertex's new latent vector from its neighbors'
// vectors and the connecting ratings: (Σ qqᵀ + λI) w = Σ r·q.
func solveSide(d int, lambda float64, count int, neighbor func(i int) []float64, rating func(i int) float64) []float64 {
	a := make([]float64, d*d)
	b := make([]float64, d)
	for i := 0; i < count; i++ {
		q := neighbor(i)
		linalg.AddOuter(a, q)
		linalg.AddScaled(b, q, rating(i))
	}
	linalg.AddDiagonal(a, d, lambda)
	x, err := linalg.CholeskySolve(a, b)
	if err != nil {
		// λI keeps the system SPD for any rating data; reaching here means
		// NaNs in the inputs, which is a programming error worth surfacing.
		panic("algorithms: ALS normal equations not SPD: " + err.Error())
	}
	return x
}

// ALSRef runs the alternation sequentially.
func ALSRef(g *graph.Graph, cfg ALSConfig) [][]float64 {
	n := g.NumVertices()
	vecs := make([][]float64, n)
	for v := range vecs {
		vecs[v] = InitVec(graph.ID(v), cfg.D)
	}
	update := func(v int) {
		ins := g.InNeighbors(graph.ID(v))
		if len(ins) == 0 {
			return
		}
		ws := g.InWeights(graph.ID(v))
		vecs[v] = solveSide(cfg.D, cfg.Lambda, len(ins),
			func(i int) []float64 { return vecs[ins[i]] },
			func(i int) float64 { return ws[i] })
	}
	for s := 0; s < cfg.Sweeps; s++ {
		// Users read item vectors; snapshot semantics match the engines'
		// superstep views because items only change in the second half.
		for v := 0; v < cfg.Users; v++ {
			update(v)
		}
		for v := cfg.Users; v < n; v++ {
			update(v)
		}
	}
	return vecs
}

// RMSE reports the root-mean-square rating reconstruction error of latent
// vectors over all user→item edges.
func RMSE(g *graph.Graph, users int, vecs [][]float64) float64 {
	var se float64
	count := 0
	for u := 0; u < users; u++ {
		ns := g.OutNeighbors(graph.ID(u))
		ws := g.OutWeights(graph.ID(u))
		for i, item := range ns {
			pred := linalg.Dot(vecs[u], vecs[item])
			d := pred - ws[i]
			se += d * d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(se / float64(count))
}

// ALSCyclops alternates by activation: users (active at Init) update on even
// supersteps and activate their items; items update on odd supersteps and
// activate their users.
type ALSCyclops struct {
	Cfg ALSConfig
}

// Init implements cyclops.Program.
func (p ALSCyclops) Init(id graph.ID, _ *graph.Graph) ([]float64, []float64, bool) {
	v := InitVec(id, p.Cfg.D)
	return v, v, int(id) < p.Cfg.Users
}

// Compute implements cyclops.Program.
func (p ALSCyclops) Compute(ctx *cyclops.Context[[]float64, []float64]) {
	if ctx.InDegree() == 0 {
		return
	}
	vec := solveSide(p.Cfg.D, p.Cfg.Lambda, ctx.InDegree(),
		func(i int) []float64 { return ctx.NeighborMessage(i) },
		func(i int) float64 { return ctx.InWeight(i) })
	ctx.SetValue(vec)
	ctx.Publish(vec, ctx.Superstep()+1 < p.Cfg.TotalSupersteps())
}

// ALSMsg is the BSP message: a neighbor's latent vector plus the rating on
// the connecting edge (BSP must ship the rating because the receiver cannot
// see edge metadata of in-edges).
type ALSMsg struct {
	Vec    []float64
	Rating float64
}

// ALSBSP is the message-passing formulation: superstep 0 seeds item vectors;
// thereafter whichever side received vectors solves and replies.
type ALSBSP struct {
	Cfg ALSConfig
}

// Init implements bsp.Program.
func (p ALSBSP) Init(id graph.ID, _ *graph.Graph) []float64 {
	return InitVec(id, p.Cfg.D)
}

func (p ALSBSP) send(ctx *bsp.Context[[]float64, ALSMsg], vec []float64) {
	ns := ctx.OutNeighbors()
	ws := ctx.OutWeights()
	for i := range ns {
		ctx.SendTo(ns[i], ALSMsg{Vec: vec, Rating: ws[i]})
	}
}

// Compute implements bsp.Program.
func (p ALSBSP) Compute(ctx *bsp.Context[[]float64, ALSMsg], msgs []ALSMsg) {
	isItem := int(ctx.Vertex()) >= p.Cfg.Users
	if ctx.Superstep() == 0 {
		if isItem {
			p.send(ctx, ctx.Value())
		}
		ctx.VoteToHalt()
		return
	}
	if len(msgs) > 0 {
		vec := solveSide(p.Cfg.D, p.Cfg.Lambda, len(msgs),
			func(i int) []float64 { return msgs[i].Vec },
			func(i int) float64 { return msgs[i].Rating })
		ctx.SetValue(vec)
		if ctx.Superstep() < p.Cfg.TotalSupersteps() {
			p.send(ctx, vec)
		}
	}
	ctx.VoteToHalt()
}
