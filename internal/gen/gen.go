// Package gen produces the synthetic graphs that stand in for the paper's
// datasets (Table 1: Amazon, GWeb, LJournal, Wiki, SYN-GL, DBLP, RoadCA).
// The real SNAP files are not redistributable inside this offline module, so
// each dataset is replaced by a generator that reproduces the structural
// property the evaluation depends on: degree skew for the web/social graphs
// (drives replication factor and convergence asymmetry), planted communities
// for DBLP (drives label propagation), a large-diameter lattice for RoadCA
// (drives SSSP superstep counts), and a bipartite user×item graph for SYN-GL
// (matches the ALS input of Gonzalez et al.). All generators are
// deterministic for a given seed.
package gen

import (
	"math"
	"math/rand"

	"cyclops/internal/graph"
)

// PowerLaw generates a directed graph with a skewed in-degree distribution by
// preferential attachment: each new vertex emits outDegree edges whose
// targets are chosen proportionally to (in-degree + 1) among earlier
// vertices. This mimics web and social graphs where a small head of vertices
// collects most links — the regime in which Cyclops' centralized computation
// model is argued to beat PowerGraph's split computation (§1).
func PowerLaw(n, outDegree int, seed int64) *graph.Graph {
	if n <= 0 {
		return graph.NewBuilder(0).MustBuild()
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets is a repeated-endpoint list: vertex v appears once per received
	// edge plus once unconditionally, so sampling uniformly from it realises
	// the (in-degree + 1) preference.
	targets := make([]graph.ID, 0, n*(outDegree+1))
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		d := outDegree
		if d > v {
			d = v
		}
		for i := 0; i < d; i++ {
			t := targets[rng.Intn(len(targets))]
			if t == graph.ID(v) {
				continue
			}
			// Randomise orientation: attaching strictly new→old would yield
			// a DAG, on which PageRank converges in depth steps — real web
			// graphs have cycles, and the paper's convergence curves
			// (Figure 3) depend on them.
			if rng.Intn(2) == 0 {
				b.AddEdge(graph.ID(v), t)
			} else {
				b.AddEdge(t, graph.ID(v))
			}
			targets = append(targets, t)
		}
		targets = append(targets, graph.ID(v))
	}
	return b.MustBuild()
}

// RMAT generates a graph with the recursive matrix model (Chakrabarti et al.)
// used by Graph500: 2^scale vertices, edgeFactor·2^scale directed edges with
// quadrant probabilities (a, b, c, 1-a-b-c). Duplicate edges and self-loops
// are dropped, so the realised edge count can be slightly below the target.
func RMAT(scale, edgeFactor int, a, b, c float64, seed int64) *graph.Graph {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n).Dedup().NoSelfLoops()
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		bld.AddEdge(graph.ID(src), graph.ID(dst))
	}
	return bld.MustBuild()
}

// ErdosRenyi generates a uniform random directed graph with n vertices and m
// edges (duplicates and self-loops removed). It is the "no skew" control used
// by partitioner tests.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n).Dedup().NoSelfLoops()
	for i := 0; i < m; i++ {
		b.AddEdge(graph.ID(rng.Intn(n)), graph.ID(rng.Intn(n)))
	}
	return b.MustBuild()
}

// Road generates a road-network-like graph: a rows×cols 4-neighbour lattice
// with bidirectional edges plus a small fraction of shortcut edges, weighted
// by a log-normal distribution with µ=0.4, σ=1.2 — exactly the weight model
// §6.2 applies to RoadCA (taken from the Facebook interaction graph of
// Wilson et al.). Lattices have huge diameter relative to power-law graphs,
// which is what makes SSSP run for many supersteps.
func Road(rows, cols int, shortcutFrac float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := graph.NewBuilder(n)
	w := func() float64 { return math.Exp(0.4 + 1.2*rng.NormFloat64()) }
	at := func(r, c int) graph.ID { return graph.ID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				wt := w()
				b.AddWeightedEdge(at(r, c), at(r, c+1), wt)
				b.AddWeightedEdge(at(r, c+1), at(r, c), wt)
			}
			if r+1 < rows {
				wt := w()
				b.AddWeightedEdge(at(r, c), at(r+1, c), wt)
				b.AddWeightedEdge(at(r+1, c), at(r, c), wt)
			}
		}
	}
	shortcuts := int(shortcutFrac * float64(n))
	for i := 0; i < shortcuts; i++ {
		u, v := graph.ID(rng.Intn(n)), graph.ID(rng.Intn(n))
		if u == v {
			continue
		}
		wt := w()
		b.AddWeightedEdge(u, v, wt)
		b.AddWeightedEdge(v, u, wt)
	}
	return b.MustBuild()
}

// Community generates a planted-partition graph: k communities of given mean
// size; within a community each vertex links to degIn random members, and
// with probability pOut each vertex also links to degOut vertices outside.
// Edges are bidirectional, matching collaboration networks such as DBLP. The
// planted labels are returned so community-detection results can be scored.
func Community(k, meanSize, degIn, degOut int, seed int64) (*graph.Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	// Community sizes vary ±50% around the mean so label propagation has
	// asymmetric convergence like the real DBLP graph.
	sizes := make([]int, k)
	n := 0
	for i := range sizes {
		s := meanSize/2 + rng.Intn(meanSize+1)
		if s < 2 {
			s = 2
		}
		sizes[i] = s
		n += s
	}
	labels := make([]int, n)
	starts := make([]int, k+1)
	for i, s := range sizes {
		starts[i+1] = starts[i] + s
		for v := starts[i]; v < starts[i+1]; v++ {
			labels[v] = i
		}
	}
	b := graph.NewBuilder(n).Dedup().NoSelfLoops()
	for c := 0; c < k; c++ {
		lo, hi := starts[c], starts[c+1]
		for v := lo; v < hi; v++ {
			for i := 0; i < degIn; i++ {
				u := lo + rng.Intn(hi-lo)
				b.AddEdge(graph.ID(v), graph.ID(u))
				b.AddEdge(graph.ID(u), graph.ID(v))
			}
			for i := 0; i < degOut; i++ {
				u := rng.Intn(n)
				b.AddEdge(graph.ID(v), graph.ID(u))
				b.AddEdge(graph.ID(u), graph.ID(v))
			}
		}
	}
	return b.MustBuild(), labels
}

// Bipartite generates the ALS input: a users×items rating graph where each
// user rates ratingsPerUser random items with ratings in [1,5]. Vertices
// [0,users) are users; [users, users+items) are items. Every rating produces
// both directions so ALS can alternate sides, as in the SYN-GL dataset of
// Gonzalez et al. the paper borrows.
func Bipartite(users, items, ratingsPerUser int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(users + items).Dedup()
	for u := 0; u < users; u++ {
		for i := 0; i < ratingsPerUser; i++ {
			item := graph.ID(users + rng.Intn(items))
			rating := float64(rng.Intn(5) + 1)
			b.AddWeightedEdge(graph.ID(u), item, rating)
			b.AddWeightedEdge(item, graph.ID(u), rating)
		}
	}
	return b.MustBuild()
}

// SmallWorld generates a Watts–Strogatz small-world graph: a ring lattice
// where every vertex connects to its k nearest neighbors on each side, with
// each edge rewired to a random endpoint with probability beta. Small
// rewiring probabilities give the high-clustering / low-diameter regime
// between the lattice (roadca-like) and random (er) extremes — useful for
// partitioner and convergence studies. Edges are bidirectional.
func SmallWorld(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n).Dedup().NoSelfLoops()
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + j) % n
			if rng.Float64() < beta {
				u = rng.Intn(n)
				if u == v {
					continue
				}
			}
			b.AddEdge(graph.ID(v), graph.ID(u))
			b.AddEdge(graph.ID(u), graph.ID(v))
		}
	}
	return b.MustBuild()
}
