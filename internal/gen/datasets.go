package gen

import (
	"fmt"
	"math"
	"sort"

	"cyclops/internal/graph"
)

// Meta describes a named dataset: which paper dataset it substitutes for,
// that dataset's real size (Table 1 of the paper), and which algorithm the
// paper runs on it.
type Meta struct {
	Name      string
	Algorithm string // PR, ALS, CD or SSSP (Table 1 pairing)
	PaperV    int
	PaperE    int
	// Labels carries planted community labels for the dblp dataset; nil
	// otherwise.
	Labels []int
	// Users is the user-side size of the bipartite syn-gl dataset (ids
	// below Users are users); zero for non-bipartite datasets.
	Users int
}

// dataset couples Table 1 metadata with a scaled generator. gen returns the
// graph, optional planted labels, and the bipartite user count (0 if n/a).
type dataset struct {
	meta Meta
	gen  func(scale float64, seed int64) (*graph.Graph, []int, int)
}

// scaleInt scales a base size, clamping at a small floor so scale=0.01 still
// yields runnable graphs.
func scaleInt(base int, scale float64) int {
	v := int(float64(base) * scale)
	if v < 16 {
		v = 16
	}
	return v
}

var datasets = map[string]dataset{
	// Web/social power-law graphs; out-degree matched to the paper's E/V.
	"amazon": {
		meta: Meta{Name: "amazon", Algorithm: "PR", PaperV: 403394, PaperE: 3387388},
		gen: func(s float64, seed int64) (*graph.Graph, []int, int) {
			return PowerLaw(scaleInt(20000, s), 8, seed), nil, 0
		},
	},
	"gweb": {
		meta: Meta{Name: "gweb", Algorithm: "PR", PaperV: 875713, PaperE: 5105039},
		gen: func(s float64, seed int64) (*graph.Graph, []int, int) {
			return PowerLaw(scaleInt(40000, s), 6, seed), nil, 0
		},
	},
	"ljournal": {
		meta: Meta{Name: "ljournal", Algorithm: "PR", PaperV: 4847571, PaperE: 69993773},
		gen: func(s float64, seed int64) (*graph.Graph, []int, int) {
			return PowerLaw(scaleInt(60000, s), 14, seed), nil, 0
		},
	},
	"wiki": {
		meta: Meta{Name: "wiki", Algorithm: "PR", PaperV: 5716808, PaperE: 130160392},
		gen: func(s float64, seed int64) (*graph.Graph, []int, int) {
			return PowerLaw(scaleInt(70000, s), 22, seed), nil, 0
		},
	},
	"syn-gl": {
		meta: Meta{Name: "syn-gl", Algorithm: "ALS", PaperV: 110000, PaperE: 2729572},
		gen: func(s float64, seed int64) (*graph.Graph, []int, int) {
			users := scaleInt(5000, s)
			items := scaleInt(500, s)
			return Bipartite(users, items, 24, seed), nil, users
		},
	},
	"dblp": {
		meta: Meta{Name: "dblp", Algorithm: "CD", PaperV: 317080, PaperE: 1049866},
		gen: func(s float64, seed int64) (*graph.Graph, []int, int) {
			k := scaleInt(300, s)
			g, labels := Community(k, 50, 2, 1, seed)
			return g, labels, 0
		},
	},
	"roadca": {
		meta: Meta{Name: "roadca", Algorithm: "SSSP", PaperV: 1965206, PaperE: 5533214},
		gen: func(s float64, seed int64) (*graph.Graph, []int, int) {
			// Lattice side scales with sqrt so edge count scales ~linearly.
			side := scaleInt(110, sqrtScale(s))
			return Road(side, side, 0.02, seed), nil, 0
		},
	},
}

func sqrtScale(s float64) float64 { return math.Sqrt(s) }

// Names lists the available dataset names in a stable order.
func Names() []string {
	names := make([]string, 0, len(datasets))
	for name := range datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Dataset generates the named dataset at the given scale (1.0 = the default
// laptop-sized substitution; the paper's real sizes are in the returned
// Meta). Generation is deterministic in (name, scale, seed).
func Dataset(name string, scale float64, seed int64) (*graph.Graph, Meta, error) {
	d, ok := datasets[name]
	if !ok {
		return nil, Meta{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, Names())
	}
	if scale <= 0 {
		return nil, Meta{}, fmt.Errorf("gen: scale must be positive, got %g", scale)
	}
	g, labels, users := d.gen(scale, seed)
	meta := d.meta
	meta.Labels = labels
	meta.Users = users
	return g, meta, nil
}
