package gen

import (
	"testing"
	"testing/quick"

	"cyclops/internal/graph"
)

func TestPowerLawDeterministic(t *testing.T) {
	a := PowerLaw(500, 4, 42)
	b := PowerLaw(500, 4, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if c := PowerLaw(500, 4, 43); c.Edges()[10] == ea[10] && c.Edges()[20] == ea[20] && c.Edges()[30] == ea[30] {
		t.Error("different seeds produced suspiciously identical graphs")
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLaw(5000, 6, 1)
	s := graph.ComputeStats(g)
	if s.Vertices != 5000 {
		t.Fatalf("|V| = %d", s.Vertices)
	}
	// Preferential attachment must produce a skewed in-degree head.
	if s.MaxInDegree < 50 {
		t.Errorf("max in-degree = %d, expected a heavy head", s.MaxInDegree)
	}
	if s.MeanDegree < 4 || s.MeanDegree > 6.5 {
		t.Errorf("mean degree = %g, want ≈6", s.MeanDegree)
	}
}

func TestPowerLawDegenerate(t *testing.T) {
	if g := PowerLaw(0, 4, 1); g.NumVertices() != 0 {
		t.Error("n=0 must give empty graph")
	}
	if g := PowerLaw(1, 4, 1); g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Error("n=1 must give a single isolated vertex")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 7)
	if g.NumVertices() != 1024 {
		t.Fatalf("|V| = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8*1024 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	s := graph.ComputeStats(g)
	if s.GiniOut < 0.3 {
		t.Errorf("RMAT gini = %g, expected skew", s.GiniOut)
	}
	for _, e := range g.Edges() {
		if e.Src == e.Dst {
			t.Fatal("RMAT must drop self-loops")
		}
	}
}

func TestErdosRenyiUniform(t *testing.T) {
	g := ErdosRenyi(2000, 10000, 3)
	s := graph.ComputeStats(g)
	if s.GiniOut > 0.35 {
		t.Errorf("ER gini = %g, expected near-uniform", s.GiniOut)
	}
}

func TestRoadStructure(t *testing.T) {
	g := Road(20, 30, 0, 5)
	if g.NumVertices() != 600 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// Interior lattice edges: horizontal 20*29, vertical 19*30, both directed
	// both ways.
	want := 2 * (20*29 + 19*30)
	if g.NumEdges() != want {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), want)
	}
	// All weights positive (log-normal).
	for _, e := range g.Edges() {
		if e.Weight <= 0 {
			t.Fatalf("non-positive weight %g", e.Weight)
		}
	}
	// Symmetry: every edge has a reverse.
	for _, e := range g.Edges() {
		if !g.HasEdge(e.Dst, e.Src) {
			t.Fatalf("missing reverse of %d→%d", e.Src, e.Dst)
		}
	}
}

func TestCommunityLabels(t *testing.T) {
	g, labels := Community(10, 30, 3, 0, 11)
	if len(labels) != g.NumVertices() {
		t.Fatalf("labels len %d != |V| %d", len(labels), g.NumVertices())
	}
	// With degOut=0 every edge stays within its community.
	for _, e := range g.Edges() {
		if labels[e.Src] != labels[e.Dst] {
			t.Fatalf("edge %d→%d crosses communities %d/%d with degOut=0",
				e.Src, e.Dst, labels[e.Src], labels[e.Dst])
		}
	}
	// Graph must be symmetric (collaboration network).
	for _, e := range g.Edges() {
		if !g.HasEdge(e.Dst, e.Src) {
			t.Fatal("community graph must be symmetric")
		}
	}
}

func TestBipartiteSides(t *testing.T) {
	users, items := 100, 20
	g := Bipartite(users, items, 5, 13)
	if g.NumVertices() != users+items {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	for _, e := range g.Edges() {
		srcUser := int(e.Src) < users
		dstUser := int(e.Dst) < users
		if srcUser == dstUser {
			t.Fatalf("edge %d→%d does not cross sides", e.Src, e.Dst)
		}
		if e.Weight < 1 || e.Weight > 5 {
			t.Fatalf("rating %g outside [1,5]", e.Weight)
		}
		if !g.HasEdge(e.Dst, e.Src) {
			t.Fatal("ratings must be mirrored")
		}
	}
}

func TestDatasetRegistry(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("want 7 datasets, got %v", names)
	}
	for _, name := range names {
		g, meta, err := Dataset(name, 0.1, 1)
		if err != nil {
			t.Fatalf("Dataset(%s): %v", name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if meta.PaperV == 0 || meta.PaperE == 0 {
			t.Errorf("%s: missing paper sizes", name)
		}
		if meta.Name != name {
			t.Errorf("meta name %q != %q", meta.Name, name)
		}
		if name == "dblp" && meta.Labels == nil {
			t.Error("dblp must carry planted labels")
		}
	}
}

func TestDatasetErrors(t *testing.T) {
	if _, _, err := Dataset("nope", 1, 1); err == nil {
		t.Error("unknown dataset must error")
	}
	if _, _, err := Dataset("gweb", 0, 1); err == nil {
		t.Error("zero scale must error")
	}
	if _, _, err := Dataset("gweb", -1, 1); err == nil {
		t.Error("negative scale must error")
	}
}

func TestDatasetScaleMonotone(t *testing.T) {
	small, _, err := Dataset("amazon", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := Dataset("amazon", 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumVertices() >= big.NumVertices() {
		t.Fatalf("scale not monotone: %d vs %d", small.NumVertices(), big.NumVertices())
	}
}

// Property: all generators produce valid graphs for arbitrary small seeds.
func TestGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		gs := []*graph.Graph{
			PowerLaw(200, 3, seed),
			ErdosRenyi(100, 300, seed),
			Road(8, 9, 0.05, seed),
			Bipartite(40, 8, 3, seed),
		}
		cg, _ := Community(5, 10, 2, 1, seed)
		gs = append(gs, cg)
		for _, g := range gs {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorld(t *testing.T) {
	// beta=0: pure ring lattice, every vertex has degree exactly 2k.
	lattice := SmallWorld(100, 3, 0, 1)
	for v := 0; v < 100; v++ {
		if d := lattice.OutDegree(graph.ID(v)); d != 6 {
			t.Fatalf("lattice degree of %d = %d, want 6", v, d)
		}
	}
	// Symmetric.
	for _, e := range lattice.Edges() {
		if !lattice.HasEdge(e.Dst, e.Src) {
			t.Fatal("small-world graph must be symmetric")
		}
	}
	// beta=0.2: some rewiring; still valid, similar edge budget.
	sw := SmallWorld(100, 3, 0.2, 1)
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	if sw.NumEdges() < lattice.NumEdges()/2 {
		t.Fatalf("rewired graph lost too many edges: %d vs %d", sw.NumEdges(), lattice.NumEdges())
	}
	// Determinism.
	sw2 := SmallWorld(100, 3, 0.2, 1)
	if sw.NumEdges() != sw2.NumEdges() {
		t.Fatal("SmallWorld must be deterministic for a fixed seed")
	}
}
