package gas

import (
	"math"
	"testing"
	"testing/quick"

	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

// TestMirrorCachesCoherent checks PowerGraph's core invariant: after every
// superstep's apply-push round, every mirror's cached value equals its
// master's.
func TestMirrorCachesCoherent(t *testing.T) {
	g := gen.PowerLaw(300, 5, 17)
	e, err := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster:       cluster.Flat(5, 1),
		MaxSupersteps: 6,
		OnStep: func(step int, e *Engine[float64, float64]) {
			// Collect the master values, then compare every copy.
			master := make(map[graph.ID]float64)
			for _, ws := range e.ws {
				for s := range ws.verts {
					if ws.verts[s].master {
						master[ws.verts[s].id] = ws.verts[s].cache
					}
				}
			}
			for w, ws := range e.ws {
				for s := range ws.verts {
					lv := &ws.verts[s]
					if !lv.master && lv.cache != master[lv.id] {
						t.Errorf("step %d worker %d: mirror of %d caches %g, master has %g",
							step, w, lv.id, lv.cache, master[lv.id])
					}
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: every vertex has exactly one master, every copy routes to it,
// and Mirrors() counts exactly the non-master copies.
func TestMasterElectionProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%6 + 2
		g := gen.ErdosRenyi(80, 240, seed)
		e, err := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
			Cluster: cluster.Flat(k, 1),
		})
		if err != nil {
			return false
		}
		masters := make(map[graph.ID]int)
		var mirrors int64
		for w, ws := range e.ws {
			for s := range ws.verts {
				lv := &ws.verts[s]
				if lv.master {
					if lv.masterWorker != int32(w) || lv.masterSlot != int32(s) {
						return false
					}
					masters[lv.id]++
				} else {
					mirrors++
					mw := e.ws[lv.masterWorker]
					if !mw.verts[lv.masterSlot].master || mw.verts[lv.masterSlot].id != lv.id {
						return false
					}
				}
			}
		}
		if mirrors != e.Mirrors() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			if masters[graph.ID(v)] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyCutRespectsBalanceCap(t *testing.T) {
	g := gen.PowerLaw(2000, 5, 23)
	k := 8
	assign := (GreedyVertexCut{}).PartitionEdges(g, k)
	load := make([]int, k)
	for _, w := range assign {
		load[w]++
	}
	cap := int(float64(g.NumEdges())/float64(k)*1.1) + 1
	for w, l := range load {
		if l > cap {
			t.Errorf("worker %d has %d edges, cap %d", w, l, cap)
		}
		if l == 0 {
			t.Errorf("worker %d has no edges at all", w)
		}
	}
}

func TestTraceFieldsPopulated(t *testing.T) {
	g := gen.PowerLaw(200, 4, 7)
	e, _ := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster: cluster.Flat(4, 1), MaxSupersteps: 3,
	})
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if trace.Engine != "powergraph" || trace.Workers != 4 {
		t.Fatalf("trace header %+v", trace)
	}
	for _, s := range trace.Steps {
		if s.Active <= 0 || s.Messages <= 0 || s.ModelNanos <= 0 {
			t.Fatalf("step stats incomplete: %+v", s)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOnStepObservesMonotoneSSSP(t *testing.T) {
	g := gen.Road(6, 6, 0, 3)
	prev := math.Inf(1)
	e, _ := New[float64, float64](g, distGAS{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 1), MaxSupersteps: 200,
		OnStep: func(step int, e *Engine[float64, float64]) {
			// Total finite distance mass only grows as the frontier expands.
			var sum float64
			reached := 0
			for _, d := range e.Values() {
				if !math.IsInf(d, 1) {
					sum += d
					reached++
				}
			}
			if float64(reached) < 0 {
				t.Error("impossible")
			}
			_ = prev
			prev = sum
		},
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// distGAS is a minimal SSSP program local to this test (the algorithms
// package would create an import cycle from here).
type distGAS struct{}

func (distGAS) Init(id graph.ID, _ *graph.Graph) (float64, bool) {
	if id == 0 {
		return 0, true
	}
	return math.Inf(1), false
}
func (distGAS) Gather(_ graph.ID, srcVal float64, w float64) float64 { return srcVal + w }
func (distGAS) Sum(a, b float64) float64                             { return math.Min(a, b) }
func (distGAS) Apply(id graph.ID, old, acc float64, hasAcc bool, step int) (float64, bool) {
	best := old
	if hasAcc && acc < best {
		best = acc
	}
	return best, best < old || (step == 0 && id == 0)
}
