package gas

// Fault-injection test for the mirror-coherence auditor (Config.Audit). The
// subtlety: every applied master re-pushes its value to its mirrors each
// superstep, so corrupting the mirror of an *active* vertex self-heals
// before the auditor looks. The divergence must therefore be planted on the
// mirror of a master that has gone permanently inactive — exactly the stale
// state a real lost-push bug would leave behind.

import (
	"errors"
	"sync"
	"testing"

	"cyclops/internal/cluster"
	"cyclops/internal/graph"
	"cyclops/internal/obs"
)

// stepProg: vertex 0 computes once and never activates anyone; vertices 1
// and 2 keep each other active forever and take a new value every superstep.
type stepProg struct{}

func (stepProg) Init(id graph.ID, _ *graph.Graph) (float64, bool) { return float64(id), true }

func (stepProg) Gather(_ graph.ID, srcVal float64, _ float64) float64 { return srcVal }

func (stepProg) Sum(a, b float64) float64 { return a + b }

func (stepProg) Apply(id graph.ID, old float64, _ float64, _ bool, step int) (float64, bool) {
	if id == 0 {
		return old, false
	}
	return float64(step*10) + float64(id), true
}

// auditCutGraph: vertex 0 (no in-edges, so nothing ever reactivates it)
// feeds 1 and 2; the 1↔2 cycle keeps the run alive.
func auditCutGraph() *graph.Graph {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 1)
	return b.MustBuild()
}

// fixedCut pins each edge (in g.Edges() order) to a worker, so the tests
// know the exact master/mirror layout.
type fixedCut struct{ of []int }

func (fixedCut) Name() string { return "fixed-cut" }

func (c fixedCut) PartitionEdges(*graph.Graph, int) []int {
	return append([]int(nil), c.of...)
}

// mirrorLog records OnViolation calls.
type mirrorLog struct {
	obs.Nop
	mu  sync.Mutex
	got []obs.Violation
}

func (l *mirrorLog) OnViolation(v obs.Violation) {
	l.mu.Lock()
	l.got = append(l.got, v)
	l.mu.Unlock()
}

func (l *mirrorLog) violations() []obs.Violation {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.Violation(nil), l.got...)
}

// newAuditEngine places edge 0→2 alone on worker 1 (all others on worker 0),
// so vertices 0 and 2 get mirrors on worker 1 while every master lives on
// worker 0. Vertex 2's mirror is refreshed by pushes each superstep; vertex
// 0's master goes inactive after superstep 0 and its mirror just holds.
func newAuditEngine(t *testing.T, hooks obs.Hooks, onStep func(int, *Engine[float64, float64])) *Engine[float64, float64] {
	t.Helper()
	e, err := New[float64, float64](auditCutGraph(), stepProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(2, 1),
		Partitioner:   fixedCut{of: []int{0, 1, 0, 0}},
		MaxSupersteps: 5,
		Audit:         true,
		Hooks:         hooks,
		OnStep:        onStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.mirrorsPerW[1] != 2 {
		t.Fatalf("layout drifted: %d mirrors on worker 1, want 2 (vertices 0 and 2)", e.mirrorsPerW[1])
	}
	return e
}

func TestAuditCleanRun(t *testing.T) {
	log := &mirrorLog{}
	e := newAuditEngine(t, log, nil)
	if _, err := e.Run(); err != nil {
		t.Fatalf("clean audited run failed: %v", err)
	}
	if vs := log.violations(); len(vs) != 0 {
		t.Fatalf("violations on a clean run: %v", vs)
	}
}

func TestAuditCatchesMirrorDivergence(t *testing.T) {
	log := &mirrorLog{}
	var e *Engine[float64, float64]
	e = newAuditEngine(t, log, func(step int, _ *Engine[float64, float64]) {
		if step == 1 {
			// Corrupt vertex 0's mirror cache on worker 1. Its master is
			// inactive and will never push again, so nothing repairs the
			// divergence — only the auditor can see it.
			e.ws[1].verts[e.ws[1].slotOf[0]].cache = 999
		}
	})
	_, err := e.Run()

	var audit *obs.AuditError
	if !errors.As(err, &audit) {
		t.Fatalf("run error = %v, want *obs.AuditError", err)
	}
	v := audit.Violations[0]
	if v.Kind != obs.ViolationMirrorDivergence || v.Vertex != 0 || v.Worker != 1 || v.Step != 2 {
		t.Fatalf("violation = %+v, want mirror-divergence of vertex 0 at worker 1, step 2", v)
	}
	if len(log.violations()) == 0 {
		t.Fatal("OnViolation never fired")
	}
}
