package gas

import (
	"math"
	"testing"
	"testing/quick"

	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

// The GAS PageRank here stores value = rank/outDegree (the "share"), so
// Gather can read it directly from the mirror cache. referencePR computes
// the same quantity sequentially.
type prShare struct {
	n int
}

func (p prShare) Init(id graph.ID, g *graph.Graph) (float64, bool) {
	d := g.OutDegree(id)
	if d == 0 {
		d = 1
	}
	return (1.0 / float64(g.NumVertices())) / float64(d), true
}

func (p prShare) Gather(src graph.ID, srcVal float64, _ float64) float64 { return srcVal }

func (prShare) Sum(a, b float64) float64 { return a + b }

func (p prShare) Apply(id graph.ID, old float64, acc float64, hasAcc bool, step int) (float64, bool) {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	rank := 0.15/float64(p.n) + 0.85*sum
	d := 1.0
	// outDegree is static; reconstruct share. Degree 0 treated as 1.
	// (The engine has no per-copy degree API; programs close over the graph.)
	return rank / d, step+1 < 10
}

// referenceShares runs 10 iterations of the share recurrence sequentially,
// treating value as share with outDegree folded by the caller.
func referenceShares(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	share := make([]float64, n)
	for v := range share {
		d := g.OutDegree(graph.ID(v))
		if d == 0 {
			d = 1
		}
		share[v] = (1.0 / float64(n)) / float64(d)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.ID(v)) {
				sum += share[u]
			}
			rank := 0.15/float64(n) + 0.85*sum
			next[v] = rank // d folded as 1 to mirror prShare.Apply
		}
		copy(share, next)
	}
	return share
}

func TestGASPageRankMatchesReference(t *testing.T) {
	g := gen.PowerLaw(200, 4, 5)
	e, err := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster:       cluster.Flat(4, 1),
		MaxSupersteps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := referenceShares(g, 10)
	got := e.Values()
	for v := range want {
		// The un-normalised share recurrence grows without bound, so compare
		// with relative tolerance (summation order differs across workers).
		tol := 1e-12 * math.Max(1, math.Abs(want[v]))
		if math.Abs(got[v]-want[v]) > tol {
			t.Fatalf("vertex %d: %g, want %g", v, got[v], want[v])
		}
	}
}

func TestFiveMessagesPerMirrorPerIteration(t *testing.T) {
	// All vertices active, run exactly 1 superstep: messages must be
	// gather(2) + apply(1) + scatter req(1) per mirror, plus activation
	// returns bounded by mirrors (≤1 per mirror).
	g := gen.PowerLaw(300, 5, 9)
	e, err := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster:       cluster.Flat(6, 1),
		MaxSupersteps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	mirrors := e.Mirrors()
	msgs := e.TransportStats().Messages
	if mirrors == 0 {
		t.Fatal("expected mirrors on a 6-way cut")
	}
	low, high := 4*mirrors, 5*mirrors
	if msgs < low || msgs > high {
		t.Fatalf("messages = %d for %d mirrors; want within [%d,%d] (≈5 per mirror)",
			msgs, mirrors, low, high)
	}
}

func TestGreedyCutFewerMirrorsThanRandom(t *testing.T) {
	g := gen.PowerLaw(1000, 5, 13)
	random, err := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster: cluster.Flat(8, 1), Partitioner: RandomVertexCut{},
	})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster: cluster.Flat(8, 1), Partitioner: GreedyVertexCut{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Mirrors() >= random.Mirrors() {
		t.Fatalf("greedy mirrors %d !< random mirrors %d", greedy.Mirrors(), random.Mirrors())
	}
}

func TestEdgePartitionersCoverAllEdges(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		g := gen.ErdosRenyi(60, 200, seed)
		for _, p := range []EdgePartitioner{RandomVertexCut{}, GreedyVertexCut{}} {
			out := p.PartitionEdges(g, k)
			if len(out) != g.NumEdges() {
				return false
			}
			for _, w := range out {
				if w < 0 || w >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedVerticesGetMasters(t *testing.T) {
	b := graph.NewBuilder(10) // vertices 5..9 isolated
	for v := 0; v < 5; v++ {
		b.AddEdge(graph.ID(v), graph.ID((v+1)%5))
	}
	g := b.MustBuild()
	e, err := New[float64, float64](g, prShare{n: 10}, Config[float64, float64]{
		Cluster: cluster.Flat(3, 1), MaxSupersteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	vals := e.Values()
	if len(vals) != 10 {
		t.Fatalf("values len %d", len(vals))
	}
	for v := 5; v < 10; v++ {
		if vals[v] == 0 {
			t.Fatalf("isolated vertex %d has no master value", v)
		}
	}
}

func TestReplicationFactorConsistency(t *testing.T) {
	g := gen.PowerLaw(500, 4, 3)
	e, _ := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster: cluster.Flat(6, 1),
	})
	rf := e.ReplicationFactor()
	if rf <= 0 || rf > 6 {
		t.Fatalf("replication factor = %g", rf)
	}
	if math.Abs(rf-float64(e.Mirrors())/float64(g.NumVertices())) > 1e-12 {
		t.Fatal("ReplicationFactor disagrees with Mirrors")
	}
}

func TestInactiveStop(t *testing.T) {
	// iters=1: Apply never activates, so the run stops after one superstep.
	g := gen.PowerLaw(100, 3, 1)
	e, _ := New[float64, float64](g, prShare{n: g.NumVertices()}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 1), MaxSupersteps: 50,
	})
	// prShare activates until step 10.
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) != 10 {
		t.Fatalf("steps = %d, want 10", len(trace.Steps))
	}
}

func TestRequiredArguments(t *testing.T) {
	if _, err := New[float64, float64](nil, prShare{}, Config[float64, float64]{}); err == nil {
		t.Error("nil graph must error")
	}
	g := gen.ErdosRenyi(10, 20, 1)
	if _, err := New[float64, float64](g, nil, Config[float64, float64]{}); err == nil {
		t.Error("nil program must error")
	}
}
