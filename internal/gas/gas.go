// Package gas implements the comparator the paper evaluates against in §6.12:
// a PowerGraph-like synchronous Gather-Apply-Scatter engine over a vertex-cut
// partition. Edges (not vertices) are assigned to workers; every vertex gets
// one master and a mirror on each other worker that holds one of its edges.
// Each superstep a master exchanges five messages with every mirror — gather
// request, gather partial, apply push, scatter request, and activation
// return (§2.3) — versus Cyclops' at most one. The engine reproduces that
// 5:1 traffic ratio with real counted messages, which is what Table 4 and
// Figure 4 compare.
package gas

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"cyclops/internal/cluster"
	"cyclops/internal/fault"
	"cyclops/internal/graph"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
	"cyclops/internal/transport"
)

// Program is a GAS vertex program.
type Program[V, G any] interface {
	// Init returns the initial value and activation of vertex id.
	Init(id graph.ID, g *graph.Graph) (V, bool)
	// Gather maps one in-edge (src → current vertex) to an accumulator
	// contribution. srcVal is the locally cached value of src.
	Gather(src graph.ID, srcVal V, weight float64) G
	// Sum combines two accumulator values (commutative and associative).
	Sum(a, b G) G
	// Apply computes the vertex's new value from the gathered accumulator.
	// hasAcc is false when the vertex has no in-edges anywhere. It returns
	// the new value and whether to activate out-neighbors in scatter.
	Apply(id graph.ID, old V, acc G, hasAcc bool, step int) (V, bool)
}

// EdgePartitioner assigns each edge to a worker (a vertex-cut).
type EdgePartitioner interface {
	Name() string
	// PartitionEdges returns, for each edge of g (in g.Edges() order), the
	// worker it lands on.
	PartitionEdges(g *graph.Graph, k int) []int
}

// RandomVertexCut hashes each edge independently — PowerGraph's default
// random edge placement.
type RandomVertexCut struct{}

// Name implements EdgePartitioner.
func (RandomVertexCut) Name() string { return "random-cut" }

// PartitionEdges implements EdgePartitioner.
func (RandomVertexCut) PartitionEdges(g *graph.Graph, k int) []int {
	out := make([]int, g.NumEdges())
	i := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(graph.ID(v)) {
			h := (uint64(v)*0x9e3779b97f4a7c15 ^ uint64(u)*0xc2b2ae3d27d4eb4f) * 0xff51afd7ed558ccd
			out[i] = int(h % uint64(k))
			i++
		}
	}
	return out
}

// GreedyVertexCut is the coordinated-greedy heuristic PowerGraph uses for
// its "heuristic partition" rows in Table 4: place each edge on a worker
// that already hosts one of its endpoints, breaking ties by load.
type GreedyVertexCut struct{}

// Name implements EdgePartitioner.
func (GreedyVertexCut) Name() string { return "greedy-cut" }

// PartitionEdges implements EdgePartitioner.
func (GreedyVertexCut) PartitionEdges(g *graph.Graph, k int) []int {
	out := make([]int, g.NumEdges())
	load := make([]int64, k)
	// maxLoad caps per-worker edges at ~10% over the ideal share; without a
	// balance constraint the greedy rule degenerates (any connected graph
	// would collapse onto the first worker).
	maxLoad := int64(float64(g.NumEdges())/float64(k)*1.1) + 1
	// present[v] is a bitset of workers already hosting v (k ≤ 64 workers
	// fall in one word; larger k degrades to hashing the overflow).
	present := make([]uint64, g.NumVertices())
	pick := func(mask uint64) int {
		best, bestLoad := -1, int64(1<<62)
		for w := 0; w < k && w < 64; w++ {
			if mask&(1<<w) != 0 && load[w] < bestLoad && load[w] < maxLoad {
				best, bestLoad = w, load[w]
			}
		}
		return best
	}
	i := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(graph.ID(v)) {
			both := present[v] & present[u]
			either := present[v] | present[u]
			w := -1
			if both != 0 {
				w = pick(both)
			} else if either != 0 {
				w = pick(either)
			}
			if w < 0 {
				// Fresh endpoints: lightest worker.
				w = 0
				for c := 1; c < k; c++ {
					if load[c] < load[w] {
						w = c
					}
				}
			}
			out[i] = w
			load[w]++
			if w < 64 {
				present[v] |= 1 << w
				present[u] |= 1 << w
			}
			i++
		}
	}
	return out
}

// Config tunes an engine run.
type Config[V, G any] struct {
	Cluster       cluster.Config
	Partitioner   EdgePartitioner // default RandomVertexCut
	MaxSupersteps int
	// Equal suppresses apply pushes for unchanged values when set. The real
	// PowerGraph always pushes (its mirrors need the value for gather), so
	// leaving it nil reproduces the paper's message counts.
	Equal func(a, b V) bool
	// Residual maps a master's previous and newly applied values to a scalar
	// distance (|Δ| for scalar algorithms). When set, each superstep's
	// StepStats carries the quantiles of this distribution over all Apply
	// calls — the convergence telemetry behind Figure 3. Optional.
	Residual func(old, new V) float64
	// ValCodec/AccCodec, when both set, switch the transport to the
	// hand-rolled binary frame format: a gasMsg is framed as 1B kind + 4B
	// slot + a kind-dependent payload (apply pushes carry Val, gather
	// partials carry Has+Acc, the request/activation kinds are payload-free),
	// and wire accounting charges the exact frame bytes. Nil keeps gob.
	ValCodec graph.Codec[V]
	AccCodec graph.Codec[G]
	// Network selects in-process queues (default) or gob-over-TCP loopback.
	Network   transport.Network
	CostModel *metrics.CostModel
	OnStep    func(step int, e *Engine[V, G])
	// Hooks receives live instrumentation events (run/superstep/phase spans
	// and per-worker stats). nil disables observation.
	Hooks obs.Hooks
	// Audit verifies mirror coherence after every superstep: each mirror's
	// cached value must exactly equal its master's (the GAS analogue of
	// Cyclops' replica invariant — apply pushes are PowerGraph's only value
	// channel, so a divergent mirror means a lost or corrupted push). A
	// violation fails the run with *obs.AuditError. Off by default.
	Audit bool
	// CheckpointEvery saves state every k supersteps to Checkpoints (k>0).
	// Mirrors and messages are excluded: mirrors are rebuilt from masters on
	// recovery, the vertex-cut analogue of §3.6.
	CheckpointEvery int
	// Checkpoints receives snapshots.
	Checkpoints func(State[V]) error
	// Recover loads the state to roll back to after a transient transport
	// fault at a barrier (typically checkpoint.LoadLatest over the same
	// directory Checkpoints writes into). When set, the engine restores the
	// state, rebuilds every mirror from its master, and replays; when nil,
	// any transport fault fails the run. Requires InProcess.
	Recover func() (State[V], error)
	// MaxRecoveries bounds recovery attempts per run (default 3); a fault
	// beyond the budget fails the run with the underlying transport error.
	MaxRecoveries int
	// FaultPlan injects a deterministic fault schedule at the transport
	// boundary (testing/chaos only). Same plan ⇒ same faults.
	FaultPlan *fault.Plan
}

// message kinds: the five per-mirror messages of §2.3.
const (
	kindGatherReq = iota
	kindGatherPartial
	kindApplyPush
	kindScatterReq
	kindActivate
)

type gasMsg[V, G any] struct {
	Kind int8
	Slot int32 // local slot at the receiving worker
	Val  V     // apply push payload
	Acc  G     // gather partial payload
	Has  bool  // accumulator non-empty
}

// gasCodec frames a gasMsg as 1B kind + 4B slot + a kind-dependent payload,
// so the three payload-free request kinds cost 5 bytes instead of a full
// message estimate — the framing behind the Table 4 wire comparison.
type gasCodec[V, G any] struct {
	val graph.Codec[V]
	acc graph.Codec[G]
}

//lint:hotpath
func (c gasCodec[V, G]) EncodedSize(m gasMsg[V, G]) int {
	switch m.Kind {
	case kindApplyPush:
		return 5 + c.val.EncodedSize(m.Val)
	case kindGatherPartial:
		return 6 + c.acc.EncodedSize(m.Acc)
	default:
		return 5
	}
}

//lint:hotpath
func (c gasCodec[V, G]) Append(dst []byte, m gasMsg[V, G]) []byte {
	dst = append(dst, byte(m.Kind))
	dst = graph.AppendUint32(dst, uint32(m.Slot))
	switch m.Kind {
	case kindApplyPush:
		dst = c.val.Append(dst, m.Val)
	case kindGatherPartial:
		var has byte
		if m.Has {
			has = 1
		}
		dst = append(dst, has)
		dst = c.acc.Append(dst, m.Acc)
	}
	return dst
}

//lint:hotpath
func (c gasCodec[V, G]) Decode(src []byte) (gasMsg[V, G], int, error) {
	var m gasMsg[V, G]
	if len(src) < 5 {
		return m, 0, graph.ErrShortBuffer
	}
	m.Kind = int8(src[0])
	slot, err := graph.Uint32At(src[1:])
	if err != nil {
		return m, 0, err
	}
	m.Slot = int32(slot)
	n := 5
	switch m.Kind {
	case kindApplyPush:
		val, vn, verr := c.val.Decode(src[5:])
		if verr != nil {
			return m, 0, verr
		}
		m.Val = val
		n += vn
	case kindGatherPartial:
		if len(src) < 6 {
			return m, 0, graph.ErrShortBuffer
		}
		m.Has = src[5] != 0
		acc, an, aerr := c.acc.Decode(src[6:])
		if aerr != nil {
			return m, 0, aerr
		}
		m.Acc = acc
		n += 1 + an
	}
	return m, n, nil
}

func gasWrapCodec[V, G any](val graph.Codec[V], acc graph.Codec[G]) graph.Codec[gasMsg[V, G]] {
	if val == nil || acc == nil {
		return nil
	}
	return gasCodec[V, G]{val: val, acc: acc}
}

// localVertex is one worker's copy of a vertex. Its adjacency (in-edges,
// out-slots, mirror refs) lives in the workerState CSRs, indexed by slot.
type localVertex[V any] struct {
	id     graph.ID
	cache  V
	master bool
	// masterWorker/masterSlot route mirror→master messages.
	masterWorker int32
	masterSlot   int32
	// active is master-side activation for the current superstep.
	active bool
}

type mirrorRef struct {
	worker int32
	slot   int32
}

type gasEdge struct {
	srcSlot int32
	weight  float64
}

type workerState[V, G any] struct {
	verts  []localVertex[V]
	slotOf []int32 // global id → local slot, -1 when the worker has no copy

	// Immutable CSR adjacency, flattened once after edge placement: per slot,
	// the local in-edges, the local out-slots, and (masters only) the mirror
	// locations.
	inEdges  graph.CSR[gasEdge]
	outSlots graph.CSR[int32]
	mirrors  graph.CSR[mirrorRef]

	// Superstep scratch: epoch-stamped dense arrays replacing the per-step
	// maps. An acc/scat entry is live iff its stamp equals the engine's
	// current epoch; ascending-slot sweeps over the stamped entries visit
	// exactly the slots the old sorted-map iteration did, in the same order.
	accVal      []G
	accHas      []bool
	accStamp    []uint32
	scat        []bool // activate out-neighbors in scatter?
	scatStamp   []uint32
	queuedStamp []uint32 // activation return already queued this epoch
	nextActive  []bool   // master slots activated for the next superstep

	// outA/outB are the per-destination send batches, alternating by round
	// parity: a round's batches are still being read while the next round
	// refills its own set, but the round after that may safely reuse them.
	outA, outB [][]gasMsg[V, G]
}

// Engine executes a GAS Program over a vertex-cut partition.
type Engine[V, G any] struct {
	g     *graph.Graph
	prog  Program[V, G]
	cfg   Config[V, G]
	ws    []*workerState[V, G]
	tr    transport.Interface[gasMsg[V, G]]
	inj   *fault.Injector[gasMsg[V, G]]
	trace *metrics.Trace
	model metrics.CostModel

	mirrors     int64   // total mirror count (replication metric)
	mirrorsPerW []int64 // mirrors hosted per worker (skew reporting)
	step        int
	// epoch stamps the workers' dense superstep scratch; it increments at the
	// top of every superstep (including replays after recovery), so stale
	// entries from earlier steps never read as live.
	epoch uint32

	// runSeq numbers Run calls on this engine (1-based); it becomes the
	// span stream's Run id, so restored engines keep distinct run spans.
	runSeq int64
}

// New builds the engine: cuts edges across workers, creates masters and
// mirrors, and seeds every copy with the program's initial value.
func New[V, G any](g *graph.Graph, prog Program[V, G], cfg Config[V, G]) (*Engine[V, G], error) {
	if g == nil || prog == nil {
		return nil, errors.New("gas: graph and program are required")
	}
	cfg.Cluster = cfg.Cluster.Normalize()
	if cfg.Partitioner == nil {
		cfg.Partitioner = RandomVertexCut{}
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	k := cfg.Cluster.Workers()
	if cfg.Network != transport.InProcess && cfg.CheckpointEvery > 0 {
		return nil, errors.New("gas: checkpointing requires the in-process network")
	}
	if cfg.Network != transport.InProcess && cfg.Recover != nil {
		return nil, errors.New("gas: recovery requires the in-process network")
	}
	tr, err := transport.New[gasMsg[V, G]](cfg.Network, k, transport.GlobalQueue, nil,
		gasWrapCodec[V, G](cfg.ValCodec, cfg.AccCodec))
	if err != nil {
		return nil, fmt.Errorf("gas: transport: %w", err)
	}
	var inj *fault.Injector[gasMsg[V, G]]
	if cfg.FaultPlan != nil {
		inj = fault.Wrap(tr, *cfg.FaultPlan)
		tr = inj
	}
	e := &Engine[V, G]{
		g:           g,
		prog:        prog,
		cfg:         cfg,
		ws:          make([]*workerState[V, G], k),
		tr:          tr,
		inj:         inj,
		trace:       &metrics.Trace{Engine: "powergraph", Workers: k},
		model:       metrics.DefaultCostModel(),
		mirrorsPerW: make([]int64, k),
	}
	if cfg.CostModel != nil {
		e.model = *cfg.CostModel
	}
	n := g.NumVertices()
	for w := range e.ws {
		slotOf := make([]int32, n)
		for i := range slotOf {
			slotOf[i] = -1
		}
		e.ws[w] = &workerState[V, G]{slotOf: slotOf}
	}

	// Adjacency is accumulated in per-slot rows and flattened into immutable
	// CSR arrays below, preserving insertion order exactly.
	inRows := make([][][]gasEdge, k)
	outRows := make([][][]int32, k)
	mirRows := make([][][]mirrorRef, k)
	ensure := func(w int, id graph.ID) int32 {
		ws := e.ws[w]
		if s := ws.slotOf[id]; s >= 0 {
			return s
		}
		s := int32(len(ws.verts))
		ws.slotOf[id] = s
		ws.verts = append(ws.verts, localVertex[V]{id: id, masterWorker: -1})
		inRows[w] = append(inRows[w], nil)
		outRows[w] = append(outRows[w], nil)
		mirRows[w] = append(mirRows[w], nil)
		return s
	}

	// Place edges; create local copies of both endpoints.
	assign := cfg.Partitioner.PartitionEdges(g, k)
	i := 0
	for v := 0; v < n; v++ {
		ns := g.OutNeighbors(graph.ID(v))
		wts := g.OutWeights(graph.ID(v))
		for j, u := range ns {
			w := assign[i]
			i++
			sv := ensure(w, graph.ID(v))
			su := ensure(w, u)
			inRows[w][su] = append(inRows[w][su], gasEdge{srcSlot: sv, weight: wts[j]})
			outRows[w][sv] = append(outRows[w][sv], su)
		}
	}
	// Isolated vertices still need a master somewhere.
	for v := 0; v < n; v++ {
		hosted := false
		for w := 0; w < k; w++ {
			if e.ws[w].slotOf[v] >= 0 {
				hosted = true
				break
			}
		}
		if !hosted {
			ensure(int(uint64(v)%uint64(k)), graph.ID(v))
		}
	}

	// Elect masters (lowest worker id hosting the vertex, as a stand-in for
	// PowerGraph's arbitrary election) and wire mirrors.
	for v := 0; v < n; v++ {
		masterW := -1
		for w := 0; w < k; w++ {
			if e.ws[w].slotOf[v] >= 0 {
				masterW = w
				break
			}
		}
		ms := e.ws[masterW].slotOf[v]
		master := &e.ws[masterW].verts[ms]
		master.master = true
		master.masterWorker = int32(masterW)
		master.masterSlot = ms
		for w := masterW + 1; w < k; w++ {
			if s := e.ws[w].slotOf[v]; s >= 0 {
				mirror := &e.ws[w].verts[s]
				mirror.masterWorker = int32(masterW)
				mirror.masterSlot = ms
				mirRows[masterW][ms] = append(mirRows[masterW][ms], mirrorRef{worker: int32(w), slot: s})
				e.mirrors++
				e.mirrorsPerW[w]++
			}
		}
	}

	// Flatten adjacency and allocate the superstep scratch once.
	for w := range e.ws {
		ws := e.ws[w]
		ws.inEdges = graph.CSRFromRows(inRows[w])
		ws.outSlots = graph.CSRFromRows(outRows[w])
		ws.mirrors = graph.CSRFromRows(mirRows[w])
		nv := len(ws.verts)
		ws.accVal = make([]G, nv)
		ws.accHas = make([]bool, nv)
		ws.accStamp = make([]uint32, nv)
		ws.scat = make([]bool, nv)
		ws.scatStamp = make([]uint32, nv)
		ws.queuedStamp = make([]uint32, nv)
		ws.nextActive = make([]bool, nv)
		ws.outA = make([][]gasMsg[V, G], k)
		ws.outB = make([][]gasMsg[V, G], k)
	}

	// Seed values on every copy.
	for _, ws := range e.ws {
		for s := range ws.verts {
			val, act := prog.Init(ws.verts[s].id, g)
			ws.verts[s].cache = val
			if ws.verts[s].master {
				ws.verts[s].active = act
			}
		}
	}
	return e, nil
}

// Graph returns the input graph.
func (e *Engine[V, G]) Graph() *graph.Graph { return e.g }

// Trace returns per-superstep statistics.
func (e *Engine[V, G]) Trace() *metrics.Trace { return e.trace }

// Mirrors returns the total mirror count; Mirrors()/|V| is PowerGraph's
// replication factor (Table 4's "AVG #Replicas" column).
func (e *Engine[V, G]) Mirrors() int64 { return e.mirrors }

// ReplicationFactor returns mirrors per vertex.
func (e *Engine[V, G]) ReplicationFactor() float64 {
	if e.g.NumVertices() == 0 {
		return 0
	}
	return float64(e.mirrors) / float64(e.g.NumVertices())
}

// edgeBalance reports the per-worker edge-load imbalance (max/mean of local
// in-edge counts, ≥ 1). The vertex-cut balances edges, not vertices, so this —
// not a vertex count — is the quality figure RunInfo.PartitionBalance carries.
func (e *Engine[V, G]) edgeBalance() float64 {
	if len(e.ws) == 0 {
		return 1
	}
	var sum, max int64
	for _, ws := range e.ws {
		load := int64(ws.inEdges.NumItems())
		sum += load
		if load > max {
			max = load
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(e.ws))
	return float64(max) / mean
}

// TransportStats exposes raw traffic counters.
func (e *Engine[V, G]) TransportStats() transport.Snapshot { return e.tr.Stats().Snapshot() }

// Values assembles the global vertex values from the masters.
func (e *Engine[V, G]) Values() []V {
	out := make([]V, e.g.NumVertices())
	for _, ws := range e.ws {
		for s := range ws.verts {
			if ws.verts[s].master {
				out[ws.verts[s].id] = ws.verts[s].cache
			}
		}
	}
	return out
}

// Run executes synchronous GAS supersteps until no master is active or the
// superstep budget is exhausted.
func (e *Engine[V, G]) Run() (*metrics.Trace, error) {
	k := e.cfg.Cluster.Workers()
	hooks := e.cfg.Hooks
	// runStart anchors span offsets; runWall accumulates the accounted run
	// duration (sum of superstep walls), so the closing run span reconciles
	// with timings.csv totals by construction.
	runStart := time.Now()
	var runWall time.Duration
	if hooks != nil {
		e.runSeq++
		hooks.OnRunStart(obs.RunInfo{
			Engine:   e.trace.Engine,
			Workers:  k,
			Vertices: e.g.NumVertices(),
			Edges:    e.g.NumEdges(),
			Replicas: e.mirrors,
			// Every mirror caches its master's value V, so the vertex-cut's
			// replicated-value memory is mirrors × sizeof(V) — the GAS side
			// of the Table 4/5 memory comparison.
			ReplicaValueBytes: e.mirrors * int64(unsafe.Sizeof(*new(V))),
			WorkerReplicas:    append([]int64(nil), e.mirrorsPerW...),
			// EdgeCut stays zero: under a vertex-cut every edge is
			// worker-local by construction; the partition quality lives in
			// the mirror counts and the edge balance instead.
			PartitionBalance: e.edgeBalance(),
		})
		hooks.OnSpanStart(obs.RunSpan(e.runSeq, 0))
	}
	stopReason := obs.ReasonMaxSupersteps

	// prevComm anchors the per-superstep traffic deltas; starting from the
	// current snapshot keeps deltas correct across resumed runs.
	var prevComm transport.MatrixSnapshot
	if hooks != nil {
		prevComm = e.tr.Matrix().Snapshot()
	}

	maxRecoveries := e.cfg.MaxRecoveries
	if maxRecoveries <= 0 {
		maxRecoveries = 3
	}
	recoveries := 0

	// Steady-state scratch, allocated once and reused every superstep. The
	// per-worker counters are cleared at the top of each step; the inbound
	// buffer only holds the transport's freshly drained batch slices; the
	// residual rows reset with [:0]. Nothing downstream retains any of it.
	inbound := make([][][]gasMsg[V, G], k)
	var residPerW [][]float64
	var resAll []float64
	if e.cfg.Residual != nil {
		residPerW = make([][]float64, k)
	}
	var sentPerW, unitsPerW, recvPerW, batchPerW, activePerW, syncPerW []int64
	var busyPerW, sendBusy, computeDur []time.Duration
	var serNs0, serNs []int64
	var delivs [][]span.Delivery
	if hooks != nil {
		sentPerW = make([]int64, k)
		unitsPerW = make([]int64, k)
		recvPerW = make([]int64, k)
		batchPerW = make([]int64, k)
		activePerW = make([]int64, k)
		syncPerW = make([]int64, k)
		busyPerW = make([]time.Duration, k)
		sendBusy = make([]time.Duration, k)
		computeDur = make([]time.Duration, k)
		serNs0 = make([]int64, k)
		serNs = make([]int64, k)
		delivs = make([][]span.Delivery, k)
	}

	// Cumulative per-vertex heat counters (hooks on only), all attributed at
	// the vertex's master worker: every round either runs at the master
	// (request/apply/scatter emission) or drains into it (partials,
	// activation returns), so each entry has exactly one writer per round.
	// masterOf maps a vertex to the worker holding its master.
	var heatMsgs, heatUnits []int64
	var masterOf []int32
	if hooks != nil {
		heatMsgs = make([]int64, e.g.NumVertices())
		heatUnits = make([]int64, e.g.NumVertices())
		masterOf = make([]int32, e.g.NumVertices())
		for w, ws := range e.ws {
			for s := range ws.verts {
				if ws.verts[s].master {
					masterOf[ws.verts[s].id] = int32(w)
				}
			}
		}
	}

	for e.step < e.cfg.MaxSupersteps {
		if e.inj != nil {
			e.inj.BeginStep(e.step)
		}
		e.epoch++
		stats := metrics.StepStats{Step: e.step}
		var msgs, computeUnits atomic.Int64
		var active int64
		// Span bookkeeping (zeroed when hooks are on): all five GAS rounds of
		// a superstep fold into one Compute span per worker, with the send
		// share split out from the per-round busy time.
		sd := obs.StepSpanData{Run: e.runSeq, Step: e.step}
		if hooks != nil {
			clear(sentPerW)
			clear(unitsPerW)
			clear(recvPerW)
			clear(batchPerW)
			clear(activePerW)
			clear(syncPerW)
			clear(busyPerW)
			clear(sendBusy)
			for w := range delivs {
				delivs[w] = delivs[w][:0]
			}
		}
		for w, ws := range e.ws {
			for s := range ws.verts {
				if ws.verts[s].master && ws.verts[s].active {
					active++
					if activePerW != nil {
						activePerW[w]++
					}
				}
			}
		}
		if active == 0 {
			stopReason = obs.ReasonNoActive
			break
		}
		stats.Active = active
		if hooks != nil {
			hooks.OnSuperstepStart(e.step)
			sd.StepStart = time.Since(runStart)
			hooks.OnSpanStart(obs.StepSpan(e.runSeq, e.step, sd.StepStart))
			sd.ComputeStart = time.Since(runStart)
			sd.SendStart = sd.ComputeStart // the five rounds interleave send and compute
			// Tag this superstep's messages with its causal context; each
			// round's drain links Deliver spans back to the sender's Send
			// span (all five rounds drain within the step).
			for w := 0; w < k; w++ {
				e.tr.Tag(w, span.Context{Run: e.runSeq, Step: int32(e.step), Worker: int32(w)})
				serNs0[w] = e.tr.SerializeNanos(w)
			}
		}

		cmpStart := time.Now()

		// Round 1 — gather requests: masters ask mirrors for partials.
		e.parallelTimed(k, busyPerW, func(w int) {
			ws := e.ws[w]
			out := resetOut(ws.outA)
			for s := range ws.verts {
				lv := &ws.verts[s]
				if !lv.master || !lv.active {
					continue
				}
				mirs := ws.mirrors.Row(s)
				for _, m := range mirs {
					out[m.worker] = append(out[m.worker], gasMsg[V, G]{Kind: kindGatherReq, Slot: m.slot})
				}
				if heatMsgs != nil {
					heatMsgs[lv.id] += int64(len(mirs))
				}
			}
			sent := e.flush(w, out, &msgs, sendBusy)
			if sentPerW != nil {
				sentPerW[w] += sent
			}
		})

		// Round 2 — mirrors compute partial gathers and reply; masters add
		// their own local partials. Draining is a separate barrier so a fast
		// worker's replies cannot race into a slow worker's request drain.
		e.drainAll(inbound, recvPerW, batchPerW, busyPerW, delivs)
		epoch := e.epoch
		e.parallelTimed(k, busyPerW, func(w int) {
			ws := e.ws[w]
			out := resetOut(ws.outB)
			units := int64(0)
			gatherLocal := func(s int32) (G, bool) {
				var sum G
				has := false
				for _, edge := range ws.inEdges.Row(int(s)) {
					src := &ws.verts[edge.srcSlot]
					gv := e.prog.Gather(src.id, src.cache, edge.weight)
					units++
					if !has {
						sum, has = gv, true
					} else {
						sum = e.prog.Sum(sum, gv)
					}
				}
				return sum, has
			}
			for _, batch := range inbound[w] {
				for _, m := range batch {
					if m.Kind != kindGatherReq {
						panic(fmt.Sprintf("gas: unexpected kind %d in gather round", m.Kind))
					}
					lv := &ws.verts[m.Slot]
					sum, has := gatherLocal(m.Slot)
					out[lv.masterWorker] = append(out[lv.masterWorker],
						gasMsg[V, G]{Kind: kindGatherPartial, Slot: lv.masterSlot, Acc: sum, Has: has})
				}
			}
			// Masters gather locally, stamping their accumulator slots live
			// for this epoch (replacing the per-step masterSlot → partial map).
			for s := range ws.verts {
				lv := &ws.verts[s]
				if !lv.master || !lv.active {
					continue
				}
				sum, has := gatherLocal(int32(s))
				ws.accVal[s] = sum
				ws.accHas[s] = has
				ws.accStamp[s] = epoch
			}
			sent := e.flush(w, out, &msgs, sendBusy)
			if sentPerW != nil {
				sentPerW[w] += sent
				unitsPerW[w] += units
			}
			computeUnits.Add(units)
		})

		// Round 3 — masters fold partials, apply, and push new values to
		// mirrors.
		e.drainAll(inbound, recvPerW, batchPerW, busyPerW, delivs)
		e.parallelTimed(k, busyPerW, func(w int) {
			ws := e.ws[w]
			if residPerW != nil {
				residPerW[w] = residPerW[w][:0]
			}
			for _, batch := range inbound[w] {
				for _, m := range batch {
					if m.Kind != kindGatherPartial {
						panic("gas: unexpected kind in apply round")
					}
					if heatMsgs != nil {
						// Partials arrive only at the master's worker, so the
						// attribution stays single-writer.
						heatMsgs[ws.verts[m.Slot].id]++
					}
					if !m.Has {
						continue
					}
					if ws.accStamp[m.Slot] != epoch {
						ws.accStamp[m.Slot] = epoch
						ws.accVal[m.Slot] = m.Acc
						ws.accHas[m.Slot] = true
					} else if !ws.accHas[m.Slot] {
						ws.accVal[m.Slot] = m.Acc
						ws.accHas[m.Slot] = true
					} else {
						ws.accVal[m.Slot] = e.prog.Sum(ws.accVal[m.Slot], m.Acc)
					}
				}
			}
			out := resetOut(ws.outA)
			// Ascending-slot sweep over the stamped accumulators — the same
			// visit order the old sorted-map iteration produced, so the
			// per-step message series stay byte-identical.
			for s := range ws.verts {
				if ws.accStamp[s] != epoch {
					continue
				}
				lv := &ws.verts[s]
				newVal, activate := e.prog.Apply(lv.id, lv.cache, ws.accVal[s], ws.accHas[s], e.step)
				if residPerW != nil {
					residPerW[w] = append(residPerW[w], e.cfg.Residual(lv.cache, newVal))
				}
				lv.cache = newVal
				ws.scat[s] = activate
				ws.scatStamp[s] = epoch
				mirs := ws.mirrors.Row(s)
				for _, m := range mirs {
					out[m.worker] = append(out[m.worker], gasMsg[V, G]{Kind: kindApplyPush, Slot: m.slot, Val: newVal})
				}
				if heatMsgs != nil {
					heatMsgs[lv.id] += int64(len(mirs))
					// The vertex's gather scanned its full in-edge set,
					// wherever those edges live — its global in-degree.
					heatUnits[lv.id] += int64(e.g.InDegree(lv.id))
				}
			}
			sent := e.flush(w, out, &msgs, sendBusy)
			if sentPerW != nil {
				sentPerW[w] += sent
				// Round 3's out queues hold only apply pushes — the mirror
				// value maintenance that is GAS's replica-sync traffic.
				syncPerW[w] += sent
			}
		})

		// Round 4 — mirrors refresh caches; masters send scatter requests.
		e.drainAll(inbound, recvPerW, batchPerW, busyPerW, delivs)
		e.parallelTimed(k, busyPerW, func(w int) {
			ws := e.ws[w]
			for _, batch := range inbound[w] {
				for _, m := range batch {
					if m.Kind != kindApplyPush {
						panic("gas: unexpected kind in push round")
					}
					ws.verts[m.Slot].cache = m.Val
				}
			}
			out := resetOut(ws.outB)
			for s := range ws.verts {
				if ws.scatStamp[s] != epoch || !ws.scat[s] {
					continue
				}
				mirs := ws.mirrors.Row(s)
				for _, m := range mirs {
					out[m.worker] = append(out[m.worker], gasMsg[V, G]{Kind: kindScatterReq, Slot: m.slot})
				}
				if heatMsgs != nil {
					heatMsgs[ws.verts[s].id] += int64(len(mirs))
				}
			}
			sent := e.flush(w, out, &msgs, sendBusy)
			if sentPerW != nil {
				sentPerW[w] += sent
			}
		})

		// Round 5 — scatter: mirrors (and masters locally) activate the
		// local copies' out-neighbors; remote activations return to the
		// masters of the activated vertices.
		//
		// ws.nextActive is only written by worker w's goroutine in each of
		// the two sequential rounds below, so no locking is needed.
		e.drainAll(inbound, recvPerW, batchPerW, busyPerW, delivs)
		e.parallelTimed(k, busyPerW, func(w int) {
			ws := e.ws[w]
			out := resetOut(ws.outA)
			// PowerGraph batches activation returns: at most one activate
			// message per (activated vertex, worker) pair per superstep —
			// the epoch stamp replaces the per-step dedup map.
			activateLocalOuts := func(s int32) {
				for _, dst := range ws.outSlots.Row(int(s)) {
					dlv := &ws.verts[dst]
					if dlv.master {
						ws.nextActive[dst] = true
					} else if ws.queuedStamp[dst] != epoch {
						ws.queuedStamp[dst] = epoch
						out[dlv.masterWorker] = append(out[dlv.masterWorker],
							gasMsg[V, G]{Kind: kindActivate, Slot: dlv.masterSlot})
					}
				}
			}
			for _, batch := range inbound[w] {
				for _, m := range batch {
					if m.Kind != kindScatterReq {
						panic("gas: unexpected kind in scatter round")
					}
					activateLocalOuts(m.Slot)
				}
			}
			for s := range ws.verts {
				if ws.scatStamp[s] == epoch && ws.scat[s] {
					activateLocalOuts(int32(s))
				}
			}
			sent := e.flush(w, out, &msgs, sendBusy)
			if sentPerW != nil {
				sentPerW[w] += sent
			}
		})

		// Final drain: deliver activation returns to masters.
		e.drainAll(inbound, recvPerW, batchPerW, busyPerW, delivs)
		e.parallelTimed(k, busyPerW, func(w int) {
			ws := e.ws[w]
			for _, batch := range inbound[w] {
				for _, m := range batch {
					if m.Kind != kindActivate {
						panic("gas: unexpected kind in activation drain")
					}
					if heatMsgs != nil {
						// Activation returns land at the master's worker.
						heatMsgs[ws.verts[m.Slot].id]++
					}
					ws.nextActive[m.Slot] = true
				}
			}
		})
		stats.Durations[metrics.Compute] = time.Since(cmpStart)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Compute, stats.Durations[metrics.Compute])
		}

		// Audit: round 4 refreshed every applied master's mirrors, and
		// unapplied masters did not change — so every mirror must now equal
		// its master exactly.
		var violations []obs.Violation
		if e.cfg.Audit {
			violations = e.auditMirrors()
		}

		// Barrier bookkeeping: set next activation and clear the flags for
		// the next superstep.
		synStart := time.Now()
		for w := 0; w < k; w++ {
			ws := e.ws[w]
			for s := range ws.verts {
				if ws.verts[s].master {
					ws.verts[s].active = ws.nextActive[s]
				}
				ws.nextActive[s] = false
			}
		}
		stats.Durations[metrics.Sync] = time.Since(synStart)

		stats.Messages = msgs.Load()
		if residPerW != nil {
			resAll = resAll[:0]
			for _, rs := range residPerW {
				resAll = append(resAll, rs...)
			}
			stats.SetResiduals(resAll)
		}
		stats.ComputeUnitsMax = computeUnits.Load() / int64(k)
		stats.SendMax = msgs.Load() / int64(k)
		stats.RecvMax = msgs.Load() / int64(k)
		stats.ModelNanos = e.model.StepCost(
			stats.ComputeUnitsMax, stats.SendMax, stats.RecvMax,
			e.cfg.Cluster.Threads, 1, k, true, e.model.FlatBarrier(k))
		e.trace.Append(stats)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Sync, stats.Durations[metrics.Sync])
			for w := 0; w < k; w++ {
				hooks.OnWorkerStats(obs.WorkerStats{
					Step:         e.step,
					Worker:       w,
					ComputeUnits: unitsPerW[w],
					Sent:         sentPerW[w],
					Received:     recvPerW[w],
					Active:       activePerW[w],
					QueueDepth:   batchPerW[w],
				})
			}
			cur := e.tr.Matrix().Snapshot()
			commDelta := cur.Sub(prevComm)
			hooks.OnCommMatrix(e.step, commDelta)
			prevComm = cur
			for _, v := range violations {
				hooks.OnViolation(v)
			}
			hooks.OnHeat(obs.HeatStepData{
				Step:       e.step,
				Partitions: obs.BuildHeatPartitions(e.step, commDelta, activePerW, unitsPerW, syncPerW),
				Hot: obs.TopHotVertices(heatMsgs, heatUnits,
					func(v int) int { return int(masterOf[v]) }, obs.DefaultHotK),
			})
			hooks.OnSuperstepEnd(e.step, stats)
			// Wall is the sum of the phase durations — exactly what
			// timings.csv records for the step — so critpath.csv columns
			// reconcile with it by construction. Compute is the per-worker
			// busy time across all five rounds minus its send share.
			sd.Wall = stats.Durations[metrics.Parse] + stats.Durations[metrics.Compute] +
				stats.Durations[metrics.Send] + stats.Durations[metrics.Sync]
			runWall += sd.Wall
			for w := 0; w < k; w++ {
				computeDur[w] = busyPerW[w] - sendBusy[w]
				if computeDur[w] < 0 {
					computeDur[w] = 0
				}
				serNs[w] = e.tr.SerializeNanos(w) - serNs0[w]
			}
			sd.Compute = computeDur
			sd.Send = sendBusy
			sd.SerializeNs = serNs
			sd.Units = unitsPerW
			sd.Sent = sentPerW
			sd.Recv = recvPerW
			sd.Deliveries = delivs
			obs.EmitStepSpans(hooks, sd)
		}
		// Fault check at the barrier, before anything from this superstep is
		// persisted: a transient transport fault rolls the run back to the
		// latest checkpoint and replays (mirrors rebuilt from masters, the
		// vertex-cut analogue of §3.6); anything else fails the run.
		if err := e.tr.Err(); err != nil {
			if transport.IsTransient(err) && e.cfg.Recover != nil && recoveries < maxRecoveries {
				st, lerr := e.cfg.Recover()
				if lerr != nil {
					if hooks != nil {
						hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
						hooks.OnConverged(e.step, obs.ReasonFault)
					}
					return e.trace, fmt.Errorf("gas: recovery: load checkpoint: %w", lerr)
				}
				faultStep := e.step
				if e.inj != nil {
					e.inj.Heal()
				}
				if rerr := e.Restore(st); rerr != nil {
					if hooks != nil {
						hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
						hooks.OnConverged(e.step, obs.ReasonFault)
					}
					return e.trace, fmt.Errorf("gas: recovery: %w", rerr)
				}
				recoveries++
				if hooks != nil {
					hooks.OnRecovery(obs.RecoveryEvent{
						Engine:    e.trace.Engine,
						Step:      faultStep,
						ResumedAt: e.step,
						Attempt:   recoveries,
						Cause:     err.Error(),
					})
				}
				continue
			}
			if hooks != nil {
				hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
				hooks.OnConverged(e.step, obs.ReasonFault)
			}
			return e.trace, fmt.Errorf("gas: transport: %w", err)
		}
		if len(violations) > 0 {
			if hooks != nil {
				hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
				hooks.OnConverged(e.step, obs.ReasonAuditFailed)
			}
			return e.trace, fmt.Errorf("gas: %w", &obs.AuditError{Violations: violations})
		}
		if e.cfg.CheckpointEvery > 0 && e.cfg.Checkpoints != nil &&
			(e.step+1)%e.cfg.CheckpointEvery == 0 {
			if err := e.cfg.Checkpoints(e.snapshot()); err != nil {
				if hooks != nil {
					hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
					hooks.OnConverged(e.step, obs.ReasonFault)
				}
				return e.trace, fmt.Errorf("gas: checkpoint at step %d: %w", e.step, err)
			}
		}
		if e.cfg.OnStep != nil {
			e.cfg.OnStep(e.step, e)
		}
		e.step++
	}
	if hooks != nil {
		hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
		hooks.OnConverged(e.step, stopReason)
	}
	if err := e.tr.Err(); err != nil {
		return e.trace, fmt.Errorf("gas: transport: %w", err)
	}
	return e.trace, nil
}

// drainAll drains every worker's queue behind a barrier, so messages of the
// next round can never race into the current round's processing, filling the
// caller's reusable inbound buffer. recvPerW and batchPerW, when non-nil,
// accumulate per-worker receive counts for the observation hooks (each slot
// is written only by its own worker).
func (e *Engine[V, G]) drainAll(dst [][][]gasMsg[V, G], recvPerW, batchPerW []int64,
	busy []time.Duration, delivs [][]span.Delivery) {
	e.parallelTimed(len(dst), busy, func(w int) {
		dst[w] = e.tr.Drain(w) //lint:allow bufretain dst is the caller's round-scoped inbound buffer, overwritten by the next drainAll before the batches are reused
		if delivs != nil {
			// Merge this round's batch provenance; five rounds drain per
			// superstep and LastDeliveries only covers the latest.
			delivs[w] = span.MergeDeliveries(delivs[w], e.tr.LastDeliveries(w))
		}
		if recvPerW != nil {
			for _, b := range dst[w] {
				recvPerW[w] += int64(len(b))
			}
			batchPerW[w] += int64(len(dst[w]))
		}
	})
}

// parallel runs fn for every worker concurrently and waits.
func (e *Engine[V, G]) parallel(k int, fn func(w int)) {
	e.parallelTimed(k, nil, fn)
}

// parallelTimed is parallel with per-worker busy-time accounting for the
// span stream; busy may be nil (hooks off).
func (e *Engine[V, G]) parallelTimed(k int, busy []time.Duration, fn func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			fn(w)
			if busy != nil {
				busy[w] += time.Since(t0)
			}
		}(w)
	}
	wg.Wait()
}

// flush sends per-destination batches, counts messages, and closes the
// worker's communication round so the next drain can proceed. It returns
// the number of messages sent.
func (e *Engine[V, G]) flush(from int, out [][]gasMsg[V, G], msgs *atomic.Int64,
	sendBusy []time.Duration) int64 {
	t0 := time.Now()
	var sent int64
	for to, batch := range out {
		if len(batch) == 0 {
			continue
		}
		sent += int64(len(batch))
		e.tr.Send(from, to, batch)
	}
	msgs.Add(sent)
	e.tr.FinishRound(from)
	if sendBusy != nil {
		sendBusy[from] += time.Since(t0)
	}
	return sent
}

// resetOut truncates every per-destination batch to zero length, keeping the
// backing arrays for reuse. Reuse is safe because the batches a round sends
// are drained behind a barrier and read in the next round, and each buffer
// set is refilled two rounds later at the earliest (the outA/outB parity).
func resetOut[V, G any](out [][]gasMsg[V, G]) [][]gasMsg[V, G] {
	for to := range out {
		out[to] = out[to][:0]
	}
	return out
}

// Close releases transport resources (sockets in TCPLoopback mode).
func (e *Engine[V, G]) Close() error { return e.tr.Close() }
