package gas

import (
	"fmt"

	"cyclops/internal/obs"
)

// The mirror-coherence auditor (Config.Audit). PowerGraph's vertex-cut keeps
// one master per vertex and refreshes every mirror through the apply push
// (round 3→4 of each superstep); masters that were not applied did not
// change, so their mirrors' caches must still match. A mirror that diverges
// from its master means a push was lost, forged, or a cache was mutated out
// of band — the GAS counterpart of Cyclops' replica desync.

// auditMaxViolations caps how many violations one sweep collects, so a
// systemic fault doesn't flood the tracer: the run fails on the first
// violation regardless.
const auditMaxViolations = 64

// auditMirrors verifies, after the superstep's rounds complete, that every
// mirror's cached value exactly equals its master's. Exact equality is the
// right test — apply pushes carry the master's value verbatim.
func (e *Engine[V, G]) auditMirrors() []obs.Violation {
	var out []obs.Violation
	for w, ws := range e.ws {
		for s := range ws.verts {
			lv := &ws.verts[s]
			if !lv.master || ws.mirrors.RowLen(s) == 0 {
				continue
			}
			for _, m := range ws.mirrors.Row(s) {
				if obs.ExactEqual(lv.cache, e.ws[m.worker].verts[m.slot].cache) {
					continue
				}
				out = append(out, obs.Violation{
					Engine: e.trace.Engine,
					Step:   e.step,
					Worker: int(m.worker),
					Vertex: int64(lv.id),
					Kind:   obs.ViolationMirrorDivergence,
					Detail: fmt.Sprintf(
						"mirror at worker %d slot %d diverges from master at worker %d slot %d",
						m.worker, m.slot, w, s),
				})
				if len(out) >= auditMaxViolations {
					return out
				}
			}
		}
	}
	return out
}
