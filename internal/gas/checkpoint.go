package gas

import (
	"errors"

	"cyclops/internal/transport"
)

// State is the checkpointable engine state. Like Cyclops (§3.6), the
// vertex-cut engine checkpoints only master values and activation flags:
// mirrors are caches and are rebuilt from their masters on recovery, and at a
// superstep barrier no messages are in flight.
type State[V any] struct {
	Step   int
	Values []V    // master values, indexed by global vertex id
	Active []bool // master activation flags, indexed by global vertex id
}

// Snapshot captures the engine's state before Run as a step-0 baseline
// checkpoint, so a fault earlier than the first periodic checkpoint is still
// recoverable. (Mid-run checkpoints are taken by the engine itself through
// Config.Checkpoints.)
func (e *Engine[V, G]) Snapshot() State[V] {
	s := e.snapshot()
	s.Step = e.step
	return s
}

// snapshot captures the current state (called at barriers only).
func (e *Engine[V, G]) snapshot() State[V] {
	n := e.g.NumVertices()
	s := State[V]{
		Step:   e.step + 1,
		Values: make([]V, n),
		Active: make([]bool, n),
	}
	for _, ws := range e.ws {
		for i := range ws.verts {
			lv := &ws.verts[i]
			if lv.master {
				s.Values[lv.id] = lv.cache
				s.Active[lv.id] = lv.active
			}
		}
	}
	return s
}

// Restore rewinds the engine to a checkpointed state and refreshes every
// copy's cached value from the checkpointed master value — the mirror rebuild
// that replaces message replay (the vertex-cut analogue of §3.6's replica
// re-synchronisation).
func (e *Engine[V, G]) Restore(s State[V]) error {
	if e.cfg.Network != transport.InProcess {
		return errors.New("gas: restore requires the in-process network")
	}
	n := e.g.NumVertices()
	if len(s.Values) != n || len(s.Active) != n {
		return errors.New("gas: checkpoint shape does not match engine")
	}
	for _, ws := range e.ws {
		for i := range ws.verts {
			lv := &ws.verts[i]
			// Every copy, master and mirror alike, resets to the master's
			// checkpointed value.
			lv.cache = s.Values[lv.id]
			if lv.master {
				lv.active = s.Active[lv.id]
			}
		}
	}
	// Discard any undelivered messages from the aborted superstep.
	for w := 0; w < e.cfg.Cluster.Workers(); w++ {
		e.tr.Drain(w)
	}
	e.step = s.Step
	return nil
}
