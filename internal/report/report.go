// Package report turns flight-record run directories (internal/obs.Recorder)
// into normalized baselines and diffs them — the regression gate behind
// cmd/cyclops-report and the CI perf-gate job. Deterministic counts
// (supersteps, messages, bytes, replicas) must match exactly; the cost
// model's time estimate gets a relative tolerance band; wall time is never
// compared (it belongs to the machine, not the code).
package report

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
)

// Entry is one run, normalized for comparison. Runs are matched by
// (Experiment, Engine, ordinal): the ordinal separates repeated runs of the
// same engine within one experiment (e.g. a scalability sweep).
type Entry struct {
	Experiment string  `json:"experiment,omitempty"`
	Engine     string  `json:"engine"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Dataset    string  `json:"dataset,omitempty"`
	Supersteps int     `json:"supersteps"`
	Messages   int64   `json:"messages"`
	Bytes      int64   `json:"bytes"`
	Replicas   int64   `json:"replicas"`
	ModelMs    float64 `json:"model_ms"`
	// WireBytes is the encoded on-the-wire byte total (Bytes is the payload
	// estimate); both are deterministic, so the wire/payload ratio — the
	// serialisation envelope — is gated exactly. Zero on baselines recorded
	// before wire accounting existed, in which case diffs skip the gate.
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// ReplicaValueBytes is the replicated view's deterministic value memory
	// (Replicas × sizeof(value)) — the Table 4/5 replica side.
	ReplicaValueBytes int64 `json:"replica_value_bytes,omitempty"`
	// AllocsPerStep is the run's mean heap allocations per superstep, read
	// back from the quarantined mem.csv. Machine- and GC-schedule-dependent,
	// so diffs band it (Options.AllocTol) and never compare it exactly.
	AllocsPerStep float64 `json:"allocs_per_superstep,omitempty"`
	// CritPath is the run's critical-path structure: the gating-worker
	// sequence from critpath.csv ("step:worker" pairs, durations excluded).
	// Populated when loading a record directory that has span data; empty for
	// baselines written before span tracing existed, in which case diffs skip
	// the comparison (old baselines stay usable).
	CritPath string `json:"critpath,omitempty"`
	// Heat digests the run's heat structure (heat.csv rows, hotset.csv
	// entries, and a hash over both files' bytes). Heat data is all counts, so
	// the digest compares exactly; empty for records made before the heat
	// observatory, in which case diffs skip it.
	Heat string `json:"heat,omitempty"`
}

// Baseline is a normalized set of runs — what cyclops-bench -record emits as
// BENCH_baseline.json and what the CI gate commits.
type Baseline struct {
	// Scale and Seed identify the generator configuration the entries are
	// only comparable under.
	Scale   float64 `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Entries []Entry `json:"entries"`
}

// FromManifests normalizes recorded manifests into a Baseline.
func FromManifests(ms []obs.Manifest) Baseline {
	var b Baseline
	for _, m := range ms {
		if b.Scale == 0 {
			b.Scale = m.Scale
		}
		if b.Seed == 0 {
			b.Seed = m.Seed
		}
		b.Entries = append(b.Entries, Entry{
			Experiment:        m.Experiment,
			Engine:            m.Engine,
			Algorithm:         m.Algorithm,
			Dataset:           m.Dataset,
			Supersteps:        m.Supersteps,
			Messages:          m.Messages,
			Bytes:             m.Bytes,
			Replicas:          m.Replicas,
			ModelMs:           m.ModelNanos / 1e6,
			WireBytes:         m.WireBytes,
			ReplicaValueBytes: m.ReplicaValueBytes,
		})
	}
	return b
}

// FromManifestsDir normalizes recorded manifests and enriches each entry with
// the per-run artifacts only the record directory holds: the critical-path
// gating sequence (critpath.csv) and the mean allocations per superstep
// (quarantined mem.csv). Artifacts a run directory lacks are skipped, so
// records made by older binaries still normalize.
func FromManifestsDir(root string, ms []obs.Manifest) Baseline {
	b := FromManifests(ms)
	for i, m := range ms {
		runDir := filepath.Join(root, m.Run)
		if seq, err := loadGatingSequence(runDir); err == nil {
			b.Entries[i].CritPath = seq
		}
		if d, err := loadHeatDigest(runDir); err == nil {
			b.Entries[i].Heat = d
		}
		b.Entries[i].AllocsPerStep = loadAllocsPerStep(runDir)
	}
	return b
}

// loadAllocsPerStep reads a run directory's mem.csv and returns the mean heap
// allocations per superstep. Zero when the file is absent (a pre-observatory
// record), unparsable, or empty — all of which Diff treats as "no alloc data
// on this side".
func loadAllocsPerStep(runDir string) float64 {
	blob, err := os.ReadFile(filepath.Join(runDir, "mem.csv"))
	if err != nil {
		return 0
	}
	steps, err := obs.ParseMemCSV(blob)
	if err != nil || len(steps) == 0 {
		return 0
	}
	var total float64
	for _, s := range steps {
		total += float64(s.StepObjects)
	}
	return total / float64(len(steps))
}

// Load reads a comparison side: a directory is a flight-record root (its
// run-* manifests are normalized), a file is a Baseline JSON.
func Load(path string) (Baseline, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("report: %w", err)
	}
	if fi.IsDir() {
		ms, err := obs.ReadManifests(path)
		if err != nil {
			return Baseline{}, err
		}
		if len(ms) == 0 {
			return Baseline{}, fmt.Errorf("report: %s holds no run-* directories", path)
		}
		// Surface critpath/heat parse errors (FromManifestsDir is lenient so
		// the bench CLI can always write a baseline; the gate should not be).
		for _, m := range ms {
			if _, err := loadGatingSequence(filepath.Join(path, m.Run)); err != nil {
				return Baseline{}, err
			}
			if _, err := loadHeatDigest(filepath.Join(path, m.Run)); err != nil {
				return Baseline{}, err
			}
		}
		return FromManifestsDir(path, ms), nil
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("report: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(blob, &b); err != nil {
		return Baseline{}, fmt.Errorf("report: parse %s: %w", path, err)
	}
	if len(b.Entries) == 0 {
		return Baseline{}, fmt.Errorf("report: %s has no entries", path)
	}
	return b, nil
}

// loadGatingSequence reads a run directory's critpath.csv and compresses it
// to the structural gating sequence. A missing file (a record made before
// span tracing, or with spans disabled) is not an error — it yields the
// empty sequence, which Diff treats as "no path data on this side".
func loadGatingSequence(runDir string) (string, error) {
	blob, err := os.ReadFile(filepath.Join(runDir, "critpath.csv"))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("report: %w", err)
	}
	paths, err := span.ParseCritPathCSV(blob)
	if err != nil {
		return "", fmt.Errorf("report: %s: %w", runDir, err)
	}
	return span.GatingSequence(paths), nil
}

// loadHeatDigest compresses a run directory's heat artifacts into a compact,
// exactly-comparable digest: row/entry counts plus an FNV-1a hash over the
// verbatim bytes of heat.csv and hotset.csv. Any count anywhere in either
// file changes the digest. Missing files (a pre-heat record) yield "" without
// error; present-but-unparsable files are an error.
func loadHeatDigest(runDir string) (string, error) {
	heatBlob, err := os.ReadFile(filepath.Join(runDir, "heat.csv"))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("report: %w", err)
	}
	rows, err := obs.ParseHeatCSV(heatBlob)
	if err != nil {
		return "", fmt.Errorf("report: %s: %w", runDir, err)
	}
	hotBlob, err := os.ReadFile(filepath.Join(runDir, "hotset.csv"))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("report: %w", err)
	}
	hot, err := obs.ParseHotsetCSV(hotBlob)
	if err != nil {
		return "", fmt.Errorf("report: %s: %w", runDir, err)
	}
	h := fnv.New32a()
	h.Write(heatBlob) //nolint:errcheck // hash.Hash never errors
	h.Write(hotBlob)  //nolint:errcheck
	return fmt.Sprintf("%dr/%dh:%08x", len(rows), len(hot), h.Sum32()), nil
}

// Write stores a Baseline as deterministic, committable JSON.
func Write(path string, b Baseline) error {
	blob, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// key matches entries across the two sides.
func (e Entry) key(ordinal int) string {
	exp := e.Experiment
	if exp == "" {
		exp = "-"
	}
	return fmt.Sprintf("%s/%s#%d", exp, e.Engine, ordinal)
}

// keyed assigns ordinals within each (experiment, engine) pair, preserving
// run order.
func keyed(b Baseline) (keys []string, byKey map[string]Entry) {
	byKey = make(map[string]Entry)
	count := make(map[string]int)
	for _, e := range b.Entries {
		pair := e.Experiment + "/" + e.Engine
		k := e.key(count[pair])
		count[pair]++
		keys = append(keys, k)
		byKey[k] = e
	}
	return keys, byKey
}

// Options tunes a diff.
type Options struct {
	// ModelTol is the relative tolerance for model_ms (default 0.05). The
	// model is arithmetic over counts — deterministic in principle — but the
	// band absorbs deliberate cost-constant retuning at minor magnitude;
	// count drift still fails exactly.
	ModelTol float64
	// AllocTol is the relative tolerance for allocs_per_superstep (default
	// 0.25). Allocation counts are quarantined telemetry — GC scheduling and
	// the Go version move them — so the band is wide: the gate exists to
	// catch order-of-magnitude allocation regressions, not noise.
	AllocTol float64
}

func (o Options) normalize() Options {
	if o.ModelTol <= 0 {
		o.ModelTol = 0.05
	}
	if o.AllocTol <= 0 {
		o.AllocTol = 0.25
	}
	return o
}

// Delta is one metric's comparison in one matched run.
type Delta struct {
	Run    string // match key: experiment/engine#ordinal
	Metric string
	Old    float64
	New    float64
	// Rel is the relative change (new-old)/old; ±Inf when old == 0 != new.
	Rel float64
	// Exact marks metrics compared by equality rather than tolerance.
	Exact bool
	// Regression marks deltas outside the allowed band.
	Regression bool
	// OldText/NewText carry string-valued metrics (the critical-path gating
	// sequence); when either is set the numeric fields are unused.
	OldText string
	NewText string
}

// Result is a full diff.
type Result struct {
	Deltas []Delta
	// MissingInNew and MissingInOld hold match keys present on only one side
	// (both are regressions: coverage loss and unvetted additions).
	MissingInNew []string
	MissingInOld []string
}

// Regressions returns the deltas outside their bands.
func (r Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the diff is clean: every run matched and every metric
// within its band.
func (r Result) OK() bool {
	return len(r.Regressions()) == 0 && len(r.MissingInNew) == 0 && len(r.MissingInOld) == 0
}

// Err returns nil for a clean diff and a named-metric error otherwise — the
// CLI's non-zero exit for CI gating.
func (r Result) Err() error {
	if regs := r.Regressions(); len(regs) > 0 {
		d := regs[0]
		oldV, newV := fnum(d.Old), fnum(d.New)
		if d.OldText != "" || d.NewText != "" {
			oldV, newV = ftext(d.OldText), ftext(d.NewText)
		}
		return fmt.Errorf("report: %d metric(s) regressed, first: %s %s %s -> %s",
			len(regs), d.Run, d.Metric, oldV, newV)
	}
	if len(r.MissingInNew) > 0 {
		return fmt.Errorf("report: run %s is in the baseline but not in the new recording", r.MissingInNew[0])
	}
	if len(r.MissingInOld) > 0 {
		return fmt.Errorf("report: run %s is in the new recording but not in the baseline", r.MissingInOld[0])
	}
	return nil
}

// Diff compares old (the baseline) against new (the fresh recording).
func Diff(old, new Baseline, opts Options) Result {
	opts = opts.normalize()
	oldKeys, oldBy := keyed(old)
	newKeys, newBy := keyed(new)

	var res Result
	for _, k := range oldKeys {
		if _, ok := newBy[k]; !ok {
			res.MissingInNew = append(res.MissingInNew, k)
		}
	}
	for _, k := range newKeys {
		if _, ok := oldBy[k]; !ok {
			res.MissingInOld = append(res.MissingInOld, k)
		}
	}

	for _, k := range oldKeys {
		n, ok := newBy[k]
		if !ok {
			continue
		}
		o := oldBy[k]
		res.Deltas = append(res.Deltas,
			exact(k, "supersteps", float64(o.Supersteps), float64(n.Supersteps)),
			exact(k, "messages", float64(o.Messages), float64(n.Messages)),
			exact(k, "bytes", float64(o.Bytes), float64(n.Bytes)),
			exact(k, "replicas", float64(o.Replicas), float64(n.Replicas)),
			banded(k, "model_ms", o.ModelMs, n.ModelMs, opts.ModelTol),
		)
		// The critical-path structure is deterministic, so it compares
		// exactly — but only when both sides carry it, so baselines recorded
		// before span tracing (or with spans off) still diff cleanly.
		if o.CritPath != "" && n.CritPath != "" {
			res.Deltas = append(res.Deltas, exactText(k, "critpath", o.CritPath, n.CritPath))
		}
		// The heat digest covers every count in heat.csv and hotset.csv, so
		// it compares exactly under the same both-sides-present rule.
		if o.Heat != "" && n.Heat != "" {
			res.Deltas = append(res.Deltas, exactText(k, "heat", o.Heat, n.Heat))
		}
		// Wire bytes (and so the wire/payload envelope ratio) are as
		// deterministic as the payload counts: any change at all fails. The
		// skip-when-absent guard keeps pre-observatory baselines usable.
		if o.WireBytes != 0 && n.WireBytes != 0 {
			res.Deltas = append(res.Deltas,
				exact(k, "wire_bytes", float64(o.WireBytes), float64(n.WireBytes)),
				exact(k, "wire_ratio",
					float64(o.WireBytes)/float64(o.Bytes),
					float64(n.WireBytes)/float64(n.Bytes)),
			)
		}
		if o.ReplicaValueBytes != 0 && n.ReplicaValueBytes != 0 {
			res.Deltas = append(res.Deltas,
				exact(k, "replica_value_bytes", float64(o.ReplicaValueBytes), float64(n.ReplicaValueBytes)))
		}
		// Allocation counts are quarantined: banded, never exact.
		if o.AllocsPerStep != 0 && n.AllocsPerStep != 0 {
			res.Deltas = append(res.Deltas,
				banded(k, "allocs_per_superstep", o.AllocsPerStep, n.AllocsPerStep, opts.AllocTol))
		}
	}
	return res
}

func rel(old, new float64) float64 {
	if old == new {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	return (new - old) / old
}

func exact(run, metric string, old, new float64) Delta {
	return Delta{Run: run, Metric: metric, Old: old, New: new,
		Rel: rel(old, new), Exact: true, Regression: old != new}
}

func exactText(run, metric, old, new string) Delta {
	return Delta{Run: run, Metric: metric, OldText: old, NewText: new,
		Exact: true, Regression: old != new}
}

func banded(run, metric string, old, new, tol float64) Delta {
	r := rel(old, new)
	return Delta{Run: run, Metric: metric, Old: old, New: new,
		Rel: r, Regression: math.Abs(r) > tol}
}

func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// WriteMarkdown renders the diff as a markdown table (regressions first),
// followed by any unmatched runs.
func (r Result) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	regs := r.Regressions()
	if r.OK() {
		b.WriteString("No regressions: all runs matched, all metrics within bounds.\n\n")
	} else {
		fmt.Fprintf(&b, "**%d regression(s)**", len(regs))
		if n := len(r.MissingInNew) + len(r.MissingInOld); n > 0 {
			fmt.Fprintf(&b, ", %d unmatched run(s)", n)
		}
		b.WriteString("\n\n")
	}
	b.WriteString("| run | metric | baseline | current | delta | status |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	rows := append(append([]Delta(nil), regs...), okDeltas(r.Deltas)...)
	for _, d := range rows {
		status := "ok"
		if d.Regression {
			status = "REGRESSION"
		}
		mode := "~"
		if d.Exact {
			mode = "="
		}
		oldCell, newCell, relCell := fnum(d.Old), fnum(d.New), frel(d.Rel)
		if d.OldText != "" || d.NewText != "" {
			oldCell, newCell, relCell = ftext(d.OldText), ftext(d.NewText), "—"
		}
		fmt.Fprintf(&b, "| %s | %s%s | %s | %s | %s | %s |\n",
			d.Run, d.Metric, mode, oldCell, newCell, relCell, status)
	}
	for _, k := range r.MissingInNew {
		fmt.Fprintf(&b, "| %s | — | — | missing | — | REGRESSION |\n", k)
	}
	for _, k := range r.MissingInOld {
		fmt.Fprintf(&b, "| %s | — | missing | — | — | REGRESSION |\n", k)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func okDeltas(ds []Delta) []Delta {
	var out []Delta
	for _, d := range ds {
		if !d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// ftext renders a string metric cell, truncated so long gating sequences
// don't blow up the table (the full sequences live in critpath.csv).
func ftext(s string) string {
	if s == "" {
		return "—"
	}
	if len(s) > 32 {
		return s[:29] + "..."
	}
	return s
}

func frel(r float64) string {
	switch {
	case r == 0:
		return "0%"
	case math.IsInf(r, 1):
		return "+inf"
	case math.IsInf(r, -1):
		return "-inf"
	default:
		return fmt.Sprintf("%+.2f%%", r*100)
	}
}

// SortEntries orders entries canonically (experiment, engine, run order kept
// within pairs is the caller's job — this is for stable baseline files).
func SortEntries(b *Baseline) {
	sort.SliceStable(b.Entries, func(i, j int) bool {
		if b.Entries[i].Experiment != b.Entries[j].Experiment {
			return b.Entries[i].Experiment < b.Entries[j].Experiment
		}
		return false // keep run order within an experiment
	})
}
