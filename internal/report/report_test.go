package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
)

func baseline() Baseline {
	return Baseline{
		Scale: 0.25,
		Seed:  1,
		Entries: []Entry{
			{Experiment: "pagerank", Engine: "hama", Algorithm: "PR", Dataset: "gweb",
				Supersteps: 42, Messages: 2519118, Bytes: 40305888, ModelMs: 110.18},
			{Experiment: "pagerank", Engine: "cyclops", Algorithm: "PR", Dataset: "gweb",
				Supersteps: 45, Messages: 1329773, Bytes: 21276368, Replicas: 39040, ModelMs: 56.31},
			{Experiment: "pagerank", Engine: "cyclopsmt", Algorithm: "PR", Dataset: "gweb",
				Supersteps: 45, Messages: 790967, Bytes: 12655472, Replicas: 23615, ModelMs: 14.44},
		},
	}
}

func TestDiffIdentical(t *testing.T) {
	res := Diff(baseline(), baseline(), Options{})
	if !res.OK() {
		t.Fatalf("identical baselines not OK: %v", res.Err())
	}
	if err := res.Err(); err != nil {
		t.Fatalf("Err() = %v for identical baselines", err)
	}
	// 3 runs × 5 metrics, all clean.
	if len(res.Deltas) != 15 {
		t.Errorf("got %d deltas, want 15", len(res.Deltas))
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Errorf("regressions on identical input: %v", regs)
	}
}

func TestDiffExactMetricRegresses(t *testing.T) {
	cur := baseline()
	cur.Entries[1].Messages += 5 // any drift in a deterministic count fails
	res := Diff(baseline(), cur, Options{})
	if res.OK() {
		t.Fatal("message drift not flagged")
	}
	regs := res.Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Metric != "messages" || regs[0].Run != "pagerank/cyclops#0" {
		t.Errorf("regression = %+v, want messages on pagerank/cyclops#0", regs[0])
	}
	err := res.Err()
	if err == nil || !strings.Contains(err.Error(), "messages") {
		t.Errorf("Err() = %v, want it to name the metric", err)
	}
}

func TestDiffModelBand(t *testing.T) {
	within := baseline()
	within.Entries[0].ModelMs *= 1.04 // inside the default 5% band
	if res := Diff(baseline(), within, Options{}); !res.OK() {
		t.Errorf("4%% model drift flagged under 5%% tolerance: %v", res.Err())
	}
	outside := baseline()
	outside.Entries[0].ModelMs *= 1.08
	res := Diff(baseline(), outside, Options{})
	if res.OK() {
		t.Fatal("8% model drift passed under 5% tolerance")
	}
	if regs := res.Regressions(); len(regs) != 1 || regs[0].Metric != "model_ms" {
		t.Errorf("regressions = %v, want one model_ms", regs)
	}
	// A wider band admits it; improvements (faster model time) beyond the band
	// still flag, keeping the baseline honest in both directions.
	if res := Diff(baseline(), outside, Options{ModelTol: 0.10}); !res.OK() {
		t.Errorf("8%% drift flagged under 10%% tolerance: %v", res.Err())
	}
}

func TestDiffUnmatchedRuns(t *testing.T) {
	cur := baseline()
	cur.Entries = cur.Entries[:2] // cyclopsmt run vanished
	res := Diff(baseline(), cur, Options{})
	if res.OK() {
		t.Fatal("missing run not flagged")
	}
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "pagerank/cyclopsmt#0" {
		t.Errorf("MissingInNew = %v", res.MissingInNew)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "cyclopsmt") {
		t.Errorf("Err() = %v, want it to name the missing run", err)
	}

	extra := baseline()
	extra.Entries = append(extra.Entries, Entry{Experiment: "pagerank", Engine: "hama",
		Supersteps: 42, Messages: 2519118, Bytes: 40305888, ModelMs: 110.18})
	res = Diff(baseline(), extra, Options{})
	if len(res.MissingInOld) != 1 || res.MissingInOld[0] != "pagerank/hama#1" {
		t.Errorf("MissingInOld = %v (repeated runs get ordinals)", res.MissingInOld)
	}
}

func TestDiffOrdinalsSeparateRepeatedRuns(t *testing.T) {
	// Two hama runs in one experiment must diff positionally, not collapse.
	two := Baseline{Entries: []Entry{
		{Experiment: "sweep", Engine: "hama", Messages: 100},
		{Experiment: "sweep", Engine: "hama", Messages: 200},
	}}
	cur := Baseline{Entries: []Entry{
		{Experiment: "sweep", Engine: "hama", Messages: 100},
		{Experiment: "sweep", Engine: "hama", Messages: 999},
	}}
	res := Diff(two, cur, Options{})
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Run != "sweep/hama#1" || regs[0].Metric != "messages" {
		t.Errorf("regressions = %v, want messages on sweep/hama#1 only", regs)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_baseline.json")
	want := baseline()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Diff(want, got, Options{}).OK() {
		t.Errorf("round trip changed the baseline: %+v", got)
	}
	if got.Scale != want.Scale || got.Seed != want.Seed {
		t.Errorf("round trip lost scale/seed: %+v", got)
	}
}

func TestLoadFromRecordDir(t *testing.T) {
	dir := t.TempDir()
	// A record dir is run-* subdirectories with manifests.
	m := obs.Manifest{Run: "run-001-cyclops", Experiment: "pagerank", Engine: "cyclops",
		Supersteps: 45, Messages: 1329773, Bytes: 21276368, Replicas: 39040, ModelNanos: 56.31e6}
	writeManifest(t, dir, m)
	b, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 1 {
		t.Fatalf("got %d entries", len(b.Entries))
	}
	e := b.Entries[0]
	if e.Engine != "cyclops" || e.Messages != 1329773 || e.ModelMs != 56.31 {
		t.Errorf("normalized entry = %+v", e)
	}

	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty record dir accepted")
	}
	if _, err := Load(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing path accepted")
	}
}

func TestWriteMarkdownOrdersRegressionsFirst(t *testing.T) {
	cur := baseline()
	cur.Entries[2].Bytes += 1
	cur.Entries = cur.Entries[:3]
	res := Diff(baseline(), cur, Options{})
	var sb strings.Builder
	if err := res.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "bytes=") {
		t.Errorf("markdown missing regression row:\n%s", out)
	}
	first := strings.Index(out, "| pagerank/cyclopsmt#0 | bytes=")
	anyOK := strings.Index(out, "| ok |")
	if first < 0 || (anyOK >= 0 && anyOK < first) {
		t.Errorf("regression row not first:\n%s", out)
	}

	var clean strings.Builder
	if err := Diff(baseline(), baseline(), Options{}).WriteMarkdown(&clean); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clean.String(), "No regressions") {
		t.Errorf("clean diff lacks summary line:\n%s", clean.String())
	}
}

func TestDiffCritPathStructure(t *testing.T) {
	with := func(path string) Baseline {
		b := Baseline{Entries: []Entry{{Experiment: "pagerank", Engine: "cyclops",
			Supersteps: 3, Messages: 100, CritPath: path}}}
		return b
	}
	// Same path structure on both sides: clean, and the critpath delta exists.
	res := Diff(with("0:1 1:2 2:0"), with("0:1 1:2 2:0"), Options{})
	if !res.OK() {
		t.Fatalf("identical critpath flagged: %v", res.Err())
	}
	found := false
	for _, d := range res.Deltas {
		if d.Metric == "critpath" {
			found = true
			if !d.Exact || d.Regression {
				t.Errorf("identical critpath delta = %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("no critpath delta when both sides carry path data")
	}

	// A gating-sequence change is a structural regression, compared exactly.
	res = Diff(with("0:1 1:2 2:0"), with("0:1 1:3 2:0"), Options{})
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Metric != "critpath" {
		t.Fatalf("regressions = %v, want one critpath", regs)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "critpath") {
		t.Errorf("Err() = %v, want it to name critpath", err)
	}
	var sb strings.Builder
	if err := res.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "critpath=") {
		t.Errorf("markdown lacks the critpath row:\n%s", sb.String())
	}

	// Old baselines have no path data: the comparison is skipped, not failed.
	old := with("0:1 1:2 2:0")
	old.Entries[0].CritPath = ""
	if res := Diff(old, with("0:1 1:3 2:0"), Options{}); !res.OK() {
		t.Errorf("pre-span baseline vs spanned record flagged: %v", res.Err())
	}
	if res := Diff(with("0:1 1:2 2:0"), old, Options{}); !res.OK() {
		t.Errorf("spanned baseline vs span-less record flagged: %v", res.Err())
	}
}

func TestLoadCritPathFromRecordDir(t *testing.T) {
	dir := t.TempDir()
	m := obs.Manifest{Run: "run-001-cyclops", Experiment: "pagerank", Engine: "cyclops"}
	writeManifest(t, dir, m)
	csv := span.EncodeCritPathCSV([]span.StepPath{
		{Step: 0, Gating: 1, Weight: 9, ComputeNs: 5, SerializeNs: 1, SendNs: 2, BarrierNs: 3},
		{Step: 1, Gating: 0, Weight: 7, ComputeNs: 4, BarrierNs: 1},
	})
	if err := os.WriteFile(filepath.Join(dir, m.Run, "critpath.csv"), csv, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Entries[0].CritPath, "0:1 1:0"; got != want {
		t.Errorf("CritPath = %q, want %q", got, want)
	}

	// A run without critpath.csv loads with an empty sequence, not an error.
	m2 := obs.Manifest{Run: "run-002-hama", Experiment: "pagerank", Engine: "hama"}
	writeManifest(t, dir, m2)
	b, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Entries[1].CritPath != "" {
		t.Errorf("span-less run got CritPath %q", b.Entries[1].CritPath)
	}
}

func writeManifest(t *testing.T, root string, m obs.Manifest) {
	t.Helper()
	dir := filepath.Join(root, m.Run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"run":"` + m.Run + `","experiment":"` + m.Experiment +
		`","engine":"` + m.Engine + `","supersteps":45,"messages":1329773,` +
		`"bytes":21276368,"replicas":39040,"model_ns":56310000}`)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
}
