package lint_test

import (
	"testing"

	"cyclops/internal/lint"
	"cyclops/internal/lint/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Determinism,
		"cyclops/internal/bsp", // in-scope engine package: findings expected
		"outofscope",           // tooling package: analyzer must stay silent
	)
}
