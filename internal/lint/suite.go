// Package lint is cyclops-lint: a static-analysis suite that proves, over
// every call site instead of only the executed ones, the structural
// invariants this repo otherwise checks at runtime — the paper's §3.4
// unidirectional master→replica sync contract, §3.6 replay determinism (the
// flight recorder's byte-identical-run gate), the PR 4 typed transport-error
// taxonomy, the observability layer's begin/end hook pairing, and the PR 9
// hot-path contracts (arena buffer reuse, codec wire exactness, CSR slot
// addressing, and the 0 allocs/op steady state).
//
// Each analyzer is documented in its own file and mapped to the contract it
// enforces in internal/lint/README.md. Intentional exceptions are annotated
// in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above; the driver counts used allows and
// reports stale ones.
package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"cyclops/internal/lint/analysis"
)

// Import paths of the repo packages whose contracts the analyzers encode.
// The analysistest suites reproduce these paths under testdata/src, so the
// same package-identity checks hold in golden tests and production runs.
const (
	transportPkgPath = "cyclops/internal/transport"
	obsPkgPath       = "cyclops/internal/obs"
)

// Analyzers returns the full cyclops-lint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		TransportErr,
		AtomicMix,
		HookBalance,
		SendLocked,
		BufRetain,
		CodecSym,
		SlotAddr,
		AllocFree,
	}
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if ident, ok := fun.X.(*ast.Ident); ok {
			id = ident
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the declaring package path of fn, or "" for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// exprText renders an expression compactly ("ws.next", "t.encMu[from]") for
// matching receiver expressions and for diagnostics.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

// enclosingFunc returns the innermost FuncDecl or FuncLit in stack, or nil.
// Analyzers use it to scope flow-ish reasoning to one function body: events
// inside a nested closure belong to the closure, not its parent.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit node.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// errorType is the universe error type; errorIface its underlying
// interface, for "is this an error value" checks on named types.
var (
	errorType  = types.Universe.Lookup("error").Type()
	errorIface = errorType.Underlying().(*types.Interface)
)

func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}
