package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"cyclops/internal/lint/analysis"
)

// SlotAddr locks in the PR 9 CSR migration inside the engine packages:
// vertex state is slot-addressed — a layout slot is a dense array index
// assigned by partition.Layout, and every superstep-loop access is a flat
// array load. A map[graph.ID] probe on that path gives back the hash, the
// bucket walk, and the cache misses the CSR refactor removed; a range over
// an ID-keyed map additionally reintroduces randomized iteration order,
// which the determinism analyzer polices separately.
//
// graph.ID is an alias of uint32, so the analyzer keys on the underlying
// type: any map whose key's underlying type is uint32 counts as ID-keyed.
// Setup and teardown paths (building layouts, auditing partitions, restoring
// checkpoints) legitimately use ID-keyed maps — annotate those sites with
// //lint:allow slotaddr <reason>.
var SlotAddr = &analysis.Analyzer{
	Name: "slotaddr",
	Doc: "flag map[graph.ID] indexing and ranges over ID-keyed maps in the engine packages: superstep " +
		"loops are slot-addressed flat-array accesses after the CSR migration (PR 9)",
	Run: runSlotAddr,
}

// slotAddrScope is the engine packages whose inner loops the CSR migration
// flattened. The transport is excluded: it never sees vertex ids, only
// opaque message batches.
var slotAddrScope = []string{
	"cyclops/internal/bsp",
	"cyclops/internal/cyclops",
	"cyclops/internal/gas",
}

func inSlotAddrScope(path string) bool {
	for _, p := range slotAddrScope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runSlotAddr(pass *analysis.Pass) (any, error) {
	if !inSlotAddrScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if idKeyedMap(pass.TypesInfo.TypeOf(n.X)) {
					pass.Reportf(n.Pos(),
						"map[graph.ID] probe %s in engine code: vertex state is slot-addressed after the "+
							"CSR migration (PR 9) — index a flat array by layout slot, or annotate a "+
							"setup/teardown path with //lint:allow", exprText(n))
				}
			case *ast.RangeStmt:
				if idKeyedMap(pass.TypesInfo.TypeOf(n.X)) {
					pass.Reportf(n.Pos(),
						"range over an ID-keyed map in engine code: superstep loops iterate slots 0..n in "+
							"layout order (PR 9); an ID-map walk re-adds hashing and randomized order — "+
							"annotate a setup/teardown path with //lint:allow")
				}
			}
			return true
		})
	}
	return nil, nil
}

// idKeyedMap reports whether t is a map keyed by graph.ID. graph.ID is a
// type alias (`type ID = uint32`), so after alias resolution the key is the
// basic type uint32; named key types with underlying uint32 also count.
func idKeyedMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	b, ok := m.Key().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint32
}
