package lint_test

import (
	"testing"

	"cyclops/internal/lint"
	"cyclops/internal/lint/analysistest"
)

func TestSlotAddr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.SlotAddr,
		"cyclops/internal/bsp/slotaddr", // engine package path: findings expected
		"outofscope",                    // tooling package: analyzer must stay silent
	)
}
