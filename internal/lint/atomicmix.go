package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cyclops/internal/lint/analysis"
)

// AtomicMix enforces a single access discipline per variable: a field or
// variable whose address is ever passed to a sync/atomic function must be
// accessed through sync/atomic everywhere. Mixed access is a data race the
// race detector only sees on exercised interleavings — the engines'
// lock-free activation flags (ws.next) and the transport counters are
// exactly the places where a missed racy read silently corrupts a recorded
// series.
//
// Composite-literal field keys are exempt (construction happens-before
// everything), and barrier-protected plain access is annotated in source
// with //lint:allow atomicmix <why the happens-before edge exists>.
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag plain reads/writes of variables that are elsewhere accessed via sync/atomic " +
		"(mixed access is a data race the race detector only catches on exercised schedules)",
	Run: runAtomicMix,
}

// atomicFuncs are the sync/atomic package functions whose first argument is
// the address of the protected variable.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicMix(pass *analysis.Pass) (any, error) {
	// Pass 1: collect every variable whose address feeds sync/atomic,
	// remembering the first atomic site for the diagnostic.
	atomicVars := map[*types.Var]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || !atomicFuncs[fn.Name()] {
				return true
			}
			if v := addressedVar(pass, call.Args[0]); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil, nil
	}

	// Pass 2: flag every other use of those variables that is not itself an
	// argument of a sync/atomic call.
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			first, isAtomic := atomicVars[v]
			if !isAtomic {
				return true
			}
			if usedInsideAtomicCall(pass, stack) || isCompositeLitKey(id, stack) {
				return true
			}
			pass.Reportf(id.Pos(),
				"non-atomic access of %s, which is accessed via sync/atomic at %s; mixed access is a "+
					"data race unless a barrier provides the happens-before edge (then //lint:allow it)",
				id.Name, pass.Fset.Position(first))
			return true
		})
	}
	return nil, nil
}

// addressedVar resolves &expr (possibly through an index expression) to the
// variable object whose storage the atomic call touches: &x → x,
// &s.f → field f, &s.f[i] → field f.
func addressedVar(pass *analysis.Pass, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return nil // an atomic.Pointer/Int64 method value etc.; typed atomics can't mix
	}
	inner := ast.Unparen(un.X)
	if idx, ok := inner.(*ast.IndexExpr); ok {
		inner = ast.Unparen(idx.X)
	}
	switch e := inner.(type) {
	case *ast.Ident:
		v, _ := pass.TypesInfo.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// usedInsideAtomicCall reports whether the innermost enclosing call in stack
// is a sync/atomic function — any argument position counts (value args of
// CompareAndSwap etc. are part of the atomic protocol).
func usedInsideAtomicCall(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn != nil && funcPkgPath(fn) == "sync/atomic" && atomicFuncs[fn.Name()] {
			return true
		}
	}
	return false
}

// isCompositeLitKey reports whether id is the field name of a composite
// literal (workerState{next: ...}): construction precedes sharing.
func isCompositeLitKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-3].(*ast.CompositeLit)
	return ok
}
