package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cyclops/internal/lint/analysis"
)

// TransportErr enforces the PR 4 transport-error taxonomy at every call
// site:
//
//   - an error returned by a cyclops/internal/transport method (Close, Err,
//     New, ...) must not be silently dropped — a swallowed ErrRoundViolation
//     or ErrClosed turns a protocol breach into a hang several supersteps
//     later. An explicit `_ =` discard or an //lint:allow directive records
//     intent; a bare call or `defer`/`go` statement does not.
//   - transport failures must be classified with errors.Is / errors.As
//     against the typed taxonomy (transport.Error, ErrClosed,
//     ErrRoundViolation, Transient()), never by matching err.Error() text —
//     message strings carry peer ids and wrapped causes and are not stable.
//   - error sentinels that taxonomy is built from must be constructed with
//     errors.New, not a verb-less fmt.Errorf: identity is the contract, and
//     a format call that formats nothing signals the wrong intent (and
//     invites someone to add a verb, silently destabilizing the sentinel).
var TransportErr = &analysis.Analyzer{
	Name: "transporterr",
	Doc: "flag dropped errors from transport methods and string-matching on error text instead of " +
		"errors.Is/As with the typed transport taxonomy (PR 4)",
	Run: runTransportErr,
}

func runTransportErr(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		checkSentinelStyle(pass, f)
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedTransportErr(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDroppedTransportErr(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkDroppedTransportErr(pass, n.Call, "go ")
			case *ast.BinaryExpr:
				checkErrStringCompare(pass, n)
			case *ast.CallExpr:
				checkErrStringContains(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkDroppedTransportErr reports a statement that invokes a transport
// function returning an error and ignores the result entirely.
func checkDroppedTransportErr(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || funcPkgPath(fn) != transportPkgPath {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, errorType) {
		return
	}
	pass.Reportf(call.Pos(),
		"%serror from transport.%s dropped: a swallowed ErrClosed/ErrRoundViolation surfaces as a hang "+
			"supersteps later; check it, or discard explicitly with `_ =`", how, fn.Name())
}

// isErrorTextCall reports whether e is a call to the Error() string method
// of a value implementing the error interface.
func isErrorTextCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return implementsError(pass.TypesInfo.TypeOf(sel.X))
}

// checkErrStringCompare flags `err.Error() == "..."`-style comparisons.
func checkErrStringCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isErrorTextCall(pass, b.X) || isErrorTextCall(pass, b.Y) {
		pass.Reportf(b.Pos(),
			"comparing err.Error() text: transport failures carry peer ids and wrapped causes; "+
				"classify with errors.Is/As against transport.Error/ErrClosed/ErrRoundViolation")
	}
}

// stringMatchFuncs are the strings-package predicates whose use on error
// text means someone is parsing a message instead of the taxonomy.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"Index": true, "EqualFold": true,
}

// checkErrStringContains flags strings.Contains(err.Error(), ...) and
// friends.
func checkErrStringContains(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || funcPkgPath(fn) != "strings" || !stringMatchFuncs[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorTextCall(pass, arg) {
			pass.Reportf(call.Pos(),
				"strings.%s on err.Error() text: classify transport failures with errors.Is/As "+
					"against the typed taxonomy (transport.Error, ErrClosed, ErrRoundViolation)", fn.Name())
			return
		}
	}
}
