package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"cyclops/internal/lint/analysis"
)

// HookBalance enforces the observability layer's pairing contract: a
// function that fires an obs.Hooks begin callback must fire the matching end
// callback on every return path. A run that exits through an error return
// without OnConverged, or a superstep that ends without OnSuperstepEnd,
// silently truncates traces, recorder series and the /metrics registry — the
// flight recorder then diffs clean against a baseline that never saw the
// failure.
//
// Pairs: OnRunStart→OnConverged, OnSuperstepStart→OnSuperstepEnd,
// OnSuperstepStart→OnHeat (each started superstep must report per-partition
// heat, or the heat map gets holes and straggler root-causing comes up
// "unknown"), OnSpanStart→OnSpanEnd (causal spans announced open must be
// closed on every exit, or waterfalls and the critical-path analyzer see
// dangling spans). A begin callback may carry more than one end obligation;
// every listed pair is enforced independently.
//
// Coverage is judged structurally, per return statement: a return after a
// begin call is covered when an end call appears in a preceding sibling
// statement at some enclosing block level, where the end call is
// unconditional within that sibling apart from the standard nil-hooks guard
// (`if hooks != nil { hooks.OnX(...) }`). An end call reached only inside an
// unrelated branch does not cover returns outside that branch. A deferred
// end call covers everything.
var HookBalance = &analysis.Analyzer{
	Name: "hookbalance",
	Doc: "flag return paths that fire an obs.Hooks begin callback (OnRunStart, OnSuperstepStart, OnSpanStart) " +
		"without the matching end callback (OnConverged, OnSuperstepEnd, OnHeat, OnSpanEnd), which silently truncates traces",
	Run: runHookBalance,
}

// hookPairs lists each begin callback with a required end callback. A begin
// may appear more than once (OnSuperstepStart owes both OnSuperstepEnd and
// OnHeat); each pair is checked independently.
var hookPairs = []struct{ begin, end string }{
	{"OnRunStart", "OnConverged"},
	{"OnSuperstepStart", "OnSuperstepEnd"},
	{"OnSuperstepStart", "OnHeat"},
	{"OnSpanStart", "OnSpanEnd"},
}

type hookCall struct {
	call     *ast.CallExpr
	name     string
	recvText string
	deferred bool
}

func runHookBalance(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == obsPkgPath {
		return nil, nil // the obs package itself holds the forwarders and no-ops
	}
	for _, f := range pass.Files {
		// Group hook calls and returns by innermost enclosing function: a
		// goroutine body is its own balance scope.
		calls := map[ast.Node][]hookCall{}
		returns := map[ast.Node][]*ast.ReturnStmt{}
		parents := map[ast.Node]ast.Node{}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			if len(stack) >= 2 {
				parents[n] = stack[len(stack)-2]
			}
			fn := enclosingFunc(stack[:max(len(stack)-1, 0)])
			switch n := n.(type) {
			case *ast.CallExpr:
				hc, ok := obsHookCall(pass, n)
				if !ok || fn == nil {
					return true
				}
				if d, ok := stack[len(stack)-2].(*ast.DeferStmt); ok && d.Call == n {
					hc.deferred = true
				}
				calls[fn] = append(calls[fn], hc)
			case *ast.ReturnStmt:
				if fn != nil {
					returns[fn] = append(returns[fn], n)
				}
			}
			return true
		})
		for fn, fnCalls := range calls {
			if isHookMethod(fn) {
				continue // Hooks implementations and forwarders are the callee side
			}
			checkHookFunction(pass, fn, fnCalls, returns[fn], parents)
		}
	}
	return nil, nil
}

// obsHookCall recognizes a call to an obs.Hooks begin or end method.
func obsHookCall(pass *analysis.Pass, call *ast.CallExpr) (hookCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return hookCall{}, false
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || funcPkgPath(fn) != obsPkgPath {
		return hookCall{}, false
	}
	name := fn.Name()
	isBegin, isEnd := false, false
	for _, p := range hookPairs {
		if name == p.begin {
			isBegin = true
		}
		if name == p.end {
			isEnd = true
		}
	}
	if !isBegin && !isEnd {
		return hookCall{}, false
	}
	return hookCall{call: call, name: name, recvText: exprText(sel.X)}, true
}

// isHookMethod reports whether fn is itself an On* method — an obs.Hooks
// implementation (tracer, recorder, fan-out) rather than an engine caller.
func isHookMethod(fn ast.Node) bool {
	d, ok := fn.(*ast.FuncDecl)
	return ok && d.Recv != nil && strings.HasPrefix(d.Name.Name, "On")
}

func checkHookFunction(pass *analysis.Pass, fn ast.Node, calls []hookCall, rets []*ast.ReturnStmt, parents map[ast.Node]ast.Node) {
	for _, p := range hookPairs {
		begin, end := p.begin, p.end
		var beginCalls, endCalls []hookCall
		deferredEnd := false
		for _, c := range calls {
			switch c.name {
			case begin:
				beginCalls = append(beginCalls, c)
			case end:
				endCalls = append(endCalls, c)
				if c.deferred {
					deferredEnd = true
				}
			}
		}
		if len(beginCalls) == 0 || deferredEnd {
			continue
		}
		if len(endCalls) == 0 {
			pass.Reportf(beginCalls[0].call.Pos(),
				"%s is called but %s never is in this function: every begin hook needs its end hook "+
					"or traces silently lose the phase", begin, end)
			continue
		}
		for _, ret := range rets {
			reached := false
			for _, b := range beginCalls {
				if b.call.Pos() < ret.Pos() && beginReaches(b, ret, parents, fn) {
					reached = true
					break
				}
			}
			if !reached {
				continue
			}
			if !returnCovered(pass, ret, end, parents, fn) {
				pass.Reportf(ret.Pos(),
					"return path after %s without %s: the run/superstep vanishes from traces and the "+
						"flight record diffs clean against a baseline that never saw this exit", begin, end)
			}
		}
	}
}

// beginReaches reports whether the begin call is guaranteed to have executed
// when control stands at ret: walking up from the call, every enclosing
// construct until a shared ancestor with ret must be either structural or
// the nil-hooks guard. A begin inside a loop or unrelated branch imposes no
// obligation on returns outside it (the loop may have run zero times).
func beginReaches(b hookCall, ret *ast.ReturnStmt, parents map[ast.Node]ast.Node, fn ast.Node) bool {
	ancestors := map[ast.Node]bool{}
	for n := parents[ast.Node(ret)]; n != nil; n = parents[n] {
		ancestors[n] = true
		if n == fn {
			break
		}
	}
	for n := parents[ast.Node(b.call)]; n != nil && n != fn; n = parents[n] {
		if ancestors[n] {
			return true
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if !isNilGuardFor(n, b.recvText) {
				return false
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.SelectStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			return false
		}
	}
	return false
}

// returnCovered walks from ret up through its enclosing statement lists; a
// preceding sibling statement that unconditionally (modulo the nil-hooks
// guard) performs the end call covers the return.
func returnCovered(pass *analysis.Pass, ret *ast.ReturnStmt, end string, parents map[ast.Node]ast.Node, fn ast.Node) bool {
	var child ast.Node = ret
	for node := parents[ret]; node != nil && node != fn; child, node = node, parents[node] {
		list := stmtList(node)
		if list == nil {
			continue
		}
		for _, s := range list {
			if s == child {
				break
			}
			if stmtProvidesEnd(pass, s, end) {
				return true
			}
		}
	}
	return false
}

// stmtList returns the statement list a node contributes sibling ordering
// to, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// stmtProvidesEnd reports whether stmt performs the end call on every path
// through it that falls through to the next statement. Conservatively, the
// end call may sit inside nested `if X != nil`/`if nil != X` guards whose
// condition tests the call's own receiver chain (the canonical
// `if hooks != nil { hooks.OnConverged(...) }`), but inside no other
// conditional or loop, and not in an else branch.
func stmtProvidesEnd(pass *analysis.Pass, stmt ast.Stmt, end string) bool {
	found := false
	analysis.WithStack(stmt, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		hc, ok := obsHookCall(pass, call)
		if !ok || hc.name != end {
			return true
		}
		if endGuardChainOK(hc, stack) {
			found = true
		}
		return true
	})
	return found
}

// endGuardChainOK verifies every conditional between the end call and the
// statement root is a nil-guard on the call's receiver, with the call on the
// then-side.
func endGuardChainOK(hc hookCall, stack []ast.Node) bool {
	// stack[0] is the statement root, stack[len-1] the call.
	for i := 0; i < len(stack)-1; i++ {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if !isNilGuardFor(n, hc.recvText) {
				return false
			}
			// The call must be under the then-branch, not the else.
			if i+1 < len(stack) && stack[i+1] == n.Else {
				return false
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.SelectStmt, *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
	}
	return true
}

// isNilGuardFor reports whether ifStmt's condition is `recv != nil` (either
// operand order) for the receiver expression text, with no init statement
// that could shadow it.
func isNilGuardFor(ifStmt *ast.IfStmt, recvText string) bool {
	b, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return false
	}
	x, y := exprText(b.X), exprText(b.Y)
	if x == "nil" {
		x, y = y, x
	}
	if y != "nil" {
		return false
	}
	// The guard must test the receiver or a prefix of its chain
	// (`e.cfg.Hooks != nil { e.cfg.Hooks.OnConverged(...) }`).
	return x == recvText || strings.HasPrefix(recvText, x+".")
}
