package lint

import (
	"go/ast"
	"sort"

	"cyclops/internal/lint/analysis"
)

// SendLocked forbids calling transport.Send or transport.FinishRound while
// holding a sync.Mutex/RWMutex. Send on the TCP transport can block on a
// slow peer's socket and FinishRound participates in the round barrier; a
// lock held across either is the distributed-deadlock class the RPC
// hardening work (PR 4) could only bound with timeouts at runtime — worker A
// blocks in Send holding the lock worker B needs before B can Drain.
//
// The check is lexical within one function body: a Lock() on some receiver
// with no intervening Unlock() before the Send marks the send as
// lock-holding. `defer mu.Unlock()` keeps the lock held to the end of the
// function, so every later Send in that function is flagged.
var SendLocked = &analysis.Analyzer{
	Name: "sendlocked",
	Doc: "flag transport.Send/FinishRound calls made while holding a sync mutex " +
		"(a blocking send under a lock is the barrier-deadlock class PR 4 bounded with timeouts)",
	Run: runSendLocked,
}

type lockEvent struct {
	pos      int // file offset order within the function
	node     ast.Node
	kind     lockKind
	key      string // printed receiver expression, e.g. "t.encMu[from]"
	deferred bool
}

type lockKind int

const (
	evLock lockKind = iota
	evUnlock
	evSend
)

func runSendLocked(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		events := map[ast.Node][]lockEvent{}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := enclosingFunc(stack[:len(stack)-1])
			if fn == nil {
				return true
			}
			ev, ok := classifyLockEvent(pass, call, stack)
			if !ok {
				return true
			}
			ev.pos = int(call.Pos())
			events[fn] = append(events[fn], ev)
			return true
		})
		for _, evs := range events {
			reportLockedSends(pass, evs)
		}
	}
	return nil, nil
}

func classifyLockEvent(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) (lockEvent, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return lockEvent{}, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	switch funcPkgPath(fn) {
	case "sync":
		if !isSel {
			return lockEvent{}, false
		}
		deferred := false
		if len(stack) >= 2 {
			if d, ok := stack[len(stack)-2].(*ast.DeferStmt); ok && d.Call == call {
				deferred = true
			}
		}
		switch fn.Name() {
		case "Lock", "RLock":
			return lockEvent{node: call, kind: evLock, key: exprText(sel.X), deferred: deferred}, true
		case "Unlock", "RUnlock":
			return lockEvent{node: call, kind: evUnlock, key: exprText(sel.X), deferred: deferred}, true
		}
	case transportPkgPath:
		switch fn.Name() {
		case "Send", "FinishRound":
			return lockEvent{node: call, kind: evSend, key: fn.Name()}, true
		}
	}
	return lockEvent{}, false
}

// reportLockedSends replays the function's lock/unlock/send events in source
// order, tracking which mutexes are held. A deferred Unlock never releases
// (the lock is held until the function returns), matching the
// lock-then-defer idiom.
func reportLockedSends(pass *analysis.Pass, evs []lockEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	held := map[string]bool{}
	for _, ev := range evs {
		switch ev.kind {
		case evLock:
			if !ev.deferred { // `defer mu.Lock()` is nonsense; ignore
				held[ev.key] = true
			}
		case evUnlock:
			if !ev.deferred {
				delete(held, ev.key)
			}
		case evSend:
			if len(held) > 0 {
				keys := make([]string, 0, len(held))
				for k := range held {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				pass.Reportf(ev.node.Pos(),
					"transport.%s called while holding %v: a blocking send under a lock can deadlock "+
						"the round barrier (release before sending)", ev.key, keys)
			}
		}
	}
}
