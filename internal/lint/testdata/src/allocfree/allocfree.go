// Package allocfree exercises the allocfree analyzer: functions annotated
// //lint:hotpath must not allocate — no make/new, no fresh-slice appends,
// no string<->[]byte conversions, no interface boxing, no closures or
// goroutines, nothing from fmt/errors/reflect.
package allocfree

import "errors"

func box(v any) {}

func send(c chan int) { c <- 1 }

// appendFrame is the arena idiom — self-extending appends and a direct
// return: the analyzer stays silent.
//
//lint:hotpath
func appendFrame(dst []byte, v byte) []byte {
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, v)
	return append(dst, 1)
}

// hotAlloc allocates four different ways: true positives.
//
//lint:hotpath
func hotAlloc(src []byte, n int) string {
	buf := make([]byte, n)             // want `calls make, which allocates`
	fresh := append(buf[:0:0], src...) // want `appends into a fresh variable`
	_ = fresh
	box(n)             // want `passes a concrete int`
	return string(src) // want `converts between string and \[\]byte`
}

// hotClosure defines a closure on the hot path: true positive.
//
//lint:hotpath
func hotClosure(xs []int) func() int {
	f := func() int { return len(xs) } // want `defines a closure`
	return f
}

// hotSpawn starts a goroutine on the hot path: true positive.
//
//lint:hotpath
func hotSpawn(c chan int) {
	go send(c) // want `spawns a goroutine`
}

// hotLits builds allocating literals: true positives.
//
//lint:hotpath
func hotLits(k string, n int) map[string]int {
	ks := []string{k} // want `builds a slice composite literal`
	_ = ks
	return map[string]int{k: n} // want `builds a map composite literal`
}

// hotErr constructs an error per call: true positive.
//
//lint:hotpath
func hotErr() error {
	return errors.New("hot") // want `calls errors\.New`
}

// coldAlloc has no annotation: allocation off the hot path is fine.
func coldAlloc(n int) []byte {
	return make([]byte, n)
}

type header struct{ n int }

// hotOK sticks to stack values, numeric conversions and arena appends: the
// analyzer stays silent.
//
//lint:hotpath
func hotOK(dst []byte, v uint32) []byte {
	h := header{n: int(v)}
	dst = append(dst, byte(h.n))
	return dst
}

// hotGrow's one-time buffer sizing is acknowledged: the allow suppresses
// the finding and is counted by the driver.
//
//lint:hotpath
func hotGrow(n int) []byte {
	return make([]byte, 0, n) //lint:allow allocfree one-time arena sizing before the first round
}
