// Package codecsym exercises the codecsym analyzer: the EncodedSize /
// Append / Decode triple of every codec-shaped type must agree on byte
// counts, length terms and branch structure, stay off BigEndian and the
// reflective encoders, and build its sentinels with errors.New.
package codecsym

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var errShort = errors.New("codecsym: short buffer")

var errLegacy = fmt.Errorf("codecsym: legacy short buffer") // want `verb-less fmt.Errorf`

var errDetailed = fmt.Errorf("codecsym: bad kind %d", 3) // verbs present: a formatted message, not a sentinel

type pair struct{ A, B uint32 }

// driftCodec writes 8 bytes but sizes (and consumes) 12: true positives.
type driftCodec struct{}

func (driftCodec) EncodedSize(p pair) int { return 12 }

func (driftCodec) Append(dst []byte, p pair) []byte { // want `Append writes 8 bytes but EncodedSize returns 12`
	dst = binary.LittleEndian.AppendUint32(dst, p.A)
	return binary.LittleEndian.AppendUint32(dst, p.B)
}

func (driftCodec) Decode(src []byte) (pair, int, error) {
	if len(src) < 8 {
		return pair{}, 0, errShort
	}
	return pair{binary.LittleEndian.Uint32(src), binary.LittleEndian.Uint32(src[4:])}, 12, nil // want `Decode reports consuming 12 bytes on success but Append writes 8`
}

// vecCodec encodes a variable-length vector but sizes it with a constant:
// true positive on EncodedSize.
type vecCodec struct{}

func (vecCodec) EncodedSize(m []uint32) int { return 4 } // want `vecCodec\.Append is length-dependent`

func (vecCodec) Append(dst []byte, m []uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m)))
	for _, v := range m {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

func (vecCodec) Decode(src []byte) ([]uint32, int, error) {
	if len(src) < 4 {
		return nil, 0, errShort
	}
	n := int(binary.LittleEndian.Uint32(src))
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(src[4+4*i:])
	}
	return out, 4 + 4*n, nil
}

// textCodec reaches for BigEndian and fmt on the codec path: true
// positives.
type textCodec struct{}

func (textCodec) EncodedSize(m uint32) int { return 4 }

func (textCodec) Append(dst []byte, m uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, m) // want `uses binary\.BigEndian`
}

func (textCodec) Decode(src []byte) (uint32, int, error) {
	if len(src) < 4 {
		return 0, 0, fmt.Errorf("short: %d", len(src)) // want `uses fmt on a codec path`
	}
	return binary.BigEndian.Uint32(src), 4, nil // want `uses binary\.BigEndian`
}

type tagged struct {
	Wide bool
	V    uint64
}

// taggedCodec encodes two arms but sizes and decodes straight-line: true
// positives on EncodedSize and Decode.
type taggedCodec struct{}

func (taggedCodec) EncodedSize(t tagged) int { return 9 } // want `Append encodes differently across branches but EncodedSize is branch-free`

func (taggedCodec) Append(dst []byte, t tagged) []byte {
	if t.Wide {
		dst = append(dst, 1)
		return binary.LittleEndian.AppendUint64(dst, t.V)
	}
	dst = append(dst, 0)
	return binary.LittleEndian.AppendUint32(dst, uint32(t.V))
}

func (taggedCodec) Decode(src []byte) (tagged, int, error) { // want `Append encodes differently across branches but Decode is branch-free`
	return tagged{Wide: src[0] == 1, V: binary.LittleEndian.Uint64(src[1:])}, 9, nil
}

// okFixed is a symmetric fixed-width codec: the analyzer stays silent.
type okFixed struct{}

func (okFixed) EncodedSize(m uint32) int { return 4 }

func (okFixed) Append(dst []byte, m uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, m)
}

func (okFixed) Decode(src []byte) (uint32, int, error) {
	if len(src) < 4 {
		return 0, 0, errShort
	}
	return binary.LittleEndian.Uint32(src), 4, nil
}

// okVec is a symmetric length-dependent codec: the analyzer stays silent.
type okVec struct{}

func (okVec) EncodedSize(m []uint32) int { return 4 + 4*len(m) }

func (okVec) Append(dst []byte, m []uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m)))
	for _, v := range m {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

func (okVec) Decode(src []byte) ([]uint32, int, error) {
	if len(src) < 4 {
		return nil, 0, errShort
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+4*n {
		return nil, 0, errShort
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(src[4+4*i:])
	}
	return out, 4 + 4*n, nil
}

// buffer carries only part of the codec triple: not a codec, so its
// asymmetry is none of the analyzer's business.
type buffer struct{}

func (buffer) EncodedSize(m uint32) int { return 99 }

func (buffer) Append(dst []byte, m uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, m)
}

// legacyCodec's drift is acknowledged during a format migration: the allow
// suppresses the finding and is counted by the driver.
type legacyCodec struct{}

func (legacyCodec) EncodedSize(m uint32) int { return 8 }

//lint:allow codecsym migrating to the 8-byte wide format in the next wire revision
func (legacyCodec) Append(dst []byte, m uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, m)
}

func (legacyCodec) Decode(src []byte) (uint32, int, error) {
	if len(src) < 4 {
		return 0, 0, errShort
	}
	return binary.LittleEndian.Uint32(src), 4, nil
}
