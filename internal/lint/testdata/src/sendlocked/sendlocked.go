// Package sendlocked exercises the sendlocked analyzer: no transport sends
// while holding a mutex.
package sendlocked

import (
	"sync"

	"cyclops/internal/transport"
)

type worker struct {
	mu sync.Mutex
	rw sync.RWMutex
	tr transport.Interface[int]
}

func (w *worker) sendUnderLock(batch []int) {
	w.mu.Lock()
	w.tr.Send(0, 1, batch) // want `transport.Send called while holding \[w.mu\]`
	w.mu.Unlock()
}

func (w *worker) finishUnderDeferredUnlock() {
	w.mu.Lock()
	defer w.mu.Unlock() // the lock is held until return...
	w.tr.FinishRound(0) // want `transport.FinishRound called while holding \[w.mu\]`
}

func (w *worker) readLockCounts(batch []int) {
	w.rw.RLock()
	w.tr.Send(0, 1, batch) // want `transport.Send called while holding \[w.rw\]`
	w.rw.RUnlock()
}

func (w *worker) releaseBeforeSend(batch []int) {
	w.mu.Lock()
	staged := append([]int(nil), batch...)
	w.mu.Unlock()
	w.tr.Send(0, 1, staged) // lock released first: legal
	w.tr.FinishRound(0)
}

func (w *worker) lockAfterSend(batch []int) {
	w.tr.Send(0, 1, batch) // send precedes the lock: legal
	w.mu.Lock()
	w.mu.Unlock()
}

// goroutineScopesAreSeparate: the closure runs on its own stack; the
// enclosing function's lock state does not apply to it lexically.
func (w *worker) goroutineScopesAreSeparate(batch []int) {
	w.mu.Lock()
	go func() {
		w.tr.Send(0, 1, batch) // own function scope, no lock taken here: legal
	}()
	w.mu.Unlock()
}

func (w *worker) annotated(batch []int) {
	w.mu.Lock()
	//lint:allow sendlocked golden-test exercise of the allow directive
	w.tr.Send(0, 1, batch)
	w.mu.Unlock()
}
