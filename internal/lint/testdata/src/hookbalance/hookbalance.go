// Package hookbalance exercises the hookbalance analyzer: begin hooks need
// their end hooks on every return path.
package hookbalance

import (
	"errors"

	"cyclops/internal/obs"
)

func cond() bool  { return false }
func cond2() bool { return false }

// earlyReturnLosesEnd is the engine bug class: an error return between
// OnRunStart and OnConverged truncates the trace.
func earlyReturnLosesEnd(h obs.Hooks) error {
	h.OnRunStart(obs.RunInfo{})
	if cond() {
		return errors.New("checkpoint failed") // want `return path after OnRunStart without OnConverged`
	}
	h.OnConverged(0, "done")
	return nil
}

// guardedPairing is the engines' canonical shape: every exit fires the end
// hook under the standard nil guard first.
func guardedPairing(h obs.Hooks) error {
	if h != nil {
		h.OnRunStart(obs.RunInfo{})
	}
	if cond() {
		if h != nil {
			h.OnConverged(0, "fault")
		}
		return errors.New("fault")
	}
	if h != nil {
		h.OnConverged(0, "done")
	}
	return nil
}

// branchOnlyEndDoesNotCover: an end call inside one branch does not excuse a
// return in a different branch.
func branchOnlyEndDoesNotCover(h obs.Hooks) error {
	h.OnRunStart(obs.RunInfo{})
	if cond() {
		h.OnConverged(0, "early")
		return nil
	}
	if cond2() {
		return errors.New("fault") // want `return path after OnRunStart without OnConverged`
	}
	h.OnConverged(0, "done")
	return nil
}

// neverEnds never fires either of OnSuperstepStart's end hooks: the superstep
// owes both OnSuperstepEnd and OnHeat, so both obligations fire.
func neverEnds(h obs.Hooks) {
	h.OnSuperstepStart(1) // want `OnSuperstepStart is called but OnSuperstepEnd never` `OnSuperstepStart is called but OnHeat never`
}

// deferredEndCoversAll: a deferred end hook covers every return path.
func deferredEndCoversAll(h obs.Hooks) error {
	h.OnRunStart(obs.RunInfo{})
	defer h.OnConverged(0, "done")
	if cond() {
		return errors.New("fault")
	}
	return nil
}

// supersteps pairs OnSuperstepStart with OnHeat and OnSuperstepEnd per
// iteration — the engines' barrier shape; the final return is covered by the
// end calls that precede it inside the loop... but an in-loop error return
// skips both.
func supersteps(h obs.Hooks) error {
	for step := 0; step < 3; step++ {
		h.OnSuperstepStart(step)
		if cond() {
			return errors.New("fault") // want `return path after OnSuperstepStart without OnSuperstepEnd` `return path after OnSuperstepStart without OnHeat`
		}
		h.OnHeat(obs.HeatStepData{Step: step})
		h.OnSuperstepEnd(step, 0)
	}
	return nil
}

// heatNeverReported pairs OnSuperstepStart/OnSuperstepEnd correctly but never
// reports heat: the superstep appears in traces yet leaves a hole in the heat
// map, so straggler root-causing comes up "unknown".
func heatNeverReported(h obs.Hooks) error {
	h.OnSuperstepStart(0) // want `OnSuperstepStart is called but OnHeat never`
	if cond() {
		h.OnSuperstepEnd(0, 0)
		return errors.New("fault")
	}
	h.OnSuperstepEnd(0, 0)
	return nil
}

// heatGuardedPairing is the engines' canonical barrier shape: heat and the
// superstep end both fire under the standard nil guard before every exit.
func heatGuardedPairing(h obs.Hooks) error {
	if h != nil {
		h.OnSuperstepStart(0)
	}
	if cond() {
		if h != nil {
			h.OnHeat(obs.HeatStepData{})
			h.OnSuperstepEnd(0, 0)
		}
		return errors.New("fault")
	}
	if h != nil {
		h.OnHeat(obs.HeatStepData{})
		h.OnSuperstepEnd(0, 0)
	}
	return nil
}

// unpairedHooksAreFree: OnWorkerStats, OnViolation etc. have no pairing
// contract.
func unpairedHooksAreFree(h obs.Hooks) error {
	h.OnWorkerStats(obs.WorkerStats{Worker: 1})
	if cond() {
		return errors.New("fine")
	}
	h.OnViolation(obs.Violation{})
	return nil
}

// annotated exercises the allow directive.
func annotated(h obs.Hooks) error {
	h.OnRunStart(obs.RunInfo{})
	if cond() {
		//lint:allow hookbalance golden-test exercise of the allow directive
		return errors.New("fault")
	}
	h.OnConverged(0, "done")
	return nil
}

// spanEarlyReturnLosesEnd: a span announced open must be closed on every
// exit, or waterfalls and the critical-path analyzer see a dangling span.
func spanEarlyReturnLosesEnd(h obs.Hooks) error {
	h.OnSpanStart(obs.Span{ID: 1})
	if cond() {
		return errors.New("transport died") // want `return path after OnSpanStart without OnSpanEnd`
	}
	h.OnSpanEnd(obs.Span{ID: 1})
	return nil
}

// spanNeverEnds never closes the announced span at all.
func spanNeverEnds(h obs.Hooks) {
	h.OnSpanStart(obs.Span{ID: 2}) // want `OnSpanStart is called but OnSpanEnd never`
}

// spanGuardedPairing is the engines' canonical shape: the run span opens and
// closes under the standard nil guard on every exit.
func spanGuardedPairing(h obs.Hooks) error {
	if h != nil {
		h.OnSpanStart(obs.Span{ID: 3})
	}
	if cond() {
		if h != nil {
			h.OnSpanEnd(obs.Span{ID: 3})
		}
		return errors.New("fault")
	}
	if h != nil {
		h.OnSpanEnd(obs.Span{ID: 3})
	}
	return nil
}

// spanDeferredEndCoversAll: a deferred close covers every return path.
func spanDeferredEndCoversAll(h obs.Hooks) error {
	h.OnSpanStart(obs.Span{ID: 4})
	defer h.OnSpanEnd(obs.Span{ID: 4})
	if cond() {
		return errors.New("fault")
	}
	return nil
}

// implementations of the Hooks interface (On* methods) are the callee side
// and exempt: a fan-out forwarder legitimately calls only its own hook.
type forwarder struct{ inner []obs.Hooks }

func (f *forwarder) OnRunStart(info obs.RunInfo) {
	for _, h := range f.inner {
		h.OnRunStart(info)
	}
}
