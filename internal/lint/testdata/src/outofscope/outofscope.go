// Package outofscope proves the determinism analyzer keeps out of packages
// that are not engine or transport code: wall-clock and map iteration are
// fine in tooling.
package outofscope

import "time"

func Stamp() time.Time { return time.Now() }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Iterate(m map[string]int, f func(string, int)) {
	for k, v := range m {
		f(k, v)
	}
}
