// ID-keyed maps outside the engine packages are tooling and test helpers;
// the slotaddr analyzer must stay silent here (and so must determinism,
// which shares this out-of-scope fixture).
package outofscope

var vertexCount = map[uint32]int{}

func countVertex(id uint32) {
	vertexCount[id]++
}

func totalVertices() int {
	total := 0
	for _, n := range vertexCount {
		total += n
	}
	return total
}
