// Package atomicmix exercises the atomicmix analyzer: variables touched by
// sync/atomic must be atomic everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   uint32 // atomic
	misses uint32 // atomic
	name   string // plain, never atomic
}

func bump(c *counters) {
	atomic.AddUint32(&c.hits, 1)
	atomic.AddUint32(&c.misses, 1)
}

func mixed(c *counters) uint32 {
	if c.hits > 0 { // want `non-atomic access of hits`
		c.hits = 0 // want `non-atomic access of hits`
	}
	return atomic.LoadUint32(&c.misses) // consistent atomic read: legal
}

func plainFieldIsFine(c *counters) string {
	return c.name // never accessed atomically anywhere: legal
}

func construction() *counters {
	return &counters{hits: 1, misses: 2} // composite-literal init happens-before sharing: legal
}

type workerState struct {
	next []uint32 // atomic element stores during the parallel phase
}

func activate(ws *workerState, ls int) {
	atomic.StoreUint32(&ws.next[ls], 1)
}

func barrier(ws *workerState) int {
	var n int
	for s := range ws.next { // want `non-atomic access of next`
		if ws.next[s] != 0 { // want `non-atomic access of next`
			n++
			ws.next[s] = 0 // want `non-atomic access of next`
		}
	}
	//lint:allow atomicmix single-threaded after the superstep barrier (golden-test allow)
	ws.next[0] = 0
	return n
}

// sameNameOtherType proves object identity, not field names, drives the
// check: this `hits` is a different struct's field.
type otherCounters struct{ hits uint32 }

func otherIsFine(o *otherCounters) uint32 {
	o.hits++
	return o.hits
}
