// Package bufretain exercises the bufretain analyzer: round-owned slices —
// a Codec.Append implementation's dst, a Codec.Decode implementation's src,
// transport.Drain's batches, and decodeFrameBody's scratch-decoded batch —
// must not flow into memory that outlives the round.
package bufretain

import "cyclops/internal/transport"

type Msg struct{ Vec []float64 }

// leakCodec retains the arena buffer: true positives.
type leakCodec struct{}

var stash []byte

var frames = map[int][]byte{}

func (leakCodec) EncodedSize(m Msg) int { return 4 }

func (leakCodec) Append(dst []byte, m Msg) []byte {
	stash = dst // want `stored into package-level stash`
	return dst
}

func (leakCodec) Decode(src []byte) (Msg, int, error) {
	frames[0] = src[:4] // want `stored into map frames\[0\]`
	return Msg{}, 4, nil
}

// okCodec copies what it must keep: the analyzer stays silent.
type okCodec struct{}

func (okCodec) EncodedSize(m Msg) int { return 4 }

func (okCodec) Append(dst []byte, m Msg) []byte {
	return append(dst, 1, 2, 3, 4)
}

func (okCodec) Decode(src []byte) (Msg, int, error) {
	keep := append([]byte(nil), src[:4]...) // the copy idiom: legal
	_ = keep
	return Msg{}, 4, nil
}

type inbox struct {
	held  [][]float64
	holdC chan []float64
}

func sink([][]float64) {}

// hoard stores round batches into a field via append: true positive.
func (in *inbox) hoard(tr transport.Interface[float64], w int) {
	batches := tr.Drain(w)
	for _, b := range batches {
		in.held = append(in.held, b) // want `stored into field in\.held`
	}
}

// ship sends a round batch on a channel: true positive.
func (in *inbox) ship(tr transport.Interface[float64], w int) {
	for _, b := range tr.Drain(w) {
		in.holdC <- b // want `sent on a channel`
	}
}

// handoff passes round batches to an unjoined goroutine: true positive.
func handoff(tr transport.Interface[float64], w int) {
	batches := tr.Drain(w)
	go sink(batches) // want `passed to a goroutine`
}

var deferred []func()

// capture closes over round batches: true positive.
func capture(tr transport.Interface[float64], w int) {
	batches := tr.Drain(w)
	deferred = append(deferred, func() {
		sink(batches) // want `captured by a closure`
	})
}

// drainAll stores Drain results through a container captured by a
// goroutine (the gas fan-out shape): true positive.
func drainAll(tr transport.Interface[float64], n int) [][][]float64 {
	dst := make([][][]float64, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			dst[w] = tr.Drain(w) // want `stored through captured container dst\[w\]`
		}(w)
	}
	return dst
}

// consume folds batches inside the round and keeps only scalar copies: the
// analyzer stays silent.
func consume(tr transport.Interface[float64], w int) float64 {
	var sum float64
	for _, b := range tr.Drain(w) {
		for _, v := range b {
			sum += v
		}
	}
	return sum
}

type snapshot struct{ kept [][]float64 }

// capture2 persists batches with the element-copy idiom: legal, no finding.
func (s *snapshot) capture2(tr transport.Interface[float64], w int) {
	for _, b := range tr.Drain(w) {
		s.kept = append(s.kept, append([]float64(nil), b...))
	}
}

type frameTag struct{ Run int64 }

// decodeFrameBody mirrors the real transport helper's shape: the analyzer
// matches it by name, and only calls lending a non-nil scratch taint the
// returned batch.
func decodeFrameBody(body []byte, codec int, scratch []float64) (int, bool, frameTag, []float64, error) {
	return 0, false, frameTag{}, scratch[:0], nil
}

type receiver struct{ last []float64 }

// scratchDecode stores a scratch-decoded batch into a field: true positive.
func (r *receiver) scratchDecode(body []byte, scratch []float64) {
	_, _, _, batch, err := decodeFrameBody(body, 0, scratch)
	if err != nil {
		return
	}
	r.last = batch // want `stored into field r\.last`
}

// nilScratch hands ownership to the callee — the returned batch is freshly
// allocated, so keeping it is legal.
func (r *receiver) nilScratch(body []byte) {
	_, _, _, batch, _ := decodeFrameBody(body, 0, nil)
	r.last = batch
}

// joined hands batches to workers the caller provably joins in-round; the
// finding is acknowledged with an allow.
func joined(tr transport.Interface[float64], w int) {
	batches := tr.Drain(w)
	go sink(batches) //lint:allow bufretain receiver goroutines are joined before the next Drain
}
