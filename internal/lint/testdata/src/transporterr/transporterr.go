// Package transporterr exercises the transporterr analyzer: dropped
// transport errors, string-matching on error text, and sentinel
// construction style.
package transporterr

import (
	"errors"
	"fmt"
	"strings"

	"cyclops/internal/transport"
)

// Sentinels carry identity, not formatting: a verb-less fmt.Errorf is the
// wrong constructor, a formatted message or errors.New is fine.
var (
	errStale    = fmt.Errorf("transporterr: stale peer") // want `verb-less fmt.Errorf`
	errTimeout  = errors.New("transporterr: timeout")
	errWithPeer = fmt.Errorf("transporterr: peer %d gone", 3) // formatted message, not a sentinel: legal
)

func dropped(tr transport.Interface[int]) {
	tr.Close()       // want `error from transport.Close dropped`
	defer tr.Close() // want `defer error from transport.Close dropped`
	go tr.Close()    // want `go error from transport.Close dropped`
	tr.Err()         // want `error from transport.Err dropped`
}

func handled(tr transport.Interface[int]) error {
	if err := tr.Close(); err != nil {
		return err
	}
	_ = tr.Close() // explicit discard records intent: legal
	return tr.Err()
}

func voidMethodsAreFine(tr transport.Interface[int], batch []int) {
	tr.Send(0, 1, batch) // no error result: nothing to drop
	tr.FinishRound(0)
}

func otherPackagesAreFine(f interface{ Close() error }) {
	f.Close() // not a transport method; other analyzers' (errcheck's) turf
}

func annotated(tr transport.Interface[int]) {
	//lint:allow transporterr golden-test exercise of the allow directive
	tr.Close()
}

func stringMatching(err error) bool {
	if err.Error() == "transport closed" { // want `comparing err.Error\(\) text`
		return true
	}
	if strings.Contains(err.Error(), "round finished") { // want `strings.Contains on err.Error\(\) text`
		return true
	}
	return strings.HasPrefix(err.Error(), "transport:") // want `strings.HasPrefix on err.Error\(\) text`
}

func taxonomy(err error) bool {
	if errors.Is(err, transport.ErrClosed) { // the typed taxonomy: legal
		return true
	}
	var terr *transport.Error
	if errors.As(err, &terr) {
		return terr.Retryable
	}
	// Reading the text for humans (logs) is fine; only matching on it is not.
	fmt.Println(err.Error())
	return strings.Contains("transport closed", "closed") // no error text involved: legal
}
