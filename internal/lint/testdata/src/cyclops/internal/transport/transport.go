// Package transport is a golden-test stub that shadows the real
// cyclops/internal/transport import path, so the analyzers'
// package-identity checks behave in tests exactly as over the real tree.
// Only the shapes the analyzers inspect are reproduced.
package transport

import "errors"

var (
	ErrClosed         = errors.New("transport closed")
	ErrRoundViolation = errors.New("round finished more than once")
)

type Error struct {
	Op        string
	Peer      int
	Retryable bool
	Err       error
}

func (e *Error) Error() string { return "transport: " + e.Op }
func (e *Error) Unwrap() error { return e.Err }

type Stats struct{}

type Matrix struct{}

type Interface[M any] interface {
	NumEndpoints() int
	Send(from, to int, batch []M)
	FinishRound(from int)
	Drain(to int) [][]M
	Stats() *Stats
	Matrix() *Matrix
	Err() error
	Close() error
}

// New mirrors the real constructor's (Interface, error) shape.
func New[M any](n int) (Interface[M], error) { return nil, nil }
