// Package obs is a golden-test stub shadowing the real
// cyclops/internal/obs import path: just the Hooks interface the
// hookbalance analyzer pairs up.
package obs

type RunInfo struct {
	Engine  string
	Workers int
}

type Violation struct{ Kind string }

type WorkerStats struct{ Worker int }

type RecoveryEvent struct{ Step int }

// Span stands in for the real span value (obs/span.Span): the analyzer keys
// on the hook method names, not the payload type.
type Span struct {
	ID   int64
	Kind int
}

// HeatStepData stands in for the real per-superstep heat payload.
type HeatStepData struct {
	Step int
}

type Hooks interface {
	OnRunStart(info RunInfo)
	OnSuperstepStart(step int)
	OnWorkerStats(ws WorkerStats)
	OnViolation(v Violation)
	OnSpanStart(s Span)
	OnSpanEnd(s Span)
	OnHeat(d HeatStepData)
	OnSuperstepEnd(step int, messages int64)
	OnRecovery(e RecoveryEvent)
	OnConverged(step int, reason string)
}
