// Package graph is a golden-test stub that shadows the real
// cyclops/internal/graph import path. Only the shapes the analyzers key on
// are reproduced: ID is a type alias, exactly as in the real package, so
// slotaddr must see through it to the underlying uint32.
package graph

// ID identifies a vertex.
type ID = uint32
