// Package bsp exercises the determinism analyzer inside one of its scoped
// package paths (cyclops/internal/bsp shadows the real engine).
package bsp

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/metrics"
	"sort"
	"time"
)

type stepStats struct {
	Durations [4]time.Duration
	Started   time.Time
}

type deadliner struct{}

func (deadliner) SetReadDeadline(t time.Time) error { return nil }

// quarantinedTiming is the legal phase-timer idiom: the timer local feeds
// only time.Since, and the duration lands directly in a Duration field.
func quarantinedTiming(s *stepStats) {
	start := time.Now()
	work()
	s.Durations[0] = time.Since(start)
	start = time.Now() // re-arming the same timer var is still quarantined
	work()
	s.Durations[1] = time.Since(start)
}

// deadlines are I/O scheduling, not recorded values: legal.
func deadlines(d deadliner) {
	_ = d.SetReadDeadline(time.Now().Add(time.Second))
}

func leaks(s *stepStats) {
	s.Started = time.Now() // want `time.Now escapes the timings quarantine`
	start := time.Now()    // want `time.Now escapes the timings quarantine`
	fmt.Println(start)     // the leak: the timer value escapes to output
	t2 := time.Now()
	elapsed := time.Since(t2) // want `time.Since result must be stored directly`
	_ = elapsed
}

func globalRand(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn is process-seeded`
}

func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed)) // constructors for seeded generators are legal
	return r.Intn(n)
}

func emitInMapOrder(m map[int]float64, send func(int, float64)) {
	for k, v := range m { // want `map iteration order is randomized`
		send(k, v)
	}
}

func collectThenSort(m map[int]float64, send func(int, float64)) {
	var keys []int
	for k := range m { // collect-then-sort is order-insensitive: legal
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		send(k, m[k])
	}
}

func drain(m map[int]float64) {
	for k := range m { // delete-all is order-insensitive: legal
		delete(m, k)
	}
}

func annotated() time.Time {
	//lint:allow determinism golden-test exercise of the allow directive
	return time.Now()
}

func rangeOverSlice(xs []int) int {
	var sum int
	for _, x := range xs { // slices iterate in index order: legal
		sum += x
	}
	return sum
}

func heapIntrospection() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms) // want `runtime.ReadMemStats values are GC-schedule- and machine-dependent`
	samples := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(samples) // want `runtime/metrics.Read values are GC-schedule- and machine-dependent`
	return ms.HeapAlloc + samples[0].Value.Uint64()
}

func allowedIntrospection() uint32 {
	var ms runtime.MemStats
	//lint:allow determinism golden-test exercise of the allow directive
	runtime.ReadMemStats(&ms)
	return ms.NumGC
}

func work() {}
