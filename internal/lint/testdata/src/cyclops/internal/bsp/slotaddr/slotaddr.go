// Package slotaddr exercises the slotaddr analyzer from inside an engine
// package path (cyclops/internal/bsp/...): map[graph.ID] probes and ranges
// over ID-keyed maps are findings, slot-indexed flat arrays and non-ID maps
// are not, and setup paths carry //lint:allow.
package slotaddr

import "cyclops/internal/graph"

type engine struct {
	state map[graph.ID]float64
	slots []float64
	fanIn map[int32]int // partition-audit twin: int32 keys are worker ids, not vertices
}

func (e *engine) superstep(ids []graph.ID) float64 {
	var sum float64
	for _, id := range ids {
		sum += e.state[id] // want `map\[graph\.ID\] probe`
	}
	for _, v := range e.state { // want `range over an ID-keyed map`
		sum += v
	}
	for _, n := range e.fanIn { // int32-keyed: the analyzer stays silent
		sum += float64(n)
	}
	for s := range e.slots {
		sum += e.slots[s] // slot-addressed: the legal form
	}
	return sum
}

// setup builds vertex state before superstep 0; the ID-keyed map is the
// natural structure there and the sites are annotated.
func (e *engine) setup(ids []graph.ID) {
	for i, id := range ids {
		e.state[id] = float64(i) //lint:allow slotaddr layout construction runs once before superstep 0
	}
}
