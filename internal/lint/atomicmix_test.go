package lint_test

import (
	"testing"

	"cyclops/internal/lint"
	"cyclops/internal/lint/analysistest"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.AtomicMix, "atomicmix")
}
