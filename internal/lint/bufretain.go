package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cyclops/internal/lint/analysis"
)

// BufRetain is an escape-style dataflow check for the reused-buffer aliasing
// bug class PR 9's arena buffers made possible. Three kinds of slice are
// round-owned — valid only until the next superstep reuses their backing
// array:
//
//   - the dst buffer a Codec.Append implementation receives (a per-peer
//     arena the transport recycles every round);
//   - the src buffer a Codec.Decode implementation reads (the frame read
//     buffer, overwritten by the next frame);
//   - the batches transport.Drain returns and the batch decodeFrameBody
//     fills from a non-nil scratch slice (containers truncated to [:0] and
//     refilled next round).
//
// Within each function that holds such a slice, the analyzer taints it and
// every local alias (sub-slices, element reads of slice-of-slice, append
// extensions, &elem pointers) and reports any flow into memory that outlives
// the round: struct fields, package-level variables, maps, channel sends,
// goroutine arguments, and closures that capture the buffer. Copying idioms
// (append onto a fresh/nil slice, scalar element reads) do not propagate
// taint, so snapshot paths stay clean without annotations.
var BufRetain = &analysis.Analyzer{
	Name: "bufretain",
	Doc: "flag Codec.Append/Decode implementations, Drain consumers and decodeFrameBody callers that " +
		"store a round-owned arena/scratch slice (or a sub-slice) where it outlives the round (PR 9)",
	Run: runBufRetain,
}

func runBufRetain(pass *analysis.Pass) (any, error) {
	for _, c := range codecImpls(pass) {
		if obj := firstParamObj(pass, c.app); obj != nil {
			newRetainCheck(pass, c.app, obj,
				"Codec.Append's dst — a per-peer arena buffer the transport reuses every superstep").run()
		}
		if obj := firstParamObj(pass, c.dec); obj != nil {
			newRetainCheck(pass, c.dec, obj,
				"Codec.Decode's src — the frame read buffer, overwritten by the next frame").run()
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			seedRoundBuffers(pass, fd)
		}
	}
	return nil, nil
}

// firstParamObj resolves the object of fd's first parameter, or nil when it
// is unnamed/blank (an unnamed buffer cannot be retained).
func firstParamObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return nil
	}
	names := fd.Type.Params.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}

const (
	drainLabel   = "transport.Drain's round batches — the containers are truncated and refilled next round"
	scratchLabel = "decodeFrameBody's scratch-decoded batch — clobbered by the next frame"
)

// seedRoundBuffers finds Drain results and scratch-decoded batches inside fd
// and, if any exist, runs the retention check over the function with those
// seeds. Direct stores of a Drain result into long-lived memory (dst[w] =
// tr.Drain(w) through a captured container) are reported on the spot.
func seedRoundBuffers(pass *analysis.Pass, fd *ast.FuncDecl) {
	rc := &retainCheck{
		pass: pass, fn: fd,
		taint:    map[types.Object]string{},
		reported: map[token.Pos]bool{},
	}
	seeded := false
	analysis.WithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if isTransportDrainCall(pass, call) && i < len(n.Lhs) {
					seeded = true
					rc.seedInto(n.Lhs[i], drainLabel, stack)
				}
				if isScratchDecodeCall(pass, call) && len(n.Lhs) == 5 {
					seeded = true
					rc.seedInto(n.Lhs[3], scratchLabel, stack)
				}
			}
		case *ast.RangeStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isTransportDrainCall(pass, call) {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						seeded = true
						rc.taint[obj] = drainLabel
					}
				}
			}
		}
		return true
	})
	if seeded {
		rc.run()
	}
}

// seedInto taints the target of a seed assignment, reporting on the spot
// when the target is itself round-outliving memory (a field, map entry, or
// captured container receiving a Drain result directly).
func (rc *retainCheck) seedInto(lhs ast.Expr, label string, stack []ast.Node) {
	rc.flowInto(lhs, label, stack, true)
}

// isTransportDrainCall matches calls to a Drain method declared by the
// transport package (Local, RPC, or the Interface the engines hold).
func isTransportDrainCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Name() == "Drain" && funcPkgPath(fn) == transportPkgPath
}

// isScratchDecodeCall matches decodeFrameBody calls whose scratch argument
// (the third) is non-nil: only those hand back a buffer the caller is
// lending, not receiving.
func isScratchDecodeCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "decodeFrameBody" || len(call.Args) != 3 {
		return false
	}
	if id, ok := ast.Unparen(call.Args[2]).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// retainCheck is one escape-style pass over a single function body: taint
// grows from the seeds through aliasing assignments, and flows into
// round-outliving memory are findings.
type retainCheck struct {
	pass     *analysis.Pass
	fn       *ast.FuncDecl
	taint    map[types.Object]string
	reported map[token.Pos]bool
}

func newRetainCheck(pass *analysis.Pass, fd *ast.FuncDecl, seed types.Object, label string) *retainCheck {
	return &retainCheck{
		pass: pass, fn: fd,
		taint:    map[types.Object]string{seed: label},
		reported: map[token.Pos]bool{},
	}
}

func (rc *retainCheck) run() {
	// Propagate to a fixpoint without reporting, then report once: taint
	// discovered late must still flag sinks that appear earlier in the body.
	for rc.walk(false) {
	}
	rc.walk(true)
}

func (rc *retainCheck) report(pos token.Pos, format string, args ...any) {
	if rc.reported[pos] {
		return
	}
	rc.reported[pos] = true
	rc.pass.Reportf(pos, format, args...)
}

// walk makes one pass over the function body. With report=false it only
// grows the taint set (returning whether it grew); with report=true it
// additionally emits diagnostics for sink flows.
func (rc *retainCheck) walk(report bool) bool {
	grew := false
	info := rc.pass.TypesInfo
	analysis.WithStack(rc.fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				label := rc.taintOf(rhs)
				if label == "" {
					continue
				}
				if rc.flowInto(n.Lhs[i], label, stack, report) {
					grew = true
				}
			}
		case *ast.RangeStmt:
			if label := rc.taintOf(n.X); label != "" {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if isSliceLike(info.TypeOf(id)) {
						if obj := info.Defs[id]; obj != nil && rc.taint[obj] == "" {
							rc.taint[obj] = label
							grew = true
						}
					}
				}
			}
		case *ast.SendStmt:
			if label := rc.taintOf(n.Value); label != "" && report {
				rc.report(n.Value.Pos(),
					"round-owned buffer sent on a channel: %s; the receiver sees it after the backing "+
						"array is reused — copy the data or restructure", label)
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if label := rc.taintOf(arg); label != "" && report {
					rc.report(arg.Pos(),
						"round-owned buffer passed to a goroutine: %s; the goroutine can outlive the "+
							"round unless joined before the next Drain — copy, or annotate the join with //lint:allow", label)
				}
			}
		case *ast.Ident:
			if !report {
				return true
			}
			obj := info.Uses[n]
			if obj == nil || rc.taint[obj] == "" {
				return true
			}
			if fl := innermostFuncLit(stack[:len(stack)-1]); fl != nil && !posWithin(obj.Pos(), fl) {
				rc.report(n.Pos(),
					"round-owned buffer captured by a closure: %s; the closure aliases the backing array "+
						"after the round reuses it — copy, or annotate an in-round join with //lint:allow",
					rc.taint[obj])
			}
		}
		return true
	})
	return grew
}

// flowInto handles `lhs = <tainted>`: stores into fields, globals, maps,
// captured containers are sinks; stores into local variables or local slice
// elements propagate taint. Returns whether the taint set grew.
func (rc *retainCheck) flowInto(lhs ast.Expr, label string, stack []ast.Node, report bool) bool {
	info := rc.pass.TypesInfo
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		obj := info.Defs[lhs]
		if obj == nil {
			obj = info.Uses[lhs]
		}
		if obj == nil {
			return false
		}
		if obj.Parent() == rc.pass.Pkg.Scope() {
			if report {
				rc.report(lhs.Pos(),
					"round-owned buffer stored into package-level %s: %s; it outlives every round", lhs.Name, label)
			}
			return false
		}
		if rc.taint[obj] == "" {
			rc.taint[obj] = label
			return true
		}
	case *ast.SelectorExpr:
		if report {
			rc.report(lhs.Pos(),
				"round-owned buffer stored into field %s: %s; the field outlives the round and will "+
					"alias next round's data — copy with append([]T(nil), buf...) if it must persist",
				exprText(lhs), label)
		}
	case *ast.IndexExpr:
		if t := info.TypeOf(lhs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if report {
					rc.report(lhs.Pos(),
						"round-owned buffer stored into map %s: %s; map entries outlive the round", exprText(lhs), label)
				}
				return false
			}
		}
		root := rootIdent(lhs.X)
		if root == nil {
			if report {
				rc.report(lhs.Pos(),
					"round-owned buffer stored into %s, memory that outlives this function's round: %s",
					exprText(lhs), label)
			}
			return false
		}
		obj := info.Uses[root]
		if obj == nil {
			return false
		}
		if fl := innermostFuncLit(stack); fl != nil && !posWithin(obj.Pos(), fl) {
			if report {
				rc.report(lhs.Pos(),
					"round-owned buffer stored through captured container %s: %s; the store escapes the "+
						"goroutine/closure into memory the next round reuses — copy, or annotate an in-round "+
						"join with //lint:allow", exprText(lhs), label)
			}
			return false
		}
		if rc.taint[obj] == "" {
			rc.taint[obj] = label
			return true
		}
	}
	return false
}

// taintOf reports the taint label flowing out of expression e, or "".
func (rc *retainCheck) taintOf(e ast.Expr) string {
	info := rc.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return rc.taint[obj]
		}
	case *ast.SliceExpr:
		return rc.taintOf(e.X)
	case *ast.IndexExpr:
		// batches[i] aliases the round buffer only when the element is itself
		// a slice ([][]M → []M); a scalar element read is a copy.
		if isSliceLike(info.TypeOf(e)) {
			return rc.taintOf(e.X)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rc.taintOf(e.X)
		}
	case *ast.CallExpr:
		// append(tainted, ...) still aliases the tainted backing array, and
		// appending a tainted slice as an element keeps the alias inside the
		// result. append(fresh, tainted...) copies elements, which launders
		// the taint unless the elements are themselves slices (copied
		// headers still point into the round buffer).
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				if label := rc.taintOf(e.Args[0]); label != "" {
					return label
				}
				if e.Ellipsis.IsValid() {
					if len(e.Args) == 2 && sliceElemIsSlice(info.TypeOf(e)) {
						return rc.taintOf(e.Args[1])
					}
				} else {
					for _, a := range e.Args[1:] {
						if label := rc.taintOf(a); label != "" {
							return label
						}
					}
				}
			}
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if label := rc.taintOf(el); label != "" {
				return label
			}
		}
	}
	return ""
}

// sliceElemIsSlice reports whether t is a slice whose elements are
// themselves slice-like ([][]M): element copies of such a slice still carry
// aliasing headers.
func sliceElemIsSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isSliceLike(s.Elem())
}

// isSliceLike reports slice or type-parameter types (a generic batch element
// could be anything; stay conservative and keep the taint).
func isSliceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// rootIdent digs through index/selector chains to the base identifier of an
// lvalue's container, or nil when the base is itself a field access (e.bufs)
// — already long-lived memory.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// innermostFuncLit returns the innermost *ast.FuncLit in stack, or nil.
func innermostFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

// posWithin reports whether pos falls inside the FuncLit (its parameters or
// body) — i.e. the object was declared by the literal, not captured.
func posWithin(pos token.Pos, fl *ast.FuncLit) bool {
	return fl.Pos() <= pos && pos < fl.End()
}
