package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow is one parsed //lint:allow directive: an intentional, documented
// exception to an analyzer. The suite requires a reason — a bare
// "//lint:allow determinism" is itself a finding.
type Allow struct {
	// Analyzer is the analyzer name the directive suppresses.
	Analyzer string
	// Reason is the free-text justification after the analyzer name.
	Reason string
	// File and Line locate the directive.
	File string
	Line int
}

const allowPrefix = "//lint:allow"

// ParseAllows extracts every //lint:allow directive from files. Directives
// with no reason are returned with an empty Reason; the driver reports those
// as malformed rather than honouring them.
func ParseAllows(fset *token.FileSet, files []*ast.File) []Allow {
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, Allow{
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
					File:     pos.Filename,
					Line:     pos.Line,
				})
			}
		}
	}
	return out
}

// Suppressor answers whether a diagnostic is covered by an //lint:allow
// directive on the same line or the line directly above, and records which
// directives were actually used.
type Suppressor struct {
	allows map[allowKey]*allowState
}

type allowKey struct {
	analyzer string
	file     string
	line     int
}

type allowState struct {
	allow Allow
	used  bool
}

// NewSuppressor indexes directives for lookup.
func NewSuppressor(allows []Allow) *Suppressor {
	s := &Suppressor{allows: make(map[allowKey]*allowState)}
	for _, a := range allows {
		if a.Reason == "" {
			continue // malformed: no reason, never suppresses
		}
		st := &allowState{allow: a}
		s.allows[allowKey{a.Analyzer, a.File, a.Line}] = st
	}
	return s
}

// Suppressed reports whether a diagnostic from analyzer at file:line is
// covered by a directive (same line, or the line above for directives placed
// on their own line).
func (s *Suppressor) Suppressed(analyzer, file string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		if st, ok := s.allows[allowKey{analyzer, file, l}]; ok {
			st.used = true
			return true
		}
	}
	return false
}

// Used returns directives that suppressed at least one diagnostic.
func (s *Suppressor) Used() []Allow {
	var out []Allow
	for _, st := range s.allows {
		if st.used {
			out = append(out, st.allow)
		}
	}
	return out
}

// Unused returns directives that never suppressed anything — stale allows
// that should be deleted so exceptions stay honest.
func (s *Suppressor) Unused() []Allow {
	var out []Allow
	for _, st := range s.allows {
		if !st.used {
			out = append(out, st.allow)
		}
	}
	return out
}
