// Package analysis is a self-contained, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis API surface the cyclops-lint suite needs.
//
// The repo builds hermetically offline (go.mod is stdlib-only by policy, see
// internal/lint/README.md), so the real x/tools module cannot be vendored.
// The types here mirror the upstream shapes — Analyzer, Pass, Diagnostic —
// closely enough that the analyzers in internal/lint would port to the real
// framework by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used in diagnostics and in
// //lint:allow directives), documentation, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer. It must be a valid Go identifier; it is
	// what a //lint:allow directive names to suppress a finding.
	Name string
	// Doc is the analyzer's documentation. The first line is a one-sentence
	// summary; the rest explains the contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to a package. It reports findings through
	// pass.Report and returns an optional result (unused by this suite's
	// driver, kept for x/tools API parity).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token.Pos values to file positions.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver wraps it with the
	// //lint:allow suppression filter, so analyzers never see directives.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
