package analysis

import "go/ast"

// WithStack walks every node under root in depth-first order, calling fn with
// the node and the stack of its ancestors (stack[0] is root, stack[len-1] is
// n itself). The walk always descends into children; fn's return value is
// ignored and exists only for call-site symmetry with x/tools' inspector.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}
