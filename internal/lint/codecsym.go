package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"cyclops/internal/lint/analysis"
)

// CodecSym enforces the graph.Codec exactness contract (PR 9) on every
// codec-shaped type — any named type carrying the EncodedSize/Append/Decode
// method triple:
//
//   - EncodedSize(m) must equal the bytes Append writes, and Decode must
//     consume exactly that many. The in-process transport charges wire bytes
//     from EncodedSize without materializing frames, and those charges are
//     exact-diffed by the flight-recorder gate — drift between the three
//     methods is a silent wire-accounting regression, not a crash. The
//     analyzer proves the cases it can decide statically: a fixed-byte
//     Append must match a constant EncodedSize and Decode's success returns;
//     a length-dependent Append (loops, or delegation on variable-size data)
//     requires a length term in EncodedSize, and vice versa.
//   - byte-affecting branches must be symmetric: an Append that encodes
//     differently across if/switch arms needs a branch in EncodedSize and in
//     Decode, or some input encodes more bytes than were sized (or than
//     Decode consumes).
//   - codec paths are hand-rolled little-endian: binary.BigEndian, and the
//     gob/json/reflect/fmt machinery, are flagged anywhere in the triple.
//     Frames are parsed byte-at-a-time on the hot path; reflective encoders
//     allocate and their formats are not the wire format the accounting
//     charges for.
//   - packages that declare codecs must build their error sentinels with
//     errors.New, not verb-less fmt.Errorf (identity-stable, nothing owed to
//     fmt at init).
var CodecSym = &analysis.Analyzer{
	Name: "codecsym",
	Doc: "flag graph.Codec implementations whose EncodedSize/Append/Decode disagree (byte counts, " +
		"length terms, branch structure) or that reach for BigEndian/gob/json/reflect/fmt (PR 9)",
	Run: runCodecSym,
}

func runCodecSym(pass *analysis.Pass) (any, error) {
	impls := codecImpls(pass)
	for _, c := range impls {
		checkCodecPurity(pass, c)
		checkLenSymmetry(pass, c)
		checkBranchSymmetry(pass, c)
	}
	if len(impls) > 0 {
		for _, f := range pass.Files {
			checkSentinelStyle(pass, f)
		}
	}
	return nil, nil
}

// forbiddenCodecPkgs are reflective/format machinery that must not appear on
// a codec path: they allocate, and their output is not the hand-rolled
// little-endian format the wire accounting charges for.
var forbiddenCodecPkgs = map[string]string{
	"encoding/gob":  "gob is the slow path the binary frame format replaced",
	"encoding/json": "json is reflective and allocates",
	"reflect":       "reflection has no place in a fixed-layout codec",
	"fmt":           "fmt is reflective and allocates; sentinels belong at package scope",
}

// checkCodecPurity flags BigEndian and reflective machinery inside the
// codec method triple.
func checkCodecPurity(pass *analysis.Pass, c *codecImpl) {
	for _, fd := range c.methods() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pkg.Imported().Path(); path {
			case "encoding/binary":
				if sel.Sel.Name == "BigEndian" {
					pass.Reportf(sel.Pos(),
						"%s.%s uses binary.BigEndian: the wire format is little-endian throughout; "+
							"a mixed-endian codec round-trips in tests and corrupts across the real wire",
						c.typeName, fd.Name.Name)
				}
			default:
				if why, bad := forbiddenCodecPkgs[path]; bad {
					pass.Reportf(sel.Pos(),
						"%s.%s uses %s on a codec path: %s", c.typeName, fd.Name.Name, path, why)
				}
			}
			return true
		})
	}
}

// lenDependent reports whether a codec method's work scales with the
// message: it loops, calls len, or delegates Append/EncodedSize on a
// variable-size argument (slice, map, string, interface, or type parameter).
func lenDependent(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	dep := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
			dep = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					dep = true
				}
			}
			if name, args := delegatedCodecCall(n); name != "" {
				for _, a := range args {
					if variableSize(pass.TypesInfo.TypeOf(a)) {
						dep = true
					}
				}
			}
		}
		return !dep
	})
	return dep
}

// delegatedCodecCall recognizes a call to another codec's method by exact
// name and returns the arguments that carry message data (for Append, the
// dst buffer is skipped).
func delegatedCodecCall(call *ast.CallExpr) (string, []ast.Expr) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	}
	switch name {
	case "Append":
		if len(call.Args) >= 2 {
			return name, call.Args[1:]
		}
	case "EncodedSize", "Decode":
		return name, call.Args
	}
	return "", nil
}

// variableSize reports whether a value of type t has a length-dependent
// encoding: slices, maps, strings, interfaces, and type parameters all do.
func variableSize(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UntypedString
	}
	return false
}

// checkLenSymmetry requires Append and EncodedSize to agree on whether the
// encoding is length-dependent, and — when both are fixed and statically
// sizable — on the exact byte count, with Decode consuming the same.
func checkLenSymmetry(pass *analysis.Pass, c *codecImpl) {
	appDep := lenDependent(pass, c.app)
	sizeDep := lenDependent(pass, c.size)
	switch {
	case appDep && !sizeDep:
		pass.Reportf(c.size.Pos(),
			"%s.Append is length-dependent (loops or delegates on variable-size data) but EncodedSize "+
				"has no length term: EncodedSize must be exact — the transports charge it to the wire "+
				"books and the flight-recorder gate exact-diffs the result", c.typeName)
		return
	case sizeDep && !appDep:
		pass.Reportf(c.app.Pos(),
			"%s.EncodedSize is length-dependent but Append writes a fixed encoding: some input is "+
				"sized differently than it is encoded, and the wire accounting drifts", c.typeName)
		return
	case appDep:
		return // both length-dependent: byte counting is beyond static reach
	}
	appBytes, ok := fixedAppendBytes(pass, c.app)
	if !ok {
		return
	}
	sizeBytes, ok := constSizeReturn(pass, c.size)
	if ok && appBytes != sizeBytes {
		pass.Reportf(c.app.Pos(),
			"%s.Append writes %d bytes but EncodedSize returns %d: the wire accounting charges "+
				"EncodedSize, so every message drifts the byte books by %d", c.typeName, appBytes, sizeBytes,
			sizeBytes-appBytes)
	}
	checkDecodeConsumes(pass, c, appBytes)
}

// fixedByteCalls maps the repo's fixed-width append helpers (and
// binary.LittleEndian's) to the bytes they write.
var fixedByteCalls = map[string]int{
	"AppendUint16": 2,
	"AppendUint32": 4,
	"AppendUint64": 8,
}

// fixedAppendBytes statically sums the bytes a branch-free, loop-free Append
// writes. It bails (ok=false) on anything it cannot size: delegation to
// another codec, unknown []byte-returning helpers, variadic appends.
func fixedAppendBytes(pass *analysis.Pass, fd *ast.FuncDecl) (int, bool) {
	if hasBranch(fd) {
		return 0, false // per-arm counting is the branch-symmetry check's job
	}
	total, ok := 0, true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || !ok {
			return ok
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				if call.Ellipsis.IsValid() || len(call.Args) < 1 || !isByteSlice(pass.TypesInfo.TypeOf(call.Args[0])) {
					ok = false
					return false
				}
				total += len(call.Args) - 1
				return true
			}
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if n, fixed := fixedByteCalls[name]; fixed {
			total += n
			return true
		}
		switch name {
		case "Append", "EncodedSize", "Decode":
			ok = false // delegation: the sub-codec's size is not visible here
			return false
		}
		if isByteSlice(pass.TypesInfo.TypeOf(call)) {
			ok = false // unknown []byte-producing helper
			return false
		}
		return true
	})
	return total, ok
}

// constSizeReturn extracts EncodedSize's return value when the body is a
// single constant return.
func constSizeReturn(pass *analysis.Pass, fd *ast.FuncDecl) (int, bool) {
	var rets []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			rets = append(rets, r)
		}
		return true
	})
	if len(rets) != 1 || len(rets[0].Results) != 1 {
		return 0, false
	}
	return constIntValue(pass, rets[0].Results[0])
}

func constIntValue(pass *analysis.Pass, e ast.Expr) (int, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return int(v), true
}

// checkDecodeConsumes verifies every successful Decode return (third result
// a literal nil) reports consuming exactly the bytes Append writes.
func checkDecodeConsumes(pass *analysis.Pass, c *codecImpl, appBytes int) {
	ast.Inspect(c.dec.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 3 {
			return true
		}
		if id, isIdent := ast.Unparen(ret.Results[2]).(*ast.Ident); !isIdent || id.Name != "nil" {
			return true // error path: consumed count is irrelevant
		}
		if consumed, known := constIntValue(pass, ret.Results[1]); known && consumed != appBytes {
			pass.Reportf(ret.Pos(),
				"%s.Decode reports consuming %d bytes on success but Append writes %d: the next "+
					"message in the frame decodes from the wrong offset", c.typeName, consumed, appBytes)
		}
		return true
	})
}

// checkBranchSymmetry requires that when one method of the triple encodes
// (or sizes) differently across if/switch arms, its partners branch too.
func checkBranchSymmetry(pass *analysis.Pass, c *codecImpl) {
	if byteAffectingBranch(pass, c.app) {
		if !hasBranch(c.size) {
			pass.Reportf(c.size.Pos(),
				"%s.Append encodes differently across branches but EncodedSize is branch-free: "+
					"some arm's byte count is not what the wire books were charged", c.typeName)
		}
		if !hasBranch(c.dec) {
			pass.Reportf(c.dec.Pos(),
				"%s.Append encodes differently across branches but Decode is branch-free: "+
					"some arm's encoding cannot round-trip", c.typeName)
		}
		return
	}
	if returnBranch(c.size) && !hasBranch(c.app) {
		pass.Reportf(c.app.Pos(),
			"%s.EncodedSize returns different sizes across branches but Append is branch-free: "+
				"some input is sized differently than it is encoded", c.typeName)
	}
}

// byteAffectingBranch reports whether fd contains an if/switch arm that
// produces bytes (a builtin append, a fixed-width helper, or delegation).
func byteAffectingBranch(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			if containsByteCall(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsByteCall(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if name == "append" || name == "Append" {
			found = true
		} else if _, fixed := fixedByteCalls[name]; fixed {
			found = true
		}
		return !found
	})
	return found
}

func hasBranch(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			found = true
		}
		return !found
	})
	return found
}

func returnBranch(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			inner := false
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.ReturnStmt); ok {
					inner = true
				}
				return !inner
			})
			if inner {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkSentinelStyle flags package-level error sentinels built with a
// verb-less fmt.Errorf: errors.New keeps the sentinel's identity out of
// fmt's hands and allocates nothing beyond the error itself at init. Shared
// with transporterr, which applies it repo-wide; codecsym applies it to
// packages that declare codecs (the sentinel is part of the wire contract —
// graph.ErrShortBuffer is what every torn-frame path returns).
func checkSentinelStyle(pass *analysis.Pass, f *ast.File) {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				call, ok := ast.Unparen(v).(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || funcPkgPath(fn) != "fmt" || fn.Name() != "Errorf" {
					continue
				}
				format, known := constStringValue(pass, call.Args[0])
				if known && !strings.Contains(format, "%") {
					pass.Reportf(call.Pos(),
						"package-level error sentinel built with verb-less fmt.Errorf: use errors.New — "+
							"same message, identity-stable, and nothing owed to fmt at init")
				}
			}
		}
	}
}

func constStringValue(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
