package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cyclops/internal/lint/analysis"
)

// AllocFree turns the perf-bench job's "0 allocs/op steady state" gate into
// a compile-time property. A function whose doc comment carries the
//
//	//lint:hotpath
//
// directive declares itself on the per-message or per-vertex hot path
// (appendFrame, decodeFrameBody, the Drain implementations, the codecs);
// inside it the analyzer flags every construct that allocates:
//
//   - make and new;
//   - append that grows into a fresh variable (only the arena idiom
//     `x = append(x, ...)` and `return append(dst, ...)` are capacity-safe);
//   - string([]byte) / []byte(string) conversions, and non-constant string
//     concatenation;
//   - interface boxing: passing or converting a concrete value to an
//     interface-typed parameter allocates the box;
//   - slice/map composite literals and &T{};
//   - closures and go statements;
//   - calls into fmt, errors, reflect, encoding/gob, encoding/json.
//
// The benchmark gate samples the hot loop; the analyzer proves every call
// site. Known cold sub-paths inside a hot function (a first-round buffer
// grow, an error path) carry //lint:allow allocfree with a reason. A
// //lint:hotpath directive anywhere other than a function's doc comment is
// itself a finding — a misplaced directive silently protects nothing.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "flag allocating constructs (make/new, fresh-slice append, string conversions, interface " +
		"boxing, closures, fmt/reflect) inside functions annotated //lint:hotpath (PR 9's 0 allocs/op gate)",
	Run: runAllocFree,
}

const hotPathDirective = "//lint:hotpath"

func runAllocFree(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		docs := map[*ast.CommentGroup]bool{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Doc != nil {
				docs[fd.Doc] = true
			}
			if isHotPath(fd) && fd.Body != nil {
				checkHotPathBody(pass, fd)
			}
		}
		// A directive that is not a function's doc comment protects nothing.
		for _, cg := range f.Comments {
			if docs[cg] {
				continue
			}
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, hotPathDirective) {
					pass.Reportf(c.Pos(),
						"misplaced %s: the directive only takes effect in a function's doc comment", hotPathDirective)
				}
			}
		}
	}
	return nil, nil
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotPathDirective) {
			return true
		}
	}
	return false
}

// allocPkgs are packages whose entry points allocate (or reflect, which is
// worse); none belongs in a hot function.
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "reflect": true,
	"encoding/gob": true, "encoding/json": true,
}

func checkHotPathBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	analysis.WithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotPathCall(pass, name, n, stack)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(),
					"%s is //lint:hotpath but builds a %s composite literal, which allocates its backing "+
						"store every call", name, typeKindName(t))
			}
			if len(stack) >= 2 {
				if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND {
					pass.Reportf(u.Pos(),
						"%s is //lint:hotpath but heap-allocates a composite literal with &; hoist the "+
							"value or pass it by value", name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"%s is //lint:hotpath but defines a closure, which allocates (the func value and any "+
					"captured variables); hoist it to a named function", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"%s is //lint:hotpath but spawns a goroutine, which allocates a stack; hot loops reuse "+
					"long-lived workers", name)
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			t := pass.TypesInfo.TypeOf(n)
			if t == nil || !isStringType(t) {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			pass.Reportf(n.Pos(),
				"%s is //lint:hotpath but concatenates strings, which allocates the result", name)
		}
		return true
	})
}

func checkHotPathCall(pass *analysis.Pass, name string, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	// Builtins: make/new always allocate; append is fine only in the arena
	// idiom (x = append(x, ...) or return append(dst, ...)), where growth is
	// amortized into the buffer's steady-state capacity.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(),
					"%s is //lint:hotpath but calls %s, which allocates every call; hoist the buffer into "+
						"an arena (or annotate a cold sub-path with //lint:allow)", name, b.Name())
			case "append":
				if !arenaAppend(call, stack) {
					pass.Reportf(call.Pos(),
						"%s is //lint:hotpath but appends into a fresh variable with unknown capacity; only "+
							"the self-extending arena idiom `x = append(x, ...)` keeps steady state "+
							"allocation-free", name)
				}
			}
			return
		}
	}
	// Conversions: string([]byte) and []byte(string) copy; conversions to
	// interface types box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := info.TypeOf(call.Fun), info.TypeOf(call.Args[0])
		if (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from)) {
			pass.Reportf(call.Pos(),
				"%s is //lint:hotpath but converts between string and []byte, which copies; keep hot-path "+
					"data as []byte end to end", name)
		}
		if isInterfaceType(to) && from != nil && !isInterfaceType(from) {
			pass.Reportf(call.Pos(),
				"%s is //lint:hotpath but converts a concrete value to an interface, which allocates the box", name)
		}
		return
	}
	// Calls into allocating packages.
	if fn := calleeFunc(info, call); fn != nil {
		if pkg := funcPkgPath(fn); allocPkgs[pkg] {
			pass.Reportf(call.Pos(),
				"%s is //lint:hotpath but calls %s.%s; %s machinery allocates on every call", name, pkg, fn.Name(), pkg)
		}
	}
	// Interface boxing at argument positions.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		at := info.TypeOf(arg)
		if pt == nil || at == nil || !isInterfaceType(pt) || isInterfaceType(at) {
			continue
		}
		if b, isBasic := at.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue // nil never boxes
		}
		pass.Reportf(arg.Pos(),
			"%s is //lint:hotpath but passes a concrete %s where %s takes an interface: the box allocates "+
				"per call", name, at.String(), callName(call))
	}
}

// arenaAppend reports whether an append call is in the capacity-safe arena
// shape: its result directly returned, or assigned back over its own first
// argument (`dst = append(dst, ...)`).
func arenaAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		return len(parent.Lhs) == 1 && len(parent.Rhs) == 1 && parent.Rhs[0] == call &&
			exprText(parent.Lhs[0]) == exprText(call.Args[0])
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false // generic instantiation, not boxing
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "struct"
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}
