package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"cyclops/internal/lint/analysis"
)

// Determinism enforces §3.6 replay determinism inside the engine and
// transport packages: same input + same seed must produce a byte-identical
// flight record (the PR 3 exact-match perf gate depends on it). Three bug
// classes break that:
//
//   - wall-clock reads (time.Now / time.Since) whose value escapes the
//     timings quarantine — durations are only legal when stored directly
//     into a time.Duration field/element (the timings.csv side channel the
//     recorder never diffs);
//   - the global math/rand generator, which is seeded per-process — any
//     randomness must come from an explicitly seeded *rand.Rand;
//   - map iteration, whose order is randomized per run, anywhere in the
//     engine packages — message emission, obs.Recorder series and
//     checkpoint encoding all live here, so iteration order must not exist
//     unless the loop provably doesn't depend on it (collect-then-sort or
//     delete-all idioms);
//   - allocator introspection (runtime.ReadMemStats, runtime/metrics.Read),
//     whose values depend on GC schedule and machine — memory telemetry
//     belongs to the obs layer's quarantined mem.csv, never to engine code
//     that could fold heap numbers into replayed state.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock, global math/rand, map-iteration and allocator-introspection use that can break " +
		"§3.6 replay determinism (byte-identical flight records) in the engine and transport packages",
	Run: runDeterminism,
}

// determinismScope lists the package-path prefixes the analyzer polices: the
// three engines plus the transport. Everything these packages emit lands in
// messages, recorder series or checkpoints.
var determinismScope = []string{
	"cyclops/internal/cyclops",
	"cyclops/internal/bsp",
	"cyclops/internal/gas",
	"cyclops/internal/transport",
}

func inDeterminismScope(path string) bool {
	for _, p := range determinismScope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !inDeterminismScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n, stack)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkDeterminismCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch funcPkgPath(fn) {
	case "time":
		switch fn.Name() {
		case "Now":
			if !legalTimeNow(pass, call, stack) {
				pass.Reportf(call.Pos(),
					"time.Now escapes the timings quarantine: wall-clock values must only feed "+
						"time.Since or I/O deadlines, or replay determinism (§3.6) breaks")
			}
		case "Since":
			if !legalTimeSince(pass, call, stack) {
				pass.Reportf(call.Pos(),
					"time.Since result must be stored directly into a time.Duration field or element "+
						"(the timings.csv quarantine); anything else can leak wall-clock into recorded series (§3.6)")
			}
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the process-global generator.
		// Constructors for explicitly seeded generators are the fix, so
		// they are legal.
		if fn.Type().(*types.Signature).Recv() != nil {
			return // methods on an explicit *rand.Rand are seeded by construction
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		pass.Reportf(call.Pos(),
			"global math/rand.%s is process-seeded and breaks replay determinism (§3.6); "+
				"use an explicitly seeded *rand.Rand", fn.Name())
	case "runtime":
		if fn.Name() == "ReadMemStats" {
			pass.Reportf(call.Pos(),
				"runtime.ReadMemStats values are GC-schedule- and machine-dependent; engine code must not "+
					"read them (§3.6) — memory telemetry flows through obs hooks into the quarantined mem.csv")
		}
	case "runtime/metrics":
		if fn.Name() == "Read" {
			pass.Reportf(call.Pos(),
				"runtime/metrics.Read values are GC-schedule- and machine-dependent; engine code must not "+
					"read them (§3.6) — memory telemetry flows through obs hooks into the quarantined mem.csv")
		}
	}
}

// legalTimeNow reports whether a time.Now call stays inside the quarantine:
// either every use of the variable it initializes is a time.Since argument
// (the phase-timer idiom), or the value flows directly into a socket
// deadline (SetDeadline family), which affects I/O scheduling but never a
// recorded value.
func legalTimeNow(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	// time.Now().Add(d) passed to SetDeadline/SetReadDeadline/SetWriteDeadline.
	for i := len(stack) - 2; i >= 0; i-- {
		outer, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if sel, ok := outer.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				return true
			}
		}
	}
	// start := time.Now() where start is only ever consumed by time.Since.
	if len(stack) < 2 {
		return false
	}
	assign, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != call {
		return false
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id] // plain `=` re-assignment of an existing timer var
	}
	if obj == nil {
		return false
	}
	fn := enclosingFunc(stack)
	if fn == nil {
		return false
	}
	onlySince := true
	analysis.WithStack(funcBody(fn), func(n ast.Node, s []ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[use] != obj {
			return true
		}
		// The use is legal iff it is the argument of a time.Since call.
		legal := false
		if len(s) >= 2 {
			// s[len(s)-1] is the ident; the call is its parent.
			if c, ok := s[len(s)-2].(*ast.CallExpr); ok && len(c.Args) == 1 && c.Args[0] == n {
				if cf := calleeFunc(pass.TypesInfo, c); cf != nil &&
					funcPkgPath(cf) == "time" && cf.Name() == "Since" {
					legal = true
				}
			}
			// Re-arming the timer (`start = time.Now()`) writes, not reads.
			if a, ok := s[len(s)-2].(*ast.AssignStmt); ok && len(a.Lhs) == 1 && a.Lhs[0] == n {
				legal = true
			}
		}
		if !legal {
			onlySince = false
		}
		return true
	})
	return onlySince
}

// legalTimeSince reports whether a time.Since call's result is immediately
// stored into a time.Duration-typed field or element — the shape of every
// timings quarantine (metrics.StepStats.Durations, IngressStats fields).
// Assignment to a plain local is illegal: a local can flow anywhere.
func legalTimeSince(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	assign, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, rhs := range assign.Rhs {
		if rhs != call || i >= len(assign.Lhs) {
			continue
		}
		lhs := assign.Lhs[i]
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
		default:
			return false
		}
		if t := pass.TypesInfo.TypeOf(lhs); t != nil && t.String() == "time.Duration" {
			return true
		}
	}
	return false
}

// checkMapRange flags iteration over maps unless the body is one of the two
// order-insensitive idioms: collecting keys/values with a single append
// (sorted afterwards) or deleting entries.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if len(rng.Body.List) == 1 {
		switch s := rng.Body.List[0].(type) {
		case *ast.AssignStmt:
			// keys = append(keys, k): order-insensitive collection.
			if len(s.Rhs) == 1 {
				if c, ok := s.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "append" {
						return
					}
				}
			}
		case *ast.ExprStmt:
			// delete(m, k): order-insensitive drain.
			if c, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "delete" {
					return
				}
			}
		}
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is randomized per run and can reach message emission, recorder series "+
			"or checkpoint encoding (§3.6); collect keys and sort, or justify with //lint:allow")
}
