package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"cyclops/internal/lint/analysis"
)

// Codec-shape detection shared by bufretain and codecsym.
//
// A codec-shaped type is a named type declared in the analyzed package whose
// method set carries the graph.Codec triple:
//
//	EncodedSize(M) int
//	Append(dst []byte, m M) []byte
//	Decode(src []byte) (M, int, error)
//
// Matching is structural (parameter and result shapes), not interface
// satisfaction: generic codecs like gasCodec[V, G] never instantiate
// graph.Codec at a concrete type inside their own package, and the golden
// fixtures must not need the real graph package to be recognized.

// codecImpl is one codec-shaped type with the syntax of its three methods.
type codecImpl struct {
	typeName string
	size     *ast.FuncDecl // EncodedSize
	app      *ast.FuncDecl // Append
	dec      *ast.FuncDecl // Decode
}

func (c *codecImpl) methods() []*ast.FuncDecl {
	return []*ast.FuncDecl{c.size, c.app, c.dec}
}

// codecImpls finds every codec-shaped type in the package, sorted by type
// name so diagnostics come out in a stable order.
func codecImpls(pass *analysis.Pass) []*codecImpl {
	byType := map[string]map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			name := recvTypeName(fd.Recv.List[0].Type)
			if name == "" {
				continue
			}
			m := byType[name]
			if m == nil {
				m = map[string]*ast.FuncDecl{}
				byType[name] = m
			}
			m[fd.Name.Name] = fd
		}
	}
	var out []*codecImpl
	for name, m := range byType {
		c := &codecImpl{typeName: name, size: m["EncodedSize"], app: m["Append"], dec: m["Decode"]}
		if c.size == nil || c.app == nil || c.dec == nil {
			continue
		}
		if !sizeShape(pass, c.size) || !appendShape(pass, c.app) || !decodeShape(pass, c.dec) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].typeName < out[j].typeName })
	return out
}

// recvTypeName unwraps a method receiver type expression — T, *T, T[P],
// *T[P, Q] — to the base type name.
func recvTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// declSignature returns the type-checked signature of a FuncDecl.
func declSignature(pass *analysis.Pass, fd *ast.FuncDecl) *types.Signature {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// sizeShape matches EncodedSize(M) int.
func sizeShape(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	sig := declSignature(pass, fd)
	return sig != nil && sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		isInt(sig.Results().At(0).Type())
}

// appendShape matches Append([]byte, M) []byte.
func appendShape(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	sig := declSignature(pass, fd)
	return sig != nil && sig.Params().Len() == 2 && sig.Results().Len() == 1 &&
		isByteSlice(sig.Params().At(0).Type()) && isByteSlice(sig.Results().At(0).Type())
}

// decodeShape matches Decode([]byte) (M, int, error).
func decodeShape(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	sig := declSignature(pass, fd)
	return sig != nil && sig.Params().Len() == 1 && sig.Results().Len() == 3 &&
		isByteSlice(sig.Params().At(0).Type()) &&
		isInt(sig.Results().At(1).Type()) &&
		types.Identical(sig.Results().At(2).Type(), errorType)
}
