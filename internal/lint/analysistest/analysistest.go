// Package analysistest runs cyclops-lint analyzers over golden packages
// under testdata/src, mirroring golang.org/x/tools/go/analysis/analysistest:
// expected findings are annotated in the source with
//
//	// want `regexp`
//
// comments (double-quoted strings also accepted, several per line), and the
// test fails on any unmatched expectation or unexpected diagnostic.
//
// Layout is GOPATH-style: testdata/src/<import/path>/*.go. Stub packages may
// shadow real repo import paths (cyclops/internal/transport, ...), so the
// analyzers' package-identity checks behave exactly as they do over the real
// tree. Imports with no testdata directory fall back to compiling the
// standard library from source, which works offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cyclops/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	d, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return d
}

// Run loads each package path from testdata/src, applies the analyzer, and
// compares the (//lint:allow-filtered) diagnostics against the // want
// expectations in that package's files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		lp, err := l.load(path)
		if err != nil {
			t.Errorf("%s: load %s: %v", a.Name, path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     lp.files,
			Pkg:       lp.pkg,
			TypesInfo: lp.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: run on %s: %v", a.Name, path, err)
			continue
		}
		sup := analysis.NewSuppressor(analysis.ParseAllows(l.fset, lp.files))
		var kept []analysis.Diagnostic
		for _, d := range diags {
			p := l.fset.Position(d.Pos)
			if !sup.Suppressed(a.Name, p.Filename, p.Line) {
				kept = append(kept, d)
			}
		}
		check(t, a, l.fset, lp.files, kept)
	}
}

// check matches diagnostics against // want comments, reporting both
// unexpected findings and unsatisfied expectations.
func check(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				k := lineKey{p.Filename, p.Line}
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", p.Filename, p.Line, pat, err)
						continue
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := lineKey{p.Filename, p.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, p.Filename, p.Line, d.Message)
		}
	}
	var keys []lineKey
	for k, res := range wants {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, k.file, k.line, re)
		}
	}
}

// parseWant extracts the expectation patterns from a `// want ...` comment:
// a sequence of backquoted or double-quoted regexps.
func parseWant(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, false
	}
	rest = strings.TrimSpace(rest)
	rest, ok = strings.CutPrefix(rest, "want ")
	if !ok {
		return nil, false
	}
	var pats []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			pats = append(pats, rest[1:1+end])
			rest = rest[2+end:]
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, false
			}
			unq, err := strconv.Unquote(q)
			if err != nil {
				return nil, false
			}
			pats = append(pats, unq)
			rest = rest[len(q):]
		default:
			return nil, false
		}
	}
	return pats, len(pats) > 0
}

// loader type-checks testdata packages, resolving imports first against
// testdata/src and then against the standard library (compiled from GOROOT
// source — no network, no pre-built export data needed).
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	pkgs     map[string]*loadedPkg
	fallback types.Importer
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(srcRoot string) *loader {
	l := &loader{
		fset:    token.NewFileSet(),
		srcRoot: srcRoot,
		pkgs:    map[string]*loadedPkg{},
	}
	l.fallback = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer for the type-checker's dependency
// resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	lp, err := l.load(path)
	if err == nil {
		return lp.pkg, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	return l.fallback.Import(path)
}

// load parses and type-checks the testdata package at srcRoot/path. It
// returns os.ErrNotExist-wrapped errors when no such directory exists, so
// Import can fall back to the standard library.
func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[path]; ok {
		if lp == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return lp, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	fi, err := os.Stat(dir)
	if err != nil || !fi.IsDir() {
		return nil, &os.PathError{Op: "load", Path: dir, Err: os.ErrNotExist}
	}
	l.pkgs[path] = nil // cycle marker
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	return lp, nil
}
