package lint_test

import (
	"testing"

	"cyclops/internal/lint"
	"cyclops/internal/lint/analysistest"
)

func TestCodecSym(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.CodecSym,
		"codecsym",
	)
}
