// Package bsp implements the baseline the paper builds on and compares
// against: a Hama-like Pregel clone. Vertices interact by pure message
// passing; every superstep runs four sequential phases — message parsing
// (PRS), vertex computation (CMP), message sending (SND) and the global
// barrier (SYN) — with messages buffered in a locked global in-queue per
// worker (§2.1, §4.1). The deficiencies §2.2 documents are reproduced
// faithfully: pull-mode programs must keep all vertices alive to resend
// values, converged vertices keep computing and sending redundant messages,
// and termination relies on a coarse global aggregate.
package bsp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cyclops/internal/aggregate"
	"cyclops/internal/cluster"
	"cyclops/internal/fault"
	"cyclops/internal/graph"
	"cyclops/internal/metrics"
	"cyclops/internal/obs"
	"cyclops/internal/obs/span"
	"cyclops/internal/partition"
	"cyclops/internal/transport"
)

// Program is a Pregel vertex program. Compute is called once per superstep
// for every active vertex with the messages sent to it in the previous
// superstep.
type Program[V, M any] interface {
	// Init returns the initial value of vertex id. All vertices start
	// active, as in Pregel.
	Init(id graph.ID, g *graph.Graph) V
	// Compute inspects and updates the current vertex through ctx.
	Compute(ctx *Context[V, M], msgs []M)
}

// Config tunes an engine run.
type Config[V, M any] struct {
	// Cluster is the simulated topology; the BSP engine uses one thread per
	// worker (Hama predates hierarchical workers).
	Cluster cluster.Config
	// Partitioner assigns vertices to workers (default: hash, as in Hama).
	Partitioner partition.Partitioner
	// MaxSupersteps bounds the run (default 100).
	MaxSupersteps int
	// Halt decides termination at each barrier in addition to the natural
	// "no active vertices and no messages in flight" stop.
	Halt aggregate.HaltFunc
	// Combiner merges two messages bound for the same vertex (must be
	// commutative and associative, §2.2.2). Optional.
	Combiner func(a, b M) M
	// Equal detects unchanged values for redundant-message accounting
	// (Figure 3(2)). Optional; without it every message counts as useful.
	Equal func(a, b V) bool
	// Residual maps a vertex's previous and new values to a scalar distance
	// (|Δ| for scalar algorithms). When set, each superstep's StepStats
	// carries the quantiles of this distribution over all SetValue calls —
	// the convergence telemetry behind Figure 3. Optional.
	Residual func(old, new V) float64
	// SizeOfMsg estimates a message's wire size; nil means 16 bytes.
	SizeOfMsg func(M) int64
	// MsgCodec, when set, selects the hand-rolled binary wire format for
	// message envelopes: the TCP transport frames batches with it instead
	// of gob (arena-encoded, zero allocations per message), and the
	// in-process transport charges its exact encoded sizes to the wire
	// books. Payload accounting (SizeOfMsg) is unaffected. Optional.
	MsgCodec graph.Codec[M]
	// CostModel overrides the default model constants.
	CostModel *metrics.CostModel
	// PerSenderQueues replaces Hama's locked global in-queue with Cyclops'
	// contention-free per-sender slots. It is an ablation knob (experiment
	// "ablation.queue"), not something Hama offers.
	PerSenderQueues bool
	// Network selects in-process queues (default) or real gob-over-TCP
	// loopback sockets. Checkpointing requires InProcess (sockets hold
	// in-flight state a snapshot cannot capture).
	Network transport.Network
	// OnStep is called after each barrier with the engine (values are
	// consistent then); used by the harness for L1-norm tracking.
	OnStep func(step int, e *Engine[V, M])
	// CheckpointEvery saves engine state every k supersteps into Checkpoints
	// when k > 0 (§3.6 fault tolerance: Hama persists values and messages).
	CheckpointEvery int
	// Checkpoints receives the snapshots (in-memory sink; cmd tools wrap it
	// with file persistence).
	Checkpoints func(State[V, M]) error
	// Hooks receives live instrumentation events (run/superstep/phase spans
	// and per-worker stats). nil disables observation; the hot path then
	// pays only a nil-check per phase.
	Hooks obs.Hooks
	// Audit verifies message conservation each superstep: every envelope put
	// on the wire at SND must be delivered by the next PRS — BSP's analogue
	// of Cyclops' replica invariants (there are no replicas to check here).
	// A violation fails the run with *obs.AuditError. Off by default; when
	// off the loop pays one branch per phase.
	Audit bool
	// Recover loads the state to roll back to after a transient transport
	// fault at a barrier (typically checkpoint.LoadLatest over the same
	// directory Checkpoints writes into). When set, the engine restores
	// values, halted flags and pending messages and replays; when nil, any
	// transport fault fails the run. Requires InProcess.
	Recover func() (State[V, M], error)
	// MaxRecoveries bounds recovery attempts per run (default 3); a fault
	// beyond the budget fails the run with the underlying transport error.
	MaxRecoveries int
	// FaultPlan injects a deterministic fault schedule at the transport
	// boundary (testing/chaos only). Same plan ⇒ same faults.
	FaultPlan *fault.Plan
}

// envelope routes one message to a destination vertex.
type envelope[M any] struct {
	Dst graph.ID
	Msg M
}

// State is the checkpointable engine state (§3.6: superstep count, vertex
// values and in-flight messages; Hama must persist messages because they
// carry data).
type State[V, M any] struct {
	Step    int
	Values  []V
	Halted  []bool
	Pending []PendingBatch[M]
}

// PendingBatch is an undelivered message batch addressed to a worker.
type PendingBatch[M any] struct {
	To    int
	Batch []envelope[M]
}

// Engine executes a Program over a partitioned graph.
type Engine[V, M any] struct {
	g      *graph.Graph
	prog   Program[V, M]
	cfg    Config[V, M]
	assign *partition.Assignment
	owned  [][]graph.ID // worker → owned vertex ids

	values []V
	halted []bool
	inbox  [][]M

	// ctxs are the persistent per-worker compute contexts. Their out
	// buffers are arena-style: truncated to length zero at the top of each
	// CMP phase and refilled, so steady-state supersteps append into
	// already-grown backing arrays instead of re-allocating them. Reuse is
	// safe because the batches sent at SND of step N are fully consumed by
	// PRS of step N+1, which completes (barrier) before CMP of step N+1
	// touches the buffers again.
	ctxs []*Context[V, M]

	tr    transport.Interface[envelope[M]]
	inj   *fault.Injector[envelope[M]]
	agg   *aggregate.Registry
	trace *metrics.Trace
	model metrics.CostModel

	step   int
	primed bool

	// runSeq numbers Run calls on this engine (1-based); it becomes the
	// span stream's Run id, so restored engines keep distinct run spans.
	runSeq int64

	// auditPrevSent is the wire-level envelope count of the previous SND
	// phase, compared against the next PRS delivery count when Audit is on.
	// -1 means "no previous superstep to check against" (fresh or restored
	// engine): the Combiner makes logical sent ≠ wire envelopes, so the count
	// must be taken at flush time, and a restore replaces in-flight state.
	auditPrevSent int64
}

// Close releases transport resources (sockets in TCPLoopback mode).
func (e *Engine[V, M]) Close() error { return e.tr.Close() }

// New builds an engine: partitions the graph, initialises vertex values and
// wires the transport with Hama's locked global in-queues.
func New[V, M any](g *graph.Graph, prog Program[V, M], cfg Config[V, M]) (*Engine[V, M], error) {
	if g == nil || prog == nil {
		return nil, errors.New("bsp: graph and program are required")
	}
	cfg.Cluster = cfg.Cluster.Normalize()
	if cfg.Partitioner == nil {
		cfg.Partitioner = partition.Hash{}
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	workers := cfg.Cluster.Workers()
	if cfg.Network != transport.InProcess && cfg.CheckpointEvery > 0 {
		return nil, errors.New("bsp: checkpointing requires the in-process network")
	}
	if cfg.Network != transport.InProcess && cfg.Recover != nil {
		return nil, errors.New("bsp: recovery requires the in-process network")
	}
	assign, err := cfg.Partitioner.Partition(g, workers)
	if err != nil {
		return nil, fmt.Errorf("bsp: partition: %w", err)
	}
	tr, err := transport.New[envelope[M]](cfg.Network, workers,
		queueMode(cfg.PerSenderQueues), wrapSize[M](cfg.SizeOfMsg), wrapCodec[M](cfg.MsgCodec))
	if err != nil {
		return nil, fmt.Errorf("bsp: transport: %w", err)
	}
	var inj *fault.Injector[envelope[M]]
	if cfg.FaultPlan != nil {
		inj = fault.Wrap(tr, *cfg.FaultPlan)
		tr = inj
	}
	e := &Engine[V, M]{
		g:      g,
		prog:   prog,
		cfg:    cfg,
		assign: assign,
		owned:  make([][]graph.ID, workers),
		values: make([]V, g.NumVertices()),
		halted: make([]bool, g.NumVertices()),
		inbox:  make([][]M, g.NumVertices()),
		tr:     tr,
		inj:    inj,
		agg:    aggregate.NewRegistry(),
		trace:  &metrics.Trace{Engine: "hama", Workers: workers},
		model:  metrics.DefaultCostModel(),

		auditPrevSent: -1,
	}
	if cfg.CostModel != nil {
		e.model = *cfg.CostModel
	}
	// The slot layout is built once at partition time: owned[w] aliases the
	// layout's flat CSR of master ids (ascending within each worker, same
	// order the append loop used to produce).
	layout, err := partition.NewLayout(assign, g.NumVertices())
	if err != nil {
		return nil, fmt.Errorf("bsp: layout: %w", err)
	}
	for w := 0; w < workers; w++ {
		e.owned[w] = layout.Masters(w)
	}
	for v := 0; v < g.NumVertices(); v++ {
		e.values[v] = prog.Init(graph.ID(v), g)
	}
	e.ctxs = make([]*Context[V, M], workers)
	for w := range e.ctxs {
		ctx := &Context[V, M]{e: e, worker: w, out: make([][]envelope[M], workers)}
		if cfg.Combiner != nil {
			// Dense slot-addressed combiner state: per destination vertex,
			// the index of its coalesced envelope in out[owner], valid when
			// the stamp matches the current superstep's. Replaces a
			// map[graph.ID]int probe per message with two array reads.
			ctx.combineIdx = make([]int32, g.NumVertices())
			ctx.combineStamp = make([]uint32, g.NumVertices())
		}
		e.ctxs[w] = ctx
	}
	return e, nil
}

func queueMode(perSender bool) transport.QueueMode {
	if perSender {
		return transport.PerSenderQueue
	}
	return transport.GlobalQueue
}

func wrapSize[M any](sizeOf func(M) int64) func(envelope[M]) int64 {
	if sizeOf == nil {
		return nil
	}
	return func(env envelope[M]) int64 { return 4 + sizeOf(env.Msg) }
}

// envelopeCodec frames an envelope as a 4-byte destination id followed by
// the message's own encoding.
type envelopeCodec[M any] struct{ inner graph.Codec[M] }

//lint:hotpath
func (c envelopeCodec[M]) EncodedSize(env envelope[M]) int {
	return 4 + c.inner.EncodedSize(env.Msg)
}

//lint:hotpath
func (c envelopeCodec[M]) Append(dst []byte, env envelope[M]) []byte {
	dst = graph.AppendUint32(dst, uint32(env.Dst))
	return c.inner.Append(dst, env.Msg)
}

//lint:hotpath
func (c envelopeCodec[M]) Decode(src []byte) (envelope[M], int, error) {
	var env envelope[M]
	d, err := graph.Uint32At(src)
	if err != nil {
		return env, 0, err
	}
	env.Dst = graph.ID(d)
	msg, n, err := c.inner.Decode(src[4:])
	if err != nil {
		return env, 0, err
	}
	env.Msg = msg
	return env, 4 + n, nil
}

func wrapCodec[M any](inner graph.Codec[M]) graph.Codec[envelope[M]] {
	if inner == nil {
		return nil
	}
	return envelopeCodec[M]{inner: inner}
}

// Graph returns the input graph.
func (e *Engine[V, M]) Graph() *graph.Graph { return e.g }

// Values returns the vertex values indexed by vertex id. Only consistent
// between supersteps (i.e. inside OnStep or after Run).
func (e *Engine[V, M]) Values() []V { return e.values }

// Assignment exposes the partition for inspection.
func (e *Engine[V, M]) Assignment() *partition.Assignment { return e.assign }

// Aggregates exposes the previous superstep's folded aggregator values.
func (e *Engine[V, M]) Aggregates() *aggregate.Registry { return e.agg }

// Trace returns the per-superstep statistics collected so far.
func (e *Engine[V, M]) Trace() *metrics.Trace { return e.trace }

// Superstep reports the current superstep index.
func (e *Engine[V, M]) Superstep() int { return e.step }

// Context is the per-vertex view handed to Compute. A Context is only valid
// during the Compute call it is passed to.
type Context[V, M any] struct {
	e       *Engine[V, M]
	worker  int
	vid     graph.ID
	changed bool
	sent    int64
	local   aggregate.Values
	resid   []float64       // residual samples, when cfg.Residual is set
	out     [][]envelope[M] // per destination worker, reused across supersteps
	// Combiner coalescing state (allocated once when cfg.Combiner is set):
	// combineIdx[dst] is the index of dst's envelope in out[owner(dst)],
	// valid only when combineStamp[dst] == stamp. stamp advances once per
	// superstep, so resetting the table costs nothing.
	combineIdx   []int32
	combineStamp []uint32
	stamp        uint32
}

// Vertex returns the current vertex id.
func (c *Context[V, M]) Vertex() graph.ID { return c.vid }

// Superstep returns the current superstep index.
func (c *Context[V, M]) Superstep() int { return c.e.step }

// NumVertices returns the graph's vertex count.
func (c *Context[V, M]) NumVertices() int { return c.e.g.NumVertices() }

// Value returns the current vertex's value.
func (c *Context[V, M]) Value() V { return c.e.values[c.vid] }

// SetValue updates the current vertex's value.
func (c *Context[V, M]) SetValue(v V) {
	if eq := c.e.cfg.Equal; eq == nil || !eq(c.e.values[c.vid], v) {
		c.changed = true
	}
	if r := c.e.cfg.Residual; r != nil {
		c.resid = append(c.resid, r(c.e.values[c.vid], v))
	}
	c.e.values[c.vid] = v
}

// OutDegree returns the current vertex's out-degree.
func (c *Context[V, M]) OutDegree() int { return c.e.g.OutDegree(c.vid) }

// OutNeighbors returns the current vertex's out-neighbors (read-only).
func (c *Context[V, M]) OutNeighbors() []graph.ID { return c.e.g.OutNeighbors(c.vid) }

// OutWeights returns the current vertex's out-edge weights (read-only).
func (c *Context[V, M]) OutWeights() []float64 { return c.e.g.OutWeights(c.vid) }

// SendTo queues a message for vertex dst, delivered next superstep.
func (c *Context[V, M]) SendTo(dst graph.ID, m M) {
	w := c.e.assign.Of[dst]
	c.sent++
	if c.e.cfg.Combiner != nil {
		if c.combineStamp[dst] == c.stamp {
			i := c.combineIdx[dst]
			c.out[w][i].Msg = c.e.cfg.Combiner(c.out[w][i].Msg, m)
			return
		}
		c.combineStamp[dst] = c.stamp
		c.combineIdx[dst] = int32(len(c.out[w]))
	}
	c.out[w] = append(c.out[w], envelope[M]{Dst: dst, Msg: m})
}

// SendToNeighbors queues m for every out-neighbor.
func (c *Context[V, M]) SendToNeighbors(m M) {
	for _, u := range c.e.g.OutNeighbors(c.vid) {
		c.SendTo(u, m)
	}
}

// VoteToHalt deactivates the vertex until a message re-activates it.
func (c *Context[V, M]) VoteToHalt() { c.e.halted[c.vid] = true }

// Aggregate contributes v to the named aggregator (visible next superstep).
func (c *Context[V, M]) Aggregate(name string, v float64) {
	c.e.agg.Combine(c.local, name, v)
}

// AggregateValue reads the previous superstep's folded aggregate.
func (c *Context[V, M]) AggregateValue(name string) (float64, bool) {
	return c.e.agg.Value(name)
}

// Run executes supersteps until termination and returns the trace. A fresh
// engine starts at superstep 0; a Restored engine continues from its
// checkpointed superstep.
func (e *Engine[V, M]) Run() (*metrics.Trace, error) {
	workers := e.cfg.Cluster.Workers()
	hooks := e.cfg.Hooks
	// runStart anchors span offsets; runWall accumulates the accounted run
	// duration (sum of superstep walls), so the closing run span reconciles
	// with timings.csv totals by construction.
	runStart := time.Now()
	var runWall time.Duration
	if hooks != nil {
		e.runSeq++
		hooks.OnRunStart(obs.RunInfo{
			Engine:   e.trace.Engine,
			Workers:  workers,
			Vertices: e.g.NumVertices(),
			Edges:    e.g.NumEdges(),
			// Replicas and ReplicaValueBytes stay zero: Hama has no
			// replicated view — it pays in message buffers instead, which is
			// exactly the memory trade Table 4/5 compares.
			EdgeCut:          int64(e.assign.EdgeCut(e.g)),
			PartitionBalance: e.assign.Balance(),
		})
		hooks.OnSpanStart(obs.RunSpan(e.runSeq, 0))
	}
	stopReason := obs.ReasonMaxSupersteps

	// prevComm anchors the per-superstep traffic deltas; starting from the
	// current snapshot keeps deltas correct across resumed runs.
	var prevComm transport.MatrixSnapshot
	if hooks != nil {
		prevComm = e.tr.Matrix().Snapshot()
	}

	// Cumulative per-vertex heat counters (hooks on only): messages sent and
	// compute units, by vertex. Each vertex is computed only by its owner's
	// goroutine, so the worker fan-out below stays race-free.
	var heatMsgs, heatUnits []int64
	if hooks != nil {
		heatMsgs = make([]int64, e.g.NumVertices())
		heatUnits = make([]int64, e.g.NumVertices())
	}

	if !e.primed {
		// Establish round 0 so the first superstep's drain has markers to
		// consume on round-based transports.
		for w := 0; w < workers; w++ {
			e.tr.FinishRound(w)
		}
		e.primed = true
	}
	maxRecoveries := e.cfg.MaxRecoveries
	if maxRecoveries <= 0 {
		maxRecoveries = 3
	}
	recoveries := 0

	// Per-superstep bookkeeping, hoisted out of the loop: every slot is
	// overwritten each step, so one allocation serves the whole run.
	recvCounts := make([]int64, workers)
	recvBatches := make([]int64, workers)
	computeUnits := make([]int64, workers)
	activeCounts := make([]int64, workers)
	sendCounts := make([]int64, workers)
	partials := make([]aggregate.Values, workers)
	resids := make([][]float64, workers)
	outs := make([][][]envelope[M], workers)
	wireCounts := make([]int64, workers)
	var parseDur, computeDur, sendDur []time.Duration
	var serNs0, serNs []int64
	var delivs [][]span.Delivery
	if hooks != nil {
		parseDur = make([]time.Duration, workers)
		computeDur = make([]time.Duration, workers)
		sendDur = make([]time.Duration, workers)
		serNs0 = make([]int64, workers)
		serNs = make([]int64, workers)
		delivs = make([][]span.Delivery, workers)
	}

	for e.step < e.cfg.MaxSupersteps {
		if e.inj != nil {
			e.inj.BeginStep(e.step)
		}
		stats := metrics.StepStats{Step: e.step}
		// Span bookkeeping (nil when hooks are off, so the hot path only
		// pays the existing nil checks): per-worker phase durations, the
		// drained batch provenance, and the wire-serialisation deltas.
		sd := obs.StepSpanData{Run: e.runSeq, Step: e.step}
		if hooks != nil {
			hooks.OnSuperstepStart(e.step)
			sd.StepStart = time.Since(runStart)
			hooks.OnSpanStart(obs.StepSpan(e.runSeq, e.step, sd.StepStart))
			// Tag this superstep's sends with its causal context; receivers
			// drain them next superstep and link Deliver spans back to the
			// sender's Send span.
			for w := 0; w < workers; w++ {
				e.tr.Tag(w, span.Context{Run: e.runSeq, Step: int32(e.step), Worker: int32(w)})
			}
		}

		// PRS: drain the locked global in-queue, group messages per vertex,
		// reactivate recipients. One thread per worker, as in Hama.
		if hooks != nil {
			sd.ParseStart = time.Since(runStart)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pt := time.Now()
				batches := e.tr.Drain(w)
				recvBatches[w] = int64(len(batches))
				var recv int64
				for _, batch := range batches {
					recv += int64(len(batch))
					for _, env := range batch {
						e.inbox[env.Dst] = append(e.inbox[env.Dst], env.Msg)
						e.halted[env.Dst] = false
					}
				}
				recvCounts[w] = recv
				if parseDur != nil {
					parseDur[w] = time.Since(pt)
					delivs[w] = e.tr.LastDeliveries(w)
				}
			}(w)
		}
		wg.Wait()
		stats.Durations[metrics.Parse] = time.Since(start)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Parse, stats.Durations[metrics.Parse])
		}

		// Audit: every envelope the previous SND put on the wire must have
		// arrived. The count is wire-level (post-Combiner), so it is exact.
		var violations []obs.Violation
		if e.cfg.Audit && e.auditPrevSent >= 0 {
			var delivered int64
			for _, r := range recvCounts {
				delivered += r
			}
			if delivered != e.auditPrevSent {
				violations = append(violations, obs.Violation{
					Engine: e.trace.Engine,
					Step:   e.step,
					Worker: -1,
					Vertex: -1,
					Kind:   obs.ViolationMessageConservation,
					Detail: fmt.Sprintf(
						"superstep %d delivered %d envelopes but superstep %d put %d on the wire",
						e.step, delivered, e.step-1, e.auditPrevSent),
				})
			}
		}

		// CMP: run Compute on active vertices, one thread per worker.
		if hooks != nil {
			sd.ComputeStart = time.Since(runStart)
		}
		start = time.Now()
		var active, changed, sentTotal, redundant atomic.Int64
		var computeMax, sendMax int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ct := time.Now()
				// Reuse the persistent context: out buffers keep their
				// capacity (PRS consumed last step's batches before this
				// barrier), the combiner table resets by stamp advance, and
				// the aggregate map is rebuilt because Fold consumed it.
				ctx := e.ctxs[w]
				ctx.local = make(aggregate.Values)
				ctx.resid = ctx.resid[:0]
				ctx.stamp++
				for to := range ctx.out {
					ctx.out[to] = ctx.out[to][:0]
				}
				var units, computed, changedW, sent, redundantW int64
				for _, v := range e.owned[w] {
					msgs := e.inbox[v]
					if e.halted[v] && len(msgs) == 0 {
						continue
					}
					ctx.vid = v
					ctx.changed = false
					before := ctx.sent
					e.prog.Compute(ctx, msgs)
					e.inbox[v] = msgs[:0]
					computed++
					units += int64(len(msgs)) + int64(e.g.OutDegree(v))
					vsent := ctx.sent - before
					sent += vsent
					if heatMsgs != nil {
						heatMsgs[v] += vsent
						heatUnits[v] += int64(len(msgs)) + int64(e.g.OutDegree(v))
					}
					if ctx.changed {
						changedW++
					} else {
						redundantW += vsent
					}
				}
				computeUnits[w] = units
				activeCounts[w] = computed
				sendCounts[w] = sent
				partials[w] = ctx.local
				resids[w] = ctx.resid
				outs[w] = ctx.out
				active.Add(computed)
				changed.Add(changedW)
				sentTotal.Add(sent)
				redundant.Add(redundantW)
				if computeDur != nil {
					computeDur[w] = time.Since(ct)
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if computeUnits[w] > computeMax {
				computeMax = computeUnits[w]
			}
			if sendCounts[w] > sendMax {
				sendMax = sendCounts[w]
			}
		}
		stats.Durations[metrics.Compute] = time.Since(start)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Compute, stats.Durations[metrics.Compute])
		}

		// SND: flush per-worker bundles through the transport. Senders from
		// all workers contend on each receiver's global queue lock.
		if hooks != nil {
			sd.SendStart = time.Since(runStart)
			for w := 0; w < workers; w++ {
				serNs0[w] = e.tr.SerializeNanos(w)
			}
		}
		start = time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := time.Now()
				var wire int64
				for to, batch := range outs[w] {
					wire += int64(len(batch))
					e.tr.Send(w, to, batch)
				}
				e.tr.FinishRound(w)
				wireCounts[w] = wire
				if sendDur != nil {
					sendDur[w] = time.Since(st)
				}
			}(w)
		}
		wg.Wait()
		if hooks != nil {
			for w := 0; w < workers; w++ {
				serNs[w] = e.tr.SerializeNanos(w) - serNs0[w]
			}
		}
		if e.cfg.Audit {
			e.auditPrevSent = 0
			for _, n := range wireCounts {
				e.auditPrevSent += n
			}
		}
		stats.Durations[metrics.Send] = time.Since(start)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Send, stats.Durations[metrics.Send])
		}

		// SYN: barrier — fold aggregates, decide termination, checkpoint.
		start = time.Now()
		e.agg.Fold(partials)
		stats.Active = active.Load()
		stats.Changed = changed.Load()
		stats.Messages = sentTotal.Load()
		stats.RedundantMessages = redundant.Load()
		if e.cfg.Residual != nil {
			var all []float64
			for _, rs := range resids {
				all = append(all, rs...)
			}
			stats.SetResiduals(all)
		}
		stats.ComputeUnitsMax = computeMax
		stats.SendMax = sendMax
		stats.RecvMax = nextRecvMax(outs, workers)
		stats.ModelNanos = e.model.StepCost(
			computeMax, sendMax, stats.RecvMax,
			1, 1, workers, !e.cfg.PerSenderQueues, e.model.FlatBarrier(workers))
		stats.Durations[metrics.Sync] = time.Since(start)
		e.trace.Append(stats)
		if hooks != nil {
			hooks.OnPhase(e.step, metrics.Sync, stats.Durations[metrics.Sync])
			for w := 0; w < workers; w++ {
				hooks.OnWorkerStats(obs.WorkerStats{
					Step:         e.step,
					Worker:       w,
					ComputeUnits: computeUnits[w],
					Sent:         sendCounts[w],
					Received:     recvCounts[w],
					Active:       activeCounts[w],
					QueueDepth:   recvBatches[w],
				})
			}
			cur := e.tr.Matrix().Snapshot()
			commDelta := cur.Sub(prevComm)
			hooks.OnCommMatrix(e.step, commDelta)
			prevComm = cur
			for _, v := range violations {
				hooks.OnViolation(v)
			}
			// Heat: Hama has no replicated view, so the replica-sync column
			// stays nil/zero; its boundary messages are the full §3.4 cost.
			hooks.OnHeat(obs.HeatStepData{
				Step:       e.step,
				Partitions: obs.BuildHeatPartitions(e.step, commDelta, activeCounts, computeUnits, nil),
				Hot: obs.TopHotVertices(heatMsgs, heatUnits,
					func(v int) int { return e.assign.Of[v] }, obs.DefaultHotK),
			})
			hooks.OnSuperstepEnd(e.step, stats)
			// Wall is the sum of the four phase durations — exactly what
			// timings.csv records for the step — so critpath.csv columns
			// reconcile with it by construction.
			sd.Wall = stats.Durations[metrics.Parse] + stats.Durations[metrics.Compute] +
				stats.Durations[metrics.Send] + stats.Durations[metrics.Sync]
			runWall += sd.Wall
			sd.Parse = parseDur
			sd.Compute = computeDur
			sd.Send = sendDur
			sd.SerializeNs = serNs
			sd.Units = computeUnits
			sd.Sent = wireCounts
			sd.Recv = recvCounts
			sd.Deliveries = delivs
			obs.EmitStepSpans(hooks, sd)
		}
		// Fault check at the barrier, before anything from this superstep is
		// persisted: a transient transport fault rolls the run back to the
		// latest checkpoint (§3.6) and replays; anything else fails the run.
		if err := e.tr.Err(); err != nil {
			if transport.IsTransient(err) && e.cfg.Recover != nil && recoveries < maxRecoveries {
				st, lerr := e.cfg.Recover()
				if lerr != nil {
					if hooks != nil {
						hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
						hooks.OnConverged(e.step, obs.ReasonFault)
					}
					return e.trace, fmt.Errorf("bsp: recovery: load checkpoint: %w", lerr)
				}
				faultStep := e.step
				if e.inj != nil {
					e.inj.Heal()
				}
				if rerr := e.Restore(st); rerr != nil {
					if hooks != nil {
						hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
						hooks.OnConverged(e.step, obs.ReasonFault)
					}
					return e.trace, fmt.Errorf("bsp: recovery: %w", rerr)
				}
				recoveries++
				if hooks != nil {
					hooks.OnRecovery(obs.RecoveryEvent{
						Engine:    e.trace.Engine,
						Step:      faultStep,
						ResumedAt: e.step,
						Attempt:   recoveries,
						Cause:     err.Error(),
					})
				}
				continue
			}
			if hooks != nil {
				hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
				hooks.OnConverged(e.step, obs.ReasonFault)
			}
			return e.trace, fmt.Errorf("bsp: transport: %w", err)
		}

		if len(violations) > 0 {
			if hooks != nil {
				hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
				hooks.OnConverged(e.step, obs.ReasonAuditFailed)
			}
			return e.trace, fmt.Errorf("bsp: %w", &obs.AuditError{Violations: violations})
		}

		if e.cfg.CheckpointEvery > 0 && e.cfg.Checkpoints != nil &&
			(e.step+1)%e.cfg.CheckpointEvery == 0 {
			if err := e.cfg.Checkpoints(e.snapshot()); err != nil {
				if hooks != nil {
					hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
					hooks.OnConverged(e.step, obs.ReasonFault)
				}
				return e.trace, fmt.Errorf("bsp: checkpoint at step %d: %w", e.step, err)
			}
		}
		if e.cfg.OnStep != nil {
			e.cfg.OnStep(e.step, e)
		}

		nextActive := e.countActive() + pendingEstimate(sentTotal.Load())
		if sentTotal.Load() == 0 && e.countActive() == 0 {
			e.step++
			stopReason = obs.ReasonNoActive
			break
		}
		if e.cfg.Halt != nil && e.cfg.Halt(e.step, e.agg.Value, nextActive) {
			e.step++
			stopReason = obs.ReasonHalt
			break
		}
		e.step++
	}
	if hooks != nil {
		hooks.OnSpanEnd(obs.RunSpan(e.runSeq, runWall))
		hooks.OnConverged(e.step, stopReason)
	}
	if err := e.tr.Err(); err != nil {
		return e.trace, fmt.Errorf("bsp: transport: %w", err)
	}
	return e.trace, nil
}

// nextRecvMax estimates the max messages any worker will receive next
// superstep from this superstep's outgoing bundles.
func nextRecvMax[M any](outs [][][]envelope[M], workers int) int64 {
	var recvMax int64
	for to := 0; to < workers; to++ {
		var recv int64
		for from := 0; from < workers; from++ {
			if outs[from] != nil {
				recv += int64(len(outs[from][to]))
			}
		}
		if recv > recvMax {
			recvMax = recv
		}
	}
	return recvMax
}

func pendingEstimate(sent int64) int64 {
	if sent > 0 {
		return 1 // at least one vertex will be reactivated
	}
	return 0
}

func (e *Engine[V, M]) countActive() int64 {
	var n int64
	for _, h := range e.halted {
		if !h {
			n++
		}
	}
	return n
}

// TransportStats exposes the raw traffic counters.
func (e *Engine[V, M]) TransportStats() transport.Snapshot { return e.tr.Stats().Snapshot() }

// Snapshot captures the engine's state before Run as a step-0 baseline
// checkpoint, so a fault earlier than the first periodic checkpoint is still
// recoverable. (Mid-run checkpoints are taken by the engine itself through
// Config.Checkpoints.)
func (e *Engine[V, M]) Snapshot() State[V, M] {
	s := e.snapshot()
	s.Step = e.step
	return s
}

// snapshot captures restartable state, including undelivered messages.
func (e *Engine[V, M]) snapshot() State[V, M] {
	s := State[V, M]{
		Step:   e.step + 1,
		Values: append([]V(nil), e.values...),
		Halted: append([]bool(nil), e.halted...),
	}
	// Drain and re-send so the checkpoint owns a copy and the queue state
	// is unchanged.
	for w := 0; w < e.cfg.Cluster.Workers(); w++ {
		for _, batch := range e.tr.Drain(w) {
			s.Pending = append(s.Pending, PendingBatch[M]{To: w, Batch: append([]envelope[M](nil), batch...)})
			e.tr.Send(w, w, batch)
		}
	}
	return s
}

// Restore rewinds the engine to a checkpointed state (§3.6 recovery). The
// engine must have been built over the same graph and configuration.
func (e *Engine[V, M]) Restore(s State[V, M]) error {
	if e.cfg.Network != transport.InProcess {
		return errors.New("bsp: restore requires the in-process network")
	}
	if len(s.Values) != len(e.values) || len(s.Halted) != len(e.halted) {
		return errors.New("bsp: checkpoint shape does not match engine")
	}
	copy(e.values, s.Values)
	copy(e.halted, s.Halted)
	for w := 0; w < e.cfg.Cluster.Workers(); w++ {
		e.tr.Drain(w) // discard any in-flight state
	}
	for _, p := range s.Pending {
		e.tr.Send(p.To, p.To, append([]envelope[M](nil), p.Batch...))
	}
	for v := range e.inbox {
		e.inbox[v] = e.inbox[v][:0]
	}
	e.step = s.Step
	e.auditPrevSent = -1 // restored pending state has no audited SND phase
	return nil
}
