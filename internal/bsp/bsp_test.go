package bsp

import (
	"testing"

	"cyclops/internal/aggregate"
	"cyclops/internal/cluster"
	"cyclops/internal/graph"
	"cyclops/internal/partition"
)

// maxProg is the classic max-propagation program: every vertex converges to
// the maximum vertex id in its connected component. Push-mode and
// vote-to-halt driven, so it exercises activation semantics precisely.
type maxProg struct{}

func (maxProg) Init(id graph.ID, _ *graph.Graph) float64 { return float64(id) }

func (maxProg) Compute(ctx *Context[float64, float64], msgs []float64) {
	val := ctx.Value()
	updated := ctx.Superstep() == 0 // everyone announces once at the start
	for _, m := range msgs {
		if m > val {
			val = m
			updated = true
		}
	}
	if updated {
		ctx.SetValue(val)
		ctx.SendToNeighbors(val)
	}
	ctx.VoteToHalt()
}

func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.ID(v), graph.ID((v+1)%n))
	}
	return b.MustBuild()
}

func TestMaxPropagationRing(t *testing.T) {
	g := ringGraph(40)
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range e.Values() {
		if val != 39 {
			t.Fatalf("vertex %d = %g, want 39", v, val)
		}
	}
	// A directed ring needs ~n supersteps for the max to circulate.
	if len(trace.Steps) < 39 {
		t.Errorf("only %d supersteps; max cannot have circulated", len(trace.Steps))
	}
	// Natural termination: the final superstep sent no messages.
	last := trace.Steps[len(trace.Steps)-1]
	if last.Messages != 0 {
		t.Errorf("final superstep sent %d messages", last.Messages)
	}
}

func TestRequiredArguments(t *testing.T) {
	if _, err := New[float64, float64](nil, maxProg{}, Config[float64, float64]{}); err == nil {
		t.Error("nil graph must error")
	}
	if _, err := New[float64, float64](ringGraph(3), nil, Config[float64, float64]{}); err == nil {
		t.Error("nil program must error")
	}
}

func TestMaxSuperstepsBudget(t *testing.T) {
	g := ringGraph(100)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(1, 4),
		MaxSupersteps: 5,
	})
	trace, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) != 5 {
		t.Fatalf("ran %d supersteps, want exactly 5", len(trace.Steps))
	}
}

// aggProg publishes each vertex's value into a sum aggregator and halts when
// the engine's Halt function fires.
type aggProg struct{}

func (aggProg) Init(id graph.ID, _ *graph.Graph) float64 { return 1 }

func (aggProg) Compute(ctx *Context[float64, float64], msgs []float64) {
	ctx.Aggregate("total", ctx.Value())
	ctx.SendToNeighbors(0) // keep everyone alive, pull-mode style
}

func TestAggregatorVisibilityNextStep(t *testing.T) {
	g := ringGraph(10)
	var sawStep1 float64 = -1
	e, _ := New[float64, float64](g, aggProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(1, 2),
		MaxSupersteps: 3,
		OnStep: func(step int, e *Engine[float64, float64]) {
			if step == 1 {
				if v, ok := e.Aggregates().Value("total"); ok {
					sawStep1 = v
				}
			}
		},
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sawStep1 != 10 {
		t.Fatalf("aggregate after step 1 = %g, want 10", sawStep1)
	}
}

func TestHaltFunc(t *testing.T) {
	g := ringGraph(10)
	e, _ := New[float64, float64](g, aggProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(1, 2),
		MaxSupersteps: 50,
		Halt:          aggregate.MaxSteps(4, nil),
	})
	trace, _ := e.Run()
	if len(trace.Steps) != 4 {
		t.Fatalf("halt did not fire: %d steps", len(trace.Steps))
	}
}

// fanProg sends one message per out-edge carrying the sender id; used for
// combiner and message-count tests.
type fanProg struct{}

func (fanProg) Init(id graph.ID, _ *graph.Graph) float64 { return 0 }

func (fanProg) Compute(ctx *Context[float64, float64], msgs []float64) {
	var sum float64
	for _, m := range msgs {
		sum += m
	}
	ctx.SetValue(ctx.Value() + sum)
	if ctx.Superstep() == 0 {
		ctx.SendToNeighbors(1)
	}
	ctx.VoteToHalt()
}

func TestCombinerReducesMessages(t *testing.T) {
	// A 2-level fan-in: many sources point at one sink; with a combiner, the
	// messages from each worker collapse to one per worker.
	b := graph.NewBuilder(33)
	for v := 1; v < 33; v++ {
		b.AddEdge(graph.ID(v), 0)
	}
	g := b.MustBuild()

	run := func(combine bool) (int64, float64) {
		cfg := Config[float64, float64]{Cluster: cluster.Flat(1, 4), MaxSupersteps: 3}
		if combine {
			cfg.Combiner = func(a, b float64) float64 { return a + b }
		}
		e, err := New[float64, float64](g, fanProg{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.TransportStats().Messages, e.Values()[0]
	}
	plainMsgs, plainVal := run(false)
	combMsgs, combVal := run(true)
	if plainVal != 32 || combVal != 32 {
		t.Fatalf("sink values: plain=%g combined=%g, want 32", plainVal, combVal)
	}
	if combMsgs >= plainMsgs {
		t.Fatalf("combiner did not reduce messages: %d vs %d", combMsgs, plainMsgs)
	}
	if combMsgs > 4 {
		t.Fatalf("combined messages = %d, want ≤ one per worker", combMsgs)
	}
}

// stayAliveProg mimics pull-mode BSP: every vertex sends its value to
// neighbors every superstep; values stop changing after step 0.
type stayAliveProg struct{}

func (stayAliveProg) Init(id graph.ID, _ *graph.Graph) float64 { return 1 }

func (stayAliveProg) Compute(ctx *Context[float64, float64], msgs []float64) {
	ctx.SetValue(1) // unchanged forever under Equal
	ctx.SendToNeighbors(1)
}

func TestRedundantMessageAccounting(t *testing.T) {
	g := ringGraph(20)
	e, _ := New[float64, float64](g, stayAliveProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(1, 2),
		MaxSupersteps: 3,
		Equal:         func(a, b float64) bool { return a == b },
	})
	trace, _ := e.Run()
	// Step 0 changes nothing (SetValue(1) == initial 1), so all messages are
	// redundant in every superstep.
	for _, s := range trace.Steps {
		if s.Messages == 0 {
			t.Fatal("pull-mode program must keep sending")
		}
		if s.RedundantMessages != s.Messages {
			t.Fatalf("step %d: redundant=%d, messages=%d", s.Step, s.RedundantMessages, s.Messages)
		}
		if s.Changed != 0 {
			t.Fatalf("step %d: changed=%d, want 0", s.Step, s.Changed)
		}
	}
}

func TestVertexReactivationByMessage(t *testing.T) {
	// Path 0→1→2: vertex 2 halts immediately but must be re-activated when
	// the wave reaches it.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(1, 3), Partitioner: partition.Range{},
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Values()[2] != 2 {
		t.Fatalf("vertex 2 = %g", e.Values()[2])
	}
	if e.Values()[1] != 1 {
		t.Fatalf("vertex 1 = %g, want its own id (0 cannot beat 1)", e.Values()[1])
	}
}

func TestCheckpointRestoreIdenticalResult(t *testing.T) {
	g := ringGraph(30)
	var snap State[float64, float64]
	captured := false
	e1, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:         cluster.Flat(2, 2),
		CheckpointEvery: 7,
		Checkpoints: func(s State[float64, float64]) error {
			if !captured {
				snap = s
				captured = true
			}
			return nil
		},
	})
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	if !captured {
		t.Fatal("no checkpoint captured")
	}
	if snap.Step != 7 {
		t.Fatalf("checkpoint at step %d, want 7", snap.Step)
	}

	// Fresh engine, restore mid-run state, continue: must agree with e1.
	e2, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 2),
	})
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if e2.Superstep() != 7 {
		t.Fatalf("restored superstep = %d", e2.Superstep())
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	for v := range e1.Values() {
		if e1.Values()[v] != e2.Values()[v] {
			t.Fatalf("vertex %d: %g vs %g after restore", v, e1.Values()[v], e2.Values()[v])
		}
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	e, _ := New[float64, float64](ringGraph(5), maxProg{}, Config[float64, float64]{})
	err := e.Restore(State[float64, float64]{Step: 1, Values: make([]float64, 99), Halted: make([]bool, 99)})
	if err == nil {
		t.Fatal("mismatched checkpoint must be rejected")
	}
}

func TestTraceBookkeeping(t *testing.T) {
	g := ringGraph(16)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster: cluster.Flat(2, 2),
	})
	trace, _ := e.Run()
	if trace.Engine != "hama" || trace.Workers != 4 {
		t.Fatalf("trace header = %+v", trace)
	}
	if trace.Steps[0].Active != 16 {
		t.Fatalf("step 0 active = %d, want all 16", trace.Steps[0].Active)
	}
	if trace.ModelTime() <= 0 {
		t.Fatal("model time must be positive")
	}
	if trace.Steps[0].ComputeUnitsMax <= 0 {
		t.Fatal("compute units must be recorded")
	}
}
