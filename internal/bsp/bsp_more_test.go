package bsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

// ancestorMax computes, for every vertex, the maximum id among vertices that
// can reach it (including itself) — the fixpoint maxProg converges to.
func ancestorMax(g *graph.Graph) []float64 {
	n := g.NumVertices()
	val := make([]float64, n)
	for v := range val {
		val[v] = float64(v)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			for _, u := range g.OutNeighbors(graph.ID(v)) {
				if val[v] > val[u] {
					val[u] = val[v]
					changed = true
				}
			}
		}
	}
	return val
}

// Property: on arbitrary random graphs and worker counts, the BSP engine's
// max propagation reaches the reachability fixpoint.
func TestMaxPropagationProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		b := graph.NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.ID(rng.Intn(n)), graph.ID(rng.Intn(n)))
		}
		g := b.MustBuild()
		workers := int(kRaw)%6 + 1
		e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
			Cluster:       cluster.Flat(workers, 1),
			MaxSupersteps: 10 * n,
		})
		if err != nil {
			return false
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		want := ancestorMax(g)
		got := e.Values()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPerSenderQueueModeEquivalent(t *testing.T) {
	g := gen.PowerLaw(300, 4, 9)
	run := func(perSender bool) ([]float64, int64) {
		e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
			Cluster:         cluster.Flat(2, 2),
			PerSenderQueues: perSender,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), e.Values()...), e.TransportStats().LockedEnqueues
	}
	gv, glocked := run(false)
	pv, plocked := run(true)
	for v := range gv {
		if gv[v] != pv[v] {
			t.Fatalf("queue mode changed results at vertex %d", v)
		}
	}
	if glocked == 0 {
		t.Error("global queue must count locked enqueues")
	}
	if plocked != 0 {
		t.Error("per-sender queue must not take the shared lock")
	}
}

func TestSizeOfMsgAccounting(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2) // worker 0 → worker 1 under 2-way hashing? force with Range below
	b.AddEdge(1, 3)
	g := b.MustBuild()
	e, err := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:   cluster.Flat(2, 1),
		SizeOfMsg: func(float64) int64 { return 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.TransportStats()
	if st.Messages > 0 && st.Bytes != st.Messages*104 { // 4 routing + 100 payload
		t.Fatalf("bytes = %d for %d messages, want %d", st.Bytes, st.Messages, st.Messages*104)
	}
}

func TestOnStepRunsEveryBarrier(t *testing.T) {
	g := ringGraph(12)
	var steps []int
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(1, 2),
		MaxSupersteps: 6,
		OnStep: func(step int, _ *Engine[float64, float64]) {
			steps = append(steps, step)
		},
	})
	trace, _ := e.Run()
	if len(steps) != len(trace.Steps) {
		t.Fatalf("OnStep ran %d times for %d supersteps", len(steps), len(trace.Steps))
	}
	for i, s := range steps {
		if s != i {
			t.Fatalf("OnStep order broken: %v", steps)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	g := ringGraph(6)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{Cluster: cluster.Flat(2, 1)})
	if e.Graph() != g {
		t.Error("Graph accessor broken")
	}
	if e.Assignment() == nil || e.Assignment().K != 2 {
		t.Error("Assignment accessor broken")
	}
	if e.Superstep() != 0 {
		t.Error("fresh engine must be at superstep 0")
	}
	if err := e.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestCheckpointEveryStep(t *testing.T) {
	g := ringGraph(10)
	var got []int
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:         cluster.Flat(1, 2),
		MaxSupersteps:   5,
		CheckpointEvery: 1,
		Checkpoints: func(s State[float64, float64]) error {
			got = append(got, s.Step)
			return nil
		},
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("checkpoints at %v, want one per superstep", got)
	}
}

func TestCheckpointErrorPropagates(t *testing.T) {
	g := ringGraph(10)
	e, _ := New[float64, float64](g, maxProg{}, Config[float64, float64]{
		Cluster:         cluster.Flat(1, 1),
		CheckpointEvery: 1,
		Checkpoints: func(State[float64, float64]) error {
			return errSink
		},
	})
	if _, err := e.Run(); err == nil {
		t.Fatal("checkpoint sink error must abort the run")
	}
}

var errSink = errTest("sink failed")

type errTest string

func (e errTest) Error() string { return string(e) }
