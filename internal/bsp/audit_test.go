package bsp

// Fault-injection tests for the message-conservation auditor (Config.Audit).
// BSP has no replicas to audit, but its correctness rests on an equally
// structural invariant: every envelope flushed at SND arrives at the next
// PRS. The tests break it both ways — dropping a worker's queued messages
// and injecting envelopes that were never sent — and assert the auditor
// fails the run with a structured *obs.AuditError.

import (
	"errors"
	"sync"
	"testing"

	"cyclops/internal/cluster"
	"cyclops/internal/obs"
)

// auditLog records OnViolation calls.
type auditLog struct {
	obs.Nop
	mu  sync.Mutex
	got []obs.Violation
}

func (l *auditLog) OnViolation(v obs.Violation) {
	l.mu.Lock()
	l.got = append(l.got, v)
	l.mu.Unlock()
}

func (l *auditLog) violations() []obs.Violation {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.Violation(nil), l.got...)
}

func newAuditEngine(t *testing.T, hooks obs.Hooks, onStep func(int, *Engine[float64, float64])) *Engine[float64, float64] {
	t.Helper()
	e, err := New[float64, float64](ringGraph(40), maxProg{}, Config[float64, float64]{
		Cluster:       cluster.Flat(2, 1),
		MaxSupersteps: 8,
		Audit:         true,
		Hooks:         hooks,
		OnStep:        onStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAuditCleanRun(t *testing.T) {
	log := &auditLog{}
	e := newAuditEngine(t, log, nil)
	if _, err := e.Run(); err != nil {
		t.Fatalf("clean audited run failed: %v", err)
	}
	if vs := log.violations(); len(vs) != 0 {
		t.Fatalf("violations on a clean run: %v", vs)
	}
}

func checkConservationViolation(t *testing.T, err error, log *auditLog, wantStep int) {
	t.Helper()
	var audit *obs.AuditError
	if !errors.As(err, &audit) {
		t.Fatalf("run error = %v, want *obs.AuditError", err)
	}
	v := audit.Violations[0]
	if v.Kind != obs.ViolationMessageConservation || v.Step != wantStep {
		t.Fatalf("violation = %+v, want %s at step %d",
			v, obs.ViolationMessageConservation, wantStep)
	}
	if vs := log.violations(); len(vs) == 0 || vs[0].Kind != obs.ViolationMessageConservation {
		t.Fatalf("OnViolation never saw the conservation violation: %v", vs)
	}
}

func TestAuditCatchesMessageLoss(t *testing.T) {
	log := &auditLog{}
	var e *Engine[float64, float64]
	e = newAuditEngine(t, log, func(step int, _ *Engine[float64, float64]) {
		if step == 1 {
			// Discard everything in flight — messages superstep 1 put on the
			// wire that superstep 2 will now never deliver. (At step 1 the max
			// has propagated one hop, so exactly one envelope is queued.)
			e.tr.Drain(0)
			e.tr.Drain(1)
		}
	})
	_, err := e.Run()
	checkConservationViolation(t, err, log, 2)
}

func TestAuditCatchesInjectedMessages(t *testing.T) {
	log := &auditLog{}
	var e *Engine[float64, float64]
	e = newAuditEngine(t, log, func(step int, _ *Engine[float64, float64]) {
		if step == 1 {
			// Forge an envelope no SND phase accounted for.
			e.tr.Send(0, 0, []envelope[float64]{{Dst: e.owned[0][0], Msg: 1}})
		}
	})
	_, err := e.Run()
	checkConservationViolation(t, err, log, 2)
}
