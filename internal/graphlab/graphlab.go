// Package graphlab implements the third prior system the paper analyses
// (§2.3): a GraphLab-like asynchronous shared-memory engine. Vertices are
// updated by a distributed scheduler without global barriers; an update
// locks the vertex's whole scope (itself plus all neighbors) before reading
// and writing, exactly the pattern Figure 4 charges with bidirectional
// traffic: every spanning edge needs *two* replicas (one per direction), a
// master's update must be pushed to its replicas, and activations travel
// from replicas back to masters — which is why the paper's Figure 4 shows
// GraphLab needing locks and two-way messages where Cyclops needs one
// unidirectional sync.
//
// The engine here is deliberately faithful to those accounting properties —
// scope locking (in canonical order, so it cannot deadlock), per-worker task
// queues, remote lock request/grant counting, replica sync and activation
// messages — while running in one process. Results are convergent but not
// deterministic, which is itself one of the paper's §2.3 complaints.
package graphlab

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cyclops/internal/cluster"
	"cyclops/internal/graph"
	"cyclops/internal/partition"
)

// Program is an asynchronous vertex program. Update may read the scope
// (its own value and every neighbor's current value) and write its own
// value; returning activate=true reschedules the out-neighbors.
type Program[V any] interface {
	// Init returns the initial value and whether the vertex is initially
	// scheduled.
	Init(id graph.ID, g *graph.Graph) (V, bool)
	// Update computes the vertex's new value from its scope. It returns the
	// new value and whether to activate the out-neighbors.
	Update(ctx *Scope[V]) (V, bool)
}

// Config tunes an engine run.
type Config[V any] struct {
	// Cluster supplies the worker count (Workers()); the async engine runs
	// one scheduler goroutine per worker.
	Cluster cluster.Config
	// Partitioner assigns vertices to workers (default hash).
	Partitioner partition.Partitioner
	// MaxUpdates bounds the total update count as a runaway guard
	// (default 100·|V|).
	MaxUpdates int64
}

// Stats counts the §2.3 communication: value syncs to replicas, activation
// messages from replicas back to masters, and remote lock request/grant
// round trips.
type Stats struct {
	Updates         int64
	SyncMessages    int64 // master → replica value propagation
	ActivationMsgs  int64 // replica → remote master activation
	LockMessages    int64 // request+grant pairs for remote scope members
	LocalActivation int64
}

// Messages is the total §2.3 message count (everything but local work).
func (s Stats) Messages() int64 { return s.SyncMessages + s.ActivationMsgs + s.LockMessages }

// Scope is the locked neighborhood view handed to Update.
type Scope[V any] struct {
	e   *Engine[V]
	vid graph.ID
}

// Vertex returns the vertex being updated.
func (s *Scope[V]) Vertex() graph.ID { return s.vid }

// Value returns the vertex's current value.
func (s *Scope[V]) Value() V { return s.e.values[s.vid] }

// InDegree returns the number of in-neighbors.
func (s *Scope[V]) InDegree() int { return s.e.g.InDegree(s.vid) }

// NeighborValue reads the i-th in-neighbor's *current* value — live shared
// memory, not a superstep snapshot: asynchronous semantics.
func (s *Scope[V]) NeighborValue(i int) V {
	return s.e.values[s.e.g.InNeighbors(s.vid)[i]]
}

// InWeight returns the weight of the i-th in-edge.
func (s *Scope[V]) InWeight(i int) float64 { return s.e.g.InWeights(s.vid)[i] }

// OutDegree returns the vertex's out-degree.
func (s *Scope[V]) OutDegree() int { return s.e.g.OutDegree(s.vid) }

// NumVertices returns the graph's vertex count.
func (s *Scope[V]) NumVertices() int { return s.e.g.NumVertices() }

// Engine is the asynchronous scheduler.
type Engine[V any] struct {
	g      *graph.Graph
	prog   Program[V]
	cfg    Config[V]
	assign *partition.Assignment

	values []V
	locks  []sync.Mutex // per-vertex scope locks
	queued []atomic.Bool

	queues  []workQueue
	pending atomic.Int64
	updates atomic.Int64

	// scope[v] is v plus its neighbors, sorted and deduplicated, locked in
	// canonical order to keep the distributed locking deadlock-free.
	scope [][]graph.ID

	replicas int64
	stats    Stats
}

// workQueue is one worker's task list.
type workQueue struct {
	mu    sync.Mutex
	tasks []graph.ID
}

func (q *workQueue) push(v graph.ID) {
	q.mu.Lock()
	q.tasks = append(q.tasks, v)
	q.mu.Unlock()
}

func (q *workQueue) pop() (graph.ID, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return 0, false
	}
	v := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return v, true
}

// New builds the engine and computes the §2.3 replica accounting: a vertex
// is replicated on every remote worker that holds a neighbor on *either*
// side of an edge (duplicate replicas per spanning edge).
func New[V any](g *graph.Graph, prog Program[V], cfg Config[V]) (*Engine[V], error) {
	if g == nil || prog == nil {
		return nil, errors.New("graphlab: graph and program are required")
	}
	cfg.Cluster = cfg.Cluster.Normalize()
	if cfg.Partitioner == nil {
		cfg.Partitioner = partition.Hash{}
	}
	if cfg.MaxUpdates <= 0 {
		// Async schedules are interleaving-dependent; leave generous
		// headroom before declaring a program non-convergent.
		cfg.MaxUpdates = int64(2000 * max(g.NumVertices(), 1))
	}
	workers := cfg.Cluster.Workers()
	assign, err := cfg.Partitioner.Partition(g, workers)
	if err != nil {
		return nil, fmt.Errorf("graphlab: partition: %w", err)
	}
	n := g.NumVertices()
	e := &Engine[V]{
		g:      g,
		prog:   prog,
		cfg:    cfg,
		assign: assign,
		values: make([]V, n),
		locks:  make([]sync.Mutex, n),
		queued: make([]atomic.Bool, n),
		queues: make([]workQueue, workers),
		scope:  make([][]graph.ID, n),
	}

	// Precompute canonical scopes and count duplicate replicas.
	seen := make([]int, workers)
	for v := 0; v < n; v++ {
		id := graph.ID(v)
		members := append([]graph.ID{id}, g.InNeighbors(id)...)
		members = append(members, g.OutNeighbors(id)...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		dedup := members[:0]
		for i, m := range members {
			if i == 0 || m != members[i-1] {
				dedup = append(dedup, m)
			}
		}
		e.scope[v] = dedup

		// Replicas of v: one per distinct remote worker holding any
		// neighbor of v (access or activation direction — both, per §2.3).
		home := assign.Of[v]
		for _, m := range dedup {
			if m == id {
				continue
			}
			w := assign.Of[m]
			if w != home && seen[w] != v+1 {
				seen[w] = v + 1
				e.replicas++
			}
		}
	}

	for v := 0; v < n; v++ {
		val, active := prog.Init(graph.ID(v), g)
		e.values[v] = val
		if active {
			e.schedule(graph.ID(v))
		}
	}
	return e, nil
}

// schedule enqueues v at its owner if not already queued.
func (e *Engine[V]) schedule(v graph.ID) {
	if e.queued[v].CompareAndSwap(false, true) {
		e.pending.Add(1)
		e.queues[e.assign.Of[v]].push(v)
	}
}

// Graph returns the input graph.
func (e *Engine[V]) Graph() *graph.Graph { return e.g }

// Values returns the vertex values (consistent after Run).
func (e *Engine[V]) Values() []V { return e.values }

// Replicas returns the duplicate-replica count of §2.3.
func (e *Engine[V]) Replicas() int64 { return e.replicas }

// ReplicationFactor returns replicas per vertex.
func (e *Engine[V]) ReplicationFactor() float64 {
	if e.g.NumVertices() == 0 {
		return 0
	}
	return float64(e.replicas) / float64(e.g.NumVertices())
}

// Stats returns the communication counters of the finished run.
func (e *Engine[V]) Stats() Stats { return e.stats }

// Run drives the asynchronous schedulers until no vertex is scheduled (or
// the update budget is exhausted) and returns the final stats.
func (e *Engine[V]) Run() (Stats, error) {
	workers := e.cfg.Cluster.Workers()
	var wg sync.WaitGroup
	locals := make([]Stats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(w, &locals[w])
		}(w)
	}
	wg.Wait()
	e.stats.Updates = min64(e.updates.Load(), e.cfg.MaxUpdates)
	for w := range locals {
		e.stats.SyncMessages += locals[w].SyncMessages
		e.stats.ActivationMsgs += locals[w].ActivationMsgs
		e.stats.LockMessages += locals[w].LockMessages
		e.stats.LocalActivation += locals[w].LocalActivation
	}
	if e.updates.Load() >= e.cfg.MaxUpdates {
		return e.stats, fmt.Errorf("graphlab: update budget %d exhausted (non-convergent program?)", e.cfg.MaxUpdates)
	}
	return e.stats, nil
}

// worker is one scheduler loop. It spins until the global pending count
// drains — the distributed termination detection the paper's §2.3 calls
// scheduling overhead.
func (e *Engine[V]) worker(w int, st *Stats) {
	backoff := 0
	for {
		v, ok := e.queues[w].pop()
		if !ok {
			if e.pending.Load() == 0 || e.updates.Load() >= e.cfg.MaxUpdates {
				return
			}
			backoff++
			if backoff > 16 {
				backoff = 0
			}
			// Yield so producers can run even on GOMAXPROCS=1 hosts.
			runtime.Gosched()
			continue
		}
		backoff = 0
		e.queued[v].Store(false)
		if e.updates.Add(1) > e.cfg.MaxUpdates {
			e.pending.Add(-1)
			return
		}
		e.update(w, v, st)
		// Decrement only after the update (and its re-activations) finish:
		// pending counts queued *plus in-flight* work, so a zero reading
		// really means global quiescence — no task can appear afterwards.
		e.pending.Add(-1)
	}
}

// update performs one scope-locked vertex update.
func (e *Engine[V]) update(w int, v graph.ID, st *Stats) {
	home := e.assign.Of[v]
	// Acquire the scope in canonical order (deadlock-free); remote members
	// cost a lock request + grant round trip each (2 messages, §2.3).
	for _, m := range e.scope[v] {
		e.locks[m].Lock()
		if e.assign.Of[m] != home {
			st.LockMessages += 2
		}
	}
	ctx := &Scope[V]{e: e, vid: v}
	newVal, activate := e.prog.Update(ctx)
	e.values[v] = newVal
	for i := len(e.scope[v]) - 1; i >= 0; i-- {
		e.locks[e.scope[v][i]].Unlock()
	}

	// Propagate the new value to v's replicas: one sync message per remote
	// worker holding a neighbor of v.
	remote := map[int]bool{}
	for _, m := range e.scope[v] {
		if mw := e.assign.Of[m]; mw != home && !remote[mw] {
			remote[mw] = true
			st.SyncMessages++
		}
	}

	if !activate {
		return
	}
	for _, u := range e.g.OutNeighbors(v) {
		if u == v {
			continue
		}
		if e.assign.Of[u] == home {
			st.LocalActivation++
		} else {
			// Activation travels replica → master (the backward direction
			// Cyclops eliminates); it may race with other activators, which
			// is why the paper notes vertex 1 needs a lock to coordinate
			// message receiving (Figure 4).
			st.ActivationMsgs++
		}
		e.schedule(u)
	}
	_ = w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
