package graphlab

import (
	"testing"
	"testing/quick"

	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

func symmetric(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices()).Dedup().NoSelfLoops()
	for _, e := range g.Edges() {
		b.AddEdge(e.Src, e.Dst)
		b.AddEdge(e.Dst, e.Src)
	}
	return b.MustBuild()
}

func TestColoringTriangle(t *testing.T) {
	b := graph.NewBuilder(3)
	for _, e := range [][2]graph.ID{{0, 1}, {1, 2}, {2, 0}} {
		b.AddEdge(e[0], e[1])
		b.AddEdge(e[1], e[0])
	}
	g := b.MustBuild()
	e, err := New[int64](g, Coloring{}, Config[int64]{Cluster: cluster.Flat(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := ValidColoring(g, e.Values()); err != nil {
		t.Fatal(err)
	}
}

func TestColoringSmallWorld(t *testing.T) {
	g := gen.SmallWorld(400, 3, 0.1, 9)
	e, err := New[int64](g, Coloring{}, Config[int64]{Cluster: cluster.Flat(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidColoring(g, e.Values()); err != nil {
		t.Fatal(err)
	}
	if stats.Updates == 0 {
		t.Fatal("no updates ran")
	}
}

// Property: async coloring always terminates with a proper coloring within
// the greedy bound, whatever the interleaving.
func TestColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := symmetric(gen.ErdosRenyi(80, 200, seed))
		e, err := New[int64](g, Coloring{}, Config[int64]{Cluster: cluster.Flat(3, 1)})
		if err != nil {
			return false
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		return ValidColoring(g, e.Values()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValidColoringRejectsConflicts(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	if err := ValidColoring(g, []int64{1, 1}); err == nil {
		t.Fatal("conflicting colors must be rejected")
	}
	if err := ValidColoring(g, []int64{0, 5}); err == nil {
		t.Fatal("out-of-bound palette must be rejected")
	}
	if err := ValidColoring(g, []int64{0, 1}); err != nil {
		t.Fatalf("proper coloring rejected: %v", err)
	}
}
