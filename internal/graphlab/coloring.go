package graphlab

import (
	"fmt"

	"cyclops/internal/graph"
)

// Greedy graph coloring is GraphLab's signature asynchronous workload: a
// vertex picks the smallest color absent from its scope and reschedules any
// neighbor it conflicts with. Under scope locking the update is atomic with
// respect to its neighborhood, so the algorithm converges to a proper
// coloring with at most maxDegree+1 colors — but which proper coloring is
// schedule-dependent, the non-determinism §2.3 charges the model with.
// Synchronous engines cannot run this program as-is: two adjacent vertices
// updating in the same superstep can pick the same color forever.

// Coloring is the async coloring program. Works on symmetric graphs.
type Coloring struct{}

// Init implements Program: everyone starts at color 0, scheduled.
func (Coloring) Init(id graph.ID, _ *graph.Graph) (int64, bool) { return 0, true }

// Update implements Program: keep the current color unless a neighbor
// holds it (conflict-only recoloring, as in GraphLab's demo apps — it
// avoids the flip-flopping a "always take the smallest" rule can cause).
func (Coloring) Update(ctx *Scope[int64]) (int64, bool) {
	used := make(map[int64]bool, ctx.InDegree())
	for i := 0; i < ctx.InDegree(); i++ {
		used[ctx.NeighborValue(i)] = true
	}
	if !used[ctx.Value()] {
		return ctx.Value(), false // already consistent with the scope
	}
	color := int64(0)
	for used[color] {
		color++
	}
	// Reschedule neighbors: our new color may conflict with theirs; they
	// re-check under their own scope locks.
	return color, true
}

// ValidColoring checks that no edge joins two vertices of the same color
// and that the palette is within the greedy bound (maxDegree+1).
func ValidColoring(g *graph.Graph, colors []int64) error {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.ID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(graph.ID(v)) {
			if graph.ID(v) != u && colors[v] == colors[u] {
				return fmt.Errorf("graphlab: edge %d–%d shares color %d", v, u, colors[v])
			}
		}
		if colors[v] < 0 || colors[v] > int64(maxDeg) {
			return fmt.Errorf("graphlab: vertex %d color %d outside greedy bound %d",
				v, colors[v], maxDeg)
		}
	}
	return nil
}
