package graphlab

import (
	"math"
	"testing"

	"cyclops/internal/cluster"
	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

// asyncPR mirrors algorithms.PageRankGraphLab without importing it (that
// package imports this one). Value = rank/outDegree.
type asyncPR struct {
	eps float64
	n   int
}

func (p asyncPR) Init(id graph.ID, g *graph.Graph) (float64, bool) {
	d := g.OutDegree(id)
	if d == 0 {
		d = 1
	}
	return (1 / float64(g.NumVertices())) / float64(d), true
}

func (p asyncPR) Update(ctx *Scope[float64]) (float64, bool) {
	var sum float64
	for i := 0; i < ctx.InDegree(); i++ {
		sum += ctx.NeighborValue(i)
	}
	rank := 0.15/float64(p.n) + 0.85*sum
	d := float64(ctx.OutDegree())
	if d == 0 {
		d = 1
	}
	old := ctx.Value() * d
	return rank / d, math.Abs(rank-old) > p.eps
}

// refShare iterates the synchronous recurrence to (near) fixpoint.
func refShare(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	share := make([]float64, n)
	deg := make([]float64, n)
	for v := range share {
		d := g.OutDegree(graph.ID(v))
		if d == 0 {
			d = 1
		}
		deg[v] = float64(d)
		share[v] = (1 / float64(n)) / deg[v]
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			var sum float64
			for _, u := range g.InNeighbors(graph.ID(v)) {
				sum += share[u]
			}
			next[v] = (0.15/float64(n) + 0.85*sum) / deg[v]
		}
		copy(share, next)
	}
	return share
}

func TestAsyncPageRankConverges(t *testing.T) {
	g := gen.PowerLaw(400, 4, 19)
	// Naive async scheduling re-updates a vertex every time any neighbor
	// moves more than eps, so update counts grow steeply as eps tightens
	// (~10× per 100× of eps) — §2.3's scheduling-overhead complaint in
	// numbers. 1e-8 keeps the test fast while the fixpoint residual stays
	// well under the assertion below.
	e, err := New[float64](g, asyncPR{eps: 1e-8, n: g.NumVertices()}, Config[float64]{
		Cluster:    cluster.Flat(4, 1),
		MaxUpdates: int64(20000 * g.NumVertices()),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Updates == 0 {
		t.Fatal("no updates ran")
	}
	want := refShare(g, 300)
	got := e.Values()
	var l1 float64
	for v := range want {
		l1 += math.Abs(got[v] - want[v])
	}
	if l1 > 1e-4 {
		t.Fatalf("async fixpoint off by L1=%g", l1)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := gen.PowerLaw(300, 4, 3)
	e, err := New[float64](g, asyncPR{eps: 1e-6, n: g.NumVertices()}, Config[float64]{
		Cluster: cluster.Flat(4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SyncMessages == 0 || stats.LockMessages == 0 {
		t.Fatalf("distributed run must count sync and lock traffic: %+v", stats)
	}
	if stats.Messages() != stats.SyncMessages+stats.ActivationMsgs+stats.LockMessages {
		t.Fatal("Messages() inconsistent")
	}
	// §2.3: lock traffic alone (2 per remote scope member per update) should
	// rival or exceed the data traffic — the overhead Cyclops removes.
	if stats.LockMessages < stats.SyncMessages {
		t.Fatalf("expected locking to dominate: %+v", stats)
	}
}

func TestSingleWorkerNoRemoteTraffic(t *testing.T) {
	g := gen.PowerLaw(100, 3, 7)
	e, err := New[float64](g, asyncPR{eps: 1e-6, n: g.NumVertices()}, Config[float64]{
		Cluster: cluster.Flat(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages() != 0 {
		t.Fatalf("single worker must be message-free: %+v", stats)
	}
	if e.Replicas() != 0 || e.ReplicationFactor() != 0 {
		t.Fatal("single worker must have no replicas")
	}
}

func TestDuplicateReplicasExceedCyclops(t *testing.T) {
	// §2.3: GraphLab replicates per spanning edge in both directions, so its
	// replica count must be at least Cyclops' (which replicates only for the
	// out direction).
	g := gen.PowerLaw(500, 5, 13)
	e, err := New[float64](g, asyncPR{eps: 1e-6, n: g.NumVertices()}, Config[float64]{
		Cluster: cluster.Flat(6, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	cyclopsRF := e.assignReplicationOutOnly()
	if e.ReplicationFactor() < cyclopsRF {
		t.Fatalf("graphlab rf %.2f < cyclops-style rf %.2f", e.ReplicationFactor(), cyclopsRF)
	}
}

// assignReplicationOutOnly computes the Cyclops-style (out-direction only)
// replication factor over the same assignment, for comparison.
func (e *Engine[V]) assignReplicationOutOnly() float64 {
	return e.assign.ReplicationFactor(e.g)
}

func TestUpdateBudgetGuard(t *testing.T) {
	// A program that always reschedules everyone must hit the budget and
	// return an error instead of hanging.
	g := gen.ErdosRenyi(30, 90, 1)
	e, err := New[float64](g, alwaysActive{}, Config[float64]{
		Cluster:    cluster.Flat(2, 1),
		MaxUpdates: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("non-convergent program must exhaust the budget with an error")
	}
}

type alwaysActive struct{}

func (alwaysActive) Init(id graph.ID, _ *graph.Graph) (float64, bool) { return 0, true }
func (alwaysActive) Update(ctx *Scope[float64]) (float64, bool) {
	return ctx.Value() + 1, true
}

func TestRequiredArguments(t *testing.T) {
	if _, err := New[float64](nil, asyncPR{}, Config[float64]{}); err == nil {
		t.Error("nil graph must error")
	}
	g := gen.ErdosRenyi(5, 5, 1)
	if _, err := New[float64](g, nil, Config[float64]{}); err == nil {
		t.Error("nil program must error")
	}
}

func TestSelfLoopScope(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	e, err := New[float64](g, asyncPR{eps: 1e-9, n: 2}, Config[float64]{
		Cluster: cluster.Flat(2, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
