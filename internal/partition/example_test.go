package partition_test

import (
	"fmt"

	"cyclops/internal/gen"
	"cyclops/internal/partition"
)

// Example compares the hash and Metis-like partitioners on a planted
// community graph — the Figure 11 comparison in miniature.
func Example() {
	g, _ := gen.Community(8, 40, 3, 0, 7)

	hash, err := (partition.Hash{}).Partition(g, 8)
	if err != nil {
		panic(err)
	}
	metis, err := (partition.Multilevel{Seed: 1}).Partition(g, 8)
	if err != nil {
		panic(err)
	}

	fmt.Printf("hash:  cut=%5.1f%%  replication=%.2f\n",
		100*float64(hash.EdgeCut(g))/float64(g.NumEdges()),
		hash.ReplicationFactor(g))
	fmt.Printf("metis: cut<%5.1f%%  replication<%.2f  balance<%.2f\n",
		20.0, 1.0, 1.10)
	cut := 100 * float64(metis.EdgeCut(g)) / float64(g.NumEdges())
	if cut >= 20 || metis.ReplicationFactor(g) >= 1 || metis.Balance() >= 1.10 {
		fmt.Println("metis bounds violated")
	}
	// Output:
	// hash:  cut= 88.5%  replication=3.67
	// metis: cut< 20.0%  replication<1.00  balance<1.10
}
