package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclops/internal/gen"
	"cyclops/internal/graph"
)

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.ID(v), graph.ID((v+1)%n))
	}
	return b.MustBuild()
}

func TestHashCoversAndBalances(t *testing.T) {
	g := ring(1000)
	a, err := Hash{}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if b := a.Balance(); b > 1.3 {
		t.Errorf("hash balance = %g, want near 1", b)
	}
}

func TestRangeIsContiguous(t *testing.T) {
	g := ring(100)
	a, err := Range{}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 100; v++ {
		if a.Of[v] < a.Of[v-1] {
			t.Fatal("range partition must be monotone in vertex id")
		}
	}
	if a.Balance() != 1 {
		t.Errorf("range balance = %g", a.Balance())
	}
	// A ring cut into 4 contiguous arcs has exactly 4 cut edges.
	if cut := a.EdgeCut(g); cut != 4 {
		t.Errorf("ring range cut = %d, want 4", cut)
	}
}

func TestInvalidK(t *testing.T) {
	g := ring(10)
	for _, p := range []Partitioner{Hash{}, Range{}, Multilevel{}} {
		if _, err := p.Partition(g, 0); err == nil {
			t.Errorf("%s: k=0 must error", p.Name())
		}
		if _, err := p.Partition(g, -1); err == nil {
			t.Errorf("%s: k=-1 must error", p.Name())
		}
	}
}

func TestSinglePartition(t *testing.T) {
	g := ring(50)
	for _, p := range []Partitioner{Hash{}, Range{}, Multilevel{}} {
		a, err := p.Partition(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if a.EdgeCut(g) != 0 {
			t.Errorf("%s: k=1 must have zero cut", p.Name())
		}
		if a.ReplicationFactor(g) != 0 {
			t.Errorf("%s: k=1 must have zero replication", p.Name())
		}
	}
}

func TestMultilevelBeatsHashOnCommunityGraph(t *testing.T) {
	g, _ := gen.Community(16, 60, 3, 0, 7)
	k := 8
	hashA, err := Hash{}.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	mlA, err := Multilevel{Seed: 1}.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlA.Validate(g); err != nil {
		t.Fatal(err)
	}
	hc, mc := hashA.EdgeCut(g), mlA.EdgeCut(g)
	if mc*3 > hc {
		t.Errorf("multilevel cut %d not ≪ hash cut %d on planted communities", mc, hc)
	}
	if b := mlA.Balance(); b > 1.25 {
		t.Errorf("multilevel balance = %g", b)
	}
	// Fig 11's headline: Metis replication factor ≪ hash replication factor.
	hr, mr := hashA.ReplicationFactor(g), mlA.ReplicationFactor(g)
	if mr >= hr {
		t.Errorf("replication: metis %g !< hash %g", mr, hr)
	}
}

func TestMultilevelOnPowerLaw(t *testing.T) {
	g := gen.PowerLaw(3000, 6, 3)
	a, err := Multilevel{Seed: 2}.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if b := a.Balance(); b > 1.6 {
		t.Errorf("balance = %g too loose", b)
	}
	hashA, _ := Hash{}.Partition(g, 6)
	if a.EdgeCut(g) >= hashA.EdgeCut(g) {
		t.Errorf("multilevel cut %d !< hash cut %d", a.EdgeCut(g), hashA.EdgeCut(g))
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := gen.PowerLaw(800, 4, 9)
	a1, err := Multilevel{Seed: 5}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Multilevel{Seed: 5}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1.Of {
		if a1.Of[v] != a2.Of[v] {
			t.Fatal("same seed must give identical partitions")
		}
	}
}

func TestMultilevelKLargerThanN(t *testing.T) {
	g := ring(5)
	a, err := Multilevel{Seed: 1}.Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationFactorStar(t *testing.T) {
	// Hub 0 points at 9 spokes spread over k partitions: the hub needs a
	// replica on every remote partition that holds a spoke.
	b := graph.NewBuilder(10)
	for v := 1; v < 10; v++ {
		b.AddEdge(0, graph.ID(v))
	}
	g := b.MustBuild()
	of := make([]int, 10)
	for v := 1; v < 10; v++ {
		of[v] = v % 3 // partitions 0,1,2 all hold spokes; hub on 0
	}
	a := &Assignment{K: 3, Of: of}
	// Only the hub replicates, onto partitions 1 and 2 → 2/10.
	if rf := a.ReplicationFactor(g); rf != 0.2 {
		t.Fatalf("replication factor = %g, want 0.2", rf)
	}
	if cut := a.EdgeCut(g); cut != 6 {
		t.Fatalf("cut = %d, want 6", cut)
	}
}

func TestReplicationNeverExceedsMeanDegreeOrK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(200, 800, seed)
		k := rng.Intn(15) + 2
		a, err := Hash{}.Partition(g, k)
		if err != nil {
			return false
		}
		rf := a.ReplicationFactor(g)
		meanDeg := float64(g.NumEdges()) / float64(g.NumVertices())
		return rf <= meanDeg+1e-9 && rf <= float64(k-1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: all partitioners produce valid, fully-covering assignments on
// arbitrary random graphs.
func TestPartitionersAlwaysValid(t *testing.T) {
	partitioners := []Partitioner{Hash{}, Range{}, Multilevel{Seed: 3}}
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%12 + 1
		g := gen.ErdosRenyi(120, 500, seed)
		for _, p := range partitioners {
			a, err := p.Partition(g, k)
			if err != nil || a.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationGrowsWithPartitions(t *testing.T) {
	// Fig 11(1): hash replication factor grows with #partitions.
	g := gen.PowerLaw(4000, 6, 17)
	var prev float64 = -1
	for _, k := range []int{2, 6, 12, 24, 48} {
		a, err := Hash{}.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		rf := a.ReplicationFactor(g)
		if rf < prev {
			t.Fatalf("replication factor not monotone: k=%d gives %g < %g", k, rf, prev)
		}
		prev = rf
	}
}

func TestEmptyGraphPartition(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	for _, p := range []Partitioner{Hash{}, Range{}, Multilevel{}} {
		a, err := p.Partition(g, 4)
		if err != nil {
			t.Fatalf("%s on empty graph: %v", p.Name(), err)
		}
		if len(a.Of) != 0 {
			t.Fatalf("%s: nonempty assignment", p.Name())
		}
	}
}
