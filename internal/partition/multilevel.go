package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"cyclops/internal/graph"
)

// Multilevel is the Metis-like k-way partitioner of §4.2: it coarsens the
// graph by heavy-edge matching, partitions the coarsest graph by greedy
// region growing, and refines the projection at every level with boundary
// Fiduccia–Mattheyses passes. Like Metis it minimises edge-cut while keeping
// vertex counts balanced within Imbalance.
type Multilevel struct {
	// Seed makes the randomised matching and refinement deterministic.
	Seed int64
	// Imbalance is the allowed max-partition overshoot (default 1.05).
	Imbalance float64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices (default 30·k, floor 128).
	CoarsenTo int
	// RefinePasses bounds FM passes per level (default 4).
	RefinePasses int
}

// Name implements Partitioner.
func (Multilevel) Name() string { return "metis" }

// ugraph is the internal undirected weighted representation used during
// coarsening. Edge weights count merged multi-edges; vertex weights count
// collapsed fine vertices so balance refers to original vertices.
type ugraph struct {
	xadj []int32
	adj  []int32
	ewgt []int64
	vwgt []int64
}

func (u *ugraph) n() int { return len(u.xadj) - 1 }

// toUndirected symmetrises the directed input and merges parallel edges.
func toUndirected(g *graph.Graph) *ugraph {
	n := g.NumVertices()
	type half struct {
		u, v int32
	}
	halves := make([]half, 0, 2*g.NumEdges())
	for v := 0; v < n; v++ {
		for _, w := range g.OutNeighbors(graph.ID(v)) {
			if int(w) == v {
				continue // self-loops never affect cut
			}
			halves = append(halves, half{int32(v), int32(w)}, half{int32(w), int32(v)})
		}
	}
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].u != halves[j].u {
			return halves[i].u < halves[j].u
		}
		return halves[i].v < halves[j].v
	})
	ug := &ugraph{xadj: make([]int32, n+1), vwgt: make([]int64, n)}
	for i := range ug.vwgt {
		ug.vwgt[i] = 1
	}
	for i := 0; i < len(halves); {
		j := i
		var w int64
		for j < len(halves) && halves[j] == halves[i] {
			w++
			j++
		}
		ug.adj = append(ug.adj, halves[i].v)
		ug.ewgt = append(ug.ewgt, w)
		ug.xadj[halves[i].u+1]++
		i = j
	}
	for v := 0; v < n; v++ {
		ug.xadj[v+1] += ug.xadj[v]
	}
	return ug
}

// coarsen performs one heavy-edge-matching round. It returns the coarse graph
// and the fine→coarse vertex map.
func coarsen(u *ugraph, rng *rand.Rand) (*ugraph, []int32) {
	n := u.n()
	order := rng.Perm(n)
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	cmap := make([]int32, n)
	coarse := int32(0)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		for i := u.xadj[v]; i < u.xadj[v+1]; i++ {
			nb := u.adj[i]
			if match[nb] == -1 && int(nb) != v && u.ewgt[i] > bestW {
				best, bestW = nb, u.ewgt[i]
			}
		}
		if best == -1 {
			match[v] = int32(v)
			cmap[v] = coarse
		} else {
			match[v], match[best] = best, int32(v)
			cmap[v], cmap[best] = coarse, coarse
		}
		coarse++
	}
	// Build the coarse graph by aggregating fine adjacency through cmap,
	// using a stamp array so each coarse vertex's neighbor set is merged in
	// O(degree).
	cg := &ugraph{xadj: make([]int32, coarse+1), vwgt: make([]int64, coarse)}
	stamp := make([]int32, coarse)
	slot := make([]int32, coarse)
	for i := range stamp {
		stamp[i] = -1
	}
	members := make([][2]int32, coarse) // up to two fine vertices per coarse
	for i := range members {
		members[i] = [2]int32{-1, -1}
	}
	for v := 0; v < n; v++ {
		c := cmap[v]
		if members[c][0] == -1 {
			members[c][0] = int32(v)
		} else {
			members[c][1] = int32(v)
		}
	}
	for c := int32(0); c < coarse; c++ {
		begin := int32(len(cg.adj))
		for _, fv := range members[c] {
			if fv == -1 {
				continue
			}
			cg.vwgt[c] += u.vwgt[fv]
			for i := u.xadj[fv]; i < u.xadj[fv+1]; i++ {
				nc := cmap[u.adj[i]]
				if nc == c {
					continue
				}
				if stamp[nc] != c+1 {
					stamp[nc] = c + 1
					slot[nc] = int32(len(cg.adj))
					cg.adj = append(cg.adj, nc)
					cg.ewgt = append(cg.ewgt, u.ewgt[i])
				} else {
					cg.ewgt[slot[nc]] += u.ewgt[i]
				}
			}
		}
		cg.xadj[c+1] = cg.xadj[c] + (int32(len(cg.adj)) - begin)
	}
	return cg, cmap
}

// growInitial produces a k-way partition of the coarsest graph by greedy
// region growing: BFS from a fresh seed until the region reaches the target
// weight, then start the next partition.
func growInitial(u *ugraph, k int, rng *rand.Rand) []int32 {
	n := u.n()
	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	var totalW int64
	for _, w := range u.vwgt {
		totalW += w
	}
	target := totalW / int64(k)
	if target < 1 {
		target = 1
	}
	order := rng.Perm(n)
	next := 0
	queue := make([]int32, 0, n)
	for p := 0; p < k; p++ {
		var weight int64
		queue = queue[:0]
		for weight < target {
			if len(queue) == 0 {
				// Find a fresh seed.
				for next < n && part[order[next]] != -1 {
					next++
				}
				if next == n {
					break
				}
				queue = append(queue, int32(order[next]))
				part[order[next]] = int32(p)
				weight += u.vwgt[order[next]]
			}
			v := queue[0]
			queue = queue[1:]
			for i := u.xadj[v]; i < u.xadj[v+1]; i++ {
				nb := u.adj[i]
				if part[nb] == -1 && weight < target {
					part[nb] = int32(p)
					weight += u.vwgt[nb]
					queue = append(queue, nb)
				}
			}
		}
	}
	// Any leftovers go to the lightest partition.
	weights := make([]int64, k)
	for v := 0; v < n; v++ {
		if part[v] >= 0 {
			weights[part[v]] += u.vwgt[v]
		}
	}
	for v := 0; v < n; v++ {
		if part[v] == -1 {
			lightest := 0
			for p := 1; p < k; p++ {
				if weights[p] < weights[lightest] {
					lightest = p
				}
			}
			part[v] = int32(lightest)
			weights[lightest] += u.vwgt[v]
		}
	}
	return part
}

// refine runs boundary FM passes: each pass visits vertices in random order
// and moves a vertex to the neighboring partition with the highest positive
// cut gain, subject to the balance bound.
func refine(u *ugraph, part []int32, k int, maxWeight int64, passes int, rng *rand.Rand) {
	n := u.n()
	weights := make([]int64, k)
	for v := 0; v < n; v++ {
		weights[part[v]] += u.vwgt[v]
	}
	conn := make([]int64, k) // connection weight to each partition
	touched := make([]int32, 0, 8)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, v := range rng.Perm(n) {
			home := part[v]
			touched = touched[:0]
			for i := u.xadj[v]; i < u.xadj[v+1]; i++ {
				p := part[u.adj[i]]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += u.ewgt[i]
			}
			best, bestGain := home, int64(0)
			for _, p := range touched {
				if p == home {
					continue
				}
				gain := conn[p] - conn[home]
				if gain > bestGain && weights[p]+u.vwgt[v] <= maxWeight {
					best, bestGain = p, gain
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
			if best != home {
				weights[home] -= u.vwgt[v]
				weights[best] += u.vwgt[v]
				part[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// Partition implements Partitioner.
func (m Multilevel) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	n := g.NumVertices()
	if k == 1 || n == 0 {
		return &Assignment{K: k, Of: make([]int, n)}, nil
	}
	imbalance := m.Imbalance
	if imbalance <= 1 {
		imbalance = 1.05
	}
	coarsenTo := m.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = max(30*k, 128)
	}
	passes := m.RefinePasses
	if passes <= 0 {
		passes = 4
	}
	rng := rand.New(rand.NewSource(m.Seed))

	// Coarsening phase.
	levels := []*ugraph{toUndirected(g)}
	var cmaps [][]int32
	for levels[len(levels)-1].n() > coarsenTo {
		cur := levels[len(levels)-1]
		coarse, cmap := coarsen(cur, rng)
		if coarse.n() > cur.n()*9/10 {
			break // matching stalled (e.g. star graphs); stop coarsening
		}
		levels = append(levels, coarse)
		cmaps = append(cmaps, cmap)
	}

	// Initial partition at the coarsest level.
	coarsest := levels[len(levels)-1]
	part := growInitial(coarsest, k, rng)
	maxWeight := int64(imbalance * float64(n) / float64(k))
	if maxWeight < 1 {
		maxWeight = 1
	}
	refine(coarsest, part, k, maxWeight, passes, rng)

	// Uncoarsening with refinement at every level.
	for lvl := len(levels) - 2; lvl >= 0; lvl-- {
		fine := levels[lvl]
		cmap := cmaps[lvl]
		finePart := make([]int32, fine.n())
		for v := range finePart {
			finePart[v] = part[cmap[v]]
		}
		refine(fine, finePart, k, maxWeight, passes, rng)
		part = finePart
	}

	of := make([]int, n)
	for v := range of {
		of[v] = int(part[v])
	}
	a := &Assignment{K: k, Of: of}
	if err := a.Validate(g); err != nil {
		return nil, err
	}
	return a, nil
}
