package partition

import (
	"fmt"

	"cyclops/internal/graph"
)

// Layout is the dense slot assignment derived from an Assignment: the
// immutable vertex → (owner, master slot) mapping, built once at partition
// time. Engines index flat value arrays by Slot instead of probing
// map[graph.ID] in their inner loops; the per-partition master lists come
// out as one flat CSR, matching the immutable-view storage discipline.
//
// Slots are assigned in ascending vertex id within each partition, so
// Masters(p) is sorted and Slot is reproducible for a given Assignment —
// another input the flight-recorder exact-match gate depends on.
type Layout struct {
	K int
	// Slot maps a vertex id to its master slot within its owner partition:
	// the index of the vertex in Masters(owner).
	Slot []int32
	// masters holds each partition's master vertex ids (ascending).
	masters graph.CSR[graph.ID]
}

// NewLayout builds the slot assignment for n vertices under a. It errors if
// the assignment does not cover exactly n vertices or names a partition out
// of range.
func NewLayout(a *Assignment, n int) (*Layout, error) {
	if len(a.Of) != n {
		return nil, fmt.Errorf("partition: layout: assignment covers %d of %d vertices", len(a.Of), n)
	}
	b := graph.NewCSRBuilder[graph.ID](a.K)
	slot := make([]int32, n)
	counts := make([]int32, a.K)
	for v, p := range a.Of {
		if p < 0 || p >= a.K {
			return nil, fmt.Errorf("partition: layout: vertex %d assigned to %d, K=%d", v, p, a.K)
		}
		slot[v] = counts[p]
		counts[p]++
		b.Append(p, graph.ID(v))
	}
	return &Layout{K: a.K, Slot: slot, masters: b.Build()}, nil
}

// Masters returns partition p's master vertex ids in ascending order. The
// slice aliases the layout's storage and must not be mutated.
func (l *Layout) Masters(p int) []graph.ID { return l.masters.Row(p) }

// NumMasters returns len(Masters(p)) without materializing the slice.
func (l *Layout) NumMasters(p int) int { return l.masters.RowLen(p) }
