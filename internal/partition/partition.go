// Package partition implements the graph partitioning substrate of the
// paper's §4.2: the default hash partitioner, a range partitioner, and a
// from-scratch Metis-like multilevel k-way partitioner (heavy-edge-matching
// coarsening, greedy region-growing initial partition, boundary FM
// refinement). It also computes the quality metrics the paper reports —
// edge-cut, balance, and the Cyclops replication factor of Figure 11.
package partition

import (
	"fmt"

	"cyclops/internal/graph"
)

// Assignment maps every vertex to one of K partitions (the paper's workers).
type Assignment struct {
	K  int
	Of []int // vertex id → partition in [0,K)
}

// Partitioner assigns the vertices of a graph to k partitions.
type Partitioner interface {
	// Name identifies the algorithm in reports ("hash", "metis", ...).
	Name() string
	// Partition computes a vertex assignment. Implementations must return an
	// assignment covering every vertex with values in [0,k).
	Partition(g *graph.Graph, k int) (*Assignment, error)
}

// Validate checks that the assignment covers graph g with K partitions.
func (a *Assignment) Validate(g *graph.Graph) error {
	if len(a.Of) != g.NumVertices() {
		return fmt.Errorf("partition: assignment covers %d of %d vertices", len(a.Of), g.NumVertices())
	}
	for v, p := range a.Of {
		if p < 0 || p >= a.K {
			return fmt.Errorf("partition: vertex %d assigned to %d, K=%d", v, p, a.K)
		}
	}
	return nil
}

// Sizes returns the number of vertices per partition.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.K)
	for _, p := range a.Of {
		sizes[p]++
	}
	return sizes
}

// Balance returns max partition size over the ideal size |V|/K; 1.0 is
// perfect balance.
func (a *Assignment) Balance() float64 {
	if len(a.Of) == 0 || a.K == 0 {
		return 1
	}
	maxSize := 0
	for _, s := range a.Sizes() {
		if s > maxSize {
			maxSize = s
		}
	}
	ideal := float64(len(a.Of)) / float64(a.K)
	if ideal == 0 {
		return 1
	}
	return float64(maxSize) / ideal
}

// EdgeCut counts directed edges whose endpoints land in different partitions.
func (a *Assignment) EdgeCut(g *graph.Graph) int {
	cut := 0
	for v := 0; v < g.NumVertices(); v++ {
		pv := a.Of[v]
		for _, u := range g.OutNeighbors(graph.ID(v)) {
			if a.Of[u] != pv {
				cut++
			}
		}
	}
	return cut
}

// ReplicationFactor computes the Cyclops replication factor (Figure 11): the
// average number of read-only replicas per vertex. A replica of v exists on
// partition p ≠ owner(v) iff v has an out-edge to some vertex on p — the
// replica both serves reads for v's out-neighbors and performs distributed
// activation of them.
func (a *Assignment) ReplicationFactor(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	total := 0
	seen := make([]int, a.K) // stamp array: seen[p] == v+1 ⇒ counted for v
	for v := 0; v < n; v++ {
		pv := a.Of[v]
		for _, u := range g.OutNeighbors(graph.ID(v)) {
			pu := a.Of[u]
			if pu != pv && seen[pu] != v+1 {
				seen[pu] = v + 1
				total++
			}
		}
	}
	return float64(total) / float64(n)
}

// Hash is the default partitioner of Pregel/Hama: vertex v goes to v mod k.
// It is oblivious to structure, so the replication factor approaches the
// average out-degree as k grows (Figure 11(1)).
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (Hash) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	of := make([]int, g.NumVertices())
	for v := range of {
		// Multiplicative hashing decorrelates ids from partitions; plain
		// v%k would give generator-order locality for free, which the real
		// hash partitioner does not enjoy.
		h := uint64(v) * 0x9e3779b97f4a7c15
		of[v] = int(h % uint64(k))
	}
	return &Assignment{K: k, Of: of}, nil
}

// Range assigns contiguous vertex-id blocks to partitions. It is used by
// tests (locality extreme) and as the base case of the multilevel scheme.
type Range struct{}

// Name implements Partitioner.
func (Range) Name() string { return "range" }

// Partition implements Partitioner.
func (Range) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	n := g.NumVertices()
	of := make([]int, n)
	for v := 0; v < n; v++ {
		p := v * k / max(n, 1)
		if p >= k {
			p = k - 1
		}
		of[v] = p
	}
	return &Assignment{K: k, Of: of}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
