package partition

import (
	"testing"

	"cyclops/internal/graph"
)

func TestLayoutSlots(t *testing.T) {
	a := &Assignment{K: 3, Of: []int{0, 1, 0, 2, 1, 0}}
	l, err := NewLayout(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantMasters := [][]graph.ID{{0, 2, 5}, {1, 4}, {3}}
	for p := 0; p < 3; p++ {
		got := l.Masters(p)
		if len(got) != len(wantMasters[p]) || l.NumMasters(p) != len(wantMasters[p]) {
			t.Fatalf("partition %d masters = %v, want %v", p, got, wantMasters[p])
		}
		for i, id := range wantMasters[p] {
			if got[i] != id {
				t.Fatalf("partition %d masters = %v, want %v (ascending ids)", p, got, wantMasters[p])
			}
			if l.Slot[id] != int32(i) {
				t.Fatalf("Slot[%d] = %d, want %d", id, l.Slot[id], i)
			}
		}
	}
}

func TestLayoutEmptyPartition(t *testing.T) {
	// Partition 1 owns nothing — its master list must be empty, not missing.
	a := &Assignment{K: 3, Of: []int{0, 2, 0}}
	l, err := NewLayout(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n := l.NumMasters(1); n != 0 {
		t.Fatalf("empty partition has %d masters", n)
	}
	if len(l.Masters(1)) != 0 {
		t.Fatalf("empty partition masters = %v", l.Masters(1))
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := NewLayout(&Assignment{K: 2, Of: []int{0}}, 2); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := NewLayout(&Assignment{K: 2, Of: []int{0, 5}}, 2); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}
